# Developer conveniences; everything is plain `go` underneath.

.PHONY: all build vet test race check soak e2e bench bench-json bench-wire bench-scale bench-diff mon-smoke results quick-results examples clean

# Worker-pool width for the experiment engine; override with `make J=8 results`.
J ?= $(shell nproc 2>/dev/null || echo 1)
SEED ?= 1

all: build test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# The full pre-merge gate: compile, vet, every test under the race detector,
# the experiment engine hammered at a fixed pool width (GSSO_WORKERS sets
# the default width so nested fan-out runs genuinely parallel even on
# single-core CI boxes), and a short coverage-guided fuzz of the CAN
# membership machine (join/depart/crash interleavings must keep the split
# tree invariant-clean), and of the wire codec (arbitrary frames must
# never panic, hang, or round-trip lossily through the multiplexer).
check: build vet race bench-diff
	GSSO_WORKERS=4 go test -race -count=1 ./internal/experiment/... ./internal/netsim/...
	go run ./cmd/topobench -run ext-scale -scale quick -seed $(SEED) > /dev/null
	go test -fuzz FuzzMembership -fuzztime 10s -run '^$$' ./internal/can
	go test -fuzz FuzzArena -fuzztime 10s -run '^$$' ./internal/arena
	go test -fuzz FuzzReadMessage -fuzztime 10s -run '^$$' ./internal/wire
	go test -fuzz FuzzCodecDifferential -fuzztime 10s -run '^$$' ./internal/wire
	go test -fuzz FuzzClusterSpec -fuzztime 10s -run '^$$' ./internal/cluster

# Soak gates, full scale: the ext-churn reconvergence bar (record recall
# back above 99% within three virtual refresh intervals of the last fault
# wave, deterministically) and the ext-selfheal repair bar (discoverability
# back within 5% of the pre-crash baseline after every crash wave with
# repair on; degraded with it off).
soak:
	SOAK=1 go test -run 'TestChurnReconvergence|TestSelfHealRecovery' -count=1 -v ./internal/experiment

# One testing.B benchmark per paper table/figure, plus package micro-benches.
bench:
	go test -bench=. -benchmem ./...

# Suite wall-clock report: quick and full scale, -j 1 baseline then -j $(J),
# appended into BENCH_engine.json (per-experiment wall-clock, speedup vs the
# baseline in the same file, peak RSS, topology cache hit counts). Each
# invocation is a fresh process, so the parallel run pays its own cache
# fills — the speedup is honest.
bench-json:
	rm -f BENCH_engine.json
	go run ./cmd/topobench -run all -scale quick -seed $(SEED) -j 1 -bench-json BENCH_engine.json > /dev/null
	go run ./cmd/topobench -run all -scale quick -seed $(SEED) -j $(J) -bench-json BENCH_engine.json > /dev/null
	go run ./cmd/topobench -run all -scale full -seed $(SEED) -j 1 -bench-json BENCH_engine.json > /dev/null
	go run ./cmd/topobench -run all -scale full -seed $(SEED) -j $(J) -bench-json BENCH_engine.json > /dev/null

# Wire transport benchmarks: dial-per-RPC baseline vs the pooled,
# multiplexed transport and the 64-record publish-batch path, written to
# BENCH_wire.json (ns/op, allocs/op, conns/op, connection reuse ratio).
bench-wire:
	go run ./cmd/topobench -wire-bench BENCH_wire.json

# Million-node scale trajectory: run the ext-scale tsk-large cell at each
# SCALE_N (increasing order; getrusage peak RSS is a process-lifetime
# high-water mark, so per-cell RSS readings only attribute correctly that
# way) and append nodes/phase-wall-clock/peak-RSS to BENCH_scale.json.
# Default covers 10^4 and 10^5; push to 10^6 with
# `make SCALE_N=10000,100000,1000000 bench-scale`.
SCALE_N ?= 10000,100000
bench-scale:
	go run ./cmd/topobench -scale-bench BENCH_scale.json -scale-n $(SCALE_N) -seed $(SEED)

# Perf regression gate: re-run the wire benchmarks into a scratch file and
# fail if any benchmark shared with the checked-in BENCH_wire.json
# regressed more than 20% in ns/op, then re-run the scale benchmark at
# SCALE_DIFF_N and fail if its wall-clock or peak RSS regressed more than
# 20% against the matching cell of the checked-in BENCH_scale.json (cells
# match by target node count, so the gate diffs only the N it re-ran). A
# failing run is retried once before it counts — single-shot benchmarks on
# a shared box are noisy. Wired into `make check`, so perf regressions
# fail the pre-merge gate.
SCALE_DIFF_N ?= 10000
bench-diff:
	@go run ./cmd/topobench -wire-bench .bench_wire_head.json -wire-diff BENCH_wire.json || \
	  { echo "bench-diff: possible regression, retrying once to rule out noise"; \
	    go run ./cmd/topobench -wire-bench .bench_wire_head.json -wire-diff BENCH_wire.json; }
	@rm -f .bench_wire_head.json
	@go run ./cmd/topobench -scale-bench .bench_scale_head.json -scale-n $(SCALE_DIFF_N) -seed $(SEED) -scale-diff BENCH_scale.json || \
	  { echo "bench-diff: possible scale regression, retrying once to rule out noise"; \
	    rm -f .bench_scale_head.json; \
	    go run ./cmd/topobench -scale-bench .bench_scale_head.json -scale-n $(SCALE_DIFF_N) -seed $(SEED) -scale-diff BENCH_scale.json; }
	@rm -f .bench_scale_head.json

# Live-process chaos gate: boot a real overlayd fleet under
# cmd/overlayctl's supervisor (internal/cluster), every inter-node link
# through a fault proxy, replay a seeded fault schedule — one kill -9
# wave plus one asymmetric partition — and require the cluster to heal
# by itself: every node ready again, full record recall with replicas
# on exactly the ring owners, zero orphans, within a bounded number of
# refresh intervals. The reconfiguration gate then scales a second
# fleet up by one node, down by one, and rolling-restarts every node,
# asserting the same invariants against the live (post-reconfig) ring
# at every quiesce point. Also runs the observability smoke (the Go
# descendant of scripts/mon_smoke.sh, now on ephemeral ports). On
# failure the per-node logs and an overlaymon -json snapshot are dumped
# from the run directory.
e2e:
	E2E=1 go test -run 'TestE2EChaosSelfHealing|TestE2EReconfiguration|TestMonSmoke' -count=1 -v -timeout 300s ./internal/e2e

# Observability smoke only: boot a 3-node traced overlayd cluster,
# scrape it with the overlaymon view, and assert the snapshot is
# well-formed (all nodes healthy and ready, records stored, a stitched
# publish trace with zero orphan spans).
mon-smoke:
	E2E=1 go test -run 'TestMonSmoke' -count=1 -v -timeout 120s ./internal/e2e

# Regenerate the paper's full evaluation with CSV series. The run lands in a
# temp directory and is renamed into place only on success, so an interrupted
# run never leaves a half-written results/full behind. The stamped header
# goes into full_output.txt (never topobench stdout: stdout stays
# byte-identical across -j for the determinism gate).
results:
	mkdir -p results
	rm -rf results/.full.tmp
	mkdir -p results/.full.tmp
	{ \
	  echo "# scale=full seed=$(SEED) j=$(J) rev=$$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"; \
	  go run ./cmd/topobench -run all -scale full -seed $(SEED) -j $(J) -csv results/.full.tmp; \
	} > results/.full.tmp/full_output.txt
	rm -rf results/full
	mv results/.full.tmp results/full
	mv results/full/full_output.txt results/full_output.txt
	cat results/full_output.txt

quick-results:
	go run ./cmd/topobench -run all -j $(J)

examples:
	go run ./examples/quickstart
	go run ./examples/nearestpeer
	go run ./examples/cdn
	go run ./examples/qos
	go run ./examples/wirecluster

clean:
	rm -rf results
