# Developer conveniences; everything is plain `go` underneath.

.PHONY: all build vet test race check soak bench results quick-results examples clean

all: build test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# The full pre-merge gate: compile, vet, and every test under the race
# detector.
check: build vet race

# Churn soak: the full-scale ext-churn reconvergence gate — record recall
# must climb back above 99% within three virtual refresh intervals of the
# last fault wave, deterministically.
soak:
	SOAK=1 go test -run TestChurnReconvergence -count=1 -v ./internal/experiment

# One testing.B benchmark per paper table/figure, plus package micro-benches.
bench:
	go test -bench=. -benchmem ./...

# Regenerate the paper's full evaluation (~2 min) with CSV series.
results:
	mkdir -p results
	go run ./cmd/topobench -run all -scale full -csv results/full | tee results/full_output.txt

quick-results:
	go run ./cmd/topobench -run all

examples:
	go run ./examples/quickstart
	go run ./examples/nearestpeer
	go run ./examples/cdn
	go run ./examples/qos
	go run ./examples/wirecluster

clean:
	rm -rf results
