package gsso_test

import (
	"testing"

	"gsso/internal/core"
	"gsso/internal/experiment"
	"gsso/internal/obs"
)

// benchExperiment runs one paper artifact end to end per iteration at
// quick scale. These benches exist so `go test -bench=.` regenerates (and
// times) every table and figure; run cmd/topobench -scale full for
// paper-scale numbers.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiment.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	sc := experiment.Quick(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per table/figure of the paper's evaluation.

func BenchmarkFig2CANvsECAN(b *testing.B)           { benchExperiment(b, "fig2") }
func BenchmarkFig3ERSvsHybrid(b *testing.B)         { benchExperiment(b, "fig3") }
func BenchmarkFig4ERSLarge(b *testing.B)            { benchExperiment(b, "fig4") }
func BenchmarkFig5HybridSmall(b *testing.B)         { benchExperiment(b, "fig5") }
func BenchmarkFig6ERSSmall(b *testing.B)            { benchExperiment(b, "fig6") }
func BenchmarkFig10StretchLargeGTITM(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11StretchLargeManual(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12StretchSmallGTITM(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13StretchSmallManual(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14SizeSweepGTITM(b *testing.B)     { benchExperiment(b, "fig14") }
func BenchmarkFig15SizeSweepManual(b *testing.B)    { benchExperiment(b, "fig15") }
func BenchmarkFig16CondenseRate(b *testing.B)       { benchExperiment(b, "fig16") }
func BenchmarkTab1LookupTrace(b *testing.B)         { benchExperiment(b, "tab1") }
func BenchmarkTab2Parameters(b *testing.B)          { benchExperiment(b, "tab2") }
func BenchmarkFigBHilbertExample(b *testing.B)      { benchExperiment(b, "figB") }
func BenchmarkExtLoadBalancing(b *testing.B)        { benchExperiment(b, "ext-load") }
func BenchmarkExtPubSubMaintenance(b *testing.B)    { benchExperiment(b, "ext-pubsub") }
func BenchmarkExtChordSoftState(b *testing.B)       { benchExperiment(b, "ext-chord") }
func BenchmarkExtHierLandmarks(b *testing.B)        { benchExperiment(b, "ext-hier") }
func BenchmarkExtTACANImbalance(b *testing.B)       { benchExperiment(b, "ext-tacan") }
func BenchmarkExtGroupedLandmarks(b *testing.B)     { benchExperiment(b, "ext-groups") }
func BenchmarkExtFailureRepair(b *testing.B)        { benchExperiment(b, "ext-failure") }
func BenchmarkExtChurnRecall(b *testing.B)          { benchExperiment(b, "ext-churn") }
func BenchmarkExtPastrySelection(b *testing.B)      { benchExperiment(b, "ext-pastry") }
func BenchmarkExtSVDDenoising(b *testing.B)         { benchExperiment(b, "ext-svd") }
func BenchmarkExtOrderingBaseline(b *testing.B)     { benchExperiment(b, "ext-ordering") }

// benchNearest times one nearest-member query per iteration on a fixed
// live stack. The traced variant installs a sink; the difference between
// the two is the telemetry subsystem's hot-path cost, which must stay
// within run-to-run noise when tracing is off (the disabled path is one
// atomic load).
func benchNearest(b *testing.B, sink func(obs.Trace)) {
	b.Helper()
	sys, err := core.New(
		core.WithSeed(1),
		core.WithTopologyScale(0.15),
		core.WithOverlaySize(96),
		core.WithLandmarks(6),
	)
	if err != nil {
		b.Fatal(err)
	}
	sys.SetTraceSink(sink)
	members := sys.Members()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.NearestMember(members[i%len(members)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNearestMemberNoTrace(b *testing.B) { benchNearest(b, nil) }

func BenchmarkNearestMemberTraced(b *testing.B) {
	var hops int
	benchNearest(b, func(tr obs.Trace) { hops += len(tr.Hops) })
	_ = hops
}
