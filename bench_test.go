package gsso_test

import (
	"testing"

	"gsso/internal/experiment"
)

// benchExperiment runs one paper artifact end to end per iteration at
// quick scale. These benches exist so `go test -bench=.` regenerates (and
// times) every table and figure; run cmd/topobench -scale full for
// paper-scale numbers.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiment.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	sc := experiment.Quick(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per table/figure of the paper's evaluation.

func BenchmarkFig2CANvsECAN(b *testing.B)           { benchExperiment(b, "fig2") }
func BenchmarkFig3ERSvsHybrid(b *testing.B)         { benchExperiment(b, "fig3") }
func BenchmarkFig4ERSLarge(b *testing.B)            { benchExperiment(b, "fig4") }
func BenchmarkFig5HybridSmall(b *testing.B)         { benchExperiment(b, "fig5") }
func BenchmarkFig6ERSSmall(b *testing.B)            { benchExperiment(b, "fig6") }
func BenchmarkFig10StretchLargeGTITM(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11StretchLargeManual(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12StretchSmallGTITM(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13StretchSmallManual(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14SizeSweepGTITM(b *testing.B)     { benchExperiment(b, "fig14") }
func BenchmarkFig15SizeSweepManual(b *testing.B)    { benchExperiment(b, "fig15") }
func BenchmarkFig16CondenseRate(b *testing.B)       { benchExperiment(b, "fig16") }
func BenchmarkTab1LookupTrace(b *testing.B)         { benchExperiment(b, "tab1") }
func BenchmarkTab2Parameters(b *testing.B)          { benchExperiment(b, "tab2") }
func BenchmarkFigBHilbertExample(b *testing.B)      { benchExperiment(b, "figB") }
func BenchmarkExtLoadBalancing(b *testing.B)        { benchExperiment(b, "ext-load") }
func BenchmarkExtPubSubMaintenance(b *testing.B)    { benchExperiment(b, "ext-pubsub") }
func BenchmarkExtChordSoftState(b *testing.B)       { benchExperiment(b, "ext-chord") }
func BenchmarkExtHierLandmarks(b *testing.B)        { benchExperiment(b, "ext-hier") }
func BenchmarkExtTACANImbalance(b *testing.B)       { benchExperiment(b, "ext-tacan") }
func BenchmarkExtGroupedLandmarks(b *testing.B)     { benchExperiment(b, "ext-groups") }
func BenchmarkExtFailureRepair(b *testing.B)        { benchExperiment(b, "ext-failure") }
func BenchmarkExtPastrySelection(b *testing.B)      { benchExperiment(b, "ext-pastry") }
func BenchmarkExtSVDDenoising(b *testing.B)         { benchExperiment(b, "ext-svd") }
func BenchmarkExtOrderingBaseline(b *testing.B)     { benchExperiment(b, "ext-ordering") }
