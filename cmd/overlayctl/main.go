// Command overlayctl launches and supervises a cluster of real
// overlayd processes from a declarative spec — the live-process
// counterpart of the simulator's Env. It reserves every port up
// front so peer lists are baked before any process exists, boots the
// cluster with a readiness-gated roll (each node must turn live
// before the next starts, then the whole cluster must report /readyz
// 200), restarts crashed nodes under capped jittered backoff, and on
// SIGINT/SIGTERM drains every node gracefully (SIGTERM → soft-state
// withdraw → SIGKILL escalation after the drain budget).
//
//	overlayctl -n 5                     # quick 5-node cluster, supervise until ^C
//	overlayctl -spec cluster.json       # full spec (see internal/cluster.Spec)
//	overlayctl -n 5 -proxied \
//	    -chaos faults.json -down        # replay a fault schedule, then tear down
//	overlayctl -spec cluster.json -print-spec   # show the normalized spec, run nothing
//
// With -admin ADDR the supervising overlayctl serves a reconfiguration
// API, and a second overlayctl drives rolling operations against it —
// live membership changes with no process restart, and full-fleet
// restarts with at most one node down at a time:
//
//	overlayctl -n 5 -admin 127.0.0.1:7070       # supervise + admin API
//	overlayctl add -admin 127.0.0.1:7070        # grow the cluster by one node
//	overlayctl remove -admin 127.0.0.1:7070 -node 4   # drain node 4 out
//	overlayctl rolling-restart -admin 127.0.0.1:7070  # cycle every node
//	overlayctl status -admin 127.0.0.1:7070     # membership + node table
//
// Each node's stdout/stderr is appended to <run-dir>/node-<i>.log
// (restarts extend the same file), and the launch banner prints the
// exact overlaymon invocation for the cluster, so `overlayctl -n 5`
// plus one copy-paste gives a live health console. With -proxied every
// inter-node link runs through a wire.FaultProxy owned by the
// supervisor; -chaos replays a JSON fault schedule (kill waves and
// asymmetric partitions — see internal/e2e.Schedule) against those
// proxies and processes, which is exactly what the `make e2e` gate
// does in test form.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"gsso/internal/cluster"
	"gsso/internal/e2e"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "overlayctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) > 0 {
		switch args[0] {
		case "add", "remove", "rolling-restart", "status":
			return runAdminCmd(args[0], args[1:], out)
		}
	}
	fs := flag.NewFlagSet("overlayctl", flag.ContinueOnError)
	var (
		specPath  = fs.String("spec", "", "JSON cluster spec (internal/cluster.Spec); overrides the quick flags")
		n         = fs.Int("n", 0, "quick spec: cluster size (ignored with -spec)")
		proxied   = fs.Bool("proxied", false, "quick spec: front every node with a fault proxy")
		seed      = fs.Uint64("seed", 0, "quick spec: seed for proxies and restart jitter")
		binary    = fs.String("binary", "", "overlayd executable (overrides the spec; default: overlayd on PATH)")
		runDir    = fs.String("run-dir", "", "directory for per-node logs (overrides the spec; default: a temp dir)")
		chaosPath = fs.String("chaos", "", "replay this JSON fault schedule (internal/e2e.Schedule) once the cluster is ready")
		down      = fs.Bool("down", false, "tear the cluster down after the -chaos schedule instead of supervising")
		every     = fs.Duration("status-every", 0, "print the node table at this interval while supervising")
		printOnly = fs.Bool("print-spec", false, "print the normalized spec as JSON and exit without starting anything")
		admin     = fs.String("admin", "", "serve the reconfiguration API on this address (host:0 picks a port); drive it with overlayctl add/remove/rolling-restart/status")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var spec cluster.Spec
	if *specPath != "" {
		loaded, err := cluster.LoadSpec(*specPath)
		if err != nil {
			return err
		}
		spec = loaded
	} else {
		if *n < 2 {
			return fmt.Errorf("need -spec FILE or -n N (>= 2)")
		}
		spec = cluster.Spec{Nodes: *n, Proxied: *proxied, Seed: *seed}
	}
	if *binary != "" {
		spec.Binary = *binary
	}
	if *runDir != "" {
		spec.RunDir = *runDir
	}
	if err := spec.Normalize(); err != nil {
		return err
	}
	if *printOnly {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(spec)
	}

	logger := slog.New(slog.NewTextHandler(out, nil))
	sup, err := cluster.New(spec, logger)
	if err != nil {
		return err
	}
	defer sup.Stop()
	if err := sup.Start(); err != nil {
		return fmt.Errorf("bootstrap: %w", err)
	}
	printStatus(out, sup)
	fmt.Fprintf(out, "logs: %s\nwatch: overlaymon -nodes %s -watch 2s\n",
		sup.RunDir(), strings.Join(sup.MetricsAddrs(), ","))
	if *admin != "" {
		adminAddr, closeAdmin, err := sup.ServeAdmin(*admin)
		if err != nil {
			return err
		}
		defer closeAdmin()
		fmt.Fprintf(out, "admin: overlayctl add|remove|rolling-restart|status -admin %s\n", adminAddr)
	}

	if *chaosPath != "" {
		sched, err := e2e.LoadSchedule(*chaosPath)
		if err != nil {
			return err
		}
		if err := sched.Run(sup, logger); err != nil {
			return fmt.Errorf("chaos: %w", err)
		}
		printStatus(out, sup)
		if *down {
			sup.Stop()
			return nil
		}
	}

	// Supervise until interrupted; the deferred Stop drains the fleet.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var tick <-chan time.Time
	if *every > 0 {
		ticker := time.NewTicker(*every)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case s := <-sig:
			fmt.Fprintf(out, "%v: draining cluster\n", s)
			sup.Stop()
			return nil
		case <-tick:
			printStatus(out, sup)
		}
	}
}

// runAdminCmd is the client side of the rolling-operations surface:
// it drives a supervising overlayctl's -admin endpoint.
func runAdminCmd(cmd string, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("overlayctl "+cmd, flag.ContinueOnError)
	var (
		addr    = fs.String("admin", "", "admin address of the supervising overlayctl (required)")
		node    = fs.Int("node", -1, "node index to remove (remove only)")
		timeout = fs.Duration("timeout", 5*time.Minute, "operation deadline (adds and rolling restarts boot real processes)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("%s needs -admin ADDR", cmd)
	}
	switch cmd {
	case "add":
		index, err := cluster.AdminAdd(*addr, *timeout)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "added node %d\n", index)
	case "remove":
		if *node < 0 {
			return fmt.Errorf("remove needs -node N")
		}
		if err := cluster.AdminRemove(*addr, *node, *timeout); err != nil {
			return err
		}
		fmt.Fprintf(out, "removed node %d\n", *node)
	case "rolling-restart":
		if err := cluster.AdminRollingRestart(*addr, *timeout); err != nil {
			return err
		}
		fmt.Fprintln(out, "rolling restart complete")
	case "status":
		st, err := cluster.AdminStatus(*addr, *timeout)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "peers: %s\n", strings.Join(st.Peers, ","))
		tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "NODE\tSTATE\tPID\tRESTARTS\tOVERLAY\tDIAL\tMETRICS")
		for _, n := range st.Nodes {
			dial := n.DialAddr
			if dial == n.OverlayAddr {
				dial = "-"
			}
			fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%s\t%s\t%s\n",
				n.Index, n.State, n.PID, n.Restarts, n.OverlayAddr, dial, n.MetricsAddr)
		}
		tw.Flush()
	}
	return nil
}

func printStatus(out io.Writer, sup *cluster.Supervisor) {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tSTATE\tPID\tRESTARTS\tOVERLAY\tDIAL\tMETRICS")
	for _, st := range sup.Status() {
		dial := st.DialAddr
		if dial == st.OverlayAddr {
			dial = "-"
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%s\t%s\t%s\n",
			st.Index, st.State, st.PID, st.Restarts, st.OverlayAddr, dial, st.MetricsAddr)
	}
	tw.Flush()
}
