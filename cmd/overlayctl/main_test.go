package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gsso/internal/cluster"
	"gsso/internal/e2e"
)

func TestRunRejectsBadArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("no -spec and no -n accepted")
	}
	if err := run([]string{"-n", "1"}, &buf); err == nil {
		t.Fatal("1-node cluster accepted")
	}
}

// TestPrintSpec checks the dry-run path: -print-spec emits the fully
// normalized spec (defaults filled in) as JSON and starts nothing.
func TestPrintSpec(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "5", "-proxied", "-seed", "9", "-print-spec"}, &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	var spec cluster.Spec
	if err := json.Unmarshal(buf.Bytes(), &spec); err != nil {
		t.Fatalf("-print-spec output is not a spec: %v\n%s", err, buf.String())
	}
	if spec.Nodes != 5 || !spec.Proxied || spec.Seed != 9 {
		t.Fatalf("quick flags lost: %+v", spec)
	}
	if spec.Replicas != 2 || spec.TTL.D() == 0 || spec.Binary == "" {
		t.Fatalf("spec not normalized: %+v", spec)
	}
}

// TestRunChaosDown drives the whole binary end to end against real
// processes: boot a three-node cluster, replay a one-step kill
// schedule, and tear down. Exercises spec loading, the readiness-gated
// bootstrap, schedule replay through the supervisor, the status table,
// and the graceful stop — all through the public CLI surface.
func TestRunChaosDown(t *testing.T) {
	bin, err := e2e.OverlaydBinary()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	spec := `{"nodes": 3, "ttl": "30s", "join_retry": "200ms", "trace_sample": 0}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	chaosPath := filepath.Join(dir, "chaos.json")
	sched := `{"seed": 3, "steps": [{"kind": "kill", "victims": [1], "settle": "1s"}]}`
	if err := os.WriteFile(chaosPath, []byte(sched), 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	err = run([]string{
		"-spec", specPath,
		"-binary", bin,
		"-run-dir", filepath.Join(dir, "run"),
		"-chaos", chaosPath,
		"-down",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	output := buf.String()
	for _, want := range []string{"cluster-ready", "chaos-kill", "NODE", "running", "overlaymon -nodes"} {
		if !strings.Contains(output, want) {
			t.Fatalf("output missing %q:\n%s", want, output)
		}
	}
	// The killed node's log must show both incarnations: the supervisor
	// restarted it on the same addresses after the kill.
	raw, err := os.ReadFile(filepath.Join(dir, "run", "node-1.log"))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(raw), "supervisor: start node 1"); got < 2 {
		t.Fatalf("killed node was not restarted (%d starts):\n%s", got, raw)
	}
}
