package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gsso/internal/cluster"
	"gsso/internal/e2e"
)

func TestRunRejectsBadArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("no -spec and no -n accepted")
	}
	if err := run([]string{"-n", "1"}, &buf); err == nil {
		t.Fatal("1-node cluster accepted")
	}
}

// TestAdminSubcommandValidation covers the client-side refusals that
// need no cluster: missing -admin, missing -node, dead endpoints.
func TestAdminSubcommandValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"add"}, &buf); err == nil {
		t.Fatal("add without -admin accepted")
	}
	if err := run([]string{"remove", "-admin", "127.0.0.1:1"}, &buf); err == nil {
		t.Fatal("remove without -node accepted")
	}
	if err := run([]string{"rolling-restart", "-admin", "127.0.0.1:1", "-timeout", "200ms"}, &buf); err == nil {
		t.Fatal("rolling-restart against a dead admin endpoint succeeded")
	}
}

// TestAdminSubcommandsLive drives the rolling-operations CLI end to
// end against a real supervised cluster: status shows the fleet, add
// grows it by a live node, remove drains that node back out, and a
// landmark removal is refused through the whole HTTP stack.
func TestAdminSubcommandsLive(t *testing.T) {
	bin, err := e2e.OverlaydBinary()
	if err != nil {
		t.Fatal(err)
	}
	spec := cluster.Spec{Nodes: 3, Landmarks: 3, Binary: bin,
		RunDir: filepath.Join(t.TempDir(), "run"), JoinRetry: cluster.Duration(200 * time.Millisecond)}
	sup, err := cluster.New(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()
	if err := sup.Start(); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	addr, closeAdmin, err := sup.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer closeAdmin()

	var buf bytes.Buffer
	if err := run([]string{"status", "-admin", addr}, &buf); err != nil {
		t.Fatalf("status: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "peers:") || !strings.Contains(buf.String(), "running") {
		t.Fatalf("status output incomplete:\n%s", buf.String())
	}

	buf.Reset()
	if err := run([]string{"add", "-admin", addr}, &buf); err != nil {
		t.Fatalf("add: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "added node 3") {
		t.Fatalf("add output: %s", buf.String())
	}
	if got := len(sup.ActiveIndices()); got != 4 {
		t.Fatalf("cluster has %d active nodes after add, want 4", got)
	}

	// Landmarks stay pinned even over the admin surface.
	if err := run([]string{"remove", "-admin", addr, "-node", "0"}, &buf); err == nil {
		t.Fatal("landmark removal accepted")
	}

	buf.Reset()
	if err := run([]string{"remove", "-admin", addr, "-node", "3"}, &buf); err != nil {
		t.Fatalf("remove: %v\n%s", err, buf.String())
	}
	if got := len(sup.ActiveIndices()); got != 3 {
		t.Fatalf("cluster has %d active nodes after remove, want 3", got)
	}
	for _, st := range sup.Status() {
		if st.Index == 3 && st.State != cluster.StateRemoved {
			t.Fatalf("node 3 state = %s, want removed", st.State)
		}
	}
}

// TestPrintSpec checks the dry-run path: -print-spec emits the fully
// normalized spec (defaults filled in) as JSON and starts nothing.
func TestPrintSpec(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "5", "-proxied", "-seed", "9", "-print-spec"}, &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	var spec cluster.Spec
	if err := json.Unmarshal(buf.Bytes(), &spec); err != nil {
		t.Fatalf("-print-spec output is not a spec: %v\n%s", err, buf.String())
	}
	if spec.Nodes != 5 || !spec.Proxied || spec.Seed != 9 {
		t.Fatalf("quick flags lost: %+v", spec)
	}
	if spec.Replicas != 2 || spec.TTL.D() == 0 || spec.Binary == "" {
		t.Fatalf("spec not normalized: %+v", spec)
	}
}

// TestRunChaosDown drives the whole binary end to end against real
// processes: boot a three-node cluster, replay a one-step kill
// schedule, and tear down. Exercises spec loading, the readiness-gated
// bootstrap, schedule replay through the supervisor, the status table,
// and the graceful stop — all through the public CLI surface.
func TestRunChaosDown(t *testing.T) {
	bin, err := e2e.OverlaydBinary()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	spec := `{"nodes": 3, "ttl": "30s", "join_retry": "200ms", "trace_sample": 0}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	chaosPath := filepath.Join(dir, "chaos.json")
	sched := `{"seed": 3, "steps": [{"kind": "kill", "victims": [1], "settle": "1s"}]}`
	if err := os.WriteFile(chaosPath, []byte(sched), 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	err = run([]string{
		"-spec", specPath,
		"-binary", bin,
		"-run-dir", filepath.Join(dir, "run"),
		"-chaos", chaosPath,
		"-down",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	output := buf.String()
	for _, want := range []string{"cluster-ready", "chaos-kill", "NODE", "running", "overlaymon -nodes"} {
		if !strings.Contains(output, want) {
			t.Fatalf("output missing %q:\n%s", want, output)
		}
	}
	// The killed node's log must show both incarnations: the supervisor
	// restarted it on the same addresses after the kill.
	raw, err := os.ReadFile(filepath.Join(dir, "run", "node-1.log"))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(raw), "supervisor: start node 1"); got < 2 {
		t.Fatalf("killed node was not restarted (%d starts):\n%s", got, raw)
	}
}
