// Command overlayd runs one wire node: a TCP daemon that serves soft-state
// shards and landmark pings, and can publish itself and query for its
// nearest peer.
//
// A minimal three-terminal demo (the first two double as landmarks):
//
//	overlayd -listen 127.0.0.1:7001 -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 -landmarks 127.0.0.1:7001,127.0.0.1:7002
//	overlayd -listen 127.0.0.1:7002 -peers ...same... -landmarks ...same...
//	overlayd -listen 127.0.0.1:7003 -peers ...same... -landmarks ...same... -publish -query
//
// With -publish the node measures its landmark vector, derives its
// landmark number, and stores its record at the owning peer; with -query
// it then asks the soft-state for its physically nearest peer.
//
// With -metrics ADDR the daemon serves its telemetry registry over HTTP:
// /metrics (Prometheus text format), /metrics.json, /healthz, and
// /readyz. /healthz is pure liveness (the process is up); /readyz
// answers 200 only once the node has joined the overlay — for a
// publisher, once the initial publish landed and the refresh loop is
// publishing — so supervisors (cmd/overlayctl) gate bootstrap and
// restarts on it instead of sleeping. Peers can also scrape each other
// in-band through the STATS wire op. With -join-retry a failed initial
// publish is retried at that interval (reported not-ready meanwhile)
// instead of exiting, so a node restarted into a half-up cluster joins
// by itself once its landmarks return.
//
// Observability knobs: every root operation (publish, withdraw,
// find-nearest, batch flush) is head-sampled 1-in-N by -trace-sample
// (1 = trace everything, 0 = off) into a fixed -trace-buf span ring
// buffer served at /traces on the metrics address; cmd/overlaymon
// stitches those dumps across nodes into per-trace span trees. -slow-ms
// logs any sampled root request slower than the threshold together with
// its full local span chain, and -pprof mounts net/http/pprof under
// /debug/pprof/ on the metrics listener (off by default).
//
// Live reconfiguration: with -peers-file PATH the peer list is read from
// a file instead of -peers, and SIGHUP re-reads it and atomically swaps
// the ring (new epoch, pools/breakers of removed peers evicted, records
// re-homed to their new owners). The same swap is reachable over HTTP as
// POST /admin/peers on the -metrics address (JSON body:
// {"peers":["host:port",...]}; GET returns the current list and epoch).
// While a serving node re-homes, /readyz answers 503 ("re-homing"), so
// rolling operations gated on readiness wait for the swap to settle.
// Applied reconfigurations count in cluster_reconfig_total, and the
// ring epoch is exported as wire_ring_epoch.
//
// Resilience knobs: -retries caps attempts per wire call (with capped
// exponential backoff and jitter between them), -replicas sets how many
// ring owners each published record is stored on, and -handle-timeout
// bounds how long the server side holds an idle connection (the deadline
// resets on every frame, so busy persistent connections live on).
//
// Transport knobs: -pool-size sets how many persistent, multiplexed
// client connections the node keeps per peer, -batch-window makes
// the refresh loop coalesce publishes headed for the same ring owner
// into publish-batch frames flushed at that interval (0 keeps the
// one-store-per-owner behavior), and -codec caps the wire codec the
// node negotiates: "binary" (default) upgrades each connection to
// compact length-prefixed frames when the peer echoes the
// advertisement, "json" pins the node to the pre-binary
// newline-delimited format. Live connections per negotiated version
// show up in /metrics as wire_codec{version}.
//
// Output is logfmt (log/slog): one line per event, machine-parseable
// key=value pairs. -v enables debug-level lines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"gsso/internal/obs"
	"gsso/internal/obs/span"
	"gsso/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "overlayd:", err)
		os.Exit(1)
	}
}

// newLogger builds the daemon's logfmt logger. Timestamps are dropped:
// the output is consumed by tests and pipelines, and a collector adds
// its own receive time.
func newLogger(out io.Writer, verbose bool) *slog.Logger {
	lvl := slog.LevelInfo
	if verbose {
		lvl = slog.LevelDebug
	}
	return slog.New(slog.NewTextHandler(out, &slog.HandlerOptions{
		Level: lvl,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{}
			}
			return a
		},
	}))
}

// readyState is the daemon's readiness latch: /healthz stays a pure
// liveness probe (the process is up and serving HTTP), while /readyz
// flips to 200 only once the node has actually joined the overlay — for
// a publisher, once the initial publish landed and the refresh loop is
// keeping it alive. Supervisors gate cluster bootstrap on readiness
// instead of sleeping.
type readyState struct {
	mu     sync.Mutex
	ready  bool
	reason string
}

func newReadyState(reason string) *readyState {
	return &readyState{reason: reason}
}

func (r *readyState) set(ready bool, reason string) {
	r.mu.Lock()
	r.ready, r.reason = ready, reason
	r.mu.Unlock()
}

func (r *readyState) get() (bool, string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ready, r.reason
}

// serveMetrics exposes reg on addr — plus /traces when a span collector
// is attached, /readyz when a readiness latch is wired (nil mirrors
// liveness: always ready), /admin/peers when an admin handler is wired,
// and the net/http/pprof endpoints when pprofOn — and returns the
// server plus its bound listener address (addr may carry port 0).
func serveMetrics(addr string, reg *obs.Registry, col *span.Collector, ready *readyState, admin http.Handler, pprofOn bool, logger *slog.Logger) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", obs.Handler(reg))
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready == nil {
			_, _ = io.WriteString(w, "ready\n")
			return
		}
		if ok, reason := ready.get(); !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = io.WriteString(w, "starting: "+reason+"\n")
			return
		}
		_, _ = io.WriteString(w, "ready\n")
	})
	if col != nil {
		mux.Handle("/traces", span.Handler(col))
	}
	if admin != nil {
		mux.Handle("/admin/peers", admin)
	}
	if pprofOn {
		// Registered explicitly on this mux (not the default one): the
		// profiler is opt-in and scoped to the metrics listener, so live
		// nodes can be profiled like topobench runs without exposing
		// /debug on the overlay port.
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	logger.Info("metrics", "addr", ln.Addr().String(), "traces", col != nil, "pprof", pprofOn)
	return srv, ln.Addr().String(), nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("overlayd", flag.ContinueOnError)
	var (
		demo      = fs.Int("demo", 0, "spin an n-node local demo cluster, run the full flow, exit")
		listen    = fs.String("listen", "127.0.0.1:0", "address to listen on")
		peersCSV  = fs.String("peers", "", "comma-separated full peer list (including self)")
		lmCSV     = fs.String("landmarks", "", "comma-separated landmark addresses")
		ttl       = fs.Duration("ttl", time.Minute, "soft-state record TTL")
		maxRTT    = fs.Float64("max-rtt", 100, "RTT (ms) mapped to the far grid edge")
		indexDims = fs.Int("index-dims", 3, "landmark vector components fed to the curve")
		bits      = fs.Int("bits", 5, "grid bits per curve dimension")
		pings     = fs.Int("pings", 3, "pings per landmark measurement")
		budget    = fs.Int("budget", 5, "RTT probes per nearest-peer query")
		publish   = fs.Bool("publish", false, "publish this node's record after startup")
		refresh   = fs.Duration("refresh", 0, "republish interval (0 = ttl/3; only with -publish)")
		query     = fs.Bool("query", false, "query for the nearest peer after publishing")
		oneshot   = fs.Bool("oneshot", false, "exit after publish/query instead of serving")
		timeout   = fs.Duration("timeout", 2*time.Second, "per-request network timeout")
		metrics   = fs.String("metrics", "", "serve /metrics, /metrics.json, /healthz on this address")
		hold      = fs.Duration("hold", 0, "demo only: keep the cluster (and -metrics endpoint) up this long after the flow")
		verbose   = fs.Bool("v", false, "debug-level logging")

		handleTO  = fs.Duration("handle-timeout", 10*time.Second, "server-side idle deadline per connection (reset on every frame)")
		replicas  = fs.Int("replicas", 2, "ring owners each record is stored on")
		retries   = fs.Int("retries", 3, "attempts per wire call (capped exponential backoff between them)")
		poolSize  = fs.Int("pool-size", 2, "pooled client connections kept per peer")
		codecName = fs.String("codec", "binary", "highest wire codec to negotiate: binary (compact frames, auto-upgrades per connection) or json (pre-binary peer emulation)")
		batchWin  = fs.Duration("batch-window", 0, "coalesce refresh publishes to the same owner within this window (0 disables batching)")
		drainTO   = fs.Duration("drain-timeout", 2*time.Second, "graceful-drain budget on SIGINT/SIGTERM: withdraw soft-state before closing (0 disables)")
		joinRetry = fs.Duration("join-retry", 0, "retry a failed initial publish at this interval instead of exiting (0 = fail hard); the node reports not-ready on /readyz until joined")
		peersFile = fs.String("peers-file", "", "read the peer list from this file instead of -peers; SIGHUP re-reads it and live-swaps the ring")

		traceSample = fs.Int("trace-sample", 1, "head-sample 1 in N root requests into /traces (1 = all, 0 disables tracing)")
		traceBuf    = fs.Int("trace-buf", 4096, "span ring-buffer capacity (oldest spans overwritten)")
		slowMs      = fs.Float64("slow-ms", 0, "log any sampled root request slower than this many ms with its full span chain (0 disables)")
		pprofOn     = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the -metrics address")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := newLogger(out, *verbose)
	var maxCodec uint8
	switch *codecName {
	case "binary":
		maxCodec = wire.CodecBinary
	case "json":
		maxCodec = wire.CodecJSON
	default:
		return fmt.Errorf("unknown -codec %q (want binary or json)", *codecName)
	}
	if *demo > 0 {
		return runDemo(*demo, *ttl, *timeout, *metrics, *hold, maxCodec, logger)
	}
	if *lmCSV == "" {
		return fmt.Errorf("need -landmarks")
	}
	cfg := wire.SpaceConfig{
		Landmarks:  splitCSV(*lmCSV),
		IndexDims:  *indexDims,
		BitsPerDim: *bits,
		MaxRTTMs:   *maxRTT,
	}
	pol := wire.DefaultRetryPolicy()
	pol.MaxAttempts = *retries
	var col *span.Collector
	if *traceSample > 0 {
		col = span.NewCollector(*traceBuf, *traceSample)
	}
	peerList := splitCSV(*peersCSV)
	if *peersFile != "" {
		pl, err := readPeersFile(*peersFile)
		if err != nil {
			return fmt.Errorf("peers-file: %w", err)
		}
		peerList = pl
	}
	node, err := wire.NewNode(*listen, cfg, peerList, *ttl,
		wire.WithHandleTimeout(*handleTO),
		wire.WithReplication(*replicas),
		wire.WithRetryPolicy(pol),
		wire.WithPoolSize(*poolSize),
		wire.WithMaxCodec(maxCodec),
		wire.WithBatchWindow(*batchWin),
		wire.WithTracing(col),
		wire.WithLogger(logger))
	if err != nil {
		return err
	}
	defer node.Close()
	if *slowMs > 0 {
		col.SetSlowLog(*slowMs, func(root span.Span, chain []span.Span) {
			logger.Warn("slow-request", "op", root.Op,
				"trace", fmt.Sprintf("%016x", root.TraceID),
				"dur_ms", fmt.Sprintf("%.2f", root.DurMs),
				"spans", span.ChainString(chain))
		})
	}
	logger.Info("listening", "addr", node.Addr(),
		"landmarks", len(cfg.Landmarks), "peers", len(peerList))

	// Liveness vs readiness: the metrics listener serves /healthz as soon
	// as it is up (the process lives), but /readyz answers 503 until the
	// node has joined — for a publisher, until the first publish landed
	// and the refresh loop is keeping the record alive.
	ready := newReadyState("node starting")

	// Live reconfiguration: SIGHUP re-reads -peers-file and POST
	// /admin/peers applies a pushed list; both run the same apply path.
	// A node that was serving flips /readyz to 503 ("re-homing") for the
	// duration of the swap so load balancers and the supervisor's
	// readiness barrier see the membership change settle; a node still
	// joining keeps its original not-ready reason.
	reconfigs := node.Registry().Counter("cluster_reconfig_total",
		"Peer-list reconfigurations applied live (SIGHUP or /admin/peers).").With()
	var reconfMu sync.Mutex
	applyPeers := func(peers []string, source string) (uint64, error) {
		reconfMu.Lock()
		defer reconfMu.Unlock()
		wasReady, reason := ready.get()
		if wasReady {
			ready.set(false, "re-homing")
		}
		before := node.RingEpoch()
		epoch, err := node.SetPeers(peers, *timeout)
		if err == nil && epoch != before {
			reconfigs.Inc()
			logger.Info("reconfigured", "source", source, "epoch", epoch, "peers", len(peers))
		}
		if wasReady {
			ready.set(true, reason)
		}
		if err != nil {
			logger.Warn("reconfig-failed", "source", source, "err", err)
		}
		return epoch, err
	}
	admin := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			// Fall through to the state dump below.
		case http.MethodPost:
			var req struct {
				Peers []string `json:"peers"`
			}
			if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
				http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
				return
			}
			if _, err := applyPeers(req.Peers, "admin"); err != nil {
				http.Error(w, err.Error(), http.StatusUnprocessableEntity)
				return
			}
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"epoch": node.RingEpoch(),
			"peers": node.Peers(),
		})
	})
	if *metrics != "" {
		srv, _, err := serveMetrics(*metrics, node.Registry(), col, ready, admin, *pprofOn, logger)
		if err != nil {
			return err
		}
		defer srv.Close()
	}

	// The signal handler is installed before the join loop so a supervisor
	// stopping a node that is still retrying its way in does not hang.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	// With a peers file, SIGHUP is the zero-downtime reload: re-read the
	// file and live-swap the ring. Without one SIGHUP keeps its default
	// terminate action — there is nothing to reload from.
	if *peersFile != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		quit := make(chan struct{})
		defer close(quit)
		go func() {
			for {
				select {
				case <-quit:
					return
				case <-hup:
					peers, err := readPeersFile(*peersFile)
					if err != nil {
						logger.Warn("peers-file-reload-failed", "path", *peersFile, "err", err)
						continue
					}
					_, _ = applyPeers(peers, "sighup")
				}
			}
		}()
	}

	if *publish {
		ready.set(false, "awaiting initial publish")
		rec, err := node.Publish(*pings, *timeout)
		for err != nil {
			if *joinRetry <= 0 {
				return fmt.Errorf("publish: %w", err)
			}
			logger.Warn("join-pending", "retry_in", *joinRetry, "err", err)
			select {
			case <-sig:
				// Interrupted before joining: nothing published, nothing to
				// drain.
				logger.Info("shutdown")
				return nil
			case <-time.After(*joinRetry):
			}
			rec, err = node.Publish(*pings, *timeout)
		}
		logger.Info("published", "number", rec.Number,
			"owner", node.OwnerOf(rec.Number), "replicas", node.Replication())
		logger.Debug("vector", "rtts_ms", fmt.Sprintf("%.3v", rec.Vector))
		if !*oneshot {
			node.StartRefresh(*refresh, *pings, *timeout)
		}
	}
	if *query {
		addr, rtt, err := node.FindNearest(*budget, *timeout)
		if err != nil {
			return fmt.Errorf("query: %w", err)
		}
		logger.Info("nearest", "peer", addr, "rtt", rtt)
	}
	if *oneshot {
		return nil
	}
	ready.set(true, "")
	logger.Info("ready", "publisher", *publish)

	<-sig
	ready.set(false, "draining")
	// Graceful drain: withdraw our soft-state before the deferred Close
	// tears the listener down (the proactive-departure case of §5.2 —
	// leave by deletion, not by letting peers wait out the TTL).
	if *drainTO > 0 {
		acked, err := node.Withdraw(*drainTO)
		switch {
		case err != nil:
			logger.Warn("drain-failed", "err", err)
		case acked > 0:
			logger.Info("drained", "owners_acked", acked)
		}
	}
	logger.Info("shutdown")
	return nil
}

// runDemo spins n nodes on ephemeral localhost ports (the first three, or
// fewer, double as landmarks), publishes everyone's record, and asks each
// node for its nearest peer — the whole zero-to-aha flow in one command.
// All nodes share one telemetry registry, served on metricsAddr when set.
func runDemo(n int, ttl, timeout time.Duration, metricsAddr string, hold time.Duration, maxCodec uint8, logger *slog.Logger) error {
	if n < 2 {
		return fmt.Errorf("demo needs at least 2 nodes, got %d", n)
	}
	// First pass: reserve addresses.
	boot := make([]*wire.Node, n)
	addrs := make([]string, n)
	stub := wire.SpaceConfig{Landmarks: []string{"boot"}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
	for i := range boot {
		node, err := wire.NewNode("127.0.0.1:0", stub, nil, ttl)
		if err != nil {
			return err
		}
		boot[i] = node
		addrs[i] = node.Addr()
	}
	for _, b := range boot {
		if err := b.Close(); err != nil {
			return err
		}
	}
	// Second pass: the real cluster.
	lmCount := 3
	if lmCount > n {
		lmCount = n
	}
	cfg := wire.SpaceConfig{
		Landmarks:  addrs[:lmCount],
		IndexDims:  3,
		BitsPerDim: 5,
		MaxRTTMs:   50,
	}
	reg := obs.NewRegistry()
	nodes := make([]*wire.Node, n)
	for i := range nodes {
		node, err := wire.NewNodeWithRegistry(addrs[i], cfg, addrs, ttl, reg,
			wire.WithMaxCodec(maxCodec),
			wire.WithLogger(logger))
		if err != nil {
			return err
		}
		nodes[i] = node
		defer node.Close()
	}
	logger.Info("demo-start", "nodes", n, "landmarks", lmCount)
	if metricsAddr != "" {
		// Demo nodes stay untraced: a collector is per-node (its node
		// label is single-valued) and the demo shares one process. The
		// nil readiness latch makes /readyz mirror /healthz.
		srv, _, err := serveMetrics(metricsAddr, reg, nil, nil, nil, false, logger)
		if err != nil {
			return err
		}
		defer srv.Close()
	}
	for _, node := range nodes {
		rec, err := node.Publish(2, timeout)
		if err != nil {
			return fmt.Errorf("publish %s: %w", node.Addr(), err)
		}
		logger.Info("published", "addr", node.Addr(), "number", rec.Number,
			"owner", node.OwnerOf(rec.Number))
	}
	for _, node := range nodes {
		addr, rtt, err := node.FindNearest(3, timeout)
		if err != nil {
			logger.Warn("no-nearest", "addr", node.Addr(), "err", err)
			continue
		}
		logger.Info("nearest", "addr", node.Addr(), "peer", addr, "rtt", rtt)
	}
	// In-band scrape: any node can ask any other for its counters.
	if snap, err := wire.FetchStats(nodes[0].Addr(), timeout); err == nil {
		total := 0.0
		if f, ok := snap.Family("wire_requests_total"); ok {
			for _, s := range f.Series {
				total += s.Value
			}
		}
		logger.Info("stats", "peer", nodes[0].Addr(), "requests_served", int(total))
	}
	if hold > 0 {
		logger.Info("holding", "for", hold)
		time.Sleep(hold)
	}
	logger.Info("demo-done")
	return nil
}

// readPeersFile parses a peers file: addresses separated by newlines,
// commas, or whitespace; blank lines and #-comments are ignored.
func readPeersFile(path string) ([]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(string(b), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		out = append(out, strings.FieldsFunc(line, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t' || r == '\r'
		})...)
	}
	return out, nil
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
