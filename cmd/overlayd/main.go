// Command overlayd runs one wire node: a TCP daemon that serves soft-state
// shards and landmark pings, and can publish itself and query for its
// nearest peer.
//
// A minimal three-terminal demo (the first two double as landmarks):
//
//	overlayd -listen 127.0.0.1:7001 -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 -landmarks 127.0.0.1:7001,127.0.0.1:7002
//	overlayd -listen 127.0.0.1:7002 -peers ...same... -landmarks ...same...
//	overlayd -listen 127.0.0.1:7003 -peers ...same... -landmarks ...same... -publish -query
//
// With -publish the node measures its landmark vector, derives its
// landmark number, and stores its record at the owning peer; with -query
// it then asks the soft-state for its physically nearest peer.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gsso/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "overlayd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("overlayd", flag.ContinueOnError)
	var (
		demo      = fs.Int("demo", 0, "spin an n-node local demo cluster, run the full flow, exit")
		listen    = fs.String("listen", "127.0.0.1:0", "address to listen on")
		peersCSV  = fs.String("peers", "", "comma-separated full peer list (including self)")
		lmCSV     = fs.String("landmarks", "", "comma-separated landmark addresses")
		ttl       = fs.Duration("ttl", time.Minute, "soft-state record TTL")
		maxRTT    = fs.Float64("max-rtt", 100, "RTT (ms) mapped to the far grid edge")
		indexDims = fs.Int("index-dims", 3, "landmark vector components fed to the curve")
		bits      = fs.Int("bits", 5, "grid bits per curve dimension")
		pings     = fs.Int("pings", 3, "pings per landmark measurement")
		budget    = fs.Int("budget", 5, "RTT probes per nearest-peer query")
		publish   = fs.Bool("publish", false, "publish this node's record after startup")
		refresh   = fs.Duration("refresh", 0, "republish interval (0 = ttl/3; only with -publish)")
		query     = fs.Bool("query", false, "query for the nearest peer after publishing")
		oneshot   = fs.Bool("oneshot", false, "exit after publish/query instead of serving")
		timeout   = fs.Duration("timeout", 2*time.Second, "per-request network timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *demo > 0 {
		return runDemo(*demo, *ttl, *timeout, out)
	}
	if *lmCSV == "" {
		return fmt.Errorf("need -landmarks")
	}
	cfg := wire.SpaceConfig{
		Landmarks:  splitCSV(*lmCSV),
		IndexDims:  *indexDims,
		BitsPerDim: *bits,
		MaxRTTMs:   *maxRTT,
	}
	node, err := wire.NewNode(*listen, cfg, splitCSV(*peersCSV), *ttl)
	if err != nil {
		return err
	}
	defer node.Close()
	fmt.Fprintf(out, "overlayd: listening on %s (%d landmarks, %d peers)\n",
		node.Addr(), len(cfg.Landmarks), len(splitCSV(*peersCSV)))

	if *publish {
		rec, err := node.Publish(*pings, *timeout)
		if err != nil {
			return fmt.Errorf("publish: %w", err)
		}
		fmt.Fprintf(out, "overlayd: published number=%d vector=%.3v -> owner %s\n",
			rec.Number, rec.Vector, node.OwnerOf(rec.Number))
		if !*oneshot {
			node.StartRefresh(*refresh, *pings, *timeout)
		}
	}
	if *query {
		addr, rtt, err := node.FindNearest(*budget, *timeout)
		if err != nil {
			return fmt.Errorf("query: %w", err)
		}
		fmt.Fprintf(out, "overlayd: nearest peer %s at %v\n", addr, rtt)
	}
	if *oneshot {
		return nil
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(out, "overlayd: shutting down")
	return nil
}

// runDemo spins n nodes on ephemeral localhost ports (the first three, or
// fewer, double as landmarks), publishes everyone's record, and asks each
// node for its nearest peer — the whole zero-to-aha flow in one command.
func runDemo(n int, ttl, timeout time.Duration, out io.Writer) error {
	if n < 2 {
		return fmt.Errorf("demo needs at least 2 nodes, got %d", n)
	}
	// First pass: reserve addresses.
	boot := make([]*wire.Node, n)
	addrs := make([]string, n)
	stub := wire.SpaceConfig{Landmarks: []string{"boot"}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
	for i := range boot {
		node, err := wire.NewNode("127.0.0.1:0", stub, nil, ttl)
		if err != nil {
			return err
		}
		boot[i] = node
		addrs[i] = node.Addr()
	}
	for _, b := range boot {
		if err := b.Close(); err != nil {
			return err
		}
	}
	// Second pass: the real cluster.
	lmCount := 3
	if lmCount > n {
		lmCount = n
	}
	cfg := wire.SpaceConfig{
		Landmarks:  addrs[:lmCount],
		IndexDims:  3,
		BitsPerDim: 5,
		MaxRTTMs:   50,
	}
	nodes := make([]*wire.Node, n)
	for i := range nodes {
		node, err := wire.NewNode(addrs[i], cfg, addrs, ttl)
		if err != nil {
			return err
		}
		nodes[i] = node
		defer node.Close()
	}
	fmt.Fprintf(out, "overlayd demo: %d nodes up, %d landmarks\n", n, lmCount)
	for _, node := range nodes {
		rec, err := node.Publish(2, timeout)
		if err != nil {
			return fmt.Errorf("publish %s: %w", node.Addr(), err)
		}
		fmt.Fprintf(out, "  %s published number=%d -> owner %s\n",
			node.Addr(), rec.Number, node.OwnerOf(rec.Number))
	}
	for _, node := range nodes {
		addr, rtt, err := node.FindNearest(3, timeout)
		if err != nil {
			fmt.Fprintf(out, "  %s: no nearest peer found (%v)\n", node.Addr(), err)
			continue
		}
		fmt.Fprintf(out, "  %s -> nearest %s at %v\n", node.Addr(), addr, rtt)
	}
	fmt.Fprintln(out, "overlayd demo: done")
	return nil
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
