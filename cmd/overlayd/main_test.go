package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"gsso/internal/wire"
)

// syncBuffer is a bytes.Buffer safe for one writer goroutine (the demo
// logger) racing reader polls from the test.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestSplitCSV(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"", 0},
		{"a", 1},
		{"a,b,c", 3},
		{" a , b ", 2},
		{"a,,b", 2},
	}
	for _, tc := range cases {
		if got := splitCSV(tc.in); len(got) != tc.want {
			t.Fatalf("splitCSV(%q) = %v, want %d entries", tc.in, got, tc.want)
		}
	}
}

func TestRequiresLandmarks(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-oneshot"}, &buf); err == nil {
		t.Fatal("missing -landmarks accepted")
	}
}

func TestOneshotStartup(t *testing.T) {
	// A landmark node to ping, started directly.
	lm, err := wire.NewNode("127.0.0.1:0", wire.SpaceConfig{
		Landmarks: []string{"self"}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50,
	}, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer lm.Close()

	var buf bytes.Buffer
	err = run([]string{
		"-listen", "127.0.0.1:0",
		"-landmarks", lm.Addr(),
		"-oneshot",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "msg=listening") {
		t.Fatalf("startup banner missing:\n%s", buf.String())
	}
	// Timestamps are stripped for deterministic output.
	if strings.Contains(buf.String(), "time=") {
		t.Fatalf("log lines carry timestamps:\n%s", buf.String())
	}
}

func TestOneshotPublishQuery(t *testing.T) {
	// Two helper nodes: both landmarks, one of them also the peer that
	// will host records and be discovered as nearest.
	cfgStub := wire.SpaceConfig{Landmarks: []string{"x"}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
	a, err := wire.NewNode("127.0.0.1:0", cfgStub, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := wire.NewNode("127.0.0.1:0", cfgStub, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Publish b's record manually so the query finds someone.
	cfg := wire.SpaceConfig{Landmarks: []string{a.Addr(), b.Addr()}, IndexDims: 2, BitsPerDim: 4, MaxRTTMs: 50}
	peers := []string{a.Addr(), b.Addr()}
	helper, err := wire.NewNode("127.0.0.1:0", cfg, peers, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// helper is not in peers, so its record lands on a or b; it stays
	// alive so the query's RTT probe of it succeeds.
	defer helper.Close()
	if _, err := helper.Publish(1, 2*time.Second); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	err = run([]string{
		"-listen", "127.0.0.1:0",
		"-peers", strings.Join(peers, ","),
		"-landmarks", strings.Join([]string{a.Addr(), b.Addr()}, ","),
		"-publish", "-query", "-oneshot",
		"-timeout", "2s",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "msg=published number=") {
		t.Fatalf("publish line missing:\n%s", out)
	}
	if !strings.Contains(out, "msg=nearest peer=") {
		t.Fatalf("query line missing:\n%s", out)
	}
	// -v was not set: the debug vector line must be suppressed.
	if strings.Contains(out, "msg=vector") {
		t.Fatalf("debug line leaked without -v:\n%s", out)
	}
}

// TestTransportFlags: -pool-size and -batch-window parse and run the
// publish flow through the pooled transport.
func TestTransportFlags(t *testing.T) {
	cfgStub := wire.SpaceConfig{Landmarks: []string{"x"}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
	lm, err := wire.NewNode("127.0.0.1:0", cfgStub, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer lm.Close()

	var buf bytes.Buffer
	err = run([]string{
		"-listen", "127.0.0.1:0",
		"-peers", lm.Addr(),
		"-landmarks", lm.Addr(),
		"-pool-size", "1",
		"-batch-window", "5ms",
		"-publish", "-oneshot",
		"-timeout", "2s",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "msg=published number=") {
		t.Fatalf("publish line missing:\n%s", buf.String())
	}
}

func TestVerboseEmitsDebug(t *testing.T) {
	cfgStub := wire.SpaceConfig{Landmarks: []string{"x"}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
	lm, err := wire.NewNode("127.0.0.1:0", cfgStub, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer lm.Close()

	var buf bytes.Buffer
	err = run([]string{
		"-listen", "127.0.0.1:0",
		"-peers", lm.Addr(),
		"-landmarks", lm.Addr(),
		"-publish", "-oneshot", "-v",
		"-timeout", "2s",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "level=DEBUG") || !strings.Contains(out, "msg=vector") {
		t.Fatalf("-v did not surface debug lines:\n%s", out)
	}
}

func TestDemoMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-demo", "4", "-timeout", "2s"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "msg=demo-start nodes=4") || !strings.Contains(out, "msg=demo-done") {
		t.Fatalf("demo output wrong:\n%s", out)
	}
	if strings.Count(out, "msg=published") != 4 {
		t.Fatalf("expected 4 publishes:\n%s", out)
	}
	// The in-band STATS scrape of node 0 must report served requests.
	if !strings.Contains(out, "msg=stats") || !strings.Contains(out, "requests_served=") {
		t.Fatalf("demo stats line missing:\n%s", out)
	}
}

func TestDemoTooSmall(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-demo", "1"}, &buf); err == nil {
		t.Fatal("demo with 1 node accepted")
	}
}

// metricValue extracts the value of the first exposition line whose name
// and label block match the given prefix, e.g.
// `wire_requests_total{type="ping"}`.
func metricValue(body, prefix string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		return v, true
	}
	return 0, false
}

// TestDemoMetricsEndpoint is the acceptance flow: `overlayd -demo 3
// -metrics 127.0.0.1:0` must serve a /metrics page with non-zero
// per-type request counters and a populated RTT histogram. The demo is
// held open long enough for the test to scrape mid-run.
func TestDemoMetricsEndpoint(t *testing.T) {
	buf := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-demo", "3",
			"-metrics", "127.0.0.1:0",
			"-timeout", "2s",
			"-hold", "4s",
		}, buf)
	}()

	// The metrics listener binds an ephemeral port; pull it from the log.
	addrRe := regexp.MustCompile(`msg=metrics addr=(\S+)`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := addrRe.FindStringSubmatch(buf.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics address never logged:\n%s", buf.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Wait for the demo flow to finish (the hold line) so counters are
	// fully populated before scraping.
	for !strings.Contains(buf.String(), "msg=holding") {
		if time.Now().After(deadline) {
			t.Fatalf("demo never reached hold:\n%s", buf.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	body := fetch(t, "http://"+addr+"/metrics")
	if ct := fetchContentType(t, "http://"+addr+"/metrics"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	for _, typ := range []string{"ping", "store", "query", "stats"} {
		prefix := fmt.Sprintf("wire_requests_total{type=%q}", typ)
		if v, ok := metricValue(body, prefix); !ok || v <= 0 {
			t.Fatalf("%s = %v (ok=%v), want > 0\n%s", prefix, v, ok, body)
		}
	}
	if v, ok := metricValue(body, `wire_dial_rtt_ms_bucket{le="+Inf"}`); !ok || v <= 0 {
		t.Fatalf("dial RTT histogram empty (v=%v ok=%v)\n%s", v, ok, body)
	}
	if v, ok := metricValue(body, "wire_dial_rtt_ms_count"); !ok || v <= 0 {
		t.Fatalf("dial RTT histogram count = %v (ok=%v)", v, ok)
	}
	if _, ok := metricValue(body, "wire_serve_latency_ms_sum"); !ok {
		t.Fatalf("serve latency histogram missing:\n%s", body)
	}

	// JSON flavor and health probe ride on the same mux.
	if js := fetch(t, "http://"+addr+"/metrics.json"); !strings.Contains(js, `"wire_requests_total"`) {
		t.Fatalf("JSON exposition missing family:\n%s", js)
	}
	if hz := fetch(t, "http://"+addr+"/healthz"); hz != "ok\n" {
		t.Fatalf("healthz = %q", hz)
	}

	if err := <-done; err != nil {
		t.Fatalf("demo failed: %v\n%s", err, buf.String())
	}
}

func fetch(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, body)
	}
	return string(body)
}

func fetchContentType(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.Header.Get("Content-Type")
}

// TestGracefulDrainOnSIGTERM pins the shutdown path: a serving node that
// published must withdraw its record from every owner before exiting, so
// peers stop learning about it immediately instead of waiting out the
// TTL.
func TestGracefulDrainOnSIGTERM(t *testing.T) {
	cfgStub := wire.SpaceConfig{Landmarks: []string{"x"}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
	a, err := wire.NewNode("127.0.0.1:0", cfgStub, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := wire.NewNode("127.0.0.1:0", cfgStub, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	peers := []string{a.Addr(), b.Addr()}

	// Keep SIGTERM routed to channels for the whole test so an early
	// signal (sent before run installs its own handler) cannot kill the
	// test process.
	guard := make(chan os.Signal, 8)
	signal.Notify(guard, syscall.SIGTERM)
	defer signal.Stop(guard)

	buf := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0",
			"-peers", strings.Join(peers, ","),
			"-landmarks", strings.Join(peers, ","),
			"-publish",
			"-timeout", "2s",
			"-drain-timeout", "2s",
		}, buf)
	}()

	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(buf.String(), "msg=published") {
		select {
		case err := <-done:
			t.Fatalf("exited before publishing: %v\n%s", err, buf.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("never published:\n%s", buf.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if a.RecordCount()+b.RecordCount() == 0 {
		t.Fatal("publish stored nothing on the owners")
	}

	// The run goroutine registers its signal handler after publishing;
	// resend until the drain completes in case the first signal lands in
	// the registration window.
	var runErr error
	for exited := false; !exited; {
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case runErr = <-done:
			exited = true
		case <-time.After(100 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatalf("SIGTERM did not stop the node:\n%s", buf.String())
			}
		}
	}
	if runErr != nil {
		t.Fatalf("run: %v\n%s", runErr, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "msg=drained owners_acked=") {
		t.Fatalf("drain line missing:\n%s", out)
	}
	if !strings.Contains(out, "msg=shutdown") {
		t.Fatalf("shutdown line missing:\n%s", out)
	}
	if n := a.RecordCount() + b.RecordCount(); n != 0 {
		t.Fatalf("%d records survived the drain", n)
	}
}

// fetchStatus GETs a URL and returns (status, body) without failing the
// test on non-200 — readiness probes are supposed to 503 while starting.
func fetchStatus(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestReadinessSplit pins the liveness/readiness contract: a publisher
// whose landmarks are down must be live (/healthz 200) but not ready
// (/readyz 503) while -join-retry keeps the join pending; once the
// landmark comes up the node joins and flips ready — without a restart.
func TestReadinessSplit(t *testing.T) {
	// Reserve the landmark's address without serving it yet.
	cfgStub := wire.SpaceConfig{Landmarks: []string{"x"}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
	boot, err := wire.NewNode("127.0.0.1:0", cfgStub, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	lmAddr := boot.Addr()
	if err := boot.Close(); err != nil {
		t.Fatal(err)
	}

	guard := make(chan os.Signal, 8)
	signal.Notify(guard, syscall.SIGTERM)
	defer signal.Stop(guard)

	buf := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0",
			"-peers", lmAddr,
			"-landmarks", lmAddr,
			"-metrics", "127.0.0.1:0",
			"-publish",
			"-join-retry", "50ms",
			"-timeout", "250ms",
			"-retries", "1",
			"-drain-timeout", "1s",
		}, buf)
	}()

	addrRe := regexp.MustCompile(`msg=metrics addr=(\S+)`)
	var maddr string
	deadline := time.Now().Add(10 * time.Second)
	for maddr == "" {
		if m := addrRe.FindStringSubmatch(buf.String()); m != nil {
			maddr = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("exited early: %v\n%s", err, buf.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics address never logged:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Live but not ready: the landmark is down, the join is pending.
	if code, _ := fetchStatus(t, "http://"+maddr+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d while starting, want 200 (liveness is not readiness)", code)
	}
	for !strings.Contains(buf.String(), "msg=join-pending") {
		if time.Now().After(deadline) {
			t.Fatalf("join never reported pending:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	code, body := fetchStatus(t, "http://"+maddr+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d (%q) before joining, want 503", code, body)
	}
	if !strings.Contains(body, "starting:") {
		t.Fatalf("readyz body %q carries no reason", body)
	}

	// Bring the landmark up; the pending join must complete on its own.
	lm, err := wire.NewNode(lmAddr, cfgStub, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer lm.Close()
	for {
		if code, _ := fetchStatus(t, "http://"+maddr+"/readyz"); code == http.StatusOK {
			break
		}
		select {
		case err := <-done:
			t.Fatalf("exited instead of joining: %v\n%s", err, buf.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("node never became ready after landmark recovery:\n%s", buf.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !strings.Contains(buf.String(), "msg=published") || !strings.Contains(buf.String(), "msg=ready") {
		t.Fatalf("ready without publish/ready log lines:\n%s", buf.String())
	}

	// Shut down; the drain path still runs.
	for exited := false; !exited; {
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			exited = true
			if err != nil {
				t.Fatalf("run: %v\n%s", err, buf.String())
			}
		case <-time.After(100 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatalf("SIGTERM did not stop the node:\n%s", buf.String())
			}
		}
	}
}

// TestJoinRetryDisabledFailsHard: without -join-retry an unreachable
// landmark still fails the publish immediately — scripts keep their
// fail-fast semantics.
func TestJoinRetryDisabledFailsHard(t *testing.T) {
	cfgStub := wire.SpaceConfig{Landmarks: []string{"x"}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
	boot, err := wire.NewNode("127.0.0.1:0", cfgStub, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	lmAddr := boot.Addr()
	if err := boot.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = run([]string{
		"-listen", "127.0.0.1:0",
		"-peers", lmAddr,
		"-landmarks", lmAddr,
		"-publish", "-oneshot",
		"-timeout", "200ms",
		"-retries", "1",
	}, &buf)
	if err == nil {
		t.Fatal("publish against a dead landmark succeeded")
	}
}
