package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"gsso/internal/wire"
)

func TestSplitCSV(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"", 0},
		{"a", 1},
		{"a,b,c", 3},
		{" a , b ", 2},
		{"a,,b", 2},
	}
	for _, tc := range cases {
		if got := splitCSV(tc.in); len(got) != tc.want {
			t.Fatalf("splitCSV(%q) = %v, want %d entries", tc.in, got, tc.want)
		}
	}
}

func TestRequiresLandmarks(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-oneshot"}, &buf); err == nil {
		t.Fatal("missing -landmarks accepted")
	}
}

func TestOneshotStartup(t *testing.T) {
	// A landmark node to ping, started directly.
	lm, err := wire.NewNode("127.0.0.1:0", wire.SpaceConfig{
		Landmarks: []string{"self"}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50,
	}, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer lm.Close()

	var buf bytes.Buffer
	err = run([]string{
		"-listen", "127.0.0.1:0",
		"-landmarks", lm.Addr(),
		"-oneshot",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "listening on") {
		t.Fatalf("startup banner missing:\n%s", buf.String())
	}
}

func TestOneshotPublishQuery(t *testing.T) {
	// Two helper nodes: both landmarks, one of them also the peer that
	// will host records and be discovered as nearest.
	cfgStub := wire.SpaceConfig{Landmarks: []string{"x"}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
	a, err := wire.NewNode("127.0.0.1:0", cfgStub, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := wire.NewNode("127.0.0.1:0", cfgStub, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Publish b's record manually so the query finds someone.
	cfg := wire.SpaceConfig{Landmarks: []string{a.Addr(), b.Addr()}, IndexDims: 2, BitsPerDim: 4, MaxRTTMs: 50}
	peers := []string{a.Addr(), b.Addr()}
	helper, err := wire.NewNode("127.0.0.1:0", cfg, peers, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// helper is not in peers, so its record lands on a or b; it stays
	// alive so the query's RTT probe of it succeeds.
	defer helper.Close()
	if _, err := helper.Publish(1, 2*time.Second); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	err = run([]string{
		"-listen", "127.0.0.1:0",
		"-peers", strings.Join(peers, ","),
		"-landmarks", strings.Join([]string{a.Addr(), b.Addr()}, ","),
		"-publish", "-query", "-oneshot",
		"-timeout", "2s",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "published number=") {
		t.Fatalf("publish line missing:\n%s", out)
	}
	if !strings.Contains(out, "nearest peer") {
		t.Fatalf("query line missing:\n%s", out)
	}
}

func TestDemoMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-demo", "4", "-timeout", "2s"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "4 nodes up") || !strings.Contains(out, "demo: done") {
		t.Fatalf("demo output wrong:\n%s", out)
	}
	if strings.Count(out, "published number=") != 4 {
		t.Fatalf("expected 4 publishes:\n%s", out)
	}
}

func TestDemoTooSmall(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-demo", "1"}, &buf); err == nil {
		t.Fatal("demo with 1 node accepted")
	}
}
