package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"gsso/internal/wire"
)

// startReconfigurableDaemon runs the daemon in-process with the given
// extra args, waits for its metrics address and readiness, and returns
// the metrics address plus the done channel and log buffer.
func startReconfigurableDaemon(t *testing.T, args []string) (string, chan error, *syncBuffer) {
	t.Helper()
	buf := &syncBuffer{}
	done := make(chan error, 1)
	go func() { done <- run(args, buf) }()

	addrRe := regexp.MustCompile(`msg=metrics addr=(\S+)`)
	var maddr string
	deadline := time.Now().Add(10 * time.Second)
	for maddr == "" {
		if m := addrRe.FindStringSubmatch(buf.String()); m != nil {
			maddr = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("exited early: %v\n%s", err, buf.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics address never logged:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	for {
		if code, _ := fetchStatus(t, "http://"+maddr+"/readyz"); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node never became ready:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	return maddr, done, buf
}

// stopDaemon SIGTERMs the in-process daemon until it exits.
func stopDaemon(t *testing.T, done chan error, buf *syncBuffer) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run: %v\n%s", err, buf.String())
			}
			return
		case <-time.After(100 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatalf("SIGTERM did not stop the node:\n%s", buf.String())
			}
		}
	}
}

// adminState fetches GET /admin/peers.
func adminState(t *testing.T, maddr string) (uint64, []string) {
	t.Helper()
	code, body := fetchStatus(t, "http://"+maddr+"/admin/peers")
	if code != http.StatusOK {
		t.Fatalf("GET /admin/peers = %d (%s)", code, body)
	}
	var st struct {
		Epoch uint64   `json:"epoch"`
		Peers []string `json:"peers"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("admin state: %v\n%s", err, body)
	}
	return st.Epoch, st.Peers
}

// TestAdminPeersEndpoint drives the HTTP control surface: a pushed peer
// list swaps the ring (epoch bump, cluster_reconfig_total increment),
// re-pushing the identical list is a no-op, and garbage is rejected
// without touching the ring.
func TestAdminPeersEndpoint(t *testing.T) {
	cfgStub := wire.SpaceConfig{Landmarks: []string{"x"}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
	a, err := wire.NewNode("127.0.0.1:0", cfgStub, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := wire.NewNode("127.0.0.1:0", cfgStub, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := wire.NewNode("127.0.0.1:0", cfgStub, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	guard := make(chan os.Signal, 8)
	signal.Notify(guard, syscall.SIGTERM)
	defer signal.Stop(guard)

	maddr, done, buf := startReconfigurableDaemon(t, []string{
		"-listen", "127.0.0.1:0",
		"-peers", strings.Join([]string{a.Addr(), b.Addr()}, ","),
		"-landmarks", strings.Join([]string{a.Addr(), b.Addr()}, ","),
		"-metrics", "127.0.0.1:0",
		"-publish",
		"-timeout", "2s",
		"-drain-timeout", "1s",
	})

	if epoch, peers := adminState(t, maddr); epoch != 1 || len(peers) != 2 {
		t.Fatalf("boot admin state = (%d, %v), want epoch 1 with 2 peers", epoch, peers)
	}

	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post("http://"+maddr+"/admin/peers", "application/json",
			bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(out)
	}

	next, _ := json.Marshal(map[string][]string{
		"peers": {a.Addr(), b.Addr(), c.Addr()},
	})
	if code, body := post(string(next)); code != http.StatusOK {
		t.Fatalf("POST /admin/peers = %d (%s)", code, body)
	}
	epoch, peers := adminState(t, maddr)
	if epoch != 2 || len(peers) != 3 {
		t.Fatalf("admin state after push = (%d, %v), want epoch 2 with 3 peers", epoch, peers)
	}
	// The swap left the node serving.
	if code, body := fetchStatus(t, "http://"+maddr+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d (%s) after reconfig", code, body)
	}
	mBody := fetch(t, "http://"+maddr+"/metrics")
	if v, ok := metricValue(mBody, "cluster_reconfig_total"); !ok || v != 1 {
		t.Fatalf("cluster_reconfig_total = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := metricValue(mBody, "wire_ring_epoch"); !ok || v != 2 {
		t.Fatalf("wire_ring_epoch = %v (ok=%v), want 2", v, ok)
	}

	// Identical list: epoch and counter unchanged.
	if code, _ := post(string(next)); code != http.StatusOK {
		t.Fatal("idempotent push rejected")
	}
	if epoch, _ := adminState(t, maddr); epoch != 2 {
		t.Fatalf("no-op push bumped epoch to %d", epoch)
	}
	if v, _ := metricValue(fetch(t, "http://"+maddr+"/metrics"), "cluster_reconfig_total"); v != 1 {
		t.Fatalf("no-op push counted as reconfig (%v)", v)
	}

	// An empty list must be refused and leave the ring alone.
	if code, _ := post(`{"peers":[]}`); code != http.StatusUnprocessableEntity {
		t.Fatalf("empty peer list accepted (%d)", code)
	}
	if code, _ := post(`not json`); code != http.StatusBadRequest {
		t.Fatalf("garbage body accepted (%d)", code)
	}
	if epoch, _ := adminState(t, maddr); epoch != 2 {
		t.Fatalf("rejected pushes changed the epoch to %d", epoch)
	}

	stopDaemon(t, done, buf)
}

// TestSIGHUPReloadsPeersFile drives the file-based control surface: the
// daemon boots from -peers-file, the file grows a node, and SIGHUP
// applies it without a restart.
func TestSIGHUPReloadsPeersFile(t *testing.T) {
	cfgStub := wire.SpaceConfig{Landmarks: []string{"x"}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
	a, err := wire.NewNode("127.0.0.1:0", cfgStub, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := wire.NewNode("127.0.0.1:0", cfgStub, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := wire.NewNode("127.0.0.1:0", cfgStub, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	peersFile := filepath.Join(t.TempDir(), "peers.txt")
	if err := os.WriteFile(peersFile,
		[]byte("# initial membership\n"+a.Addr()+"\n"+b.Addr()+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Route both signals to guard channels before the daemon starts, so
	// an early delivery cannot take the test process down with the
	// default action.
	guard := make(chan os.Signal, 8)
	signal.Notify(guard, syscall.SIGTERM, syscall.SIGHUP)
	defer signal.Stop(guard)

	maddr, done, buf := startReconfigurableDaemon(t, []string{
		"-listen", "127.0.0.1:0",
		"-peers-file", peersFile,
		"-landmarks", strings.Join([]string{a.Addr(), b.Addr()}, ","),
		"-metrics", "127.0.0.1:0",
		"-publish",
		"-timeout", "2s",
		"-drain-timeout", "1s",
	})

	if epoch, peers := adminState(t, maddr); epoch != 1 || len(peers) != 2 {
		t.Fatalf("boot admin state = (%d, %v), want epoch 1 with the file's 2 peers", epoch, peers)
	}

	// Grow the membership in the file and reload.
	if err := os.WriteFile(peersFile,
		[]byte(a.Addr()+","+b.Addr()+" "+c.Addr()+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(buf.String(), "source=sighup") {
		if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("SIGHUP never applied:\n%s", buf.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	epoch, peers := adminState(t, maddr)
	if epoch != 2 || len(peers) != 3 {
		t.Fatalf("admin state after SIGHUP = (%d, %v), want epoch 2 with 3 peers", epoch, peers)
	}
	if code, _ := fetchStatus(t, "http://"+maddr+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d after SIGHUP reload", code)
	}

	stopDaemon(t, done, buf)
}
