// Command overlaymon is the cluster health view over a set of overlayd
// nodes: it scrapes each node's metrics endpoint (/metrics.json,
// /healthz, /readyz, /traces) and renders one merged picture — per-node
// health, readiness and record counts, suspicion and breaker states,
// ring coverage, cluster-wide RPC latency quantiles, and the slowest
// distributed traces stitched across nodes by trace ID. The view itself
// lives in internal/monitor, shared with the e2e chaos harness so the
// console and the gate agree on what "healthy" means.
//
//	overlaymon -nodes 127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003
//	overlaymon -nodes ... -watch 2s      # live view, request rates per tick
//	overlaymon -nodes ... -json          # machine-readable snapshot
//
// The -nodes addresses are the overlayd -metrics listeners, not the
// overlay ports. A one-shot run exits non-zero when any node cannot be
// scraped, so it doubles as a cluster smoke check in scripts (see
// `make mon-smoke`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gsso/internal/monitor"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "overlaymon:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("overlaymon", flag.ContinueOnError)
	var (
		nodesCSV = fs.String("nodes", "", "comma-separated overlayd metrics addresses to scrape")
		timeout  = fs.Duration("timeout", 2*time.Second, "per-scrape HTTP timeout")
		jsonOut  = fs.Bool("json", false, "emit the snapshot as JSON instead of tables")
		watch    = fs.Duration("watch", 0, "rescrape at this interval until interrupted (0 = one shot)")
		top      = fs.Int("top", 5, "slowest stitched traces to keep in the view")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	nodes := splitCSV(*nodesCSV)
	if len(nodes) == 0 {
		return fmt.Errorf("need -nodes")
	}
	if *watch <= 0 {
		view := monitor.BuildView(monitor.ScrapeAll(nodes, *timeout), *top)
		if err := render(out, view, *jsonOut); err != nil {
			return err
		}
		if view.Unreachable > 0 {
			return fmt.Errorf("%d of %d nodes unreachable", view.Unreachable, len(nodes))
		}
		return nil
	}

	// Watch mode: rescrape every interval, diffing request counters into
	// per-node rates. Unreachable nodes render as DOWN rather than
	// failing the run — flapping is exactly what a live view is for.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*watch)
	defer ticker.Stop()
	prev := map[string]float64{}
	prevAt := time.Time{}
	for {
		view := monitor.BuildView(monitor.ScrapeAll(nodes, *timeout), *top)
		now := time.Now()
		if !prevAt.IsZero() {
			dt := now.Sub(prevAt).Seconds()
			for i := range view.Nodes {
				n := &view.Nodes[i]
				if last, ok := prev[n.Addr]; ok && n.Healthy && dt > 0 && n.Requests >= last {
					n.RequestsPerSec = (n.Requests - last) / dt
				}
			}
		}
		for _, n := range view.Nodes {
			if n.Healthy {
				prev[n.Addr] = n.Requests
			}
		}
		prevAt = now
		fmt.Fprintf(out, "--- %s ---\n", view.ScrapedAt)
		if err := render(out, view, *jsonOut); err != nil {
			return err
		}
		select {
		case <-sig:
			return nil
		case <-ticker.C:
		}
	}
}

func render(out io.Writer, view monitor.ClusterView, asJSON bool) error {
	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(view)
	}
	monitor.RenderText(out, view)
	return nil
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
