package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gsso/internal/monitor"
	"gsso/internal/obs"
)

// startScrapable serves a minimal overlayd-compatible metrics surface.
func startScrapable(t *testing.T) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("/", obs.Handler(obs.NewRegistry()))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestRunRequiresNodes(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("missing -nodes accepted")
	}
}

// TestRunOneShotJSON drives the one-shot CLI path end to end: the JSON
// snapshot decodes back into a monitor.ClusterView with the scraped
// node healthy.
func TestRunOneShotJSON(t *testing.T) {
	addr := startScrapable(t)
	var buf bytes.Buffer
	if err := run([]string{"-nodes", addr, "-json"}, &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	var view monitor.ClusterView
	if err := json.Unmarshal(buf.Bytes(), &view); err != nil {
		t.Fatalf("snapshot is not JSON: %v\n%s", err, buf.String())
	}
	if view.Healthy != 1 || len(view.Nodes) != 1 || view.Nodes[0].Addr != addr {
		t.Fatalf("unexpected view: %+v", view)
	}
}

// TestRunOneShotUnreachableFails pins the smoke-check contract: any
// unscrapable node makes the one-shot run exit non-zero — after
// rendering the view, so the failure is diagnosable.
func TestRunOneShotUnreachableFails(t *testing.T) {
	addr := startScrapable(t)
	var buf bytes.Buffer
	err := run([]string{"-nodes", addr + ",127.0.0.1:1", "-timeout", "500ms"}, &buf)
	if err == nil {
		t.Fatal("unreachable node did not fail the run")
	}
	if !strings.Contains(buf.String(), "DOWN") {
		t.Fatalf("down node not rendered:\n%s", buf.String())
	}
}
