package main

import (
	"bytes"
	"runtime"
	"strconv"
	"testing"

	"gsso/internal/experiment"
)

// TestSuiteOutputIdenticalAcrossWorkerCounts is the engine's golden
// contract: the full quick-scale suite must render byte-identical output at
// every pool width, because units are identified by ordinal and seeded by
// identity, never by the worker that happens to execute them.
func TestSuiteOutputIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole quick suite three times")
	}
	widths := []int{1, 4, runtime.GOMAXPROCS(0)}
	var golden []byte
	for _, j := range widths {
		var buf bytes.Buffer
		if err := run([]string{"-run", "all", "-scale", "quick", "-j", strconv.Itoa(j)}, &buf); err != nil {
			t.Fatalf("-j %d: %v", j, err)
		}
		if golden == nil {
			golden = buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), golden) {
			t.Fatalf("-j %d output differs from -j %d output\n--- j=%d ---\n%s\n--- j=%d ---\n%s",
				j, widths[0], widths[0], golden, j, buf.Bytes())
		}
	}
}

// TestTopologyGeneratedOncePerKey asserts the shared cache's whole point:
// re-running the suite in the same process generates zero new topologies —
// every (kind, latency, scale, seed) key is built at most once.
func TestTopologyGeneratedOncePerKey(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole quick suite twice")
	}
	var buf bytes.Buffer
	if err := run([]string{"-run", "all", "-scale", "quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	gens1, _ := experiment.TopologyGenerations()
	if gens1 < 1 {
		t.Fatalf("no topology generations recorded after a full run")
	}
	buf.Reset()
	if err := run([]string{"-run", "all", "-scale", "quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	gens2, hits2 := experiment.TopologyGenerations()
	if gens2 != gens1 {
		t.Fatalf("second identical run generated %d new topologies (want 0)", gens2-gens1)
	}
	if hits2 == 0 {
		t.Fatal("cache reported no hits across two full runs")
	}
}
