// Command topobench regenerates the paper's tables and figures.
//
// Usage:
//
//	topobench -list
//	topobench -run fig14                 # one experiment, quick scale
//	topobench -run all -scale full       # the whole evaluation, paper scale
//	topobench -run fig16 -csv out/       # also write CSV series
//
// Quick scale shrinks the topologies and overlays ~10x so the full suite
// finishes in seconds; full scale reproduces the paper's ~10k-host
// topologies and 4096-member overlays.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"gsso/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topobench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("topobench", flag.ContinueOnError)
	var (
		list   = fs.Bool("list", false, "list experiments and exit")
		runID  = fs.String("run", "", "experiment id to run, or 'all'")
		scale  = fs.String("scale", "quick", "quick or full")
		seed   = fs.Uint64("seed", 1, "root random seed")
		csvDir = fs.String("csv", "", "directory to also write per-table CSV files")
		plot   = fs.Bool("plot", false, "also render numeric tables as ASCII charts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiment.All() {
			fmt.Fprintf(out, "%-11s %-16s %s\n", e.ID, e.Paper, e.Title)
		}
		return nil
	}
	if *runID == "" {
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -run <id|all> or -list")
	}

	var sc experiment.Scale
	switch *scale {
	case "quick":
		sc = experiment.Quick(*seed)
	case "full":
		sc = experiment.Full(*seed)
	default:
		return fmt.Errorf("unknown scale %q (quick|full)", *scale)
	}
	if err := sc.Validate(); err != nil {
		return err
	}

	var todo []experiment.Experiment
	if *runID == "all" {
		todo = experiment.All()
	} else {
		for _, id := range strings.Split(*runID, ",") {
			e, ok := experiment.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			todo = append(todo, e)
		}
	}

	for _, e := range todo {
		tables, err := e.Run(sc)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, t := range tables {
			if err := t.Render(out); err != nil {
				return err
			}
			if *plot {
				if err := experiment.Plot(t, out, 64, 16); err != nil {
					return err
				}
			}
			if *csvDir != "" {
				if err := writeCSV(*csvDir, t); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func writeCSV(dir string, t *experiment.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, t.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
