// Command topobench regenerates the paper's tables and figures.
//
// Usage:
//
//	topobench -list
//	topobench -run fig14                 # one experiment, quick scale
//	topobench -run all -scale full       # the whole evaluation, paper scale
//	topobench -run fig16 -csv out/       # also write CSV series
//
// Quick scale shrinks the topologies and overlays ~10x so the full suite
// finishes in seconds; full scale reproduces the paper's ~10k-host
// topologies and 4096-member overlays.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gsso/internal/experiment"
	"gsso/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topobench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("topobench", flag.ContinueOnError)
	var (
		list   = fs.Bool("list", false, "list experiments and exit")
		runID  = fs.String("run", "", "experiment id to run, or 'all'")
		scale  = fs.String("scale", "quick", "quick or full")
		seed   = fs.Uint64("seed", 1, "root random seed")
		csvDir = fs.String("csv", "", "directory to also write per-table CSV files")
		plot   = fs.Bool("plot", false, "also render numeric tables as ASCII charts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiment.All() {
			fmt.Fprintf(out, "%-11s %-16s %s\n", e.ID, e.Paper, e.Title)
		}
		return nil
	}
	if *runID == "" {
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -run <id|all> or -list")
	}

	var sc experiment.Scale
	switch *scale {
	case "quick":
		sc = experiment.Quick(*seed)
	case "full":
		sc = experiment.Full(*seed)
	default:
		return fmt.Errorf("unknown scale %q (quick|full)", *scale)
	}
	if err := sc.Validate(); err != nil {
		return err
	}

	var todo []experiment.Experiment
	if *runID == "all" {
		todo = experiment.All()
	} else {
		for _, id := range strings.Split(*runID, ",") {
			e, ok := experiment.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			todo = append(todo, e)
		}
	}

	for _, e := range todo {
		before := obs.Default().Snapshot()
		tables, err := e.Run(sc)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		tel := telemetryDelta(e.ID, before, obs.Default().Snapshot())
		for _, t := range tables {
			if err := t.Render(out); err != nil {
				return err
			}
			if *plot {
				if err := experiment.Plot(t, out, 64, 16); err != nil {
					return err
				}
			}
			if *csvDir != "" {
				if err := writeCSV(*csvDir, t); err != nil {
					return err
				}
			}
		}
		tel.render(out)
		if *csvDir != "" {
			if err := tel.writeJSON(*csvDir); err != nil {
				return err
			}
		}
	}
	return nil
}

// telemetry is the per-experiment cost summary, computed by diffing the
// process-global registry around the run. It reports what the paper's
// axes meter: RTT probes spent and overlay messages sent, by category.
type telemetry struct {
	Experiment string           `json:"experiment"`
	Probes     int64            `json:"probes"`
	Messages   map[string]int64 `json:"messages"`
}

// telemetryDelta subtracts the registry counters at before from those at
// after. The sim_* mirrors are process-wide monotone counters, so the
// difference is exactly what the bracketed run spent.
func telemetryDelta(id string, before, after obs.Snapshot) telemetry {
	tel := telemetry{Experiment: id, Messages: map[string]int64{}}
	pb, _ := before.Value("sim_probes_total")
	pa, _ := after.Value("sim_probes_total")
	tel.Probes = int64(pa - pb)
	if f, ok := after.Family("sim_messages_total"); ok {
		for _, s := range f.Series {
			prev, _ := before.Value("sim_messages_total", s.LabelValues...)
			if d := int64(s.Value - prev); d != 0 {
				tel.Messages[s.LabelValues[0]] = d
			}
		}
	}
	return tel
}

// render prints the summary as one greppable line under the tables.
func (t telemetry) render(out io.Writer) {
	cats := make([]string, 0, len(t.Messages))
	total := int64(0)
	for k, v := range t.Messages {
		cats = append(cats, k)
		total += v
	}
	sort.Strings(cats)
	fmt.Fprintf(out, "# telemetry %s: probes=%d messages=%d", t.Experiment, t.Probes, total)
	for _, k := range cats {
		fmt.Fprintf(out, " %s=%d", k, t.Messages[k])
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out)
}

// writeJSON drops the summary next to the CSV series.
func (t telemetry) writeJSON(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, t.Experiment+".telemetry.json"), append(data, '\n'), 0o644)
}

func writeCSV(dir string, t *experiment.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, t.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
