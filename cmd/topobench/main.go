// Command topobench regenerates the paper's tables and figures.
//
// Usage:
//
//	topobench -list
//	topobench -run fig14                 # one experiment, quick scale
//	topobench -run all -scale full       # the whole evaluation, paper scale
//	topobench -run all -scale full -j 8  # fan experiments out over 8 workers
//	topobench -run fig16 -csv out/       # also write CSV series
//
// Quick scale shrinks the topologies and overlays ~10x so the full suite
// finishes in seconds; full scale reproduces the paper's ~10k-host
// topologies and 4096-member overlays.
//
// Experiments fan out across the worker pool of internal/experiment/engine
// and further split into sweep-point units inside; the cell values, table
// order, and telemetry lines are byte-identical at every -j because every
// random stream derives from the unit's identity, never the worker's.
// Timing (-bench-json) goes to a file, not stdout, for the same reason.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"gsso/internal/experiment"
	"gsso/internal/experiment/engine"
	"gsso/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topobench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("topobench", flag.ContinueOnError)
	var (
		list       = fs.Bool("list", false, "list experiments and exit")
		runID      = fs.String("run", "", "experiment id to run, or 'all'")
		scale      = fs.String("scale", "quick", "quick or full")
		seed       = fs.Uint64("seed", 1, "root random seed")
		csvDir     = fs.String("csv", "", "directory to also write per-table CSV files")
		plot       = fs.Bool("plot", false, "also render numeric tables as ASCII charts")
		jobs       = fs.Int("j", 0, "worker-pool width (0 = GOMAXPROCS)")
		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a pprof heap profile to this file")
		benchJSON  = fs.String("bench-json", "", "append per-experiment wall-clock timings to this JSON file")
		wireBench  = fs.String("wire-bench", "", "run the wire transport benchmarks and write results to this JSON file")
		wireDiff   = fs.String("wire-diff", "", "after -wire-bench, fail if any shared benchmark regressed more than 20% in ns/op against this baseline JSON file")
		scaleBench = fs.String("scale-bench", "", "run the ext-scale cells as a benchmark and append the nodes/wall-clock/peak-RSS trajectory to this JSON file")
		scaleN     = fs.String("scale-n", "10000,100000", "comma-separated target node counts for -scale-bench (run in increasing order)")
		scaleDiff  = fs.String("scale-diff", "", "after -scale-bench, fail if any shared cell regressed more than 20% in wall-clock or peak RSS against this baseline JSON file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *wireBench != "" {
		if err := runWireBench(*wireBench, out); err != nil {
			return err
		}
		if *wireDiff != "" {
			return diffWireBench(*wireBench, *wireDiff, 0.20, out)
		}
		return nil
	}
	if *scaleBench != "" {
		if err := runScaleBench(*scaleBench, *scaleN, *seed, out); err != nil {
			return err
		}
		if *scaleDiff != "" {
			return diffScaleBench(*scaleBench, *scaleDiff, 0.20, out)
		}
		return nil
	}
	if *list {
		for _, e := range experiment.All() {
			fmt.Fprintf(out, "%-11s %-16s %s\n", e.ID, e.Paper, e.Title)
		}
		return nil
	}
	if *runID == "" {
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -run <id|all> or -list")
	}

	engine.SetWorkers(*jobs)
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	var sc experiment.Scale
	switch *scale {
	case "quick":
		sc = experiment.Quick(*seed)
	case "full":
		sc = experiment.Full(*seed)
	default:
		return fmt.Errorf("unknown scale %q (quick|full)", *scale)
	}
	if err := sc.Validate(); err != nil {
		return err
	}

	var todo []experiment.Experiment
	if *runID == "all" {
		todo = experiment.All()
	} else {
		for _, id := range strings.Split(*runID, ",") {
			e, ok := experiment.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			todo = append(todo, e)
		}
	}

	// Fan experiments out as top-level units. Results are stitched back in
	// registry order below, so stdout is identical at every pool width; the
	// run-labeled telemetry mirrors keep each experiment's meters separate
	// from its concurrent neighbors'.
	type outcome struct {
		tables  []*experiment.Table
		tel     telemetry
		elapsed time.Duration
	}
	suiteStart := time.Now()
	results, err := engine.Map(len(todo), func(i int) (outcome, error) {
		e := todo[i]
		before := obs.Default().Snapshot()
		start := time.Now()
		tables, err := e.Run(sc)
		if err != nil {
			return outcome{}, fmt.Errorf("%s: %w", e.ID, err)
		}
		return outcome{
			tables:  tables,
			tel:     telemetryDelta(e.ID, before, obs.Default().Snapshot()),
			elapsed: time.Since(start),
		}, nil
	})
	if err != nil {
		return err
	}
	suiteElapsed := time.Since(suiteStart)

	for _, res := range results {
		for _, t := range res.tables {
			if err := t.Render(out); err != nil {
				return err
			}
			if *plot {
				if err := experiment.Plot(t, out, 64, 16); err != nil {
					return err
				}
			}
			if *csvDir != "" {
				if err := writeCSV(*csvDir, t); err != nil {
					return err
				}
			}
		}
		res.tel.render(out)
		if *csvDir != "" {
			if err := res.tel.writeJSON(*csvDir); err != nil {
				return err
			}
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	if *benchJSON != "" {
		report := benchReport{
			Scale:      sc.Name,
			Seed:       *seed,
			Workers:    engine.Workers(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			WallMS:     ms(suiteElapsed),
			PeakRSSKB:  peakRSSKB(),
		}
		report.TopologyGenerations, report.TopologyCacheHits = experiment.TopologyGenerations()
		for i, e := range todo {
			report.Experiments = append(report.Experiments, benchExperiment{
				ID:     e.ID,
				WallMS: ms(results[i].elapsed),
			})
		}
		if err := appendBenchReport(*benchJSON, report); err != nil {
			return err
		}
	}
	return nil
}

// ms rounds a duration to milliseconds with microsecond resolution.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// benchReport is one topobench invocation's timing record.
type benchReport struct {
	Scale               string            `json:"scale"`
	Seed                uint64            `json:"seed"`
	Workers             int               `json:"workers"`
	GOMAXPROCS          int               `json:"gomaxprocs"`
	WallMS              float64           `json:"wall_ms"`
	SpeedupVsJ1         float64           `json:"speedup_vs_j1,omitempty"`
	PeakRSSKB           int64             `json:"peak_rss_kb"`
	TopologyGenerations int64             `json:"topology_generations"`
	TopologyCacheHits   int64             `json:"topology_cache_hits"`
	Experiments         []benchExperiment `json:"experiments"`
}

// benchExperiment is one experiment's wall-clock within a run.
type benchExperiment struct {
	ID          string  `json:"id"`
	WallMS      float64 `json:"wall_ms"`
	SpeedupVsJ1 float64 `json:"speedup_vs_j1,omitempty"`
}

// benchFile accumulates reports across invocations so a -j 1 baseline and
// a parallel run land in the same file for comparison.
type benchFile struct {
	Runs []benchReport `json:"runs"`
}

// appendBenchReport appends report to path, computing speedups against the
// most recent workers==1 run at the same scale already in the file.
func appendBenchReport(path string, report benchReport) error {
	var file benchFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("bench-json %s: %w", path, err)
		}
	}
	for i := len(file.Runs) - 1; i >= 0; i-- {
		base := file.Runs[i]
		if base.Scale != report.Scale || base.Workers != 1 {
			continue
		}
		if report.WallMS > 0 {
			report.SpeedupVsJ1 = base.WallMS / report.WallMS
		}
		baseByID := make(map[string]float64, len(base.Experiments))
		for _, e := range base.Experiments {
			baseByID[e.ID] = e.WallMS
		}
		for j, e := range report.Experiments {
			if b, ok := baseByID[e.ID]; ok && e.WallMS > 0 {
				report.Experiments[j].SpeedupVsJ1 = b / e.WallMS
			}
		}
		break
	}
	file.Runs = append(file.Runs, report)
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// telemetry is the per-experiment cost summary, computed by diffing the
// experiment's own run-labeled series of the process-global registry
// around the run. It reports what the paper's axes meter: RTT probes spent
// and overlay messages sent, by category.
type telemetry struct {
	Experiment string           `json:"experiment"`
	Probes     int64            `json:"probes"`
	Messages   map[string]int64 `json:"messages"`
}

// telemetryDelta subtracts the registry counters at before from those at
// after, considering only series whose run label is the experiment's ID.
// Concurrent experiments write disjoint run labels and shared cache fills
// land under run "shared", so the delta is exactly what this run spent —
// at any worker count, in any completion order.
func telemetryDelta(id string, before, after obs.Snapshot) telemetry {
	tel := telemetry{Experiment: id, Messages: map[string]int64{}}
	pb, _ := before.Value("sim_probes_total", id)
	pa, _ := after.Value("sim_probes_total", id)
	tel.Probes = int64(pa - pb)
	if f, ok := after.Family("sim_messages_total"); ok {
		for _, s := range f.Series {
			if len(s.LabelValues) != 2 || s.LabelValues[1] != id {
				continue
			}
			prev, _ := before.Value("sim_messages_total", s.LabelValues...)
			if d := int64(s.Value - prev); d != 0 {
				tel.Messages[s.LabelValues[0]] = d
			}
		}
	}
	return tel
}

// render prints the summary as one greppable line under the tables.
func (t telemetry) render(out io.Writer) {
	cats := make([]string, 0, len(t.Messages))
	total := int64(0)
	for k, v := range t.Messages {
		cats = append(cats, k)
		total += v
	}
	sort.Strings(cats)
	fmt.Fprintf(out, "# telemetry %s: probes=%d messages=%d", t.Experiment, t.Probes, total)
	for _, k := range cats {
		fmt.Fprintf(out, " %s=%d", k, t.Messages[k])
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out)
}

// writeJSON drops the summary next to the CSV series.
func (t telemetry) writeJSON(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, t.Experiment+".telemetry.json"), append(data, '\n'), 0o644)
}

func writeCSV(dir string, t *experiment.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, t.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
