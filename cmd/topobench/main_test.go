package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig2", "fig16", "tab1", "ext-chord", "ext-tacan"} {
		if !strings.Contains(out, want) {
			t.Fatalf("list missing %q:\n%s", want, out)
		}
	}
}

func TestNoArgsFails(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("expected error with no arguments")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig99"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestUnknownScale(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "tab2", "-scale", "giant"}, &buf); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestRunSingleQuickExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "tab2,figB"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "tab2") || !strings.Contains(out, "figB") {
		t.Fatalf("output missing tables:\n%s", out)
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-run", "tab2", "-csv", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "tab2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "parameter,") {
		t.Fatalf("csv header wrong: %q", string(data[:40]))
	}
}
