package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig2", "fig16", "tab1", "ext-chord", "ext-tacan"} {
		if !strings.Contains(out, want) {
			t.Fatalf("list missing %q:\n%s", want, out)
		}
	}
}

func TestNoArgsFails(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("expected error with no arguments")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig99"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestUnknownScale(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "tab2", "-scale", "giant"}, &buf); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestRunSingleQuickExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "tab2,figB"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "tab2") || !strings.Contains(out, "figB") {
		t.Fatalf("output missing tables:\n%s", out)
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-run", "tab2", "-csv", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "tab2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "parameter,") {
		t.Fatalf("csv header wrong: %q", string(data[:40]))
	}
}

func TestTelemetrySummary(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-run", "tab1", "-csv", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	// The run ends with a one-line cost summary fed by the registry
	// mirror of the simulator's meters.
	re := regexp.MustCompile(`(?m)^# telemetry tab1: probes=(\d+) messages=(\d+)`)
	m := re.FindStringSubmatch(buf.String())
	if m == nil {
		t.Fatalf("telemetry line missing:\n%s", buf.String())
	}
	probes, _ := strconv.ParseInt(m[1], 10, 64)
	msgs, _ := strconv.ParseInt(m[2], 10, 64)
	if probes <= 0 || msgs <= 0 {
		t.Fatalf("telemetry counts not positive: probes=%d messages=%d", probes, msgs)
	}

	// -csv also drops a machine-readable copy next to the series.
	data, err := os.ReadFile(filepath.Join(dir, "tab1.telemetry.json"))
	if err != nil {
		t.Fatal(err)
	}
	var tel telemetry
	if err := json.Unmarshal(data, &tel); err != nil {
		t.Fatal(err)
	}
	if tel.Experiment != "tab1" || tel.Probes != probes {
		t.Fatalf("JSON summary disagrees with rendered line: %+v", tel)
	}
	if tel.Messages["publish"] <= 0 {
		t.Fatalf("no publish traffic metered: %+v", tel)
	}

	// Back-to-back runs must report per-run deltas, not process totals
	// (the global mirror only ever grows).
	var buf2 bytes.Buffer
	if err := run([]string{"-run", "tab1"}, &buf2); err != nil {
		t.Fatal(err)
	}
	m2 := re.FindStringSubmatch(buf2.String())
	if m2 == nil {
		t.Fatalf("second telemetry line missing:\n%s", buf2.String())
	}
	probes2, _ := strconv.ParseInt(m2[1], 10, 64)
	if probes2 >= 2*probes {
		t.Fatalf("second run reports cumulative probes (%d after %d)", probes2, probes)
	}
}
