//go:build !unix

package main

// peakRSSKB is unavailable off unix; bench reports record 0.
func peakRSSKB() int64 { return 0 }
