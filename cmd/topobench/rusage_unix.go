//go:build unix

package main

import "syscall"

// peakRSSKB reports the process's peak resident set size in KiB, as kernel
// accounting sees it (ru_maxrss is KiB on Linux). Returns 0 if unavailable.
func peakRSSKB() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return int64(ru.Maxrss)
}
