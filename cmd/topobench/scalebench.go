package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"gsso/internal/experiment"
)

// scaleBenchCell is one node-count point of the BENCH_scale.json
// trajectory: how long the ext-scale cell took, phase by phase, and what
// the process peak RSS was once the cell finished. Peak RSS from getrusage
// is a process-lifetime high-water mark, so cells always run in increasing
// node order — each cell's reading then attributes the peak to the largest
// topology held so far.
type scaleBenchCell struct {
	TargetN       int     `json:"target_n"`
	Nodes         int     `json:"nodes"`
	Stubs         int     `json:"stubs"`
	GenMS         float64 `json:"gen_ms"`
	BootstrapMS   float64 `json:"bootstrap_ms"`
	QueryMS       float64 `json:"query_ms"`
	TotalMS       float64 `json:"total_ms"`
	PeakRSSKB     int64   `json:"peak_rss_kb"`
	HybridStretch float64 `json:"hybrid_stretch"`
	ERSStretch    float64 `json:"ers_stretch"`
}

// scaleBenchReport is one -scale-bench invocation's record.
type scaleBenchReport struct {
	Seed       uint64           `json:"seed"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Cells      []scaleBenchCell `json:"cells"`
}

// scaleBenchFile accumulates reports so the JSON keeps a trajectory over
// time, mirroring BENCH.json's layout.
type scaleBenchFile struct {
	Runs []scaleBenchReport `json:"runs"`
}

// parseScaleN parses the -scale-n list and returns it sorted ascending
// (required for the RSS attribution described on scaleBenchCell).
func parseScaleN(list string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 64 {
			return nil, fmt.Errorf("bad -scale-n entry %q (want integers >= 64)", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-scale-n is empty")
	}
	sort.Ints(out)
	return out, nil
}

// runScaleBench drives the ext-scale experiment's tsk-large cell at each
// requested node count and appends the wall-clock/RSS trajectory to path.
// Cells run strictly sequentially in increasing-N order; spill streams go
// to a temp dir discarded after aggregation, so the only artifact is the
// JSON record.
func runScaleBench(path, nList string, seed uint64, out io.Writer) error {
	sweep, err := parseScaleN(nList)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "gsso-scale-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	sc := experiment.Full(seed)
	report := scaleBenchReport{Seed: seed, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, n := range sweep {
		start := time.Now()
		cell, err := experiment.RunScaleCell(experiment.TSKLarge, n, sc, dir)
		if err != nil {
			return fmt.Errorf("scale-bench n=%d: %w", n, err)
		}
		c := scaleBenchCell{
			TargetN:       n,
			Nodes:         cell.Nodes,
			Stubs:         cell.Stubs,
			GenMS:         cell.GenMS,
			BootstrapMS:   cell.BootstrapMS,
			QueryMS:       cell.QueryMS,
			TotalMS:       ms(time.Since(start)),
			PeakRSSKB:     peakRSSKB(),
			HybridStretch: cell.Hybrid,
			ERSStretch:    cell.ERS,
		}
		report.Cells = append(report.Cells, c)
		fmt.Fprintf(out, "scale-bench n=%-8d nodes=%-8d gen=%8.0fms bootstrap=%8.0fms query=%8.0fms total=%8.0fms rss=%dKB\n",
			n, c.Nodes, c.GenMS, c.BootstrapMS, c.QueryMS, c.TotalMS, c.PeakRSSKB)
	}

	var file scaleBenchFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("scale-bench %s: %w", path, err)
		}
	}
	file.Runs = append(file.Runs, report)
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// diffScaleBench compares the latest run in headPath against the latest
// run in basePath and fails if any cell present in both regressed more
// than tolerance (0.20 = 20%) in total wall-clock or peak RSS. Cells match
// by target node count; counts present on only one side are skipped so
// sweeping a new N never wedges the gate. Improvements are reported but
// never fail.
func diffScaleBench(headPath, basePath string, tolerance float64, out io.Writer) error {
	load := func(path string) (map[int]scaleBenchCell, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var file scaleBenchFile
		if err := json.Unmarshal(data, &file); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if len(file.Runs) == 0 {
			return nil, fmt.Errorf("%s: no runs recorded", path)
		}
		last := file.Runs[len(file.Runs)-1]
		byN := make(map[int]scaleBenchCell, len(last.Cells))
		for _, c := range last.Cells {
			byN[c.TargetN] = c
		}
		return byN, nil
	}
	head, err := load(headPath)
	if err != nil {
		return err
	}
	base, err := load(basePath)
	if err != nil {
		return err
	}
	var regressions []string
	check := func(n int, what string, b, h float64) {
		if b <= 0 {
			return
		}
		delta := (h - b) / b
		status := "ok"
		if delta > tolerance {
			status = "REGRESSED"
			regressions = append(regressions,
				fmt.Sprintf("n=%d %s: %.0f -> %.0f (%+.1f%%)", n, what, b, h, delta*100))
		}
		fmt.Fprintf(out, "scale-diff n=%-8d %-12s %12.0f -> %12.0f  %+6.1f%%  %s\n",
			n, what, b, h, delta*100, status)
	}
	ns := make([]int, 0, len(base))
	for n := range base {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	for _, n := range ns {
		h, ok := head[n]
		if !ok {
			continue
		}
		b := base[n]
		check(n, "total_ms", b.TotalMS, h.TotalMS)
		check(n, "peak_rss_kb", float64(b.PeakRSSKB), float64(h.PeakRSSKB))
	}
	if len(regressions) > 0 {
		return fmt.Errorf("scale benchmarks regressed past %.0f%% vs %s:\n  %s",
			tolerance*100, basePath, strings.Join(regressions, "\n  "))
	}
	return nil
}
