package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"gsso/internal/ecan"
	"gsso/internal/landmark"
	"gsso/internal/netsim"
	"gsso/internal/simrand"
	"gsso/internal/softstate"
	"gsso/internal/topology"
	"gsso/internal/wire"
)

// wireBenchResult is one wire benchmark's record in BENCH_wire.json.
// ConnsPerOp is new TCP dials per operation — ~1 for the dial-per-RPC
// baseline, ~0 for the pooled transport at steady state — and ReuseRatio
// is the fraction of calls served on an already-open connection.
type wireBenchResult struct {
	Name        string  `json:"name"`
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	ConnsPerOp  float64 `json:"conns_per_op"`
	ReuseRatio  float64 `json:"reuse_ratio"`
}

type wireBenchReport struct {
	GOMAXPROCS int               `json:"gomaxprocs"`
	Results    []wireBenchResult `json:"results"`
}

// wireBenchCfg is a stub landmark space: the benchmarks exercise the
// transport, not measurement, so the landmark list never gets dialed.
func wireBenchCfg() wire.SpaceConfig {
	return wire.SpaceConfig{Landmarks: []string{"stub"}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
}

// runWireBench benches the wire transport in-process — the dial-per-RPC
// baseline against the pooled, multiplexed transport and the coalesced
// publish-batch path — and writes the results to path as JSON.
func runWireBench(path string, out io.Writer) error {
	server, err := wire.NewNode("127.0.0.1:0", wireBenchCfg(), nil, time.Minute)
	if err != nil {
		return err
	}
	defer server.Close()
	client, err := wire.NewNode("127.0.0.1:0", wireBenchCfg(), nil, time.Minute)
	if err != nil {
		return err
	}
	defer client.Close()

	addr := server.Addr()
	tr := client.Transport()
	exp := time.Now().Add(time.Hour).UnixMilli()
	rec := wire.Record{Addr: "bench:1", Number: 12, ExpiresUnixMilli: exp}
	batch := make([]wire.Record, 64)
	for i := range batch {
		batch[i] = wire.Record{Addr: "bench:1", Number: uint64(i), ExpiresUnixMilli: exp}
	}

	// poolCounters reads the client transport's cumulative dial/reuse
	// meters; benchmarks diff them around the timed loop. counterSource
	// is swapped when a benchmark drives a different client node.
	counterSource := client
	poolCounters := func() (dials, reuse float64) {
		snap := counterSource.Registry().Snapshot()
		dials, _ = snap.Value("wire_conn_dials_total")
		reuse, _ = snap.Value("wire_conn_reuse_total")
		return dials, reuse
	}

	var report wireBenchReport
	report.GOMAXPROCS = runtime.GOMAXPROCS(0)
	var benchErr error
	record := func(name string, pooled bool, op func() error) {
		if benchErr != nil {
			return
		}
		// Warm up once so pool dials are not billed to the timed loop.
		if err := op(); err != nil {
			benchErr = fmt.Errorf("%s: %w", name, err)
			return
		}
		dials0, reuse0 := poolCounters()
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := op(); err != nil {
					b.Fatal(err)
				}
			}
		})
		if res.N == 0 {
			benchErr = fmt.Errorf("%s: benchmark did not run", name)
			return
		}
		r := wireBenchResult{
			Name:        name,
			Ops:         res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		if pooled {
			dials1, reuse1 := poolCounters()
			d, u := dials1-dials0, reuse1-reuse0
			r.ConnsPerOp = d / float64(res.N)
			if d+u > 0 {
				r.ReuseRatio = u / (d + u)
			}
		} else {
			r.ConnsPerOp = 1
		}
		report.Results = append(report.Results, r)
		fmt.Fprintf(out, "%-22s %10d ops %12.0f ns/op %6d allocs/op %8.3f conns/op %.3f reuse\n",
			name, r.Ops, r.NsPerOp, r.AllocsPerOp, r.ConnsPerOp, r.ReuseRatio)
	}

	record("store-dial-per-rpc", false, func() error {
		return wire.Store(addr, rec, time.Second)
	})
	record("store-pooled", true, func() error {
		resp, err := tr.RoundTrip(addr, wire.Message{Type: wire.MsgStore, Record: &rec}, time.Second)
		if err != nil {
			return err
		}
		if resp.Type != wire.MsgStored {
			return fmt.Errorf("unexpected response %q", resp.Type)
		}
		return nil
	})
	record("ping-pooled", true, func() error {
		resp, err := tr.RoundTrip(addr, wire.Message{Type: wire.MsgPing}, time.Second)
		if err != nil {
			return err
		}
		if resp.Type != wire.MsgPong {
			return fmt.Errorf("unexpected response %q", resp.Type)
		}
		return nil
	})
	record("publish-batch-64", true, func() error {
		resp, err := tr.RoundTrip(addr, wire.Message{Type: wire.MsgPublishBatch, Records: batch}, time.Second)
		if err != nil {
			return err
		}
		if resp.Type != wire.MsgBatchAck {
			return fmt.Errorf("unexpected response %q", resp.Type)
		}
		return nil
	})
	// The same batch through a JSON-pinned client: the pre-binary wire
	// format, kept as the codec comparison baseline. The client never
	// advertises, so the server answers JSON and both directions ride the
	// old newline-delimited frames.
	jsonClient, err := wire.NewNode("127.0.0.1:0", wireBenchCfg(), nil, time.Minute,
		wire.WithMaxCodec(wire.CodecJSON))
	if err != nil {
		return err
	}
	defer jsonClient.Close()
	jtr := jsonClient.Transport()
	counterSource = jsonClient
	record("publish-batch-64-json", true, func() error {
		resp, err := jtr.RoundTrip(addr, wire.Message{Type: wire.MsgPublishBatch, Records: batch}, time.Second)
		if err != nil {
			return err
		}
		if resp.Type != wire.MsgBatchAck {
			return fmt.Errorf("unexpected response %q", resp.Type)
		}
		return nil
	})
	if benchErr != nil {
		return benchErr
	}
	if err := runStoreScaling(&report, out); err != nil {
		return err
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// runStoreScaling appends the sharded soft-state store's parallel
// publish curve to the report: four workers publishing disjoint member
// subsets against shard counts 1 (the pre-sharding single lock), 2, 4,
// and 8. On a multi-core box throughput scales with shards until the
// workers are satisfied; on gomaxprocs=1 the win reduces to cheaper lock
// handoff, so read the curve against the recorded gomaxprocs.
func runStoreScaling(report *wireBenchReport, out io.Writer) error {
	spec := topology.Spec{
		TransitDomains:        3,
		TransitNodesPerDomain: 4,
		StubsPerTransitNode:   3,
		NodesPerStub:          12,
		ExtraTransitEdgeProb:  0.3,
		ExtraStubEdgeProb:     0.2,
		ExtraInterDomainLinks: 2,
		Latency:               topology.GTITMLatency(),
	}
	net := topology.MustGenerate(spec, simrand.New(1))
	const workers = 4
	for _, shards := range []int{1, 2, 4, 8} {
		env := netsim.New(net)
		rng := simrand.New(2)
		ov, err := ecan.BuildUniform(net, 64, 2, 0, ecan.RandomSelector{RNG: rng.Split("sel")}, rng)
		if err != nil {
			return err
		}
		set, err := landmark.Choose(net, 8, rng.Split("landmarks"))
		if err != nil {
			return err
		}
		maxRTT := landmark.EstimateMaxRTT(net, set, net.RandomStubHosts(rng.Split("est"), 30))
		space, err := landmark.NewSpace(set, 3, 5, maxRTT)
		if err != nil {
			return err
		}
		cfg := softstate.DefaultConfig()
		cfg.Shards = shards
		store, err := softstate.NewStore(ov, space, env, cfg)
		if err != nil {
			return err
		}
		members := ov.CAN().Members()
		vecs := make([]landmark.Vector, len(members))
		for i, m := range members {
			vecs[i] = landmark.Measure(env, m.Host, space.Set())
			if err := store.Publish(m, vecs[i]); err != nil {
				return err
			}
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			var wg sync.WaitGroup
			per := b.N/workers + 1
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						idx := (w + i*workers) % len(members)
						if err := store.Publish(members[idx], vecs[idx]); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
		})
		if res.N == 0 {
			return fmt.Errorf("store-parallel-publish-s%d: benchmark did not run", shards)
		}
		r := wireBenchResult{
			Name:        fmt.Sprintf("store-parallel-publish-s%d", shards),
			Ops:         res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		report.Results = append(report.Results, r)
		fmt.Fprintf(out, "%-22s %10d ops %12.0f ns/op %6d allocs/op\n",
			r.Name, r.Ops, r.NsPerOp, r.AllocsPerOp)
	}
	return nil
}

// diffWireBench compares a fresh -wire-bench run (headPath) against the
// checked-in baseline (basePath) and fails on any shared benchmark whose
// ns/op regressed by more than tolerance (0.20 = 20%). Benchmarks
// present on only one side are skipped — renames and additions must not
// wedge the gate — and improvements are reported but never fail. The
// Makefile's bench-diff target retries one failure once before
// believing it, since single-shot micro-benchmarks on a shared box are
// noisy.
func diffWireBench(headPath, basePath string, tolerance float64, out io.Writer) error {
	load := func(path string) (map[string]wireBenchResult, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var rep wireBenchReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		byName := make(map[string]wireBenchResult, len(rep.Results))
		for _, r := range rep.Results {
			byName[r.Name] = r
		}
		return byName, nil
	}
	head, err := load(headPath)
	if err != nil {
		return err
	}
	base, err := load(basePath)
	if err != nil {
		return err
	}
	var regressions []string
	for name, b := range base {
		h, ok := head[name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		delta := (h.NsPerOp - b.NsPerOp) / b.NsPerOp
		status := "ok"
		if delta > tolerance {
			status = "REGRESSED"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%)", name, b.NsPerOp, h.NsPerOp, delta*100))
		}
		fmt.Fprintf(out, "bench-diff %-24s %10.0f -> %10.0f ns/op  %+6.1f%%  %s\n",
			name, b.NsPerOp, h.NsPerOp, delta*100, status)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("wire benchmarks regressed past %.0f%% vs %s:\n  %s",
			tolerance*100, basePath, strings.Join(regressions, "\n  "))
	}
	return nil
}
