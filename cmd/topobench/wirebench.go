package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"gsso/internal/wire"
)

// wireBenchResult is one wire benchmark's record in BENCH_wire.json.
// ConnsPerOp is new TCP dials per operation — ~1 for the dial-per-RPC
// baseline, ~0 for the pooled transport at steady state — and ReuseRatio
// is the fraction of calls served on an already-open connection.
type wireBenchResult struct {
	Name        string  `json:"name"`
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	ConnsPerOp  float64 `json:"conns_per_op"`
	ReuseRatio  float64 `json:"reuse_ratio"`
}

type wireBenchReport struct {
	GOMAXPROCS int               `json:"gomaxprocs"`
	Results    []wireBenchResult `json:"results"`
}

// wireBenchCfg is a stub landmark space: the benchmarks exercise the
// transport, not measurement, so the landmark list never gets dialed.
func wireBenchCfg() wire.SpaceConfig {
	return wire.SpaceConfig{Landmarks: []string{"stub"}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
}

// runWireBench benches the wire transport in-process — the dial-per-RPC
// baseline against the pooled, multiplexed transport and the coalesced
// publish-batch path — and writes the results to path as JSON.
func runWireBench(path string, out io.Writer) error {
	server, err := wire.NewNode("127.0.0.1:0", wireBenchCfg(), nil, time.Minute)
	if err != nil {
		return err
	}
	defer server.Close()
	client, err := wire.NewNode("127.0.0.1:0", wireBenchCfg(), nil, time.Minute)
	if err != nil {
		return err
	}
	defer client.Close()

	addr := server.Addr()
	tr := client.Transport()
	exp := time.Now().Add(time.Hour).UnixMilli()
	rec := wire.Record{Addr: "bench:1", Number: 12, ExpiresUnixMilli: exp}
	batch := make([]wire.Record, 64)
	for i := range batch {
		batch[i] = wire.Record{Addr: "bench:1", Number: uint64(i), ExpiresUnixMilli: exp}
	}

	// poolCounters reads the client transport's cumulative dial/reuse
	// meters; benchmarks diff them around the timed loop.
	poolCounters := func() (dials, reuse float64) {
		snap := client.Registry().Snapshot()
		dials, _ = snap.Value("wire_conn_dials_total")
		reuse, _ = snap.Value("wire_conn_reuse_total")
		return dials, reuse
	}

	var report wireBenchReport
	report.GOMAXPROCS = runtime.GOMAXPROCS(0)
	var benchErr error
	record := func(name string, pooled bool, op func() error) {
		if benchErr != nil {
			return
		}
		// Warm up once so pool dials are not billed to the timed loop.
		if err := op(); err != nil {
			benchErr = fmt.Errorf("%s: %w", name, err)
			return
		}
		dials0, reuse0 := poolCounters()
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := op(); err != nil {
					b.Fatal(err)
				}
			}
		})
		if res.N == 0 {
			benchErr = fmt.Errorf("%s: benchmark did not run", name)
			return
		}
		r := wireBenchResult{
			Name:        name,
			Ops:         res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		if pooled {
			dials1, reuse1 := poolCounters()
			d, u := dials1-dials0, reuse1-reuse0
			r.ConnsPerOp = d / float64(res.N)
			if d+u > 0 {
				r.ReuseRatio = u / (d + u)
			}
		} else {
			r.ConnsPerOp = 1
		}
		report.Results = append(report.Results, r)
		fmt.Fprintf(out, "%-22s %10d ops %12.0f ns/op %6d allocs/op %8.3f conns/op %.3f reuse\n",
			name, r.Ops, r.NsPerOp, r.AllocsPerOp, r.ConnsPerOp, r.ReuseRatio)
	}

	record("store-dial-per-rpc", false, func() error {
		return wire.Store(addr, rec, time.Second)
	})
	record("store-pooled", true, func() error {
		resp, err := tr.RoundTrip(addr, wire.Message{Type: wire.MsgStore, Record: &rec}, time.Second)
		if err != nil {
			return err
		}
		if resp.Type != wire.MsgStored {
			return fmt.Errorf("unexpected response %q", resp.Type)
		}
		return nil
	})
	record("ping-pooled", true, func() error {
		resp, err := tr.RoundTrip(addr, wire.Message{Type: wire.MsgPing}, time.Second)
		if err != nil {
			return err
		}
		if resp.Type != wire.MsgPong {
			return fmt.Errorf("unexpected response %q", resp.Type)
		}
		return nil
	})
	record("publish-batch-64", true, func() error {
		resp, err := tr.RoundTrip(addr, wire.Message{Type: wire.MsgPublishBatch, Records: batch}, time.Second)
		if err != nil {
			return err
		}
		if resp.Type != wire.MsgBatchAck {
			return fmt.Errorf("unexpected response %q", resp.Type)
		}
		return nil
	})
	if benchErr != nil {
		return benchErr
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
