// Command topogen generates a transit-stub topology and prints its
// structural and latency profile — useful for understanding what the
// simulation substrate looks like before running experiments.
//
// Usage:
//
//	topogen -kind tsk-large -latency manual -scale 1.0 -seed 7
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gsso/internal/simrand"
	"gsso/internal/stats"
	"gsso/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	var (
		kind    = fs.String("kind", "tsk-large", "tsk-large or tsk-small")
		latency = fs.String("latency", "gtitm", "gtitm or manual")
		scale   = fs.Float64("scale", 1.0, "stub-size multiplier")
		seed    = fs.Uint64("seed", 1, "random seed")
		samples = fs.Int("samples", 2000, "latency sample pairs per class")
		dot     = fs.String("dot", "", "also write the topology as Graphviz DOT to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	model := topology.GTITMLatency()
	if *latency == "manual" {
		model = topology.ManualLatency()
	} else if *latency != "gtitm" {
		return fmt.Errorf("unknown latency model %q", *latency)
	}
	var spec topology.Spec
	switch *kind {
	case "tsk-large":
		spec = topology.TSKLarge(model)
	case "tsk-small":
		spec = topology.TSKSmall(model)
	default:
		return fmt.Errorf("unknown topology kind %q", *kind)
	}
	spec = spec.Scaled(*scale)

	rng := simrand.New(*seed)
	net, err := topology.Generate(spec, rng)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s\n", net)
	fmt.Fprintf(out, "  transit domains:        %d\n", spec.TransitDomains)
	fmt.Fprintf(out, "  transit nodes/domain:   %d\n", spec.TransitNodesPerDomain)
	fmt.Fprintf(out, "  stubs/transit node:     %d\n", spec.StubsPerTransitNode)
	fmt.Fprintf(out, "  hosts/stub:             %d\n", spec.NodesPerStub)
	fmt.Fprintf(out, "  total hosts:            %d\n", net.Len())
	fmt.Fprintf(out, "  links: cross-transit=%d intra-transit=%d transit-stub=%d intra-stub=%d\n",
		net.EdgeCount(topology.LinkCrossTransit), net.EdgeCount(topology.LinkIntraTransit),
		net.EdgeCount(topology.LinkTransitStub), net.EdgeCount(topology.LinkIntraStub))

	// Latency profile by relationship class.
	sampleRNG := rng.Split("samples")
	same := stats.NewAccumulator(true)
	cross := stats.NewAccumulator(true)
	all := stats.NewAccumulator(true)
	hosts := net.StubHosts()
	for i := 0; i < *samples; i++ {
		a := hosts[sampleRNG.Intn(len(hosts))]
		b := hosts[sampleRNG.Intn(len(hosts))]
		if a == b {
			continue
		}
		l := net.Latency(a, b)
		all.Add(l)
		if net.SameStub(a, b) {
			same.Add(l)
		} else if net.Node(a).Domain != net.Node(b).Domain {
			cross.Add(l)
		}
	}
	fmt.Fprintf(out, "  latency all pairs:      %s\n", all.Summary())
	if same.N() > 0 {
		fmt.Fprintf(out, "  latency same stub:      %s\n", same.Summary())
	}
	if cross.N() > 0 {
		fmt.Fprintf(out, "  latency cross domain:   %s\n", cross.Summary())
	}
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := net.WriteDOT(f); err != nil {
			return err
		}
		fmt.Fprintf(out, "  dot graph written:      %s\n", *dot)
	}
	return nil
}
