package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestGenerateLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-kind", "tsk-large", "-scale", "0.1", "-samples", "200"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"transit domains:", "total hosts:", "latency all pairs:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestGenerateSmallManual(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-kind", "tsk-small", "-latency", "manual", "-scale", "0.1", "-samples", "100"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "latency=manual") {
		t.Fatalf("manual latency not reflected:\n%s", buf.String())
	}
}

func TestUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-kind", "mesh"}, &buf); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestUnknownLatency(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-latency", "quantum"}, &buf); err == nil {
		t.Fatal("unknown latency accepted")
	}
}

func TestDeterministicOutput(t *testing.T) {
	var a, b bytes.Buffer
	args := []string{"-kind", "tsk-large", "-scale", "0.1", "-seed", "5", "-samples", "100"}
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different output")
	}
}

func TestDOTExport(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/topo.dot"
	var buf bytes.Buffer
	if err := run([]string{"-kind", "tsk-large", "-scale", "0.05", "-samples", "50", "-dot", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "graph topology {") {
		t.Fatalf("dot file malformed: %q", string(data[:30]))
	}
}
