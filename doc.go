// Package gsso is a Go reproduction of "Building Topology-Aware Overlays
// Using Global Soft-State" (Xu, Tang, Zhang — ICDCS 2003): DHT overlays
// that exploit physical network proximity by (1) generating proximity
// information with hybrid landmark clustering + RTT measurement, (2)
// storing that information on the overlay itself as global soft-state
// placed by landmark number through a Hilbert space-filling curve, and
// (3) maintaining it with publish/subscribe notifications instead of
// polling.
//
// The implementation lives under internal/, one package per subsystem:
//
//	topology   GT-ITM-style transit-stub topologies, O(1) latency queries
//	netsim     virtual clock, RTT probe metering, latency churn
//	can        the CAN DHT (zones, greedy routing, join/depart)
//	ecan       eCAN expressway routing (high-order zones, O(log N) hops)
//	chord      a compact Chord ring (the appendix's alternative host)
//	pastry     a compact Pastry (prefix tables + leaf sets, same Selector)
//	hilbert    d-dimensional Hilbert curve (Skilling's algorithm)
//	landmark   landmark vectors, orderings, landmark numbers
//	softstate  the global soft-state store (region maps, condensing, TTL)
//	pubsub     subscriptions and notifications over the soft-state
//	proximity  nearest-neighbor search: ERS, landmark-only, hybrid
//	loadbal    §6: capacity/load-aware neighbor selection
//	core       the assembled system behind one API
//	experiment one generator per table and figure of the paper
//	wire       the proximity subsystem over real TCP
//
// Start with examples/quickstart, or regenerate the paper's evaluation
// with cmd/topobench. bench_test.go in this directory holds one
// testing.B benchmark per table and figure.
package gsso
