// CDN: replica selection with global soft-state. A content provider
// places R replicas on overlay members; clients anywhere in the Internet
// find their nearest replica by consulting the overlay's proximity maps —
// no per-client probing of every replica.
//
//	go run ./examples/cdn
package main

import (
	"fmt"
	"log"
	"sort"

	"gsso/internal/core"
	"gsso/internal/topology"
)

func main() {
	sys, err := core.New(
		core.WithSeed(11),
		core.WithTopologyScale(0.2),
		core.WithOverlaySize(320),
		core.WithLandmarks(10),
		core.WithProbeBudget(6),
	)
	if err != nil {
		log.Fatal(err)
	}
	net := sys.Net()
	rng := sys.RNG("cdn")

	// Clients are stub hosts that are NOT overlay members.
	memberHosts := map[topology.NodeID]bool{}
	for _, m := range sys.Members() {
		memberHosts[m.Host] = true
	}
	var clients []topology.NodeID
	for _, h := range net.RandomStubHosts(rng, 400) {
		if !memberHosts[h] {
			clients = append(clients, h)
		}
		if len(clients) == 20 {
			break
		}
	}

	fmt.Printf("CDN scenario: %d overlay members serve content; %d external clients\n",
		len(sys.Members()), len(clients))
	fmt.Println("each client finds its nearest server via the soft-state maps (6 probes)")
	fmt.Println()

	var softStateMs, randomMs, oracleMs []float64
	for _, client := range clients {
		res, err := sys.NearestToHost(client)
		if err != nil {
			log.Fatal(err)
		}
		softStateMs = append(softStateMs, net.Latency(client, res.Member.Host))

		// Baseline: a random server.
		members := sys.Members()
		randomMs = append(randomMs, net.Latency(client, members[rng.Intn(len(members))].Host))

		// Oracle: the true nearest server.
		hosts := make([]topology.NodeID, len(members))
		for i, m := range members {
			hosts[i] = m.Host
		}
		_, best := net.Nearest(client, hosts)
		oracleMs = append(oracleMs, best)
	}

	median := func(xs []float64) float64 {
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return s[len(s)/2]
	}
	mean := func(xs []float64) float64 {
		t := 0.0
		for _, x := range xs {
			t += x
		}
		return t / float64(len(xs))
	}
	fmt.Printf("%-22s %10s %10s\n", "server selection", "mean ms", "median ms")
	fmt.Printf("%-22s %10.2f %10.2f\n", "soft-state maps", mean(softStateMs), median(softStateMs))
	fmt.Printf("%-22s %10.2f %10.2f\n", "random server", mean(randomMs), median(randomMs))
	fmt.Printf("%-22s %10.2f %10.2f\n", "oracle nearest", mean(oracleMs), median(oracleMs))
	fmt.Printf("\nprobing cost: %d RTT measurements total (landmark vectors + candidate probes)\n",
		sys.Stats().Probes)
}
