// Nearestpeer: the paper's §4 story as a demo — a node that wants its
// physically closest peer compares blind expanding-ring search against
// the hybrid landmark+RTT scheme backed by global soft-state.
//
//	go run ./examples/nearestpeer
package main

import (
	"fmt"
	"log"

	"gsso/internal/core"
	"gsso/internal/topology"
)

func main() {
	sys, err := core.New(
		core.WithSeed(7),
		core.WithTopologyScale(0.2),
		core.WithOverlaySize(384),
		core.WithLandmarks(10),
		core.WithProbeBudget(8),
	)
	if err != nil {
		log.Fatal(err)
	}
	members := sys.Members()
	net := sys.Net()
	rng := sys.RNG("queries")

	fmt.Println("finding the physically nearest overlay member via global soft-state")
	fmt.Println("(8 RTT probes per query; truth = oracle scan of all members)")
	fmt.Println()

	exact, nearMiss := 0, 0
	const trials = 10
	for i := 0; i < trials; i++ {
		m := members[rng.Intn(len(members))]
		res, err := sys.NearestMember(m)
		if err != nil {
			log.Fatal(err)
		}
		// Oracle ground truth.
		hosts := make([]topology.NodeID, 0, len(members))
		for _, other := range members {
			if other != m {
				hosts = append(hosts, other.Host)
			}
		}
		trueNearest, trueDist := net.Nearest(m.Host, hosts)
		foundDist := net.Latency(m.Host, res.Member.Host)
		stretch := foundDist / trueDist
		mark := " "
		switch {
		case res.Member.Host == trueNearest:
			exact++
			mark = "="
		case stretch < 1.5:
			nearMiss++
			mark = "~"
		}
		fmt.Printf("  member@host%-5d -> found host%-5d %6.2f ms (true: host%-5d %6.2f ms)  stretch %.2f %s  [%d probes]\n",
			m.Host, res.Member.Host, foundDist, trueNearest, trueDist, stretch, mark, res.Probes)
	}
	fmt.Printf("\nexact hits: %d/%d, within 1.5x: %d/%d\n", exact, trials, exact+nearMiss, trials)
	fmt.Printf("total RTT probes metered: %d\n", sys.Stats().Probes)
	fmt.Println("\n(an expanding-ring search needs to probe a large fraction of all")
	fmt.Println(" members for the same quality — run `topobench -run fig3` to see)")
}
