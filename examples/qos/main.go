// QoS: the §6 scenario — a node subscribes to its routing neighbor's load
// statistics in the global soft-state and is notified the moment the
// neighbor crosses 80% of its capacity, triggering demand-driven
// re-selection instead of periodic polling.
//
//	go run ./examples/qos
package main

import (
	"fmt"
	"log"

	"gsso/internal/can"
	"gsso/internal/core"
	"gsso/internal/pubsub"
	"gsso/internal/softstate"
)

func main() {
	sys, err := core.New(
		core.WithSeed(23),
		core.WithTopologyScale(0.15),
		core.WithOverlaySize(192),
		core.WithLandmarks(8),
		core.WithProbeBudget(8),
	)
	if err != nil {
		log.Fatal(err)
	}
	members := sys.Members()
	watcher := members[0]

	// Find a member in the watcher's own high-order zone to depend on.
	region := watcher.Path().Prefix(sys.Overlay().DigitLen())
	var neighbor *can.Member
	for _, m := range members[1:] {
		if m.Path().HasPrefix(region) {
			neighbor = m
			break
		}
	}
	if neighbor == nil {
		log.Fatal("no neighbor in region; rerun with a larger overlay")
	}

	// The neighbor publishes a capacity of 10 units.
	if err := sys.Store().PublishMeasured(neighbor, softstate.WithCapacity(10)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("watcher host%d routes through neighbor host%d (capacity 10)\n",
		watcher.Host, neighbor.Host)

	// QoS subscription: notify at 80% utilization.
	alerts := 0
	sub, err := sys.OnOverload(watcher, neighbor, 0.8, func(n pubsub.Notification) {
		alerts++
		e := n.Event.Entry
		fmt.Printf("  ALERT: host%d at %.0f%% of capacity -> re-selecting neighbors\n",
			e.Host, 100*e.Load/e.Capacity)
		sys.Reselect(watcher)
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Bus().Unsubscribe(sub)

	// Load ramps up; the soft-state publishes each change (§6: "a node
	// periodically publishes these statistics along with its proximity
	// information").
	fmt.Println("neighbor load ramping up:")
	for _, load := range []float64{2, 4, 6, 7.5, 8.5, 9.5} {
		fmt.Printf("  load -> %.1f/10\n", load)
		sys.PublishLoad(neighbor, load)
	}
	fmt.Printf("\nalerts delivered: %d (first at the 80%% threshold crossing)\n", alerts)
	fmt.Printf("notification messages metered: %d\n", sys.Env().Messages("notify"))

	// After re-selection the watcher still routes fine.
	r, err := sys.RouteTo(watcher, members[len(members)-1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-alert route: %d hops, stretch %.2f\n", r.Hops, r.Stretch)
}
