// Quickstart: build a topology-aware overlay, route between members, and
// see the benefit of global soft-state over random neighbor selection.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gsso/internal/can"
	"gsso/internal/core"
	"gsso/internal/ecan"
)

func main() {
	// A simulated deployment: ~2k-host transit-stub Internet, 256-member
	// eCAN, 8 landmarks, 10 RTT probes per neighbor selection. Everything
	// is deterministic in the seed.
	sys, err := core.New(
		core.WithSeed(42),
		core.WithTopologyScale(0.2),
		core.WithOverlaySize(256),
		core.WithLandmarks(8),
		core.WithProbeBudget(10),
	)
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("deployment: %d physical hosts, %d overlay members, %d landmarks\n",
		st.Hosts, st.Members, st.Landmarks)
	fmt.Printf("soft-state: %d entries published onto the overlay\n\n", st.TotalEntries)

	// The overlay is a DHT: any point in the unit square is a key, and
	// exactly one member owns it.
	key := can.Point{0.25, 0.75}
	owner := sys.Lookup(key)
	fmt.Printf("key %v is owned by %v\n\n", key, owner)

	// String keys hash onto the space; any member is an access point.
	members0 := sys.Members()
	put, err := sys.Put(members0[0], "proceedings/icdcs03", []byte("topology-aware overlays"))
	if err != nil {
		log.Fatal(err)
	}
	got, err := sys.Get(members0[len(members0)-1], "proceedings/icdcs03")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("put landed on %v in %d hops; get from the far side: %q in %d hops\n\n",
		put.Owner, put.Hops, got.Value, got.Hops)

	// Route between random members with topology-aware neighbor selection
	// (the global soft-state is consulted lazily while routing).
	members := sys.Members()
	rng := sys.RNG("demo")
	fmt.Println("routes with global-soft-state neighbor selection:")
	total := 0.0
	const trials = 5
	for i := 0; i < trials; i++ {
		src := members[rng.Intn(len(members))]
		dst := members[rng.Intn(len(members))]
		r, err := sys.RouteTo(src, dst)
		if err != nil {
			log.Fatal(err)
		}
		total += r.Stretch
		fmt.Printf("  %2d hops, %7.2f ms overlay vs %7.2f ms direct (stretch %.2f)\n",
			r.Hops, r.LatencyMs, r.DirectMs, r.Stretch)
	}
	fmt.Printf("mean stretch: %.2f\n\n", total/trials)

	// Compare with the baseline: random neighbor selection.
	sys.Overlay().SetSelector(ecan.RandomSelector{RNG: sys.RNG("random")})
	fmt.Println("the same overlay with random neighbor selection:")
	totalRnd := 0.0
	for i := 0; i < trials; i++ {
		src := members[rng.Intn(len(members))]
		dst := members[rng.Intn(len(members))]
		r, err := sys.RouteTo(src, dst)
		if err != nil {
			log.Fatal(err)
		}
		totalRnd += r.Stretch
		fmt.Printf("  %2d hops, %7.2f ms overlay vs %7.2f ms direct (stretch %.2f)\n",
			r.Hops, r.LatencyMs, r.DirectMs, r.Stretch)
	}
	fmt.Printf("mean stretch: %.2f (vs %.2f topology-aware)\n",
		totalRnd/trials, total/trials)
}
