// Wirecluster: the proximity subsystem over real TCP, in one process.
// Six nodes start on localhost; the first three double as landmarks.
// Every node measures real RTTs to the landmarks, reduces the vector to a
// landmark number through the Hilbert curve, publishes a soft-state
// record at the number's owner, and then discovers its nearest peer by
// querying the soft-state and ping-probing the returned candidates —
// the same code path cmd/overlayd serves across machines.
//
//	go run ./examples/wirecluster
package main

import (
	"fmt"
	"log"
	"time"

	"gsso/internal/wire"
)

func main() {
	const (
		nodes     = 6
		landmarks = 3
		timeout   = 2 * time.Second
	)

	// Reserve addresses with throwaway listeners, then start the real
	// cluster with the agreed landmark/peer lists.
	stub := wire.SpaceConfig{Landmarks: []string{"boot"}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
	boot := make([]*wire.Node, nodes)
	addrs := make([]string, nodes)
	for i := range boot {
		n, err := wire.NewNode("127.0.0.1:0", stub, nil, time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		boot[i] = n
		addrs[i] = n.Addr()
	}
	for _, n := range boot {
		if err := n.Close(); err != nil {
			log.Fatal(err)
		}
	}

	cfg := wire.SpaceConfig{
		Landmarks:  addrs[:landmarks],
		IndexDims:  3,
		BitsPerDim: 5,
		MaxRTTMs:   50,
	}
	cluster := make([]*wire.Node, nodes)
	for i := range cluster {
		n, err := wire.NewNode(addrs[i], cfg, addrs, time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		defer n.Close()
		cluster[i] = n
	}
	fmt.Printf("cluster up: %d nodes, %d landmarks\n\n", nodes, landmarks)

	// Publish: measure landmark vector (3 pings per landmark, min taken),
	// derive the landmark number, store the record at its owner. The
	// refresh loop keeps it alive against the TTL.
	for _, n := range cluster {
		rec, err := n.Publish(3, timeout)
		if err != nil {
			log.Fatal(err)
		}
		n.StartRefresh(20*time.Second, 1, timeout)
		fmt.Printf("%s published: vector=%.3v ms  number=%d  owner=%s\n",
			n.Addr(), rec.Vector, rec.Number, n.OwnerOf(rec.Number))
	}

	fmt.Println("\nnearest-peer discovery (soft-state lookup + 3 probes each):")
	for _, n := range cluster {
		addr, rtt, err := n.FindNearest(3, timeout)
		if err != nil {
			fmt.Printf("  %s: %v\n", n.Addr(), err)
			continue
		}
		fmt.Printf("  %s -> %s (%v)\n", n.Addr(), addr, rtt)
	}
	fmt.Println("\n(on localhost all RTTs are microseconds; across real hosts the")
	fmt.Println(" landmark numbers separate by network position first)")
}
