module gsso

go 1.23
