// Package arena provides a generational slot arena: a flat, index-addressed
// object store whose handles can never dangle. It is the member-bookkeeping
// backbone for million-node simulations, replacing per-member map[pointer]
// tables with slice indexing.
//
// Each slot carries a generation counter; a Handle packs (slot index,
// generation). Freeing a slot bumps its generation, so every handle issued
// for the old occupant is permanently invalidated — a freed slot can be
// recycled but never resurrected under a stale handle. Generations are odd
// while live and even while free, which makes the zero Handle (and any
// handle into a never-allocated slot) invalid by construction.
package arena

// Handle identifies one live slot of an Arena. The zero Handle is invalid.
type Handle uint64

// None is the invalid zero handle.
const None Handle = 0

// Index returns the slot index the handle points at. Only meaningful for
// handles that are (or were) valid.
func (h Handle) Index() int { return int(uint32(h)) }

func (h Handle) gen() uint32 { return uint32(h >> 32) }

// IsZero reports whether h is the zero (invalid) handle.
func (h Handle) IsZero() bool { return h == None }

type slot[T any] struct {
	gen uint32 // odd while the slot is live, even while free
	val T
}

// Arena is a generational slot store. The zero value is ready to use.
// Arena is not safe for concurrent use; callers synchronize externally
// (core.System holds it under its own lock).
type Arena[T any] struct {
	slots []slot[T]
	free  []uint32 // freed slot indices, reused LIFO
	live  int
}

// Alloc claims a slot, returning its handle and a pointer to its (zeroed)
// value. The pointer stays valid until the next Alloc, which may grow the
// backing array; handles stay valid until Free.
func (a *Arena[T]) Alloc() (Handle, *T) {
	var idx uint32
	if n := len(a.free); n > 0 {
		idx = a.free[n-1]
		a.free = a.free[:n-1]
	} else {
		idx = uint32(len(a.slots))
		a.slots = append(a.slots, slot[T]{})
	}
	s := &a.slots[idx]
	s.gen++ // even -> odd: live
	a.live++
	return Handle(uint64(s.gen)<<32 | uint64(idx)), &s.val
}

// Free releases the slot behind h and reports whether h was live. The
// slot's value is zeroed so the arena drops any references it held, and the
// generation is bumped so every outstanding copy of h is dead.
func (a *Arena[T]) Free(h Handle) bool {
	idx := h.Index()
	if idx >= len(a.slots) {
		return false
	}
	s := &a.slots[idx]
	if s.gen != h.gen() || s.gen&1 == 0 {
		return false
	}
	var zero T
	s.val = zero
	s.gen++ // odd -> even: free
	a.live--
	a.free = append(a.free, uint32(idx))
	return true
}

// Get returns the value behind h, or nil if h is stale, freed, or zero.
func (a *Arena[T]) Get(h Handle) *T {
	idx := h.Index()
	if idx >= len(a.slots) {
		return nil
	}
	s := &a.slots[idx]
	if s.gen != h.gen() || s.gen&1 == 0 {
		return nil
	}
	return &s.val
}

// Live returns the number of live slots.
func (a *Arena[T]) Live() int { return a.live }

// Cap returns the number of slots ever allocated (live + recyclable).
func (a *Arena[T]) Cap() int { return len(a.slots) }

// Range calls fn for every live slot in slot-index order, stopping early if
// fn returns false. fn must not Alloc or Free.
func (a *Arena[T]) Range(fn func(Handle, *T) bool) {
	for i := range a.slots {
		s := &a.slots[i]
		if s.gen&1 == 0 {
			continue
		}
		if !fn(Handle(uint64(s.gen)<<32|uint64(i)), &s.val) {
			return
		}
	}
}
