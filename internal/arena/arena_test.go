package arena

import (
	"testing"
)

func TestAllocGetFree(t *testing.T) {
	var a Arena[int]
	h, v := a.Alloc()
	if h.IsZero() {
		t.Fatal("Alloc returned the zero handle")
	}
	*v = 42
	if got := a.Get(h); got == nil || *got != 42 {
		t.Fatalf("Get = %v, want 42", got)
	}
	if a.Live() != 1 {
		t.Fatalf("Live = %d", a.Live())
	}
	if !a.Free(h) {
		t.Fatal("Free of a live handle returned false")
	}
	if a.Get(h) != nil {
		t.Fatal("Get of a freed handle returned a value")
	}
	if a.Free(h) {
		t.Fatal("double Free succeeded")
	}
	if a.Live() != 0 {
		t.Fatalf("Live = %d after free", a.Live())
	}
}

func TestZeroHandleInvalid(t *testing.T) {
	var a Arena[int]
	if a.Get(None) != nil {
		t.Fatal("Get(None) returned a value")
	}
	if a.Free(None) {
		t.Fatal("Free(None) succeeded")
	}
	a.Alloc() // slot 0 now live; None must still be invalid (gen mismatch)
	if a.Get(None) != nil {
		t.Fatal("Get(None) aliased slot 0")
	}
}

func TestNoResurrection(t *testing.T) {
	var a Arena[string]
	h1, v := a.Alloc()
	*v = "first"
	a.Free(h1)
	h2, v2 := a.Alloc() // recycles slot 0
	*v2 = "second"
	if h1 == h2 {
		t.Fatal("recycled slot reissued the same handle")
	}
	if h1.Index() != h2.Index() {
		t.Fatalf("expected slot reuse: %d vs %d", h1.Index(), h2.Index())
	}
	if a.Get(h1) != nil {
		t.Fatal("stale handle resurrected after slot reuse")
	}
	if got := a.Get(h2); got == nil || *got != "second" {
		t.Fatal("live handle broken by stale sibling")
	}
}

func TestFreeZeroesValue(t *testing.T) {
	var a Arena[*int]
	h, v := a.Alloc()
	x := 7
	*v = &x
	a.Free(h)
	h2, v2 := a.Alloc()
	if h2.Index() != h.Index() {
		t.Fatal("expected slot reuse")
	}
	if *v2 != nil {
		t.Fatal("recycled slot leaked the previous occupant's value")
	}
}

func TestRange(t *testing.T) {
	var a Arena[int]
	var hs []Handle
	for i := 0; i < 5; i++ {
		h, v := a.Alloc()
		*v = i
		hs = append(hs, h)
	}
	a.Free(hs[1])
	a.Free(hs[3])
	var seen []int
	a.Range(func(h Handle, v *int) bool {
		seen = append(seen, *v)
		return true
	})
	want := []int{0, 2, 4}
	if len(seen) != len(want) {
		t.Fatalf("Range saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("Range saw %v, want %v", seen, want)
		}
	}
	// Early stop.
	n := 0
	a.Range(func(Handle, *int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range ignored early stop: %d visits", n)
	}
}

// driveModel interleaves arena ops (join/depart/crash-free/republish) from
// a byte script and checks the arena against a naive map model after every
// op. Shared by the property test and FuzzArena.
func driveModel(t *testing.T, script []byte) {
	t.Helper()
	var a Arena[uint64]
	model := map[Handle]uint64{} // live handles -> expected value
	var order []Handle           // live handles, allocation order
	var dead []Handle            // every handle ever freed
	var nextVal uint64

	check := func(op string) {
		if a.Live() != len(model) {
			t.Fatalf("%s: Live = %d, model has %d", op, a.Live(), len(model))
		}
		slots := map[int]bool{}
		for h, want := range model {
			got := a.Get(h)
			if got == nil || *got != want {
				t.Fatalf("%s: Get(%v) = %v, model says %d", op, h, got, want)
			}
			if slots[h.Index()] {
				t.Fatalf("%s: two live handles share slot %d", op, h.Index())
			}
			slots[h.Index()] = true
		}
		for _, h := range dead {
			if a.Get(h) != nil {
				t.Fatalf("%s: freed handle %v resurrected", op, h)
			}
			if a.Free(h) {
				t.Fatalf("%s: freed handle %v freed again", op, h)
			}
		}
		visited := 0
		a.Range(func(h Handle, v *uint64) bool {
			want, ok := model[h]
			if !ok {
				t.Fatalf("%s: Range visited non-model handle %v", op, h)
			}
			if *v != want {
				t.Fatalf("%s: Range value %d, model says %d", op, *v, want)
			}
			visited++
			return true
		})
		if visited != len(model) {
			t.Fatalf("%s: Range visited %d, model has %d", op, visited, len(model))
		}
	}

	for i := 0; i+1 < len(script); i += 2 {
		op, arg := script[i]%4, int(script[i+1])
		switch op {
		case 0: // join
			h, v := a.Alloc()
			nextVal++
			*v = nextVal
			if _, dup := model[h]; dup {
				t.Fatalf("Alloc reissued live handle %v", h)
			}
			model[h] = nextVal
			order = append(order, h)
		case 1: // depart
			if len(order) == 0 {
				continue
			}
			k := arg % len(order)
			h := order[k]
			if !a.Free(h) {
				t.Fatalf("Free of live handle %v failed", h)
			}
			delete(model, h)
			order = append(order[:k], order[k+1:]...)
			dead = append(dead, h)
		case 2: // crash: free a stale handle, must be a no-op
			if len(dead) == 0 {
				continue
			}
			h := dead[arg%len(dead)]
			if a.Free(h) {
				t.Fatalf("stale Free of %v succeeded", h)
			}
		case 3: // republish: rewrite a live slot through its handle
			if len(order) == 0 {
				continue
			}
			h := order[arg%len(order)]
			nextVal++
			*a.Get(h) = nextVal
			model[h] = nextVal
		}
		check("op")
	}
	check("final")
}

func TestModelEquivalence(t *testing.T) {
	// A fixed pseudo-random script long enough to cycle slots many times.
	script := make([]byte, 4096)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range script {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		script[i] = byte(x)
	}
	driveModel(t, script)
}

func FuzzArena(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 1, 0, 2, 0})
	f.Add([]byte{0, 0, 1, 0, 0, 0, 3, 1, 1, 1, 2, 1})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 2048 {
			script = script[:2048]
		}
		driveModel(t, script)
	})
}
