// Package can implements CAN (content-addressable network), the DHT that
// partitions a d-dimensional Cartesian unit torus into zones, one per
// member (Ratnasamy et al., SIGCOMM 2001).
//
// Zones arise from recursive binary midpoint splits with the split
// dimension cycling (depth mod d), so every zone is identified by its
// split path — the sequence of left/right choices from the root. Path
// prefixes are exactly the paper's "high-order zones" (and the analogue of
// Pastry's nodeId prefixes); package ecan builds its expressway routing on
// top of them.
//
// Overlays are not safe for concurrent mutation; concurrent readers are
// fine once construction settles.
package can

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"gsso/internal/simrand"
	"gsso/internal/topology"
)

// MaxDepth bounds the split-tree depth so zone paths fit in a uint64.
const MaxDepth = 64

// Point is a location in the unit cube [0,1)^d.
type Point []float64

// Valid reports whether the point has dimension d with all coordinates in
// [0, 1).
func (p Point) Valid(d int) bool {
	if len(p) != d {
		return false
	}
	for _, x := range p {
		if x < 0 || x >= 1 || math.IsNaN(x) {
			return false
		}
	}
	return true
}

// RandomPoint draws a uniform point in [0,1)^d.
func RandomPoint(d int, rng *simrand.Source) Point {
	p := make(Point, d)
	for i := range p {
		p[i] = rng.Float64()
	}
	return p
}

// Path identifies a zone (or region) of the split tree: the first Len bits
// of Bits, most significant decision first (bit i is Bits>>(63-i)&1).
type Path struct {
	Bits uint64
	Len  int
}

// child extends the path by one decision bit.
func (p Path) child(bit int) Path {
	return Path{Bits: p.Bits | uint64(bit)<<(63-p.Len), Len: p.Len + 1}
}

// Bit returns decision i (0-based from the root).
func (p Path) Bit(i int) int { return int(p.Bits>>(63-i)) & 1 }

// HasPrefix reports whether q is a prefix of p.
func (p Path) HasPrefix(q Path) bool {
	if q.Len > p.Len {
		return false
	}
	if q.Len == 0 {
		return true
	}
	mask := ^uint64(0) << (64 - q.Len)
	return p.Bits&mask == q.Bits&mask
}

// CommonPrefixLen returns the number of leading decisions p and q share.
func (p Path) CommonPrefixLen(q Path) int {
	n := p.Len
	if q.Len < n {
		n = q.Len
	}
	for i := 0; i < n; i++ {
		if p.Bit(i) != q.Bit(i) {
			return i
		}
	}
	return n
}

// Prefix returns the first n decisions of p.
func (p Path) Prefix(n int) Path {
	if n >= p.Len {
		return p
	}
	mask := ^uint64(0)
	if n < 64 {
		mask <<= 64 - n
	}
	return Path{Bits: p.Bits & mask, Len: n}
}

// String renders the path as a bit string, e.g. "0110".
func (p Path) String() string {
	buf := make([]byte, p.Len)
	for i := 0; i < p.Len; i++ {
		buf[i] = byte('0' + p.Bit(i))
	}
	return string(buf)
}

// Member is an overlay node: a participant host that owns one leaf zone.
type Member struct {
	// Host is the physical host the member runs on.
	Host topology.NodeID
	// JoinPoint is the random point the member routed to at join time.
	JoinPoint Point
	// Tag is an opaque slot reference for the embedding layer (core packs
	// an arena handle here so per-member state is a slice index away
	// instead of a map[*Member] lookup). The overlay never reads it.
	Tag uint64

	leaf *zone
}

// Path returns the member's current zone path.
func (m *Member) Path() Path { return m.leaf.path }

// ZoneLo returns a copy of the member zone's lower corner.
func (m *Member) ZoneLo() Point { return append(Point(nil), m.leaf.lo...) }

// ZoneHi returns a copy of the member zone's upper corner.
func (m *Member) ZoneHi() Point { return append(Point(nil), m.leaf.hi...) }

// Volume returns the member zone's volume (fraction of the whole space).
func (m *Member) Volume() float64 { return m.leaf.volume() }

// ZoneCenter returns the center point of the member's zone; it always lies
// strictly inside the zone, making it a valid routing target for the zone.
func (m *Member) ZoneCenter() Point {
	c := make(Point, len(m.leaf.lo))
	for k := range c {
		c[k] = (m.leaf.lo[k] + m.leaf.hi[k]) / 2
	}
	return c
}

// Depth returns the member zone's split depth.
func (m *Member) Depth() int { return m.leaf.path.Len }

// Neighbors returns the member's CAN neighbors (zones abutting its zone in
// exactly one dimension and overlapping in all others). Fresh slice.
func (m *Member) Neighbors() []*Member {
	out := make([]*Member, 0, len(m.leaf.neighbors))
	for nb := range m.leaf.neighbors {
		out = append(out, nb.member)
	}
	return out
}

// NeighborCount returns the size of the member's neighbor set.
func (m *Member) NeighborCount() int { return len(m.leaf.neighbors) }

// Contains reports whether the member's zone contains p.
func (m *Member) Contains(p Point) bool { return m.leaf.contains(p) }

// String implements fmt.Stringer.
func (m *Member) String() string {
	return fmt.Sprintf("member{host=%d zone=%s}", m.Host, m.leaf.path)
}

// zone is a node of the binary split tree. Internal zones have exactly two
// children; leaf zones have a member (nil only for an empty overlay root).
type zone struct {
	path     Path
	lo, hi   Point
	splitDim int // dimension split at this node (internal zones)
	children [2]*zone
	member   *Member
	// neighbors is maintained for leaves only.
	neighbors map[*zone]struct{}
}

func (z *zone) isLeaf() bool { return z.children[0] == nil }

func (z *zone) contains(p Point) bool {
	for k := range p {
		if p[k] < z.lo[k] || p[k] >= z.hi[k] {
			return false
		}
	}
	return true
}

func (z *zone) volume() float64 {
	v := 1.0
	for k := range z.lo {
		v *= z.hi[k] - z.lo[k]
	}
	return v
}

// Overlay is a CAN over [0,1)^dim.
type Overlay struct {
	dim     int
	root    *zone
	members map[*Member]struct{}
}

// New returns an empty CAN of the given dimensionality.
func New(dim int) (*Overlay, error) {
	if dim < 1 || dim > 16 {
		return nil, fmt.Errorf("can: dim = %d, need in [1,16]", dim)
	}
	lo := make(Point, dim)
	hi := make(Point, dim)
	for i := range hi {
		hi[i] = 1
	}
	return &Overlay{
		dim:     dim,
		root:    &zone{lo: lo, hi: hi, neighbors: map[*zone]struct{}{}},
		members: make(map[*Member]struct{}),
	}, nil
}

// Dim returns the overlay dimensionality.
func (o *Overlay) Dim() int { return o.dim }

// Size returns the number of members.
func (o *Overlay) Size() int { return len(o.members) }

// Members returns all members ordered by zone path (a canonical,
// deterministic order: leaf paths are unique). Fresh slice.
//
// Determinism here is load-bearing: experiments draw "random member"
// samples by index into this slice, so iteration-order randomness of the
// internal map must not leak into results.
func (o *Overlay) Members() []*Member {
	out := make([]*Member, 0, len(o.members))
	for m := range o.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].leaf.path, out[j].leaf.path
		if a.Bits != b.Bits {
			return a.Bits < b.Bits
		}
		return a.Len < b.Len
	})
	return out
}

// leafAt descends to the leaf zone containing p.
func (o *Overlay) leafAt(p Point) *zone {
	z := o.root
	for !z.isLeaf() {
		mid := (z.lo[z.splitDim] + z.hi[z.splitDim]) / 2
		if p[z.splitDim] < mid {
			z = z.children[0]
		} else {
			z = z.children[1]
		}
	}
	return z
}

// Lookup returns the member owning the zone that contains p, or nil for an
// empty overlay or an invalid point.
func (o *Overlay) Lookup(p Point) *Member {
	if !p.Valid(o.dim) {
		return nil
	}
	return o.leafAt(p).member
}

// PathOf returns the path of the leaf zone containing p.
func (o *Overlay) PathOf(p Point) (Path, error) {
	if !p.Valid(o.dim) {
		return Path{}, fmt.Errorf("can: invalid point %v for dim %d", p, o.dim)
	}
	return o.leafAt(p).path, nil
}

// Join adds a member for host at point p: the leaf zone containing p is
// split, the new member takes the half containing p, and the previous
// owner keeps the other half (the CAN join protocol).
func (o *Overlay) Join(host topology.NodeID, p Point) (*Member, error) {
	if !p.Valid(o.dim) {
		return nil, fmt.Errorf("can: invalid join point %v for dim %d", p, o.dim)
	}
	m := &Member{Host: host, JoinPoint: append(Point(nil), p...)}
	leaf := o.leafAt(p)
	if leaf.member == nil {
		// First member adopts the whole space.
		leaf.member = m
		m.leaf = leaf
		o.members[m] = struct{}{}
		return m, nil
	}
	if leaf.path.Len >= MaxDepth {
		return nil, fmt.Errorf("can: split depth limit %d reached", MaxDepth)
	}
	left, right := o.split(leaf)
	old := leaf.member
	leaf.member = nil
	newSide := left
	oldSide := right
	if !left.contains(p) {
		newSide, oldSide = right, left
	}
	newSide.member = m
	m.leaf = newSide
	oldSide.member = old
	old.leaf = oldSide
	o.members[m] = struct{}{}
	return m, nil
}

// JoinRandom joins host at a uniformly random point.
func (o *Overlay) JoinRandom(host topology.NodeID, rng *simrand.Source) (*Member, error) {
	return o.Join(host, RandomPoint(o.dim, rng))
}

// split turns leaf into an internal zone with two children along dimension
// depth mod d, rewiring neighbor sets locally.
func (o *Overlay) split(leaf *zone) (left, right *zone) {
	k := leaf.path.Len % o.dim
	mid := (leaf.lo[k] + leaf.hi[k]) / 2

	mk := func(bit int, lo, hi Point) *zone {
		return &zone{
			path:      leaf.path.child(bit),
			lo:        lo,
			hi:        hi,
			neighbors: make(map[*zone]struct{}, len(leaf.neighbors)+1),
		}
	}
	lhi := append(Point(nil), leaf.hi...)
	lhi[k] = mid
	rlo := append(Point(nil), leaf.lo...)
	rlo[k] = mid
	left = mk(0, leaf.lo, lhi)
	right = mk(1, rlo, leaf.hi)

	leaf.splitDim = k
	leaf.children[0] = left
	leaf.children[1] = right

	// The halves neighbor each other.
	left.neighbors[right] = struct{}{}
	right.neighbors[left] = struct{}{}
	// Redistribute the old neighbors.
	for nb := range leaf.neighbors {
		delete(nb.neighbors, leaf)
		if adjacent(left, nb) {
			left.neighbors[nb] = struct{}{}
			nb.neighbors[left] = struct{}{}
		}
		if adjacent(right, nb) {
			right.neighbors[nb] = struct{}{}
			nb.neighbors[right] = struct{}{}
		}
	}
	leaf.neighbors = nil
	return left, right
}

// Depart removes member m, handing its zone over per the CAN departure
// protocol: if the sibling zone is a leaf the sibling's owner takes over
// the merged parent; otherwise the owner of one of a pair of sibling
// leaves inside the sibling subtree is relocated into m's zone and its old
// zone merges with its sibling.
func (o *Overlay) Depart(m *Member) error {
	_, err := o.takeover(m, nil)
	return err
}

// Handover reports the outcome of a zone takeover: who ended up owning
// the vacated zone, and every member whose zone path changed in the
// process (the successor plus, in the relocation case, the survivor whose
// zone absorbed the mover's old zone). Callers repairing dependent state
// (routing tables, region maps) need exactly this set.
type Handover struct {
	// Successor owns the departed member's former zone (nil only when the
	// last member left and the overlay is empty).
	Successor *Member
	// Relocated lists members whose zone changed, successor included.
	Relocated []*Member
}

// IsMember reports whether m currently belongs to the overlay.
func (o *Overlay) IsMember(m *Member) bool {
	_, ok := o.members[m]
	return ok
}

// Takeover removes member m without its cooperation — the CAN ungraceful
// recovery protocol. The zone mechanics are identical to Depart (the
// split-tree analogue of the paper's smallest-neighbor takeover), but the
// caller learns who must repair what via the returned Handover.
func (o *Overlay) Takeover(m *Member) (Handover, error) {
	return o.takeover(m, nil)
}

// TakeoverAvoiding is Takeover biased against handing zones to members
// for which avoid returns true (typically: also crashed). Under cascading
// crashes a fully live handover may not exist; the operation then falls
// back to an avoided successor and stays total — a later takeover of that
// successor finishes the repair. With a nil avoid this is exactly
// Takeover, choice for choice.
func (o *Overlay) TakeoverAvoiding(m *Member, avoid func(*Member) bool) (Handover, error) {
	return o.takeover(m, avoid)
}

func (o *Overlay) takeover(m *Member, avoid func(*Member) bool) (Handover, error) {
	if _, ok := o.members[m]; !ok {
		return Handover{}, errors.New("can: departing member is not in the overlay")
	}
	delete(o.members, m)
	leaf := m.leaf
	m.leaf = nil
	if leaf == o.root {
		leaf.member = nil // overlay now empty
		return Handover{}, nil
	}
	parent := o.parentOf(leaf)
	sibling := parent.children[0]
	if sibling == leaf {
		sibling = parent.children[1]
	}
	if sibling.isLeaf() {
		succ := sibling.member
		o.mergeChildren(parent, succ)
		return Handover{Successor: succ, Relocated: []*Member{succ}}, nil
	}
	// Relocate the owner of one leaf of a sibling-leaf pair.
	pairParent := pickLeafPair(sibling, avoid)
	mover := pairParent.children[0].member
	survivor := pairParent.children[1].member
	if avoid != nil && avoid(mover) && !avoid(survivor) {
		// The successor inherits m's zone; prefer a live one.
		mover, survivor = survivor, mover
	}
	o.mergeChildren(pairParent, survivor)
	leaf.member = mover
	mover.leaf = leaf
	return Handover{Successor: mover, Relocated: []*Member{mover, survivor}}, nil
}

// parentOf walks from the root to find the parent of z (z != root).
func (o *Overlay) parentOf(z *zone) *zone {
	cur := o.root
	for {
		next := cur.children[z.path.Bit(cur.path.Len)]
		if next == z {
			return cur
		}
		cur = next
	}
}

// pickLeafPair selects the internal zone whose two leaf children will be
// merged to free a mover. With nil avoid it is deepestLeafPair — the same
// deterministic walk Depart has always used. With an avoid predicate it
// scans every leaf pair in the subtree (deterministic DFS order) and
// prefers pairs untouched by avoid, then pairs with at least one
// non-avoided member, then any pair, so takeover never gets stuck even
// when an entire subtree has crashed.
func pickLeafPair(z *zone, avoid func(*Member) bool) *zone {
	if avoid == nil {
		return deepestLeafPair(z)
	}
	var best *zone
	bestScore := -1
	var walk func(*zone)
	walk = func(z *zone) {
		if z.isLeaf() {
			return
		}
		if z.children[0].isLeaf() && z.children[1].isLeaf() {
			score := 0
			if !avoid(z.children[0].member) {
				score++
			}
			if !avoid(z.children[1].member) {
				score++
			}
			if score > bestScore {
				best, bestScore = z, score
			}
			return
		}
		walk(z.children[0])
		walk(z.children[1])
	}
	walk(z)
	return best
}

// deepestLeafPair returns an internal zone both of whose children are
// leaves, found by walking toward internal children.
func deepestLeafPair(z *zone) *zone {
	for {
		if !z.children[0].isLeaf() {
			z = z.children[0]
			continue
		}
		if !z.children[1].isLeaf() {
			z = z.children[1]
			continue
		}
		return z
	}
}

// mergeChildren collapses parent's two leaf children into parent, which
// becomes a leaf owned by survivor (the other child's member is the
// caller's to relocate or discard).
func (o *Overlay) mergeChildren(parent *zone, survivor *Member) {
	left, right := parent.children[0], parent.children[1]
	parent.children[0], parent.children[1] = nil, nil
	parent.member = survivor
	survivor.leaf = parent
	parent.neighbors = make(map[*zone]struct{}, len(left.neighbors)+len(right.neighbors))
	for _, child := range []*zone{left, right} {
		for nb := range child.neighbors {
			delete(nb.neighbors, child)
			if nb == left || nb == right {
				continue
			}
			if adjacent(parent, nb) {
				parent.neighbors[nb] = struct{}{}
				nb.neighbors[parent] = struct{}{}
			}
		}
	}
}

// adjacent reports CAN adjacency on the torus: the zones abut in exactly
// one dimension and their spans overlap (with nonzero measure) in every
// other dimension.
func adjacent(a, b *zone) bool {
	touch := false
	for k := range a.lo {
		overlap := a.lo[k] < b.hi[k] && b.lo[k] < a.hi[k]
		if overlap {
			continue
		}
		abut := a.hi[k] == b.lo[k] || b.hi[k] == a.lo[k] ||
			(a.lo[k] == 0 && b.hi[k] == 1) || (b.lo[k] == 0 && a.hi[k] == 1)
		if !abut || touch {
			return false
		}
		touch = true
	}
	return touch
}

// torusDist returns the torus distance from coordinate x to the interval
// [lo, hi) along one axis.
func torusDist(x, lo, hi float64) float64 {
	if x >= lo && x < hi {
		return 0
	}
	dLo := math.Abs(x - lo)
	if w := 1 - dLo; w < dLo {
		dLo = w
	}
	dHi := math.Abs(x - hi)
	if w := 1 - dHi; w < dHi {
		dHi = w
	}
	if dLo < dHi {
		return dLo
	}
	return dHi
}

// boxDist returns the squared torus distance from point p to zone z.
func boxDist(z *zone, p Point) float64 {
	sum := 0.0
	for k := range p {
		d := torusDist(p[k], z.lo[k], z.hi[k])
		sum += d * d
	}
	return sum
}

// Route performs greedy CAN routing from member "from" to the owner of
// point p, forwarding at each step to the unvisited neighbor whose zone is
// closest to p on the torus. It returns the member path including both
// endpoints. Routing fails only if greedy forwarding exhausts all
// neighbors (which cannot happen on a complete zone partition, but is
// guarded to keep the API total).
func (o *Overlay) Route(from *Member, p Point) ([]*Member, error) {
	if from == nil || from.leaf == nil {
		return nil, errors.New("can: route from a non-member")
	}
	if !p.Valid(o.dim) {
		return nil, fmt.Errorf("can: invalid target point %v for dim %d", p, o.dim)
	}
	cur := from.leaf
	path := []*Member{from}
	visited := map[*zone]struct{}{cur: {}}
	for !cur.contains(p) {
		var best *zone
		bestD := math.Inf(1)
		for nb := range cur.neighbors {
			if _, seen := visited[nb]; seen {
				continue
			}
			if d := boxDist(nb, p); d < bestD {
				best, bestD = nb, d
			}
		}
		if best == nil {
			return nil, fmt.Errorf("can: greedy routing stuck after %d hops", len(path)-1)
		}
		cur = best
		visited[cur] = struct{}{}
		path = append(path, cur.member)
	}
	return path, nil
}

// MembersUnder returns every member whose zone lies in the region named by
// prefix. An empty prefix returns all members. If the prefix descends below
// a leaf (the tree does not branch that deep there), the leaf's member is
// returned: its zone contains the whole region.
func (o *Overlay) MembersUnder(prefix Path) []*Member {
	z := o.root
	for z.path.Len < prefix.Len {
		if z.isLeaf() {
			if z.member == nil {
				return nil
			}
			return []*Member{z.member}
		}
		z = z.children[prefix.Bit(z.path.Len)]
	}
	if !z.path.HasPrefix(prefix) {
		return nil
	}
	var out []*Member
	var walk func(*zone)
	walk = func(z *zone) {
		if z.isLeaf() {
			if z.member != nil {
				out = append(out, z.member)
			}
			return
		}
		walk(z.children[0])
		walk(z.children[1])
	}
	walk(z)
	return out
}

// LeafAlong descends the split tree following the bits of path; if the
// tree is deeper than the path, descent continues through 0-children. The
// returned member owns the leaf zone that contains (or is contained by)
// the region the path names. Returns nil only for an empty overlay.
func (o *Overlay) LeafAlong(path Path) *Member {
	z := o.root
	for !z.isLeaf() {
		bit := 0
		if z.path.Len < path.Len {
			bit = path.Bit(z.path.Len)
		}
		z = z.children[bit]
	}
	return z.member
}

// RegionIndex returns a map from every zone path in the split tree (leaves
// and internal regions alike) to the members whose zones lie inside it.
// The index is a snapshot: joins and departures after the call are not
// reflected. Member slices within the index must not be modified.
func (o *Overlay) RegionIndex() map[Path][]*Member {
	idx := make(map[Path][]*Member)
	var walk func(z *zone) []*Member
	walk = func(z *zone) []*Member {
		if z.isLeaf() {
			if z.member == nil {
				return nil
			}
			ms := []*Member{z.member}
			idx[z.path] = ms
			return ms
		}
		left := walk(z.children[0])
		right := walk(z.children[1])
		ms := make([]*Member, 0, len(left)+len(right))
		ms = append(ms, left...)
		ms = append(ms, right...)
		idx[z.path] = ms
		return ms
	}
	walk(o.root)
	return idx
}

// LeafPaths returns the paths of all leaf zones (diagnostics and tests).
func (o *Overlay) LeafPaths() []Path {
	var out []Path
	var walk func(*zone)
	walk = func(z *zone) {
		if z.isLeaf() {
			out = append(out, z.path)
			return
		}
		walk(z.children[0])
		walk(z.children[1])
	}
	walk(o.root)
	return out
}

// CheckInvariants exhaustively validates the overlay structure: leaf zones
// tile the space, neighbor sets are symmetric and geometrically exact, and
// member/leaf links are consistent. O(n^2); intended for tests.
func (o *Overlay) CheckInvariants() error {
	var leaves []*zone
	var walk func(*zone) error
	walk = func(z *zone) error {
		if z.isLeaf() {
			if z.member == nil && z != o.root {
				return fmt.Errorf("leaf %s has no member", z.path)
			}
			if z.member != nil && z.member.leaf != z {
				return fmt.Errorf("leaf %s member back-link broken", z.path)
			}
			leaves = append(leaves, z)
			return nil
		}
		if z.neighbors != nil {
			return fmt.Errorf("internal zone %s retains neighbor set", z.path)
		}
		for _, c := range z.children {
			if c == nil {
				return fmt.Errorf("internal zone %s has nil child", z.path)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(o.root); err != nil {
		return err
	}
	vol := 0.0
	for _, z := range leaves {
		vol += z.volume()
	}
	if math.Abs(vol-1) > 1e-9 {
		return fmt.Errorf("leaf volumes sum to %v, want 1", vol)
	}
	for i, a := range leaves {
		for j, b := range leaves {
			if i == j {
				continue
			}
			_, isNb := a.neighbors[b]
			_, isNbBack := b.neighbors[a]
			if isNb != isNbBack {
				return fmt.Errorf("asymmetric neighbor sets between %s and %s", a.path, b.path)
			}
			if want := adjacent(a, b); want != isNb {
				return fmt.Errorf("neighbor set of %s wrong about %s: have %v, want %v",
					a.path, b.path, isNb, want)
			}
		}
	}
	count := 0
	for _, z := range leaves {
		if z.member != nil {
			count++
		}
	}
	if count != len(o.members) {
		return fmt.Errorf("member count mismatch: %d leaves vs %d registered", count, len(o.members))
	}
	return nil
}
