package can

import (
	"math"
	"testing"

	"gsso/internal/simrand"
	"gsso/internal/topology"
)

func TestPointValid(t *testing.T) {
	cases := []struct {
		name string
		p    Point
		d    int
		ok   bool
	}{
		{"ok", Point{0.5, 0.5}, 2, true},
		{"zero", Point{0, 0}, 2, true},
		{"wrong-dim", Point{0.5}, 2, false},
		{"negative", Point{-0.1, 0}, 2, false},
		{"one", Point{1, 0}, 2, false},
		{"nan", Point{math.NaN(), 0}, 2, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Valid(tc.d); got != tc.ok {
				t.Fatalf("Valid = %v, want %v", got, tc.ok)
			}
		})
	}
}

func TestRandomPoint(t *testing.T) {
	rng := simrand.New(1)
	for i := 0; i < 100; i++ {
		p := RandomPoint(3, rng)
		if !p.Valid(3) {
			t.Fatalf("invalid random point %v", p)
		}
	}
}

func TestPathOperations(t *testing.T) {
	var p Path
	p = p.child(0).child(1).child(1).child(0) // 0110
	if p.Len != 4 || p.String() != "0110" {
		t.Fatalf("path = %s len %d", p, p.Len)
	}
	if p.Bit(0) != 0 || p.Bit(1) != 1 || p.Bit(2) != 1 || p.Bit(3) != 0 {
		t.Fatal("Bit() wrong")
	}
	if !p.HasPrefix(p.Prefix(2)) {
		t.Fatal("prefix not recognized")
	}
	if !p.HasPrefix(Path{}) {
		t.Fatal("empty path should prefix everything")
	}
	q := Path{}.child(0).child(0)
	if p.HasPrefix(q) {
		t.Fatal("false prefix accepted")
	}
	if got := p.CommonPrefixLen(q); got != 1 {
		t.Fatalf("CommonPrefixLen = %d, want 1", got)
	}
	if got := p.CommonPrefixLen(p); got != 4 {
		t.Fatalf("CommonPrefixLen self = %d", got)
	}
	if p.Prefix(10).Len != 4 {
		t.Fatal("Prefix beyond Len should clamp")
	}
}

func TestPathPrefixDeep(t *testing.T) {
	// Exercise the 64-bit boundary of prefix masks.
	var p Path
	for i := 0; i < 64; i++ {
		p = p.child(i % 2)
	}
	if p.Len != 64 {
		t.Fatalf("Len = %d", p.Len)
	}
	if !p.HasPrefix(p.Prefix(64)) || !p.HasPrefix(p.Prefix(63)) {
		t.Fatal("deep prefixes broken")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("dim 0 accepted")
	}
	if _, err := New(17); err == nil {
		t.Fatal("dim 17 accepted")
	}
	o, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if o.Dim() != 2 || o.Size() != 0 {
		t.Fatal("fresh overlay wrong")
	}
}

func TestEmptyOverlayLookup(t *testing.T) {
	o, _ := New(2)
	if o.Lookup(Point{0.5, 0.5}) != nil {
		t.Fatal("empty overlay returned a member")
	}
	if o.Lookup(Point{2, 2}) != nil {
		t.Fatal("invalid point returned a member")
	}
}

func TestFirstJoinOwnsEverything(t *testing.T) {
	o, _ := New(2)
	m, err := o.Join(100, Point{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if o.Size() != 1 {
		t.Fatalf("Size = %d", o.Size())
	}
	if m.Volume() != 1 {
		t.Fatalf("first member volume = %v", m.Volume())
	}
	if o.Lookup(Point{0.99, 0.01}) != m {
		t.Fatal("first member does not own the whole space")
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinSplitsZone(t *testing.T) {
	o, _ := New(2)
	m1, _ := o.Join(1, Point{0.25, 0.5})
	m2, err := o.Join(2, Point{0.75, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Split along dim 0 at 0.5: m2 takes right half.
	if m1.Volume() != 0.5 || m2.Volume() != 0.5 {
		t.Fatalf("volumes %v, %v", m1.Volume(), m2.Volume())
	}
	if o.Lookup(Point{0.9, 0.9}) != m2 || o.Lookup(Point{0.1, 0.1}) != m1 {
		t.Fatal("halves owned by the wrong members")
	}
	if m1.NeighborCount() != 1 || m2.Neighbors()[0] != m1 {
		t.Fatal("halves not neighbors")
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinInvalidPoint(t *testing.T) {
	o, _ := New(2)
	if _, err := o.Join(1, Point{1.5, 0}); err == nil {
		t.Fatal("invalid point accepted")
	}
}

func TestManyJoinsInvariants(t *testing.T) {
	for _, dim := range []int{1, 2, 3} {
		o, _ := New(dim)
		rng := simrand.New(uint64(dim) * 11)
		for i := 0; i < 60; i++ {
			if _, err := o.JoinRandom(topology.NodeID(i), rng); err != nil {
				t.Fatal(err)
			}
		}
		if o.Size() != 60 {
			t.Fatalf("Size = %d", o.Size())
		}
		if err := o.CheckInvariants(); err != nil {
			t.Fatalf("dim %d: %v", dim, err)
		}
	}
}

func TestLookupFindsContainingZone(t *testing.T) {
	o, _ := New(2)
	rng := simrand.New(3)
	for i := 0; i < 40; i++ {
		if _, err := o.JoinRandom(topology.NodeID(i), rng); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		p := RandomPoint(2, rng)
		m := o.Lookup(p)
		if m == nil || !m.Contains(p) {
			t.Fatalf("Lookup(%v) returned non-containing member", p)
		}
	}
}

func TestRouteReachesOwner(t *testing.T) {
	for _, dim := range []int{2, 3} {
		o, _ := New(dim)
		rng := simrand.New(uint64(dim))
		for i := 0; i < 80; i++ {
			if _, err := o.JoinRandom(topology.NodeID(i), rng); err != nil {
				t.Fatal(err)
			}
		}
		members := o.Members()
		for i := 0; i < 60; i++ {
			from := members[rng.Intn(len(members))]
			target := RandomPoint(dim, rng)
			path, err := o.Route(from, target)
			if err != nil {
				t.Fatal(err)
			}
			if path[0] != from {
				t.Fatal("path does not start at source")
			}
			last := path[len(path)-1]
			if !last.Contains(target) {
				t.Fatalf("route ended at non-owner of %v", target)
			}
			if last != o.Lookup(target) {
				t.Fatal("route destination disagrees with Lookup")
			}
			// Consecutive hops must be neighbors.
			for h := 1; h < len(path); h++ {
				isNb := false
				for _, nb := range path[h-1].Neighbors() {
					if nb == path[h] {
						isNb = true
						break
					}
				}
				if !isNb {
					t.Fatalf("hop %d is not a neighbor of hop %d", h, h-1)
				}
			}
		}
	}
}

func TestRouteValidation(t *testing.T) {
	o, _ := New(2)
	m, _ := o.Join(1, Point{0.5, 0.5})
	if _, err := o.Route(nil, Point{0.1, 0.1}); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := o.Route(m, Point{9, 9}); err == nil {
		t.Fatal("invalid target accepted")
	}
	// Single member: zero-hop route.
	path, err := o.Route(m, Point{0.9, 0.9})
	if err != nil || len(path) != 1 {
		t.Fatalf("self route = %v, %v", path, err)
	}
}

func TestRouteHopScaling(t *testing.T) {
	// Average CAN hops grow roughly as (d/4) * N^(1/d); mainly we check
	// d=2 at N=256 stays well under N and above 1.
	o, _ := New(2)
	rng := simrand.New(5)
	for i := 0; i < 256; i++ {
		if _, err := o.JoinRandom(topology.NodeID(i), rng); err != nil {
			t.Fatal(err)
		}
	}
	members := o.Members()
	total := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		from := members[rng.Intn(len(members))]
		path, err := o.Route(from, RandomPoint(2, rng))
		if err != nil {
			t.Fatal(err)
		}
		total += len(path) - 1
	}
	avg := float64(total) / trials
	// (2/4)*sqrt(256) = 8; allow generous slack for zone irregularity.
	if avg < 2 || avg > 20 {
		t.Fatalf("avg hops = %v, expected ~8", avg)
	}
	t.Logf("avg hops at N=256, d=2: %.2f", avg)
}

func TestDepartSiblingLeaf(t *testing.T) {
	o, _ := New(2)
	m1, _ := o.Join(1, Point{0.25, 0.5})
	m2, _ := o.Join(2, Point{0.75, 0.5})
	if err := o.Depart(m2); err != nil {
		t.Fatal(err)
	}
	if o.Size() != 1 {
		t.Fatalf("Size = %d", o.Size())
	}
	if m1.Volume() != 1 {
		t.Fatalf("survivor volume = %v", m1.Volume())
	}
	if o.Lookup(Point{0.9, 0.9}) != m1 {
		t.Fatal("survivor does not own the merged zone")
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDepartSurvivorIsSibling(t *testing.T) {
	// Departing the *left* child must leave the right child's member in
	// charge, and vice versa — never the departed member.
	o, _ := New(2)
	m1, _ := o.Join(1, Point{0.25, 0.5})
	m2, _ := o.Join(2, Point{0.75, 0.5})
	if err := o.Depart(m1); err != nil {
		t.Fatal(err)
	}
	if o.Lookup(Point{0.1, 0.1}) != m2 {
		t.Fatal("departed member still owns space")
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDepartWithRelocation(t *testing.T) {
	// Build a tree where the departing zone's sibling is internal, forcing
	// the relocation path.
	o, _ := New(1)
	mA, _ := o.Join(1, Point{0.1}) // will own [0, .5) after next join
	mB, _ := o.Join(2, Point{0.9}) // owns [.5, 1)
	mC, _ := o.Join(3, Point{0.6}) // splits [.5,1) -> B keeps [.5,.75)? C takes [.5,.75) or [.75,1)
	_ = mB
	_ = mC
	if err := o.Depart(mA); err != nil {
		t.Fatal(err)
	}
	if o.Size() != 2 {
		t.Fatalf("Size = %d", o.Size())
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// All of the space is still owned.
	for _, x := range []float64{0.05, 0.3, 0.55, 0.8, 0.99} {
		if o.Lookup(Point{x}) == nil {
			t.Fatalf("point %v unowned after departure", x)
		}
	}
}

func TestDepartUnknownMember(t *testing.T) {
	o, _ := New(2)
	o.Join(1, Point{0.5, 0.5})
	stranger := &Member{Host: 99}
	if err := o.Depart(stranger); err == nil {
		t.Fatal("unknown member departed without error")
	}
}

func TestDepartLastMember(t *testing.T) {
	o, _ := New(2)
	m, _ := o.Join(1, Point{0.5, 0.5})
	if err := o.Depart(m); err != nil {
		t.Fatal(err)
	}
	if o.Size() != 0 {
		t.Fatal("overlay not empty")
	}
	if o.Lookup(Point{0.5, 0.5}) != nil {
		t.Fatal("empty overlay returned member")
	}
	// Overlay remains usable.
	if _, err := o.Join(2, Point{0.2, 0.2}); err != nil {
		t.Fatal(err)
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestChurnInvariants(t *testing.T) {
	o, _ := New(2)
	rng := simrand.New(21)
	var alive []*Member
	next := topology.NodeID(0)
	for step := 0; step < 300; step++ {
		if len(alive) == 0 || rng.Bool(0.6) {
			m, err := o.JoinRandom(next, rng)
			if err != nil {
				t.Fatal(err)
			}
			next++
			alive = append(alive, m)
		} else {
			i := rng.Intn(len(alive))
			if err := o.Depart(alive[i]); err != nil {
				t.Fatal(err)
			}
			alive[i] = alive[len(alive)-1]
			alive = alive[:len(alive)-1]
		}
		if step%50 == 49 {
			if err := o.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if o.Size() != len(alive) {
		t.Fatalf("Size = %d, tracked %d", o.Size(), len(alive))
	}
}

func TestMembersUnder(t *testing.T) {
	o, _ := New(2)
	rng := simrand.New(9)
	for i := 0; i < 32; i++ {
		if _, err := o.JoinRandom(topology.NodeID(i), rng); err != nil {
			t.Fatal(err)
		}
	}
	all := o.MembersUnder(Path{})
	if len(all) != 32 {
		t.Fatalf("MembersUnder(root) = %d members", len(all))
	}
	left := o.MembersUnder(Path{}.child(0))
	right := o.MembersUnder(Path{}.child(1))
	if len(left)+len(right) != 32 {
		t.Fatalf("halves hold %d + %d members", len(left), len(right))
	}
	for _, m := range left {
		if m.Path().Bit(0) != 0 {
			t.Fatal("left subtree contains right-side member")
		}
	}
	// A prefix deeper than the tree on that side returns the deep leaf or nothing.
	deep := Path{}
	for i := 0; i < 30; i++ {
		deep = deep.child(0)
	}
	_ = o.MembersUnder(deep) // must not panic
}

func TestPathOf(t *testing.T) {
	o, _ := New(2)
	rng := simrand.New(4)
	for i := 0; i < 16; i++ {
		if _, err := o.JoinRandom(topology.NodeID(i), rng); err != nil {
			t.Fatal(err)
		}
	}
	p := Point{0.3, 0.6}
	path, err := o.PathOf(p)
	if err != nil {
		t.Fatal(err)
	}
	if o.Lookup(p).Path() != path {
		t.Fatal("PathOf disagrees with Lookup")
	}
	if _, err := o.PathOf(Point{2, 2}); err == nil {
		t.Fatal("invalid point accepted")
	}
}

func TestLeafPathsPartition(t *testing.T) {
	o, _ := New(3)
	rng := simrand.New(8)
	for i := 0; i < 50; i++ {
		if _, err := o.JoinRandom(topology.NodeID(i), rng); err != nil {
			t.Fatal(err)
		}
	}
	paths := o.LeafPaths()
	if len(paths) != 50 {
		t.Fatalf("%d leaves for 50 members", len(paths))
	}
	// No leaf path is a prefix of another (prefix-free <=> partition).
	for i, a := range paths {
		for j, b := range paths {
			if i != j && b.HasPrefix(a) {
				t.Fatalf("leaf %s is prefix of leaf %s", a, b)
			}
		}
	}
}

func TestTorusDist(t *testing.T) {
	cases := []struct {
		x, lo, hi, want float64
	}{
		{0.5, 0.4, 0.6, 0},     // inside
		{0.3, 0.4, 0.6, 0.1},   // left of interval
		{0.95, 0.0, 0.1, 0.05}, // wraps around 1.0
		{0.7, 0.4, 0.6, 0.1},   // right of interval
	}
	for _, tc := range cases {
		if got := torusDist(tc.x, tc.lo, tc.hi); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("torusDist(%v,[%v,%v)) = %v, want %v", tc.x, tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestMemberAccessors(t *testing.T) {
	o, _ := New(2)
	m, _ := o.Join(7, Point{0.2, 0.8})
	lo, hi := m.ZoneLo(), m.ZoneHi()
	lo[0] = 99 // must be copies
	hi[0] = 99
	if m.ZoneLo()[0] == 99 || m.ZoneHi()[0] == 99 {
		t.Fatal("zone bounds leaked")
	}
	if m.Depth() != 0 {
		t.Fatalf("Depth = %d", m.Depth())
	}
	if m.String() == "" {
		t.Fatal("String empty")
	}
	if m.JoinPoint[0] != 0.2 {
		t.Fatal("join point not recorded")
	}
}

func BenchmarkJoin1024(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o, _ := New(2)
		rng := simrand.New(1)
		for j := 0; j < 1024; j++ {
			if _, err := o.JoinRandom(topology.NodeID(j), rng); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRoute(b *testing.B) {
	o, _ := New(2)
	rng := simrand.New(1)
	for j := 0; j < 1024; j++ {
		if _, err := o.JoinRandom(topology.NodeID(j), rng); err != nil {
			b.Fatal(err)
		}
	}
	members := o.Members()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := members[i%len(members)]
		if _, err := o.Route(from, RandomPoint(2, rng)); err != nil {
			b.Fatal(err)
		}
	}
}
