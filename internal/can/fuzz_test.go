package can

import (
	"math"
	"testing"

	"gsso/internal/simrand"
	"gsso/internal/topology"
)

// runMembershipScript drives one overlay through a byte-encoded op
// sequence — the shared engine of the property test and the fuzz
// target. Ops are consumed two bytes at a time (kind, operand), so the
// fuzzer can shrink a failing interleaving byte by byte:
//
//	kind%4 == 0  join a fresh host
//	kind%4 == 1  graceful depart of member[operand%size]
//	kind%4 == 2  ungraceful takeover of member[operand%size]
//	kind%4 == 3  mark member[operand%size] crashed (no structural change)
//
// Whenever more than three members are marked crashed, a repair sweep
// takes them all over while avoiding the crash set — the multi-crash
// interleaving the self-healing loop must survive. After every single
// operation the split tree must satisfy CheckInvariants and the member
// zone volumes must sum to 1.
func runMembershipScript(t *testing.T, ops []byte) {
	o, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(1)
	nextHost := topology.NodeID(0)
	crashed := map[*Member]bool{}
	isCrashed := func(m *Member) bool { return crashed[m] }

	check := func() {
		if err := o.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, m := range o.Members() {
			sum += math.Ldexp(1, -m.Path().Len)
		}
		if o.Size() > 0 && math.Abs(sum-1) > 1e-9 {
			t.Fatalf("zone volumes sum to %v, want 1", sum)
		}
	}
	repair := func() {
		for round := 0; round < 10; round++ {
			progress := false
			for _, m := range o.Members() {
				if !crashed[m] {
					continue
				}
				progress = true
				if _, err := o.TakeoverAvoiding(m, isCrashed); err != nil {
					t.Fatal(err)
				}
				check()
			}
			if !progress {
				break
			}
		}
		crashed = map[*Member]bool{}
	}

	for i := 0; i+1 < len(ops); i += 2 {
		kind, operand := ops[i]%4, int(ops[i+1])
		switch kind {
		case 0:
			if o.Size() >= 128 {
				continue
			}
			if _, err := o.JoinRandom(nextHost, rng); err != nil {
				t.Fatal(err)
			}
			nextHost++
		case 1:
			if o.Size() == 0 {
				continue
			}
			m := o.Members()[operand%o.Size()]
			delete(crashed, m)
			if err := o.Depart(m); err != nil {
				t.Fatal(err)
			}
		case 2:
			if o.Size() == 0 {
				continue
			}
			m := o.Members()[operand%o.Size()]
			delete(crashed, m)
			if _, err := o.Takeover(m); err != nil {
				t.Fatal(err)
			}
		case 3:
			if o.Size() == 0 {
				continue
			}
			crashed[o.Members()[operand%o.Size()]] = true
			if len(crashed) > 3 {
				repair()
			}
		}
		check()
	}
	repair()
	check()
	for _, m := range o.Members() {
		if crashed[m] {
			t.Fatal("crashed member survived final repair")
		}
	}
}

// TestMembershipProperty runs a long seeded random interleaving of
// joins, departs, crashes, and repairs — the deterministic always-on
// twin of FuzzMembership.
func TestMembershipProperty(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		rng := simrand.New(seed)
		ops := make([]byte, 600)
		// Bias toward joins so the overlay grows enough for interesting
		// takeovers: kinds 0,0,1,2,3,3 with equal weight.
		kinds := []byte{0, 0, 1, 2, 3, 3}
		for i := 0; i+1 < len(ops); i += 2 {
			ops[i] = kinds[rng.Intn(len(kinds))]
			ops[i+1] = byte(rng.Intn(256))
		}
		runMembershipScript(t, ops)
	}
}

// FuzzMembership lets the fuzzer search join/depart/crash interleavings
// for one that breaks the split tree. Run with a budget via
// `go test -fuzz FuzzMembership -fuzztime 30s ./internal/can`.
func FuzzMembership(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 0, 2, 0, 3})               // grow
	f.Add([]byte{0, 0, 0, 1, 1, 0, 2, 1})               // join, depart, takeover
	f.Add([]byte{0, 0, 0, 1, 0, 2, 0, 3, 3, 0, 3, 1, 3, 2, 3, 3, 3, 4}) // crash burst → repair
	f.Add([]byte{0, 0, 2, 0, 0, 1, 2, 0})               // drain to empty and rejoin
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 2048 {
			ops = ops[:2048]
		}
		runMembershipScript(t, ops)
	})
}
