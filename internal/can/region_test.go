package can

import (
	"testing"

	"gsso/internal/simrand"
	"gsso/internal/topology"
)

func buildOverlay(t *testing.T, dim, n int, seed uint64) *Overlay {
	t.Helper()
	o, err := New(dim)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(seed)
	for i := 0; i < n; i++ {
		if _, err := o.JoinRandom(topology.NodeID(i), rng); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

func TestRegionIndexMatchesMembersUnder(t *testing.T) {
	o := buildOverlay(t, 2, 48, 10)
	idx := o.RegionIndex()
	if len(idx[Path{}]) != 48 {
		t.Fatalf("root region holds %d members", len(idx[Path{}]))
	}
	for path, members := range idx {
		direct := o.MembersUnder(path)
		if len(direct) != len(members) {
			t.Fatalf("region %s: index %d members, MembersUnder %d", path, len(members), len(direct))
		}
		seen := map[*Member]bool{}
		for _, m := range members {
			seen[m] = true
			if !m.Path().HasPrefix(path) {
				t.Fatalf("region %s contains member with path %s", path, m.Path())
			}
		}
		for _, m := range direct {
			if !seen[m] {
				t.Fatalf("region %s: MembersUnder found member missing from index", path)
			}
		}
	}
	// Tree-node count: 2n-1 regions for n leaves.
	if len(idx) != 2*48-1 {
		t.Fatalf("index holds %d regions, want %d", len(idx), 2*48-1)
	}
}

func TestRegionIndexEmptyOverlay(t *testing.T) {
	o, _ := New(2)
	idx := o.RegionIndex()
	if len(idx) != 0 {
		t.Fatalf("empty overlay index has %d regions", len(idx))
	}
}

func TestMembersUnderBelowLeaf(t *testing.T) {
	o := buildOverlay(t, 2, 8, 11)
	// Take some leaf and extend its path: the leaf's member covers it.
	m := o.Members()[0]
	deep := m.Path().child(0).child(1).child(0)
	got := o.MembersUnder(deep)
	if len(got) != 1 || got[0] != m {
		t.Fatalf("below-leaf region returned %v, want [%v]", got, m)
	}
}

func TestZoneCenterInsideZone(t *testing.T) {
	o := buildOverlay(t, 3, 40, 12)
	for _, m := range o.Members() {
		c := m.ZoneCenter()
		if !m.Contains(c) {
			t.Fatalf("center %v outside zone of %v", c, m)
		}
		if o.Lookup(c) != m {
			t.Fatal("Lookup(center) is not the member itself")
		}
	}
}

func TestRegionIndexPartitionAtEachLevel(t *testing.T) {
	o := buildOverlay(t, 2, 32, 13)
	idx := o.RegionIndex()
	// For every internal region, children partition the member set.
	for path, members := range idx {
		l, okL := idx[path.child(0)]
		r, okR := idx[path.child(1)]
		if !okL && !okR {
			continue // leaf
		}
		if !okL || !okR {
			t.Fatalf("region %s has exactly one child region", path)
		}
		if len(l)+len(r) != len(members) {
			t.Fatalf("region %s: %d members but children hold %d+%d", path, len(members), len(l), len(r))
		}
	}
}
