package can

import (
	"math"
	"testing"

	"gsso/internal/simrand"
	"gsso/internal/topology"
)

// takeoverOverlay builds a dim-2 overlay with n members.
func takeoverOverlay(t testing.TB, n int, seed uint64) *Overlay {
	t.Helper()
	o, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(seed)
	for i := 0; i < n; i++ {
		if _, err := o.JoinRandom(topology.NodeID(i), rng); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

// volumeSum adds the zone volumes of all members; a consistent split
// tree partitions the unit cube, so the sum must be exactly 1.
func volumeSum(o *Overlay) float64 {
	s := 0.0
	for _, m := range o.Members() {
		s += math.Ldexp(1, -m.Path().Len)
	}
	return s
}

func checkHealthy(t *testing.T, o *Overlay) {
	t.Helper()
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if v := volumeSum(o); math.Abs(v-1) > 1e-9 {
		t.Fatalf("zone volumes sum to %v, want 1", v)
	}
}

func TestTakeoverHandover(t *testing.T) {
	o := takeoverOverlay(t, 32, 1)
	victim := o.Members()[7]
	h, err := o.Takeover(victim)
	if err != nil {
		t.Fatal(err)
	}
	if o.IsMember(victim) {
		t.Fatal("victim still a member")
	}
	if h.Successor == nil || !o.IsMember(h.Successor) {
		t.Fatalf("successor = %v", h.Successor)
	}
	found := false
	for _, r := range h.Relocated {
		if r == h.Successor {
			found = true
		}
		if !o.IsMember(r) {
			t.Fatal("relocated member not in overlay")
		}
	}
	if !found {
		t.Fatal("successor missing from Relocated")
	}
	if o.Size() != 31 {
		t.Fatalf("Size = %d", o.Size())
	}
	checkHealthy(t, o)
}

// TestTakeoverMatchesDepart pins the refactor: Depart is takeover with
// no avoid predicate, so both must leave an identical split tree.
func TestTakeoverMatchesDepart(t *testing.T) {
	a := takeoverOverlay(t, 48, 3)
	b := takeoverOverlay(t, 48, 3)
	for i := 0; i < 10; i++ {
		idx := (i * 5) % a.Size()
		if err := a.Depart(a.Members()[idx]); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Takeover(b.Members()[idx]); err != nil {
			t.Fatal(err)
		}
		ma, mb := a.Members(), b.Members()
		if len(ma) != len(mb) {
			t.Fatalf("sizes diverged: %d vs %d", len(ma), len(mb))
		}
		for j := range ma {
			if ma[j].Path() != mb[j].Path() || ma[j].Host != mb[j].Host {
				t.Fatalf("step %d member %d: depart %v@%v, takeover %v@%v",
					i, j, ma[j].Host, ma[j].Path(), mb[j].Host, mb[j].Path())
			}
		}
	}
}

func TestTakeoverAvoidingCascade(t *testing.T) {
	o := takeoverOverlay(t, 64, 5)
	rng := simrand.New(99)
	crashed := map[*Member]bool{}
	for _, i := range rng.Sample(64, 19) { // ~30% simultaneous crashes
		crashed[o.Members()[i]] = true
	}
	isCrashed := func(m *Member) bool { return crashed[m] }

	// Repair rounds: take over every crashed member still holding a
	// zone. A takeover may hand a zone to another crashed member when
	// the whole neighborhood is dead; a later round finishes the job.
	for round := 0; round < 10; round++ {
		progress := false
		for m := range crashed {
			if !o.IsMember(m) {
				continue
			}
			progress = true
			if _, err := o.TakeoverAvoiding(m, isCrashed); err != nil {
				t.Fatal(err)
			}
			checkHealthy(t, o)
		}
		if !progress {
			break
		}
	}
	for m := range crashed {
		if o.IsMember(m) {
			t.Fatal("crashed member still holds a zone after convergence")
		}
	}
	if o.Size() != 64-len(crashed) {
		t.Fatalf("Size = %d, want %d", o.Size(), 64-len(crashed))
	}
	for _, m := range o.Members() {
		if crashed[m] {
			t.Fatal("survivor set contains a crashed member")
		}
	}
}

// TestTakeoverAvoidingPrefersLive pins the successor preference: when a
// two-leaf pair holds one crashed and one live member, the live one
// inherits the vacated zone.
func TestTakeoverAvoidingPrefersLive(t *testing.T) {
	for trial := uint64(0); trial < 8; trial++ {
		o := takeoverOverlay(t, 40, 11+trial)
		rng := simrand.New(trial)
		crashed := map[*Member]bool{}
		for _, i := range rng.Sample(40, 8) {
			crashed[o.Members()[i]] = true
		}
		var victim *Member
		for m := range crashed {
			victim = m
			break
		}
		h, err := o.TakeoverAvoiding(victim, func(m *Member) bool { return crashed[m] })
		if err != nil {
			t.Fatal(err)
		}
		// A sibling-leaf merge has no choice of successor; but whenever a
		// pair relocation had a live member available, the live one must
		// inherit the vacated zone.
		if len(h.Relocated) == 2 && crashed[h.Relocated[0]] && !crashed[h.Relocated[1]] {
			t.Fatalf("trial %d: crashed successor chosen over live survivor", trial)
		}
		checkHealthy(t, o)
	}
}

func TestTakeoverErrorsAndEmpty(t *testing.T) {
	o := takeoverOverlay(t, 2, 7)
	outsider := &Member{Host: 999}
	if _, err := o.Takeover(outsider); err == nil {
		t.Fatal("non-member takeover accepted")
	}
	if _, err := o.Takeover(nil); err == nil {
		t.Fatal("nil takeover accepted")
	}
	ms := o.Members()
	h, err := o.Takeover(ms[0])
	if err != nil || h.Successor != ms[1] {
		t.Fatalf("sibling merge: %+v, %v", h, err)
	}
	h, err = o.Takeover(ms[1])
	if err != nil || h.Successor != nil {
		t.Fatalf("last member: %+v, %v", h, err)
	}
	if o.Size() != 0 {
		t.Fatal("overlay not empty")
	}
	// The emptied overlay accepts a fresh first join.
	if _, err := o.JoinRandom(5, simrand.New(1)); err != nil {
		t.Fatal(err)
	}
	checkHealthy(t, o)
}
