// Package chord implements a compact Chord ring (Stoica et al., SIGCOMM
// 2001): consistent hashing on an m-bit identifier circle with finger
// tables for O(log N) lookups.
//
// The paper's appendix notes the global soft-state design is
// overlay-agnostic: "in the case of Chord, we can simply use the landmark
// number as the key to store the information ... on a node whose ID is
// equal to or greater than the landmark number". This package provides
// that substrate: Put stores items at the successor of their key, and
// Collect gathers the items nearest a key along the ring — exactly the
// condensed-map lookup, with ring distance standing in for the eCAN
// placement geometry.
package chord

import (
	"errors"
	"fmt"
	"sort"

	"gsso/internal/simrand"
	"gsso/internal/topology"
)

// ID is a position on the identifier circle. The ring is always modulo
// 2^bits; IDs must stay below 1<<bits.
type ID uint64

// Item is a stored key/value pair.
type Item struct {
	Key   ID
	Value interface{}
}

// Node is one ring participant.
type Node struct {
	ID   ID
	Host topology.NodeID

	succ    *Node
	pred    *Node
	fingers []*Node
	items   []Item // sorted by Key
}

// Successor returns the node's ring successor (valid after Build).
func (n *Node) Successor() *Node { return n.succ }

// Predecessor returns the node's ring predecessor (valid after Build).
func (n *Node) Predecessor() *Node { return n.pred }

// Items returns the node's stored items (fresh slice).
func (n *Node) Items() []Item { return append([]Item(nil), n.items...) }

// String implements fmt.Stringer.
func (n *Node) String() string { return fmt.Sprintf("chord{id=%d host=%d}", n.ID, n.Host) }

// Ring is a Chord identifier circle with all membership known to the
// simulator; Build computes successors and finger tables in one shot
// (the steady state the iterative join/stabilize protocol converges to).
type Ring struct {
	bits  int
	mod   ID
	nodes []*Node // sorted by ID
	built bool
}

// NewRing returns an empty ring over 2^bits identifiers, 8 <= bits <= 63.
func NewRing(bits int) (*Ring, error) {
	if bits < 8 || bits > 63 {
		return nil, fmt.Errorf("chord: bits = %d, need in [8,63]", bits)
	}
	return &Ring{bits: bits, mod: 1 << uint(bits)}, nil
}

// Bits returns the identifier width.
func (r *Ring) Bits() int { return r.bits }

// Len returns the number of nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the nodes in ID order (fresh slice).
func (r *Ring) Nodes() []*Node { return append([]*Node(nil), r.nodes...) }

// Join adds a node with the given ID. Duplicate IDs are rejected (pick
// random IDs wide enough that collisions don't occur). Build must run
// before lookups.
func (r *Ring) Join(host topology.NodeID, id ID) (*Node, error) {
	if id >= r.mod {
		return nil, fmt.Errorf("chord: id %d out of ring (bits=%d)", id, r.bits)
	}
	i := sort.Search(len(r.nodes), func(k int) bool { return r.nodes[k].ID >= id })
	if i < len(r.nodes) && r.nodes[i].ID == id {
		return nil, fmt.Errorf("chord: id %d already taken", id)
	}
	n := &Node{ID: id, Host: host}
	r.nodes = append(r.nodes, nil)
	copy(r.nodes[i+1:], r.nodes[i:])
	r.nodes[i] = n
	r.built = false
	return n, nil
}

// JoinRandom joins host at a random unoccupied ID.
func (r *Ring) JoinRandom(host topology.NodeID, rng *simrand.Source) (*Node, error) {
	for attempt := 0; attempt < 64; attempt++ {
		id := ID(rng.Uint64()) & (r.mod - 1)
		n, err := r.Join(host, id)
		if err == nil {
			return n, nil
		}
	}
	return nil, errors.New("chord: could not find a free id")
}

// Build computes successor, predecessor and finger tables for every node.
func (r *Ring) Build() error {
	if len(r.nodes) == 0 {
		return errors.New("chord: empty ring")
	}
	n := len(r.nodes)
	for i, node := range r.nodes {
		node.succ = r.nodes[(i+1)%n]
		node.pred = r.nodes[(i-1+n)%n]
		node.fingers = make([]*Node, r.bits)
		for f := 0; f < r.bits; f++ {
			start := (node.ID + 1<<uint(f)) & (r.mod - 1)
			node.fingers[f] = r.Successor(start)
		}
	}
	r.built = true
	return nil
}

// Successor returns the first node whose ID is >= id, wrapping at the top
// of the ring. Nil on an empty ring.
func (r *Ring) Successor(id ID) *Node {
	if len(r.nodes) == 0 {
		return nil
	}
	i := sort.Search(len(r.nodes), func(k int) bool { return r.nodes[k].ID >= id })
	if i == len(r.nodes) {
		i = 0
	}
	return r.nodes[i]
}

// inOpenClosed reports whether x lies in the ring interval (a, b].
func inOpenClosed(x, a, b ID) bool {
	if a < b {
		return x > a && x <= b
	}
	if a > b {
		return x > a || x <= b
	}
	return true // a == b: full circle
}

// inOpen reports whether x lies in the ring interval (a, b).
func inOpen(x, a, b ID) bool {
	if a < b {
		return x > a && x < b
	}
	if a > b {
		return x > a || x < b
	}
	return x != a
}

// Lookup routes from "from" to the owner of key using finger tables,
// returning the hop path including both endpoints.
func (r *Ring) Lookup(from *Node, key ID) ([]*Node, error) {
	if !r.built {
		return nil, errors.New("chord: ring not built")
	}
	if from == nil {
		return nil, errors.New("chord: lookup from nil node")
	}
	if key >= r.mod {
		return nil, fmt.Errorf("chord: key %d out of ring", key)
	}
	cur := from
	path := []*Node{from}
	for len(path) <= len(r.nodes)+1 {
		if inOpenClosed(key, cur.pred.ID, cur.ID) {
			return path, nil // cur owns key
		}
		if inOpenClosed(key, cur.ID, cur.succ.ID) {
			path = append(path, cur.succ)
			return path, nil
		}
		next := cur.closestPrecedingFinger(key)
		if next == cur {
			next = cur.succ
		}
		cur = next
		path = append(path, cur)
	}
	return nil, errors.New("chord: lookup did not converge")
}

// closestPrecedingFinger returns the highest finger strictly between the
// node and the key, or the node itself when none qualifies.
func (n *Node) closestPrecedingFinger(key ID) *Node {
	for f := len(n.fingers) - 1; f >= 0; f-- {
		if fn := n.fingers[f]; fn != nil && inOpen(fn.ID, n.ID, key) {
			return fn
		}
	}
	return n
}

// Put stores value under key at the key's successor node.
func (r *Ring) Put(key ID, value interface{}) error {
	if key >= r.mod {
		return fmt.Errorf("chord: key %d out of ring", key)
	}
	owner := r.Successor(key)
	if owner == nil {
		return errors.New("chord: empty ring")
	}
	i := sort.Search(len(owner.items), func(k int) bool { return owner.items[k].Key >= key })
	owner.items = append(owner.items, Item{})
	copy(owner.items[i+1:], owner.items[i:])
	owner.items[i] = Item{Key: key, Value: value}
	return nil
}

// CollectCost reports the ring hops a Collect spent walking node to node.
type CollectCost struct {
	NodesVisited int
}

// Collect gathers up to max items whose keys are nearest to key in ring
// distance, walking outward from the key's successor in both directions
// (the Chord analogue of the condensed-map curve expansion). budget bounds
// how many nodes may be visited.
func (r *Ring) Collect(key ID, max, budget int) ([]Item, CollectCost, error) {
	if key >= r.mod {
		return nil, CollectCost{}, fmt.Errorf("chord: key %d out of ring", key)
	}
	if len(r.nodes) == 0 || max < 1 {
		return nil, CollectCost{}, nil
	}
	var items []Item
	cost := CollectCost{}
	fwd := r.Successor(key)
	bwd := fwd.pred
	visited := map[*Node]struct{}{}
	visit := func(n *Node) {
		if _, seen := visited[n]; seen {
			return
		}
		visited[n] = struct{}{}
		cost.NodesVisited++
		items = append(items, n.items...)
	}
	for len(items) < max && cost.NodesVisited < budget && len(visited) < len(r.nodes) {
		visit(fwd)
		if len(items) >= max || cost.NodesVisited >= budget {
			break
		}
		visit(bwd)
		fwd = fwd.succ
		bwd = bwd.pred
	}
	// Rank by ring distance to the key.
	dist := func(k ID) ID {
		d := (k - key) & (r.mod - 1)
		if alt := (key - k) & (r.mod - 1); alt < d {
			d = alt
		}
		return d
	}
	sort.Slice(items, func(a, b int) bool {
		da, db := dist(items[a].Key), dist(items[b].Key)
		if da != db {
			return da < db
		}
		return items[a].Key < items[b].Key
	})
	if len(items) > max {
		items = items[:max]
	}
	return items, cost, nil
}
