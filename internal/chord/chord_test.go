package chord

import (
	"math"
	"testing"

	"gsso/internal/simrand"
	"gsso/internal/topology"
)

func buildRing(t testing.TB, n int, seed uint64) *Ring {
	t.Helper()
	r, err := NewRing(32)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(seed)
	for i := 0; i < n; i++ {
		if _, err := r.JoinRandom(topology.NodeID(i), rng); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Build(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(7); err == nil {
		t.Fatal("bits 7 accepted")
	}
	if _, err := NewRing(64); err == nil {
		t.Fatal("bits 64 accepted")
	}
	r, err := NewRing(16)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bits() != 16 || r.Len() != 0 {
		t.Fatal("fresh ring wrong")
	}
}

func TestJoinValidation(t *testing.T) {
	r, _ := NewRing(8)
	if _, err := r.Join(1, 256); err == nil {
		t.Fatal("out-of-ring ID accepted")
	}
	if _, err := r.Join(1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Join(2, 10); err == nil {
		t.Fatal("duplicate ID accepted")
	}
}

func TestBuildEmptyRing(t *testing.T) {
	r, _ := NewRing(16)
	if err := r.Build(); err == nil {
		t.Fatal("empty ring built")
	}
}

func TestSuccessorPredecessorCycle(t *testing.T) {
	r := buildRing(t, 50, 1)
	nodes := r.Nodes()
	for i, n := range nodes {
		want := nodes[(i+1)%len(nodes)]
		if n.Successor() != want {
			t.Fatalf("node %d successor wrong", i)
		}
		if want.Predecessor() != n {
			t.Fatalf("node %d predecessor wrong", i)
		}
	}
}

func TestSuccessorOfKey(t *testing.T) {
	r, _ := NewRing(8)
	r.Join(1, 10)
	r.Join(2, 100)
	r.Join(3, 200)
	r.Build()
	cases := []struct {
		key  ID
		want ID
	}{
		{5, 10}, {10, 10}, {11, 100}, {150, 200}, {201, 10}, {255, 10},
	}
	for _, tc := range cases {
		if got := r.Successor(tc.key); got.ID != tc.want {
			t.Fatalf("Successor(%d) = %d, want %d", tc.key, got.ID, tc.want)
		}
	}
}

func TestLookupFindsOwner(t *testing.T) {
	r := buildRing(t, 100, 2)
	rng := simrand.New(3)
	nodes := r.Nodes()
	for trial := 0; trial < 200; trial++ {
		from := nodes[rng.Intn(len(nodes))]
		key := ID(rng.Uint64()) & (1<<32 - 1)
		path, err := r.Lookup(from, key)
		if err != nil {
			t.Fatal(err)
		}
		owner := path[len(path)-1]
		if want := r.Successor(key); owner != want {
			t.Fatalf("Lookup(%d) ended at %v, want %v", key, owner, want)
		}
		if path[0] != from {
			t.Fatal("path does not start at source")
		}
	}
}

func TestLookupLogarithmicHops(t *testing.T) {
	r := buildRing(t, 256, 4)
	rng := simrand.New(5)
	nodes := r.Nodes()
	total := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		from := nodes[rng.Intn(len(nodes))]
		key := ID(rng.Uint64()) & (1<<32 - 1)
		path, err := r.Lookup(from, key)
		if err != nil {
			t.Fatal(err)
		}
		total += len(path) - 1
	}
	avg := float64(total) / trials
	bound := 2 * math.Log2(256)
	t.Logf("avg hops at N=256: %.2f (log2 N = 8)", avg)
	if avg > bound {
		t.Fatalf("avg hops %.2f exceeds 2 log2 N = %.2f", avg, bound)
	}
}

func TestLookupValidation(t *testing.T) {
	r := buildRing(t, 10, 6)
	if _, err := r.Lookup(nil, 5); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := r.Lookup(r.Nodes()[0], 1<<33); err == nil {
		t.Fatal("out-of-ring key accepted")
	}
	unbuilt, _ := NewRing(16)
	unbuilt.Join(1, 5)
	n := unbuilt.Nodes()[0]
	if _, err := unbuilt.Lookup(n, 3); err == nil {
		t.Fatal("lookup on unbuilt ring accepted")
	}
}

func TestPutStoresAtSuccessor(t *testing.T) {
	r, _ := NewRing(8)
	r.Join(1, 10)
	r.Join(2, 100)
	r.Build()
	if err := r.Put(50, "v"); err != nil {
		t.Fatal(err)
	}
	n100 := r.Successor(100)
	if len(n100.Items()) != 1 || n100.Items()[0].Key != 50 {
		t.Fatalf("item not at successor: %v", n100.Items())
	}
	if err := r.Put(300, "v"); err == nil {
		t.Fatal("out-of-ring key accepted")
	}
	// Items returns a copy.
	items := n100.Items()
	items[0].Key = 99
	if n100.Items()[0].Key != 50 {
		t.Fatal("Items leaked internal slice")
	}
}

func TestPutKeepsItemsSorted(t *testing.T) {
	r, _ := NewRing(8)
	r.Join(1, 200)
	r.Build()
	for _, k := range []ID{50, 10, 30, 20, 40} {
		if err := r.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	items := r.Nodes()[0].Items()
	for i := 1; i < len(items); i++ {
		if items[i-1].Key > items[i].Key {
			t.Fatalf("items unsorted: %v", items)
		}
	}
}

func TestCollectNearestByRingDistance(t *testing.T) {
	r := buildRing(t, 64, 7)
	rng := simrand.New(8)
	// Store 200 items at random keys.
	keys := make([]ID, 200)
	for i := range keys {
		keys[i] = ID(rng.Uint64()) & (1<<32 - 1)
		if err := r.Put(keys[i], i); err != nil {
			t.Fatal(err)
		}
	}
	query := ID(rng.Uint64()) & (1<<32 - 1)
	items, cost, err := r.Collect(query, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 10 {
		t.Fatalf("collected %d items", len(items))
	}
	if cost.NodesVisited == 0 {
		t.Fatal("no nodes visited")
	}
	// Result sorted by ring distance.
	mod := ID(1) << 32
	dist := func(k ID) ID {
		d := (k - query) & (mod - 1)
		if alt := (query - k) & (mod - 1); alt < d {
			d = alt
		}
		return d
	}
	for i := 1; i < len(items); i++ {
		if dist(items[i-1].Key) > dist(items[i].Key) {
			t.Fatal("items not sorted by ring distance")
		}
	}
}

func TestCollectExhaustiveFindsGlobalNearest(t *testing.T) {
	r := buildRing(t, 32, 9)
	rng := simrand.New(10)
	keys := make([]ID, 100)
	for i := range keys {
		keys[i] = ID(rng.Uint64()) & (1<<32 - 1)
		if err := r.Put(keys[i], i); err != nil {
			t.Fatal(err)
		}
	}
	query := ID(12345678)
	items, _, err := r.Collect(query, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	mod := ID(1) << 32
	dist := func(k ID) ID {
		d := (k - query) & (mod - 1)
		if alt := (query - k) & (mod - 1); alt < d {
			d = alt
		}
		return d
	}
	bestDist := dist(keys[0])
	for _, k := range keys[1:] {
		if d := dist(k); d < bestDist {
			bestDist = d
		}
	}
	if dist(items[0].Key) != bestDist {
		t.Fatalf("Collect missed the globally nearest key: got dist %d, want %d",
			dist(items[0].Key), bestDist)
	}
}

func TestCollectBudget(t *testing.T) {
	r := buildRing(t, 64, 11)
	// No items stored: exhausts budget without gathering anything.
	items, cost, err := r.Collect(1, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 {
		t.Fatal("items from empty ring storage")
	}
	if cost.NodesVisited > 7 {
		t.Fatalf("budget exceeded: %d", cost.NodesVisited)
	}
	if _, _, err := r.Collect(1<<33, 5, 7); err == nil {
		t.Fatal("out-of-ring key accepted")
	}
}

func TestIntervalHelpers(t *testing.T) {
	// (10, 20]
	if !inOpenClosed(15, 10, 20) || !inOpenClosed(20, 10, 20) || inOpenClosed(10, 10, 20) {
		t.Fatal("inOpenClosed basic")
	}
	// Wrapping (200, 20]
	if !inOpenClosed(250, 200, 20) || !inOpenClosed(5, 200, 20) || inOpenClosed(100, 200, 20) {
		t.Fatal("inOpenClosed wrap")
	}
	// Full circle (a == b): everything is inside.
	if !inOpenClosed(123, 50, 50) {
		t.Fatal("inOpenClosed full circle")
	}
	// inOpen
	if inOpen(10, 10, 20) || inOpen(20, 10, 20) || !inOpen(15, 10, 20) {
		t.Fatal("inOpen basic")
	}
	if !inOpen(5, 200, 20) || inOpen(200, 200, 20) {
		t.Fatal("inOpen wrap")
	}
	if inOpen(50, 50, 50) || !inOpen(51, 50, 50) {
		t.Fatal("inOpen full circle")
	}
}

func BenchmarkLookup(b *testing.B) {
	r := buildRing(b, 1024, 1)
	nodes := r.Nodes()
	rng := simrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := nodes[i%len(nodes)]
		if _, err := r.Lookup(from, ID(rng.Uint64())&(1<<32-1)); err != nil {
			b.Fatal(err)
		}
	}
}
