package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"
)

// The supervisor's remote-control surface. ServeAdmin exposes the
// membership operations over HTTP so `overlayctl add/remove/
// rolling-restart -admin ADDR` can drive a cluster another overlayctl
// is supervising:
//
//	GET  /status           → {"peers": [...], "nodes": [NodeStatus...]}
//	POST /add              → {"index": N}
//	POST /remove           {"node": N} → {}
//	POST /rolling-restart  → {}
//
// PushPeers, further down, is the client for overlayd's own
// /admin/peers endpoint — the per-node knob the supervisor turns to
// swap rings on a live fleet.

// AdminState is the GET /status payload.
type AdminState struct {
	Peers []string     `json:"peers"`
	Nodes []NodeStatus `json:"nodes"`
}

// AdminHandler returns the supervisor's admin API as an http.Handler.
func (s *Supervisor) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, AdminState{Peers: s.NodeAddrs(), Nodes: s.Status()})
	})
	mux.HandleFunc("/add", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		index, err := s.Add()
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"index": index})
	})
	mux.HandleFunc("/remove", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req struct {
			Node *int `json:"node"`
		}
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil || req.Node == nil {
			http.Error(w, "body must be {\"node\": N}", http.StatusBadRequest)
			return
		}
		if err := s.Remove(*req.Node); err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{})
	})
	mux.HandleFunc("/rolling-restart", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if err := s.RollingRestart(); err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{})
	})
	return mux
}

// ServeAdmin binds the admin API on addr (host:0 picks a port) and
// serves it until the returned closer is called. The bound address is
// returned so callers can print it.
func (s *Supervisor) ServeAdmin(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("admin listen: %w", err)
	}
	srv := &http.Server{Handler: s.AdminHandler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// --- clients ---

// AdminStatus fetches a supervisor's membership and node table.
func AdminStatus(addr string, timeout time.Duration) (AdminState, error) {
	var st AdminState
	err := adminCall(addr, "/status", http.MethodGet, nil, timeout, &st)
	return st, err
}

// AdminAdd asks a supervisor to grow the cluster by one node and
// returns the new node's index.
func AdminAdd(addr string, timeout time.Duration) (int, error) {
	var out struct {
		Index int `json:"index"`
	}
	err := adminCall(addr, "/add", http.MethodPost, nil, timeout, &out)
	return out.Index, err
}

// AdminRemove asks a supervisor to drain node i out of the cluster.
func AdminRemove(addr string, node int, timeout time.Duration) error {
	body, _ := json.Marshal(map[string]int{"node": node})
	return adminCall(addr, "/remove", http.MethodPost, body, timeout, nil)
}

// AdminRollingRestart asks a supervisor to cycle every node, one at a
// time, behind its readiness barrier.
func AdminRollingRestart(addr string, timeout time.Duration) error {
	return adminCall(addr, "/rolling-restart", http.MethodPost, nil, timeout, nil)
}

func adminCall(addr, path, method string, body []byte, timeout time.Duration, out any) error {
	client := &http.Client{Timeout: timeout}
	req, err := http.NewRequest(method, "http://"+addr+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s%s: %s (%s)", addr, path, resp.Status, strings.TrimSpace(string(raw)))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// PushPeers POSTs the peer list to one overlayd's /admin/peers control
// endpoint (served on its metrics address) and returns the node's
// resulting ring epoch.
func PushPeers(metricsAddr string, peers []string, timeout time.Duration) (uint64, error) {
	body, err := json.Marshal(map[string][]string{"peers": peers})
	if err != nil {
		return 0, err
	}
	var out struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := adminCall(metricsAddr, "/admin/peers", http.MethodPost, body, timeout, &out); err != nil {
		return 0, err
	}
	return out.Epoch, nil
}
