package cluster

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestSpecDefaults pins the minimal-spec contract: {"nodes": 5} is a
// complete spec after Normalize.
func TestSpecDefaults(t *testing.T) {
	s := Spec{Nodes: 5}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if s.Landmarks != 3 || s.Replicas != 2 {
		t.Fatalf("defaults: landmarks=%d replicas=%d", s.Landmarks, s.Replicas)
	}
	if s.TTL.D() != 30*time.Second || s.JoinRetry.D() != 500*time.Millisecond {
		t.Fatalf("defaults: ttl=%v join_retry=%v", s.TTL, s.JoinRetry)
	}
	if s.Binary != "overlayd" {
		t.Fatalf("default binary = %q", s.Binary)
	}

	two := Spec{Nodes: 2}
	if err := two.Normalize(); err != nil {
		t.Fatal(err)
	}
	if two.Landmarks != 2 {
		t.Fatalf("landmarks must cap at nodes, got %d", two.Landmarks)
	}

	if err := (&Spec{Nodes: 1}).Normalize(); err == nil {
		t.Fatal("1-node spec accepted")
	}
}

// TestLoadSpecDurationsAndRoundTrip checks the human-writable JSON
// form: durations as strings, and a marshal → unmarshal round trip
// preserving them.
func TestLoadSpecDurationsAndRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	raw := `{
		"nodes": 5, "landmarks": 2, "ttl": "3s", "refresh": "750ms",
		"join_retry": 250000000, "proxied": true, "seed": 7
	}`
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.TTL.D() != 3*time.Second || spec.Refresh.D() != 750*time.Millisecond {
		t.Fatalf("string durations mis-parsed: ttl=%v refresh=%v", spec.TTL, spec.Refresh)
	}
	if spec.JoinRetry.D() != 250*time.Millisecond {
		t.Fatalf("numeric (ns) duration mis-parsed: %v", spec.JoinRetry)
	}
	if !spec.Proxied || spec.Seed != 7 || spec.Landmarks != 2 {
		t.Fatalf("fields lost: %+v", spec)
	}

	out, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if back.TTL != spec.TTL || back.Refresh != spec.Refresh {
		t.Fatalf("round trip lost durations: %+v vs %+v", back, spec)
	}

	if _, err := LoadSpec(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing spec file accepted")
	}
}

func TestReserveAddrsDistinct(t *testing.T) {
	addrs, err := ReserveAddrs(10)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, a := range addrs {
		if seen[a] {
			t.Fatalf("address %s reserved twice", a)
		}
		seen[a] = true
	}
	if len(addrs) != 10 {
		t.Fatalf("got %d addrs", len(addrs))
	}
}

// TestBackoffCappedAndJittered: delays grow from the base, never
// exceed the cap, never fall under half the deterministic delay, and a
// fixed seed replays identically.
func TestBackoffCappedAndJittered(t *testing.T) {
	mk := func() *Supervisor {
		spec := Spec{Nodes: 2, Seed: 99,
			RestartBackoffBase: Duration(100 * time.Millisecond),
			RestartBackoffMax:  Duration(time.Second)}
		if err := spec.Normalize(); err != nil {
			t.Fatal(err)
		}
		return &Supervisor{spec: spec, rng: newBackoffRNG(spec.Seed)}
	}
	a, b := mk(), mk()
	for n := 1; n <= 8; n++ {
		da, db := a.backoff(n), b.backoff(n)
		if da != db {
			t.Fatalf("seeded backoff not reproducible at n=%d: %v vs %v", n, da, db)
		}
		want := 100 * time.Millisecond << (n - 1)
		if want > time.Second {
			want = time.Second
		}
		if da < want/2 || da > want {
			t.Fatalf("backoff(%d) = %v outside [%v, %v]", n, da, want/2, want)
		}
	}
}
