package cluster

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestSpecDefaults pins the minimal-spec contract: {"nodes": 5} is a
// complete spec after Normalize.
func TestSpecDefaults(t *testing.T) {
	s := Spec{Nodes: 5}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if s.Landmarks != 3 || s.Replicas != 2 {
		t.Fatalf("defaults: landmarks=%d replicas=%d", s.Landmarks, s.Replicas)
	}
	if s.TTL.D() != 30*time.Second || s.JoinRetry.D() != 500*time.Millisecond {
		t.Fatalf("defaults: ttl=%v join_retry=%v", s.TTL, s.JoinRetry)
	}
	if s.Binary != "overlayd" {
		t.Fatalf("default binary = %q", s.Binary)
	}

	two := Spec{Nodes: 2}
	if err := two.Normalize(); err != nil {
		t.Fatal(err)
	}
	if two.Landmarks != 2 {
		t.Fatalf("landmarks must cap at nodes, got %d", two.Landmarks)
	}

	if err := (&Spec{Nodes: 1}).Normalize(); err == nil {
		t.Fatal("1-node spec accepted")
	}
}

// TestLoadSpecDurationsAndRoundTrip checks the human-writable JSON
// form: durations as strings, and a marshal → unmarshal round trip
// preserving them.
func TestLoadSpecDurationsAndRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	raw := `{
		"nodes": 5, "landmarks": 2, "ttl": "3s", "refresh": "750ms",
		"join_retry": 250000000, "proxied": true, "seed": 7
	}`
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.TTL.D() != 3*time.Second || spec.Refresh.D() != 750*time.Millisecond {
		t.Fatalf("string durations mis-parsed: ttl=%v refresh=%v", spec.TTL, spec.Refresh)
	}
	if spec.JoinRetry.D() != 250*time.Millisecond {
		t.Fatalf("numeric (ns) duration mis-parsed: %v", spec.JoinRetry)
	}
	if !spec.Proxied || spec.Seed != 7 || spec.Landmarks != 2 {
		t.Fatalf("fields lost: %+v", spec)
	}

	out, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if back.TTL != spec.TTL || back.Refresh != spec.Refresh {
		t.Fatalf("round trip lost durations: %+v vs %+v", back, spec)
	}

	if _, err := LoadSpec(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing spec file accepted")
	}
}

func TestReserveAddrsDistinct(t *testing.T) {
	addrs, err := ReserveAddrs(10)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, a := range addrs {
		if seen[a] {
			t.Fatalf("address %s reserved twice", a)
		}
		seen[a] = true
	}
	if len(addrs) != 10 {
		t.Fatalf("got %d addrs", len(addrs))
	}
}

// TestBackoffStreakResets pins the reset contract: an incarnation that
// survives the BackoffResetAfter window starts a fresh streak, so its
// next delay is drawn from the base again, while a quick crash keeps
// climbing toward the cap. The lifetime restart counter is separate
// and never resets (see monitor).
func TestBackoffStreakResets(t *testing.T) {
	spec := Spec{Nodes: 2, Seed: 4,
		RestartBackoffBase: Duration(100 * time.Millisecond),
		RestartBackoffMax:  Duration(10 * time.Second),
		BackoffResetAfter:  Duration(5 * time.Second)}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	s := &Supervisor{spec: spec, rng: newBackoffRNG(spec.Seed)}

	if got := s.nextStreak(7, 6*time.Second); got != 1 {
		t.Fatalf("healthy uptime kept the streak: nextStreak = %d, want 1", got)
	}
	if got := s.nextStreak(7, time.Second); got != 8 {
		t.Fatalf("crash loop must extend the streak: nextStreak = %d, want 8", got)
	}
	if got := s.nextStreak(0, 0); got != 1 {
		t.Fatalf("first crash: nextStreak = %d, want 1", got)
	}
	// The delay follows the streak, not any lifetime count: a reset
	// streak waits at most the base delay again.
	if d := s.backoff(s.nextStreak(7, 6*time.Second)); d > 100*time.Millisecond {
		t.Fatalf("post-reset backoff = %v, want <= base (100ms)", d)
	}
	if d := s.backoff(8); d <= 5*time.Second {
		t.Fatalf("deep-streak backoff = %v, want near the 10s cap", d)
	}
}

// TestRemoveValidation exercises the refusal paths that need no
// processes: landmarks are pinned, unknown indices are rejected, and
// the cluster never shrinks below two members.
func TestRemoveValidation(t *testing.T) {
	spec := Spec{Nodes: 3, Landmarks: 2, Binary: "overlayd-not-on-path"}
	sup, err := New(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()
	if err := sup.Remove(0); err == nil {
		t.Fatal("removed a landmark")
	}
	if err := sup.Remove(99); err == nil {
		t.Fatal("removed an unknown node")
	}
	if got := len(sup.ActiveIndices()); got != 3 {
		t.Fatalf("failed removals changed membership: %d active", got)
	}
	if err := sup.Restart(99); err == nil {
		t.Fatal("restarted an unknown node")
	}
}

// TestAdminHandlerValidation drives the supervisor admin API's error
// surface over real HTTP, again without any process: bad bodies 400,
// refused operations 422, wrong methods 405, and /status reports the
// reserved membership.
func TestAdminHandlerValidation(t *testing.T) {
	spec := Spec{Nodes: 3, Landmarks: 3, Binary: "overlayd-not-on-path"}
	sup, err := New(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()
	addr, closeAdmin, err := sup.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer closeAdmin()

	st, err := AdminStatus(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Peers) != 3 || len(st.Nodes) != 3 {
		t.Fatalf("status = %d peers, %d nodes; want 3/3", len(st.Peers), len(st.Nodes))
	}
	// All three nodes are landmarks: every removal must be refused.
	if err := AdminRemove(addr, 1, time.Second); err == nil {
		t.Fatal("admin removed a landmark")
	}
	if err := AdminRemove(addr, -1, time.Second); err == nil {
		t.Fatal("admin removed a negative index")
	}
	resp, err := http.Post("http://"+addr+"/remove", "application/json",
		strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage remove body = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get("http://" + addr + "/add")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /add = %d, want 405", resp.StatusCode)
	}
}

// TestBackoffCappedAndJittered: delays grow from the base, never
// exceed the cap, never fall under half the deterministic delay, and a
// fixed seed replays identically.
func TestBackoffCappedAndJittered(t *testing.T) {
	mk := func() *Supervisor {
		spec := Spec{Nodes: 2, Seed: 99,
			RestartBackoffBase: Duration(100 * time.Millisecond),
			RestartBackoffMax:  Duration(time.Second)}
		if err := spec.Normalize(); err != nil {
			t.Fatal(err)
		}
		return &Supervisor{spec: spec, rng: newBackoffRNG(spec.Seed)}
	}
	a, b := mk(), mk()
	for n := 1; n <= 8; n++ {
		da, db := a.backoff(n), b.backoff(n)
		if da != db {
			t.Fatalf("seeded backoff not reproducible at n=%d: %v vs %v", n, da, db)
		}
		want := 100 * time.Millisecond << (n - 1)
		if want > time.Second {
			want = time.Second
		}
		if da < want/2 || da > want {
			t.Fatalf("backoff(%d) = %v outside [%v, %v]", n, da, want/2, want)
		}
	}
}
