package cluster

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzClusterSpec hammers the spec's JSON surface — the part operators
// hand-write, including the dual-form Duration (Go duration strings or
// bare nanosecond counts). Whatever bytes arrive, decoding must never
// panic; and any spec that decodes and normalizes must round-trip
// stably: marshal → unmarshal → normalize → marshal reproduces the
// same bytes, so a spec written back to disk means what it meant.
func FuzzClusterSpec(f *testing.F) {
	f.Add([]byte(`{"nodes": 5}`))
	f.Add([]byte(`{"nodes": 5, "landmarks": 2, "ttl": "3s", "refresh": "750ms",
		"join_retry": 250000000, "proxied": true, "seed": 7}`))
	f.Add([]byte(`{"nodes": 3, "backoff_reset_after": "1m",
		"restart_backoff_base": "50ms", "extra_args": ["-trace-sample", "1"]}`))
	f.Add([]byte(`{"nodes": 2, "ttl": 1e9, "drain_timeout": "0s"}`))
	f.Add([]byte(`{"nodes": 2, "ttl": {"bad": "type"}}`))
	f.Add([]byte(`{"nodes": -1}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		var spec Spec
		if err := json.Unmarshal(raw, &spec); err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		if err := spec.Normalize(); err != nil {
			return // invalid specs are allowed to be rejected
		}
		out, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("normalized spec does not marshal: %v (%+v)", err, spec)
		}
		var back Spec
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("marshaled spec does not decode: %v\n%s", err, out)
		}
		if err := back.Normalize(); err != nil {
			t.Fatalf("round-tripped spec fails Normalize: %v\n%s", err, out)
		}
		out2, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("round trip unstable:\n first: %s\nsecond: %s", out, out2)
		}
	})
}
