package cluster

import (
	"fmt"
	"net"
)

// ReserveAddrs binds n ephemeral localhost listeners simultaneously,
// records their addresses, and closes them all. The addresses can then
// be baked into peer lists before any process exists, and a restarted
// node rebinds the same port (Go listeners set SO_REUSEADDR, so a
// lingering TIME_WAIT does not block it). Binding all n at once —
// instead of bind/close one at a time — guarantees the reserved set is
// collision-free.
func ReserveAddrs(n int) ([]string, error) {
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("reserve port %d/%d: %w", i+1, n, err)
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, nil
}
