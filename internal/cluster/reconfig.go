package cluster

import (
	"fmt"
	"path/filepath"
	"slices"
	"time"

	"gsso/internal/wire"
)

// Membership operations: Add grows the fleet by one node, Remove
// drains one out, RollingRestart cycles every node one at a time.
// All three push the resulting peer list to the live nodes over
// overlayd's /admin/peers endpoint, so the running ring swaps without
// any process restart; a node that does restart rejoins with the
// current list anyway (nodeArgs reads it at launch time), so a missed
// push only lasts until the node's next incarnation.

// Add grows the cluster by one node: reserve a fresh overlay+metrics
// address pair (and a fault proxy when the cluster is proxied), launch
// the node with the enlarged peer list, wait for it to turn live, then
// push the new membership to every incumbent and wait for the whole
// fleet — newcomer included — to report ready. Returns the new node's
// index.
func (s *Supervisor) Add() (int, error) {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	if s.isStopping() {
		return 0, fmt.Errorf("supervisor stopping")
	}
	addrs, err := ReserveAddrs(2)
	if err != nil {
		return 0, err
	}
	s.pmu.Lock()
	index := len(s.procs)
	s.pmu.Unlock()
	p := &proc{
		index:       index,
		overlayAddr: addrs[0],
		metricsAddr: addrs[1],
		dialAddr:    addrs[0],
		logPath:     filepath.Join(s.runDir, fmt.Sprintf("node-%d.log", index)),
		restart:     true,
		state:       StateStopped,
	}
	if s.spec.Proxied {
		proxy, err := wire.NewFaultProxy(p.overlayAddr, s.spec.Seed+uint64(index))
		if err != nil {
			return 0, fmt.Errorf("proxy for node %d: %w", index, err)
		}
		p.proxy = proxy
		p.dialAddr = proxy.Addr()
	}
	s.pmu.Lock()
	s.procs = append(s.procs, p)
	s.peers = append(append([]string(nil), s.peers...), p.dialAddr)
	peers := append([]string(nil), s.peers...)
	s.pmu.Unlock()
	if err := s.startProcess(p); err != nil {
		return index, fmt.Errorf("node %d: %w", index, err)
	}
	s.startMonitor(p)
	if err := s.waitProbe(p.metricsAddr, "/healthz", s.spec.BootTimeout.D()); err != nil {
		return index, fmt.Errorf("node %d never turned live: %w", index, err)
	}
	p.setState(StateRunning)
	s.logger.Info("node-added", "node", index, "addr", p.overlayAddr, "peers", len(peers))
	s.pushPeers(peers, index)
	if err := s.WaitAllReady(s.spec.BootTimeout.D()); err != nil {
		return index, err
	}
	return index, nil
}

// Remove drains node i out of the cluster. The shrunken membership is
// pushed to the victim FIRST, so it re-homes its shard (and withdraws
// its own record from ex-owners) while it can still talk to the ring;
// then the list goes to everyone else, and the victim is drained
// (auto-restart off, SIGTERM, SIGKILL after the drain budget) and
// marked removed. Landmark nodes are pinned — every node measures its
// coordinate against them, so they can be restarted but never removed
// — and the cluster refuses to shrink below two nodes.
func (s *Supervisor) Remove(i int) error {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	p, err := s.procAt(i)
	if err != nil {
		return err
	}
	if i < s.spec.Landmarks {
		return fmt.Errorf("node %d is a landmark; landmarks cannot be removed", i)
	}
	if p.isRemoved() {
		return fmt.Errorf("node %d already removed", i)
	}
	if len(s.ActiveIndices()) <= 2 {
		return fmt.Errorf("refusing to shrink below 2 nodes")
	}
	// Turn restarts off before anything else: a crash mid-removal must
	// not resurrect the victim.
	s.SetAutoRestart(i, false)
	s.pmu.Lock()
	if idx := slices.Index(s.peers, p.dialAddr); idx >= 0 {
		s.peers = slices.Delete(append([]string(nil), s.peers...), idx, idx+1)
	}
	peers := append([]string(nil), s.peers...)
	s.pmu.Unlock()
	// Victim first: hand the shard off under the new ring. Best effort —
	// a dead victim's records expire with their TTL instead.
	if _, err := PushPeers(p.metricsAddr, peers, s.spec.Timeout.D()); err != nil {
		s.logger.Warn("remove-rehome-failed", "node", i, "err", err)
	}
	s.pushPeers(peers, i)
	s.stopProc(p)
	p.mu.Lock()
	mon := p.monDone
	p.mu.Unlock()
	if mon != nil {
		<-mon
	}
	p.mu.Lock()
	p.removed = true
	p.state = StateRemoved
	p.mu.Unlock()
	s.logger.Info("node-removed", "node", i, "peers", len(peers))
	return nil
}

// Restart gracefully restarts node i: drain the current process
// (SIGTERM, SIGKILL after the drain budget), wait for its monitor to
// retire, then relaunch on the same addresses with the current peer
// list and wait for the node to turn live and ready again.
func (s *Supervisor) Restart(i int) error {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	return s.restart(i)
}

func (s *Supervisor) restart(i int) error {
	p, err := s.procAt(i)
	if err != nil {
		return err
	}
	if p.isRemoved() {
		return fmt.Errorf("node %d was removed", i)
	}
	s.SetAutoRestart(i, false)
	s.stopProc(p)
	p.mu.Lock()
	mon := p.monDone
	p.mu.Unlock()
	if mon != nil {
		<-mon
	}
	s.SetAutoRestart(i, true)
	if err := s.startProcess(p); err != nil {
		return fmt.Errorf("node %d: %w", i, err)
	}
	s.startMonitor(p)
	if err := s.waitProbe(p.metricsAddr, "/healthz", s.spec.BootTimeout.D()); err != nil {
		return fmt.Errorf("node %d never turned live after restart: %w", i, err)
	}
	p.setState(StateRunning)
	if err := s.WaitReady(i, s.spec.BootTimeout.D()); err != nil {
		return fmt.Errorf("node %d never turned ready after restart: %w", i, err)
	}
	s.logger.Info("node-restarted", "node", i)
	return nil
}

// RollingRestart restarts every active node, one at a time, gating
// each drain on the whole fleet reporting ready first — at most one
// node is ever down, so every shard keeps a serving replica
// throughout and clients never see the ring go dark.
func (s *Supervisor) RollingRestart() error {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	for _, i := range s.ActiveIndices() {
		if err := s.WaitAllReady(s.spec.BootTimeout.D()); err != nil {
			return fmt.Errorf("before restarting node %d: %w", i, err)
		}
		if err := s.restart(i); err != nil {
			return err
		}
	}
	return s.WaitAllReady(s.spec.BootTimeout.D())
}

// pushPeers pushes the membership to every active node except skip
// (-1 for none). Each node gets a few attempts; a node that still
// misses the push rejoins with the current list at its next restart,
// and its stale ring heals through soft-state TTL in the meantime, so
// failures are logged rather than fatal.
func (s *Supervisor) pushPeers(peers []string, skip int) {
	for _, p := range s.snapshot() {
		if p.index == skip || p.isRemoved() {
			continue
		}
		var err error
		for attempt := 0; attempt < 5; attempt++ {
			var epoch uint64
			if epoch, err = PushPeers(p.metricsAddr, peers, s.spec.Timeout.D()); err == nil {
				s.logger.Debug("peers-pushed", "node", p.index, "epoch", epoch)
				break
			}
			select {
			case <-s.stopping:
				return
			case <-time.After(100 * time.Millisecond):
			}
		}
		if err != nil {
			s.logger.Warn("peers-push-failed", "node", p.index, "err", err)
		}
	}
}
