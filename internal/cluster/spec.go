// Package cluster supervises a live overlayd cluster: it reserves
// localhost ports up front so peer lists can be baked before any
// process exists, launches one OS process per node from a declarative
// spec, gates bootstrap on liveness and readiness probes instead of
// sleeps, restarts crashed nodes under capped jittered backoff, and
// drains them gracefully on stop (SIGTERM → withdraw → SIGKILL
// escalation). With Proxied set, every node is fronted by a
// wire.FaultProxy and all inter-node traffic crosses it, so chaos
// harnesses (internal/e2e) can partition or degrade links on a running
// cluster without touching the processes.
package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Duration is a time.Duration that JSON-decodes from either a Go
// duration string ("500ms", "1m30s") or a bare number of nanoseconds,
// so cluster specs stay human-writable.
type Duration time.Duration

// D returns the wrapped time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

func (d Duration) String() string { return time.Duration(d).String() }

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var raw any
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	switch v := raw.(type) {
	case float64:
		*d = Duration(time.Duration(v))
		return nil
	case string:
		parsed, err := time.ParseDuration(v)
		if err != nil {
			return fmt.Errorf("duration %q: %w", v, err)
		}
		*d = Duration(parsed)
		return nil
	default:
		return fmt.Errorf("duration must be a string or nanosecond count, got %T", raw)
	}
}

// Spec declares a cluster: how many overlayd processes to run, how the
// overlay is parameterized, and how the supervisor should treat them.
// Zero values mean "use the default" (filled in by Normalize), so a
// minimal spec is just {"nodes": 5}.
type Spec struct {
	// Nodes is the cluster size; the first Landmarks of them double as
	// the landmark set every node measures against.
	Nodes     int `json:"nodes"`
	Landmarks int `json:"landmarks,omitempty"`

	// Overlay parameters passed straight to each overlayd.
	Replicas    int      `json:"replicas,omitempty"`
	TTL         Duration `json:"ttl,omitempty"`
	Refresh     Duration `json:"refresh,omitempty"` // 0 = overlayd's ttl/3 default
	Timeout     Duration `json:"timeout,omitempty"`
	BatchWindow Duration `json:"batch_window,omitempty"`
	TraceSample int      `json:"trace_sample,omitempty"`

	// Supervision knobs. JoinRetry is handed to overlayd so a node
	// restarted into a half-up cluster keeps retrying its initial
	// publish instead of exiting; DrainTimeout bounds the SIGTERM
	// withdraw before the supervisor escalates to SIGKILL.
	JoinRetry          Duration `json:"join_retry,omitempty"`
	DrainTimeout       Duration `json:"drain_timeout,omitempty"`
	RestartBackoffBase Duration `json:"restart_backoff_base,omitempty"`
	RestartBackoffMax  Duration `json:"restart_backoff_max,omitempty"`
	// BackoffResetAfter is the healthy-uptime window that earns a node
	// a clean slate: when an incarnation stays up at least this long
	// before exiting, its next restart waits only the base delay again
	// instead of the streak-inflated one. Lifetime restart counts (in
	// Status) are unaffected.
	BackoffResetAfter Duration `json:"backoff_reset_after,omitempty"`
	BootTimeout       Duration `json:"boot_timeout,omitempty"`

	// Proxied fronts every node with a wire.FaultProxy; peer and
	// landmark lists then carry the proxy addresses, so every
	// inter-node link is cuttable. Seed makes proxy behavior and
	// restart jitter reproducible.
	Proxied bool   `json:"proxied,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`

	// Binary is the overlayd executable (default: resolved from PATH);
	// RunDir receives one append-mode log per node (default: a fresh
	// temp directory). ExtraArgs are appended verbatim to every node's
	// command line.
	Binary    string   `json:"binary,omitempty"`
	RunDir    string   `json:"run_dir,omitempty"`
	ExtraArgs []string `json:"extra_args,omitempty"`
}

// LoadSpec reads and normalizes a JSON cluster spec from disk.
func LoadSpec(path string) (Spec, error) {
	var spec Spec
	raw, err := os.ReadFile(path)
	if err != nil {
		return spec, err
	}
	if err := json.Unmarshal(raw, &spec); err != nil {
		return spec, fmt.Errorf("spec %s: %w", path, err)
	}
	if err := spec.Normalize(); err != nil {
		return spec, fmt.Errorf("spec %s: %w", path, err)
	}
	return spec, nil
}

// Normalize fills defaults and validates the spec in place.
func (s *Spec) Normalize() error {
	if s.Nodes < 2 {
		return fmt.Errorf("cluster needs at least 2 nodes, got %d", s.Nodes)
	}
	if s.Landmarks <= 0 {
		s.Landmarks = 3
	}
	if s.Landmarks > s.Nodes {
		s.Landmarks = s.Nodes
	}
	if s.Replicas <= 0 {
		s.Replicas = 2
	}
	if s.TTL <= 0 {
		s.TTL = Duration(30 * time.Second)
	}
	if s.Timeout <= 0 {
		s.Timeout = Duration(2 * time.Second)
	}
	if s.TraceSample < 0 {
		s.TraceSample = 0
	}
	if s.JoinRetry <= 0 {
		s.JoinRetry = Duration(500 * time.Millisecond)
	}
	if s.DrainTimeout <= 0 {
		s.DrainTimeout = Duration(2 * time.Second)
	}
	if s.RestartBackoffBase <= 0 {
		s.RestartBackoffBase = Duration(200 * time.Millisecond)
	}
	if s.RestartBackoffMax <= 0 {
		s.RestartBackoffMax = Duration(5 * time.Second)
	}
	if s.RestartBackoffMax < s.RestartBackoffBase {
		s.RestartBackoffMax = s.RestartBackoffBase
	}
	if s.BackoffResetAfter <= 0 {
		s.BackoffResetAfter = Duration(30 * time.Second)
	}
	if s.BootTimeout <= 0 {
		s.BootTimeout = Duration(30 * time.Second)
	}
	if s.Binary == "" {
		s.Binary = "overlayd"
	}
	return nil
}
