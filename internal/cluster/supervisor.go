package cluster

import (
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"gsso/internal/wire"
)

// newBackoffRNG seeds the restart-jitter stream; a fixed spec seed
// replays the same backoff schedule.
func newBackoffRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// NodeState is the supervisor's view of one node's process.
type NodeState string

const (
	// StateStarting: the process was launched but liveness has not been
	// observed yet (initial boot or post-restart).
	StateStarting NodeState = "starting"
	// StateRunning: the process is up and its metrics listener answered
	// /healthz at least once since the last (re)start.
	StateRunning NodeState = "running"
	// StateBackoff: the process exited and the supervisor is waiting
	// out the restart backoff.
	StateBackoff NodeState = "backoff"
	// StateStopped: the process exited and will not be restarted
	// (supervisor stopping, or auto-restart disabled for the node).
	StateStopped NodeState = "stopped"
	// StateRemoved: the node was drained out of the membership by
	// Remove and will never run again; its row stays in Status so
	// indices remain stable.
	StateRemoved NodeState = "removed"
)

// NodeStatus is a point-in-time snapshot of one supervised node.
type NodeStatus struct {
	Index       int       `json:"index"`
	OverlayAddr string    `json:"overlay_addr"`
	DialAddr    string    `json:"dial_addr"`
	MetricsAddr string    `json:"metrics_addr"`
	PID         int       `json:"pid"`
	State       NodeState `json:"state"`
	Restarts    int       `json:"restarts"`
	Streak      int       `json:"streak,omitempty"`
	LogPath     string    `json:"log"`
}

// proc is one supervised overlayd process. overlayAddr is the real
// bind address; dialAddr is what peers dial — the fault proxy when the
// cluster is proxied, the bind address otherwise. Both are reserved up
// front and survive restarts, so the baked peer lists stay valid.
type proc struct {
	index       int
	overlayAddr string
	metricsAddr string
	dialAddr    string
	proxy       *wire.FaultProxy
	logPath     string

	mu        sync.Mutex
	cmd       *exec.Cmd
	done      chan struct{} // closed when the current process exits
	monDone   chan struct{} // closed when the current monitor goroutine retires
	state     NodeState
	restarts  int       // lifetime crash-restart count, reported in Status
	streak    int       // consecutive crashes without a healthy-uptime window; drives backoff
	startedAt time.Time // launch time of the current incarnation
	restart   bool      // auto-restart on unexpected exit
	removed   bool      // drained out of the membership; never runs again
}

func (p *proc) setState(st NodeState) {
	p.mu.Lock()
	p.state = st
	p.mu.Unlock()
}

func (p *proc) autoRestart() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.restart
}

func (p *proc) isRemoved() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.removed
}

// Supervisor runs and babysits the cluster described by its Spec.
// Membership is dynamic: Add and Remove grow and shrink the fleet at
// runtime, pushing the new peer list to every live node over the
// overlayd admin endpoint, and RollingRestart cycles every node one at
// a time behind a fleet-readiness barrier.
type Supervisor struct {
	spec   Spec
	logger *slog.Logger
	runDir string
	lms    []string // landmark dial addresses, fixed at boot

	// pmu guards procs and peers. procs is append-only (removed nodes
	// keep their row so indices stay stable); peers is the current
	// membership's dial addresses.
	pmu   sync.Mutex
	procs []*proc
	peers []string

	// opMu serializes membership operations (Add, Remove,
	// RollingRestart) so concurrent admin calls cannot interleave
	// half-applied peer lists.
	opMu sync.Mutex

	stopOnce sync.Once
	stopping chan struct{}
	wg       sync.WaitGroup

	rngMu sync.Mutex
	rng   *rand.Rand
}

// snapshot returns the current proc slice under the lock; the slice is
// append-only, so iterating the returned value is safe.
func (s *Supervisor) snapshot() []*proc {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	return s.procs
}

// procAt bounds-checks i and returns its proc.
func (s *Supervisor) procAt(i int) (*proc, error) {
	procs := s.snapshot()
	if i < 0 || i >= len(procs) {
		return nil, fmt.Errorf("node %d out of range [0, %d)", i, len(procs))
	}
	return procs[i], nil
}

// New validates the spec, reserves every address the cluster will ever
// bind (overlay + metrics per node), and — when the spec is proxied —
// starts one FaultProxy per node so that all inter-node links are
// cuttable. No process is started until Start.
func New(spec Spec, logger *slog.Logger) (*Supervisor, error) {
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	runDir := spec.RunDir
	if runDir == "" {
		dir, err := os.MkdirTemp("", "gsso-cluster-")
		if err != nil {
			return nil, err
		}
		runDir = dir
	} else if err := os.MkdirAll(runDir, 0o755); err != nil {
		return nil, err
	}

	addrs, err := ReserveAddrs(2 * spec.Nodes)
	if err != nil {
		return nil, err
	}
	s := &Supervisor{
		spec:     spec,
		logger:   logger,
		runDir:   runDir,
		stopping: make(chan struct{}),
		rng:      newBackoffRNG(spec.Seed),
	}
	for i := 0; i < spec.Nodes; i++ {
		p := &proc{
			index:       i,
			overlayAddr: addrs[2*i],
			metricsAddr: addrs[2*i+1],
			dialAddr:    addrs[2*i],
			logPath:     filepath.Join(runDir, fmt.Sprintf("node-%d.log", i)),
			restart:     true,
			state:       StateStopped,
		}
		if spec.Proxied {
			proxy, err := wire.NewFaultProxy(p.overlayAddr, spec.Seed+uint64(i))
			if err != nil {
				for _, q := range s.procs {
					q.proxy.Close()
				}
				return nil, fmt.Errorf("proxy for node %d: %w", i, err)
			}
			p.proxy = proxy
			p.dialAddr = proxy.Addr()
		}
		s.procs = append(s.procs, p)
		s.peers = append(s.peers, p.dialAddr)
	}
	// Clone: peers is rewritten on membership changes and must not
	// share a backing array with the fixed landmark list.
	s.lms = append([]string(nil), s.peers[:spec.Landmarks]...)
	return s, nil
}

// Start launches the cluster with a readiness-gated rolling bootstrap:
// each node must turn LIVE (its metrics listener answers /healthz)
// before the next one is launched, and once every process is up the
// whole cluster must turn READY (/readyz 200 on every node) within the
// boot timeout. Gating the roll on liveness rather than readiness is
// deliberate: a landmark node cannot finish its initial publish until
// the other landmarks exist, so waiting for full readiness one node at
// a time would deadlock — -join-retry keeps early nodes retrying while
// the rest of the cluster comes up.
//
// On any bootstrap error the caller still owns cleanup: call Stop.
func (s *Supervisor) Start() error {
	for _, p := range s.snapshot() {
		if err := s.startProcess(p); err != nil {
			return fmt.Errorf("node %d: %w", p.index, err)
		}
		s.startMonitor(p)
		if err := s.waitProbe(p.metricsAddr, "/healthz", s.spec.BootTimeout.D()); err != nil {
			return fmt.Errorf("node %d never turned live: %w", p.index, err)
		}
		p.setState(StateRunning)
		s.logger.Info("node-live", "node", p.index, "addr", p.overlayAddr)
	}
	if err := s.WaitAllReady(s.spec.BootTimeout.D()); err != nil {
		return err
	}
	s.logger.Info("cluster-ready", "nodes", len(s.snapshot()))
	return nil
}

// startProcess launches node i's overlayd, appending its output to the
// node's log file (append mode, so restarts extend one continuous log).
func (s *Supervisor) startProcess(p *proc) error {
	logf, err := os.OpenFile(p.logPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	p.mu.Lock()
	attempt := p.restarts
	p.mu.Unlock()
	fmt.Fprintf(logf, "--- supervisor: start node %d (attempt %d) %s ---\n",
		p.index, attempt+1, time.Now().UTC().Format(time.RFC3339))
	cmd := exec.Command(s.spec.Binary, s.nodeArgs(p)...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return err
	}
	logf.Close() // the child holds its own descriptor
	done := make(chan struct{})
	p.mu.Lock()
	p.cmd = cmd
	p.done = done
	p.state = StateStarting
	p.startedAt = time.Now()
	p.mu.Unlock()
	s.logger.Info("node-started", "node", p.index, "pid", cmd.Process.Pid,
		"addr", p.overlayAddr, "metrics", p.metricsAddr)
	return nil
}

// nodeArgs builds one node's command line. Every node publishes: the
// harness's invariants are about everyone's record being findable.
// The peer list is read at call time, so a node restarted after a
// membership change rejoins with the current ring, not the boot one.
func (s *Supervisor) nodeArgs(p *proc) []string {
	s.pmu.Lock()
	peers := strings.Join(s.peers, ",")
	s.pmu.Unlock()
	args := []string{
		"-listen", p.overlayAddr,
		"-metrics", p.metricsAddr,
		"-peers", peers,
		"-landmarks", strings.Join(s.lms, ","),
		"-publish",
		"-ttl", s.spec.TTL.String(),
		"-timeout", s.spec.Timeout.String(),
		"-replicas", strconv.Itoa(s.spec.Replicas),
		"-join-retry", s.spec.JoinRetry.String(),
		"-drain-timeout", s.spec.DrainTimeout.String(),
		"-trace-sample", strconv.Itoa(s.spec.TraceSample),
	}
	if s.spec.Refresh > 0 {
		args = append(args, "-refresh", s.spec.Refresh.String())
	}
	if s.spec.BatchWindow > 0 {
		args = append(args, "-batch-window", s.spec.BatchWindow.String())
	}
	return append(args, s.spec.ExtraArgs...)
}

// startMonitor spawns the crash/restart loop for p's current
// incarnation and arms monDone so drains (Remove, Restart) can wait
// for the loop to retire before relaunching the node themselves.
func (s *Supervisor) startMonitor(p *proc) {
	monDone := make(chan struct{})
	p.mu.Lock()
	p.monDone = monDone
	p.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer close(monDone)
		s.monitor(p)
	}()
}

// monitor owns one node's crash/restart loop: it waits for the current
// process to exit, and unless the supervisor is stopping (or restarts
// are disabled for the node) relaunches it after a capped, jittered
// backoff. Two counters diverge here: restarts is the node's lifetime
// crash count (reported in Status, never reset), while streak drives
// the backoff and resets once an incarnation survives the spec's
// BackoffResetAfter window — a node that crashed five times last week
// but has been healthy since should not wait out the max delay for
// today's one-off crash.
func (s *Supervisor) monitor(p *proc) {
	defer s.wg.Done()
	for {
		p.mu.Lock()
		cmd, done := p.cmd, p.done
		p.mu.Unlock()
		err := cmd.Wait()
		close(done)
		status := "exit 0"
		if err != nil {
			status = err.Error()
		}
		if s.isStopping() || !p.autoRestart() {
			p.setState(StateStopped)
			s.logger.Info("node-stopped", "node", p.index, "status", status)
			return
		}
		p.mu.Lock()
		p.restarts++
		p.streak = s.nextStreak(p.streak, time.Since(p.startedAt))
		n := p.streak
		lifetime := p.restarts
		p.state = StateBackoff
		p.mu.Unlock()
		delay := s.backoff(n)
		s.logger.Warn("node-exited", "node", p.index, "status", status,
			"restarts", lifetime, "streak", n, "restart_in", delay)
		for {
			select {
			case <-s.stopping:
				p.setState(StateStopped)
				return
			case <-time.After(delay):
			}
			if err := s.startProcess(p); err == nil {
				p.mu.Lock()
				restartDone := p.done
				p.mu.Unlock()
				go s.markLiveWhenProbed(p, restartDone)
				break
			} else {
				// Relaunch failed (binary unlinked, fd pressure, ...): keep
				// backing off rather than abandoning the node.
				p.mu.Lock()
				p.restarts++
				p.streak++
				n = p.streak
				p.mu.Unlock()
				delay = s.backoff(n)
				s.logger.Error("node-restart-failed", "node", p.index,
					"err", err, "retry_in", delay)
			}
		}
	}
}

// nextStreak advances the consecutive-crash counter that drives the
// restart backoff: an incarnation that stayed up at least the spec's
// BackoffResetAfter window earned a clean slate, so its crash counts
// as the first of a new streak rather than extending the old one.
func (s *Supervisor) nextStreak(streak int, uptime time.Duration) int {
	if uptime >= s.spec.BackoffResetAfter.D() {
		return 1
	}
	return streak + 1
}

// markLiveWhenProbed flips a restarted node back to StateRunning once
// its metrics listener answers /healthz — but only if the node is
// still on the same process incarnation (done matches) and still
// starting; a re-crash during the probe wins.
func (s *Supervisor) markLiveWhenProbed(p *proc, done chan struct{}) {
	if err := s.waitProbe(p.metricsAddr, "/healthz", s.spec.BootTimeout.D()); err != nil {
		return
	}
	p.mu.Lock()
	if p.done == done && p.state == StateStarting {
		p.state = StateRunning
	}
	p.mu.Unlock()
}

// backoff returns the nth restart delay: base·2^(n-1) capped at max,
// with jitter drawn from the seeded rng so the second half of the
// interval is randomized (d/2 + U[0, d/2)) — crashed nodes do not
// thunder back in lockstep, but a fixed seed replays the same run.
func (s *Supervisor) backoff(n int) time.Duration {
	d := s.spec.RestartBackoffBase.D()
	maxD := s.spec.RestartBackoffMax.D()
	for i := 1; i < n && d < maxD; i++ {
		d *= 2
	}
	if d > maxD {
		d = maxD
	}
	s.rngMu.Lock()
	jittered := d/2 + time.Duration(s.rng.Int64N(int64(d/2)+1))
	s.rngMu.Unlock()
	return jittered
}

func (s *Supervisor) isStopping() bool {
	select {
	case <-s.stopping:
		return true
	default:
		return false
	}
}

// Kill delivers SIGKILL to node i's current process — the chaos
// harness's crash primitive. The monitor notices the exit and, if
// auto-restart is on, relaunches the node on the same addresses.
func (s *Supervisor) Kill(i int) error {
	p, err := s.procAt(i)
	if err != nil {
		return err
	}
	p.mu.Lock()
	cmd := p.cmd
	p.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("node %d has no process", i)
	}
	return cmd.Process.Kill()
}

// Signal delivers sig to node i's current process (e.g. SIGTERM for a
// graceful drain the caller wants to observe without stopping the
// whole cluster — pair with SetAutoRestart(i, false) first).
func (s *Supervisor) Signal(i int, sig os.Signal) error {
	p, err := s.procAt(i)
	if err != nil {
		return err
	}
	p.mu.Lock()
	cmd := p.cmd
	p.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("node %d has no process", i)
	}
	return cmd.Process.Signal(sig)
}

// SetAutoRestart toggles crash-restart for node i.
func (s *Supervisor) SetAutoRestart(i int, on bool) {
	p, err := s.procAt(i)
	if err != nil {
		return
	}
	p.mu.Lock()
	p.restart = on
	p.mu.Unlock()
}

// WaitExit blocks until node i's current process exits, or the timeout
// lapses. It snapshots the done channel first, so a restart that races
// in does not extend the wait.
func (s *Supervisor) WaitExit(i int, timeout time.Duration) error {
	p, err := s.procAt(i)
	if err != nil {
		return err
	}
	p.mu.Lock()
	done := p.done
	p.mu.Unlock()
	if done == nil {
		return nil
	}
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("node %d still running after %v", i, timeout)
	}
}

// Stop shuts the cluster down gracefully and idempotently: SIGTERM to
// every process in parallel (each overlayd withdraws its soft-state
// within its -drain-timeout), escalate to SIGKILL on any node that
// outlives the drain budget plus slack, then reap the monitors and
// close the fault proxies.
func (s *Supervisor) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopping)
		procs := s.snapshot()
		var wg sync.WaitGroup
		for _, p := range procs {
			wg.Add(1)
			go func(p *proc) {
				defer wg.Done()
				s.stopProc(p)
			}(p)
		}
		wg.Wait()
		s.wg.Wait()
		for _, p := range procs {
			if p.proxy != nil {
				p.proxy.Close()
			}
		}
		s.logger.Info("cluster-stopped", "run_dir", s.runDir)
	})
}

func (s *Supervisor) stopProc(p *proc) {
	p.mu.Lock()
	cmd, done := p.cmd, p.done
	p.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return
	}
	// Signal on an already-reaped process returns ErrProcessDone — safe.
	_ = cmd.Process.Signal(syscall.SIGTERM)
	grace := s.spec.DrainTimeout.D() + 3*time.Second
	select {
	case <-done:
	case <-time.After(grace):
		s.logger.Warn("drain-timeout", "node", p.index, "grace", grace)
		_ = cmd.Process.Kill()
		<-done
	}
}

// waitProbe polls http://addr+path until it answers 200 or the timeout
// lapses, carrying the last failure in the returned error.
func (s *Supervisor) waitProbe(addr, path string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		if last = probe(addr, path, time.Second); last == nil {
			return nil
		}
		select {
		case <-s.stopping:
			return fmt.Errorf("supervisor stopping")
		case <-time.After(50 * time.Millisecond):
		}
	}
	return fmt.Errorf("%s%s: %w", addr, path, last)
}

func probe(addr, path string, timeout time.Duration) error {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s (%s)", resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}

// WaitAllReady blocks until every active node's /readyz answers 200,
// naming the stragglers (with their last not-ready reason) on timeout.
// Removed nodes are skipped: they are not members anymore.
func (s *Supervisor) WaitAllReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var pending []string
		for _, p := range s.snapshot() {
			if p.isRemoved() {
				continue
			}
			if err := probe(p.metricsAddr, "/readyz", time.Second); err != nil {
				pending = append(pending, fmt.Sprintf("node %d: %v", p.index, err))
			}
		}
		if len(pending) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster not ready after %v: %s", timeout, strings.Join(pending, "; "))
		}
		select {
		case <-s.stopping:
			return fmt.Errorf("supervisor stopping")
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// WaitReady blocks until node i's /readyz answers 200.
func (s *Supervisor) WaitReady(i int, timeout time.Duration) error {
	p, err := s.procAt(i)
	if err != nil {
		return err
	}
	return s.waitProbe(p.metricsAddr, "/readyz", timeout)
}

// Spec returns the normalized spec the supervisor runs.
func (s *Supervisor) Spec() Spec { return s.spec }

// RunDir returns the directory holding per-node logs.
func (s *Supervisor) RunDir() string { return s.runDir }

// NodeAddrs returns the dial address of every active node — the proxy
// addresses when the cluster is proxied. This is exactly the current
// membership the nodes themselves hold, so ring ownership computed
// against it matches the cluster's.
func (s *Supervisor) NodeAddrs() []string {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	return append([]string(nil), s.peers...)
}

// ActiveIndices returns the indices of nodes that are still cluster
// members, in index order. Removed nodes keep their Status rows but
// are excluded here.
func (s *Supervisor) ActiveIndices() []int {
	var out []int
	for _, p := range s.snapshot() {
		if !p.isRemoved() {
			out = append(out, p.index)
		}
	}
	return out
}

// OverlayAddr returns node i's real bind address (behind the proxy).
func (s *Supervisor) OverlayAddr(i int) string {
	p, err := s.procAt(i)
	if err != nil {
		return ""
	}
	return p.overlayAddr
}

// MetricsAddrs returns every active node's metrics address in index
// order; removed nodes are excluded, so the list always scrapes clean.
func (s *Supervisor) MetricsAddrs() []string {
	var out []string
	for _, p := range s.snapshot() {
		if !p.isRemoved() {
			out = append(out, p.metricsAddr)
		}
	}
	return out
}

// ProxyOf returns node i's fault proxy (nil when the cluster is not
// proxied). Partitioning it cuts node i off asymmetrically or fully,
// depending on the mode — every other node dials i through it.
func (s *Supervisor) ProxyOf(i int) *wire.FaultProxy {
	p, err := s.procAt(i)
	if err != nil {
		return nil
	}
	return p.proxy
}

// Status snapshots every node's supervision state, removed rows
// included (indices are stable for the cluster's lifetime).
func (s *Supervisor) Status() []NodeStatus {
	procs := s.snapshot()
	out := make([]NodeStatus, len(procs))
	for i, p := range procs {
		p.mu.Lock()
		st := NodeStatus{
			Index:       p.index,
			OverlayAddr: p.overlayAddr,
			DialAddr:    p.dialAddr,
			MetricsAddr: p.metricsAddr,
			State:       p.state,
			Restarts:    p.restarts,
			Streak:      p.streak,
			LogPath:     p.logPath,
		}
		if p.removed {
			st.State = StateRemoved
		}
		if p.cmd != nil && p.cmd.Process != nil {
			st.PID = p.cmd.Process.Pid
		}
		p.mu.Unlock()
		out[i] = st
	}
	return out
}
