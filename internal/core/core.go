// Package core assembles the paper's full system behind one API: a
// topology-aware eCAN overlay whose neighbor selection is driven by
// landmark+RTT proximity information stored as global soft-state on the
// overlay itself, with publish/subscribe maintenance.
//
// It is the integration layer the examples and the wire daemon build on;
// the individual mechanisms live in the focused packages (can, ecan,
// landmark, hilbert, softstate, pubsub, proximity, loadbal).
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"gsso/internal/can"
	"gsso/internal/ecan"
	"gsso/internal/landmark"
	"gsso/internal/netsim"
	"gsso/internal/obs"
	"gsso/internal/pubsub"
	"gsso/internal/simrand"
	"gsso/internal/softstate"
	"gsso/internal/topology"
)

// config collects the tunables; adjust via Options.
type config struct {
	seed        uint64
	topoKind    string // "tsk-large" | "tsk-small"
	manual      bool
	topoScale   float64
	overlayN    int
	landmarks   int
	probeBudget int
	condense    int
	dim         int
	ttl         netsim.Time
	confirm     int
	net         *topology.Network
	run         string
}

func defaultConfig() config {
	return config{
		seed:        1,
		topoKind:    "tsk-large",
		topoScale:   0.2,
		overlayN:    256,
		landmarks:   8,
		probeBudget: 10,
		dim:         2,
		ttl:         60_000,
		confirm:     2,
	}
}

// Option customizes New.
type Option func(*config)

// WithSeed sets the deterministic root seed.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithTopology selects "tsk-large" (default) or "tsk-small".
func WithTopology(kind string) Option { return func(c *config) { c.topoKind = kind } }

// WithManualLatencies switches from GT-ITM-style random link latencies to
// the paper's fixed per-class latencies.
func WithManualLatencies() Option { return func(c *config) { c.manual = true } }

// WithTopologyScale scales the host population (1.0 = the paper's ~10k).
func WithTopologyScale(f float64) Option { return func(c *config) { c.topoScale = f } }

// WithOverlaySize sets the number of overlay members.
func WithOverlaySize(n int) Option { return func(c *config) { c.overlayN = n } }

// WithLandmarks sets the landmark count.
func WithLandmarks(k int) Option { return func(c *config) { c.landmarks = k } }

// WithProbeBudget sets the RTT measurements spent per neighbor selection
// or nearest-neighbor query.
func WithProbeBudget(b int) Option { return func(c *config) { c.probeBudget = b } }

// WithCondenseDepth condenses region maps into 1/2^d of their region.
func WithCondenseDepth(d int) Option { return func(c *config) { c.condense = d } }

// WithSoftStateTTL overrides the soft-state entry lifetime (virtual ms).
// Experiments that tick a fast virtual clock shrink it so expiry — the
// paper's implicit failure signal — fires within their horizon.
func WithSoftStateTTL(ttl netsim.Time) Option { return func(c *config) { c.ttl = ttl } }

// WithConfirmThreshold sets how many independent suspicion signals
// (entry expiries, timed-out probes, external reports) a member must
// accumulate before the failure detector runs a confirmation probe.
func WithConfirmThreshold(n int) Option { return func(c *config) { c.confirm = n } }

// WithNetwork supplies a pre-generated physical topology instead of
// generating one from the seed; experiment harnesses pass their memoized
// shared network so a System costs no topology build.
func WithNetwork(net *topology.Network) Option { return func(c *config) { c.net = net } }

// WithRunLabel sets the env's telemetry run label (empty = "main"), so a
// System embedded in an experiment meters under that experiment's ID.
func WithRunLabel(run string) Option { return func(c *config) { c.run = run } }

// System is the assembled stack.
type System struct {
	cfg     config
	net     *topology.Network
	env     *netsim.Env
	overlay *ecan.Overlay
	space   *landmark.Space
	store   *softstate.Store
	bus     *pubsub.Bus
	rng     *simrand.Source
	members memberStore

	reg    *obs.Registry
	tracer *obs.Tracer
	tm     *telemetry
	heal   *healState
}

// telemetry holds the system's pre-resolved metric series plus the
// high-water marks used to mirror the env's monotone counters into
// registry counters.
type telemetry struct {
	hosts     *obs.Gauge
	members   *obs.Gauge
	landmarks *obs.Gauge
	probes    *obs.Counter
	messages  *obs.CounterVec
	msgSeries map[string]*obs.Counter

	routeHops     *obs.Histogram
	routeLatency  *obs.Histogram
	nearestProbes *obs.Histogram
	nearestRTT    *obs.Histogram

	lastProbes int64
	lastMsgs   map[string]int64
}

// newTelemetry registers the system's metric families on reg.
func newTelemetry(reg *obs.Registry) *telemetry {
	return &telemetry{
		hosts:     reg.Gauge("core_hosts", "Physical hosts in the topology.").With(),
		members:   reg.Gauge("core_members", "Overlay members.").With(),
		landmarks: reg.Gauge("core_landmarks", "Landmark nodes.").With(),
		probes: reg.Counter("core_probes_total",
			"RTT measurements spent (the paper's probe-budget axis).").With(),
		messages: reg.Counter("core_messages_total",
			"Overlay messages, by category (publish, lookup, notify, ...).", "category"),
		msgSeries: make(map[string]*obs.Counter),
		routeHops: reg.Histogram("core_route_hops",
			"Overlay hop count per routed lookup.",
			[]float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}).With(),
		routeLatency: reg.Histogram("core_route_latency_ms",
			"Accumulated physical latency per routed lookup, milliseconds.",
			obs.DefBuckets).With(),
		nearestProbes: reg.Histogram("core_nearest_probes",
			"RTT probes spent per nearest-member query.",
			[]float64{1, 2, 3, 5, 8, 10, 15, 20, 30}).With(),
		nearestRTT: reg.Histogram("core_nearest_rtt_ms",
			"RTT to the winner of each nearest-member query, milliseconds.",
			obs.DefBuckets).With(),
		lastMsgs: make(map[string]int64),
	}
}

// sync mirrors the env's counters and the topology's sizes into the
// registry (counters advance by the delta since the last sync, so they
// stay monotone).
func (s *System) sync() {
	tm := s.tm
	tm.hosts.Set(float64(s.net.Len()))
	tm.members.Set(float64(s.overlay.CAN().Size()))
	tm.landmarks.Set(float64(s.space.Set().Len()))
	if p := s.env.Probes(); p > tm.lastProbes {
		tm.probes.Add(float64(p - tm.lastProbes))
		tm.lastProbes = p
	}
	for k, v := range s.env.MessageTotals() {
		c := tm.msgSeries[k]
		if c == nil {
			c = tm.messages.With(k)
			tm.msgSeries[k] = c
		}
		if last := tm.lastMsgs[k]; v > last {
			c.Add(float64(v - last))
			tm.lastMsgs[k] = v
		}
	}
}

// New builds a simulated deployment: generates the topology, joins the
// overlay members, measures landmark vectors, publishes everyone's
// soft-state, and installs the global-state proximity selector.
func New(opts ...Option) (*System, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.overlayN < 2 {
		return nil, fmt.Errorf("core: overlay size %d, need >= 2", cfg.overlayN)
	}
	if cfg.probeBudget < 1 {
		return nil, fmt.Errorf("core: probe budget %d, need >= 1", cfg.probeBudget)
	}
	if cfg.confirm < 1 {
		return nil, fmt.Errorf("core: confirm threshold %d, need >= 1", cfg.confirm)
	}

	rng := simrand.New(cfg.seed)
	net := cfg.net
	if net == nil {
		model := topology.GTITMLatency()
		if cfg.manual {
			model = topology.ManualLatency()
		}
		var spec topology.Spec
		switch cfg.topoKind {
		case "tsk-large":
			spec = topology.TSKLarge(model)
		case "tsk-small":
			spec = topology.TSKSmall(model)
		default:
			return nil, fmt.Errorf("core: unknown topology %q", cfg.topoKind)
		}
		spec = spec.Scaled(cfg.topoScale)
		var err error
		net, err = topology.Generate(spec, rng.Split("topo"))
		if err != nil {
			return nil, err
		}
	}
	env := netsim.NewRun(net, cfg.run)
	overlay, err := ecan.BuildUniform(net, cfg.overlayN, cfg.dim, 0,
		ecan.RandomSelector{RNG: rng.Split("bootstrap")}, rng.Split("overlay"))
	if err != nil {
		return nil, err
	}
	set, err := landmark.Choose(net, cfg.landmarks, rng.Split("landmarks"))
	if err != nil {
		return nil, err
	}
	maxRTT := landmark.EstimateMaxRTT(net, set, net.RandomStubHosts(rng.Split("estimate"), 32))
	space, err := landmark.NewSpace(set, 3, 6, maxRTT)
	if err != nil {
		return nil, err
	}
	store, err := softstate.NewStore(overlay, space, env, softstate.Config{
		TTL:           cfg.ttl,
		CondenseDepth: cfg.condense,
		MaxReturn:     max(16, cfg.probeBudget),
		ExpandBudget:  8,
	})
	if err != nil {
		return nil, err
	}
	bus, err := pubsub.NewBus(store, env)
	if err != nil {
		return nil, err
	}
	// Instrument before the bulk publish so the live-entry gauge counts
	// the bootstrap.
	reg := obs.NewRegistry()
	store.Instrument(reg)
	bus.Instrument(reg)
	if err := store.PublishAll(nil); err != nil {
		return nil, err
	}
	sel, err := softstate.NewSelector(store, cfg.probeBudget,
		ecan.RandomSelector{RNG: rng.Split("fallback")})
	if err != nil {
		return nil, err
	}
	overlay.SetSelector(sel)
	s := &System{
		cfg: cfg, net: net, env: env, overlay: overlay,
		space: space, store: store, bus: bus, rng: rng,
		reg: reg, tracer: obs.NewTracer(), tm: newTelemetry(reg),
	}
	// Bind every bootstrap member into the arena-backed member store; later
	// joiners bind in JoinHost.
	for _, m := range overlay.CAN().Members() {
		s.members.bind(m)
	}
	s.heal = newHealState(reg)
	// The failure detector listens to map churn alongside the pub/sub bus:
	// entry expiry is §5.2's implicit failure signal.
	store.AddEventSink(s.observeStoreEvent)
	return s, nil
}

// Net returns the physical topology.
func (s *System) Net() *topology.Network { return s.net }

// Env returns the simulation environment (clock, probe meter).
func (s *System) Env() *netsim.Env { return s.env }

// Overlay returns the eCAN overlay.
func (s *System) Overlay() *ecan.Overlay { return s.overlay }

// Store returns the global soft-state store.
func (s *System) Store() *softstate.Store { return s.store }

// Bus returns the publish/subscribe bus.
func (s *System) Bus() *pubsub.Bus { return s.bus }

// Space returns the landmark space.
func (s *System) Space() *landmark.Space { return s.space }

// RNG returns a derived random stream for application use.
func (s *System) RNG(label string) *simrand.Source { return s.rng.Split("app/" + label) }

// Registry returns the system's telemetry registry. Env counters are
// mirrored in on Stats(); call Stats (or Sync) before snapshotting if
// you need them fresh.
func (s *System) Registry() *obs.Registry { return s.reg }

// Sync mirrors the env's probe and message counters into the registry
// without building a Stats view.
func (s *System) Sync() { s.sync() }

// Tracer returns the system's route tracer.
func (s *System) Tracer() *obs.Tracer { return s.tracer }

// SetTraceSink attaches fn as the trace consumer for RouteTo and
// nearest-member queries (nil detaches it). While detached, the traced
// paths pay a single atomic load.
func (s *System) SetTraceSink(fn func(obs.Trace)) { s.tracer.SetSink(fn) }

// Members returns the overlay members.
func (s *System) Members() []*can.Member { return s.overlay.CAN().Members() }

// Route describes one overlay route.
type Route struct {
	// Hops is the overlay hop count.
	Hops int
	// LatencyMs is the accumulated physical latency of the overlay path.
	LatencyMs float64
	// DirectMs is the direct shortest-path latency source to destination.
	DirectMs float64
	// Stretch is LatencyMs / DirectMs (1 for src == dst hosts).
	Stretch float64
	// Path is the member sequence, endpoints included.
	Path []*can.Member
}

// RouteTo routes from src to the member owning dst's zone and reports the
// path quality.
func (s *System) RouteTo(src, dst *can.Member) (Route, error) {
	if src == nil || dst == nil {
		return Route{}, errors.New("core: nil member")
	}
	res, err := s.overlay.Route(src, dst.ZoneCenter())
	if err != nil {
		return Route{}, err
	}
	r := Route{
		Hops:      res.Hops(),
		LatencyMs: res.Latency(s.env),
		DirectMs:  s.env.Latency(src.Host, dst.Host),
		Path:      res.Members,
	}
	if r.DirectMs > 0 {
		r.Stretch = r.LatencyMs / r.DirectMs
	} else {
		r.Stretch = 1
	}
	s.tm.routeHops.Observe(float64(r.Hops))
	s.tm.routeLatency.Observe(r.LatencyMs)
	if tr := s.tracer.Begin("route"); tr != nil {
		prev := r.Path[0]
		tr.Hop(fmt.Sprintf("host:%d", prev.Host), prev.Path().String(), 0)
		for _, m := range r.Path[1:] {
			tr.Hop(fmt.Sprintf("host:%d", m.Host), m.Path().String(),
				s.env.Latency(prev.Host, m.Host))
			prev = m
		}
		s.tracer.Emit(tr)
	}
	return r, nil
}

// Lookup returns the member owning the DHT key (a point in the unit
// cube).
func (s *System) Lookup(key can.Point) *can.Member { return s.overlay.CAN().Lookup(key) }

// NearestResult reports a nearest-member query.
type NearestResult struct {
	Member *can.Member
	RTTMs  float64
	Probes int
}

// NearestMember finds the physically closest other overlay member to m by
// consulting the soft-state maps of m's enclosing regions, smallest
// first, then RTT-probing the merged candidates (Table 1 + the hybrid
// refinement).
func (s *System) NearestMember(m *can.Member) (NearestResult, error) {
	if m == nil {
		return NearestResult{}, errors.New("core: nil member")
	}
	vec := s.store.Vector(m)
	if vec == nil {
		return NearestResult{}, errors.New("core: member has not published")
	}
	return s.nearestFromRegions(m.Host, vec, s.enclosingRegions(m), m)
}

// NearestToHost finds the overlay member closest to an arbitrary host
// (which need not be an overlay member): the host measures its landmark
// vector (metered) and consults the top-level region maps.
func (s *System) NearestToHost(host topology.NodeID) (NearestResult, error) {
	vec := landmark.Measure(s.env, host, s.space.Set())
	return s.nearestFromRegions(host, vec, s.topRegions(), nil)
}

// enclosingRegions lists m's digit-aligned enclosing regions, smallest
// (deepest) first, ending with the top-level regions.
func (s *System) enclosingRegions(m *can.Member) []can.Path {
	d := s.overlay.DigitLen()
	var out []can.Path
	for l := (m.Depth() / d) * d; l >= d; l -= d {
		out = append(out, m.Path().Prefix(l))
	}
	return append(out, s.topRegions()...)
}

// topRegions lists the 2^digit top-level regions.
func (s *System) topRegions() []can.Path {
	d := s.overlay.DigitLen()
	fanout := 1 << uint(d)
	out := make([]can.Path, 0, fanout)
	for digit := 0; digit < fanout; digit++ {
		p := can.Path{}
		for b := d - 1; b >= 0; b-- {
			bit := uint64((digit >> uint(b)) & 1)
			p = can.Path{Bits: p.Bits | bit<<(63-p.Len), Len: p.Len + 1}
		}
		out = append(out, p)
	}
	return out
}

// nearestFromRegions merges lookups over the regions, dedupes, ranks by
// landmark distance, and probes the top candidates.
func (s *System) nearestFromRegions(from topology.NodeID, vec landmark.Vector,
	regions []can.Path, exclude *can.Member) (NearestResult, error) {
	type cand struct {
		entry *softstate.Entry
		dist  float64
	}
	s.members.beginVisit()
	var cands []cand
	for _, region := range regions {
		entries, _, err := s.store.Lookup(region, vec)
		if err != nil {
			return NearestResult{}, err
		}
		for _, e := range entries {
			if e.Member == exclude || e.Host == from {
				continue
			}
			if s.members.seen(e.Member) {
				continue
			}
			cands = append(cands, cand{entry: e, dist: landmark.Distance(e.Vector, vec)})
		}
		if len(cands) >= 3*s.cfg.probeBudget {
			break
		}
	}
	tr := s.tracer.Begin("nearest")
	if len(cands) == 0 {
		err := errors.New("core: soft-state returned no candidates")
		tr.Fail(err)
		s.tracer.Emit(tr)
		return NearestResult{}, err
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].dist != cands[b].dist {
			return cands[a].dist < cands[b].dist
		}
		return cands[a].entry.Host < cands[b].entry.Host
	})
	res := NearestResult{RTTMs: math.Inf(1)}
	for i, c := range cands {
		if i >= s.cfg.probeBudget {
			break
		}
		rtt := s.env.ProbeRTT(from, c.entry.Host)
		res.Probes++
		if tr != nil {
			tr.Hop(fmt.Sprintf("host:%d", c.entry.Host), c.entry.Member.Path().String(), rtt)
		}
		if math.IsInf(rtt, 1) {
			// A timed-out candidate probe is a suspicion signal (§5.2's
			// reactive discovery path).
			s.SuspectMember(c.entry.Member)
		}
		if rtt < res.RTTMs {
			res.RTTMs = rtt
			res.Member = c.entry.Member
		}
	}
	s.tracer.Emit(tr)
	s.tm.nearestProbes.Observe(float64(res.Probes))
	if res.Member != nil {
		s.tm.nearestRTT.Observe(res.RTTMs)
	}
	return res, nil
}

// OnCloserCandidate subscribes m to its immediate enclosing region: cb
// fires whenever the soft-state learns of a node whose landmark position
// is closer to m than margin below the current best. Use
// Subscription.SetCurrentBest to calibrate after each re-selection.
func (s *System) OnCloserCandidate(m *can.Member, margin float64,
	cb func(pubsub.Notification)) (*pubsub.Subscription, error) {
	region := m.Path().Prefix(s.overlay.DigitLen())
	return s.bus.Subscribe(m, region,
		pubsub.Condition{Kind: pubsub.CloserCandidate, Margin: margin}, cb)
}

// OnOverload subscribes watcher to load alerts for the watched member:
// cb fires when watched's published load reaches threshold (fraction of
// its capacity).
func (s *System) OnOverload(watcher, watched *can.Member, threshold float64,
	cb func(pubsub.Notification)) (*pubsub.Subscription, error) {
	region := watched.Path().Prefix(s.overlay.DigitLen())
	return s.bus.Subscribe(watcher, region,
		pubsub.Condition{Kind: pubsub.LoadAbove, Threshold: threshold, Member: watched}, cb)
}

// PublishLoad publishes m's current load to all its soft-state entries.
func (s *System) PublishLoad(m *can.Member, load float64) { s.store.UpdateLoad(m, load) }

// RefreshSoftState runs one batched refresh tick over the whole overlay:
// every published member re-stamps its soft-state entries, with each
// member's per-region refreshes coalesced into a single refresh-batch
// message (mirroring the wire layer's publish batching). Returns how
// many entries were refreshed. Call it each virtual refresh interval to
// keep entries ahead of the TTL sweep without paying one message per
// region map.
func (s *System) RefreshSoftState() int { return s.store.RefreshAll() }

// Reselect drops m's cached routing entries so the next route re-runs
// proximity-neighbor selection against fresh soft-state.
func (s *System) Reselect(m *can.Member) { s.overlay.InvalidateEntries(m) }

// JoinHost adds a new overlay member on host, following the paper's
// (slightly modified) eCAN join: measure the landmark vector, use the
// soft-state to learn the physically nearest existing member (the
// rendezvous that replaces expanding-ring search), join the CAN at a
// random point — the layout stays uniform; proximity lives in the
// soft-state, not the geometry — and publish the newcomer's entry.
// It returns the new member and its discovered nearest neighbor.
func (s *System) JoinHost(host topology.NodeID) (*can.Member, NearestResult, error) {
	nearest, err := s.NearestToHost(host)
	if err != nil {
		return nil, NearestResult{}, fmt.Errorf("core: join rendezvous: %w", err)
	}
	m, err := s.overlay.CAN().JoinRandom(host, s.rng.Split("join"))
	if err != nil {
		return nil, NearestResult{}, err
	}
	s.members.bind(m)
	// Membership changed: re-snapshot regions and drop cached entries.
	s.overlay.Refresh()
	if err := s.store.PublishMeasured(m); err != nil {
		return nil, NearestResult{}, err
	}
	return m, nearest, nil
}

// DepartMember removes m: its soft-state entries are withdrawn (the
// proactive departure case of §5.2), its subscriptions are canceled (a
// departed member must stop receiving notifications — and watchers of it
// can never fire again), its zone is handed over per the CAN protocol,
// and routing state is refreshed.
func (s *System) DepartMember(m *can.Member) error {
	if m == nil {
		return errors.New("core: nil member")
	}
	s.store.Remove(m)
	s.bus.RemoveSubscriber(m)
	s.bus.DropWatching(m)
	s.forgetSuspect(m)
	if err := s.overlay.CAN().Depart(m); err != nil {
		return err
	}
	s.members.unbind(m)
	s.overlay.Refresh()
	return nil
}

// Stats is a snapshot of system-wide counters. It is a view assembled
// from the telemetry registry (see Registry for the full data,
// histograms included).
type Stats struct {
	Hosts        int
	Members      int
	Landmarks    int
	Probes       int64
	Messages     map[string]int64
	TotalEntries int
}

// Stats syncs the registry and returns the counter view.
func (s *System) Stats() Stats {
	s.sync()
	snap := s.reg.Snapshot()
	st := Stats{Messages: make(map[string]int64)}
	if v, ok := snap.Value("core_hosts"); ok {
		st.Hosts = int(v)
	}
	if v, ok := snap.Value("core_members"); ok {
		st.Members = int(v)
	}
	if v, ok := snap.Value("core_landmarks"); ok {
		st.Landmarks = int(v)
	}
	if v, ok := snap.Value("core_probes_total"); ok {
		st.Probes = int64(v)
	}
	if v, ok := snap.Value("softstate_entries_live"); ok {
		st.TotalEntries = int(v)
	}
	if f, ok := snap.Family("core_messages_total"); ok {
		for _, se := range f.Series {
			st.Messages[se.LabelValues[0]] = int64(se.Value)
		}
	}
	return st
}
