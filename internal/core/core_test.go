package core

import (
	"math"
	"testing"

	"gsso/internal/can"
	"gsso/internal/pubsub"
	"gsso/internal/softstate"
)

func newSystem(t testing.TB, opts ...Option) *System {
	t.Helper()
	base := []Option{WithSeed(1), WithTopologyScale(0.15), WithOverlaySize(96), WithLandmarks(6)}
	sys, err := New(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestRefreshSoftState: one batched tick re-stamps every live entry so
// the TTL sweep finds nothing, at a cost of one refresh-batch message
// per member rather than one publish per region map.
func TestRefreshSoftState(t *testing.T) {
	sys := newSystem(t, WithSoftStateTTL(100))
	total := sys.Store().TotalEntries()
	if total == 0 {
		t.Fatal("no soft-state to refresh")
	}
	sys.Env().Clock().Advance(90)
	if n := sys.RefreshSoftState(); n != total {
		t.Fatalf("refreshed %d of %d entries", n, total)
	}
	if got, want := sys.Env().Messages("refresh-batch"), int64(len(sys.Members())); got != want {
		t.Fatalf("refresh-batch messages = %d, want %d (one per member)", got, want)
	}
	sys.Env().Clock().Advance(90)
	if dropped := sys.Store().SweepExpired(); dropped != 0 {
		t.Fatalf("sweep dropped %d refreshed entries", dropped)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(WithOverlaySize(1)); err == nil {
		t.Fatal("overlay size 1 accepted")
	}
	if _, err := New(WithProbeBudget(0)); err == nil {
		t.Fatal("budget 0 accepted")
	}
	if _, err := New(WithTopology("nonsense")); err == nil {
		t.Fatal("bad topology accepted")
	}
}

func TestNewAssemblesEverything(t *testing.T) {
	sys := newSystem(t)
	st := sys.Stats()
	if st.Members != 96 || st.Landmarks != 6 || st.Hosts == 0 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if st.TotalEntries == 0 {
		t.Fatal("no soft-state published")
	}
	if sys.Net() == nil || sys.Env() == nil || sys.Overlay() == nil ||
		sys.Store() == nil || sys.Bus() == nil || sys.Space() == nil {
		t.Fatal("nil accessor")
	}
	if len(sys.Members()) != 96 {
		t.Fatal("Members() wrong")
	}
}

func TestDeterminism(t *testing.T) {
	a := newSystem(t)
	b := newSystem(t)
	ma := a.Members()
	mb := b.Members()
	// Same seed: same member hosts (set-wise).
	setA := map[int32]bool{}
	for _, m := range ma {
		setA[int32(m.Host)] = true
	}
	for _, m := range mb {
		if !setA[int32(m.Host)] {
			t.Fatal("different member hosts across identical systems")
		}
	}
}

func TestRouteTo(t *testing.T) {
	sys := newSystem(t)
	members := sys.Members()
	rng := sys.RNG("test")
	for i := 0; i < 50; i++ {
		src := members[rng.Intn(len(members))]
		dst := members[rng.Intn(len(members))]
		r, err := sys.RouteTo(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if r.Path[0] != src || r.Path[len(r.Path)-1] != dst {
			t.Fatal("route endpoints wrong")
		}
		if src.Host != dst.Host && r.Stretch < 1 {
			t.Fatalf("stretch %v below 1", r.Stretch)
		}
		if r.Hops != len(r.Path)-1 {
			t.Fatal("hop count inconsistent")
		}
	}
	if _, err := sys.RouteTo(nil, members[0]); err == nil {
		t.Fatal("nil src accepted")
	}
}

func TestLookup(t *testing.T) {
	sys := newSystem(t)
	p := can.Point{0.3, 0.7}
	m := sys.Lookup(p)
	if m == nil || !m.Contains(p) {
		t.Fatal("lookup broken")
	}
}

func TestNearestMember(t *testing.T) {
	sys := newSystem(t)
	members := sys.Members()
	hosts := make([]int32, 0, len(members))
	for _, m := range members {
		hosts = append(hosts, int32(m.Host))
	}
	res, err := sys.NearestMember(members[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Member == nil || res.Member == members[0] {
		t.Fatal("bad nearest member")
	}
	if res.Probes == 0 || math.IsInf(res.RTTMs, 1) {
		t.Fatal("no probing happened")
	}
	// Sanity: the result should be closer than the median member.
	q := members[0].Host
	var rtts []float64
	for _, m := range members[1:] {
		rtts = append(rtts, sys.Net().RTT(q, m.Host))
	}
	worse := 0
	for _, r := range rtts {
		if r > res.RTTMs {
			worse++
		}
	}
	if worse < len(rtts)/2 {
		t.Fatalf("nearest result is worse than median: beat only %d/%d", worse, len(rtts))
	}
	if _, err := sys.NearestMember(nil); err == nil {
		t.Fatal("nil member accepted")
	}
}

func TestNearestToHost(t *testing.T) {
	sys := newSystem(t)
	memberHosts := map[int32]bool{}
	for _, m := range sys.Members() {
		memberHosts[int32(m.Host)] = true
	}
	// Pick a stub host outside the overlay.
	var outside int32 = -1
	for _, h := range sys.Net().StubHosts() {
		if !memberHosts[int32(h)] {
			outside = int32(h)
			break
		}
	}
	if outside < 0 {
		t.Skip("no outside host")
	}
	res, err := sys.NearestToHost(sys.Net().StubHosts()[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Member == nil {
		t.Fatal("no member found")
	}
}

func TestOnCloserCandidateAndReselect(t *testing.T) {
	sys := newSystem(t)
	members := sys.Members()
	m := members[0]
	fired := 0
	sub, err := sys.OnCloserCandidate(m, 0, func(pubsub.Notification) { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	// Re-publishing a node in m's region with currentBest=+Inf fires.
	region := m.Path().Prefix(sys.Overlay().DigitLen())
	for _, other := range members[1:] {
		if other.Path().HasPrefix(region) {
			if err := sys.Store().PublishMeasured(other); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if fired == 0 {
		t.Fatal("closer-candidate subscription never fired")
	}
	sub.SetCurrentBest(0)
	sys.Reselect(m) // must not panic; next route rebuilds entries
	if _, err := sys.RouteTo(m, members[1]); err != nil {
		t.Fatal(err)
	}
}

func TestOnOverloadAndPublishLoad(t *testing.T) {
	sys := newSystem(t)
	members := sys.Members()
	watcher := members[0]
	region := watcher.Path().Prefix(sys.Overlay().DigitLen())
	var watched *can.Member
	for _, m := range members[1:] {
		if m.Path().HasPrefix(region) {
			watched = m
			break
		}
	}
	if watched == nil {
		t.Skip("no watchable member in region")
	}
	if err := sys.Store().PublishMeasured(watched, softstate.WithCapacity(8)); err != nil {
		t.Fatal(err)
	}
	fired := 0
	if _, err := sys.OnOverload(watcher, watched, 0.75, func(pubsub.Notification) { fired++ }); err != nil {
		t.Fatal(err)
	}
	sys.PublishLoad(watched, 2) // 25%
	if fired != 0 {
		t.Fatal("fired below threshold")
	}
	sys.PublishLoad(watched, 7) // 87.5%
	if fired == 0 {
		t.Fatal("did not fire above threshold")
	}
}

func TestStatsProbeCounting(t *testing.T) {
	sys := newSystem(t)
	before := sys.Stats().Probes
	if _, err := sys.NearestMember(sys.Members()[0]); err != nil {
		t.Fatal(err)
	}
	if sys.Stats().Probes <= before {
		t.Fatal("nearest query did not meter probes")
	}
}

func TestTopRegionsCoverSpace(t *testing.T) {
	sys := newSystem(t)
	regions := sys.topRegions()
	if len(regions) != 4 { // 2^dim with dim=2
		t.Fatalf("top regions = %d", len(regions))
	}
	total := 0
	for _, r := range regions {
		total += len(sys.Overlay().RegionMembers(r))
	}
	if total != len(sys.Members()) {
		t.Fatalf("top regions cover %d of %d members", total, len(sys.Members()))
	}
}
