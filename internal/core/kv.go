package core

import (
	"errors"
	"hash/fnv"

	"gsso/internal/can"
)

// The DHT face of the system: string keys hash to points in the CAN's
// Cartesian space, the point's zone owner stores the value, and reads
// route to the same owner. This is the "administration-free and
// fault-tolerant storage space that maps keys to values" the paper's
// first sentence promises — with the topology-aware routing underneath
// making each hop short.

// keyPoint hashes a key to a point in the unit cube, one independent
// hash per dimension. FNV-1a's high bits avalanche poorly on short keys,
// so a SplitMix64 finalizer spreads the digest before scaling.
func (s *System) keyPoint(key string) can.Point {
	dim := s.overlay.CAN().Dim()
	p := make(can.Point, dim)
	for d := 0; d < dim; d++ {
		h := fnv.New64a()
		h.Write([]byte{byte(d)})
		h.Write([]byte(key))
		x := h.Sum64()
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		p[d] = float64(x>>11) / (1 << 53)
	}
	return p
}

// PutResult reports where a Put landed and what the write cost.
type PutResult struct {
	Owner     *can.Member
	Hops      int
	LatencyMs float64
}

// Put stores value under key at the owner of the key's point, routing
// from the given member (any member can serve as the access point). The
// value is copied.
func (s *System) Put(from *can.Member, key string, value []byte) (PutResult, error) {
	if from == nil {
		return PutResult{}, errors.New("core: nil access member")
	}
	point := s.keyPoint(key)
	res, err := s.overlay.Route(from, point)
	if err != nil {
		return PutResult{}, err
	}
	owner := res.Members[len(res.Members)-1]
	shard := s.members.kvShard(owner, true)
	if shard == nil {
		return PutResult{}, errors.New("core: key owner is not a tracked member")
	}
	shard[key] = append([]byte(nil), value...)
	s.env.CountMessages("kv-put", 1)
	return PutResult{Owner: owner, Hops: res.Hops(), LatencyMs: res.Latency(s.env)}, nil
}

// GetResult reports a Get and its cost.
type GetResult struct {
	Value     []byte
	Found     bool
	Owner     *can.Member
	Hops      int
	LatencyMs float64
}

// Get routes from the given member to the key's owner and returns the
// stored value (copied), if any.
func (s *System) Get(from *can.Member, key string) (GetResult, error) {
	if from == nil {
		return GetResult{}, errors.New("core: nil access member")
	}
	point := s.keyPoint(key)
	res, err := s.overlay.Route(from, point)
	if err != nil {
		return GetResult{}, err
	}
	owner := res.Members[len(res.Members)-1]
	s.env.CountMessages("kv-get", 1)
	out := GetResult{Owner: owner, Hops: res.Hops(), LatencyMs: res.Latency(s.env)}
	if v, ok := s.members.kvShard(owner, false)[key]; ok {
		out.Value = append([]byte(nil), v...)
		out.Found = true
	}
	return out, nil
}

// KeysAt returns how many keys a member currently stores.
func (s *System) KeysAt(m *can.Member) int { return len(s.members.kvShard(m, false)) }
