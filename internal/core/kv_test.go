package core

import (
	"bytes"
	"fmt"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	sys := newSystem(t)
	members := sys.Members()
	put, err := sys.Put(members[0], "alpha", []byte("beta"))
	if err != nil {
		t.Fatal(err)
	}
	if put.Owner == nil {
		t.Fatal("no owner")
	}
	// Read from a different access point: same owner, same value.
	got, err := sys.Get(members[len(members)-1], "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Found || !bytes.Equal(got.Value, []byte("beta")) {
		t.Fatalf("Get = %+v", got)
	}
	if got.Owner != put.Owner {
		t.Fatal("reads and writes disagree on the owner")
	}
	if sys.KeysAt(put.Owner) != 1 {
		t.Fatalf("KeysAt = %d", sys.KeysAt(put.Owner))
	}
}

func TestGetMissing(t *testing.T) {
	sys := newSystem(t)
	got, err := sys.Get(sys.Members()[0], "nope")
	if err != nil {
		t.Fatal(err)
	}
	if got.Found || got.Value != nil {
		t.Fatalf("missing key found: %+v", got)
	}
}

func TestPutOverwrites(t *testing.T) {
	sys := newSystem(t)
	m := sys.Members()[0]
	if _, err := sys.Put(m, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Put(m, "k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := sys.Get(m, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Value) != "v2" {
		t.Fatalf("value = %q", got.Value)
	}
}

func TestPutGetValidation(t *testing.T) {
	sys := newSystem(t)
	if _, err := sys.Put(nil, "k", nil); err == nil {
		t.Fatal("nil access member accepted for Put")
	}
	if _, err := sys.Get(nil, "k"); err == nil {
		t.Fatal("nil access member accepted for Get")
	}
}

func TestValueIsCopied(t *testing.T) {
	sys := newSystem(t)
	m := sys.Members()[0]
	val := []byte("mutable")
	if _, err := sys.Put(m, "k", val); err != nil {
		t.Fatal(err)
	}
	val[0] = 'X'
	got, _ := sys.Get(m, "k")
	if string(got.Value) != "mutable" {
		t.Fatal("Put did not copy the value")
	}
	got.Value[0] = 'Y'
	again, _ := sys.Get(m, "k")
	if string(again.Value) != "mutable" {
		t.Fatal("Get did not copy the value")
	}
}

func TestKeysDistributeAcrossOwners(t *testing.T) {
	sys := newSystem(t)
	m := sys.Members()[0]
	owners := map[interface{}]int{}
	for i := 0; i < 200; i++ {
		res, err := sys.Put(m, fmt.Sprintf("key-%d", i), []byte("v"))
		if err != nil {
			t.Fatal(err)
		}
		owners[res.Owner]++
	}
	if len(owners) < 20 {
		t.Fatalf("200 keys landed on only %d owners", len(owners))
	}
	// Message accounting.
	if sys.Env().Messages("kv-put") != 200 {
		t.Fatalf("kv-put messages = %d", sys.Env().Messages("kv-put"))
	}
}

func TestPutGetCostIsTopologyAware(t *testing.T) {
	// With the soft-state selector installed, the average KV access path
	// should be cheap relative to random selection; sanity check the cost
	// fields are populated and consistent.
	sys := newSystem(t)
	m := sys.Members()[0]
	res, err := sys.Put(m, "expensive?", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Hops > 0 && res.LatencyMs <= 0 {
		t.Fatalf("hops %d but latency %v", res.Hops, res.LatencyMs)
	}
}
