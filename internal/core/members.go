package core

import (
	"gsso/internal/arena"
	"gsso/internal/can"
	"gsso/internal/netsim"
)

// memberState is everything core tracks per overlay member beyond what the
// overlay itself knows: the member's KV shard and its failure-detector
// evidence. States live in a generational arena (one member, one slot) and
// are addressed through the handle packed into can.Member.Tag, so every
// lookup is a slice index instead of a map[*Member] hash — the difference
// between O(1) pointer-chasing and O(1) arithmetic matters little at the
// paper's 10k nodes and a great deal at 10^6.
type memberState struct {
	m  *can.Member
	kv map[string][]byte // lazily allocated KV shard

	// Failure-detector evidence (selfheal.go). suspected gates membership
	// on the suspect list; count and since are only meaningful while
	// suspected.
	suspected bool
	susCount  int
	susSince  netsim.Time
}

// memberStore is the arena-backed member bookkeeping. Slots are bound at
// join (or bootstrap) and freed at depart or confirmed crash; a freed
// slot's generation bump guarantees a stale Tag can never reach another
// member's state.
type memberStore struct {
	slots arena.Arena[memberState]
	// suspects holds the handles of members with suspected set. Entries go
	// stale when a suspect is acquitted, forgotten, or unbound; iteration
	// compacts lazily, so forget/acquit stay O(1).
	suspects  []arena.Handle
	suspected int // live suspect count (gauge source)

	// Per-slot visit stamps for query-time candidate dedup: stamp[slot] ==
	// epoch marks the slot seen in the current query, and bumping epoch
	// resets every mark at once — a map[*Member]{} per query becomes one
	// flat array reused forever.
	stamp []uint32
	epoch uint32
}

// bind allocates m's slot and records the handle in m.Tag.
func (ms *memberStore) bind(m *can.Member) {
	h, st := ms.slots.Alloc()
	st.m = m
	m.Tag = uint64(h)
}

// unbind frees m's slot (KV shard and suspicion state included). Safe to
// call for an already-unbound member.
func (ms *memberStore) unbind(m *can.Member) {
	h := arena.Handle(m.Tag)
	if st := ms.slots.Get(h); st != nil && st.m == m {
		if st.suspected {
			ms.suspected--
		}
		ms.slots.Free(h)
	}
	m.Tag = uint64(arena.None)
}

// state returns m's state, or nil if m is unbound or its tag is stale.
func (ms *memberStore) state(m *can.Member) *memberState {
	if m == nil {
		return nil
	}
	st := ms.slots.Get(arena.Handle(m.Tag))
	if st == nil || st.m != m {
		return nil
	}
	return st
}

// kvShard returns m's KV shard, allocating it if create is set.
func (ms *memberStore) kvShard(m *can.Member, create bool) map[string][]byte {
	st := ms.state(m)
	if st == nil {
		return nil
	}
	if st.kv == nil && create {
		st.kv = make(map[string][]byte)
	}
	return st.kv
}

// beginVisit starts a fresh dedup pass; seen marks and tests in one step.
func (ms *memberStore) beginVisit() {
	ms.epoch++
	if int(ms.epoch) == 0 || len(ms.stamp) < ms.slots.Cap() {
		// Epoch wrapped or the arena grew: (re)clear the stamps so no slot
		// carries a mark from 2^32 queries ago.
		ms.stamp = make([]uint32, ms.slots.Cap())
		ms.epoch = 1
	}
}

// seen reports whether m was already visited this pass, marking it either
// way. Unbound members are never deduped.
func (ms *memberStore) seen(m *can.Member) bool {
	st := ms.state(m)
	if st == nil {
		return false
	}
	idx := arena.Handle(m.Tag).Index()
	if ms.stamp[idx] == ms.epoch {
		return true
	}
	ms.stamp[idx] = ms.epoch
	return false
}

// suspect records one suspicion signal, returning the state (nil if m is
// unbound) and whether this was the first signal.
func (ms *memberStore) suspect(m *can.Member, now netsim.Time) (*memberState, bool) {
	st := ms.state(m)
	if st == nil {
		return nil, false
	}
	first := !st.suspected
	if first {
		st.suspected = true
		st.susCount = 0
		st.susSince = now
		ms.suspects = append(ms.suspects, arena.Handle(m.Tag))
		ms.suspected++
	}
	st.susCount++
	return st, first
}

// clearSuspicion drops m from the suspect list (the slice entry goes stale
// and is compacted on the next iteration). Reports whether m was suspected.
func (ms *memberStore) clearSuspicion(m *can.Member) bool {
	st := ms.state(m)
	if st == nil || !st.suspected {
		return false
	}
	st.suspected = false
	st.susCount = 0
	ms.suspected--
	return true
}

// eachSuspect calls fn for every currently suspected member, compacting
// stale handles out of the suspect list as it goes. fn may clear the
// current suspect's suspicion but must not add new suspects.
func (ms *memberStore) eachSuspect(fn func(m *can.Member, st *memberState)) {
	kept := ms.suspects[:0]
	for _, h := range ms.suspects {
		st := ms.slots.Get(h)
		if st == nil || !st.suspected {
			continue
		}
		kept = append(kept, h)
		fn(st.m, st)
	}
	// Drop references past the compacted end so freed handles don't pin.
	tail := ms.suspects[len(kept):]
	for i := range tail {
		tail[i] = arena.None
	}
	ms.suspects = kept
}
