package core

import (
	"testing"

	"gsso/internal/topology"
)

func TestJoinHost(t *testing.T) {
	sys := newSystem(t)
	before := len(sys.Members())
	memberHosts := map[topology.NodeID]bool{}
	for _, m := range sys.Members() {
		memberHosts[m.Host] = true
	}
	var newcomer topology.NodeID = topology.None
	for _, h := range sys.Net().StubHosts() {
		if !memberHosts[h] {
			newcomer = h
			break
		}
	}
	if newcomer == topology.None {
		t.Skip("no spare host")
	}
	m, nearest, err := sys.JoinHost(newcomer)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Members()) != before+1 {
		t.Fatalf("member count %d, want %d", len(sys.Members()), before+1)
	}
	if m.Host != newcomer {
		t.Fatal("member on wrong host")
	}
	if nearest.Member == nil {
		t.Fatal("join did not discover a nearest neighbor")
	}
	// The newcomer published: its vector is known and it is routable.
	if sys.Store().Vector(m) == nil {
		t.Fatal("newcomer unpublished")
	}
	r, err := sys.RouteTo(sys.Members()[0], m)
	if err != nil {
		t.Fatal(err)
	}
	if r.Path[len(r.Path)-1] != m {
		t.Fatal("route to newcomer failed")
	}
	// Overlay invariants survived the join.
	if err := sys.Overlay().CAN().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDepartMember(t *testing.T) {
	sys := newSystem(t)
	members := sys.Members()
	before := len(members)
	victim := members[3]
	if err := sys.DepartMember(victim); err != nil {
		t.Fatal(err)
	}
	if len(sys.Members()) != before-1 {
		t.Fatal("member not removed")
	}
	if sys.Store().Vector(victim) != nil {
		t.Fatal("soft-state not withdrawn")
	}
	if err := sys.Overlay().CAN().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Routing still works across the survivors.
	survivors := sys.Members()
	r, err := sys.RouteTo(survivors[0], survivors[len(survivors)-1])
	if err != nil {
		t.Fatal(err)
	}
	if r.Hops < 0 {
		t.Fatal("bad route")
	}
	if err := sys.DepartMember(nil); err == nil {
		t.Fatal("nil member departed")
	}
}

func TestJoinDepartChurn(t *testing.T) {
	sys := newSystem(t)
	memberHosts := map[topology.NodeID]bool{}
	for _, m := range sys.Members() {
		memberHosts[m.Host] = true
	}
	var spares []topology.NodeID
	for _, h := range sys.Net().StubHosts() {
		if !memberHosts[h] {
			spares = append(spares, h)
		}
		if len(spares) == 8 {
			break
		}
	}
	rng := sys.RNG("churn")
	for i, h := range spares {
		if _, _, err := sys.JoinHost(h); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		members := sys.Members()
		if err := sys.DepartMember(members[rng.Intn(len(members))]); err != nil {
			t.Fatalf("depart %d: %v", i, err)
		}
	}
	if err := sys.Overlay().CAN().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// End-to-end still healthy.
	members := sys.Members()
	if _, err := sys.RouteTo(members[0], members[len(members)/2]); err != nil {
		t.Fatal(err)
	}
}
