// Self-healing membership: the failure detector and the crash-repair
// pipeline (suspicion → confirmation → takeover → dependent-state
// repair).
//
// The paper's §5.2 gives two failure signals and this file uses both:
// soft-state entry expiry is the simulated-time suspicion source (a
// member that stops refreshing eventually expires out of every region
// map, one event per map), and timed-out probes — a candidate returned
// by a map lookup that does not answer — are the reactive source. Live
// deployments feed a third through SuspectMember: the wire layer's
// circuit breaker reports a peer whose breaker opened (see
// wire.WithBreakerSink). Signals only accumulate suspicion; nothing is
// removed until a HealStep confirms the crash with a probe from a live
// CAN neighbor and repairs the overlay without the dead node's
// cooperation.
package core

import (
	"errors"
	"math"
	"sort"

	"gsso/internal/can"
	"gsso/internal/netsim"
	"gsso/internal/obs"
	"gsso/internal/softstate"
)

// healState is the failure detector's metric series. The suspicion
// evidence itself lives inline in each member's arena slot (memberState),
// so accumulating and clearing signals is slice indexing, not map churn.
type healState struct {
	metrics healMetrics
}

type healMetrics struct {
	takeovers *obs.Counter
	repairLat *obs.Histogram
	falsePos  *obs.Counter
	orphans   *obs.Counter
	suspected *obs.Gauge
}

func newHealState(reg *obs.Registry) *healState {
	return &healState{
		metrics: healMetrics{
			takeovers: reg.Counter("core_takeover_total",
				"Ungraceful zone takeovers performed by the self-healing loop.").With(),
			repairLat: reg.Histogram("core_repair_latency_ms",
				"Virtual time from first suspicion to completed takeover, milliseconds.",
				[]float64{1, 10, 100, 500, 1000, 2000, 5000, 10_000, 30_000, 100_000}).With(),
			falsePos: reg.Counter("core_suspicion_false_positive_total",
				"Suspected members later proven alive (republish or confirmation probe).").With(),
			orphans: reg.Counter("core_orphan_purged_total",
				"Orphaned soft-state entries purged during crash repair.").With(),
			suspected: reg.Gauge("core_suspected_members",
				"Members currently on the suspicion list.").With(),
		},
	}
}

// forgetSuspect drops m from the suspicion list without judging the
// suspicion (used when m departs gracefully).
func (s *System) forgetSuspect(m *can.Member) {
	if s.members.clearSuspicion(m) {
		s.heal.metrics.suspected.Set(float64(s.members.suspected))
	}
}

// acquitSuspect removes a suspect proven alive and counts the false
// positive.
func (s *System) acquitSuspect(m *can.Member) {
	if s.members.clearSuspicion(m) {
		s.heal.metrics.falsePos.Inc()
		s.heal.metrics.suspected.Set(float64(s.members.suspected))
	}
}

// observeStoreEvent is the detector's soft-state sink, installed by New
// alongside the pub/sub bus: expiry raises suspicion, a publish or
// refresh proves the member alive and acquits it.
func (s *System) observeStoreEvent(ev softstate.Event) {
	if ev.Entry == nil {
		return
	}
	switch ev.Kind {
	case softstate.EventExpired:
		s.SuspectMember(ev.Entry.Member)
	case softstate.EventPublished, softstate.EventRefreshed:
		s.acquitSuspect(ev.Entry.Member)
	}
}

// SuspectMember records one failure-suspicion signal against m. The
// internal sources are soft-state expiry and timed-out candidate probes;
// external callers report live-mode evidence — canonically a wire-layer
// circuit breaker opening for the member's address. Suspicion is
// evidence, not a verdict: repair happens only after HealStep confirms.
func (s *System) SuspectMember(m *can.Member) {
	if m == nil || !s.overlay.CAN().IsMember(m) {
		return
	}
	_, first := s.members.suspect(m, s.env.Clock().Now())
	if first {
		s.heal.metrics.suspected.Set(float64(s.members.suspected))
	}
}

// Suspects returns the current suspicion list in canonical zone-path
// order (diagnostics and tests).
func (s *System) Suspects() []*can.Member {
	out := make([]*can.Member, 0, s.members.suspected)
	s.members.eachSuspect(func(m *can.Member, _ *memberState) {
		out = append(out, m)
	})
	sortByPath(out)
	return out
}

// CrashMember simulates an ungraceful crash of m: the host goes down
// with no withdrawal, no handover, no cooperation — the member keeps its
// zone as a dead spot in the overlay. Recovery is the detector's job:
// suspicion accumulates from expiring entries and timed-out probes, and
// a later HealStep (or ConvergeRepairs) confirms the crash, takes the
// zone over, and repairs dependent state.
func (s *System) CrashMember(m *can.Member) error {
	if m == nil {
		return errors.New("core: nil member")
	}
	if !s.overlay.CAN().IsMember(m) {
		return errors.New("core: crashing a non-member")
	}
	s.env.SetDown(m.Host, true)
	return nil
}

// effectiveThreshold adapts the configured confirmation threshold to how
// many signals a member can actually generate: a member enclosed by r
// digit-aligned regions produces at most r expiry events per sweep, so
// shallow members confirm on fewer signals (never fewer than one).
func (s *System) effectiveThreshold(m *can.Member) int {
	th := s.cfg.confirm
	if r := m.Depth() / s.overlay.DigitLen(); r < th {
		th = r
	}
	if th < 1 {
		th = 1
	}
	return th
}

// confirmDown verifies a ripe suspicion with one metered probe from m's
// first live CAN neighbor (canonical zone-path order keeps the probe
// sequence deterministic). With no live neighbor to vouch either way —
// the whole neighborhood crashed — the suspicion stands confirmed, so
// cascading crashes still repair.
func (s *System) confirmDown(m *can.Member) bool {
	nbs := m.Neighbors()
	sortByPath(nbs)
	for _, nb := range nbs {
		if s.env.Crashed(nb.Host) {
			continue
		}
		return math.IsInf(s.env.ProbeRTT(nb.Host, m.Host), 1)
	}
	return true
}

// HealReport tallies one HealStep (or an accumulated ConvergeRepairs).
type HealReport struct {
	// Confirmed is the number of suspects whose crash was confirmed.
	Confirmed int
	// FalsePositives is the number of suspects proven alive by the
	// confirmation probe.
	FalsePositives int
	// Takeovers is the number of zones recovered.
	Takeovers int
	// Relocated counts members whose zone changed during takeovers.
	Relocated int
	// PurgedEntries counts orphaned soft-state entries removed.
	PurgedEntries int
	// DroppedSubs counts subscriptions garbage-collected (held by or
	// watching a crashed member).
	DroppedSubs int
	// RearmedSubs counts CloserCandidate subscriptions re-armed so the
	// next publish triggers demand-driven re-selection.
	RearmedSubs int
}

func (r *HealReport) add(o HealReport) {
	r.Confirmed += o.Confirmed
	r.FalsePositives += o.FalsePositives
	r.Takeovers += o.Takeovers
	r.Relocated += o.Relocated
	r.PurgedEntries += o.PurgedEntries
	r.DroppedSubs += o.DroppedSubs
	r.RearmedSubs += o.RearmedSubs
}

// HealStep runs one round of the repair loop: every suspect whose signal
// count reached its confirmation threshold is probed, confirmed crashes
// are repaired (takeover + soft-state purge + subscription GC + routing
// reindex + watcher re-arm), and survivors are acquitted. Suspects below
// threshold are left to accumulate more evidence. Deterministic given a
// deterministic signal history.
func (s *System) HealStep() HealReport {
	var rep HealReport
	var ripe []*can.Member
	s.members.eachSuspect(func(m *can.Member, st *memberState) {
		if !s.overlay.CAN().IsMember(m) {
			s.members.clearSuspicion(m)
			return
		}
		if st.susCount >= s.effectiveThreshold(m) {
			ripe = append(ripe, m)
		}
	})
	sortByPath(ripe)
	for _, m := range ripe {
		st := s.members.state(m)
		if st == nil || !st.suspected || !s.overlay.CAN().IsMember(m) {
			continue
		}
		if !s.confirmDown(m) {
			rep.FalsePositives++
			s.acquitSuspect(m)
			continue
		}
		rep.Confirmed++
		since := st.susSince
		s.members.clearSuspicion(m)
		s.repairMember(m, since, &rep)
	}
	s.heal.metrics.suspected.Set(float64(s.members.suspected))
	return rep
}

// ConvergeRepairs runs HealSteps until a step finds nothing to do, or
// maxRounds is exhausted. Cascading crashes converge here: a takeover
// forced to hand a zone to a crashed successor leaves that successor on
// the suspicion list, and a later round finishes the job. Returns the
// accumulated report and the number of rounds executed.
func (s *System) ConvergeRepairs(maxRounds int) (HealReport, int) {
	var total HealReport
	rounds := 0
	for rounds < maxRounds {
		rep := s.HealStep()
		rounds++
		total.add(rep)
		if rep.Confirmed == 0 && rep.FalsePositives == 0 {
			break
		}
	}
	return total, rounds
}

// repairMember recovers from m's confirmed crash: ungraceful zone
// takeover, orphaned-entry purge, subscription garbage collection,
// surgical routing reindex, and demand-driven watcher re-arm. The
// republish of relocated members both restores their map entries under
// their new paths and fires the re-armed CloserCandidate watchers — the
// paper's mechanism 3 performing the maintenance, not a timer.
func (s *System) repairMember(m *can.Member, since netsim.Time, rep *HealReport) {
	// Capture the dead member's enclosing regions before the takeover
	// rewrites the split tree.
	d := s.overlay.DigitLen()
	deadPath := m.Path()
	var regions []can.Path
	for l := d; l <= deadPath.Len; l += d {
		regions = append(regions, deadPath.Prefix(l))
	}
	hand, err := s.overlay.CAN().TakeoverAvoiding(m, func(x *can.Member) bool {
		return s.env.Crashed(x.Host)
	})
	if err != nil {
		return
	}
	h := s.heal
	h.metrics.takeovers.Inc()
	h.metrics.repairLat.Observe(float64(s.env.Clock().Now() - since))
	rep.Takeovers++
	rep.Relocated += len(hand.Relocated)

	purged := s.store.Purge(m)
	h.metrics.orphans.Add(float64(purged))
	rep.PurgedEntries += purged
	rep.DroppedSubs += s.bus.RemoveSubscriber(m) + s.bus.DropWatching(m)
	// The member is out of the overlay for good: release its arena slot
	// (KV shard included) so a stale Tag can never reach recycled state.
	s.members.unbind(m)

	// Routing: re-snapshot the region index and invalidate exactly the
	// cached entries pointing at the dead member or a relocated one.
	invalid := map[*can.Member]struct{}{m: {}}
	for _, r := range hand.Relocated {
		invalid[r] = struct{}{}
	}
	s.overlay.Reindex(func(x *can.Member) bool {
		_, ok := invalid[x]
		return ok
	})

	// Re-arm watchers of every region that lost the member, then let the
	// relocated members republish under their new paths; those publishes
	// are what fire the re-armed conditions.
	for _, region := range regions {
		rep.RearmedSubs += s.bus.RearmRegion(region)
	}
	for _, r := range hand.Relocated {
		if s.env.Crashed(r.Host) {
			continue // itself awaiting repair; a later round handles it
		}
		// Relocation changes the member's zone, not its host, so its
		// landmark vector is still valid — republish it rather than
		// re-measuring, which would probe through landmarks that may
		// themselves be down mid-outage and poison the vector.
		vec := s.store.Vector(r)
		s.store.Remove(r)
		if vec != nil {
			if err := s.store.Publish(r, vec); err == nil {
				continue
			}
		}
		if err := s.store.PublishMeasured(r); err != nil {
			continue // landmark space rejected the vector; entry heals on next refresh
		}
	}
}

// sortByPath orders members canonically by zone path (the same order
// Overlay.Members uses).
func sortByPath(ms []*can.Member) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i].Path(), ms[j].Path()
		if a.Bits != b.Bits {
			return a.Bits < b.Bits
		}
		return a.Len < b.Len
	})
}
