package core

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"gsso/internal/can"
	"gsso/internal/obs"
	"gsso/internal/pubsub"
)

// healSystem builds a system with a short TTL so expiry-driven suspicion
// fires within a couple of sweep intervals.
func healSystem(t testing.TB) *System {
	t.Helper()
	return newSystem(t, WithSoftStateTTL(100), WithConfirmThreshold(2))
}

// refreshLive republishes every live member so the next sweep expires
// only the entries of crashed hosts.
func refreshLive(t testing.TB, sys *System) {
	t.Helper()
	for _, m := range sys.Members() {
		if sys.Env().Crashed(m.Host) {
			continue
		}
		if err := sys.Store().PublishMeasured(m); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrashSuspectRepair(t *testing.T) {
	sys := healSystem(t)
	victim := sys.Members()[7]
	if err := sys.CrashMember(victim); err != nil {
		t.Fatal(err)
	}
	if !sys.Overlay().CAN().IsMember(victim) {
		t.Fatal("crash must not remove the member; that is the detector's job")
	}

	// Let the victim's entries age out while the rest of the overlay
	// keeps refreshing: the sweep expires only the dead member's state.
	sys.Env().Clock().Advance(101)
	refreshLive(t, sys)
	if sys.Store().SweepExpired() == 0 {
		t.Fatal("nothing expired")
	}
	suspects := sys.Suspects()
	if len(suspects) != 1 || suspects[0] != victim {
		t.Fatalf("suspects = %v, want exactly the crashed member", suspects)
	}

	rep, rounds := sys.ConvergeRepairs(8)
	if rep.Confirmed != 1 || rep.Takeovers != 1 {
		t.Fatalf("report = %+v, want one confirmed takeover", rep)
	}
	if rounds < 2 {
		t.Fatalf("rounds = %d; convergence needs a final empty round", rounds)
	}
	if sys.Overlay().CAN().IsMember(victim) {
		t.Fatal("victim still holds a zone after repair")
	}
	if err := sys.Overlay().CAN().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if sys.Store().Vector(victim) != nil {
		t.Fatal("victim's vector survived the purge")
	}
	if len(sys.Suspects()) != 0 {
		t.Fatalf("suspicion list not empty: %v", sys.Suspects())
	}

	// The repaired overlay still answers queries.
	ms := sys.Members()
	if _, err := sys.RouteTo(ms[0], ms[len(ms)-1]); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NearestMember(ms[3]); err != nil {
		t.Fatal(err)
	}
}

func TestCascadingCrashesConverge(t *testing.T) {
	sys := healSystem(t)
	rng := sys.RNG("crash")
	members := sys.Members()
	crashed := map[*can.Member]bool{}
	for _, i := range rng.Sample(len(members), len(members)/4) {
		crashed[members[i]] = true
		if err := sys.CrashMember(members[i]); err != nil {
			t.Fatal(err)
		}
	}

	// A few sweep cycles: repairs may hand zones to other crashed
	// members, whose entries then expire and confirm in later rounds.
	for tick := 0; tick < 4; tick++ {
		sys.Env().Clock().Advance(101)
		refreshLive(t, sys)
		sys.Store().SweepExpired()
		sys.ConvergeRepairs(8)
	}
	for m := range crashed {
		if sys.Overlay().CAN().IsMember(m) {
			t.Fatal("crashed member still holds a zone after convergence")
		}
	}
	if err := sys.Overlay().CAN().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got, want := len(sys.Members()), len(members)-len(crashed); got != want {
		t.Fatalf("survivor count = %d, want %d", got, want)
	}
	st := sys.Stats()
	if st.Members != len(sys.Members()) {
		t.Fatalf("stats gauge %d disagrees with membership %d", st.Members, len(sys.Members()))
	}
}

func TestFalsePositiveAcquittal(t *testing.T) {
	sys := healSystem(t)
	live := sys.Members()[5]
	// Pile on signals well past any threshold; the confirmation probe
	// must prove the member alive and acquit it.
	for i := 0; i < 10; i++ {
		sys.SuspectMember(live)
	}
	if len(sys.Suspects()) != 1 {
		t.Fatalf("suspects = %v", sys.Suspects())
	}
	rep := sys.HealStep()
	if rep.FalsePositives != 1 || rep.Confirmed != 0 || rep.Takeovers != 0 {
		t.Fatalf("report = %+v, want one acquittal and no repair", rep)
	}
	if !sys.Overlay().CAN().IsMember(live) {
		t.Fatal("live member was removed")
	}
	if v, ok := sys.Registry().Snapshot().Value("core_suspicion_false_positive_total"); !ok || v != 1 {
		t.Fatalf("false-positive counter = %v", v)
	}

	// Suspicion of non-members and nil is ignored outright.
	sys.SuspectMember(nil)
	sys.SuspectMember(&can.Member{Host: 99999})
	if len(sys.Suspects()) != 0 {
		t.Fatalf("bogus suspicions recorded: %v", sys.Suspects())
	}
}

// TestPublishAcquitsSuspect pins the refresh path of the detector: a
// suspected member that publishes again is proven alive without a probe.
func TestPublishAcquitsSuspect(t *testing.T) {
	sys := healSystem(t)
	m := sys.Members()[2]
	sys.SuspectMember(m)
	if len(sys.Suspects()) != 1 {
		t.Fatal("suspicion not recorded")
	}
	if err := sys.Store().PublishMeasured(m); err != nil {
		t.Fatal(err)
	}
	if len(sys.Suspects()) != 0 {
		t.Fatal("republish did not acquit the suspect")
	}
	if v, ok := sys.Registry().Snapshot().Value("core_suspicion_false_positive_total"); !ok || v != 1 {
		t.Fatalf("false-positive counter = %v", v)
	}
}

// TestDepartDropsSubscriptions is the leak regression: a graceful
// departure must cancel the member's subscriptions and any watchers
// aimed at it, and clear its suspicion without a false-positive count.
func TestDepartDropsSubscriptions(t *testing.T) {
	sys := newSystem(t)
	members := sys.Members()
	leaver := members[4]
	region := leaver.Path().Prefix(sys.Overlay().DigitLen())
	if err := sys.Store().PublishMeasured(leaver); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.OnCloserCandidate(leaver, 0, func(pubsub.Notification) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.OnOverload(members[5], leaver, 0.9, func(pubsub.Notification) {}); err != nil {
		t.Fatal(err)
	}
	if sys.Bus().SubscriptionCount(region) != 2 {
		t.Fatalf("expected both subscriptions on %v", region)
	}
	sys.SuspectMember(leaver)

	if err := sys.DepartMember(leaver); err != nil {
		t.Fatal(err)
	}
	if n := sys.Bus().SubscriptionCount(region); n != 0 {
		t.Fatalf("%d subscriptions leaked past departure", n)
	}
	if len(sys.Suspects()) != 0 {
		t.Fatal("departed member still suspected")
	}
	if v, _ := sys.Registry().Snapshot().Value("core_suspicion_false_positive_total"); v != 0 {
		t.Fatalf("graceful departure counted as false positive (%v)", v)
	}
	if err := sys.Overlay().CAN().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHealMetricsExposed drives one full crash-repair cycle and checks
// every new metric family is present in the registry snapshot, the
// Prometheus text exposition, and the JSON exposition.
func TestHealMetricsExposed(t *testing.T) {
	sys := healSystem(t)
	victim := sys.Members()[9]
	if err := sys.CrashMember(victim); err != nil {
		t.Fatal(err)
	}
	sys.Env().Clock().Advance(101)
	refreshLive(t, sys)
	sys.Store().SweepExpired()
	// A second crash reported by probes (the live-mode signal path): its
	// entries have not expired yet, so the repair purges orphans.
	second := sys.Members()[3]
	if err := sys.CrashMember(second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		sys.SuspectMember(second)
	}
	// A live suspect with enough signals to go ripe → false positive.
	for i := 0; i < 3; i++ {
		sys.SuspectMember(sys.Members()[1])
	}
	if _, rounds := sys.ConvergeRepairs(8); rounds == 0 {
		t.Fatal("no repair rounds ran")
	}

	snap := sys.Registry().Snapshot()
	wantPositive := []string{
		"core_takeover_total",
		"core_suspicion_false_positive_total",
		"core_orphan_purged_total",
		"softstate_sweep_expired_total",
	}
	for _, name := range wantPositive {
		if v, ok := snap.Value(name); !ok || v == 0 {
			t.Fatalf("%s = %v, want > 0", name, v)
		}
	}
	if v, ok := snap.Value("core_suspected_members"); !ok || v != 0 {
		t.Fatalf("core_suspected_members = %v after convergence", v)
	}
	f, ok := snap.Family("core_repair_latency_ms")
	if !ok || len(f.Series) == 0 || f.Series[0].Hist == nil || f.Series[0].Hist.Count == 0 {
		t.Fatal("repair latency histogram missing or empty")
	}

	// Text exposition.
	srv := httptest.NewServer(obs.Handler(sys.Registry()))
	defer srv.Close()
	body := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	text := body("/metrics")
	for _, name := range append(wantPositive, "core_suspected_members", "core_repair_latency_ms") {
		if !strings.Contains(text, name) {
			t.Fatalf("/metrics missing %s", name)
		}
	}
	var js struct {
		Families []struct {
			Name string `json:"name"`
		} `json:"families"`
	}
	if err := json.Unmarshal([]byte(body("/metrics.json")), &js); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, f := range js.Families {
		seen[f.Name] = true
	}
	for _, name := range append(wantPositive, "core_repair_latency_ms") {
		if !seen[name] {
			t.Fatalf("/metrics.json missing %s", name)
		}
	}
}

// TestWholeNeighborhoodDead pins confirmDown's fallback: when every CAN
// neighbor of a suspect is itself crashed, the suspicion stands
// confirmed so cascading failures still repair.
func TestWholeNeighborhoodDead(t *testing.T) {
	sys := healSystem(t)
	victim := sys.Members()[0]
	if err := sys.CrashMember(victim); err != nil {
		t.Fatal(err)
	}
	for _, nb := range victim.Neighbors() {
		if !sys.Env().Crashed(nb.Host) {
			if err := sys.CrashMember(nb); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 3; i++ {
		sys.SuspectMember(victim)
	}
	rep := sys.HealStep()
	if rep.Confirmed != 1 || rep.Takeovers != 1 {
		t.Fatalf("report = %+v, want the dead-neighborhood suspect confirmed", rep)
	}
	// The probe-driven path repairs before the entries expire, so the
	// purge finds the dead member's orphaned soft-state.
	if rep.PurgedEntries == 0 {
		t.Fatal("no orphaned entries purged")
	}
	if sys.Overlay().CAN().IsMember(victim) {
		t.Fatal("victim survived")
	}
	if err := sys.Overlay().CAN().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
