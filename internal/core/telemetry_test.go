package core

import (
	"testing"

	"gsso/internal/obs"
)

// TestStatsMessageTotals checks that the Stats view rebuilt on the
// registry agrees with the env's authoritative message meters.
func TestStatsMessageTotals(t *testing.T) {
	sys := newSystem(t)
	members := sys.Members()
	if _, err := sys.NearestMember(members[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RouteTo(members[0], members[1]); err != nil {
		t.Fatal(err)
	}

	st := sys.Stats()
	env := sys.Env().MessageTotals()
	if len(st.Messages) == 0 {
		t.Fatal("no message categories in Stats")
	}
	for k, v := range env {
		if st.Messages[k] != v {
			t.Fatalf("Stats.Messages[%q] = %d, env says %d", k, st.Messages[k], v)
		}
	}
	if st.Messages["publish"] == 0 || st.Messages["lookup"] == 0 {
		t.Fatalf("expected publish and lookup traffic: %v", st.Messages)
	}
	if st.Probes != sys.Env().Probes() {
		t.Fatalf("Stats.Probes = %d, env says %d", st.Probes, sys.Env().Probes())
	}
	if st.TotalEntries != sys.Store().TotalEntries() {
		t.Fatalf("Stats.TotalEntries = %d, store says %d", st.TotalEntries, sys.Store().TotalEntries())
	}

	// Stats() twice must not double-count (the registry sync is
	// delta-based).
	st2 := sys.Stats()
	if st2.Messages["publish"] != st.Messages["publish"] || st2.Probes != st.Probes {
		t.Fatalf("second Stats drifted: %+v vs %+v", st2, st)
	}
}

func TestRegistryHistogramsPopulate(t *testing.T) {
	sys := newSystem(t)
	members := sys.Members()
	if _, err := sys.RouteTo(members[0], members[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NearestMember(members[2]); err != nil {
		t.Fatal(err)
	}
	snap := sys.Registry().Snapshot()
	for _, name := range []string{"core_route_hops", "core_route_latency_ms",
		"core_nearest_probes", "core_nearest_rtt_ms"} {
		f, ok := snap.Family(name)
		if !ok || len(f.Series) == 0 || f.Series[0].Hist == nil || f.Series[0].Hist.Count == 0 {
			t.Fatalf("histogram %s missing or empty", name)
		}
	}
	if v, ok := snap.Value("pubsub_subscriptions"); !ok {
		t.Fatalf("pubsub gauge missing (%v)", v)
	}
	if v, ok := snap.Value("softstate_events_total", "published"); !ok || v == 0 {
		t.Fatal("softstate publish events not counted")
	}
}

func TestRouteTracing(t *testing.T) {
	sys := newSystem(t)
	members := sys.Members()

	var traces []obs.Trace
	sys.SetTraceSink(func(tr obs.Trace) { traces = append(traces, tr) })
	if !sys.Tracer().Enabled() {
		t.Fatal("tracer not enabled after SetTraceSink")
	}

	route, err := sys.RouteTo(members[0], members[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NearestMember(members[0]); err != nil {
		t.Fatal(err)
	}

	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	rt := traces[0]
	if rt.Op != "route" {
		t.Fatalf("trace op = %q", rt.Op)
	}
	// One hop per path member (the first carries 0 RTT).
	if len(rt.Hops) != len(route.Path) {
		t.Fatalf("route trace has %d hops, path has %d members", len(rt.Hops), len(route.Path))
	}
	if rt.Hops[0].RTTMs != 0 || rt.Hops[0].Zone == "" {
		t.Fatalf("first hop = %+v", rt.Hops[0])
	}
	nt := traces[1]
	if nt.Op != "nearest" || len(nt.Hops) == 0 {
		t.Fatalf("nearest trace = %+v", nt)
	}
	for _, h := range nt.Hops {
		if h.Node == "" || h.RTTMs <= 0 {
			t.Fatalf("probe hop = %+v", h)
		}
	}

	// Detach: no further traces, queries still work.
	sys.SetTraceSink(nil)
	if _, err := sys.NearestMember(members[3]); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("detached tracer still emitted (%d traces)", len(traces))
	}
}
