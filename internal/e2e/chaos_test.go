package e2e

import (
	"log/slog"
	"testing"
	"time"

	"gsso/internal/cluster"
	"gsso/internal/monitor"
	"gsso/internal/wire"
)

// TestE2EChaosSelfHealing is the `make e2e` gate: a five-node cluster
// of real overlayd processes, every inter-node link through a fault
// proxy, put through a seeded two-wave fault schedule — a kill -9 wave
// (two victims, restarted by the supervisor under backoff) followed by
// an asymmetric one-way partition that also severs established
// connections. After the last wave the cluster must heal by itself:
// every node ready again, every member's record back at full
// replication on exactly its ring owners, no orphans — within a
// recovery budget of a few refresh intervals plus one TTL (stale
// copies from pre-crash incarnations must expire, restarted nodes must
// rejoin and republish, breakers must close). Deterministic inputs
// (seeded victim selection, seeded proxies, seeded restart jitter);
// convergence is polled, never slept for.
func TestE2EChaosSelfHealing(t *testing.T) {
	requireE2E(t)
	const (
		refresh  = time.Second
		ttl      = 4 * time.Second
		recovery = 20 * refresh // K refresh intervals; covers TTL expiry of stale copies
	)
	spec := cluster.Spec{
		Nodes:              5,
		Landmarks:          3,
		Replicas:           2,
		TTL:                cluster.Duration(ttl),
		Refresh:            cluster.Duration(refresh),
		Timeout:            cluster.Duration(time.Second),
		JoinRetry:          cluster.Duration(300 * time.Millisecond),
		DrainTimeout:       cluster.Duration(2 * time.Second),
		RestartBackoffBase: cluster.Duration(300 * time.Millisecond),
		RestartBackoffMax:  cluster.Duration(2 * time.Second),
		TraceSample:        0,
		Proxied:            true,
		Seed:               7,
		BootTimeout:        cluster.Duration(60 * time.Second),
	}
	sup := startCluster(t, spec)
	ck := newChecker(t, sup)
	if err := ck.WaitConverged(45*time.Second, time.Second); err != nil {
		t.Fatalf("cluster never converged after bootstrap: %v", err)
	}
	t.Log("baseline converged; unleashing the schedule")

	// The partition victim is the busiest shard owner, not a random
	// node: with near-zero localhost RTTs every record derives the same
	// landmark number, so the whole cluster's records pile onto a
	// couple of ring owners — a randomly drawn victim may carry no
	// traffic at all, and cutting it would prove nothing. Cutting the
	// fattest shard guarantees refresh stores hit the partition (and
	// fail over to the surviving replica) while it holds.
	busiest, most := 0, -1
	for j, addr := range sup.NodeAddrs() {
		recs, err := wire.Query(addr, 0, 1<<20, time.Second)
		if err != nil {
			t.Fatalf("enumerate node %d: %v", j, err)
		}
		if len(recs) > most {
			busiest, most = j, len(recs)
		}
	}
	t.Logf("partition victim: node %d (%d records)", busiest, most)

	sched := Schedule{
		Seed: 7,
		Steps: []Step{
			{Kind: StepKill, Count: 2, Settle: cluster.Duration(2 * time.Second)},
			{Kind: StepPartition, Victims: []int{busiest}, Mode: "to-backend",
				KillEstablished: true, Hold: cluster.Duration(3 * refresh)},
		},
	}
	if err := sched.Run(sup, slog.Default()); err != nil {
		t.Fatalf("schedule replay: %v", err)
	}

	// Self-healing: recall, replication, ownership and readiness all
	// recover within the budget, with no hand-holding from the test.
	if err := ck.WaitConverged(recovery, time.Second); err != nil {
		t.Fatalf("cluster did not self-heal within %v of the last wave: %v", recovery, err)
	}

	// The faults must actually have bitten: the kill wave restarted two
	// nodes, and the partition severed or swallowed real connections.
	// The supervisor's liveness watcher flips a restarted node back to
	// running asynchronously, so the state check polls briefly instead
	// of racing it.
	restarts := 0
	stateDeadline := time.Now().Add(5 * time.Second)
	for {
		restarts = 0
		running := 0
		for _, st := range sup.Status() {
			restarts += st.Restarts
			if st.State == cluster.StateRunning {
				running++
			}
		}
		if running == spec.Nodes {
			break
		}
		if time.Now().After(stateDeadline) {
			t.Fatalf("not all nodes running after recovery: %+v", sup.Status())
		}
		time.Sleep(50 * time.Millisecond)
	}
	if restarts < 2 {
		t.Fatalf("kill wave left only %d restarts; expected >= 2", restarts)
	}
	var cut int64
	for i := 0; i < spec.Nodes; i++ {
		proxy := sup.ProxyOf(i)
		if got := proxy.Partition(); got != wire.PartitionOff {
			t.Errorf("node %d proxy still partitioned (%v) after heal", i, got)
		}
		cut += proxy.Partitioned() + proxy.Killed()
	}
	if cut == 0 {
		t.Fatal("partition wave touched no connection; the cut never bit")
	}

	// And the monitoring surface agrees with the wire-level truth.
	view := monitor.BuildView(monitor.ScrapeAll(sup.MetricsAddrs(), 2*time.Second), 5)
	if view.Healthy != spec.Nodes || view.Ready != spec.Nodes {
		t.Fatalf("overlaymon disagrees: healthy=%d ready=%d want %d/%d",
			view.Healthy, view.Ready, spec.Nodes, spec.Nodes)
	}
	if view.TotalRecords < float64(spec.Nodes) {
		t.Fatalf("snapshot shows %.0f records; want >= %d", view.TotalRecords, spec.Nodes)
	}
	t.Logf("healed: %d restarts, %d connections cut, %.0f records on %d nodes",
		restarts, cut, view.TotalRecords, view.CoverageNodes)
}
