package e2e

import (
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"gsso/internal/cluster"
	"gsso/internal/wire"
)

// TestDrainRealProcess proves graceful departure against real
// processes (not the simulator, not in-process nodes): SIGTERM a
// member and its record must be gone from every surviving ring owner
// BEFORE the process exits. The TTL is a full minute, so absence can
// only mean the drain's Withdraw ran — soft-state expiry could not
// have cleaned up this fast. This is the §5.2 proactive-departure
// contract, end to end. It runs ungated (no E2E=1): three small
// daemons for a few seconds is tier-1-cheap.
func TestDrainRealProcess(t *testing.T) {
	spec := cluster.Spec{
		Nodes:        3,
		Replicas:     2,
		TTL:          cluster.Duration(time.Minute),
		Timeout:      cluster.Duration(2 * time.Second),
		JoinRetry:    cluster.Duration(200 * time.Millisecond),
		DrainTimeout: cluster.Duration(3 * time.Second),
		TraceSample:  0,
		BootTimeout:  cluster.Duration(60 * time.Second),
	}
	sup := startCluster(t, spec)
	ck := newChecker(t, sup)
	if err := ck.WaitConverged(30*time.Second, 2*time.Second); err != nil {
		t.Fatalf("cluster never converged after bootstrap: %v", err)
	}

	const victim = 2
	victimAddr := sup.OverlayAddr(victim)
	sup.SetAutoRestart(victim, false)
	if err := sup.Signal(victim, syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := sup.WaitExit(victim, 10*time.Second); err != nil {
		t.Fatalf("victim did not exit within the drain budget: %v", err)
	}

	// The process is dead; enumerate every survivor's shard right now.
	// With a one-minute TTL, a lingering copy of the victim's record
	// would sit here for ~57 more seconds if the drain had not removed
	// it — absence is proof of withdrawal, not of expiry.
	for j, addr := range sup.NodeAddrs() {
		if j == victim {
			continue
		}
		recs, err := wire.Query(addr, 0, 1<<20, 2*time.Second)
		if err != nil {
			t.Fatalf("enumerate survivor %d: %v", j, err)
		}
		survivors := 0
		for _, rec := range recs {
			if rec.Addr == victimAddr {
				t.Fatalf("drain failed: node %d still holds the victim's record %+v", j, rec)
			}
			survivors++
		}
		t.Logf("survivor %d holds %d records, none for the victim", j, survivors)
	}

	// The survivors' own records must still be findable (at least one
	// copy each — the victim may have held one of the two replicas, and
	// the next refresh re-heals that).
	found := map[string]int{}
	for j, addr := range sup.NodeAddrs() {
		if j == victim {
			continue
		}
		recs, err := wire.Query(addr, 0, 1<<20, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			found[rec.Addr]++
		}
	}
	for j := 0; j < spec.Nodes; j++ {
		if j == victim {
			continue
		}
		if found[sup.OverlayAddr(j)] == 0 {
			t.Fatalf("survivor %d's record vanished with the drained node", j)
		}
	}

	// The victim's own log must show the drain path, and the supervisor
	// must have honored the no-restart toggle.
	raw, err := os.ReadFile(sup.Status()[victim].LogPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "msg=drained") {
		t.Fatalf("victim log lacks the drained marker:\n%s", raw)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := sup.Status()[victim]
		if st.State == cluster.StateStopped && st.Restarts == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim not marked stopped without restarts: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
