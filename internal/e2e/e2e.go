// Package e2e proves self-healing outside the simulator: it replays
// netsim.FaultPlan-style schedules — crash waves and (asymmetric)
// partitions — against a live cluster of real overlayd processes run
// by internal/cluster, then asserts the soft-state invariants the
// paper promises from a client's vantage point: every member's record
// is findable with full replication on exactly its ring owners, no
// orphan records survive, and the cluster reports ready end to end.
//
// Kill steps go through the supervisor (SIGKILL, restart under
// backoff); partition steps go through each node's wire.FaultProxy, so
// links are cut on the wire without touching the processes; membership
// steps (add, remove, rolling-restart) drive the supervisor's live
// reconfiguration surface, swapping rings on a running fleet. The same
// Schedule type powers `overlayctl -chaos` and the `make e2e` gate.
package e2e

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"time"

	"gsso/internal/cluster"
	"gsso/internal/wire"
)

// StepKind names one fault primitive.
type StepKind string

const (
	// StepKill delivers SIGKILL to each victim; the supervisor restarts
	// them under backoff (the churn-wave analogue of netsim.ChurnWave).
	StepKill StepKind = "kill"
	// StepPartition cuts each victim's fault proxy for Hold, then lifts
	// the cut (the analogue of netsim.PartitionWindow).
	StepPartition StepKind = "partition"
	// StepAdd grows the cluster by Count (default 1) fresh nodes; each
	// boots with the enlarged membership, which is pushed live to every
	// incumbent — no process restarts.
	StepAdd StepKind = "add"
	// StepRemove drains each victim out of the membership; when Victims
	// is empty, Count victims are sampled from the removable set (active
	// non-landmark nodes).
	StepRemove StepKind = "remove"
	// StepRollingRestart cycles every active node, one at a time,
	// behind the fleet readiness barrier.
	StepRollingRestart StepKind = "rolling-restart"
)

// Step is one entry in a fault schedule. Victims are node indices;
// when empty, Count victims are sampled from the schedule's seeded rng
// stream, so a fixed seed replays the same cast.
type Step struct {
	Kind    StepKind `json:"kind"`
	Victims []int    `json:"victims,omitempty"`
	Count   int      `json:"count,omitempty"`

	// Partition steps only: Mode is "both", "to-backend" or
	// "from-backend" (the asymmetric one-way cuts), KillEstablished
	// also severs connections already in flight, and Hold is how long
	// the cut stays up before it is lifted.
	Mode            string           `json:"mode,omitempty"`
	KillEstablished bool             `json:"kill_established,omitempty"`
	Hold            cluster.Duration `json:"hold,omitempty"`

	// Settle pauses after the step completes, before the next one.
	Settle cluster.Duration `json:"settle,omitempty"`
}

// Schedule is a replayable fault schedule against a live cluster.
type Schedule struct {
	Seed  uint64 `json:"seed"`
	Steps []Step `json:"steps"`
}

// LoadSchedule reads a JSON fault schedule from disk (the overlayctl
// -chaos input).
func LoadSchedule(path string) (Schedule, error) {
	var sc Schedule
	raw, err := os.ReadFile(path)
	if err != nil {
		return sc, err
	}
	if err := json.Unmarshal(raw, &sc); err != nil {
		return sc, fmt.Errorf("schedule %s: %w", path, err)
	}
	return sc, nil
}

// ParsePartitionMode maps a schedule's mode string onto the proxy's
// partition modes; empty defaults to a full cut.
func ParsePartitionMode(s string) (wire.PartitionMode, error) {
	switch s {
	case "", "both":
		return wire.PartitionBoth, nil
	case "to-backend":
		return wire.PartitionToBackend, nil
	case "from-backend":
		return wire.PartitionFromBackend, nil
	default:
		return wire.PartitionOff, fmt.Errorf("unknown partition mode %q", s)
	}
}

// Run replays the schedule against a supervised cluster, in order,
// one step at a time. Partition steps require a proxied cluster.
// Victim sampling draws from the cluster's current active membership,
// so a schedule that adds or removes nodes keeps aiming at real ones.
func (sc Schedule) Run(sup *cluster.Supervisor, logger *slog.Logger) error {
	if logger == nil {
		logger = slog.Default()
	}
	rng := rand.New(rand.NewPCG(sc.Seed, sc.Seed^0xda3e39cb94b95bdb))
	for i, step := range sc.Steps {
		active := sup.ActiveIndices()
		victims := step.Victims
		if len(victims) == 0 && (step.Kind == StepKill || step.Kind == StepPartition) {
			victims = sampleFrom(rng, active, step.Count)
		}
		switch step.Kind {
		case StepKill:
			for _, v := range victims {
				logger.Info("chaos-kill", "step", i, "node", v)
				if err := sup.Kill(v); err != nil {
					return fmt.Errorf("step %d: kill node %d: %w", i, v, err)
				}
			}
		case StepAdd:
			count := step.Count
			if count < 1 {
				count = 1
			}
			for j := 0; j < count; j++ {
				idx, err := sup.Add()
				if err != nil {
					return fmt.Errorf("step %d: add: %w", i, err)
				}
				logger.Info("chaos-add", "step", i, "node", idx)
			}
		case StepRemove:
			if len(victims) == 0 {
				var removable []int
				for _, v := range active {
					if v >= sup.Spec().Landmarks {
						removable = append(removable, v)
					}
				}
				victims = sampleFrom(rng, removable, step.Count)
			}
			for _, v := range victims {
				logger.Info("chaos-remove", "step", i, "node", v)
				if err := sup.Remove(v); err != nil {
					return fmt.Errorf("step %d: remove node %d: %w", i, v, err)
				}
			}
		case StepRollingRestart:
			logger.Info("chaos-rolling-restart", "step", i, "nodes", len(active))
			if err := sup.RollingRestart(); err != nil {
				return fmt.Errorf("step %d: rolling restart: %w", i, err)
			}
		case StepPartition:
			mode, err := ParsePartitionMode(step.Mode)
			if err != nil {
				return fmt.Errorf("step %d: %w", i, err)
			}
			for _, v := range victims {
				proxy := sup.ProxyOf(v)
				if proxy == nil {
					return fmt.Errorf("step %d: partition needs a proxied cluster (node %d)", i, v)
				}
				logger.Info("chaos-partition", "step", i, "node", v,
					"mode", mode, "kill_established", step.KillEstablished, "hold", step.Hold)
				proxy.SetPartition(mode, step.KillEstablished)
			}
			if step.Hold > 0 {
				time.Sleep(step.Hold.D())
			}
			for _, v := range victims {
				logger.Info("chaos-heal", "step", i, "node", v)
				sup.ProxyOf(v).SetPartition(wire.PartitionOff, false)
			}
		default:
			return fmt.Errorf("step %d: unknown kind %q", i, step.Kind)
		}
		if step.Settle > 0 {
			time.Sleep(step.Settle.D())
		}
	}
	return nil
}

// sampleFrom draws count distinct entries of pool from the rng stream.
func sampleFrom(rng *rand.Rand, pool []int, count int) []int {
	if count < 1 {
		count = 1
	}
	if count > len(pool) {
		count = len(pool)
	}
	perm := rng.Perm(len(pool))
	victims := make([]int, 0, count)
	for _, p := range perm[:count] {
		victims = append(victims, pool[p])
	}
	return victims
}

// Checker asserts cluster invariants from a client's vantage point.
// Its observer node never joins the overlay — it only mirrors the
// cluster's peer list, so ring ownership computed here is exactly what
// the cluster members compute (ownership derives from the sorted
// shared peer list, nothing else). Membership is dynamic: each pass
// re-reads the supervisor's active set, cross-checks it against the
// ring every live node actually serves (the membership RPC), and only
// then computes ownership — the checker never trusts the boot-time
// spec.
type Checker struct {
	sup      *cluster.Supervisor
	observer *wire.Node
}

// NewChecker builds a checker over a running cluster.
func NewChecker(sup *cluster.Supervisor) (*Checker, error) {
	stub := wire.SpaceConfig{Landmarks: []string{"observer"}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
	obsNode, err := wire.NewNode("127.0.0.1:0", stub, sup.NodeAddrs(), time.Minute)
	if err != nil {
		return nil, err
	}
	return &Checker{sup: sup, observer: obsNode}, nil
}

// Close releases the observer node.
func (c *Checker) Close() { c.observer.Close() }

// Converged makes one pass over the cluster and reports the first
// violated invariant:
//
//  1. every active node answers /readyz 200 (rejoined and
//     republishing);
//  2. every active node serves the supervisor's current membership
//     over the peers RPC — the whole fleet agrees on one ring;
//  3. enumerating every node's live shard, each record sits only on a
//     ring owner of its number under that live membership — no
//     orphans;
//  4. every active member's record is present with at least the
//     replication factor's worth of copies — full recall, replicas
//     intact. (A just-removed member's record may linger on its owners
//     until its TTL; it still counts as owned, not orphaned.)
//
// Stale copies published under a crashed incarnation's old number are
// tolerated until their TTL reaps them: they still sit on the correct
// owners for that number, and recall is asserted on copy counts, not
// exact totals.
func (c *Checker) Converged(timeout time.Duration) error {
	if err := c.sup.WaitAllReady(time.Second); err != nil {
		return err
	}
	active := c.sup.ActiveIndices()
	dial := c.sup.NodeAddrs()
	want := slices.Sorted(slices.Values(dial))
	// Fleet-wide ring agreement, fetched from the live nodes — never
	// assumed from the boot spec.
	for j, addr := range dial {
		peers, _, err := wire.FetchPeers(addr, timeout)
		if err != nil {
			return fmt.Errorf("fetch peers from node %d (%s): %w", active[j], addr, err)
		}
		if !slices.Equal(peers, want) {
			return fmt.Errorf("node %d serves ring %v; supervisor membership is %v",
				active[j], peers, want)
		}
	}
	// Ownership below is computed on that live membership.
	if _, err := c.observer.SetPeers(want, timeout); err != nil {
		return fmt.Errorf("observer ring swap: %w", err)
	}
	replicas := c.sup.Spec().Replicas
	if len(want) < replicas {
		replicas = len(want)
	}
	expectedSet := make(map[string]bool, len(active))
	for _, i := range active {
		expectedSet[c.sup.OverlayAddr(i)] = true
	}
	copies := make(map[string]int, len(active))
	for j, addr := range dial {
		recs, err := wire.Query(addr, 0, 1<<20, timeout)
		if err != nil {
			return fmt.Errorf("enumerate node %d (%s): %w", active[j], addr, err)
		}
		for _, rec := range recs {
			owners := c.observer.OwnersOf(rec.Number, replicas)
			if !slices.Contains(owners, addr) {
				return fmt.Errorf("orphan on node %d: record %s (number %d) owned by %v",
					active[j], rec.Addr, rec.Number, owners)
			}
			if !expectedSet[rec.Addr] {
				return fmt.Errorf("orphan on node %d: record for non-member addr %s",
					active[j], rec.Addr)
			}
			copies[rec.Addr]++
		}
	}
	for a := range expectedSet {
		if copies[a] < replicas {
			return fmt.Errorf("recall hole: %s has %d/%d replicas", a, copies[a], replicas)
		}
	}
	return nil
}

// WaitConverged polls Converged until it holds or the deadline lapses,
// returning the last violation.
func (c *Checker) WaitConverged(timeout, probeTimeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for {
		if last = c.Converged(probeTimeout); last == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("not converged after %v: %w", timeout, last)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

// OverlaydBinary builds cmd/overlayd once per process and returns the
// path. The build output lives in a throwaway temp directory; `go
// build` itself is cached, so repeat runs are cheap.
func OverlaydBinary() (string, error) {
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "gsso-e2e-bin-")
		if err != nil {
			buildErr = err
			return
		}
		builtPath = filepath.Join(dir, "overlayd")
		cmd := exec.Command("go", "build", "-o", builtPath, "gsso/cmd/overlayd")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build cmd/overlayd: %v\n%s", err, strings.TrimSpace(string(out)))
		}
	})
	return builtPath, buildErr
}

var (
	buildOnce sync.Once
	builtPath string
	buildErr  error
)
