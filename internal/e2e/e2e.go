// Package e2e proves self-healing outside the simulator: it replays
// netsim.FaultPlan-style schedules — crash waves and (asymmetric)
// partitions — against a live cluster of real overlayd processes run
// by internal/cluster, then asserts the soft-state invariants the
// paper promises from a client's vantage point: every member's record
// is findable with full replication on exactly its ring owners, no
// orphan records survive, and the cluster reports ready end to end.
//
// Kill steps go through the supervisor (SIGKILL, restart under
// backoff); partition steps go through each node's wire.FaultProxy, so
// links are cut on the wire without touching the processes. The same
// Schedule type powers `overlayctl -chaos` and the `make e2e` gate.
package e2e

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"gsso/internal/cluster"
	"gsso/internal/wire"
)

// StepKind names one fault primitive.
type StepKind string

const (
	// StepKill delivers SIGKILL to each victim; the supervisor restarts
	// them under backoff (the churn-wave analogue of netsim.ChurnWave).
	StepKill StepKind = "kill"
	// StepPartition cuts each victim's fault proxy for Hold, then lifts
	// the cut (the analogue of netsim.PartitionWindow).
	StepPartition StepKind = "partition"
)

// Step is one entry in a fault schedule. Victims are node indices;
// when empty, Count victims are sampled from the schedule's seeded rng
// stream, so a fixed seed replays the same cast.
type Step struct {
	Kind    StepKind `json:"kind"`
	Victims []int    `json:"victims,omitempty"`
	Count   int      `json:"count,omitempty"`

	// Partition steps only: Mode is "both", "to-backend" or
	// "from-backend" (the asymmetric one-way cuts), KillEstablished
	// also severs connections already in flight, and Hold is how long
	// the cut stays up before it is lifted.
	Mode            string           `json:"mode,omitempty"`
	KillEstablished bool             `json:"kill_established,omitempty"`
	Hold            cluster.Duration `json:"hold,omitempty"`

	// Settle pauses after the step completes, before the next one.
	Settle cluster.Duration `json:"settle,omitempty"`
}

// Schedule is a replayable fault schedule against a live cluster.
type Schedule struct {
	Seed  uint64 `json:"seed"`
	Steps []Step `json:"steps"`
}

// LoadSchedule reads a JSON fault schedule from disk (the overlayctl
// -chaos input).
func LoadSchedule(path string) (Schedule, error) {
	var sc Schedule
	raw, err := os.ReadFile(path)
	if err != nil {
		return sc, err
	}
	if err := json.Unmarshal(raw, &sc); err != nil {
		return sc, fmt.Errorf("schedule %s: %w", path, err)
	}
	return sc, nil
}

// ParsePartitionMode maps a schedule's mode string onto the proxy's
// partition modes; empty defaults to a full cut.
func ParsePartitionMode(s string) (wire.PartitionMode, error) {
	switch s {
	case "", "both":
		return wire.PartitionBoth, nil
	case "to-backend":
		return wire.PartitionToBackend, nil
	case "from-backend":
		return wire.PartitionFromBackend, nil
	default:
		return wire.PartitionOff, fmt.Errorf("unknown partition mode %q", s)
	}
}

// Run replays the schedule against a supervised cluster, in order,
// one step at a time. Partition steps require a proxied cluster.
func (sc Schedule) Run(sup *cluster.Supervisor, logger *slog.Logger) error {
	if logger == nil {
		logger = slog.Default()
	}
	rng := rand.New(rand.NewPCG(sc.Seed, sc.Seed^0xda3e39cb94b95bdb))
	nodes := len(sup.NodeAddrs())
	for i, step := range sc.Steps {
		victims := step.Victims
		if len(victims) == 0 {
			victims = sampleVictims(rng, nodes, step.Count)
		}
		switch step.Kind {
		case StepKill:
			for _, v := range victims {
				logger.Info("chaos-kill", "step", i, "node", v)
				if err := sup.Kill(v); err != nil {
					return fmt.Errorf("step %d: kill node %d: %w", i, v, err)
				}
			}
		case StepPartition:
			mode, err := ParsePartitionMode(step.Mode)
			if err != nil {
				return fmt.Errorf("step %d: %w", i, err)
			}
			for _, v := range victims {
				proxy := sup.ProxyOf(v)
				if proxy == nil {
					return fmt.Errorf("step %d: partition needs a proxied cluster (node %d)", i, v)
				}
				logger.Info("chaos-partition", "step", i, "node", v,
					"mode", mode, "kill_established", step.KillEstablished, "hold", step.Hold)
				proxy.SetPartition(mode, step.KillEstablished)
			}
			if step.Hold > 0 {
				time.Sleep(step.Hold.D())
			}
			for _, v := range victims {
				logger.Info("chaos-heal", "step", i, "node", v)
				sup.ProxyOf(v).SetPartition(wire.PartitionOff, false)
			}
		default:
			return fmt.Errorf("step %d: unknown kind %q", i, step.Kind)
		}
		if step.Settle > 0 {
			time.Sleep(step.Settle.D())
		}
	}
	return nil
}

// sampleVictims draws count distinct node indices from the rng stream.
func sampleVictims(rng *rand.Rand, nodes, count int) []int {
	if count < 1 {
		count = 1
	}
	if count > nodes {
		count = nodes
	}
	perm := rng.Perm(nodes)
	victims := append([]int(nil), perm[:count]...)
	return victims
}

// Checker asserts cluster invariants from a client's vantage point.
// Its observer node never joins the overlay — it only shares the
// cluster's peer list, so ring ownership computed here is exactly what
// the cluster members compute (ownership derives from the sorted
// shared peer list, nothing else).
type Checker struct {
	sup      *cluster.Supervisor
	observer *wire.Node
	expected []string // real overlay addrs: the record Addr values
}

// NewChecker builds a checker over a running cluster.
func NewChecker(sup *cluster.Supervisor) (*Checker, error) {
	stub := wire.SpaceConfig{Landmarks: []string{"observer"}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
	obsNode, err := wire.NewNode("127.0.0.1:0", stub, sup.NodeAddrs(), time.Minute)
	if err != nil {
		return nil, err
	}
	c := &Checker{sup: sup, observer: obsNode}
	for i := range sup.NodeAddrs() {
		c.expected = append(c.expected, sup.OverlayAddr(i))
	}
	return c, nil
}

// Close releases the observer node.
func (c *Checker) Close() { c.observer.Close() }

// Converged makes one pass over the cluster and reports the first
// violated invariant:
//
//  1. every node answers /readyz 200 (rejoined and republishing);
//  2. enumerating every node's live shard, each record sits only on a
//     ring owner of its number — no orphans;
//  3. every member's record is present with at least the replication
//     factor's worth of copies — full recall, replicas intact.
//
// Stale copies published under a crashed incarnation's old number are
// tolerated until their TTL reaps them: they still sit on the correct
// owners for that number, and recall is asserted on copy counts, not
// exact totals.
func (c *Checker) Converged(timeout time.Duration) error {
	if err := c.sup.WaitAllReady(time.Second); err != nil {
		return err
	}
	replicas := c.sup.Spec().Replicas
	dial := c.sup.NodeAddrs()
	expectedSet := make(map[string]bool, len(c.expected))
	for _, a := range c.expected {
		expectedSet[a] = true
	}
	copies := make(map[string]int, len(c.expected))
	for j, addr := range dial {
		recs, err := wire.Query(addr, 0, 1<<20, timeout)
		if err != nil {
			return fmt.Errorf("enumerate node %d (%s): %w", j, addr, err)
		}
		for _, rec := range recs {
			if !expectedSet[rec.Addr] {
				return fmt.Errorf("orphan on node %d: record for unknown addr %s", j, rec.Addr)
			}
			owners := c.observer.OwnersOf(rec.Number, replicas)
			if !contains(owners, addr) {
				return fmt.Errorf("orphan on node %d: record %s (number %d) owned by %v",
					j, rec.Addr, rec.Number, owners)
			}
			copies[rec.Addr]++
		}
	}
	for _, a := range c.expected {
		if copies[a] < replicas {
			return fmt.Errorf("recall hole: %s has %d/%d replicas", a, copies[a], replicas)
		}
	}
	return nil
}

// WaitConverged polls Converged until it holds or the deadline lapses,
// returning the last violation.
func (c *Checker) WaitConverged(timeout, probeTimeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for {
		if last = c.Converged(probeTimeout); last == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("not converged after %v: %w", timeout, last)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// OverlaydBinary builds cmd/overlayd once per process and returns the
// path. The build output lives in a throwaway temp directory; `go
// build` itself is cached, so repeat runs are cheap.
func OverlaydBinary() (string, error) {
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "gsso-e2e-bin-")
		if err != nil {
			buildErr = err
			return
		}
		builtPath = filepath.Join(dir, "overlayd")
		cmd := exec.Command("go", "build", "-o", builtPath, "gsso/cmd/overlayd")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build cmd/overlayd: %v\n%s", err, strings.TrimSpace(string(out)))
		}
	})
	return builtPath, buildErr
}

var (
	buildOnce sync.Once
	builtPath string
	buildErr  error
)
