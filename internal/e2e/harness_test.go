package e2e

import (
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gsso/internal/cluster"
	"gsso/internal/monitor"
)

// requireE2E gates the chaos tests out of tier-1 runs, mirroring the
// SOAK=1 convention: they spawn real process fleets and run for tens
// of seconds, so they only run under `make e2e`.
func requireE2E(t *testing.T) {
	t.Helper()
	if os.Getenv("E2E") == "" {
		t.Skip("live-cluster chaos test: set E2E=1 (make e2e) to run")
	}
}

// startCluster builds overlayd, boots the spec'd cluster, and wires
// cleanup so that a failed test dumps its artifacts — per-node log
// tails and an overlaymon-style JSON snapshot — before tearing the
// processes down.
func startCluster(t *testing.T, spec cluster.Spec) *cluster.Supervisor {
	t.Helper()
	bin, err := OverlaydBinary()
	if err != nil {
		t.Fatal(err)
	}
	spec.Binary = bin
	if spec.RunDir == "" {
		spec.RunDir = filepath.Join(t.TempDir(), "run")
	}
	if err := os.MkdirAll(spec.RunDir, 0o755); err != nil {
		t.Fatal(err)
	}
	supLog, err := os.Create(filepath.Join(spec.RunDir, "supervisor.log"))
	if err != nil {
		t.Fatal(err)
	}
	logger := slog.New(slog.NewTextHandler(supLog, &slog.HandlerOptions{Level: slog.LevelDebug}))
	sup, err := cluster.New(spec, logger)
	if err != nil {
		supLog.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if t.Failed() {
			dumpArtifacts(t, sup)
		}
		sup.Stop()
		supLog.Close()
	})
	if err := sup.Start(); err != nil {
		t.Fatalf("cluster bootstrap: %v", err)
	}
	return sup
}

// dumpArtifacts preserves the evidence of a failed run: it writes the
// merged cluster snapshot (the overlaymon -json view) next to the logs
// and echoes the tail of every per-node log into the test output.
func dumpArtifacts(t *testing.T, sup *cluster.Supervisor) {
	t.Helper()
	view := monitor.BuildView(monitor.ScrapeAll(sup.MetricsAddrs(), 2*time.Second), 10)
	if raw, err := json.MarshalIndent(view, "", "  "); err == nil {
		path := filepath.Join(sup.RunDir(), "snapshot.json")
		if err := os.WriteFile(path, raw, 0o644); err == nil {
			t.Logf("cluster snapshot: %s", path)
		}
	}
	t.Logf("per-node logs under %s:", sup.RunDir())
	for _, st := range sup.Status() {
		t.Logf("node %d: state=%s restarts=%d pid=%d", st.Index, st.State, st.Restarts, st.PID)
		raw, err := os.ReadFile(st.LogPath)
		if err != nil {
			continue
		}
		const tail = 2048
		if len(raw) > tail {
			raw = raw[len(raw)-tail:]
		}
		t.Logf("--- %s (tail) ---\n%s", filepath.Base(st.LogPath), raw)
	}
}

// newChecker is NewChecker with test plumbing.
func newChecker(t *testing.T, sup *cluster.Supervisor) *Checker {
	t.Helper()
	ck, err := NewChecker(sup)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ck.Close)
	return ck
}
