package e2e

import (
	"log/slog"
	"os"
	"strings"
	"testing"
	"time"

	"gsso/internal/cluster"
	"gsso/internal/monitor"
)

// TestE2EReconfiguration is the rolling-operations half of the `make
// e2e` gate: a five-node cluster of real overlayd processes scales up
// by one node, down by one (seeded victim sampling from the removable
// set), then rolling-restarts the whole fleet — and at every quiesce
// point the checker proves full recall, replicas on exactly the
// post-reconfiguration ring owners, fleet-wide agreement on the live
// membership, and zero orphans. All reconfiguration flows through the
// same seeded Schedule machinery as the chaos gate, so `overlayctl
// -chaos` can replay the identical run.
func TestE2EReconfiguration(t *testing.T) {
	requireE2E(t)
	const (
		refresh  = time.Second
		ttl      = 4 * time.Second
		recovery = 20 * refresh // covers TTL expiry of any pre-reconfig stragglers
	)
	spec := cluster.Spec{
		Nodes:        5,
		Landmarks:    3,
		Replicas:     2,
		TTL:          cluster.Duration(ttl),
		Refresh:      cluster.Duration(refresh),
		Timeout:      cluster.Duration(time.Second),
		JoinRetry:    cluster.Duration(300 * time.Millisecond),
		DrainTimeout: cluster.Duration(2 * time.Second),
		Seed:         11,
		BootTimeout:  cluster.Duration(60 * time.Second),
	}
	sup := startCluster(t, spec)
	ck := newChecker(t, sup)
	if err := ck.WaitConverged(45*time.Second, time.Second); err != nil {
		t.Fatalf("cluster never converged after bootstrap: %v", err)
	}
	quiesce := func(phase string) {
		t.Helper()
		if err := ck.WaitConverged(recovery, time.Second); err != nil {
			t.Fatalf("not converged after %s: %v", phase, err)
		}
		t.Logf("converged after %s: %d active nodes", phase, len(sup.ActiveIndices()))
	}

	// Scale up by one: the newcomer boots with the enlarged ring, every
	// incumbent swaps live.
	up := Schedule{Seed: 11, Steps: []Step{{Kind: StepAdd, Settle: cluster.Duration(time.Second)}}}
	if err := up.Run(sup, slog.Default()); err != nil {
		t.Fatalf("scale-up schedule: %v", err)
	}
	if got := len(sup.ActiveIndices()); got != 6 {
		t.Fatalf("active nodes after add = %d, want 6", got)
	}
	quiesce("scale-up")

	// Scale down by one: the victim is sampled (seeded) from the
	// removable set, re-homes its shard, and drains out.
	down := Schedule{Seed: 11, Steps: []Step{{Kind: StepRemove, Settle: cluster.Duration(time.Second)}}}
	if err := down.Run(sup, slog.Default()); err != nil {
		t.Fatalf("scale-down schedule: %v", err)
	}
	if got := len(sup.ActiveIndices()); got != 5 {
		t.Fatalf("active nodes after remove = %d, want 5", got)
	}
	quiesce("scale-down")

	// Before the restarts wipe them, the monitoring surface must show
	// the reconfigurations: every incumbent served at least two extra
	// ring epochs (add + remove), and the EPOCH column is wired through.
	view := monitor.BuildView(monitor.ScrapeAll(sup.MetricsAddrs(), 2*time.Second), 5)
	for _, nv := range view.Nodes {
		if nv.Epoch < 2 {
			t.Fatalf("node %s reports ring epoch %.0f; want >= 2 after add+remove", nv.Addr, nv.Epoch)
		}
	}

	// Full-fleet rolling restart behind the readiness barrier: at most
	// one node down at any moment, every shard stays serveable.
	roll := Schedule{Seed: 11, Steps: []Step{{Kind: StepRollingRestart}}}
	if err := roll.Run(sup, slog.Default()); err != nil {
		t.Fatalf("rolling-restart schedule: %v", err)
	}
	quiesce("rolling restart")

	// Every active node really did restart: each log shows at least two
	// incarnations (boot + roll), except the added node, which shows its
	// add-time boot plus the roll.
	for _, st := range sup.Status() {
		if st.State == cluster.StateRemoved {
			continue
		}
		raw, err := os.ReadFile(st.LogPath)
		if err != nil {
			t.Fatalf("node %d log: %v", st.Index, err)
		}
		if got := strings.Count(string(raw), "supervisor: start node"); got < 2 {
			t.Fatalf("node %d shows %d incarnations; rolling restart missed it", st.Index, got)
		}
	}

	// And the post-roll fleet agrees with the monitor: all active nodes
	// healthy, ready, and carrying the records.
	view = monitor.BuildView(monitor.ScrapeAll(sup.MetricsAddrs(), 2*time.Second), 5)
	active := len(sup.ActiveIndices())
	if view.Healthy != active || view.Ready != active {
		t.Fatalf("overlaymon disagrees: healthy=%d ready=%d want %d/%d",
			view.Healthy, view.Ready, active, active)
	}
	if view.TotalRecords < float64(active) {
		t.Fatalf("snapshot shows %.0f records; want >= %d", view.TotalRecords, active)
	}
}
