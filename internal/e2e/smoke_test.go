package e2e

import (
	"testing"
	"time"

	"gsso/internal/cluster"
	"gsso/internal/monitor"
)

// TestMonSmoke is scripts/mon_smoke.sh reborn in Go: boot a three-node
// cluster of real overlayd processes (on ephemeral ports — the old
// script's fixed 7101..9103 ports made parallel runs collide), then
// assert the overlaymon cluster view end to end: every node healthy
// AND ready, records present, every node traced, the publish trace
// stitched across nodes with zero orphan spans, and store latencies in
// the merged RPC table. Gated behind E2E=1 and run by `make e2e` (the
// old `make mon-smoke` entry point folds into the same gate).
func TestMonSmoke(t *testing.T) {
	requireE2E(t)
	spec := cluster.Spec{
		Nodes:       3,
		Replicas:    2,
		TTL:         cluster.Duration(10 * time.Second),
		Timeout:     cluster.Duration(2 * time.Second),
		JoinRetry:   cluster.Duration(200 * time.Millisecond),
		TraceSample: 1,
		BootTimeout: cluster.Duration(60 * time.Second),
	}
	sup := startCluster(t, spec)
	ck := newChecker(t, sup)
	if err := ck.WaitConverged(30*time.Second, 2*time.Second); err != nil {
		t.Fatalf("cluster never converged: %v", err)
	}

	view := monitor.BuildView(monitor.ScrapeAll(sup.MetricsAddrs(), 2*time.Second), 10)
	if view.Healthy != 3 || view.Unreachable != 0 {
		t.Fatalf("want 3 healthy, got healthy=%d unreachable=%d", view.Healthy, view.Unreachable)
	}
	if view.Ready != 3 {
		t.Fatalf("want 3 ready, got %d: %+v", view.Ready, view.Nodes)
	}
	if view.TotalRecords < 3 {
		t.Fatalf("want >=3 records cluster-wide (3 members, 2 replicas each), got %.0f", view.TotalRecords)
	}
	if view.TracedNodes != 3 {
		t.Fatalf("want all 3 nodes traced, got %d", view.TracedNodes)
	}

	// The initial publishes are head-sampled 1-in-1, so the view must
	// contain at least one publish trace stitched across the publisher
	// and its ring owners: client store spans and server serve.store
	// spans under one root, with every parent resolving.
	stitched := false
	for _, tr := range view.Traces {
		if tr.RootOp != "publish" {
			continue
		}
		if tr.Orphans != 0 {
			t.Fatalf("publish trace has %d orphan spans: %+v", tr.Orphans, tr.Spans)
		}
		serves := 0
		for _, s := range tr.Spans {
			if s.Op == "serve.store" {
				serves++
			}
		}
		if serves > 0 {
			stitched = true
		}
	}
	if !stitched {
		t.Fatalf("no publish trace stitched across client and owner nodes: %+v", view.Traces)
	}

	var storeCount uint64
	for _, r := range view.RPC {
		if r.Type == "store" {
			storeCount = r.Count
		}
	}
	if storeCount < 3 {
		t.Fatalf("merged RPC table missing store latencies: %+v", view.RPC)
	}
}
