// Package ecan implements eCAN (expressway CAN, Xu & Zhang): a hierarchy
// of high-order zones layered over a basic CAN that cuts routing from
// O(d*N^(1/d)) to O(log N) hops.
//
// A CAN zone's split path identifies it; grouping the path's bits into
// digits of dim bits makes every digit boundary a high-order zone: the
// order-1 zone around a node is the 2^dim CAN-zone block sharing all but
// the last digit, order-2 the block sharing all but the last two digits,
// and so on — exactly the paper's "every 2^d CAN zones represent an
// order-1 zone, and 2^d order-i zones an order-(i+1) zone". Routing
// resolves one digit per hop (Pastry with base 2^dim, which is why the
// paper calls the two equivalent).
//
// The key flexibility the paper exploits: a node may pick ANY member of a
// neighboring high-order zone as its routing entry for that zone. The
// Selector interface is that choice point — random (baseline), oracle
// closest (optimal), or the global-soft-state procedure (package
// softstate).
package ecan

import (
	"errors"
	"fmt"

	"gsso/internal/can"
	"gsso/internal/netsim"
	"gsso/internal/simrand"
	"gsso/internal/topology"
)

// Selector chooses a node's routing entry for a high-order region among
// the region's members. self is the selecting node's member; candidates is
// the region's full membership (shared slice — do not modify). A Selector
// may return nil only for an empty candidate list.
type Selector interface {
	Select(self *can.Member, region can.Path, candidates []*can.Member) *can.Member
}

// RandomSelector picks a uniformly random member of the region: the
// paper's baseline ("each node simply randomly picks one node from the
// neighboring zone"), oblivious to physical proximity.
type RandomSelector struct {
	RNG *simrand.Source
}

// Select implements Selector.
func (s RandomSelector) Select(self *can.Member, _ can.Path, candidates []*can.Member) *can.Member {
	return pickAvoidingSelf(self, candidates, func(n int) int { return s.RNG.Intn(n) })
}

// ClosestSelector is the oracle optimum: it scans every candidate with the
// simulator's unmetered latency and picks the physically closest. The
// paper's "optimal" curves ("the number of RTT measurements is infinity")
// use exactly this.
type ClosestSelector struct {
	Env *netsim.Env
}

// Select implements Selector.
func (s ClosestSelector) Select(self *can.Member, _ can.Path, candidates []*can.Member) *can.Member {
	var best *can.Member
	bestD := 0.0
	for _, c := range candidates {
		if c == self {
			continue
		}
		d := s.Env.Latency(self.Host, c.Host)
		if best == nil || d < bestD {
			best, bestD = c, d
		}
	}
	if best == nil && len(candidates) > 0 {
		return candidates[0] // region containing only self
	}
	return best
}

// FuncSelector adapts a plain function to the Selector interface.
type FuncSelector func(self *can.Member, region can.Path, candidates []*can.Member) *can.Member

// Select implements Selector.
func (f FuncSelector) Select(self *can.Member, region can.Path, candidates []*can.Member) *can.Member {
	return f(self, region, candidates)
}

// pickAvoidingSelf returns a random candidate other than self when one
// exists.
func pickAvoidingSelf(self *can.Member, candidates []*can.Member, intn func(int) int) *can.Member {
	if len(candidates) == 0 {
		return nil
	}
	for attempt := 0; attempt < 8; attempt++ {
		c := candidates[intn(len(candidates))]
		if c != self {
			return c
		}
	}
	for _, c := range candidates {
		if c != self {
			return c
		}
	}
	return candidates[0]
}

// Node is a member's eCAN routing state. Entries are selected lazily and
// cached; InvalidateEntries drops them so the next route re-selects.
type Node struct {
	Member *can.Member
	// digits[row*fanout+digit] caches the entry for the high-order region
	// at that row and digit; chosen[...] records whether selection ran
	// (distinguishing "not yet selected" from "region empty").
	digits []*can.Member
	chosen []bool
}

// Overlay layers eCAN routing over a CAN.
type Overlay struct {
	can      *can.Overlay
	digitLen int // bits per digit (= CAN dimensionality by default)
	fanout   int // 2^digitLen
	maxRows  int
	selector Selector
	regions  map[can.Path][]*can.Member
	nodes    map[*can.Member]*Node
}

// New builds an eCAN over c using sel for high-order neighbor selection.
// digitLen is the number of path bits per routing digit; 0 means the CAN
// dimensionality (the paper's layout: 2^d CAN zones per order-1 zone).
// The region index is snapshotted at construction; call Refresh after
// membership changes.
func New(c *can.Overlay, digitLen int, sel Selector) (*Overlay, error) {
	if c == nil {
		return nil, errors.New("ecan: nil CAN")
	}
	if sel == nil {
		return nil, errors.New("ecan: nil selector")
	}
	if digitLen == 0 {
		digitLen = c.Dim()
	}
	if digitLen < 1 || digitLen > 8 {
		return nil, fmt.Errorf("ecan: digitLen = %d, need in [1,8]", digitLen)
	}
	o := &Overlay{
		can:      c,
		digitLen: digitLen,
		fanout:   1 << digitLen,
		selector: sel,
	}
	o.Refresh()
	return o, nil
}

// CAN returns the underlying CAN overlay.
func (o *Overlay) CAN() *can.Overlay { return o.can }

// DigitLen returns the number of path bits resolved per routing hop.
func (o *Overlay) DigitLen() int { return o.digitLen }

// SetSelector replaces the neighbor-selection policy and drops all cached
// entries.
func (o *Overlay) SetSelector(sel Selector) {
	o.selector = sel
	for _, n := range o.nodes {
		n.reset(o.maxRows, o.fanout)
	}
}

// Refresh re-snapshots the region index and drops all routing state; call
// it after joins or departures.
func (o *Overlay) Refresh() {
	o.regions = o.can.RegionIndex()
	maxDepth := 0
	for _, m := range o.can.Members() {
		if d := m.Depth(); d > maxDepth {
			maxDepth = d
		}
	}
	o.maxRows = (maxDepth + o.digitLen - 1) / o.digitLen
	if o.maxRows == 0 {
		o.maxRows = 1
	}
	o.nodes = make(map[*can.Member]*Node, o.can.Size())
}

// Reindex re-snapshots the region index after a membership change while
// preserving cached routing entries — the surgical counterpart to
// Refresh's full wipe, for repair paths that know exactly which members
// moved. invalid marks members whose zone changed or vanished: every
// cached slot pointing at one is cleared (next use re-selects), a node
// owned by one is reset wholesale (its own path, hence its region
// geometry, changed), and nodes of members no longer in the overlay are
// dropped. Slots cached as "region empty" are re-armed too — a takeover
// can relocate a member INTO a previously empty region. If the table
// geometry (row count) changed, all routing state resets as in Refresh.
func (o *Overlay) Reindex(invalid func(*can.Member) bool) {
	o.regions = o.can.RegionIndex()
	maxDepth := 0
	for _, m := range o.can.Members() {
		if d := m.Depth(); d > maxDepth {
			maxDepth = d
		}
	}
	rows := (maxDepth + o.digitLen - 1) / o.digitLen
	if rows == 0 {
		rows = 1
	}
	if rows != o.maxRows {
		o.maxRows = rows
		o.nodes = make(map[*can.Member]*Node, o.can.Size())
		return
	}
	for m, n := range o.nodes {
		if !o.can.IsMember(m) {
			delete(o.nodes, m)
			continue
		}
		if invalid == nil {
			continue
		}
		if invalid(m) {
			n.reset(o.maxRows, o.fanout)
			continue
		}
		for i, c := range n.chosen {
			if c && (n.digits[i] == nil || invalid(n.digits[i])) {
				n.digits[i] = nil
				n.chosen[i] = false
			}
		}
	}
}

// RegionMembers returns the membership of a high-order region (the shared
// index slice; do not modify). Nil if the region does not exist.
func (o *Overlay) RegionMembers(region can.Path) []*can.Member {
	if ms, ok := o.regions[region]; ok {
		return ms
	}
	// A region below a leaf is covered by that leaf.
	for l := region.Len - 1; l >= 0; l-- {
		if ms, ok := o.regions[region.Prefix(l)]; ok {
			if len(ms) == 1 {
				return ms
			}
			return nil
		}
	}
	return nil
}

// Node returns (creating lazily) the routing state for member m.
func (o *Overlay) Node(m *can.Member) *Node {
	if n, ok := o.nodes[m]; ok {
		return n
	}
	n := &Node{Member: m}
	n.reset(o.maxRows, o.fanout)
	o.nodes[m] = n
	return n
}

func (n *Node) reset(rows, fanout int) {
	n.digits = make([]*can.Member, rows*fanout)
	n.chosen = make([]bool, rows*fanout)
}

// InvalidateEntries drops m's cached routing entries (e.g. after a
// pub/sub notification reports better candidates).
func (o *Overlay) InvalidateEntries(m *can.Member) {
	if n, ok := o.nodes[m]; ok {
		n.reset(o.maxRows, o.fanout)
	}
}

// Entry returns m's routing entry toward the region at (row, digit),
// selecting it on first use. It returns nil for empty regions.
func (o *Overlay) Entry(m *can.Member, row, digit int) *can.Member {
	n := o.Node(m)
	slot := row*o.fanout + digit
	if slot >= len(n.digits) {
		return nil
	}
	if n.chosen[slot] {
		return n.digits[slot]
	}
	region := o.regionForBits(m.Path(), row, digit)
	candidates := o.RegionMembers(region)
	var pick *can.Member
	if len(candidates) > 0 {
		pick = o.selector.Select(m, region, candidates)
	}
	n.digits[slot] = pick
	n.chosen[slot] = true
	return pick
}

// InvalidateEntry drops a single cached routing entry of m, so only that
// slot re-selects on next use (the surgical, notification-driven repair;
// InvalidateEntries is the blunt whole-table variant).
func (o *Overlay) InvalidateEntry(m *can.Member, row, digit int) {
	n, ok := o.nodes[m]
	if !ok {
		return
	}
	slot := row*o.fanout + digit
	if slot < len(n.digits) {
		n.digits[slot] = nil
		n.chosen[slot] = false
	}
}

// CachedEntry returns m's routing entry toward (row, digit) only if it
// has already been selected; it never triggers selection. Nil means
// "not selected yet" or "region empty".
func (o *Overlay) CachedEntry(m *can.Member, row, digit int) *can.Member {
	n, ok := o.nodes[m]
	if !ok {
		return nil
	}
	slot := row*o.fanout + digit
	if slot >= len(n.digits) || !n.chosen[slot] {
		return nil
	}
	return n.digits[slot]
}

// regionForBits builds the region path: prefix of row*digitLen bits of
// base, then the digit bits (most significant first).
func (o *Overlay) regionForBits(base can.Path, row, digit int) can.Path {
	region := base.Prefix(row * o.digitLen)
	for b := o.digitLen - 1; b >= 0; b-- {
		bit := (digit >> uint(b)) & 1
		region = pathChild(region, bit)
	}
	return region
}

// pathChild extends a path by one bit.
func pathChild(p can.Path, bit int) can.Path {
	return can.Path{Bits: p.Bits | uint64(bit)<<(63-p.Len), Len: p.Len + 1}
}

// digitOf extracts the digit (digitLen bits) of path starting at bit
// row*digitLen. Bits beyond the path's length read as zero.
func (o *Overlay) digitOf(path can.Path, row int) int {
	d := 0
	for b := 0; b < o.digitLen; b++ {
		i := row*o.digitLen + b
		bit := 0
		if i < path.Len {
			bit = path.Bit(i)
		}
		d = d<<1 | bit
	}
	return d
}

// RouteResult describes one eCAN route.
type RouteResult struct {
	// Members is the hop sequence including source and destination owner.
	Members []*can.Member
}

// Hops returns the number of overlay hops (len(Members) - 1).
func (r RouteResult) Hops() int { return len(r.Members) - 1 }

// Latency sums the physical latency of every hop under env.
func (r RouteResult) Latency(env *netsim.Env) float64 {
	total := 0.0
	for i := 1; i < len(r.Members); i++ {
		total += env.Latency(r.Members[i-1].Host, r.Members[i].Host)
	}
	return total
}

// Route routes from member "from" to the owner of target using high-order
// entries: each hop resolves at least one more path bit toward the target
// (usually a whole digit), giving O(log N) hops.
func (o *Overlay) Route(from *can.Member, target can.Point) (RouteResult, error) {
	if from == nil {
		return RouteResult{}, errors.New("ecan: route from nil member")
	}
	tpath, err := o.can.PathOf(target)
	if err != nil {
		return RouteResult{}, err
	}
	cur := from
	hops := []*can.Member{from}
	for !cur.Contains(target) {
		l := cur.Path().CommonPrefixLen(tpath)
		row := l / o.digitLen
		next := o.Entry(cur, row, o.digitOf(tpath, row))
		if next == nil || next == cur {
			// The digit region is unpopulated at full depth (the target
			// leaf is shallower than the digit boundary) or selection
			// degenerated; fall back to resolving a single bit.
			next = o.bitFallback(cur, tpath, l)
		}
		if next == nil || next == cur {
			return RouteResult{}, fmt.Errorf("ecan: routing stuck at %s toward %s", cur.Path(), tpath)
		}
		cur = next
		hops = append(hops, cur)
		if len(hops) > o.can.Size()+1 {
			return RouteResult{}, errors.New("ecan: routing loop detected")
		}
	}
	return RouteResult{Members: hops}, nil
}

// bitFallback picks an entry that fixes exactly the next differing bit:
// the region sharing l bits with the target plus the target's bit l. This
// region is never empty when the target exists.
func (o *Overlay) bitFallback(cur *can.Member, tpath can.Path, l int) *can.Member {
	bit := 0
	if l < tpath.Len {
		bit = tpath.Bit(l)
	}
	region := pathChild(tpath.Prefix(l), bit)
	candidates := o.RegionMembers(region)
	if len(candidates) == 0 {
		return nil
	}
	pick := o.selector.Select(cur, region, candidates)
	if pick == nil {
		pick = candidates[0]
	}
	return pick
}

// BuildAllTables eagerly materializes every node's full routing table.
// Experiments that measure construction cost use it; routing alone does
// not need it (entries are selected on demand).
func (o *Overlay) BuildAllTables() {
	for _, m := range o.can.Members() {
		depth := m.Depth()
		rows := (depth + o.digitLen - 1) / o.digitLen
		for row := 0; row < rows; row++ {
			for digit := 0; digit < o.fanout; digit++ {
				if digit == o.digitOf(m.Path(), row) {
					continue // own digit: resolved by deeper rows
				}
				o.Entry(m, row, digit)
			}
		}
	}
}

// TableSize returns the number of selected (non-empty) routing entries
// currently cached for m.
func (o *Overlay) TableSize(m *can.Member) int {
	n, ok := o.nodes[m]
	if !ok {
		return 0
	}
	count := 0
	for i, c := range n.chosen {
		if c && n.digits[i] != nil {
			count++
		}
	}
	return count
}

// BuildUniform constructs a CAN+eCAN with n members on distinct random
// stub hosts, joining at uniform random points. It is the shared setup
// path for experiments.
func BuildUniform(net *topology.Network, n, dim int, digitLen int, sel Selector, rng *simrand.Source) (*Overlay, error) {
	c, err := can.New(dim)
	if err != nil {
		return nil, err
	}
	hosts := net.RandomStubHosts(rng.Split("hosts"), n)
	ptRNG := rng.Split("points")
	for _, h := range hosts {
		if _, err := c.JoinRandom(h, ptRNG); err != nil {
			return nil, err
		}
	}
	return New(c, digitLen, sel)
}
