package ecan

import (
	"testing"

	"gsso/internal/can"
	"gsso/internal/netsim"
	"gsso/internal/simrand"
	"gsso/internal/topology"
)

func testNet(t testing.TB) *topology.Network {
	t.Helper()
	spec := topology.Spec{
		TransitDomains:        3,
		TransitNodesPerDomain: 4,
		StubsPerTransitNode:   3,
		NodesPerStub:          12,
		ExtraTransitEdgeProb:  0.3,
		ExtraStubEdgeProb:     0.2,
		ExtraInterDomainLinks: 2,
		Latency:               topology.GTITMLatency(),
	}
	return topology.MustGenerate(spec, simrand.New(1))
}

func buildECAN(t testing.TB, net *topology.Network, n int, sel Selector) *Overlay {
	t.Helper()
	o, err := BuildUniform(net, n, 2, 0, sel, simrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestNewValidation(t *testing.T) {
	net := testNet(t)
	c, _ := can.New(2)
	sel := RandomSelector{RNG: simrand.New(1)}
	if _, err := New(nil, 0, sel); err == nil {
		t.Fatal("nil CAN accepted")
	}
	if _, err := New(c, 0, nil); err == nil {
		t.Fatal("nil selector accepted")
	}
	if _, err := New(c, 9, sel); err == nil {
		t.Fatal("digitLen 9 accepted")
	}
	o, err := New(c, 0, sel)
	if err != nil {
		t.Fatal(err)
	}
	if o.DigitLen() != 2 {
		t.Fatalf("default digitLen = %d, want CAN dim", o.DigitLen())
	}
	_ = net
}

func TestRouteReachesOwner(t *testing.T) {
	net := testNet(t)
	o := buildECAN(t, net, 100, RandomSelector{RNG: simrand.New(7)})
	rng := simrand.New(9)
	members := o.CAN().Members()
	for i := 0; i < 100; i++ {
		from := members[rng.Intn(len(members))]
		target := can.RandomPoint(2, rng)
		res, err := o.Route(from, target)
		if err != nil {
			t.Fatal(err)
		}
		if res.Members[0] != from {
			t.Fatal("route does not start at source")
		}
		dst := res.Members[len(res.Members)-1]
		if !dst.Contains(target) {
			t.Fatalf("route ended at non-owner of %v", target)
		}
		if dst != o.CAN().Lookup(target) {
			t.Fatal("destination disagrees with Lookup")
		}
	}
}

func TestRouteToEveryMemberZone(t *testing.T) {
	net := testNet(t)
	o := buildECAN(t, net, 64, RandomSelector{RNG: simrand.New(3)})
	members := o.CAN().Members()
	src := members[0]
	for _, dst := range members {
		res, err := o.Route(src, dst.ZoneCenter())
		if err != nil {
			t.Fatalf("route to %v: %v", dst, err)
		}
		if res.Members[len(res.Members)-1] != dst {
			t.Fatalf("route to %v ended at %v", dst, res.Members[len(res.Members)-1])
		}
	}
}

func TestRouteSelf(t *testing.T) {
	net := testNet(t)
	o := buildECAN(t, net, 16, RandomSelector{RNG: simrand.New(3)})
	m := o.CAN().Members()[0]
	res, err := o.Route(m, m.ZoneCenter())
	if err != nil {
		t.Fatal(err)
	}
	if res.Hops() != 0 {
		t.Fatalf("self route hops = %d", res.Hops())
	}
	if res.Latency(netsim.New(net)) != 0 {
		t.Fatal("self route latency nonzero")
	}
}

func TestRouteValidation(t *testing.T) {
	net := testNet(t)
	o := buildECAN(t, net, 8, RandomSelector{RNG: simrand.New(3)})
	if _, err := o.Route(nil, can.Point{0.5, 0.5}); err == nil {
		t.Fatal("nil source accepted")
	}
	m := o.CAN().Members()[0]
	if _, err := o.Route(m, can.Point{2, 2}); err == nil {
		t.Fatal("invalid target accepted")
	}
}

func TestLogarithmicHops(t *testing.T) {
	// eCAN routing must use dramatically fewer hops than basic CAN greedy
	// routing at the same size and dimensionality.
	net := testNet(t)
	o := buildECAN(t, net, 256, RandomSelector{RNG: simrand.New(5)})
	rng := simrand.New(11)
	members := o.CAN().Members()
	ecanHops, canHops := 0, 0
	const trials = 100
	for i := 0; i < trials; i++ {
		from := members[rng.Intn(len(members))]
		target := can.RandomPoint(2, rng)
		res, err := o.Route(from, target)
		if err != nil {
			t.Fatal(err)
		}
		ecanHops += res.Hops()
		path, err := o.CAN().Route(from, target)
		if err != nil {
			t.Fatal(err)
		}
		canHops += len(path) - 1
	}
	avgE := float64(ecanHops) / trials
	avgC := float64(canHops) / trials
	t.Logf("N=256 d=2: eCAN %.2f hops, CAN %.2f hops", avgE, avgC)
	if avgE*1.5 >= avgC {
		t.Fatalf("eCAN (%.2f) not clearly better than CAN (%.2f)", avgE, avgC)
	}
	// log2(256)/2 = 4 digits; allow slack for uneven trees and fallbacks.
	if avgE > 8 {
		t.Fatalf("eCAN hops %.2f exceed ~2x digit bound", avgE)
	}
}

func TestHopBound(t *testing.T) {
	// Every route resolves at least one path bit per hop, so hop count is
	// bounded by the deepest leaf.
	net := testNet(t)
	o := buildECAN(t, net, 200, RandomSelector{RNG: simrand.New(19)})
	maxDepth := 0
	for _, m := range o.CAN().Members() {
		if d := m.Depth(); d > maxDepth {
			maxDepth = d
		}
	}
	rng := simrand.New(20)
	members := o.CAN().Members()
	for i := 0; i < 200; i++ {
		from := members[rng.Intn(len(members))]
		res, err := o.Route(from, can.RandomPoint(2, rng))
		if err != nil {
			t.Fatal(err)
		}
		if res.Hops() > maxDepth {
			t.Fatalf("route used %d hops, max leaf depth %d", res.Hops(), maxDepth)
		}
	}
}

func TestClosestSelectorBeatsRandomStretch(t *testing.T) {
	net := testNet(t)
	env := netsim.New(net)
	rng := simrand.New(13)

	run := func(sel Selector) float64 {
		o, err := BuildUniform(net, 128, 2, 0, sel, simrand.New(77))
		if err != nil {
			t.Fatal(err)
		}
		members := o.CAN().Members()
		pairRNG := simrand.New(5)
		total, count := 0.0, 0
		for i := 0; i < 200; i++ {
			src := members[pairRNG.Intn(len(members))]
			dst := members[pairRNG.Intn(len(members))]
			if src == dst || src.Host == dst.Host {
				continue
			}
			res, err := o.Route(src, dst.ZoneCenter())
			if err != nil {
				t.Fatal(err)
			}
			direct := env.Latency(src.Host, dst.Host)
			if direct <= 0 {
				continue
			}
			total += res.Latency(env) / direct
			count++
		}
		return total / float64(count)
	}

	randomStretch := run(RandomSelector{RNG: rng})
	optimalStretch := run(ClosestSelector{Env: env})
	t.Logf("stretch: random %.3f, optimal %.3f", randomStretch, optimalStretch)
	if optimalStretch >= randomStretch {
		t.Fatalf("optimal selection (%.3f) not better than random (%.3f)", optimalStretch, randomStretch)
	}
	if optimalStretch < 1 {
		t.Fatalf("stretch below 1 is impossible: %v", optimalStretch)
	}
}

func TestEntryCachedAndInvalidated(t *testing.T) {
	net := testNet(t)
	calls := 0
	sel := FuncSelector(func(self *can.Member, region can.Path, cands []*can.Member) *can.Member {
		calls++
		return cands[0]
	})
	o := buildECAN(t, net, 32, sel)
	m := o.CAN().Members()[0]
	digit := o.digitOf(m.Path(), 0) ^ 1 // a digit differing from mine
	e1 := o.Entry(m, 0, digit)
	callsAfterFirst := calls
	e2 := o.Entry(m, 0, digit)
	if calls != callsAfterFirst {
		t.Fatal("entry not cached")
	}
	if e1 != e2 {
		t.Fatal("cached entry changed")
	}
	o.InvalidateEntries(m)
	o.Entry(m, 0, digit)
	if calls == callsAfterFirst {
		t.Fatal("invalidation did not trigger re-selection")
	}
}

func TestSetSelectorResets(t *testing.T) {
	net := testNet(t)
	o := buildECAN(t, net, 32, RandomSelector{RNG: simrand.New(1)})
	m := o.CAN().Members()[0]
	o.Entry(m, 0, 0)
	seen := false
	o.SetSelector(FuncSelector(func(self *can.Member, region can.Path, cands []*can.Member) *can.Member {
		seen = true
		return cands[0]
	}))
	o.Entry(m, 0, 0)
	if !seen {
		t.Fatal("new selector not consulted after SetSelector")
	}
}

func TestBuildAllTablesAndTableSize(t *testing.T) {
	net := testNet(t)
	o := buildECAN(t, net, 64, RandomSelector{RNG: simrand.New(1)})
	m := o.CAN().Members()[0]
	if o.TableSize(m) != 0 {
		t.Fatal("fresh node has entries")
	}
	o.BuildAllTables()
	size := o.TableSize(m)
	if size == 0 {
		t.Fatal("BuildAllTables left node empty")
	}
	// Each member appears in at most log(N) maps (paper §5.1): table rows
	// are bounded by depth/digitLen + 1, entries by rows*(fanout-1).
	rows := (m.Depth() + o.DigitLen() - 1) / o.DigitLen()
	if max := rows * (1<<o.DigitLen() - 1); size > max {
		t.Fatalf("table size %d exceeds bound %d", size, max)
	}
}

func TestRegionMembersBelowLeaf(t *testing.T) {
	net := testNet(t)
	o := buildECAN(t, net, 16, RandomSelector{RNG: simrand.New(1)})
	m := o.CAN().Members()[0]
	deep := m.Path()
	for deep.Len < m.Depth()+3 {
		deep = pathChild(deep, 0)
	}
	got := o.RegionMembers(deep)
	if len(got) != 1 || got[0] != m {
		t.Fatalf("below-leaf region = %v, want the covering leaf", got)
	}
}

func TestRefreshAfterChurn(t *testing.T) {
	net := testNet(t)
	o := buildECAN(t, net, 40, RandomSelector{RNG: simrand.New(1)})
	rng := simrand.New(2)
	// Add members behind the eCAN's back, then Refresh.
	for i := 0; i < 10; i++ {
		if _, err := o.CAN().JoinRandom(net.RandomStubHosts(rng, 1)[0], rng); err != nil {
			t.Fatal(err)
		}
	}
	o.Refresh()
	members := o.CAN().Members()
	src := members[0]
	for i := 0; i < 20; i++ {
		dst := members[rng.Intn(len(members))]
		res, err := o.Route(src, dst.ZoneCenter())
		if err != nil {
			t.Fatal(err)
		}
		if res.Members[len(res.Members)-1] != dst {
			t.Fatal("post-refresh routing broken")
		}
	}
}

func TestDigitOf(t *testing.T) {
	net := testNet(t)
	o := buildECAN(t, net, 8, RandomSelector{RNG: simrand.New(1)})
	p := can.Path{}
	p = pathChild(p, 1)
	p = pathChild(p, 0)
	p = pathChild(p, 1)
	p = pathChild(p, 1)
	if d := o.digitOf(p, 0); d != 0b10 {
		t.Fatalf("digit 0 = %b", d)
	}
	if d := o.digitOf(p, 1); d != 0b11 {
		t.Fatalf("digit 1 = %b", d)
	}
	// Beyond path length: zero-padded.
	if d := o.digitOf(p, 2); d != 0 {
		t.Fatalf("digit 2 = %b", d)
	}
}

func TestPickAvoidingSelf(t *testing.T) {
	o, _ := can.New(2)
	m1, _ := o.Join(1, can.Point{0.2, 0.2})
	m2, _ := o.Join(2, can.Point{0.8, 0.8})
	rng := simrand.New(1)
	for i := 0; i < 20; i++ {
		got := pickAvoidingSelf(m1, []*can.Member{m1, m2}, rng.Intn)
		if got != m2 {
			t.Fatalf("picked self")
		}
	}
	if got := pickAvoidingSelf(m1, []*can.Member{m1}, rng.Intn); got != m1 {
		t.Fatal("sole candidate should be returned even if self")
	}
	if got := pickAvoidingSelf(m1, nil, rng.Intn); got != nil {
		t.Fatal("empty candidates should return nil")
	}
}

func BenchmarkECANRoute(b *testing.B) {
	net := testNet(b)
	o, err := BuildUniform(net, 256, 2, 0, RandomSelector{RNG: simrand.New(7)}, simrand.New(42))
	if err != nil {
		b.Fatal(err)
	}
	members := o.CAN().Members()
	rng := simrand.New(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := members[i%len(members)]
		if _, err := o.Route(from, can.RandomPoint(2, rng)); err != nil {
			b.Fatal(err)
		}
	}
}
