package ecan

import (
	"testing"

	"gsso/internal/can"
	"gsso/internal/simrand"
)

// fillTables routes from every member so the lazy tables cache entries.
func fillTables(t *testing.T, o *Overlay, rng *simrand.Source) {
	t.Helper()
	members := o.CAN().Members()
	for i := 0; i < 2*len(members); i++ {
		from := members[rng.Intn(len(members))]
		if _, err := o.Route(from, can.RandomPoint(2, rng)); err != nil {
			t.Fatal(err)
		}
	}
}

// cachedPointers collects every live cached slot value per member.
func cachedPointers(o *Overlay) map[*can.Member][]*can.Member {
	out := map[*can.Member][]*can.Member{}
	for _, m := range o.CAN().Members() {
		for row := 0; row < o.maxRows; row++ {
			for digit := 0; digit < o.fanout; digit++ {
				if e := o.CachedEntry(m, row, digit); e != nil {
					out[m] = append(out[m], e)
				}
			}
		}
	}
	return out
}

func TestReindexSurgical(t *testing.T) {
	net := testNet(t)
	o := buildECAN(t, net, 64, RandomSelector{RNG: simrand.New(9)})
	rng := simrand.New(17)
	fillTables(t, o, rng)
	before := cachedPointers(o)
	if len(before) == 0 {
		t.Fatal("no cached entries to test against")
	}

	// Take over one member; the handover names exactly who moved.
	victim := o.CAN().Members()[11]
	hand, err := o.CAN().Takeover(victim)
	if err != nil {
		t.Fatal(err)
	}
	invalid := map[*can.Member]bool{victim: true}
	for _, r := range hand.Relocated {
		invalid[r] = true
	}
	rowsBefore := o.maxRows
	o.Reindex(func(m *can.Member) bool { return invalid[m] })
	if o.maxRows != rowsBefore {
		t.Skip("takeover changed table geometry; surgical path not exercised")
	}

	after := cachedPointers(o)
	survivorsKept := 0
	for m, entries := range after {
		if invalid[m] {
			t.Fatalf("relocated member %v kept stale cached entries", m.Host)
		}
		for _, e := range entries {
			if invalid[e] {
				t.Fatalf("cached slot of %v still points at relocated member %v", m.Host, e.Host)
			}
			if !o.CAN().IsMember(e) {
				t.Fatalf("cached slot of %v points outside the overlay", m.Host)
			}
		}
		if len(before[m]) > 0 && len(entries) > 0 {
			survivorsKept++
		}
	}
	if survivorsKept == 0 {
		t.Fatal("Reindex wiped every cached entry; expected surgical invalidation")
	}
	if _, ok := after[victim]; ok {
		t.Fatal("departed member still has a routing node")
	}

	// Routing still works end to end on the reindexed tables.
	fillTables(t, o, rng)
	if err := o.CAN().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestReindexMatchesRefresh pins equivalence of outcomes: after the same
// takeover, a reindexed overlay and a refreshed one route every probe to
// the same owner (cached entries may differ; correctness may not).
func TestReindexMatchesRefresh(t *testing.T) {
	build := func() *Overlay {
		o := buildECAN(t, testNet(t), 48, RandomSelector{RNG: simrand.New(4)})
		fillTables(t, o, simrand.New(5))
		return o
	}
	a, b := build(), build()
	for _, o := range []*Overlay{a, b} {
		victim := o.CAN().Members()[5]
		hand, err := o.CAN().Takeover(victim)
		if err != nil {
			t.Fatal(err)
		}
		invalid := map[*can.Member]bool{victim: true}
		for _, r := range hand.Relocated {
			invalid[r] = true
		}
		if o == a {
			o.Reindex(func(m *can.Member) bool { return invalid[m] })
		} else {
			o.Refresh()
		}
	}
	rng := simrand.New(6)
	ma, mb := a.CAN().Members(), b.CAN().Members()
	for i := 0; i < 80; i++ {
		p := can.RandomPoint(2, rng)
		idx := rng.Intn(len(ma))
		ra, err := a.Route(ma[idx], p)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Route(mb[idx], p)
		if err != nil {
			t.Fatal(err)
		}
		la := ra.Members[len(ra.Members)-1]
		lb := rb.Members[len(rb.Members)-1]
		if la.Path() != lb.Path() {
			t.Fatalf("probe %d: reindexed route ends at %v, refreshed at %v", i, la.Path(), lb.Path())
		}
	}
}
