package ecan

import (
	"testing"

	"gsso/internal/can"
	"gsso/internal/netsim"
	"gsso/internal/simrand"
)

func TestCachedEntryAndInvalidateEntry(t *testing.T) {
	net := testNet(t)
	o := buildECAN(t, net, 48, RandomSelector{RNG: simrand.New(3)})
	m := o.CAN().Members()[0]
	digit := o.digitOf(m.Path(), 0) ^ 1

	if o.CachedEntry(m, 0, digit) != nil {
		t.Fatal("entry cached before selection")
	}
	e := o.Entry(m, 0, digit)
	if e == nil {
		t.Fatal("no entry selected")
	}
	if got := o.CachedEntry(m, 0, digit); got != e {
		t.Fatalf("CachedEntry = %v, want %v", got, e)
	}
	o.InvalidateEntry(m, 0, digit)
	if o.CachedEntry(m, 0, digit) != nil {
		t.Fatal("entry survived per-slot invalidation")
	}
	// Other slots untouched.
	other := o.Entry(m, 0, digit^2%4)
	o.InvalidateEntry(m, 0, digit)
	if digit^2%4 != digit && other != nil && o.CachedEntry(m, 0, digit^2%4) != other {
		t.Fatal("unrelated slot invalidated")
	}
}

func TestSlotAPIsOnUnknownMember(t *testing.T) {
	net := testNet(t)
	o := buildECAN(t, net, 16, RandomSelector{RNG: simrand.New(3)})
	stranger := &can.Member{Host: 9999}
	if o.CachedEntry(stranger, 0, 0) != nil {
		t.Fatal("cached entry for unknown member")
	}
	o.InvalidateEntry(stranger, 0, 0) // must not panic
}

func TestSlotOutOfRange(t *testing.T) {
	net := testNet(t)
	o := buildECAN(t, net, 16, RandomSelector{RNG: simrand.New(3)})
	m := o.CAN().Members()[0]
	o.Node(m) // materialize
	if o.CachedEntry(m, 1000, 0) != nil {
		t.Fatal("out-of-range slot returned entry")
	}
	o.InvalidateEntry(m, 1000, 0) // must not panic
	if o.Entry(m, 1000, 0) != nil {
		t.Fatal("out-of-range Entry returned something")
	}
}

func TestRouteResultLatencySums(t *testing.T) {
	net := testNet(t)
	env := netsim.New(net)
	o := buildECAN(t, net, 32, RandomSelector{RNG: simrand.New(5)})
	members := o.CAN().Members()
	res, err := o.Route(members[0], members[10].ZoneCenter())
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := 1; i < len(res.Members); i++ {
		want += env.Latency(res.Members[i-1].Host, res.Members[i].Host)
	}
	if got := res.Latency(env); got != want {
		t.Fatalf("Latency = %v, want %v", got, want)
	}
}

func TestRegionMembersUnknownRegion(t *testing.T) {
	net := testNet(t)
	o := buildECAN(t, net, 16, RandomSelector{RNG: simrand.New(5)})
	// A region whose prefix chain is broken (descends through an internal
	// region with >1 members on the other side) yields nil.
	bogus := can.Path{Bits: ^uint64(0), Len: 40}
	_ = o.RegionMembers(bogus) // must not panic; result may be nil or a covering leaf
}
