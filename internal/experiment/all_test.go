package experiment

import (
	"bytes"
	"strconv"
	"testing"
)

// TestAllExperimentsRunAtQuickScale executes every registered experiment
// end to end: tables must be non-empty, render cleanly, and every cell
// that looks like a stretch must be >= 1. This is the coverage backstop
// for the figures whose shapes are asserted in detail elsewhere.
func TestAllExperimentsRunAtQuickScale(t *testing.T) {
	sc := quickScale()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if len(tb.Columns) == 0 || len(tb.Rows) == 0 {
					t.Fatalf("table %s empty", tb.ID)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Columns) {
						t.Fatalf("table %s ragged row %v", tb.ID, row)
					}
				}
				var buf bytes.Buffer
				if err := tb.Render(&buf); err != nil {
					t.Fatal(err)
				}
				if err := tb.WriteCSV(&buf); err != nil {
					t.Fatal(err)
				}
				if err := Plot(tb, &buf, 40, 10); err != nil {
					t.Fatal(err)
				}
				// Stretch columns never dip below 1.
				for c, name := range tb.Columns {
					if name != "stretch" && name != "nearest-neighbor stretch" {
						continue
					}
					for r, row := range tb.Rows {
						v, err := strconv.ParseFloat(row[c], 64)
						if err != nil {
							continue
						}
						if v < 1 {
							t.Fatalf("table %s row %d: stretch %v < 1", tb.ID, r, v)
						}
					}
				}
			}
		})
	}
}
