package experiment

import (
	"os"
	"testing"
)

// TestChurnReconvergence is the soak gate (`make soak`): under every
// seeded fault plan, replicated refresh (k=2) must pull record recall
// back above 99% within three virtual refresh intervals of the last
// churn wave, and the whole run must be bit-for-bit deterministic.
// Set SOAK=1 for the full-scale overlay.
func TestChurnReconvergence(t *testing.T) {
	sc := Quick(1)
	if os.Getenv("SOAK") != "" {
		sc = Full(1)
	}
	net, err := buildNet(TSKLarge, LatGTITM, sc)
	if err != nil {
		t.Fatal(err)
	}
	st, err := buildStack(net, sc, stackConfig{
		overlayN:  sc.OverlayN / 2,
		landmarks: sc.Landmarks,
		label:     "extchurn",
	})
	if err != nil {
		t.Fatal(err)
	}
	members := st.overlay.CAN().Members()

	const k, ticks, maxReconverge = 2, 20, 3
	for _, scen := range churnPlans(st, net, members) {
		o, err := runChurnRecall(st, members, scen.plan, k, ticks, churnInterval)
		if err != nil {
			t.Fatal(err)
		}
		if o.finalRecall < churnRecallTarget {
			t.Errorf("%s: final recall %.3f, want >= %.2f", scen.name, o.finalRecall, churnRecallTarget)
		}
		if o.reconvergeTicks < 0 || o.reconvergeTicks > maxReconverge {
			t.Errorf("%s: reconverged in %d intervals after the last wave, want 0..%d",
				scen.name, o.reconvergeTicks, maxReconverge)
		}

		// Same plan, same relative clock, same probe sequence (the run
		// rebases both) => identical recall trace.
		again, err := runChurnRecall(st, members, scen.plan, k, ticks, churnInterval)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.recalls) != len(o.recalls) {
			t.Fatalf("%s: replay produced %d ticks, want %d", scen.name, len(again.recalls), len(o.recalls))
		}
		for i := range o.recalls {
			if o.recalls[i] != again.recalls[i] {
				t.Errorf("%s: tick %d recall %.4f on replay, want %.4f — fault plan is not deterministic",
					scen.name, i, again.recalls[i], o.recalls[i])
			}
		}
	}
}
