// Package engine schedules experiment work units across a bounded worker
// pool and memoizes expensive shared artifacts (generated topologies,
// landmark-vector indexes) with single-flight semantics.
//
// The design invariant is determinism by construction: a unit's identity —
// its ordinal index in the sweep that emitted it — decides both where its
// result lands and which simrand streams it derives (via Split labels that
// encode the unit, never the worker). Scheduling therefore only changes
// wall-clock time; every table cell, probe count, and message count is
// byte-identical whether the pool has one worker or sixty-four.
//
// The pool is deadlock-free under nesting: Map never blocks waiting for a
// worker slot. If no slot is free the caller runs the unit inline, so a
// unit that itself calls Map (an experiment fanning out sweep points from
// inside topobench's experiment-level fan-out) always makes progress.
package engine

import (
	"os"
	"runtime"
	"strconv"
	"sync"
)

var (
	workersMu sync.Mutex
	// workers is the pool width; sem has capacity workers-1 because the
	// caller of Map is itself a worker (workers==1 means a nil channel:
	// every unit runs inline, fully sequential).
	workers int
	sem     chan struct{}
)

func init() {
	SetWorkers(defaultWorkers())
}

// defaultWorkers is GOMAXPROCS, overridable via GSSO_WORKERS (used by the
// Makefile's race gate to force parallelism past the core count).
func defaultWorkers() int {
	if s := os.Getenv("GSSO_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers resizes the pool. n < 1 resets to the default width. Already
// running units keep their slots; the new width applies to future spawns.
func SetWorkers(n int) {
	if n < 1 {
		n = defaultWorkers()
	}
	workersMu.Lock()
	defer workersMu.Unlock()
	workers = n
	if n > 1 {
		sem = make(chan struct{}, n-1)
	} else {
		sem = nil
	}
}

// Workers returns the current pool width.
func Workers() int {
	workersMu.Lock()
	defer workersMu.Unlock()
	return workers
}

// Map runs fn(0..n-1) across the pool and returns the results in ordinal
// order. Units whose spawn would exceed the pool width run inline in the
// caller, so nested Maps cannot deadlock. On failure Map returns the error
// of the lowest-indexed failing unit — deterministic regardless of which
// unit was observed to fail first — after all units finish.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	workersMu.Lock()
	pool := sem
	workersMu.Unlock()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		spawned := false
		if pool != nil {
			select {
			case pool <- struct{}{}:
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					defer func() { <-pool }()
					out[i], errs[i] = fn(i)
				}(i)
				spawned = true
			default:
			}
		}
		if !spawned {
			out[i], errs[i] = fn(i)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
