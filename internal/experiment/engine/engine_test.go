package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapOrdinalOrder(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		SetWorkers(w)
		out, err := Map(100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
	SetWorkers(0)
}

func TestMapSequentialWhenSingleWorker(t *testing.T) {
	SetWorkers(1)
	defer SetWorkers(0)
	// With one worker every unit runs inline in call order; a shared
	// variable without synchronization must not race (run under -race).
	seen := make([]int, 0, 50)
	if _, err := Map(50, func(i int) (struct{}, error) {
		seen = append(seen, i)
		return struct{}{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("single worker ran out of order: seen[%d] = %d", i, v)
		}
	}
}

func TestMapNestedDoesNotDeadlock(t *testing.T) {
	SetWorkers(2)
	defer SetWorkers(0)
	// Every outer unit fans out inner units; with only one spare slot the
	// inline fallback must keep all of them progressing.
	out, err := Map(8, func(i int) (int, error) {
		inner, err := Map(8, func(j int) (int, error) { return i + j, nil })
		if err != nil {
			return 0, err
		}
		sum := 0
		for _, v := range inner {
			sum += v
		}
		return sum, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		want := 8*i + 28
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestMapReturnsLowestIndexedError(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	e3 := errors.New("unit 3")
	e7 := errors.New("unit 7")
	_, err := Map(10, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, e3
		case 7:
			return 0, e7
		}
		return i, nil
	})
	if err != e3 {
		t.Fatalf("err = %v, want the lowest-indexed unit's error %v", err, e3)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	SetWorkers(3)
	defer SetWorkers(0)
	var cur, peak atomic.Int64
	var mu sync.Mutex
	if _, err := Map(64, func(i int) (struct{}, error) {
		n := cur.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		cur.Add(-1)
		return struct{}{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 3 {
		t.Fatalf("observed %d concurrent units with 3 workers", peak.Load())
	}
}

func TestMemoSingleFlight(t *testing.T) {
	var m Memo[int, string]
	var fills atomic.Int64
	SetWorkers(8)
	defer SetWorkers(0)
	// Many concurrent callers per key; each key must fill exactly once.
	if _, err := Map(64, func(i int) (struct{}, error) {
		v, err := m.Do(i%4, func() (string, error) {
			fills.Add(1)
			return fmt.Sprintf("key%d", i%4), nil
		})
		if err != nil {
			return struct{}{}, err
		}
		if want := fmt.Sprintf("key%d", i%4); v != want {
			return struct{}{}, fmt.Errorf("got %q want %q", v, want)
		}
		return struct{}{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if fills.Load() != 4 {
		t.Fatalf("fill ran %d times for 4 distinct keys", fills.Load())
	}
	hits, misses := m.Stats()
	if misses != 4 || hits != 60 {
		t.Fatalf("stats = %d hits / %d misses, want 60/4", hits, misses)
	}
	if m.Len() != 4 {
		t.Fatalf("Len = %d, want 4", m.Len())
	}
}

func TestMemoCachesErrors(t *testing.T) {
	var m Memo[string, int]
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 3; i++ {
		_, err := m.Do("k", func() (int, error) { calls++; return 0, boom })
		if err != boom {
			t.Fatalf("err = %v, want %v", err, boom)
		}
	}
	if calls != 1 {
		t.Fatalf("failing fill ran %d times, want 1", calls)
	}
}
