package engine

import (
	"sync"
	"sync/atomic"
)

// Memo is a process-wide single-flight cache: the first Do for a key runs
// fill exactly once while concurrent callers for the same key block on it;
// every later Do returns the cached value instantly. Values are never
// evicted — the cache holds expensive immutable artifacts (generated
// topologies, landmark-vector matrices) whose distinct-key population is
// bounded by the experiment suite's parameter space.
//
// Cached values MUST be treated as immutable by every caller: the same
// pointer is handed to all of them, possibly concurrently. Mutable
// per-caller state (clocks, meters, perturbations) belongs in a wrapper
// layered over the cached artifact, never inside it.
type Memo[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*memoEntry[V]
	hits    atomic.Int64
	misses  atomic.Int64
}

type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// Do returns the cached value for key, running fill to produce it on first
// use. A fill error is cached too: the suite's artifacts are deterministic,
// so retrying an identical build would fail identically.
func (m *Memo[K, V]) Do(key K, fill func() (V, error)) (V, error) {
	m.mu.Lock()
	if m.entries == nil {
		m.entries = make(map[K]*memoEntry[V])
	}
	e, ok := m.entries[key]
	if !ok {
		e = &memoEntry[V]{}
		m.entries[key] = e
		m.misses.Add(1)
	} else {
		m.hits.Add(1)
	}
	m.mu.Unlock()
	e.once.Do(func() { e.val, e.err = fill() })
	return e.val, e.err
}

// Stats returns how many Do calls hit an existing entry and how many
// created one. Misses equals the number of distinct keys ever filled —
// the "≤ one generation per distinct key" invariant is misses == Len().
func (m *Memo[K, V]) Stats() (hits, misses int64) {
	return m.hits.Load(), m.misses.Load()
}

// Len returns the number of distinct keys cached.
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}
