package experiment

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
)

func quickScale() Scale { return Quick(1) }

// cell parses a numeric table cell.
func cell(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tb.Rows[row][col], err)
	}
	return v
}

func TestScaleValidate(t *testing.T) {
	if err := Full(1).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Quick(1).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Quick(1)
	bad.TopoScale = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("bad scale accepted")
	}
	bad2 := Quick(1)
	bad2.RTTSweep = nil
	if err := bad2.Validate(); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

func TestQueriesFor(t *testing.T) {
	sc := Quick(1)
	if got := sc.QueriesFor(100); got != 200 {
		t.Fatalf("QueriesFor(100) = %d", got)
	}
	if got := sc.QueriesFor(100000); got != sc.Queries {
		t.Fatalf("QueriesFor cap broken: %d", got)
	}
	if got := sc.QueriesFor(1); got != 16 {
		t.Fatalf("QueriesFor floor broken: %d", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Columns: []string{"a", "bb"}}
	tb.AddRow("1")            // short row padded
	tb.AddRow("2", "3", "44") // long row truncated
	tb.AddRowf(7, 1.5, "ignored")
	tb.Note("note %d", 9)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "# note 9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	var csvBuf bytes.Buffer
	if err := tb.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csvBuf.String(), "a,bb\n") {
		t.Fatalf("csv header wrong: %q", csvBuf.String())
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	// Every table and figure of the evaluation must be covered.
	for _, want := range []string{"fig2", "fig3", "fig4", "fig5", "fig6",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"tab1", "tab2", "figB", "ext-load", "ext-pubsub", "ext-chord",
		"ext-tacan", "ext-groups", "ext-hier", "ext-failure", "ext-pastry",
		"ext-svd", "ext-ordering"} {
		if !ids[want] {
			t.Fatalf("experiment %s missing from registry", want)
		}
	}
	if _, ok := ByID("fig2"); !ok {
		t.Fatal("ByID broken")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID found a ghost")
	}
}

func TestFig2Shape(t *testing.T) {
	tables, err := RunFig2(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	ecanCol := len(tb.Columns) - 1
	last := len(tb.Rows) - 1
	// eCAN always beats same-dimensionality CAN (d=2, column 1), at every
	// size. (Against higher-dimensional CANs the paper's crossover only
	// appears at scale, so quick runs assert only the same-d comparison.)
	for r := range tb.Rows {
		if cell(t, tb, r, ecanCol) >= cell(t, tb, r, 1) {
			t.Fatalf("row %d: eCAN (%.2f) not under CAN d=2 (%.2f)",
				r, cell(t, tb, r, ecanCol), cell(t, tb, r, 1))
		}
	}
	// CAN d=2 hops grow with N; eCAN grows much more slowly.
	if cell(t, tb, last, 1) <= cell(t, tb, 0, 1) {
		t.Fatal("CAN d=2 hops did not grow with N")
	}
	canGrowth := cell(t, tb, last, 1) / cell(t, tb, 0, 1)
	ecanGrowth := cell(t, tb, last, ecanCol) / cell(t, tb, 0, ecanCol)
	if ecanGrowth >= canGrowth {
		t.Fatalf("eCAN growth (%.2fx) not slower than CAN (%.2fx)", ecanGrowth, canGrowth)
	}
}

func TestFig3Shape(t *testing.T) {
	tables, err := RunFig3(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	// At the largest small budget, hybrid must beat both ERS and the
	// hill-climbing heuristic decisively.
	last := len(tb.Rows) - 1
	ers, hill, hybrid := cell(t, tb, last, 1), cell(t, tb, last, 2), cell(t, tb, last, 3)
	if hybrid*1.5 >= ers {
		t.Fatalf("hybrid (%.2f) not clearly better than ERS (%.2f)", hybrid, ers)
	}
	if hybrid >= hill {
		t.Fatalf("hybrid (%.2f) not better than hill climbing (%.2f)", hybrid, hill)
	}
	if hybrid > 2.5 {
		t.Fatalf("hybrid stretch %.2f too far from 1", hybrid)
	}
	// Hybrid improves (weakly) from the first to the last budget.
	if cell(t, tb, last, 3) > cell(t, tb, 0, 3) {
		t.Fatal("hybrid did not improve with budget")
	}
	// Hill climbing plateaus: its improvement from mid to last budget is
	// small because it gets stuck in local minima.
	mid := len(tb.Rows) / 2
	if hillMid := cell(t, tb, mid, 2); hill < hillMid*0.5 {
		t.Logf("note: hill climbing improved unusually much: %.2f -> %.2f", hillMid, hill)
	}
}

func TestFig4Shape(t *testing.T) {
	tables, err := RunFig4(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	first, last := cell(t, tb, 0, 1), cell(t, tb, len(tb.Rows)-1, 1)
	if last > first {
		t.Fatalf("ERS got worse with budget: %.2f -> %.2f", first, last)
	}
	// At the largest budget (near-exhaustive at quick scale) ERS is good,
	// demonstrating that it only works after probing ~the whole overlay.
	if last > 1.3 {
		t.Fatalf("near-exhaustive ERS stretch %.2f", last)
	}
}

func TestFig5Fig6SmallTopologyHarder(t *testing.T) {
	sc := quickScale()
	t5, err := RunFig5(sc)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := RunFig3(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the hybrid at the same mid budget: tsk-small is at least as
	// hard as tsk-large (dense stubs defeat the landmarks).
	mid := len(sc.RTTSweep) / 2
	small := cell(t, t5[0], mid, 1)
	large := cell(t, t3[0], mid, 3)
	t.Logf("hybrid stretch at mid budget: tsk-small %.3f, tsk-large %.3f", small, large)
	if small < large*0.7 {
		t.Fatalf("tsk-small (%.2f) unexpectedly much easier than tsk-large (%.2f)", small, large)
	}
	t6, err := RunFig6(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(t6[0].Rows) != len(sc.ERSSweep) {
		t.Fatal("fig6 row count wrong")
	}
}

func TestFig10Shape(t *testing.T) {
	sc := quickScale()
	tables, err := RunFig10(sc)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	optCol := len(tb.Columns) - 1
	last := len(tb.Rows) - 1
	for r := range tb.Rows {
		for c := 1; c < optCol; c++ {
			if cell(t, tb, r, c) < 1 {
				t.Fatalf("stretch below 1 at row %d col %d", r, c)
			}
		}
	}
	// More RTTs should not hurt (compare max landmark column first/last).
	lmCol := optCol - 1
	if cell(t, tb, last, lmCol) > cell(t, tb, 0, lmCol)*1.05 {
		t.Fatalf("stretch rose with budget: %.3f -> %.3f",
			cell(t, tb, 0, lmCol), cell(t, tb, last, lmCol))
	}
	// At the largest budget, the best landmark series is near optimal.
	opt := cell(t, tb, last, optCol)
	best := cell(t, tb, last, 1)
	for c := 2; c < optCol; c++ {
		if v := cell(t, tb, last, c); v < best {
			best = v
		}
	}
	if best > opt*1.6+0.4 {
		t.Fatalf("best series %.3f too far above optimal %.3f", best, opt)
	}
}

func TestFig14Shape(t *testing.T) {
	tables, err := RunFig14(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	for r := range tb.Rows {
		largeGS, smallGS := cell(t, tb, r, 1), cell(t, tb, r, 2)
		largeRnd, smallRnd := cell(t, tb, r, 3), cell(t, tb, r, 4)
		if largeGS >= largeRnd {
			t.Fatalf("row %d: global state (%.2f) not better than random (%.2f) on tsk-large",
				r, largeGS, largeRnd)
		}
		if smallGS >= smallRnd {
			t.Fatalf("row %d: global state (%.2f) not better than random (%.2f) on tsk-small",
				r, smallGS, smallRnd)
		}
	}
}

func TestFig16Shape(t *testing.T) {
	tables, err := RunFig16(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	first, last := 0, len(tb.Rows)-1
	// Condensing (higher reduction rate) concentrates the maps onto fewer
	// owners with more entries each.
	if cell(t, tb, last, 3) > cell(t, tb, first, 3) {
		t.Fatal("owners grew with reduction rate")
	}
	if cell(t, tb, last, 1) < cell(t, tb, first, 1) {
		t.Fatal("entries/node fell with reduction rate")
	}
	// Stretch stays in a sane band throughout.
	for r := range tb.Rows {
		s := cell(t, tb, r, 4)
		if s < 1 || s > 10 {
			t.Fatalf("stretch %v out of band at row %d", s, r)
		}
	}
}

func TestTab1Trace(t *testing.T) {
	tables, err := RunTab1(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != 6 {
		t.Fatalf("trace has %d steps", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[1] == "" || row[2] == "" {
			t.Fatalf("empty trace cell: %v", row)
		}
	}
}

func TestTab2AndFigB(t *testing.T) {
	tabs, err := RunTab2(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs[0].Rows) != 4 {
		t.Fatal("tab2 should list 4 parameters")
	}
	figs, err := RunFigB(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatal("figB should produce grid + walk")
	}
	walk := figs[1]
	if len(walk.Rows) != 16 {
		t.Fatalf("walk rows = %d", len(walk.Rows))
	}
	for r := 1; r < len(walk.Rows); r++ {
		if walk.Rows[r][2] != "1" {
			t.Fatalf("non-adjacent hilbert step at row %d: %v", r, walk.Rows[r])
		}
	}
}

func TestExtLoadShape(t *testing.T) {
	tables, err := RunExtLoad(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Highest alpha should not have higher peak utilization than alpha=0
	// by any meaningful margin.
	peak0 := cell(t, tb, 0, 2)
	peakHi := cell(t, tb, len(tb.Rows)-1, 2)
	t.Logf("peak utilization: alpha=0 %.2f, alpha=4 %.2f", peak0, peakHi)
	if peakHi > peak0*1.15 {
		t.Fatalf("load-aware selection worsened peak: %.2f vs %.2f", peakHi, peak0)
	}
}

func TestExtPubSubShape(t *testing.T) {
	tables, err := RunExtPubSub(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var stale, poll, ps struct{ last, msgs, sel float64 }
	for r, row := range tb.Rows {
		rec := struct{ last, msgs, sel float64 }{
			cell(t, tb, r, 2), cell(t, tb, r, 3), cell(t, tb, r, 5),
		}
		switch row[0] {
		case "stale":
			stale = rec
		case "poll":
			poll = rec
		case "pubsub":
			ps = rec
		}
	}
	t.Logf("stretch@last: stale %.3f poll %.3f pubsub %.3f; selection probes: %v %v %v",
		stale.last, poll.last, ps.last, stale.sel, poll.sel, ps.sel)
	if poll.sel <= stale.sel {
		t.Fatal("polling should cost more selection probes than doing nothing")
	}
	if ps.sel >= poll.sel*0.9 {
		t.Fatalf("pub/sub selection probes (%v) should be well under polling (%v)", ps.sel, poll.sel)
	}
	if ps.last > stale.last*1.1 {
		t.Fatalf("pub/sub (%.3f) worse than stale (%.3f)", ps.last, stale.last)
	}
}

func TestExtChordShape(t *testing.T) {
	tables, err := RunExtChord(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	chordS := cell(t, tb, 0, 1)
	flatS := cell(t, tb, 1, 1)
	randS := cell(t, tb, 2, 1)
	t.Logf("chord %.3f flat %.3f random %.3f", chordS, flatS, randS)
	if chordS >= randS || flatS >= randS {
		t.Fatal("soft-state methods not better than random")
	}
	if chordS > flatS*2+0.5 {
		t.Fatalf("chord-hosted (%.3f) too far from flat index (%.3f)", chordS, flatS)
	}
}

func TestExtTACANShape(t *testing.T) {
	tables, err := RunExtTACAN(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	parsePct := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatalf("bad percent %q", s)
		}
		return v
	}
	uniformTop := parsePct(tb.Rows[0][1])
	tacanTop := parsePct(tb.Rows[1][1])
	uniformMaxNb := cell(t, tb, 0, 2)
	tacanMaxNb := cell(t, tb, 1, 2)
	t.Logf("top-10%% space: uniform %.1f%%, tacan %.1f%%; max neighbors %v vs %v",
		uniformTop, tacanTop, uniformMaxNb, tacanMaxNb)
	if tacanTop <= uniformTop {
		t.Fatal("topology-aware layout did not skew zone volumes")
	}
	if tacanMaxNb < uniformMaxNb {
		t.Fatal("topology-aware layout did not inflate neighbor sets")
	}
}

func TestExtGroupsShape(t *testing.T) {
	tables, err := RunExtGroups(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	single := cell(t, tb, 0, 1)
	best := single
	for r := 1; r < len(tb.Rows); r++ {
		if v := cell(t, tb, r, 1); v < best {
			best = v
		}
	}
	t.Logf("stretch: 1 group %.3f, best grouped %.3f", single, best)
	// Grouping must not be dramatically worse, and all values sane.
	for r := range tb.Rows {
		if v := cell(t, tb, r, 1); v < 1 || v > 50 {
			t.Fatalf("stretch %v out of band", v)
		}
	}
	if best > single*1.3 {
		t.Fatalf("grouping much worse than single curve: %.3f vs %.3f", best, single)
	}
}

func TestExtHierShape(t *testing.T) {
	tables, err := RunExtHier(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	globalOnly := cell(t, tb, 0, 2)
	hier := cell(t, tb, 2, 2)
	t.Logf("stretch: global-only %.3f, hierarchical %.3f", globalOnly, hier)
	if hier > globalOnly*1.05 {
		t.Fatalf("hierarchy (%.3f) worse than its own first stage (%.3f)", hier, globalOnly)
	}
	for r := range tb.Rows {
		if v := cell(t, tb, r, 2); v < 1 || v > 60 {
			t.Fatalf("stretch %v out of band", v)
		}
	}
}

func TestExtOrderingShape(t *testing.T) {
	tables, err := RunExtOrdering(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	ordering := cell(t, tb, 0, 2)
	vector := cell(t, tb, 1, 2)
	hybrid := cell(t, tb, 2, 2)
	t.Logf("stretch: ordering %.3f, vector-top1 %.3f, hybrid %.3f", ordering, vector, hybrid)
	if vector > ordering*1.1 {
		t.Fatalf("vector ranking (%.3f) worse than ordering clusters (%.3f)", vector, ordering)
	}
	if hybrid >= ordering {
		t.Fatalf("hybrid (%.3f) not better than ordering (%.3f)", hybrid, ordering)
	}
}

func TestExtSVDShape(t *testing.T) {
	tables, err := RunExtSVD(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) < 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	raw := cell(t, tb, 0, 2)
	bestSVD := math.Inf(1)
	for r := 1; r < len(tb.Rows); r++ {
		if v := cell(t, tb, r, 2); v < bestSVD {
			bestSVD = v
		}
	}
	t.Logf("stretch: raw %.3f, best SVD %.3f", raw, bestSVD)
	// The low-rank basis must hold its own against the full noisy space.
	if bestSVD > raw*1.15 {
		t.Fatalf("SVD ranking (%.3f) much worse than raw (%.3f)", bestSVD, raw)
	}
	for r := range tb.Rows {
		if v := cell(t, tb, r, 2); v < 1 || v > 60 {
			t.Fatalf("stretch %v out of band", v)
		}
	}
}

func TestExtPastryShape(t *testing.T) {
	tables, err := RunExtPastry(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	random := cell(t, tb, 0, 1)
	lmk := cell(t, tb, 1, 1)
	opt := cell(t, tb, 2, 1)
	t.Logf("pastry stretch: random %.3f, landmark+rtt %.3f, optimal %.3f", random, lmk, opt)
	if lmk >= random*0.8 {
		t.Fatalf("landmark selection (%.3f) not clearly better than random (%.3f)", lmk, random)
	}
	if opt > lmk {
		t.Fatalf("oracle (%.3f) worse than landmark (%.3f)", opt, lmk)
	}
}

func TestExtFailureShape(t *testing.T) {
	tables, err := RunExtFailure(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	get := func(policy string, col int) float64 {
		for r, row := range tb.Rows {
			if row[0] == policy {
				return cell(t, tb, r, col)
			}
		}
		t.Fatalf("policy %s missing", policy)
		return 0
	}
	// Reactive hits dead entries during selection; polling mostly purges
	// them first (dead owners cannot poll, so a few slip through); the
	// proactive withdrawal leaves none.
	if get("reactive", 2) == 0 {
		t.Fatal("reactive policy never encountered dead entries")
	}
	if get("poll", 2) >= get("reactive", 2) {
		t.Fatal("polling did not reduce dead-entry encounters")
	}
	if get("proactive", 2) != 0 {
		t.Fatal("proactive policy still hit dead entries")
	}
	// Poll pays liveness probes; proactive pays withdrawals; neither pays
	// the other's cost.
	if get("poll", 3) == 0 || get("poll", 4) != 0 {
		t.Fatal("poll cost accounting wrong")
	}
	if get("proactive", 4) == 0 || get("proactive", 3) != 0 {
		t.Fatal("proactive cost accounting wrong")
	}
	// All policies converge to similar stretch.
	rs, ps, as := get("reactive", 1), get("poll", 1), get("proactive", 1)
	t.Logf("stretch: reactive %.3f poll %.3f proactive %.3f", rs, ps, as)
	for _, s := range []float64{rs, ps, as} {
		if s < 1 || s > 12 {
			t.Fatalf("stretch %v out of band", s)
		}
	}
	// Proactive leaves nothing stale.
	if get("proactive", 5) != 0 {
		t.Fatal("proactive left stale entries")
	}
}

func TestRunAndRender(t *testing.T) {
	e, _ := ByID("tab2")
	var buf bytes.Buffer
	if err := RunAndRender(e, quickScale(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tab2 completed") {
		t.Fatal("completion line missing")
	}
}
