package experiment

import (
	"fmt"
	"math"

	"gsso/internal/can"
	"gsso/internal/netsim"
	"gsso/internal/topology"
)

// RunExtChurn measures what the paper asserts but never plots: that
// "transient losses heal on the next refresh". A seeded netsim.FaultPlan
// injects churn waves (and optionally probe loss plus a stub-domain
// partition) while members keep refreshing their soft-state records onto
// the k nearest ring owners of their landmark number. The metric is
// record recall — the fraction of live members whose record is
// retrievable from at least one live owner — tracked per virtual refresh
// interval, with the reconvergence time after the last wave.
//
// Replication is the ReCord/DOAT tradeoff made concrete: k=1 loses every
// record whose single owner crashes (recall dips until those members
// refresh onto the repaired ring), k>=2 rides out any k-1 owner crashes
// at k times the refresh message cost.

// churnRecallTarget is the recall threshold counting as reconverged.
const churnRecallTarget = 0.99

// churnOutcome summarizes one replicated-refresh simulation.
type churnOutcome struct {
	minRecall       float64
	finalRecall     float64
	reconvergeTicks int // refresh intervals after the last wave until recall >= target; -1 = never
	probes          int64
	recalls         []float64 // recall per tick, for plots and assertions
}

// runChurnRecall simulates refresh-driven replicated soft-state under a
// fault plan. Each tick advances the virtual clock one refresh interval;
// every live member then re-stores its record on its k ring owners (each
// store is one metered probe that the plan may drop, sever, or time out),
// a crashed owner loses its shard, and records expire after 3 intervals
// without a successful refresh — the wire layer's ttl = 3*interval rule.
func runChurnRecall(st *stack, members []*can.Member, plan *netsim.FaultPlan, k, ticks int, interval netsim.Time) (churnOutcome, error) {
	numbers := make([]uint64, len(members))
	var span uint64
	for i, m := range members {
		num, ok := st.store.Number(m)
		if !ok {
			return churnOutcome{}, fmt.Errorf("experiment: member %d has no landmark number", i)
		}
		numbers[i] = num
		if num+1 > span {
			span = num + 1
		}
	}
	// Owner ring: the wire layer's slot rule, numbers mapped
	// proportionally onto the member list.
	owners := func(num uint64, k int) []int {
		slot := int(num * uint64(len(members)) / span)
		if slot >= len(members) {
			slot = len(members) - 1
		}
		out := make([]int, 0, k)
		for i := 0; i < k; i++ {
			out = append(out, (slot+i)%len(members))
		}
		return out
	}

	// Plans are authored against t=0; rebase onto the shared clock so the
	// schedule fires at the same relative ticks in every run, and rewind
	// the probe counter so the sequence-keyed loss stream replays too.
	env := st.env
	start := env.Clock().Now()
	plan = plan.Shifted(start)
	env.SetFaultPlan(plan)
	defer env.SetFaultPlan(nil)
	env.ResetProbes()
	ttl := 3 * interval

	// held[owner][member] is the replica's expiry in virtual time.
	held := make([]map[int]netsim.Time, len(members))
	for i := range held {
		held[i] = make(map[int]netsim.Time)
	}
	lastWaveEnd := netsim.Time(0)
	for _, w := range plan.Churn {
		if w.Until > lastWaveEnd {
			lastWaveEnd = w.Until
		}
	}

	out := churnOutcome{minRecall: 1, reconvergeTicks: -1}
	preProbes := env.Probes()
	for tick := 1; tick <= ticks; tick++ {
		env.Clock().Advance(interval)
		now := env.Clock().Now()

		// A crashed owner loses its in-memory shard.
		for i, m := range members {
			if env.Crashed(m.Host) && len(held[i]) > 0 {
				held[i] = make(map[int]netsim.Time)
			}
		}
		// Refresh: live members re-store their record on their k owners.
		for i, m := range members {
			if env.Crashed(m.Host) {
				continue
			}
			for _, o := range owners(numbers[i], k) {
				env.CountMessages("refresh-store", 1)
				if math.IsInf(env.ProbeRTT(m.Host, members[o].Host), 1) {
					continue // owner crashed, link severed, or store dropped
				}
				held[o][i] = now + ttl
			}
		}
		// Expiry sweep.
		for i := range held {
			for mem, exp := range held[i] {
				if exp < now {
					delete(held[i], mem)
				}
			}
		}
		// Recall over live members.
		live, found := 0, 0
		for i, m := range members {
			if env.Crashed(m.Host) {
				continue
			}
			live++
			for _, o := range owners(numbers[i], k) {
				if env.Crashed(members[o].Host) {
					continue
				}
				if exp, ok := held[o][i]; ok && exp >= now {
					found++
					break
				}
			}
		}
		recall := 1.0
		if live > 0 {
			recall = float64(found) / float64(live)
		}
		out.recalls = append(out.recalls, recall)
		out.finalRecall = recall
		if recall < out.minRecall {
			out.minRecall = recall
		}
		if now >= lastWaveEnd && out.reconvergeTicks < 0 && recall >= churnRecallTarget {
			// Ticks elapsed since the schedule went quiet.
			out.reconvergeTicks = tick - int(float64(lastWaveEnd-start)/float64(interval))
			if out.reconvergeTicks < 0 {
				out.reconvergeTicks = 0
			}
		}
	}
	out.probes = env.Probes() - preProbes
	return out, nil
}

// churnInterval is one virtual refresh interval in ms of virtual time.
const churnInterval = netsim.Time(1000)

// churnPlans builds the experiment's two seeded fault plans over the
// member hosts: churn alone, and churn compounded with probe loss and a
// mid-run stub-domain partition.
func churnPlans(st *stack, net *topology.Network, members []*can.Member) []struct {
	name string
	plan *netsim.FaultPlan
} {
	hosts := make([]topology.NodeID, len(members))
	for i, m := range members {
		hosts[i] = m.Host
	}
	mkWaves := func(label string) []netsim.ChurnWave {
		// Three waves, each crashing a fresh 20% of members for three
		// refresh intervals, one quiet interval apart.
		return netsim.CrashWaves(st.rng.Split(label), hosts, 3,
			2*churnInterval, 4*churnInterval, 3*churnInterval, 0.2)
	}
	return []struct {
		name string
		plan *netsim.FaultPlan
	}{
		{"churn", &netsim.FaultPlan{Seed: 11, Churn: mkWaves("waves")}},
		{"churn+loss+cut", &netsim.FaultPlan{
			Seed:     13,
			LossRate: 0.1,
			Churn:    mkWaves("waves2"),
			Partitions: []netsim.PartitionWindow{
				netsim.BisectByStub(net, 6*churnInterval, 8*churnInterval),
			},
		}},
	}
}

// RunExtChurn is the registry entry point.
func RunExtChurn(sc Scale) ([]*Table, error) {
	net, err := buildNet(TSKLarge, LatGTITM, sc)
	if err != nil {
		return nil, err
	}
	// Deliberately a single unit: every scenario × k cell advances the one
	// shared virtual clock, so the sequence must not be reordered or
	// interleaved by the engine.
	st, err := buildStack(net, sc, stackConfig{
		overlayN:  sc.OverlayN / 2,
		landmarks: sc.Landmarks,
		label:     "extchurn",
		run:       "ext-churn",
	})
	if err != nil {
		return nil, err
	}
	members := st.overlay.CAN().Members()

	t := &Table{
		ID:    "ext-churn",
		Title: "Record recall under injected churn (fault plans, replicated refresh, ttl = 3 intervals)",
		Columns: []string{"fault plan", "replicas k", "min recall", "final recall",
			"intervals to ≥99% after last wave", "refresh probes"},
	}
	const ticks = 20
	for _, scen := range churnPlans(st, net, members) {
		for _, k := range []int{1, 2, 3} {
			o, err := runChurnRecall(st, members, scen.plan, k, ticks, churnInterval)
			if err != nil {
				return nil, err
			}
			reconv := "never"
			if o.reconvergeTicks >= 0 {
				reconv = fmt.Sprintf("%d", o.reconvergeTicks)
			}
			t.AddRowf(scen.name, k, o.minRecall, o.finalRecall, reconv, o.probes)
		}
	}
	t.Note("recall = live members whose record is retrievable from a live owner; waves crash 20%% of members each")
	t.Note("k=1 loses a crashed owner's whole shard until re-refresh; k>=2 rides out single-owner crashes at k× message cost")
	return []*Table{t}, nil
}
