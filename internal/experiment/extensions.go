package experiment

import (
	"fmt"
	"math"

	"gsso/internal/can"
	"gsso/internal/chord"
	"gsso/internal/ecan"
	"gsso/internal/experiment/engine"
	"gsso/internal/landmark"
	"gsso/internal/loadbal"
	"gsso/internal/netsim"
	"gsso/internal/proximity"
	"gsso/internal/pubsub"
	"gsso/internal/simrand"
	"gsso/internal/softstate"
	"gsso/internal/topology"
)

// RunExtLoad is the §6 ablation: capacity-aware neighbor selection trades
// a little stretch for a large reduction in peak utilization. Sweeps the
// load-penalty knob alpha with feedback rounds (route -> publish loads ->
// re-select).
func RunExtLoad(sc Scale) ([]*Table, error) {
	net, err := buildNet(TSKLarge, LatManual, sc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ext-load",
		Title:   "Load-aware neighbor selection (§6): stretch vs peak utilization",
		Columns: []string{"alpha", "stretch", "max util", "mean util"},
	}
	// One unit per alpha: the feedback rounds mutate the stack's store and
	// overlay, so each unit owns a private stack seeded by its alpha label.
	alphas := []float64{0, 0.5, 1, 2, 4}
	reports, err := engine.Map(len(alphas), func(i int) (loadbal.Report, error) {
		alpha := alphas[i]
		st, err := buildStack(net, sc, stackConfig{
			overlayN:  sc.OverlayN,
			landmarks: sc.Landmarks,
			label:     fmt.Sprintf("extload/a%v", alpha),
			run:       "ext-load",
		})
		if err != nil {
			return loadbal.Report{}, err
		}
		members := st.overlay.CAN().Members()
		caps := loadbal.AssignHeterogeneousCapacities(members, 0.2, 20*float64(sc.OverlayN)/64, 2*float64(sc.OverlayN)/64, st.rng.Split("caps"))
		if err := st.store.PublishAll(func(m *can.Member) []softstate.PublishOption {
			return []softstate.PublishOption{softstate.WithCapacity(caps[m])}
		}); err != nil {
			return loadbal.Report{}, err
		}
		sel, err := loadbal.NewSelector(st.store, sc.RTTs, alpha,
			ecan.RandomSelector{RNG: st.rng.Split("fb")})
		if err != nil {
			return loadbal.Report{}, err
		}
		st.overlay.SetSelector(sel)
		loads := map[*can.Member]float64{}
		var rep loadbal.Report
		for round := 0; round < 3; round++ {
			rep, err = loadbal.RunTraffic(st.overlay, st.env, caps, loads,
				sc.QueriesFor(sc.OverlayN)/2, st.rng.Split(fmt.Sprintf("traffic%d", round)))
			if err != nil {
				return loadbal.Report{}, err
			}
			for m, l := range loads {
				st.store.UpdateLoad(m, l)
			}
			for _, m := range members {
				st.overlay.InvalidateEntries(m)
			}
		}
		return rep, nil
	})
	if err != nil {
		return nil, err
	}
	for i, alpha := range alphas {
		rep := reports[i]
		t.AddRowf(alpha, rep.MeanStretch, rep.MaxUtilization, rep.MeanUtilization)
	}
	t.Note("alpha=0 is pure proximity selection; growing alpha repels load from saturated nodes")
	t.Note("expected shape: max utilization falls with alpha at a modest stretch cost")
	return []*Table{t}, nil
}

// RunExtPubSub compares the three maintenance modes of §5.2 under
// drifting network conditions (epoch-jittered latencies): reactive
// (stale tables), periodic polling (full re-selection every epoch), and
// demand-driven publish/subscribe (re-selection only where the soft-state
// reports better candidates).
func RunExtPubSub(sc Scale) ([]*Table, error) {
	net, err := buildNet(TSKLarge, LatGTITM, sc)
	if err != nil {
		return nil, err
	}
	const epochs = 4
	const period = netsim.Time(1000)
	type outcome struct {
		firstStretch, lastStretch float64
		messages                  int64
		// refreshProbes are the landmark re-measurements of the periodic
		// soft-state refresh (paid identically by poll and pubsub);
		// selectProbes are the neighbor-selection RTTs — the cost the
		// maintenance policy actually controls.
		refreshProbes int64
		selectProbes  int64
	}
	run := func(policy string) (outcome, error) {
		// The same label for every policy: identical topology, overlay
		// geometry, landmark set and jitter, so the policies differ only
		// in maintenance behaviour.
		st, err := buildStack(net, sc, stackConfig{
			overlayN:  sc.OverlayN / 2, // churn experiment: keep it nimble
			landmarks: sc.Landmarks,
			label:     "extpubsub",
			run:       "ext-pubsub",
		})
		if err != nil {
			return outcome{}, err
		}
		// Per-node (access-link) churn: each epoch 10% of nodes congest,
		// inflating paths through them up to 4x. Re-selection can route
		// around a congested node; the interesting question is what each
		// maintenance policy pays to find out which nodes those are. The
		// landmark hosts are exempt — congested coordinate infrastructure
		// would distort everyone's position uniformly, a separate failure
		// mode deployments guard against with redundant landmarks.
		exempt := make(map[topology.NodeID]struct{})
		for _, lm := range st.space.Set().Nodes() {
			exempt[lm] = struct{}{}
		}
		st.env.SetPerturbation(netsim.NodeJitter{
			Seed: sc.Seed, Amplitude: 3, Period: period, Fraction: 0.1, Exempt: exempt,
		})
		members := st.overlay.CAN().Members()
		sel, err := softstate.NewSelector(st.store, sc.RTTs,
			ecan.RandomSelector{RNG: st.rng.Split("fb")})
		if err != nil {
			return outcome{}, err
		}
		st.overlay.SetSelector(sel)
		pairs := samplePairs(st.overlay, sc.QueriesFor(sc.OverlayN/2), st.rng.Split("pairs"))

		// Pub/sub wiring (only used by the pubsub policy): every member
		// watches each routing entry its routing has actually selected —
		// at every row — with a NeighborDegraded condition: "my selected
		// neighbor's landmark position drifted away from me", which is
		// exactly the event latency churn produces (§5.2's demand-driven
		// re-selection; the CloserCandidate condition matters under
		// membership growth and is exercised by the pubsub package tests
		// and the core API instead). relMargin filters drifts below 15%
		// so noise doesn't renotify.
		const relMargin = 0.15
		notified := map[*can.Member]bool{}
		watchers := map[*can.Member][]*pubsub.Subscription{}
		var bus *pubsub.Bus
		if policy == "pubsub" {
			bus, err = pubsub.NewBus(st.store, st.env)
			if err != nil {
				return outcome{}, err
			}
		}
		d := st.overlay.DigitLen()
		digitRegion := func(m *can.Member, row, digit int) can.Path {
			region := m.Path().Prefix(row * d)
			for b := d - 1; b >= 0; b-- {
				bit := uint64((digit >> uint(b)) & 1)
				region = can.Path{Bits: region.Bits | bit<<(63-region.Len), Len: region.Len + 1}
			}
			return region
		}
		digitOf := func(m *can.Member, row int) int {
			v := 0
			for b := 0; b < d; b++ {
				bit := 0
				if i := row*d + b; i < m.Depth() {
					bit = m.Path().Bit(i)
				}
				v = v<<1 | bit
			}
			return v
		}
		rewire := func(m *can.Member) error {
			for _, s := range watchers[m] {
				bus.Unsubscribe(s)
			}
			watchers[m] = nil
			vec := st.store.Vector(m)
			if vec == nil {
				return nil
			}
			notify := func(pubsub.Notification) { notified[m] = true }
			rows := (m.Depth() + d - 1) / d
			for row := 0; row < rows; row++ {
				myDigit := digitOf(m, row)
				for digit := 0; digit < 1<<uint(d); digit++ {
					if digit == myDigit {
						continue
					}
					// Watch only entries routing has actually selected;
					// forcing selection here would spend probes on entries
					// no route uses.
					entry := st.overlay.CachedEntry(m, row, digit)
					if entry == nil {
						continue
					}
					evec := st.store.Vector(entry)
					if evec == nil {
						continue
					}
					cur := landmark.Distance(evec, vec)
					degraded, err := bus.Subscribe(m, digitRegion(m, row, digit),
						pubsub.Condition{Kind: pubsub.NeighborDegraded, Member: entry, Margin: relMargin*cur + 1e-9}, notify)
					if err != nil {
						return err
					}
					degraded.SetCurrentBest(cur)
					watchers[m] = append(watchers[m], degraded)
				}
			}
			return nil
		}

		st.env.ResetMessages()
		st.env.ResetProbes()
		out := outcome{}
		for epoch := 0; epoch < epochs; epoch++ {
			if epoch > 0 {
				st.env.Clock().Advance(period)
				switch policy {
				case "stale":
					// Reactive: nothing moves until an entry is found dead.
				case "poll":
					pre := st.env.Probes()
					if err := st.store.PublishAll(nil); err != nil {
						return outcome{}, err
					}
					out.refreshProbes += st.env.Probes() - pre
					for _, m := range members {
						st.overlay.InvalidateEntries(m)
					}
				case "pubsub":
					// The soft-state refresh happens anyway (TTL); the bus
					// turns refreshes into per-slot invalidations.
					for k := range notified {
						delete(notified, k)
					}
					pre := st.env.Probes()
					if err := st.store.PublishAll(nil); err != nil {
						return outcome{}, err
					}
					out.refreshProbes += st.env.Probes() - pre
					for m := range notified {
						// A notification is the cue that this member's
						// neighborhood moved; refresh its table.
						st.overlay.InvalidateEntries(m)
					}
				}
			}
			s, err := meanStretch(st.overlay, st.env, pairs)
			if err != nil {
				return outcome{}, err
			}
			if epoch == 0 {
				out.firstStretch = s
			}
			out.lastStretch = s
			if policy == "pubsub" {
				// (Re)subscribe against the entries selected this epoch:
				// epoch 0 wires everyone, later epochs rewire only the
				// members whose tables changed.
				var targets []*can.Member
				if epoch == 0 {
					targets = members
				} else {
					for m := range notified {
						targets = append(targets, m)
					}
				}
				for _, m := range targets {
					if err := rewire(m); err != nil {
						return outcome{}, err
					}
				}
			}
		}
		for _, v := range st.env.MessageTotals() {
			out.messages += v
		}
		out.selectProbes = st.env.Probes() - out.refreshProbes
		return out, nil
	}

	t := &Table{
		ID:    "ext-pubsub",
		Title: fmt.Sprintf("Overlay maintenance under per-node congestion churn (%d epochs, 10%% of nodes up to 4x slower)", epochs),
		Columns: []string{"policy", "stretch@first", "stretch@last",
			"overlay msgs", "refresh probes", "selection probes"},
	}
	// One unit per policy: each run builds a private stack from the same
	// "extpubsub" label, so the policies see identical geometry and jitter
	// and differ only in maintenance behaviour.
	policies := []string{"stale", "poll", "pubsub"}
	outcomes, err := engine.Map(len(policies), func(i int) (outcome, error) {
		return run(policies[i])
	})
	if err != nil {
		return nil, err
	}
	for i, policy := range policies {
		o := outcomes[i]
		t.AddRowf(policy, o.firstStretch, o.lastStretch, o.messages, o.refreshProbes, o.selectProbes)
	}
	t.Note("stale = reactive repair only; poll = full periodic re-selection; pubsub = demand-driven re-selection on soft-state notifications")
	t.Note("expected shape: pubsub tracks poll's stretch at a fraction of poll's probe cost; stale drifts upward")
	return []*Table{t}, nil
}

// RunExtChord demonstrates the appendix claim that the soft-state design
// is overlay-agnostic: nearest-neighbor discovery via landmark-keyed
// records stored on a Chord ring performs on par with the flat hybrid
// index, and far better than random selection.
func RunExtChord(sc Scale) ([]*Table, error) {
	net, err := buildNet(TSKLarge, LatGTITM, sc)
	if err != nil {
		return nil, err
	}
	// Single unit: the query RNG is shared between the Chord walk and the
	// random baseline below, so the methods must run in sequence.
	env := netsim.NewRun(net, "ext-chord")
	rng := simrand.New(sc.Seed).Split("extchord")
	hosts := net.RandomStubHosts(rng.Split("hosts"), sc.OverlayN)

	set, err := landmark.Choose(net, sc.Landmarks, rng.Split("lm"))
	if err != nil {
		return nil, err
	}
	space, err := landmark.NewSpace(set, 3, 6,
		landmark.EstimateMaxRTT(net, set, net.RandomStubHosts(rng.Split("est"), 32)))
	if err != nil {
		return nil, err
	}
	index, err := proximity.BuildIndex(env, space, hosts)
	if err != nil {
		return nil, err
	}

	// Chord ring storing (host, vector) items keyed by landmark number
	// scaled into the ring.
	const ringBits = 32
	numberWidth := uint(space.Curve().Dims() * space.Curve().Bits())
	shift := uint(ringBits) - numberWidth
	ring, err := chord.NewRing(ringBits)
	if err != nil {
		return nil, err
	}
	ringRNG := rng.Split("ring")
	for _, h := range hosts {
		if _, err := ring.JoinRandom(h, ringRNG); err != nil {
			return nil, err
		}
	}
	if err := ring.Build(); err != nil {
		return nil, err
	}
	type rec struct {
		host topology.NodeID
		vec  landmark.Vector
	}
	for _, h := range hosts {
		vec := index.VectorOf(h)
		num, err := space.Number(vec)
		if err != nil {
			return nil, err
		}
		if err := ring.Put(chord.ID(num<<shift), rec{host: h, vec: vec}); err != nil {
			return nil, err
		}
	}

	queries := make([]topology.NodeID, sc.NNQueries)
	qRNG := rng.Split("queries")
	for i := range queries {
		queries[i] = hosts[qRNG.Intn(len(hosts))]
	}
	budget := sc.RTTs

	meanOf := func(find func(q topology.NodeID) topology.NodeID) float64 {
		total, n := 0.0, 0
		for _, q := range queries {
			found := find(q)
			s := proximity.Stretch(net, q, found, hosts)
			if math.IsInf(s, 1) {
				continue
			}
			total += s
			n++
		}
		if n == 0 {
			return math.Inf(1)
		}
		return total / float64(n)
	}

	chordStretch := meanOf(func(q topology.NodeID) topology.NodeID {
		vec := index.VectorOf(q)
		num, err := space.Number(vec)
		if err != nil {
			return topology.None
		}
		items, _, err := ring.Collect(chord.ID(num<<shift), 3*budget, 64)
		if err != nil {
			return topology.None
		}
		best := topology.None
		bestRTT := math.Inf(1)
		probes := 0
		for _, it := range items {
			r := it.Value.(rec)
			if r.host == q {
				continue
			}
			if probes >= budget {
				break
			}
			if rtt := env.ProbeRTT(q, r.host); rtt < bestRTT {
				best, bestRTT = r.host, rtt
			}
			probes++
		}
		return best
	})

	flatStretch := meanOf(func(q topology.NodeID) topology.NodeID {
		return index.SearchHybrid(env, q, budget).Found
	})

	randStretch := meanOf(func(q topology.NodeID) topology.NodeID {
		for {
			h := hosts[qRNG.Intn(len(hosts))]
			if h != q {
				return h
			}
		}
	})

	t := &Table{
		ID:      "ext-chord",
		Title:   fmt.Sprintf("Soft-state on Chord vs flat hybrid index (budget=%d probes)", budget),
		Columns: []string{"method", "nearest-neighbor stretch"},
	}
	t.AddRowf("chord-hosted soft-state", chordStretch)
	t.AddRowf("flat hybrid index", flatStretch)
	t.AddRowf("random selection", randStretch)
	t.Note("appendix: 'in the case of Chord, we can simply use the landmark number as the key'")
	t.Note("expected shape: chord-hosted within noise of the flat index; both far below random")
	return []*Table{t}, nil
}
