package experiment

import (
	"fmt"
	"math"
	"sort"

	"gsso/internal/can"
	"gsso/internal/experiment/engine"
	"gsso/internal/landmark"
	"gsso/internal/netsim"
	"gsso/internal/proximity"
	"gsso/internal/simrand"
	"gsso/internal/topology"
)

// RunExtTACAN quantifies the §1 motivation for NOT constraining overlay
// layout by topology: in a Topologically-Aware CAN, nodes join at points
// derived from their landmark positions, so physically clustered nodes
// crowd one corner of the Cartesian space. The experiment compares the
// resulting zone-volume skew and neighbor-set sizes against a uniform
// CAN ("a small fraction of nodes can occupy most of the space, and some
// nodes have to maintain very many neighbors").
func RunExtTACAN(sc Scale) ([]*Table, error) {
	net, err := buildNet(TSKLarge, LatGTITM, sc)
	if err != nil {
		return nil, err
	}
	env := netsim.NewRun(net, "ext-tacan")
	rng := simrand.New(sc.Seed).Split("exttacan")
	hosts := net.RandomStubHosts(rng.Split("hosts"), sc.OverlayN)
	set, err := landmark.Choose(net, sc.Landmarks, rng.Split("lm"))
	if err != nil {
		return nil, err
	}
	maxRTT := landmark.EstimateMaxRTT(net, set, net.RandomStubHosts(rng.Split("est"), 32))

	// The point streams are pre-split so the two concurrent builds below
	// never touch the parent source.
	ptRNGs := map[bool]*simrand.Source{
		false: rng.Split("pts/false"),
		true:  rng.Split("pts/true"),
	}
	build := func(topoAware bool) (*can.Overlay, error) {
		overlay, err := can.New(2)
		if err != nil {
			return nil, err
		}
		ptRNG := ptRNGs[topoAware]
		for _, h := range hosts {
			var p can.Point
			if topoAware {
				vec := landmark.Measure(env, h, set)
				p = can.Point{clampUnit(vec[0] / maxRTT), clampUnit(vec[1] / maxRTT)}
			} else {
				p = can.RandomPoint(2, ptRNG)
			}
			if _, err := overlay.Join(h, p); err != nil {
				return nil, err
			}
		}
		return overlay, nil
	}

	profile := func(o *can.Overlay) (top10Volume float64, maxNeighbors int, meanNeighbors float64) {
		members := o.Members()
		vols := make([]float64, len(members))
		totalNb := 0
		for i, m := range members {
			vols[i] = m.Volume()
			nb := m.NeighborCount()
			totalNb += nb
			if nb > maxNeighbors {
				maxNeighbors = nb
			}
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(vols)))
		top := len(vols) / 10
		if top < 1 {
			top = 1
		}
		for _, v := range vols[:top] {
			top10Volume += v
		}
		meanNeighbors = float64(totalNb) / float64(len(members))
		return top10Volume, maxNeighbors, meanNeighbors
	}

	t := &Table{
		ID:    "ext-tacan",
		Title: fmt.Sprintf("Topologically-Aware CAN imbalance (§1, N=%d)", sc.OverlayN),
		Columns: []string{"layout", "space held by largest 10% of zones",
			"max neighbors", "mean neighbors"},
	}
	// Two units, one per layout; the topology-aware build pays the
	// landmark measurements, the uniform build is pure RNG.
	layouts := []struct {
		name      string
		topoAware bool
	}{{"uniform CAN", false}, {"topologically-aware CAN", true}}
	overlays, err := engine.Map(len(layouts), func(i int) (*can.Overlay, error) {
		return build(layouts[i].topoAware)
	})
	if err != nil {
		return nil, err
	}
	for i, layout := range layouts {
		v, maxNb, meanNb := profile(overlays[i])
		t.AddRowf(layout.name, fmt.Sprintf("%.1f%%", 100*v), maxNb, meanNb)
	}
	t.Note("paper §1: in a topology-aware CAN a small fraction of nodes can occupy 80-98%% of the space")
	t.Note("the skew is why the paper keeps the overlay uniform and moves proximity into soft-state instead")
	return []*Table{t}, nil
}

func clampUnit(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= 1 {
		return math.Nextafter(1, 0)
	}
	return v
}

// RunExtGroups evaluates the first §5.4 optimization: splitting the
// landmarks into groups with one space-filling curve each, and unioning
// the per-group curve windows before the full-vector ranking, to reduce
// false clustering. Measured as nearest-neighbor stretch at a fixed probe
// budget on the hard (tsk-small) topology.
func RunExtGroups(sc Scale) ([]*Table, error) {
	net, err := buildNet(TSKSmall, sc2lat(sc), sc)
	if err != nil {
		return nil, err
	}
	env := netsim.NewRun(net, "ext-groups")
	rng := simrand.New(sc.Seed).Split("extgroups")
	hosts := net.StubHosts()
	// Twice the default landmark count so groups stay meaningful.
	set, err := landmark.Choose(net, 2*sc.Landmarks, rng.Split("lm"))
	if err != nil {
		return nil, err
	}
	maxRTT := landmark.EstimateMaxRTT(net, set, net.RandomStubHosts(rng.Split("est"), 32))

	qRNG := rng.Split("queries")
	qIdx := qRNG.Sample(len(hosts), sc.NNQueries)
	queries := make([]int, len(qIdx))
	copy(queries, qIdx)

	budget := sc.RTTs
	meanStretchOf := func(search func(q int) proximity.Result) float64 {
		total, n := 0.0, 0
		for _, qi := range queries {
			q := hosts[qi]
			res := search(qi)
			s := proximity.Stretch(net, q, res.Found, hosts)
			if math.IsInf(s, 1) {
				continue
			}
			total += s
			n++
		}
		if n == 0 {
			return math.Inf(1)
		}
		return total / float64(n)
	}

	t := &Table{
		ID:      "ext-groups",
		Title:   fmt.Sprintf("Landmark groups (§5.4 optimization 1), tsk-small, budget=%d probes", budget),
		Columns: []string{"groups", "nearest-neighbor stretch"},
	}
	// One unit per group count: index builds probe through the shared env
	// (atomic meters), searches are read-only.
	groupCounts := []int{1, 2, 3}
	stretches, err := engine.Map(len(groupCounts), func(i int) (float64, error) {
		gi, err := proximity.BuildGroupedIndex(env, set, groupCounts[i], 6, maxRTT, hosts)
		if err != nil {
			return 0, err
		}
		return meanStretchOf(func(qi int) proximity.Result {
			return gi.SearchHybrid(env, hosts[qi], budget)
		}), nil
	})
	if err != nil {
		return nil, err
	}
	for i, groups := range groupCounts {
		t.AddRowf(groups, stretches[i])
	}
	t.Note("groups=1 is the baseline single-curve reduction")
	t.Note("paper §5.4: joining positions from several landmark groups reduces false clustering")
	return []*Table{t}, nil
}

// sc2lat picks the latency model for the groups experiment: manual
// latencies make landmark geometry most informative, matching the
// paper's observation that regular latencies benefit most.
func sc2lat(Scale) LatKind { return LatManual }

// RunExtHier evaluates the second §5.4 optimization: hierarchical
// landmark spaces. A handful of widely scattered global landmarks
// pre-select; localized per-domain landmarks refine. Measured as
// nearest-neighbor stretch on the hard (tsk-small) topology, against a
// flat index given the same total landmark budget.
func RunExtHier(sc Scale) ([]*Table, error) {
	net, err := buildNet(TSKSmall, LatManual, sc)
	if err != nil {
		return nil, err
	}
	env := netsim.NewRun(net, "ext-hier")
	rng := simrand.New(sc.Seed).Split("exthier")
	hosts := net.StubHosts()

	globalCount := 5
	perDomain := 3
	globalSet, err := landmark.Choose(net, globalCount, rng.Split("global"))
	if err != nil {
		return nil, err
	}
	maxRTT := landmark.EstimateMaxRTT(net, globalSet, net.RandomStubHosts(rng.Split("est"), 32))
	globalSpace, err := landmark.NewSpace(globalSet, 3, 6, maxRTT)
	if err != nil {
		return nil, err
	}
	localSet, err := landmark.ChoosePerDomain(net, perDomain, rng.Split("local"))
	if err != nil {
		return nil, err
	}
	hx, err := proximity.BuildHierarchicalIndex(env, globalSpace, localSet, hosts)
	if err != nil {
		return nil, err
	}
	// The flat comparator gets the same total landmark budget in one set.
	flatSet, err := landmark.Choose(net, globalCount+localSet.Len(), rng.Split("flat"))
	if err != nil {
		return nil, err
	}
	flatSpace, err := landmark.NewSpace(flatSet, 3, 6, maxRTT)
	if err != nil {
		return nil, err
	}
	flat, err := proximity.BuildIndex(env, flatSpace, hosts)
	if err != nil {
		return nil, err
	}

	qRNG := rng.Split("queries")
	qIdx := qRNG.Sample(len(hosts), sc.NNQueries)
	budget := sc.RTTs
	meanOf := func(search func(q topology.NodeID) proximity.Result) float64 {
		total, n := 0.0, 0
		for _, qi := range qIdx {
			q := hosts[qi]
			res := search(q)
			s := proximity.Stretch(net, q, res.Found, hosts)
			if math.IsInf(s, 1) {
				continue
			}
			total += s
			n++
		}
		if n == 0 {
			return math.Inf(1)
		}
		return total / float64(n)
	}

	t := &Table{
		ID: "ext-hier",
		Title: fmt.Sprintf("Hierarchical landmark spaces (§5.4 optimization 2), tsk-small, budget=%d probes",
			budget),
		Columns: []string{"method", "landmarks", "nearest-neighbor stretch"},
	}
	// The index builds above are sequential (the local and flat stages
	// derive from the global maxRTT); the three measurements are read-only
	// and run as units.
	searches := []func(q topology.NodeID) proximity.Result{
		func(q topology.NodeID) proximity.Result { return hx.GlobalOnly().SearchHybrid(env, q, budget) },
		func(q topology.NodeID) proximity.Result { return flat.SearchHybrid(env, q, budget) },
		func(q topology.NodeID) proximity.Result { return hx.SearchHybrid(env, q, budget) },
	}
	stretches, err := engine.Map(len(searches), func(i int) (float64, error) {
		return meanOf(searches[i]), nil
	})
	if err != nil {
		return nil, err
	}
	t.AddRowf("global only", globalCount, stretches[0])
	t.AddRowf("flat, same total", flatSet.Len(), stretches[1])
	t.AddRowf(fmt.Sprintf("hierarchical %d+%d", globalCount, localSet.Len()), hx.JoinProbesPerHost(), stretches[2])
	t.Note("paper §5.4: scattered landmarks pre-select, localized landmarks refine")
	t.Note("measured shape: the hierarchy clearly improves on its own global stage; against an equal-size")
	t.Note("flat set it trails on tsk-small, whose two-domain backbone makes per-domain landmarks barely")
	t.Note("'local' — the idea needs a topology with many distinct regions to pay off (the paper proposes,")
	t.Note("but does not evaluate, this optimization)")
	return []*Table{t}, nil
}
