package experiment

import (
	"fmt"
	"math"

	"gsso/internal/can"
	"gsso/internal/ecan"
	"gsso/internal/experiment/engine"
	"gsso/internal/softstate"
)

// RunExtFailure implements §5.2's maintenance-options paragraph for
// departures: "In the most reactive case, departed nodes are deleted from
// the global state only when they are selected as routing neighbor
// replacements and later found un-reachable. Alternatively, each owner of
// the map information can periodically poll the liveliness of the nodes.
// The most proactive measure is to update the map when a node is about to
// depart."
//
// A fraction of members crash; each policy then pays differently to get
// the dead soft-state out of the way: reactive wastes selection probes on
// timeouts until the dead entries happen to be probed; polling spends
// liveness probes proportional to the whole map; proactive pays one
// withdrawal per departure. Selection quality afterwards is the same —
// the difference is purely cost and staleness, which is the paper's point.
func RunExtFailure(sc Scale) ([]*Table, error) {
	net, err := buildNet(TSKLarge, LatGTITM, sc)
	if err != nil {
		return nil, err
	}
	const crashFraction = 0.2
	type outcome struct {
		deadEncounters int64 // probes spent on dead hosts during selection
		livenessProbes int64 // owner polling cost
		withdrawals    int64 // proactive departure messages
		staleEntries   int   // dead entries still in maps after the round
		stretch        float64
	}

	run := func(policy string) (outcome, error) {
		st, err := buildStack(net, sc, stackConfig{
			overlayN:  sc.OverlayN / 2,
			landmarks: sc.Landmarks,
			label:     "extfailure",
			run:       "ext-failure",
		})
		if err != nil {
			return outcome{}, err
		}
		members := st.overlay.CAN().Members()
		sel, err := softstate.NewSelector(st.store, sc.RTTs,
			ecan.RandomSelector{RNG: st.rng.Split("fb")})
		if err != nil {
			return outcome{}, err
		}
		st.overlay.SetSelector(sel)
		pairs := samplePairs(st.overlay, sc.QueriesFor(sc.OverlayN/2), st.rng.Split("pairs"))

		// Warm the tables, then crash a deterministic member subset.
		// (Crashed members keep their zones: the overlay repair protocol is
		// can.Depart; here we study only the soft-state staleness, so the
		// dead stay as silent forwarders — their zones still route.)
		if _, err := meanStretch(st.overlay, st.env, pairs); err != nil {
			return outcome{}, err
		}
		crashRNG := st.rng.Split("crash")
		var crashed []*can.Member
		for _, idx := range crashRNG.Sample(len(members), int(crashFraction*float64(len(members)))) {
			crashed = append(crashed, members[idx])
		}
		deadHosts := make(map[*can.Member]bool, len(crashed))
		for _, m := range crashed {
			deadHosts[m] = true
			st.env.SetDown(m.Host, true)
		}
		out := outcome{}

		switch policy {
		case "reactive":
			// Nothing up front; timeouts during re-selection purge lazily.
		case "poll":
			// Every owner probes the liveness of every entry it hosts.
			pre := st.env.Probes()
			for _, m := range members {
				// The store models all shards; sweep by probing each
				// published member once from its primary owner.
				if st.store.Vector(m) == nil {
					continue
				}
				num, _ := st.store.Number(m)
				owner := st.store.OwnerOf(m.Path().Prefix(st.overlay.DigitLen()), num)
				if owner == nil || st.env.IsDown(owner.Host) {
					continue // a crashed owner polls nothing; its shard is gone with it
				}
				if rtt := st.env.ProbeRTT(owner.Host, m.Host); math.IsInf(rtt, 1) {
					st.store.ReportUnreachable(m)
				}
			}
			out.livenessProbes = st.env.Probes() - pre
		case "proactive":
			// Departing nodes withdraw their own state.
			for _, m := range crashed {
				st.store.Remove(m)
				out.withdrawals++
			}
		}

		// Force re-selection and measure: dead entries surface as probe
		// timeouts (reactive) or are already gone (poll/proactive).
		for _, m := range members {
			st.overlay.InvalidateEntries(m)
		}
		deadBefore := st.env.Messages("reactive-delete")
		s, err := meanStretch(st.overlay, st.env, pairs)
		if err != nil {
			return outcome{}, err
		}
		out.stretch = s
		out.deadEncounters = st.env.Messages("reactive-delete") - deadBefore

		// Residual staleness: dead entries still present in any map.
		for _, m := range crashed {
			if st.store.Vector(m) != nil {
				out.staleEntries++
			}
		}
		return out, nil
	}

	t := &Table{
		ID: "ext-failure",
		Title: fmt.Sprintf("Soft-state repair after crashes (§5.2 departure options, %d%% of members crash)",
			int(crashFraction*100)),
		Columns: []string{"policy", "stretch after repair", "dead entries hit in selection",
			"liveness probes", "withdrawals", "members still stale"},
	}
	// One unit per policy: each run owns a private stack built from the
	// same "extfailure" label, so all three see the identical crash set.
	policies := []string{"reactive", "poll", "proactive"}
	outcomes, err := engine.Map(len(policies), func(i int) (outcome, error) {
		return run(policies[i])
	})
	if err != nil {
		return nil, err
	}
	for i, policy := range policies {
		o := outcomes[i]
		t.AddRowf(policy, o.stretch, o.deadEncounters, o.livenessProbes, o.withdrawals, o.staleEntries)
	}
	t.Note("reactive = purge on probe timeout; poll = owners probe entry liveness; proactive = departing nodes withdraw")
	t.Note("paper §5.2: the global state 'can be lazily maintained' — all three converge, at different costs")
	return []*Table{t}, nil
}
