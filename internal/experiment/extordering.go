package experiment

import (
	"fmt"
	"math"
	"slices"
	"strings"

	"gsso/internal/experiment/engine"
	"gsso/internal/landmark"
	"gsso/internal/netsim"
	"gsso/internal/proximity"
	"gsso/internal/simrand"
	"gsso/internal/topology"
)

// RunExtOrdering measures the landmark-ordering baseline of §2
// (Topologically-Aware CAN's clustering key): nodes sorting the landmarks
// identically by RTT are considered "close". The paper's critique —
// "this technique cannot differentiate nodes with same landmark orders" —
// becomes quantitative: the ordering clusters are large, a random pick
// inside one is far from the true nearest, and the paper's own
// vector+RTT hybrid beats it soundly at the same probe budget.
func RunExtOrdering(sc Scale) ([]*Table, error) {
	net, err := buildNet(TSKSmall, LatGTITM, sc) // dense stubs: ordering's worst case
	if err != nil {
		return nil, err
	}
	env := netsim.NewRun(net, "ext-ordering")
	rng := simrand.New(sc.Seed).Split("extordering")
	hosts := net.StubHosts()

	set, err := landmark.Choose(net, sc.Landmarks, rng.Split("lm"))
	if err != nil {
		return nil, err
	}
	space, err := landmark.NewSpace(set, 3, 6,
		landmark.EstimateMaxRTT(net, set, net.RandomStubHosts(rng.Split("est"), 32)))
	if err != nil {
		return nil, err
	}
	index, err := proximity.BuildIndex(env, space, hosts)
	if err != nil {
		return nil, err
	}

	// Cluster hosts by landmark ordering.
	orderKey := func(h topology.NodeID) string {
		ord := index.VectorOf(h).Ordering()
		parts := make([]string, len(ord))
		for i, o := range ord {
			parts[i] = fmt.Sprint(o)
		}
		return strings.Join(parts, ",")
	}
	clusters := make(map[string][]topology.NodeID)
	for _, h := range hosts {
		k := orderKey(h)
		clusters[k] = append(clusters[k], h)
	}
	var sizes []float64
	for _, members := range clusters {
		sizes = append(sizes, float64(len(members)))
	}

	qRNG := rng.Split("queries")
	qIdx := qRNG.Sample(len(hosts), sc.NNQueries)
	pickRNG := rng.Split("pick")

	meanOf := func(find func(q topology.NodeID) topology.NodeID) float64 {
		total, n := 0.0, 0
		for _, qi := range qIdx {
			q := hosts[qi]
			found := find(q)
			s := proximity.Stretch(net, q, found, hosts)
			if math.IsInf(s, 1) {
				continue
			}
			total += s
			n++
		}
		if n == 0 {
			return math.Inf(1)
		}
		return total / float64(n)
	}

	// Three units, one per technique. The ordering unit owns pickRNG (its
	// stream is consumed sequentially inside the unit); the two hybrid
	// units are read-only index searches.
	measurements := []func() float64{
		func() float64 {
			return meanOf(func(q topology.NodeID) topology.NodeID {
				cluster := clusters[orderKey(q)]
				// A random other member of the same ordering cluster;
				// clusters of one fall back to a uniformly random host (the
				// technique has nothing to say about them).
				for attempt := 0; attempt < 8; attempt++ {
					var pick topology.NodeID
					if len(cluster) > 1 {
						pick = cluster[pickRNG.Intn(len(cluster))]
					} else {
						pick = hosts[pickRNG.Intn(len(hosts))]
					}
					if pick != q {
						env.ProbeRTT(q, pick) // the single confirmation probe
						return pick
					}
				}
				return topology.None
			})
		},
		func() float64 {
			return meanOf(func(q topology.NodeID) topology.NodeID {
				return index.SearchHybrid(env, q, 1).Found
			})
		},
		func() float64 {
			return meanOf(func(q topology.NodeID) topology.NodeID {
				return index.SearchHybrid(env, q, sc.RTTs).Found
			})
		},
	}
	stretches, err := engine.Map(len(measurements), func(i int) (float64, error) {
		return measurements[i](), nil
	})
	if err != nil {
		return nil, err
	}
	orderingStretch, vectorStretch, hybridStretch := stretches[0], stretches[1], stretches[2]

	t := &Table{
		ID:      "ext-ordering",
		Title:   fmt.Sprintf("Landmark ordering vs vector ranking (tsk-small, %d landmarks)", sc.Landmarks),
		Columns: []string{"technique", "probes", "nearest-neighbor stretch"},
	}
	t.AddRowf("ordering cluster, random pick", 1, orderingStretch)
	t.AddRowf("vector ranking, top candidate", 1, vectorStretch)
	t.AddRowf(fmt.Sprintf("hybrid (top %d probed)", sc.RTTs), sc.RTTs, hybridStretch)
	t.Note(fmt.Sprintf("ordering clusters: %d distinct orders over %d hosts, largest %v, mean %.1f",
		len(clusters), len(hosts), int(slices.Max(sizes)), meanFloat(sizes)))
	t.Note("paper §2: landmark ordering 'cannot differentiate nodes with same landmark orders'")
	return []*Table{t}, nil
}

func meanFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}
