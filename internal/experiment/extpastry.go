package experiment

import (
	"fmt"
	"sort"

	"gsso/internal/experiment/engine"
	"gsso/internal/landmark"
	"gsso/internal/netsim"
	"gsso/internal/pastry"
	"gsso/internal/proximity"
	"gsso/internal/simrand"
)

// RunExtPastry demonstrates the conclusion's generality claim on a real
// Pastry: "the techniques are generic for overlay networks such as
// Pastry, Chord, and eCAN, where there exists flexibility in selecting
// routing neighbors." The same landmark+RTT machinery that drives eCAN's
// high-order neighbor selection fills Pastry routing tables: candidates
// for each slot are ranked by landmark-vector distance (what the
// soft-state maps return) and a budget of RTT probes picks the winner.
func RunExtPastry(sc Scale) ([]*Table, error) {
	net, err := buildNet(TSKLarge, LatGTITM, sc)
	if err != nil {
		return nil, err
	}
	env := netsim.NewRun(net, "ext-pastry")
	rng := simrand.New(sc.Seed).Split("extpastry")
	hosts := net.RandomStubHosts(rng.Split("hosts"), sc.OverlayN)

	set, err := landmark.Choose(net, sc.Landmarks, rng.Split("lm"))
	if err != nil {
		return nil, err
	}
	space, err := landmark.NewSpace(set, 3, 6,
		landmark.EstimateMaxRTT(net, set, net.RandomStubHosts(rng.Split("est"), 32)))
	if err != nil {
		return nil, err
	}
	index, err := proximity.BuildIndex(env, space, hosts)
	if err != nil {
		return nil, err
	}

	build := func(sel pastry.Selector, label string) (*pastry.Overlay, error) {
		o, err := pastry.New(4, 8)
		if err != nil {
			return nil, err
		}
		joinRNG := simrand.New(sc.Seed).Split("extpastry/join") // same ring for every selector
		for _, h := range hosts {
			if _, err := o.JoinRandom(h, joinRNG); err != nil {
				return nil, err
			}
		}
		_ = label
		return o, o.Build(sel)
	}
	stretchOf := func(o *pastry.Overlay) (float64, error) {
		nodes := o.Nodes()
		pairRNG := simrand.New(sc.Seed).Split("extpastry/pairs")
		total, count := 0.0, 0
		for i := 0; i < sc.QueriesFor(sc.OverlayN); i++ {
			src := nodes[pairRNG.Intn(len(nodes))]
			dst := nodes[pairRNG.Intn(len(nodes))]
			if src == dst || src.Host == dst.Host {
				continue
			}
			path, err := o.Route(src, dst.ID)
			if err != nil {
				return 0, err
			}
			lat := 0.0
			for h := 1; h < len(path); h++ {
				lat += env.Latency(path[h-1].Host, path[h].Host)
			}
			direct := env.Latency(src.Host, dst.Host)
			if direct <= 0 {
				continue
			}
			total += lat / direct
			count++
		}
		return total / float64(count), nil
	}

	budget := sc.RTTs
	landmarkSel := pastry.FuncSelector(func(self *pastry.Node, _, _ int, cands []*pastry.Node) *pastry.Node {
		svec := index.VectorOf(self.Host)
		if svec == nil || len(cands) == 0 {
			if len(cands) == 0 {
				return nil
			}
			return cands[0]
		}
		// Rank by landmark distance (the soft-state map ordering), then
		// probe the top candidates.
		ranked := append([]*pastry.Node(nil), cands...)
		sort.Slice(ranked, func(a, b int) bool {
			da := landmark.Distance(index.VectorOf(ranked[a].Host), svec)
			db := landmark.Distance(index.VectorOf(ranked[b].Host), svec)
			if da != db {
				return da < db
			}
			return ranked[a].Host < ranked[b].Host
		})
		var best *pastry.Node
		bestRTT := 0.0
		for i, c := range ranked {
			if i >= budget {
				break
			}
			rtt := env.ProbeRTT(self.Host, c.Host)
			if best == nil || rtt < bestRTT {
				best, bestRTT = c, rtt
			}
		}
		return best
	})
	oracleSel := pastry.FuncSelector(func(self *pastry.Node, _, _ int, cands []*pastry.Node) *pastry.Node {
		var best *pastry.Node
		bestD := 0.0
		for _, c := range cands {
			d := env.Latency(self.Host, c.Host)
			if best == nil || d < bestD {
				best, bestD = c, d
			}
		}
		return best
	})

	t := &Table{
		ID: "ext-pastry",
		Title: fmt.Sprintf("Proximity-neighbor selection on Pastry (b=4, N=%d, budget=%d probes)",
			sc.OverlayN, budget),
		Columns: []string{"selector", "stretch"},
	}
	// One unit per selector: each unit builds its own ring (the join and
	// pair streams are fresh per unit) and only reads the shared index/env.
	configs := []struct {
		name string
		sel  pastry.Selector
	}{
		{"random", pastry.RandomSelector{RNG: simrand.New(sc.Seed).Split("extpastry/rand")}},
		{fmt.Sprintf("landmark+rtt (%d probes)", budget), landmarkSel},
		{"optimal (oracle)", oracleSel},
	}
	stretches, err := engine.Map(len(configs), func(i int) (float64, error) {
		o, err := build(configs[i].sel, configs[i].name)
		if err != nil {
			return 0, err
		}
		return stretchOf(o)
	})
	if err != nil {
		return nil, err
	}
	for i, cfg := range configs {
		t.AddRowf(cfg.name, stretches[i])
	}
	t.Note("conclusion: 'the techniques are generic for overlay networks such as Pastry, Chord, and ecan'")
	t.Note("the identical landmark machinery that drives eCAN fills Pastry's routing tables")
	return []*Table{t}, nil
}
