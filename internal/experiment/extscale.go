package experiment

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"gsso/internal/can"
	"gsso/internal/landmark"
	"gsso/internal/metstream"
	"gsso/internal/netsim"
	"gsso/internal/proximity"
	"gsso/internal/simrand"
	"gsso/internal/topology"
)

// The ext-scale experiment pushes the Figures 3-6 comparison (hybrid
// landmark+RTT nearest-neighbor search vs expanding-ring search) to
// 10^5-10^6 physical nodes — the ROADMAP's north star rather than the
// paper's ~10k. Topologies grow wide (SizedWide: more edge networks at the
// preset's stub density) so the landmark behavior the figures measure is
// preserved; per-query stretch samples stream to disk through metstream and
// the table is computed by re-reading the spill files, so RAM holds no
// per-query state no matter how large N gets.
//
// Environment knobs (both optional):
//
//	GSSO_SCALE_N    comma-separated node counts overriding Scale.ScaleSweep
//	GSSO_SCALE_DIR  spill directory for metric streams (kept); default is a
//	                temp dir removed after aggregation

// ScaleCell is one (preset, N) cell of the ext-scale sweep. Phase timings
// are wall-clock and feed the bench-scale harness only; the experiment's
// stdout table never prints them, keeping suite output deterministic.
type ScaleCell struct {
	Kind   TopoKind
	Nodes  int
	Stubs  int
	Hybrid float64 // mean stretch, hybrid at the default probe budget
	ERS    float64 // mean stretch, ERS at the same budget
	ERSBig float64 // mean stretch, ERS at 10x the budget
	Spill  string  // metric stream path

	GenMS       float64 // topology generation
	BootstrapMS float64 // landmark index + full-population CAN build
	QueryMS     float64 // query sweep + streamed aggregation
}

// scaleSweepFor resolves the node-count axis.
func scaleSweepFor(sc Scale) ([]int, error) {
	env := os.Getenv("GSSO_SCALE_N")
	if env == "" {
		return sc.ScaleSweep, nil
	}
	var out []int
	for _, f := range strings.Split(env, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 64 {
			return nil, fmt.Errorf("experiment: bad GSSO_SCALE_N entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// RunScaleCell builds one wide topology, bootstraps the hybrid index and
// the full-population CAN over every stub host, streams per-query stretch
// samples to a spill file, and aggregates them by re-reading the stream.
// At small N (where holding the samples is free) the streamed aggregates
// are cross-checked against in-RAM totals — the two paths must agree
// exactly, since the stream stores full float64 bits.
func RunScaleCell(kind TopoKind, targetN int, sc Scale, dir string) (ScaleCell, error) {
	model := topology.GTITMLatency()
	var spec topology.Spec
	switch kind {
	case TSKLarge:
		spec = topology.TSKLarge(model)
	case TSKSmall:
		spec = topology.TSKSmall(model)
	default:
		return ScaleCell{}, fmt.Errorf("experiment: unknown topology kind %q", kind)
	}
	spec = spec.SizedWide(targetN)
	rng := simrand.New(sc.Seed).Split(fmt.Sprintf("ext-scale/%s/%d", kind, targetN))
	genStart := time.Now()
	net, err := topology.Generate(spec, rng.Split("topo"))
	if err != nil {
		return ScaleCell{}, err
	}
	genMS := time.Since(genStart).Seconds() * 1e3
	bootStart := time.Now()
	env := netsim.NewRun(net, "ext-scale")
	hosts := net.StubHosts()

	set, err := landmark.Choose(net, sc.Landmarks, rng.Split("landmarks"))
	if err != nil {
		return ScaleCell{}, err
	}
	space, err := landmark.NewSpace(set, 3, 6,
		landmark.EstimateMaxRTT(net, set, net.RandomStubHosts(rng.Split("est"), 32)))
	if err != nil {
		return ScaleCell{}, err
	}
	index, err := proximity.BuildIndex(env, space, hosts)
	if err != nil {
		return ScaleCell{}, err
	}
	overlay, err := can.New(2)
	if err != nil {
		return ScaleCell{}, err
	}
	joinRNG := rng.Split("join")
	for _, h := range hosts {
		if _, err := overlay.JoinRandom(h, joinRNG); err != nil {
			return ScaleCell{}, err
		}
	}
	ers, err := proximity.NewERS(overlay)
	if err != nil {
		return ScaleCell{}, err
	}
	bootMS := time.Since(bootStart).Seconds() * 1e3
	queryStart := time.Now()

	qRNG := rng.Split("queries")
	qIdx := qRNG.Sample(len(hosts), sc.NNQueries)

	res := ScaleCell{
		Kind:        kind,
		Nodes:       net.Len(),
		Stubs:       net.StubCount(),
		Spill:       filepath.Join(dir, fmt.Sprintf("ext-scale_%s_%d.metrics", kind, targetN)),
		GenMS:       genMS,
		BootstrapMS: bootMS,
	}
	w, err := metstream.Create(res.Spill)
	if err != nil {
		return ScaleCell{}, err
	}
	// In-RAM shadow totals, kept only where that is free; the streamed
	// aggregates must reproduce them bit-for-bit.
	shadow := targetN <= 10_000
	shadowSum := map[string]float64{}
	shadowN := map[string]int64{}
	record := func(i int, key string, v float64) error {
		if math.IsInf(v, 1) {
			return nil // query found nothing reachable; skip, like Figures 3-6
		}
		if shadow {
			shadowSum[key] += v
			shadowN[key]++
		}
		return w.Append(uint64(i), key, v)
	}
	for i, q := range qIdx {
		host := hosts[q]
		hres := index.SearchHybrid(env, host, sc.RTTs)
		if err := record(i, "hybrid", proximity.Stretch(net, host, hres.Found, hosts)); err != nil {
			return ScaleCell{}, err
		}
		eres := ers.Search(env, host, sc.RTTs)
		if err := record(i, "ers", proximity.Stretch(net, host, eres.Found, hosts)); err != nil {
			return ScaleCell{}, err
		}
		ebig := ers.Search(env, host, 10*sc.RTTs)
		if err := record(i, "ers10x", proximity.Stretch(net, host, ebig.Found, hosts)); err != nil {
			return ScaleCell{}, err
		}
	}
	if err := w.Close(); err != nil {
		return ScaleCell{}, err
	}

	aggs, err := metstream.Aggregate(res.Spill)
	if err != nil {
		return ScaleCell{}, err
	}
	if shadow {
		for key, sum := range shadowSum {
			a := aggs[key]
			if a.Count != shadowN[key] || a.Sum != sum {
				return ScaleCell{}, fmt.Errorf(
					"experiment: streamed aggregate for %q (n=%d sum=%v) diverged from in-RAM totals (n=%d sum=%v)",
					key, a.Count, a.Sum, shadowN[key], sum)
			}
		}
	}
	res.Hybrid = aggs["hybrid"].Mean()
	res.ERS = aggs["ers"].Mean()
	res.ERSBig = aggs["ers10x"].Mean()
	res.QueryMS = time.Since(queryStart).Seconds() * 1e3
	return res, nil
}

// RunExtScale sweeps node counts far beyond the paper's evaluation. Cells
// run strictly sequentially — the point of the experiment is that ONE
// topology of 10^5-10^6 nodes fits comfortably, so it must not hold two.
func RunExtScale(sc Scale) ([]*Table, error) {
	sweep, err := scaleSweepFor(sc)
	if err != nil {
		return nil, err
	}
	if len(sweep) == 0 {
		return nil, fmt.Errorf("experiment: empty scale sweep (set Scale.ScaleSweep or GSSO_SCALE_N)")
	}
	dir := os.Getenv("GSSO_SCALE_DIR")
	if dir == "" {
		tmp, err := os.MkdirTemp("", "gsso-ext-scale")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ext-scale",
		Title:   "Figures 3-6 trends at 10^5-10^6 nodes: hybrid vs ERS stretch, flat topology",
		Columns: []string{"nodes", "preset", "stubs", "lmk+rtt", "ERS", "ERS@10x"},
	}
	for _, n := range sweep {
		for _, kind := range []TopoKind{TSKLarge, TSKSmall} {
			res, err := RunScaleCell(kind, n, sc, dir)
			if err != nil {
				return nil, fmt.Errorf("experiment: ext-scale %s/%d: %w", kind, n, err)
			}
			t.AddRowf(res.Nodes, string(kind), res.Stubs, res.Hybrid, res.ERS, res.ERSBig)
		}
	}
	t.Note("topologies grow wide (more edge networks, preset stub density) via Spec.SizedWide")
	t.Note("per-query stretch samples stream to disk (metstream); the table is aggregated by re-read")
	t.Note("Figures 3-6 trend holds as N grows 100x: hybrid stretch stays several times below ERS at equal budget")
	return []*Table{t}, nil
}
