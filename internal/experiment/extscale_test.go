package experiment

import (
	"fmt"
	"io"
	"path/filepath"
	"testing"

	"gsso/internal/metstream"
)

// TestExtScaleStreamsDecodableMetrics drives an ext-scale run against a
// temp spill dir and then audits the streams it left behind: every record
// must decode, timestamps must be monotone, and the aggregates recomputed
// from disk must match the values the experiment put in its table. The
// in-RAM-vs-streamed equivalence itself is asserted inside the run (the
// cell's shadow totals), so a passing run already proves the two paths
// agree; this test proves an outside reader sees the same numbers.
func TestExtScaleStreamsDecodableMetrics(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("GSSO_SCALE_DIR", dir)
	t.Setenv("GSSO_SCALE_N", "512")

	tables, err := RunExtScale(Quick(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 2 {
		t.Fatalf("expected 1 table with 2 rows, got %+v", tables)
	}

	for ri, kind := range []TopoKind{TSKLarge, TSKSmall} {
		path := filepath.Join(dir, fmt.Sprintf("ext-scale_%s_%d.metrics", kind, 512))
		r, err := metstream.Open(path)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		records, lastT := 0, uint64(0)
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: record %d: %v", kind, records, err)
			}
			if rec.T < lastT {
				t.Fatalf("%s: timestamp regression %d after %d", kind, rec.T, lastT)
			}
			lastT = rec.T
			if rec.Key != "hybrid" && rec.Key != "ers" && rec.Key != "ers10x" {
				t.Fatalf("%s: unexpected series %q", kind, rec.Key)
			}
			records++
		}
		r.Close()
		if records == 0 {
			t.Fatalf("%s: stream is empty", kind)
		}

		aggs, err := metstream.Aggregate(path)
		if err != nil {
			t.Fatal(err)
		}
		row := tables[0].Rows[ri]
		// Columns: nodes, preset, stubs, lmk+rtt, ERS, ERS@10x.
		if row[1] != string(kind) {
			t.Fatalf("row %d preset = %q, want %q", ri, row[1], kind)
		}
		for col, key := range map[int]string{3: "hybrid", 4: "ers", 5: "ers10x"} {
			want := fmt.Sprintf("%.3f", aggs[key].Mean())
			if row[col] != want {
				t.Fatalf("%s: table %s = %s, stream aggregate says %s", kind, key, row[col], want)
			}
		}
	}
}

// TestExtScaleRejectsBadSweepOverride pins the env-override parsing.
func TestExtScaleRejectsBadSweepOverride(t *testing.T) {
	t.Setenv("GSSO_SCALE_N", "512,banana")
	if _, err := RunExtScale(Quick(1)); err == nil {
		t.Fatal("bad GSSO_SCALE_N accepted")
	}
	t.Setenv("GSSO_SCALE_N", "")
	sc := Quick(1)
	sc.ScaleSweep = nil
	if _, err := RunExtScale(sc); err == nil {
		t.Fatal("empty sweep accepted")
	}
}
