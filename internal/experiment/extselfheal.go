package experiment

import (
	"fmt"
	"math"

	"gsso/internal/can"
	"gsso/internal/core"
	"gsso/internal/netsim"
	"gsso/internal/simrand"
	"gsso/internal/topology"
)

// RunExtSelfHeal exercises the crash half of §5.2 end to end: members
// crash ungracefully (no withdrawal, no handover), the failure detector
// accumulates suspicion from soft-state expiry and timed-out probes, and
// the repair loop confirms crashes, takes the dead zones over, and
// repairs dependent state. The experiment runs the same seeded crash
// schedule with the repair loop on and off, at map-replication k of 1,
// 2, and 3, and tracks two health signals per virtual refresh interval:
//
//   - NN recall — the fraction of nearest-member queries that find the
//     true physically nearest live member (against the latency oracle);
//   - route success — the fraction of member-to-member routes whose
//     path crosses no crashed zone (plus mean stretch over successes).
//
// With repair off a crashed member keeps its zone forever: map spots
// whose entire k-owner chain died can never be written again, so the
// entries lost with the shard never come back and recall stays
// degraded — worst at k=1, mild at k=3. With repair on, takeover hands
// the dead zones to live successors, ownership of the condensed maps
// follows the zones, and the next refresh repopulates the spots: recall
// recovers to the pre-crash baseline after each wave.

const (
	// selfHealWaves crash a fresh selfHealFraction of members each, one
	// at 3 intervals and one at 9 (period 6).
	selfHealWaves    = 2
	selfHealFraction = 0.15
	// selfHealTicks gives each wave a TTL expiry (3 intervals) plus a
	// recovery window before the next checkpoint.
	selfHealTicks = 14
	// selfHealPairs is the fixed routing sample measured every tick.
	selfHealPairs = 20
)

// selfHealConfig is one cell of the repair × replication grid.
type selfHealConfig struct {
	repair bool
	k      int
}

// selfHealOutcome summarizes one simulated run.
type selfHealOutcome struct {
	baseline  float64   // NN recall on the last pre-crash tick
	minRecall float64   // worst post-crash recall
	preWave2  float64   // recall on the last tick before the second wave
	final     float64   // recall on the last tick
	recalls   []float64 // per tick
	routeOK   []float64 // per tick
	stretch   []float64 // per tick, mean over successful routes
	takeovers int
	relocated int
	purged    int
	rounds    int // repair rounds that performed takeovers
}

// recovered reports whether recall returned to within frac of the
// pre-crash baseline at both checkpoints (before the second wave, and at
// the end).
func (o selfHealOutcome) recovered(frac float64) bool {
	floor := o.baseline * (1 - frac)
	return o.preWave2 >= floor && o.final >= floor
}

// pickQueries samples n fixed query members from the pool of members
// that never crash (the schedule is known upfront), so the query set —
// and therefore the recall denominator — is identical on every tick of
// every configuration.
func pickQueries(members []*can.Member, n int, rng *simrand.Source) []*can.Member {
	if n > len(members) {
		n = len(members)
	}
	out := make([]*can.Member, 0, n)
	for _, i := range rng.Sample(len(members), n) {
		out = append(out, members[i])
	}
	return out
}

// nnRecall measures NN discoverability: for each query member, is the
// true physically nearest live member (latency oracle) present in the
// candidate sets its soft-state maps can offer — any of the querier's
// enclosing digit-aligned region maps plus the top-level maps, within
// each map's return cap? This isolates what crashes destroy (map
// entries lost with dead owner chains) from what they cannot touch (the
// probe-budget ranking noise of a full query), which is the same with
// repair on or off.
func nnRecall(sys *core.System, queries []*can.Member) float64 {
	env, store := sys.Env(), sys.Store()
	members := sys.Members()
	d := sys.Overlay().DigitLen()
	total, hit := 0, 0
	for _, q := range queries {
		vec := store.Vector(q)
		if vec == nil {
			continue
		}
		total++
		var best *can.Member
		bestL := math.Inf(1)
		for _, m := range members {
			if m == q || m.Host == q.Host || env.Crashed(m.Host) {
				continue
			}
			if l := env.Latency(q.Host, m.Host); l < bestL {
				bestL, best = l, m
			}
		}
		if best == nil {
			continue
		}
		// Deep enclosing regions first, then every top-level map.
		regions := make([]can.Path, 0, 8)
		for l := (q.Depth() / d) * d; l >= d; l -= d {
			regions = append(regions, q.Path().Prefix(l))
		}
		for digit := uint64(0); digit < 1<<uint(d); digit++ {
			regions = append(regions, can.Path{Bits: digit << (64 - uint(d)), Len: d})
		}
		found := false
		for _, region := range regions {
			entries, _, err := store.Lookup(region, vec)
			if err != nil {
				continue
			}
			for _, e := range entries {
				if e.Member == best {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if found {
			hit++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(hit) / float64(total)
}

// samplePairsFrom draws n distinct-host routing pairs from a member
// pool (samplePairs over a subset, here the never-crashing survivors).
func samplePairsFrom(members []*can.Member, n int, rng *simrand.Source) []pair {
	out := make([]pair, 0, n)
	for len(out) < n {
		src := members[rng.Intn(len(members))]
		dst := members[rng.Intn(len(members))]
		if src == dst || src.Host == dst.Host {
			continue
		}
		out = append(out, pair{src: src, dst: dst})
	}
	return out
}

// routeHealth routes the fixed pair sample between live endpoints. A
// route whose path crosses a crashed zone fails (and reports every dead
// hop as a suspicion signal — in a deployment the forwarding neighbor
// notices); stretch is averaged over the successes.
func routeHealth(sys *core.System, pairs []pair) (okFrac, meanStretch float64) {
	env := sys.Env()
	attempted, ok := 0, 0
	total := 0.0
	for _, p := range pairs {
		if env.Crashed(p.src.Host) || env.Crashed(p.dst.Host) {
			continue
		}
		attempted++
		r, err := sys.RouteTo(p.src, p.dst)
		if err != nil {
			continue
		}
		dead := false
		for _, m := range r.Path {
			if env.Crashed(m.Host) {
				dead = true
				sys.SuspectMember(m)
			}
		}
		if dead {
			continue
		}
		ok++
		total += r.Stretch
	}
	if attempted == 0 {
		return 1, 0
	}
	okFrac = float64(ok) / float64(attempted)
	if ok > 0 {
		meanStretch = total / float64(ok)
	}
	return okFrac, meanStretch
}

// runSelfHeal simulates one configuration over the shared crash
// schedule. Each tick advances one refresh interval: pending waves
// crash their members (permanently — no recovery), shards whose whole
// owner chain died are lost, live members refresh their entries (a
// publish lands only if a spot owner is alive), expiry sweeps feed the
// detector, and — when enabled — the repair loop converges before the
// tick's health measurements.
func runSelfHeal(net *topology.Network, sc Scale, cfg selfHealConfig) (selfHealOutcome, error) {
	sys, err := core.New(
		core.WithSeed(sc.Seed),
		core.WithNetwork(net),
		core.WithOverlaySize(sc.OverlayN/2),
		core.WithLandmarks(sc.Landmarks),
		core.WithSoftStateTTL(3*churnInterval),
		core.WithConfirmThreshold(2),
		core.WithRunLabel("ext-selfheal"),
	)
	if err != nil {
		return selfHealOutcome{}, err
	}
	env, store := sys.Env(), sys.Store()
	members := sys.Members()
	hosts := make([]topology.NodeID, len(members))
	byHost := make(map[topology.NodeID]*can.Member, len(members))
	for i, m := range members {
		hosts[i] = m.Host
		byHost[m.Host] = m
	}
	crashed := func(m *can.Member) bool { return env.Crashed(m.Host) }

	// Replicated map placement: a publish lands only if at least one of
	// the spot's k ring owners is alive; with every owner dead the write
	// has nowhere to go until a takeover reassigns the spot.
	store.SetPublishFilter(func(region can.Path, number uint64) bool {
		owners := store.OwnersOf(region, number, cfg.k)
		if len(owners) == 0 {
			return true
		}
		for _, o := range owners {
			if !env.Crashed(o.Host) {
				return true
			}
		}
		return false
	})

	// The schedule and samples derive from the scale seed alone, so every
	// configuration faces the identical crash sequence, query set, and
	// routing pairs.
	rng := simrand.New(sc.Seed).Split("selfheal")
	waves := netsim.CrashWaves(rng.Split("waves"), hosts, selfHealWaves,
		3*churnInterval, 6*churnInterval, 3*churnInterval, selfHealFraction)
	// Queries and routing pairs draw from members outside every wave, so
	// the measurement sample is the same on every tick.
	downAll := make(map[topology.NodeID]struct{})
	for _, w := range waves {
		for h := range w.Down {
			downAll[h] = struct{}{}
		}
	}
	survivors := make([]*can.Member, 0, len(members))
	for _, m := range members {
		if _, dead := downAll[m.Host]; !dead {
			survivors = append(survivors, m)
		}
	}
	queries := pickQueries(survivors, sc.NNQueries, rng.Split("queries"))
	pairs := samplePairsFrom(survivors, selfHealPairs, rng.Split("pairs"))

	applied := make([]bool, len(waves))
	out := selfHealOutcome{minRecall: 1}
	crashesStarted := false
	for tick := 1; tick <= selfHealTicks; tick++ {
		env.Clock().Advance(churnInterval)
		now := env.Clock().Now()
		for i, w := range waves {
			if applied[i] || now < w.From {
				continue
			}
			applied[i] = true
			crashesStarted = true
			for h := range w.Down {
				if m := byHost[h]; m != nil && !env.Crashed(h) {
					if err := sys.CrashMember(m); err != nil {
						return out, err
					}
				}
			}
		}
		store.LoseShards(crashed, cfg.k)
		for _, m := range members {
			if env.Crashed(m.Host) {
				continue
			}
			if vec := store.Vector(m); vec != nil {
				if err := store.Publish(m, vec); err != nil {
					return out, err
				}
			} else if err := store.PublishMeasured(m); err != nil {
				return out, err
			}
		}
		store.SweepExpired()
		if cfg.repair {
			rep, rounds := sys.ConvergeRepairs(8)
			out.takeovers += rep.Takeovers
			out.relocated += rep.Relocated
			out.purged += rep.PurgedEntries
			if rep.Takeovers > 0 {
				out.rounds += rounds
			}
		}

		recall := nnRecall(sys, queries)
		okFrac, stretch := routeHealth(sys, pairs)
		out.recalls = append(out.recalls, recall)
		out.routeOK = append(out.routeOK, okFrac)
		out.stretch = append(out.stretch, stretch)
		if !crashesStarted {
			out.baseline = recall
		} else if recall < out.minRecall {
			out.minRecall = recall
		}
		if len(waves) > 1 && now < waves[1].From {
			out.preWave2 = recall
		}
		out.final = recall
	}
	return out, nil
}

// RunExtSelfHeal is the registry entry point.
func RunExtSelfHeal(sc Scale) ([]*Table, error) {
	net, err := buildNet(TSKLarge, LatGTITM, sc)
	if err != nil {
		return nil, err
	}
	summary := &Table{
		ID:    "ext-selfheal",
		Title: "Self-healing membership: crash waves, repair loop on/off, map replication k",
		Columns: []string{"repair", "replicas k", "baseline recall", "min recall",
			"pre-wave-2 recall", "final recall", "recovered ≤5%",
			"final route ok", "takeovers", "repair rounds", "orphans purged"},
	}
	series := &Table{
		ID:    "ext-selfheal-recall",
		Title: "NN recall and route success vs time (one refresh interval per tick)",
		Columns: []string{"repair", "replicas k", "tick", "nn recall",
			"route success", "stretch (ok routes)"},
	}
	for _, repair := range []bool{true, false} {
		for _, k := range []int{1, 2, 3} {
			o, err := runSelfHeal(net, sc, selfHealConfig{repair: repair, k: k})
			if err != nil {
				return nil, err
			}
			mode := "off"
			if repair {
				mode = "on"
			}
			summary.AddRowf(mode, k, o.baseline, o.minRecall, o.preWave2, o.final,
				o.recovered(0.05), o.routeOK[len(o.routeOK)-1],
				o.takeovers, o.rounds, o.purged)
			for t := range o.recalls {
				series.AddRowf(mode, k, t+1,
					fmt.Sprintf("%.3f", o.recalls[t]),
					fmt.Sprintf("%.3f", o.routeOK[t]),
					fmt.Sprintf("%.3f", o.stretch[t]))
			}
		}
	}
	summary.Note("waves crash a fresh 15%% of members at ticks 3 and 9, permanently; entries expire after 3 intervals")
	summary.Note("repair on: expiry-driven suspicion confirms the crash, the zone is taken over, and the next refresh repopulates the reassigned map spots")
	summary.Note("repair off: spots whose whole k-owner chain died are unwritable forever — recall stays degraded, worst at k=1")
	return []*Table{summary, series}, nil
}
