package experiment

import (
	"fmt"
	"math"
	"sort"

	"gsso/internal/experiment/engine"
	"gsso/internal/landmark"
	"gsso/internal/netsim"
	"gsso/internal/proximity"
	"gsso/internal/simrand"
	"gsso/internal/topology"
)

// RunExtSVD evaluates the third §5.4 optimization: many landmarks plus
// SVD denoising. Every RTT measurement carries 30% multiplicative noise
// (a static per-pair jitter — the probes are noisy, the ground truth is
// not). Candidates are ranked either by raw noisy-vector distance or by
// distance in the top-k SVD basis, then the usual probe budget refines.
func RunExtSVD(sc Scale) ([]*Table, error) {
	net, err := buildNet(TSKLarge, LatGTITM, sc)
	if err != nil {
		return nil, err
	}
	// The noisy measurement is this experiment's premise, so nothing here
	// may come from the shared vector caches: vectors are measured fresh
	// under the jittered env every run.
	env := netsim.NewRun(net, "ext-svd")
	env.SetPerturbation(netsim.StaticJitter{Seed: sc.Seed, Amplitude: 0.3})
	rng := simrand.New(sc.Seed).Split("extsvd")
	hosts := net.RandomStubHosts(rng.Split("hosts"), sc.OverlayN)

	// A large landmark set, per the optimization's premise.
	landmarks := 2 * sc.Landmarks
	set, err := landmark.Choose(net, landmarks, rng.Split("lm"))
	if err != nil {
		return nil, err
	}
	// Noisy vectors, one per host.
	vectors := make([]landmark.Vector, len(hosts))
	for i, h := range hosts {
		vectors[i] = landmark.Measure(env, h, set)
	}

	qRNG := rng.Split("queries")
	qIdx := qRNG.Sample(len(hosts), sc.NNQueries)
	budget := sc.RTTs

	// meanStretchWith ranks every other host by dist(vecs[i], vecs[q]),
	// probes the top budget (noisy probes), and scores the pick against
	// the unjittered ground truth.
	meanStretchWith := func(vecs []landmark.Vector) float64 {
		total, n := 0.0, 0
		order := make([]int, len(hosts)) // per-call scratch: units rank concurrently
		for _, qi := range qIdx {
			q := hosts[qi]
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(a, b int) bool {
				da := landmark.Distance(vecs[order[a]], vecs[qi])
				db := landmark.Distance(vecs[order[b]], vecs[qi])
				if da != db {
					return da < db
				}
				return hosts[order[a]] < hosts[order[b]]
			})
			best := topology.None
			bestRTT := math.Inf(1)
			probes := 0
			for _, idx := range order {
				if hosts[idx] == q {
					continue
				}
				if probes >= budget {
					break
				}
				rtt := env.ProbeRTT(q, hosts[idx])
				probes++
				if rtt < bestRTT {
					best, bestRTT = hosts[idx], rtt
				}
			}
			s := proximity.Stretch(net, q, best, hosts)
			if math.IsInf(s, 1) {
				continue
			}
			total += s
			n++
		}
		if n == 0 {
			return math.Inf(1)
		}
		return total / float64(n)
	}

	t := &Table{
		ID: "ext-svd",
		Title: fmt.Sprintf("SVD denoising of %d noisy landmarks (§5.4 optimization 3, 30%% probe noise, budget=%d)",
			landmarks, budget),
		Columns: []string{"ranking space", "dims", "nearest-neighbor stretch"},
	}
	// One unit per ranking space. The ranking and probing are pure given
	// the vector set (probe noise is a deterministic function of the pair,
	// not of probe order), so the rows measure concurrently.
	type rankRow struct {
		name string
		dims int
		k    int // 0 = raw vectors
	}
	rows := []rankRow{{name: "raw noisy vectors", dims: landmarks}}
	for _, k := range []int{4, 8} {
		if k >= landmarks {
			continue
		}
		rows = append(rows, rankRow{name: fmt.Sprintf("SVD top-%d", k), dims: k, k: k})
	}
	stretches, err := engine.Map(len(rows), func(i int) (float64, error) {
		vecs := vectors
		if rows[i].k > 0 {
			denoised, err := landmark.DenoiseVectors(vectors, rows[i].k)
			if err != nil {
				return 0, err
			}
			vecs = denoised
		}
		return meanStretchWith(vecs), nil
	})
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		t.AddRowf(r.name, r.dims, stretches[i])
	}
	t.Note("paper §5.4: SVD over many landmarks 'extracts useful information ... and suppresses noises'")
	t.Note("measured shape: the top-8 basis lands within a few percent of the full ranking at a quarter of")
	t.Note("the dimensionality (cheaper curves and smaller maps); under our proportional probe noise the")
	t.Note("raw ranking stays competitive — SVD's full denoising win needs additive, low-rank-structured noise")
	return []*Table{t}, nil
}
