package experiment

import (
	"fmt"

	"gsso/internal/can"
	"gsso/internal/ecan"
	"gsso/internal/simrand"
)

// RunFig2 reproduces Figure 2: average logical routing hops of basic CAN
// at several dimensionalities versus a 2-d eCAN, as the overlay grows.
// The expected shape: CAN grows as (d/4)N^(1/d); eCAN grows as
// log_4(N) and beats every CAN dimensionality at scale.
func RunFig2(sc Scale) ([]*Table, error) {
	net, err := buildNet(TSKLarge, LatGTITM, sc)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:    "fig2",
		Title: "Logical hops: basic CAN (varying d) vs eCAN (d=2)",
	}
	table.Columns = append(table.Columns, "nodes")
	for _, d := range sc.CANDims {
		table.Columns = append(table.Columns, fmt.Sprintf("CAN d=%d", d))
	}
	table.Columns = append(table.Columns, "eCAN d=2")

	for _, n := range sc.OverlaySweep {
		row := []interface{}{n}
		queries := sc.QueriesFor(n)

		for _, d := range sc.CANDims {
			rng := simrand.New(sc.Seed).Split(fmt.Sprintf("fig2/can/%d/%d", d, n))
			overlay, err := can.New(d)
			if err != nil {
				return nil, err
			}
			ptRNG := rng.Split("pts")
			for _, h := range net.RandomStubHosts(rng.Split("hosts"), n) {
				if _, err := overlay.JoinRandom(h, ptRNG); err != nil {
					return nil, err
				}
			}
			members := overlay.Members()
			qRNG := rng.Split("queries")
			hops := 0
			for q := 0; q < queries; q++ {
				from := members[qRNG.Intn(len(members))]
				path, err := overlay.Route(from, can.RandomPoint(d, qRNG))
				if err != nil {
					return nil, err
				}
				hops += len(path) - 1
			}
			row = append(row, float64(hops)/float64(queries))
		}

		rng := simrand.New(sc.Seed).Split(fmt.Sprintf("fig2/ecan/%d", n))
		overlay, err := ecan.BuildUniform(net, n, 2, 0,
			ecan.RandomSelector{RNG: rng.Split("sel")}, rng)
		if err != nil {
			return nil, err
		}
		members := overlay.CAN().Members()
		qRNG := rng.Split("queries")
		hops := 0
		for q := 0; q < queries; q++ {
			from := members[qRNG.Intn(len(members))]
			res, err := overlay.Route(from, can.RandomPoint(2, qRNG))
			if err != nil {
				return nil, err
			}
			hops += res.Hops()
		}
		row = append(row, float64(hops)/float64(queries))
		table.AddRowf(row...)
	}
	table.Note("paper: a 2-d eCAN 'easily outperforms the basic CAN with a dimensionality up to 5'")
	table.Note("expected shapes: CAN ~ (d/4) N^(1/d); eCAN ~ log4(N)")
	return []*Table{table}, nil
}
