package experiment

import (
	"fmt"

	"gsso/internal/can"
	"gsso/internal/ecan"
	"gsso/internal/experiment/engine"
	"gsso/internal/simrand"
)

// RunFig2 reproduces Figure 2: average logical routing hops of basic CAN
// at several dimensionalities versus a 2-d eCAN, as the overlay grows.
// The expected shape: CAN grows as (d/4)N^(1/d); eCAN grows as
// log_4(N) and beats every CAN dimensionality at scale.
//
// Every table cell is an independent unit: each builds its own overlay
// from streams labeled by (dimensionality, size) alone, so the grid
// measures concurrently with no shared state beyond the immutable
// topology.
func RunFig2(sc Scale) ([]*Table, error) {
	net, err := buildNet(TSKLarge, LatGTITM, sc)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:    "fig2",
		Title: "Logical hops: basic CAN (varying d) vs eCAN (d=2)",
	}
	table.Columns = append(table.Columns, "nodes")
	for _, d := range sc.CANDims {
		table.Columns = append(table.Columns, fmt.Sprintf("CAN d=%d", d))
	}
	table.Columns = append(table.Columns, "eCAN d=2")

	// Cell u is (size, method): methods 0..len(CANDims)-1 are basic CAN at
	// that dimensionality, the last method is the 2-d eCAN.
	methods := len(sc.CANDims) + 1
	cells, err := engine.Map(len(sc.OverlaySweep)*methods, func(u int) (float64, error) {
		n := sc.OverlaySweep[u/methods]
		m := u % methods
		queries := sc.QueriesFor(n)

		if m < len(sc.CANDims) {
			d := sc.CANDims[m]
			rng := simrand.New(sc.Seed).Split(fmt.Sprintf("fig2/can/%d/%d", d, n))
			overlay, err := can.New(d)
			if err != nil {
				return 0, err
			}
			ptRNG := rng.Split("pts")
			for _, h := range net.RandomStubHosts(rng.Split("hosts"), n) {
				if _, err := overlay.JoinRandom(h, ptRNG); err != nil {
					return 0, err
				}
			}
			members := overlay.Members()
			qRNG := rng.Split("queries")
			hops := 0
			for q := 0; q < queries; q++ {
				from := members[qRNG.Intn(len(members))]
				path, err := overlay.Route(from, can.RandomPoint(d, qRNG))
				if err != nil {
					return 0, err
				}
				hops += len(path) - 1
			}
			return float64(hops) / float64(queries), nil
		}

		rng := simrand.New(sc.Seed).Split(fmt.Sprintf("fig2/ecan/%d", n))
		overlay, err := ecan.BuildUniform(net, n, 2, 0,
			ecan.RandomSelector{RNG: rng.Split("sel")}, rng)
		if err != nil {
			return 0, err
		}
		members := overlay.CAN().Members()
		qRNG := rng.Split("queries")
		hops := 0
		for q := 0; q < queries; q++ {
			from := members[qRNG.Intn(len(members))]
			res, err := overlay.Route(from, can.RandomPoint(2, qRNG))
			if err != nil {
				return 0, err
			}
			hops += res.Hops()
		}
		return float64(hops) / float64(queries), nil
	})
	if err != nil {
		return nil, err
	}

	for i, n := range sc.OverlaySweep {
		row := []interface{}{n}
		for m := 0; m < methods; m++ {
			row = append(row, cells[i*methods+m])
		}
		table.AddRowf(row...)
	}
	table.Note("paper: a 2-d eCAN 'easily outperforms the basic CAN with a dimensionality up to 5'")
	table.Note("expected shapes: CAN ~ (d/4) N^(1/d); eCAN ~ log4(N)")
	return []*Table{table}, nil
}
