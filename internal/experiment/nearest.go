package experiment

import (
	"math"

	"gsso/internal/can"
	"gsso/internal/landmark"
	"gsso/internal/netsim"
	"gsso/internal/proximity"
	"gsso/internal/simrand"
	"gsso/internal/topology"
)

// nnHarness is the shared setup of Figures 3-6: every stub host of the
// topology participates, indexed both by landmark position (for the
// hybrid) and as a full-population 2-d CAN (for expanding-ring search).
type nnHarness struct {
	net     *topology.Network
	env     *netsim.Env
	index   *proximity.Index
	ers     *proximity.ERS
	hosts   []topology.NodeID
	queries []topology.NodeID
}

func buildNNHarness(kind TopoKind, sc Scale) (*nnHarness, error) {
	net, err := buildNet(kind, LatGTITM, sc)
	if err != nil {
		return nil, err
	}
	env := netsim.New(net)
	rng := simrand.New(sc.Seed).Split("nn/" + string(kind))
	hosts := net.StubHosts()

	set, err := landmark.Choose(net, sc.Landmarks, rng.Split("landmarks"))
	if err != nil {
		return nil, err
	}
	space, err := landmark.NewSpace(set, 3, 6,
		landmark.EstimateMaxRTT(net, set, net.RandomStubHosts(rng.Split("est"), 32)))
	if err != nil {
		return nil, err
	}
	index, err := proximity.BuildIndex(env, space, hosts)
	if err != nil {
		return nil, err
	}

	overlay, err := can.New(2)
	if err != nil {
		return nil, err
	}
	joinRNG := rng.Split("join")
	for _, h := range hosts {
		if _, err := overlay.JoinRandom(h, joinRNG); err != nil {
			return nil, err
		}
	}
	ers, err := proximity.NewERS(overlay)
	if err != nil {
		return nil, err
	}

	qRNG := rng.Split("queries")
	qIdx := qRNG.Sample(len(hosts), sc.NNQueries)
	queries := make([]topology.NodeID, len(qIdx))
	for i, q := range qIdx {
		queries[i] = hosts[q]
	}
	return &nnHarness{net: net, env: env, index: index, ers: ers, hosts: hosts, queries: queries}, nil
}

// meanHybridStretch averages hybrid-search stretch over the query set.
func (h *nnHarness) meanHybridStretch(budget int) float64 {
	total, n := 0.0, 0
	for _, q := range h.queries {
		res := h.index.SearchHybrid(h.env, q, budget)
		s := proximity.Stretch(h.net, q, res.Found, h.hosts)
		if math.IsInf(s, 1) {
			continue
		}
		total += s
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	return total / float64(n)
}

// meanERSStretch averages expanding-ring-search stretch over the query set.
func (h *nnHarness) meanERSStretch(budget int) float64 {
	total, n := 0.0, 0
	for _, q := range h.queries {
		res := h.ers.Search(h.env, q, budget)
		s := proximity.Stretch(h.net, q, res.Found, h.hosts)
		if math.IsInf(s, 1) {
			continue
		}
		total += s
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	return total / float64(n)
}

// meanHillClimbStretch averages hill-climbing stretch over the query set.
func (h *nnHarness) meanHillClimbStretch(budget int) float64 {
	total, n := 0.0, 0
	for _, q := range h.queries {
		res := h.ers.SearchHillClimb(h.env, q, budget)
		s := proximity.Stretch(h.net, q, res.Found, h.hosts)
		if math.IsInf(s, 1) {
			continue
		}
		total += s
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	return total / float64(n)
}

// RunFig3 reproduces Figure 3: nearest-neighbor stretch of ERS vs the
// hybrid landmark+RTT scheme on tsk-large, over small probe budgets. The
// hill-climbing heuristic the paper dismisses for its local-minimum
// pitfalls is included as a third series.
func RunFig3(sc Scale) ([]*Table, error) {
	h, err := buildNNHarness(TSKLarge, sc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig3",
		Title:   "Nearest-neighbor stretch vs #RTT probes (tsk-large): ERS vs hybrid",
		Columns: []string{"rtts", "ERS", "hillclimb", "lmk+rtt"},
	}
	for _, b := range sc.RTTSweep {
		t.AddRowf(b, h.meanERSStretch(b), h.meanHillClimbStretch(b), h.meanHybridStretch(b))
	}
	t.Note("budget 1 on the lmk+rtt series is landmark clustering alone")
	t.Note("hillclimb: greedy descent over overlay neighbors — plateaus at local minima (§1's critique)")
	t.Note("paper: hybrid approaches stretch 1 with a medium number of probes; ERS stays far above")
	return []*Table{t}, nil
}

// RunFig4 reproduces Figure 4: ERS alone on tsk-large with probe budgets
// into the thousands, showing how many nodes blind flooding must test.
func RunFig4(sc Scale) ([]*Table, error) {
	h, err := buildNNHarness(TSKLarge, sc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig4",
		Title:   "Expanding-ring search on tsk-large: stretch vs #RTT probes",
		Columns: []string{"rtts", "ERS"},
	}
	for _, b := range sc.ERSSweep {
		t.AddRowf(b, h.meanERSStretch(b))
	}
	t.Note("paper: ERS 'is not effective unless a large number (thousands) of nodes have been tested'")
	return []*Table{t}, nil
}

// RunFig5 reproduces Figure 5: the hybrid on tsk-small. Dense stubs defeat
// landmark resolution, so more probes are needed than on tsk-large.
func RunFig5(sc Scale) ([]*Table, error) {
	h, err := buildNNHarness(TSKSmall, sc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig5",
		Title:   "Hybrid landmark+RTT on tsk-small: stretch vs #RTT probes",
		Columns: []string{"rtts", "lmk+rtt"},
	}
	budgets := append([]int(nil), sc.RTTSweep...)
	last := budgets[len(budgets)-1]
	budgets = append(budgets, 2*last, 3*last) // the paper pushes to ~90 probes here
	for _, b := range budgets {
		t.AddRowf(b, h.meanHybridStretch(b))
	}
	t.Note("paper: on tsk-small even the hybrid must test more nodes — landmarks cannot differentiate close-by stub nodes")
	return []*Table{t}, nil
}

// RunFig6 reproduces Figure 6: ERS alone on tsk-small.
func RunFig6(sc Scale) ([]*Table, error) {
	h, err := buildNNHarness(TSKSmall, sc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig6",
		Title:   "Expanding-ring search on tsk-small: stretch vs #RTT probes",
		Columns: []string{"rtts", "ERS"},
	}
	for _, b := range sc.ERSSweep {
		t.AddRowf(b, h.meanERSStretch(b))
	}
	return []*Table{t}, nil
}
