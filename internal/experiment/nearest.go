package experiment

import (
	"math"

	"gsso/internal/experiment/engine"
	"gsso/internal/netsim"
	"gsso/internal/proximity"
)

// nnHarness is the shared setup of Figures 3-6: every stub host of the
// topology participates, indexed both by landmark position (for the
// hybrid) and as a full-population 2-d CAN (for expanding-ring search).
// The expensive immutable core (topology, landmark matrix, CAN, query
// set) is cached process-wide and shared across the four figures; the
// harness wraps it with a per-experiment Env so probe accounting stays
// attributed to the figure doing the measuring.
type nnHarness struct {
	*nnCore
	env *netsim.Env
}

func buildNNHarness(kind TopoKind, sc Scale, run string) (*nnHarness, error) {
	core, err := sharedNNCore(kind, sc)
	if err != nil {
		return nil, err
	}
	return &nnHarness{nnCore: core, env: netsim.NewRun(core.net, run)}, nil
}

// meanHybridStretch averages hybrid-search stretch over the query set.
func (h *nnHarness) meanHybridStretch(budget int) float64 {
	total, n := 0.0, 0
	for _, q := range h.queries {
		res := h.index.SearchHybrid(h.env, q, budget)
		s := proximity.Stretch(h.net, q, res.Found, h.hosts)
		if math.IsInf(s, 1) {
			continue
		}
		total += s
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	return total / float64(n)
}

// meanERSStretch averages expanding-ring-search stretch over the query set.
func (h *nnHarness) meanERSStretch(budget int) float64 {
	total, n := 0.0, 0
	for _, q := range h.queries {
		res := h.ers.Search(h.env, q, budget)
		s := proximity.Stretch(h.net, q, res.Found, h.hosts)
		if math.IsInf(s, 1) {
			continue
		}
		total += s
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	return total / float64(n)
}

// meanHillClimbStretch averages hill-climbing stretch over the query set.
func (h *nnHarness) meanHillClimbStretch(budget int) float64 {
	total, n := 0.0, 0
	for _, q := range h.queries {
		res := h.ers.SearchHillClimb(h.env, q, budget)
		s := proximity.Stretch(h.net, q, res.Found, h.hosts)
		if math.IsInf(s, 1) {
			continue
		}
		total += s
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	return total / float64(n)
}

// RunFig3 reproduces Figure 3: nearest-neighbor stretch of ERS vs the
// hybrid landmark+RTT scheme on tsk-large, over small probe budgets. The
// hill-climbing heuristic the paper dismisses for its local-minimum
// pitfalls is included as a third series. One unit per budget: every
// search is a read-only walk over the shared index, so budgets measure
// concurrently without affecting each other's results.
func RunFig3(sc Scale) ([]*Table, error) {
	h, err := buildNNHarness(TSKLarge, sc, "fig3")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig3",
		Title:   "Nearest-neighbor stretch vs #RTT probes (tsk-large): ERS vs hybrid",
		Columns: []string{"rtts", "ERS", "hillclimb", "lmk+rtt"},
	}
	rows, err := engine.Map(len(sc.RTTSweep), func(i int) ([3]float64, error) {
		b := sc.RTTSweep[i]
		return [3]float64{h.meanERSStretch(b), h.meanHillClimbStretch(b), h.meanHybridStretch(b)}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, b := range sc.RTTSweep {
		t.AddRowf(b, rows[i][0], rows[i][1], rows[i][2])
	}
	t.Note("budget 1 on the lmk+rtt series is landmark clustering alone")
	t.Note("hillclimb: greedy descent over overlay neighbors — plateaus at local minima (§1's critique)")
	t.Note("paper: hybrid approaches stretch 1 with a medium number of probes; ERS stays far above")
	return []*Table{t}, nil
}

// RunFig4 reproduces Figure 4: ERS alone on tsk-large with probe budgets
// into the thousands, showing how many nodes blind flooding must test.
func RunFig4(sc Scale) ([]*Table, error) {
	h, err := buildNNHarness(TSKLarge, sc, "fig4")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig4",
		Title:   "Expanding-ring search on tsk-large: stretch vs #RTT probes",
		Columns: []string{"rtts", "ERS"},
	}
	rows, err := engine.Map(len(sc.ERSSweep), func(i int) (float64, error) {
		return h.meanERSStretch(sc.ERSSweep[i]), nil
	})
	if err != nil {
		return nil, err
	}
	for i, b := range sc.ERSSweep {
		t.AddRowf(b, rows[i])
	}
	t.Note("paper: ERS 'is not effective unless a large number (thousands) of nodes have been tested'")
	return []*Table{t}, nil
}

// RunFig5 reproduces Figure 5: the hybrid on tsk-small. Dense stubs defeat
// landmark resolution, so more probes are needed than on tsk-large.
func RunFig5(sc Scale) ([]*Table, error) {
	h, err := buildNNHarness(TSKSmall, sc, "fig5")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig5",
		Title:   "Hybrid landmark+RTT on tsk-small: stretch vs #RTT probes",
		Columns: []string{"rtts", "lmk+rtt"},
	}
	budgets := append([]int(nil), sc.RTTSweep...)
	last := budgets[len(budgets)-1]
	budgets = append(budgets, 2*last, 3*last) // the paper pushes to ~90 probes here
	rows, err := engine.Map(len(budgets), func(i int) (float64, error) {
		return h.meanHybridStretch(budgets[i]), nil
	})
	if err != nil {
		return nil, err
	}
	for i, b := range budgets {
		t.AddRowf(b, rows[i])
	}
	t.Note("paper: on tsk-small even the hybrid must test more nodes — landmarks cannot differentiate close-by stub nodes")
	return []*Table{t}, nil
}

// RunFig6 reproduces Figure 6: ERS alone on tsk-small.
func RunFig6(sc Scale) ([]*Table, error) {
	h, err := buildNNHarness(TSKSmall, sc, "fig6")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig6",
		Title:   "Expanding-ring search on tsk-small: stretch vs #RTT probes",
		Columns: []string{"rtts", "ERS"},
	}
	rows, err := engine.Map(len(sc.ERSSweep), func(i int) (float64, error) {
		return h.meanERSStretch(sc.ERSSweep[i]), nil
	})
	if err != nil {
		return nil, err
	}
	for i, b := range sc.ERSSweep {
		t.AddRowf(b, rows[i])
	}
	return []*Table{t}, nil
}
