package experiment

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Plot renders a table whose first column is the x-axis and remaining
// columns are numeric series as an ASCII chart, one glyph per series.
// Non-numeric tables (or tables with fewer than two rows) degrade to a
// note and render nothing. It is the -plot mode of cmd/topobench: the
// same data as the table, in the shape the paper's figures have.
func Plot(t *Table, w io.Writer, width, height int) error {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 16
	}
	series, xs, ok := numericSeries(t)
	if !ok || len(xs) < 2 {
		_, err := fmt.Fprintf(w, "(%s is not plottable)\n", t.ID)
		return err
	}

	// Y-range across all series.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}
	xAt := func(i int) int {
		if len(xs) == 1 {
			return 0
		}
		return i * (width - 1) / (len(xs) - 1)
	}
	yAt := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		row := int(math.Round(float64(height-1) * (1 - frac)))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		return row
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		prevX, prevY := -1, -1
		for i, v := range s.values {
			x, y := xAt(i), yAt(v)
			grid[y][x] = g
			// Sparse linear interpolation so series read as lines.
			if prevX >= 0 {
				steps := x - prevX
				for k := 1; k < steps; k++ {
					ix := prevX + k
					iy := prevY + (y-prevY)*k/steps
					if grid[iy][ix] == ' ' {
						grid[iy][ix] = '.'
					}
				}
			}
			prevX, prevY = x, y
		}
	}

	if _, err := fmt.Fprintf(w, "-- %s: %s --\n", t.ID, t.Title); err != nil {
		return err
	}
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%8.3g", hi)
		case height - 1:
			label = fmt.Sprintf("%8.3g", lo)
		case height / 2:
			label = fmt.Sprintf("%8.3g", (hi+lo)/2)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%8s +%s\n", "", strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%8s  %-*g%*g   (x: %s)\n", "",
		width/2, xs[0], width-width/2-1, xs[len(xs)-1], t.Columns[0]); err != nil {
		return err
	}
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[si%len(glyphs)], s.name))
	}
	_, err := fmt.Fprintf(w, "%8s  %s\n\n", "", strings.Join(legend, "  "))
	return err
}

type plotSeries struct {
	name   string
	values []float64
}

// numericSeries extracts the x column and all fully numeric y columns.
func numericSeries(t *Table) ([]plotSeries, []float64, bool) {
	if len(t.Columns) < 2 || len(t.Rows) == 0 {
		return nil, nil, false
	}
	xs := make([]float64, len(t.Rows))
	for i, row := range t.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[0], "%"), 64)
		if err != nil {
			return nil, nil, false
		}
		xs[i] = v
	}
	var out []plotSeries
	for c := 1; c < len(t.Columns); c++ {
		s := plotSeries{name: t.Columns[c], values: make([]float64, len(t.Rows))}
		numeric := true
		for i, row := range t.Rows {
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[c], "%"), 64)
			if err != nil {
				numeric = false
				break
			}
			s.values[i] = v
		}
		if numeric {
			out = append(out, s)
		}
	}
	return out, xs, len(out) > 0
}
