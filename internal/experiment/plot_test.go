package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func numericTable() *Table {
	t := &Table{ID: "demo", Title: "demo plot", Columns: []string{"x", "a", "b"}}
	t.AddRowf(1, 10.0, 1.0)
	t.AddRowf(2, 8.0, 2.0)
	t.AddRowf(4, 5.0, 3.0)
	t.AddRowf(8, 2.0, 4.0)
	return t
}

func TestPlotRendersSeries(t *testing.T) {
	var buf bytes.Buffer
	if err := Plot(numericTable(), &buf, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo plot", "*", "o", "*=a", "o=b", "(x: x)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	// Axis labels include the extremes.
	if !strings.Contains(out, "10") || !strings.Contains(out, "1") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
}

func TestPlotDegradesOnNonNumeric(t *testing.T) {
	tb := &Table{ID: "words", Title: "words", Columns: []string{"k", "v"}}
	tb.AddRow("alpha", "beta")
	tb.AddRow("gamma", "delta")
	var buf bytes.Buffer
	if err := Plot(tb, &buf, 40, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "not plottable") {
		t.Fatalf("expected degradation note, got:\n%s", buf.String())
	}
}

func TestPlotSingleRowDegrades(t *testing.T) {
	tb := &Table{ID: "one", Title: "one", Columns: []string{"x", "y"}}
	tb.AddRowf(1, 2.0)
	var buf bytes.Buffer
	if err := Plot(tb, &buf, 40, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "not plottable") {
		t.Fatal("single-row table should degrade")
	}
}

func TestPlotMixedColumnsSkipsNonNumeric(t *testing.T) {
	tb := &Table{ID: "mixed", Title: "mixed", Columns: []string{"x", "num", "text"}}
	tb.AddRow("1", "5", "hello")
	tb.AddRow("2", "6", "world")
	var buf bytes.Buffer
	if err := Plot(tb, &buf, 40, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "*=num") {
		t.Fatalf("numeric series missing:\n%s", out)
	}
	if strings.Contains(out, "text") {
		t.Fatalf("non-numeric series should be skipped:\n%s", out)
	}
}

func TestPlotFlatSeries(t *testing.T) {
	tb := &Table{ID: "flat", Title: "flat", Columns: []string{"x", "y"}}
	tb.AddRowf(1, 3.0)
	tb.AddRowf(2, 3.0)
	tb.AddRowf(3, 3.0)
	var buf bytes.Buffer
	if err := Plot(tb, &buf, 30, 6); err != nil {
		t.Fatal(err) // constant series must not divide by zero
	}
}

func TestPlotPercentCells(t *testing.T) {
	tb := &Table{ID: "pct", Title: "pct", Columns: []string{"x", "share"}}
	tb.AddRow("1", "23.1%")
	tb.AddRow("2", "96.6%")
	var buf bytes.Buffer
	if err := Plot(tb, &buf, 30, 6); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*=share") {
		t.Fatal("percent cells should parse")
	}
}

func TestPlotDefaultsOnTinyDimensions(t *testing.T) {
	var buf bytes.Buffer
	if err := Plot(numericTable(), &buf, 1, 1); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(buf.String(), "\n")) < 10 {
		t.Fatal("dimension defaults not applied")
	}
}

func TestPlotRealFigure(t *testing.T) {
	tables, err := RunTab2(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	// tab2 is non-numeric in later columns; must not error.
	if err := Plot(tables[0], &buf, 60, 12); err != nil {
		t.Fatal(err)
	}
}
