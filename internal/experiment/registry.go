package experiment

import (
	"fmt"
	"io"
	"time"
)

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	// ID is the short handle used by cmd/topobench (-run fig14).
	ID string
	// Paper names the artifact in the paper.
	Paper string
	// Title is a one-line description.
	Title string
	// Run produces the tables.
	Run func(Scale) ([]*Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig2", "Figure 2", "eCAN vs basic CAN logical hops", RunFig2},
		{"fig3", "Figure 3", "ERS vs hybrid nearest-neighbor search (tsk-large)", RunFig3},
		{"fig4", "Figure 4", "ERS alone at large budgets (tsk-large)", RunFig4},
		{"fig5", "Figure 5", "Hybrid nearest-neighbor search (tsk-small)", RunFig5},
		{"fig6", "Figure 6", "ERS alone (tsk-small)", RunFig6},
		{"fig10", "Figure 10", "Stretch vs #RTTs, tsk-large, GT-ITM latencies", RunFig10},
		{"fig11", "Figure 11", "Stretch vs #RTTs, tsk-large, manual latencies", RunFig11},
		{"fig12", "Figure 12", "Stretch vs #RTTs, tsk-small, GT-ITM latencies", RunFig12},
		{"fig13", "Figure 13", "Stretch vs #RTTs, tsk-small, manual latencies", RunFig13},
		{"fig14", "Figure 14", "Stretch vs overlay size, GT-ITM latencies", RunFig14},
		{"fig15", "Figure 15", "Stretch vs overlay size, manual latencies", RunFig15},
		{"fig16", "Figure 16", "Map condense/reduction rate", RunFig16},
		{"tab1", "Table 1", "Closest-node lookup procedure, traced", RunTab1},
		{"tab2", "Table 2", "Experiment parameters", RunTab2},
		{"figB", "Appendix Fig 17", "Hilbert landmark numbering, worked example", RunFigB},
		{"ext-load", "§6", "Load-aware neighbor selection ablation", RunExtLoad},
		{"ext-pubsub", "§5.2", "Maintenance: pub/sub vs polling vs reactive", RunExtPubSub},
		{"ext-chord", "Appendix", "Soft-state hosted on Chord", RunExtChord},
		{"ext-tacan", "§1", "Topologically-Aware CAN zone imbalance", RunExtTACAN},
		{"ext-groups", "§5.4", "Landmark groups against false clustering", RunExtGroups},
		{"ext-hier", "§5.4", "Hierarchical landmark spaces", RunExtHier},
		{"ext-failure", "§5.2", "Soft-state repair after member crashes", RunExtFailure},
		{"ext-churn", "§5.2", "Record recall under seeded churn fault plans", RunExtChurn},
		{"ext-selfheal", "§5.2", "Self-healing membership: crash, takeover, repair", RunExtSelfHeal},
		{"ext-pastry", "§7", "Proximity-neighbor selection on Pastry", RunExtPastry},
		{"ext-svd", "§5.4", "SVD denoising of noisy landmark vectors", RunExtSVD},
		{"ext-ordering", "§2", "Landmark-ordering clustering baseline", RunExtOrdering},
		{"ext-scale", "ROADMAP 1", "Figures 3-6 trends at 10^5-10^6 nodes, flat topology", RunExtScale},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAndRender executes one experiment and renders its tables to w.
func RunAndRender(e Experiment, sc Scale, w io.Writer) error {
	start := time.Now()
	tables, err := e.Run(sc)
	if err != nil {
		return fmt.Errorf("experiment %s: %w", e.ID, err)
	}
	for _, t := range tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(w, "[%s completed in %v at %s scale]\n\n", e.ID, time.Since(start).Round(time.Millisecond), sc.Name)
	return err
}
