package experiment

import "fmt"

// Scale sizes an experiment run. Full reproduces the paper's dimensions
// (~10k-host topologies, 4096-member overlays); Quick shrinks everything
// so the entire suite runs in seconds for tests and CI.
//
// All sizes that reconstruct OCR-damaged constants of the paper are
// flagged "paper-reconstructed" in DESIGN.md §3.
type Scale struct {
	Name string
	// Seed roots every random stream of the run.
	Seed uint64
	// TopoScale multiplies NodesPerStub of the preset topologies.
	TopoScale float64
	// OverlayN is the member count for fixed-size experiments
	// (paper-reconstructed: 4096).
	OverlayN int
	// OverlaySweep is the member-count axis of Figures 2, 14, 15
	// (paper-reconstructed: 1K..8K).
	OverlaySweep []int
	// Queries is the number of routing measurements per configuration;
	// the paper uses twice the overlay size — QueriesFor applies that rule
	// capped at Queries.
	Queries int
	// NNQueries is the number of nearest-neighbor searches averaged in
	// Figures 3-6.
	NNQueries int
	// Landmarks is the default landmark count (paper-reconstructed: 15).
	Landmarks int
	// LandmarkSweep is the landmark axis of Figures 10-13.
	LandmarkSweep []int
	// RTTs is the default per-selection probe budget
	// (paper-reconstructed: 10).
	RTTs int
	// RTTSweep is the probe-budget axis of Figures 3, 5, 10-13.
	RTTSweep []int
	// ERSSweep is the probe-budget axis of the expanding-ring Figures 4, 6.
	ERSSweep []int
	// CondenseSweep is the map condense-depth axis of Figure 16
	// (reduction rate = 2^depth).
	CondenseSweep []int
	// CANDims is the dimensionality axis of Figure 2's basic-CAN curves.
	CANDims []int
	// ScaleSweep is the physical-node-count axis of the ext-scale
	// experiment (overridable with GSSO_SCALE_N). Full targets 10^5; the
	// bench-scale harness pushes the same cells to 10^6.
	ScaleSweep []int
}

// Full is the paper-scale configuration.
func Full(seed uint64) Scale {
	return Scale{
		Name:          "full",
		Seed:          seed,
		TopoScale:     1.0,
		OverlayN:      4096,
		OverlaySweep:  []int{1024, 2048, 4096, 8192},
		Queries:       8192,
		NNQueries:     100,
		Landmarks:     15,
		LandmarkSweep: []int{5, 15, 30},
		RTTs:          10,
		RTTSweep:      []int{1, 2, 3, 5, 8, 10, 15, 20, 30},
		ERSSweep:      []int{10, 30, 100, 300, 1000, 2000, 4000},
		CondenseSweep: []int{0, 1, 2, 3, 4, 6},
		CANDims:       []int{2, 3, 4, 5},
		ScaleSweep:    []int{100_000},
	}
}

// Quick is the CI-sized configuration: same axes, shrunk an order of
// magnitude, preserving every qualitative shape.
func Quick(seed uint64) Scale {
	return Scale{
		Name:          "quick",
		Seed:          seed,
		TopoScale:     0.2,
		OverlayN:      256,
		OverlaySweep:  []int{128, 256, 512},
		Queries:       512,
		NNQueries:     30,
		Landmarks:     8,
		LandmarkSweep: []int{4, 8, 16},
		RTTs:          8,
		RTTSweep:      []int{1, 2, 5, 10, 20},
		ERSSweep:      []int{10, 30, 100, 300, 1000, 2000},
		CondenseSweep: []int{0, 1, 2, 4},
		CANDims:       []int{2, 3, 4},
		ScaleSweep:    []int{1024, 2048},
	}
}

// QueriesFor applies the paper's "measurements are made for twice the
// number of nodes in the overlay" rule, capped by the scale's Queries.
func (s Scale) QueriesFor(overlayN int) int {
	q := 2 * overlayN
	if q > s.Queries {
		q = s.Queries
	}
	if q < 16 {
		q = 16
	}
	return q
}

// Validate sanity-checks a scale.
func (s Scale) Validate() error {
	switch {
	case s.TopoScale <= 0:
		return fmt.Errorf("experiment: TopoScale = %v", s.TopoScale)
	case s.OverlayN < 8:
		return fmt.Errorf("experiment: OverlayN = %d", s.OverlayN)
	case len(s.OverlaySweep) == 0 || len(s.RTTSweep) == 0 || len(s.LandmarkSweep) == 0:
		return fmt.Errorf("experiment: empty sweep axis")
	case s.Landmarks < 1 || s.RTTs < 1 || s.NNQueries < 1:
		return fmt.Errorf("experiment: non-positive defaults")
	}
	return nil
}
