package experiment

import (
	"os"
	"testing"
)

// TestSelfHealRecovery is the self-healing soak gate (`make soak`): with
// repair enabled, map discoverability must return to within 5% of the
// pre-crash baseline after every crash wave and routing must end fully
// healthy; with repair disabled the k=1 overlay must stay degraded —
// otherwise the experiment proves nothing about the repair pipeline.
// Set SOAK=1 for the full-scale overlay.
func TestSelfHealRecovery(t *testing.T) {
	sc := Quick(1)
	if os.Getenv("SOAK") != "" {
		sc = Full(1)
	}
	net, err := buildNet(TSKLarge, LatGTITM, sc)
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{1, 2, 3} {
		on, err := runSelfHeal(net, sc, selfHealConfig{repair: true, k: k})
		if err != nil {
			t.Fatal(err)
		}
		if !on.recovered(0.05) {
			t.Errorf("repair on, k=%d: recall did not recover (baseline %.3f, pre-wave-2 %.3f, final %.3f)",
				k, on.baseline, on.preWave2, on.final)
		}
		if on.takeovers == 0 {
			t.Errorf("repair on, k=%d: no takeovers ran", k)
		}
		if final := on.routeOK[len(on.routeOK)-1]; final < 1 {
			t.Errorf("repair on, k=%d: final route success %.3f, want 1.0", k, final)
		}

		off, err := runSelfHeal(net, sc, selfHealConfig{repair: false, k: k})
		if err != nil {
			t.Fatal(err)
		}
		if off.takeovers != 0 {
			t.Errorf("repair off, k=%d: %d takeovers ran", k, off.takeovers)
		}
		// Dead zones stay in every path until someone takes them over:
		// route success must separate repair on from off at every k.
		if final := off.routeOK[len(off.routeOK)-1]; final >= 1 {
			t.Errorf("repair off, k=%d: routing fully healthy without repair (%.3f)", k, final)
		}
		if k == 1 && off.recovered(0.05) {
			t.Errorf("repair off, k=1: recall recovered without repair (baseline %.3f, final %.3f)",
				off.baseline, off.final)
		}
	}

	// Determinism: the same config replays to the identical recall trace.
	a, err := runSelfHeal(net, sc, selfHealConfig{repair: true, k: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := runSelfHeal(net, sc, selfHealConfig{repair: true, k: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.recalls) != len(b.recalls) {
		t.Fatalf("replay produced %d ticks, want %d", len(b.recalls), len(a.recalls))
	}
	for i := range a.recalls {
		if a.recalls[i] != b.recalls[i] || a.routeOK[i] != b.routeOK[i] {
			t.Errorf("tick %d: replay (%.4f, %.4f) differs from first run (%.4f, %.4f)",
				i, b.recalls[i], b.routeOK[i], a.recalls[i], a.routeOK[i])
		}
	}
}
