package experiment

import (
	"gsso/internal/can"
	"gsso/internal/experiment/engine"
	"gsso/internal/landmark"
	"gsso/internal/netsim"
	"gsso/internal/proximity"
	"gsso/internal/simrand"
	"gsso/internal/topology"
)

// SharedRun is the telemetry run label charged for cache fills. Probes
// spent building a shared artifact (the nearest-neighbor index's landmark
// matrix) are attributed here rather than to whichever experiment happened
// to trigger the fill, so per-experiment telemetry is identical at every
// worker count.
const SharedRun = "shared"

// netKey identifies one generated topology. topology.Generate is a pure
// function of these four values (the generation streams derive from
// seed + kind + lat alone), and the resulting Network is immutable, so
// every experiment needing the same preset shares one instance.
type netKey struct {
	kind      TopoKind
	lat       LatKind
	topoScale float64
	seed      uint64
}

var netCache engine.Memo[netKey, *topology.Network]

// nnKey identifies one nearest-neighbor harness core (Figures 3-6). The
// landmark-vector matrix is keyed on top of the topology key by the
// parameters that shape it.
type nnKey struct {
	netKey
	landmarks int
	nnQueries int
}

var nnCache engine.Memo[nnKey, *nnCore]

// TopologyGenerations returns how many distinct topologies were generated
// and how many buildNet calls were served from cache — the "≤ one
// generation per distinct (kind, lat, scale, seed)" invariant is
// generations == distinct keys requested.
func TopologyGenerations() (generations, cacheHits int64) {
	hits, misses := netCache.Stats()
	return misses, hits
}

// ResetSharedCaches drops every cached topology and harness core. Tests
// use it to measure cold-cache behavior; production runs never need it.
func ResetSharedCaches() {
	netCache = engine.Memo[netKey, *topology.Network]{}
	nnCache = engine.Memo[nnKey, *nnCore]{}
}

// buildNet returns the requested preset topology at the scale's size,
// generating it at most once per distinct (kind, lat, TopoScale, Seed)
// process-wide. Concurrent callers for the same key block on a single
// generation. The returned Network is shared and immutable — dynamic
// state belongs in a per-caller netsim.Env.
func buildNet(kind TopoKind, lat LatKind, sc Scale) (*topology.Network, error) {
	key := netKey{kind: kind, lat: lat, topoScale: sc.TopoScale, seed: sc.Seed}
	return netCache.Do(key, func() (*topology.Network, error) {
		return generateNet(kind, lat, sc)
	})
}

// nnCore is the immutable heart of the Figures 3-6 harness: the topology,
// the landmark-vector index over every stub host, the full-population CAN
// for expanding-ring search, and the query set. All of it is read-only
// after construction and shared across experiments; per-experiment meters
// live in the nnHarness wrapper.
type nnCore struct {
	net     *topology.Network
	index   *proximity.Index
	ers     *proximity.ERS
	hosts   []topology.NodeID
	queries []topology.NodeID
}

// sharedNNCore returns the cached harness core for a topology kind,
// building it at most once per distinct key. The landmark measurements of
// the index build are metered under SharedRun.
func sharedNNCore(kind TopoKind, sc Scale) (*nnCore, error) {
	key := nnKey{
		netKey:    netKey{kind: kind, lat: LatGTITM, topoScale: sc.TopoScale, seed: sc.Seed},
		landmarks: sc.Landmarks,
		nnQueries: sc.NNQueries,
	}
	return nnCache.Do(key, func() (*nnCore, error) {
		net, err := buildNet(kind, LatGTITM, sc)
		if err != nil {
			return nil, err
		}
		env := netsim.NewRun(net, SharedRun)
		rng := simrand.New(sc.Seed).Split("nn/" + string(kind))
		hosts := net.StubHosts()

		set, err := landmark.Choose(net, sc.Landmarks, rng.Split("landmarks"))
		if err != nil {
			return nil, err
		}
		space, err := landmark.NewSpace(set, 3, 6,
			landmark.EstimateMaxRTT(net, set, net.RandomStubHosts(rng.Split("est"), 32)))
		if err != nil {
			return nil, err
		}
		index, err := proximity.BuildIndex(env, space, hosts)
		if err != nil {
			return nil, err
		}

		overlay, err := can.New(2)
		if err != nil {
			return nil, err
		}
		joinRNG := rng.Split("join")
		for _, h := range hosts {
			if _, err := overlay.JoinRandom(h, joinRNG); err != nil {
				return nil, err
			}
		}
		ers, err := proximity.NewERS(overlay)
		if err != nil {
			return nil, err
		}

		qRNG := rng.Split("queries")
		qIdx := qRNG.Sample(len(hosts), sc.NNQueries)
		queries := make([]topology.NodeID, len(qIdx))
		for i, q := range qIdx {
			queries[i] = hosts[q]
		}
		return &nnCore{net: net, index: index, ers: ers, hosts: hosts, queries: queries}, nil
	})
}
