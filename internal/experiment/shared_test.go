package experiment

import (
	"fmt"
	"sync"
	"testing"

	"gsso/internal/experiment/engine"
	"gsso/internal/netsim"
	"gsso/internal/simrand"
)

// TestSharedNetworkConcurrentEnvs hammers one cached topology from many
// concurrent netsim.Envs — the exact sharing pattern the engine creates
// when parallel units wrap the same immutable network. Run under -race (the
// Makefile's check target does), this is the proof that Network really is
// read-only after Generate and that Env meters are safely concurrent.
func TestSharedNetworkConcurrentEnvs(t *testing.T) {
	sc := Quick(1)
	net, err := buildNet(TSKLarge, LatGTITM, sc)
	if err != nil {
		t.Fatal(err)
	}
	again, err := buildNet(TSKLarge, LatGTITM, sc)
	if err != nil {
		t.Fatal(err)
	}
	if net != again {
		t.Fatal("same key returned distinct networks")
	}

	const units = 16
	sums, err := engine.Map(units, func(i int) (float64, error) {
		env := netsim.NewRun(net, fmt.Sprintf("hammer-%d", i))
		rng := simrand.New(7).Split(fmt.Sprintf("hammer/%d", i))
		hosts := net.StubHosts()
		sum := 0.0
		// Nested fan-out: sweep-point units inside an experiment unit.
		parts, err := engine.Map(4, func(j int) (float64, error) {
			inner := rng.Split(fmt.Sprintf("part/%d", j))
			s := 0.0
			for k := 0; k < 200; k++ {
				a := hosts[inner.Intn(len(hosts))]
				b := hosts[inner.Intn(len(hosts))]
				s += env.ProbeRTT(a, b)
				env.CountMessages("hammer", 1)
			}
			return s, nil
		})
		if err != nil {
			return 0, err
		}
		for _, p := range parts {
			sum += p
		}
		return sum, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Determinism: unit i's RTT sum depends only on its identity labels, so
	// a second pass must reproduce it exactly.
	again2, err := engine.Map(units, func(i int) (float64, error) {
		env := netsim.NewRun(net, fmt.Sprintf("hammer2-%d", i))
		rng := simrand.New(7).Split(fmt.Sprintf("hammer/%d", i))
		hosts := net.StubHosts()
		sum := 0.0
		for j := 0; j < 4; j++ {
			inner := rng.Split(fmt.Sprintf("part/%d", j))
			part := 0.0
			for k := 0; k < 200; k++ {
				a := hosts[inner.Intn(len(hosts))]
				b := hosts[inner.Intn(len(hosts))]
				part += env.ProbeRTT(a, b)
			}
			sum += part // same association order as the nested-Map pass
		}
		return sum, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sums {
		if sums[i] != again2[i] {
			t.Fatalf("unit %d: concurrent sum %v != sequential sum %v", i, sums[i], again2[i])
		}
	}
}

// TestSharedNNCoreSingleBuild exercises the second cache layer: many
// goroutines asking for the same harness core must share one build and may
// search it concurrently.
func TestSharedNNCoreSingleBuild(t *testing.T) {
	sc := Quick(1)
	var wg sync.WaitGroup
	cores := make([]*nnCore, 8)
	for i := range cores {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			core, err := sharedNNCore(TSKLarge, sc)
			if err != nil {
				t.Error(err)
				return
			}
			// Read-only searches from concurrent goroutines.
			env := netsim.NewRun(core.net, fmt.Sprintf("nncheck-%d", i))
			for _, q := range core.queries[:min(4, len(core.queries))] {
				core.index.SearchHybrid(env, q, 1)
				core.ers.Search(env, q, 1)
			}
			cores[i] = core
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(cores); i++ {
		if cores[i] != cores[0] {
			t.Fatalf("goroutine %d got a distinct core", i)
		}
	}
}
