package experiment

import (
	"fmt"

	"gsso/internal/can"
	"gsso/internal/ecan"
	"gsso/internal/landmark"
	"gsso/internal/netsim"
	"gsso/internal/simrand"
	"gsso/internal/softstate"
	"gsso/internal/topology"
)

// TopoKind selects one of the paper's two topologies.
type TopoKind string

// The paper's topologies.
const (
	TSKLarge TopoKind = "tsk-large"
	TSKSmall TopoKind = "tsk-small"
)

// LatKind selects the link-latency assignment.
type LatKind string

// The paper's two latency settings.
const (
	LatGTITM  LatKind = "gtitm"
	LatManual LatKind = "manual"
)

// generateNet generates the requested preset topology at the scale's
// size. Callers go through buildNet (shared.go), which memoizes the
// result per distinct (kind, lat, TopoScale, Seed).
func generateNet(kind TopoKind, lat LatKind, sc Scale) (*topology.Network, error) {
	model := topology.GTITMLatency()
	if lat == LatManual {
		model = topology.ManualLatency()
	}
	var spec topology.Spec
	switch kind {
	case TSKLarge:
		spec = topology.TSKLarge(model)
	case TSKSmall:
		spec = topology.TSKSmall(model)
	default:
		return nil, fmt.Errorf("experiment: unknown topology kind %q", kind)
	}
	spec = spec.Scaled(sc.TopoScale)
	rng := simrand.New(sc.Seed).Split("topo/" + string(kind) + "/" + string(lat))
	return topology.Generate(spec, rng)
}

// stack is the full system: topology, environment, overlay, landmark
// space, and soft-state store with everyone published.
type stack struct {
	net     *topology.Network
	env     *netsim.Env
	overlay *ecan.Overlay
	space   *landmark.Space
	store   *softstate.Store
	rng     *simrand.Source
}

// stackConfig parameterizes buildStack.
type stackConfig struct {
	overlayN  int
	landmarks int
	condense  int
	maxReturn int
	label     string // seed-split label, distinct per configuration
	run       string // telemetry run label, normally the experiment ID
}

// buildStack assembles the system over an existing network. The overlay's
// initial selector is random; callers install the selector under test via
// SetSelector. Every seed stream derives from sc.Seed and cfg.label alone,
// so two stacks with the same config are identical regardless of build
// order or worker placement.
func buildStack(net *topology.Network, sc Scale, cfg stackConfig) (*stack, error) {
	if cfg.maxReturn == 0 {
		cfg.maxReturn = 32
	}
	rng := simrand.New(sc.Seed).Split("stack/" + cfg.label)
	env := netsim.NewRun(net, cfg.run)
	overlay, err := ecan.BuildUniform(net, cfg.overlayN, 2, 0,
		ecan.RandomSelector{RNG: rng.Split("select")}, rng.Split("overlay"))
	if err != nil {
		return nil, err
	}
	set, err := landmark.Choose(net, cfg.landmarks, rng.Split("landmarks"))
	if err != nil {
		return nil, err
	}
	maxRTT := landmark.EstimateMaxRTT(net, set, net.RandomStubHosts(rng.Split("estimate"), 32))
	space, err := landmark.NewSpace(set, 3, 6, maxRTT)
	if err != nil {
		return nil, err
	}
	store, err := softstate.NewStore(overlay, space, env, softstate.Config{
		TTL:           1e9, // static-membership experiments never expire
		CondenseDepth: cfg.condense,
		MaxReturn:     cfg.maxReturn,
		ExpandBudget:  8,
	})
	if err != nil {
		return nil, err
	}
	if err := store.PublishAll(nil); err != nil {
		return nil, err
	}
	return &stack{net: net, env: env, overlay: overlay, space: space, store: store, rng: rng}, nil
}

// pair is one routing measurement: source member, destination member.
type pair struct {
	src, dst *can.Member
}

// samplePairs draws n measurement pairs with distinct hosts.
func samplePairs(overlay *ecan.Overlay, n int, rng *simrand.Source) []pair {
	members := overlay.CAN().Members()
	out := make([]pair, 0, n)
	for len(out) < n {
		src := members[rng.Intn(len(members))]
		dst := members[rng.Intn(len(members))]
		if src == dst || src.Host == dst.Host {
			continue
		}
		out = append(out, pair{src: src, dst: dst})
	}
	return out
}

// meanStretch routes every pair and returns the mean ratio of overlay path
// latency to direct latency.
func meanStretch(overlay *ecan.Overlay, env *netsim.Env, pairs []pair) (float64, error) {
	total, count := 0.0, 0
	for _, p := range pairs {
		res, err := overlay.Route(p.src, p.dst.ZoneCenter())
		if err != nil {
			return 0, err
		}
		direct := env.Latency(p.src.Host, p.dst.Host)
		if direct <= 0 {
			continue
		}
		total += res.Latency(env) / direct
		count++
	}
	if count == 0 {
		return 0, fmt.Errorf("experiment: no measurable pairs")
	}
	return total / float64(count), nil
}

// stretchWithSelector installs sel (clearing cached entries) and measures
// mean stretch over pairs.
func stretchWithSelector(st *stack, sel ecan.Selector, pairs []pair) (float64, error) {
	st.overlay.SetSelector(sel)
	return meanStretch(st.overlay, st.env, pairs)
}
