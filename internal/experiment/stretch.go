package experiment

import (
	"fmt"
	"slices"

	"gsso/internal/ecan"
	"gsso/internal/experiment/engine"
	"gsso/internal/simrand"
	"gsso/internal/softstate"
)

// runStretchFig is the engine behind Figures 10-13: routing stretch of the
// global-soft-state overlay as a function of the per-selection RTT budget,
// for several landmark counts, against the oracle-optimal selection.
//
// The unit of parallelism is one landmark count (one table column): each
// unit owns its stack outright — eCAN overlays cache routing entries
// during measurement, so a stack must never be shared between concurrent
// units — and walks the RTT axis sequentially. Every seed stream derives
// from (sc.Seed, figure, landmark count, rtts), never from scheduling, and
// SetSelector clears cached entries before each measurement, so cell
// values are independent of both the walk order and the worker count.
func runStretchFig(id string, kind TopoKind, lat LatKind, sc Scale) ([]*Table, error) {
	net, err := buildNet(kind, lat, sc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: id,
		Title: fmt.Sprintf("Routing stretch vs #RTTs (%s, %s latencies, N=%d)",
			kind, lat, sc.OverlayN),
	}
	t.Columns = append(t.Columns, "rtts")
	for _, lm := range sc.LandmarkSweep {
		t.Columns = append(t.Columns, fmt.Sprintf("landmarks=%d", lm))
	}
	t.Columns = append(t.Columns, "optimal")

	// column i holds the stretch for landmark count i at every RTT budget;
	// unit 0 additionally measures the landmark-independent oracle column
	// (the oracle is insensitive to the landmark system, so measuring it on
	// the first stack matches the paper's methodology).
	type column struct {
		cells   []float64
		optimal float64
	}
	cols, err := engine.Map(len(sc.LandmarkSweep), func(i int) (column, error) {
		lm := sc.LandmarkSweep[i]
		st, err := buildStack(net, sc, stackConfig{
			overlayN:  sc.OverlayN,
			landmarks: lm,
			maxReturn: max(32, slices.Max(sc.RTTSweep)),
			label:     fmt.Sprintf("%s/lm%d", id, lm),
			run:       id,
		})
		if err != nil {
			return column{}, err
		}
		// The same measurement pairs throughout for comparability; the
		// pair stream depends only on the figure's label, so every column
		// samples the identical host-pair sequence over its own overlay.
		pairs := samplePairs(st.overlay, sc.QueriesFor(sc.OverlayN),
			simrand.New(sc.Seed).Split(id+"/pairs"))
		col := column{cells: make([]float64, len(sc.RTTSweep))}
		if i == 0 {
			col.optimal, err = stretchWithSelector(st, ecan.ClosestSelector{Env: st.env}, pairs)
			if err != nil {
				return column{}, err
			}
		}
		for j, rtts := range sc.RTTSweep {
			sel, err := softstate.NewSelector(st.store, rtts,
				ecan.RandomSelector{RNG: simrand.New(sc.Seed).Split(fmt.Sprintf("%s/fb/%d/%d", id, i, rtts))})
			if err != nil {
				return column{}, err
			}
			s, err := stretchWithSelector(st, sel, pairs)
			if err != nil {
				return column{}, err
			}
			col.cells[j] = s
		}
		return col, nil
	})
	if err != nil {
		return nil, err
	}

	for j, rtts := range sc.RTTSweep {
		row := []interface{}{rtts}
		for i := range sc.LandmarkSweep {
			row = append(row, cols[i].cells[j])
		}
		row = append(row, cols[0].optimal)
		t.AddRowf(row...)
	}
	t.Note("optimal = oracle closest-in-region selection (infinite RTT budget)")
	t.Note("paper: stretch falls toward optimal as RTT budget grows; more landmarks help most with regular (manual) latencies and large transits")
	return []*Table{t}, nil
}

// RunFig10 reproduces Figure 10 (tsk-large, GT-ITM latencies).
func RunFig10(sc Scale) ([]*Table, error) { return runStretchFig("fig10", TSKLarge, LatGTITM, sc) }

// RunFig11 reproduces Figure 11 (tsk-large, manual latencies).
func RunFig11(sc Scale) ([]*Table, error) { return runStretchFig("fig11", TSKLarge, LatManual, sc) }

// RunFig12 reproduces Figure 12 (tsk-small, GT-ITM latencies).
func RunFig12(sc Scale) ([]*Table, error) { return runStretchFig("fig12", TSKSmall, LatGTITM, sc) }

// RunFig13 reproduces Figure 13 (tsk-small, manual latencies).
func RunFig13(sc Scale) ([]*Table, error) { return runStretchFig("fig13", TSKSmall, LatManual, sc) }

// runSizeFig is the engine behind Figures 14-15: stretch vs overlay size,
// global-soft-state selection against random neighbor selection, on both
// topologies, at the default landmark count and RTT budget. One unit per
// (overlay size, topology) cell; each unit builds its own stack.
func runSizeFig(id string, lat LatKind, sc Scale) ([]*Table, error) {
	t := &Table{
		ID: id,
		Title: fmt.Sprintf("Routing stretch vs overlay size (%s latencies, landmarks=%d, rtts=%d)",
			lat, sc.Landmarks, sc.RTTs),
		Columns: []string{"nodes", "large transit", "small transit",
			"large transit (random)", "small transit (random)"},
	}
	kinds := []TopoKind{TSKLarge, TSKSmall}
	type cell struct{ global, random float64 }
	cells, err := engine.Map(len(sc.OverlaySweep)*len(kinds), func(u int) (cell, error) {
		n, kind := sc.OverlaySweep[u/len(kinds)], kinds[u%len(kinds)]
		net, err := buildNet(kind, lat, sc)
		if err != nil {
			return cell{}, err
		}
		st, err := buildStack(net, sc, stackConfig{
			overlayN:  n,
			landmarks: sc.Landmarks,
			label:     fmt.Sprintf("%s/%s/%d", id, kind, n),
			run:       id,
		})
		if err != nil {
			return cell{}, err
		}
		pairs := samplePairs(st.overlay, sc.QueriesFor(n),
			simrand.New(sc.Seed).Split(fmt.Sprintf("%s/pairs/%s/%d", id, kind, n)))
		sel, err := softstate.NewSelector(st.store, sc.RTTs,
			ecan.RandomSelector{RNG: simrand.New(sc.Seed).Split(id + "/fb")})
		if err != nil {
			return cell{}, err
		}
		gs, err := stretchWithSelector(st, sel, pairs)
		if err != nil {
			return cell{}, err
		}
		rnd, err := stretchWithSelector(st,
			ecan.RandomSelector{RNG: simrand.New(sc.Seed).Split(id + "/rand")}, pairs)
		if err != nil {
			return cell{}, err
		}
		return cell{global: gs, random: rnd}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, n := range sc.OverlaySweep {
		large, small := cells[i*len(kinds)], cells[i*len(kinds)+1]
		t.AddRowf(n, large.global, small.global, large.random, small.random)
	}
	t.Note("paper: global state with landmark clustering improves stretch ~15-45%% over random neighbor selection")
	t.Note("paper: the improvement is larger for small-transit/large-stub topologies")
	return []*Table{t}, nil
}

// RunFig14 reproduces Figure 14 (GT-ITM latencies).
func RunFig14(sc Scale) ([]*Table, error) { return runSizeFig("fig14", LatGTITM, sc) }

// RunFig15 reproduces Figure 15 (manual latencies).
func RunFig15(sc Scale) ([]*Table, error) { return runSizeFig("fig15", LatManual, sc) }

// RunFig16 reproduces Figure 16: the effect of the map condense/reduction
// rate on map entries per hosting node and on routing stretch. One unit
// per condense depth.
func RunFig16(sc Scale) ([]*Table, error) {
	net, err := buildNet(TSKLarge, LatManual, sc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig16",
		Title: fmt.Sprintf("Map condense rate (tsk-large, manual latencies, N=%d)", sc.OverlayN),
		Columns: []string{"reduction rate", "entries/node (mean)", "entries/node (max)",
			"map owners", "stretch"},
	}
	type row struct {
		mean    float64
		maxC    int
		owners  int
		stretch float64
	}
	rows, err := engine.Map(len(sc.CondenseSweep), func(i int) (row, error) {
		depth := sc.CondenseSweep[i]
		st, err := buildStack(net, sc, stackConfig{
			overlayN:  sc.OverlayN,
			landmarks: sc.Landmarks,
			condense:  depth,
			label:     fmt.Sprintf("fig16/c%d", depth),
			run:       "fig16",
		})
		if err != nil {
			return row{}, err
		}
		counts := st.store.EntriesPerOwner()
		total, maxC := 0, 0
		for _, c := range counts {
			total += c
			if c > maxC {
				maxC = c
			}
		}
		mean := 0.0
		if len(counts) > 0 {
			mean = float64(total) / float64(len(counts))
		}
		pairs := samplePairs(st.overlay, sc.QueriesFor(sc.OverlayN),
			simrand.New(sc.Seed).Split(fmt.Sprintf("fig16/pairs/%d", depth)))
		sel, err := softstate.NewSelector(st.store, sc.RTTs,
			ecan.RandomSelector{RNG: simrand.New(sc.Seed).Split("fig16/fb")})
		if err != nil {
			return row{}, err
		}
		s, err := stretchWithSelector(st, sel, pairs)
		if err != nil {
			return row{}, err
		}
		return row{mean: mean, maxC: maxC, owners: len(counts), stretch: s}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, depth := range sc.CondenseSweep {
		r := rows[i]
		t.AddRowf(1<<uint(depth), r.mean, r.maxC, r.owners, r.stretch)
	}
	t.Note("reduction rate 2^d condenses each region's map into 1/2^d of the region")
	t.Note("paper: stretch is insensitive to the rate as long as tens of entries per node remain")
	return []*Table{t}, nil
}
