package experiment

import (
	"fmt"
	"slices"

	"gsso/internal/ecan"
	"gsso/internal/simrand"
	"gsso/internal/softstate"
)

// runStretchFig is the engine behind Figures 10-13: routing stretch of the
// global-soft-state overlay as a function of the per-selection RTT budget,
// for several landmark counts, against the oracle-optimal selection.
func runStretchFig(id string, kind TopoKind, lat LatKind, sc Scale) ([]*Table, error) {
	net, err := buildNet(kind, lat, sc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: id,
		Title: fmt.Sprintf("Routing stretch vs #RTTs (%s, %s latencies, N=%d)",
			kind, lat, sc.OverlayN),
	}
	t.Columns = append(t.Columns, "rtts")
	for _, lm := range sc.LandmarkSweep {
		t.Columns = append(t.Columns, fmt.Sprintf("landmarks=%d", lm))
	}
	t.Columns = append(t.Columns, "optimal")

	// One stack per landmark count (the space and store depend on it); the
	// same measurement pairs throughout for comparability.
	stacks := make([]*stack, len(sc.LandmarkSweep))
	for i, lm := range sc.LandmarkSweep {
		st, err := buildStack(net, sc, stackConfig{
			overlayN:  sc.OverlayN,
			landmarks: lm,
			maxReturn: max(32, slices.Max(sc.RTTSweep)),
			label:     fmt.Sprintf("%s/lm%d", id, lm),
		})
		if err != nil {
			return nil, err
		}
		stacks[i] = st
	}
	pairRNG := simrand.New(sc.Seed).Split(id + "/pairs")
	pairs := samplePairs(stacks[0].overlay, sc.QueriesFor(sc.OverlayN), pairRNG)

	// The optimal column is landmark-independent; measure it once on the
	// first stack (same overlay geometry for all landmark counts is not
	// guaranteed, but the oracle is insensitive to the landmark system).
	optimal, err := stretchWithSelector(stacks[0], ecan.ClosestSelector{Env: stacks[0].env}, pairs)
	if err != nil {
		return nil, err
	}

	for _, rtts := range sc.RTTSweep {
		row := []interface{}{rtts}
		for i := range sc.LandmarkSweep {
			st := stacks[i]
			// Pairs reference members of stack 0's overlay; each stack has
			// its own overlay, so re-sample pairs per stack by host
			// identity via a per-stack pair set.
			sel, err := softstate.NewSelector(st.store, rtts,
				ecan.RandomSelector{RNG: simrand.New(sc.Seed).Split(fmt.Sprintf("%s/fb/%d/%d", id, i, rtts))})
			if err != nil {
				return nil, err
			}
			stPairs := pairs
			if st != stacks[0] {
				stPairs = samplePairs(st.overlay, sc.QueriesFor(sc.OverlayN),
					simrand.New(sc.Seed).Split(id+"/pairs"))
			}
			s, err := stretchWithSelector(st, sel, stPairs)
			if err != nil {
				return nil, err
			}
			row = append(row, s)
		}
		row = append(row, optimal)
		t.AddRowf(row...)
	}
	t.Note("optimal = oracle closest-in-region selection (infinite RTT budget)")
	t.Note("paper: stretch falls toward optimal as RTT budget grows; more landmarks help most with regular (manual) latencies and large transits")
	return []*Table{t}, nil
}

// RunFig10 reproduces Figure 10 (tsk-large, GT-ITM latencies).
func RunFig10(sc Scale) ([]*Table, error) { return runStretchFig("fig10", TSKLarge, LatGTITM, sc) }

// RunFig11 reproduces Figure 11 (tsk-large, manual latencies).
func RunFig11(sc Scale) ([]*Table, error) { return runStretchFig("fig11", TSKLarge, LatManual, sc) }

// RunFig12 reproduces Figure 12 (tsk-small, GT-ITM latencies).
func RunFig12(sc Scale) ([]*Table, error) { return runStretchFig("fig12", TSKSmall, LatGTITM, sc) }

// RunFig13 reproduces Figure 13 (tsk-small, manual latencies).
func RunFig13(sc Scale) ([]*Table, error) { return runStretchFig("fig13", TSKSmall, LatManual, sc) }

// runSizeFig is the engine behind Figures 14-15: stretch vs overlay size,
// global-soft-state selection against random neighbor selection, on both
// topologies, at the default landmark count and RTT budget.
func runSizeFig(id string, lat LatKind, sc Scale) ([]*Table, error) {
	t := &Table{
		ID: id,
		Title: fmt.Sprintf("Routing stretch vs overlay size (%s latencies, landmarks=%d, rtts=%d)",
			lat, sc.Landmarks, sc.RTTs),
		Columns: []string{"nodes", "large transit", "small transit",
			"large transit (random)", "small transit (random)"},
	}
	netLarge, err := buildNet(TSKLarge, lat, sc)
	if err != nil {
		return nil, err
	}
	netSmall, err := buildNet(TSKSmall, lat, sc)
	if err != nil {
		return nil, err
	}
	kinds := []TopoKind{TSKLarge, TSKSmall}
	for _, n := range sc.OverlaySweep {
		row := []interface{}{n}
		var globals, randoms []float64
		for _, kind := range kinds {
			net := netLarge
			if kind == TSKSmall {
				net = netSmall
			}
			st, err := buildStack(net, sc, stackConfig{
				overlayN:  n,
				landmarks: sc.Landmarks,
				label:     fmt.Sprintf("%s/%s/%d", id, kind, n),
			})
			if err != nil {
				return nil, err
			}
			pairs := samplePairs(st.overlay, sc.QueriesFor(n),
				simrand.New(sc.Seed).Split(fmt.Sprintf("%s/pairs/%s/%d", id, kind, n)))
			sel, err := softstate.NewSelector(st.store, sc.RTTs,
				ecan.RandomSelector{RNG: simrand.New(sc.Seed).Split(id + "/fb")})
			if err != nil {
				return nil, err
			}
			gs, err := stretchWithSelector(st, sel, pairs)
			if err != nil {
				return nil, err
			}
			rnd, err := stretchWithSelector(st,
				ecan.RandomSelector{RNG: simrand.New(sc.Seed).Split(id + "/rand")}, pairs)
			if err != nil {
				return nil, err
			}
			globals = append(globals, gs)
			randoms = append(randoms, rnd)
		}
		row = append(row, globals[0], globals[1], randoms[0], randoms[1])
		t.AddRowf(row...)
	}
	t.Note("paper: global state with landmark clustering improves stretch ~15-45%% over random neighbor selection")
	t.Note("paper: the improvement is larger for small-transit/large-stub topologies")
	return []*Table{t}, nil
}

// RunFig14 reproduces Figure 14 (GT-ITM latencies).
func RunFig14(sc Scale) ([]*Table, error) { return runSizeFig("fig14", LatGTITM, sc) }

// RunFig15 reproduces Figure 15 (manual latencies).
func RunFig15(sc Scale) ([]*Table, error) { return runSizeFig("fig15", LatManual, sc) }

// RunFig16 reproduces Figure 16: the effect of the map condense/reduction
// rate on map entries per hosting node and on routing stretch.
func RunFig16(sc Scale) ([]*Table, error) {
	net, err := buildNet(TSKLarge, LatManual, sc)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig16",
		Title: fmt.Sprintf("Map condense rate (tsk-large, manual latencies, N=%d)", sc.OverlayN),
		Columns: []string{"reduction rate", "entries/node (mean)", "entries/node (max)",
			"map owners", "stretch"},
	}
	for _, depth := range sc.CondenseSweep {
		st, err := buildStack(net, sc, stackConfig{
			overlayN:  sc.OverlayN,
			landmarks: sc.Landmarks,
			condense:  depth,
			label:     fmt.Sprintf("fig16/c%d", depth),
		})
		if err != nil {
			return nil, err
		}
		counts := st.store.EntriesPerOwner()
		total, maxC := 0, 0
		for _, c := range counts {
			total += c
			if c > maxC {
				maxC = c
			}
		}
		mean := 0.0
		if len(counts) > 0 {
			mean = float64(total) / float64(len(counts))
		}
		pairs := samplePairs(st.overlay, sc.QueriesFor(sc.OverlayN),
			simrand.New(sc.Seed).Split(fmt.Sprintf("fig16/pairs/%d", depth)))
		sel, err := softstate.NewSelector(st.store, sc.RTTs,
			ecan.RandomSelector{RNG: simrand.New(sc.Seed).Split("fig16/fb")})
		if err != nil {
			return nil, err
		}
		s, err := stretchWithSelector(st, sel, pairs)
		if err != nil {
			return nil, err
		}
		t.AddRowf(1<<uint(depth), mean, maxC, len(counts), s)
	}
	t.Note("reduction rate 2^d condenses each region's map into 1/2^d of the region")
	t.Note("paper: stretch is insensitive to the rate as long as tens of entries per node remain")
	return []*Table{t}, nil
}
