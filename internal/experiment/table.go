// Package experiment contains one generator per table and figure of the
// paper, plus the extension ablations listed in DESIGN.md. Each generator
// consumes a Scale (full reproduces the paper's sizes; quick shrinks
// everything for CI) and produces Tables that print the same rows/series
// the paper plots.
package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment artifact: a titled grid of cells with
// paper-vs-measured commentary.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one row; cell counts are normalized to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted values: strings pass through,
// float64 render %.3f, ints %d.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.3f", v))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		case int64:
			row = append(row, fmt.Sprintf("%d", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// Note appends a commentary line shown under the table.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV writes the table in CSV form (columns, then rows).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
