package experiment

import (
	"fmt"

	"gsso/internal/hilbert"
)

// RunTab1 reproduces Table 1 as a traced walkthrough: the procedure for
// locating the closest node in a zone, executed step by step on a live
// stack, with the paper's pseudocode line next to what actually happened.
func RunTab1(sc Scale) ([]*Table, error) {
	net, err := buildNet(TSKLarge, LatGTITM, sc)
	if err != nil {
		return nil, err
	}
	st, err := buildStack(net, sc, stackConfig{
		overlayN:  sc.OverlayN,
		landmarks: sc.Landmarks,
		label:     "tab1",
		run:       "tab1",
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "tab1",
		Title:   "Procedure for locating the closest node in a zone (traced)",
		Columns: []string{"step", "paper", "this run"},
	}
	members := st.overlay.CAN().Members()
	x := members[0]
	region := x.Path().Prefix(st.overlay.DigitLen())
	vec := st.store.Vector(x)
	num, _ := st.store.Number(x)
	t.AddRowf(1, "let px be x's position in the landmark space",
		fmt.Sprintf("landmark vector of %d dims, number=%d", len(vec), num))
	owner := st.store.OwnerOf(region, num)
	t.AddRowf(2, "map px to px' in Z",
		fmt.Sprintf("placement inside region %s -> owner host %d", region, owner.Host))
	entries, cost, err := st.store.Lookup(region, vec)
	if err != nil {
		return nil, err
	}
	t.AddRowf(3, "route to the node y in Z that owns px'",
		fmt.Sprintf("%d overlay messages", cost.RouteMessages))
	t.AddRowf(4, "if y's map content is not empty, return map content",
		fmt.Sprintf("%d candidates returned (%d expand hops)", len(entries), cost.ExpandHops))
	t.AddRowf(5, "define a TTL to search outside y's map content range",
		fmt.Sprintf("expand budget %d shards", st.store.Config().ExpandBudget))
	best := "no candidates"
	probed := 0
	bestRTT := 0.0
	for _, e := range entries {
		if e.Member == x {
			continue // a node never probes itself
		}
		r := st.env.ProbeRTT(x.Host, e.Host)
		if probed == 0 || r < bestRTT {
			bestRTT = r
		}
		probed++
	}
	if probed > 0 {
		best = fmt.Sprintf("probed %d candidates, best RTT %.2f ms", probed, bestRTT)
	}
	t.AddRowf(6, "requester RTT-probes the returned candidates", best)
	return []*Table{t}, nil
}

// RunTab2 reproduces Table 2: the experiment parameters with their
// defaults and ranges, as actually used by this reproduction at the given
// scale.
func RunTab2(sc Scale) ([]*Table, error) {
	t := &Table{
		ID:      "tab2",
		Title:   fmt.Sprintf("Experiment parameters (%s scale)", sc.Name),
		Columns: []string{"parameter", "default", "range"},
	}
	t.AddRowf("# nodes (overlay)", sc.OverlayN,
		fmt.Sprintf("%d - %d", sc.OverlaySweep[0], sc.OverlaySweep[len(sc.OverlaySweep)-1]))
	t.AddRowf("# landmarks", sc.Landmarks,
		fmt.Sprintf("%d - %d", sc.LandmarkSweep[0], sc.LandmarkSweep[len(sc.LandmarkSweep)-1]))
	t.AddRowf("# RTT measurements", sc.RTTs,
		fmt.Sprintf("%d - %d", sc.RTTSweep[0], sc.RTTSweep[len(sc.RTTSweep)-1]))
	t.AddRowf("map condense rate", 1,
		fmt.Sprintf("%d - %d", 1<<uint(sc.CondenseSweep[0]), 1<<uint(sc.CondenseSweep[len(sc.CondenseSweep)-1])))
	t.Note("paper's Table 2 defaults/ranges are OCR-damaged; these are the DESIGN.md §3 reconstructions")
	return []*Table{t}, nil
}

// RunFigB reproduces the appendix worked example (Figure 17): landmark
// numbers assigned by walking a 2-d landmark-space grid with the Hilbert
// curve, demonstrating that consecutive numbers are adjacent cells.
func RunFigB(sc Scale) ([]*Table, error) {
	curve, err := hilbert.New(2, 2) // 4x4 grid, numbers 0-15, as in the figure
	if err != nil {
		return nil, err
	}
	grid := &Table{
		ID:      "figB",
		Title:   "Appendix: Hilbert landmark numbering of a 4x4 landmark-space grid",
		Columns: []string{"y\\x", "0", "1", "2", "3"},
	}
	for y := uint32(0); y < 4; y++ {
		row := []interface{}{fmt.Sprintf("%d", y)}
		for x := uint32(0); x < 4; x++ {
			n, err := curve.Encode([]uint32{x, y})
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d", n))
		}
		grid.AddRowf(row...)
	}
	grid.Note("consecutive landmark numbers always occupy adjacent grid cells (Hilbert property)")

	walk := &Table{
		ID:      "figB-walk",
		Title:   "The curve walk: number -> cell",
		Columns: []string{"number", "cell (x,y)", "L1 step from previous"},
	}
	var prev []uint32
	for n := uint64(0); n <= curve.MaxIndex(); n++ {
		cell, err := curve.Decode(n)
		if err != nil {
			return nil, err
		}
		step := "-"
		if prev != nil {
			d := 0
			for i := range cell {
				di := int(cell[i]) - int(prev[i])
				if di < 0 {
					di = -di
				}
				d += di
			}
			step = fmt.Sprintf("%d", d)
		}
		walk.AddRowf(int(n), fmt.Sprintf("(%d,%d)", cell[0], cell[1]), step)
		prev = cell
	}
	_ = sc // the worked example has a fixed size
	return []*Table{grid, walk}, nil
}
