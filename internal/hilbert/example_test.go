package hilbert_test

import (
	"fmt"

	"gsso/internal/hilbert"
)

// ExampleCurve_Encode walks the classic first-order 2-d Hilbert curve.
func ExampleCurve_Encode() {
	curve := hilbert.MustNew(2, 1) // 2x2 grid
	for _, cell := range [][]uint32{{0, 0}, {0, 1}, {1, 1}, {1, 0}} {
		idx, err := curve.Encode(cell)
		if err != nil {
			panic(err)
		}
		fmt.Printf("cell (%d,%d) -> index %d\n", cell[0], cell[1], idx)
	}
	// Output:
	// cell (0,0) -> index 0
	// cell (0,1) -> index 1
	// cell (1,1) -> index 2
	// cell (1,0) -> index 3
}

// ExampleCurve_Quantize reduces a landmark vector (RTTs in ms) to a
// scalar landmark number: quantize onto the grid, then encode.
func ExampleCurve_Quantize() {
	curve := hilbert.MustNew(3, 4) // 3 landmark dims, 16 cells per axis
	rtts := []float64{12.5, 80.0, 33.3}
	coords, err := curve.Quantize(rtts, 100) // 100 ms maps to the far edge
	if err != nil {
		panic(err)
	}
	number, err := curve.Encode(coords)
	if err != nil {
		panic(err)
	}
	fmt.Printf("coords %v number %d\n", coords, number)
	// Output:
	// coords [2 12 5] number 1723
}
