// Package hilbert implements the d-dimensional Hilbert space-filling curve.
//
// The paper (appendix) reduces a node's high-dimensional landmark vector to
// a single scalar "landmark number" with a space-filling curve, so that
// closeness in the scalar preserves closeness in landmark space. The same
// curve is used in the other direction to place a landmark number at a
// point inside an overlay region when storing soft-state.
//
// The implementation is Skilling's transpose algorithm ("Programming the
// Hilbert curve", AIP 2004): O(dims * bits) per conversion, no tables.
package hilbert

import "fmt"

// Curve is a Hilbert curve over a dims-dimensional grid with 2^bits cells
// per axis. The total index space is dims*bits wide and must fit in a
// uint64. The zero value is unusable; construct with New.
type Curve struct {
	dims int
	bits int
}

// New returns a curve over [0, 2^bits)^dims. It returns an error unless
// dims >= 1, bits >= 1, and dims*bits <= 64.
func New(dims, bits int) (Curve, error) {
	switch {
	case dims < 1:
		return Curve{}, fmt.Errorf("hilbert: dims = %d, need >= 1", dims)
	case bits < 1:
		return Curve{}, fmt.Errorf("hilbert: bits = %d, need >= 1", bits)
	case dims*bits > 64:
		return Curve{}, fmt.Errorf("hilbert: dims*bits = %d exceeds 64", dims*bits)
	}
	return Curve{dims: dims, bits: bits}, nil
}

// MustNew is New that panics on error; for vetted constant parameters.
func MustNew(dims, bits int) Curve {
	c, err := New(dims, bits)
	if err != nil {
		panic(err)
	}
	return c
}

// Dims returns the dimensionality of the curve.
func (c Curve) Dims() int { return c.dims }

// Bits returns the per-axis resolution in bits.
func (c Curve) Bits() int { return c.bits }

// CellsPerAxis returns 2^bits.
func (c Curve) CellsPerAxis() uint32 { return 1 << uint(c.bits) }

// MaxIndex returns the largest valid curve index, 2^(dims*bits) - 1.
func (c Curve) MaxIndex() uint64 {
	w := uint(c.dims * c.bits)
	if w == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// Encode maps grid coordinates to the Hilbert index. coords must have
// length dims and every value must be < 2^bits; violations return an error.
func (c Curve) Encode(coords []uint32) (uint64, error) {
	if len(coords) != c.dims {
		return 0, fmt.Errorf("hilbert: got %d coords, want %d", len(coords), c.dims)
	}
	limit := c.CellsPerAxis()
	x := make([]uint32, c.dims)
	for i, v := range coords {
		if v >= limit {
			return 0, fmt.Errorf("hilbert: coord[%d] = %d exceeds grid size %d", i, v, limit)
		}
		x[i] = v
	}
	c.axesToTranspose(x)
	return c.interleave(x), nil
}

// Decode maps a Hilbert index back to grid coordinates. The index must not
// exceed MaxIndex.
func (c Curve) Decode(index uint64) ([]uint32, error) {
	if index > c.MaxIndex() {
		return nil, fmt.Errorf("hilbert: index %d exceeds max %d", index, c.MaxIndex())
	}
	x := c.deinterleave(index)
	c.transposeToAxes(x)
	return x, nil
}

// axesToTranspose converts coordinates in place to the "transposed"
// Hilbert representation (Skilling 2004).
func (c Curve) axesToTranspose(x []uint32) {
	n := c.dims
	m := uint32(1) << uint(c.bits-1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes is the inverse of axesToTranspose.
func (c Curve) transposeToAxes(x []uint32) {
	n := c.dims
	limit := uint32(2) << uint(c.bits-1)
	// Gray decode.
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != limit; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// interleave packs the transposed representation into a single index:
// bit (bits-1-j) of every axis, axis 0 first, is emitted MSB-first.
func (c Curve) interleave(x []uint32) uint64 {
	var out uint64
	for j := c.bits - 1; j >= 0; j-- {
		for i := 0; i < c.dims; i++ {
			out = out<<1 | uint64((x[i]>>uint(j))&1)
		}
	}
	return out
}

// deinterleave is the inverse of interleave.
func (c Curve) deinterleave(index uint64) []uint32 {
	x := make([]uint32, c.dims)
	pos := uint(c.dims*c.bits - 1)
	for j := c.bits - 1; j >= 0; j-- {
		for i := 0; i < c.dims; i++ {
			bit := (index >> pos) & 1
			x[i] |= uint32(bit) << uint(j)
			pos--
		}
	}
	return x
}

// Quantize maps continuous values (each clamped into [0, max]) onto the
// curve's per-axis grid. It is the bridge from raw landmark RTT vectors to
// grid coordinates. max must be positive; values has length dims.
func (c Curve) Quantize(values []float64, max float64) ([]uint32, error) {
	if len(values) != c.dims {
		return nil, fmt.Errorf("hilbert: got %d values, want %d", len(values), c.dims)
	}
	if max <= 0 {
		return nil, fmt.Errorf("hilbert: max = %v, need > 0", max)
	}
	cells := float64(c.CellsPerAxis())
	out := make([]uint32, c.dims)
	for i, v := range values {
		if v < 0 {
			v = 0
		}
		if v > max {
			v = max
		}
		cell := uint32(v / max * cells)
		if cell >= c.CellsPerAxis() {
			cell = c.CellsPerAxis() - 1
		}
		out[i] = cell
	}
	return out, nil
}

// CellCenter returns the center of a grid cell as a point in [0,1)^dims.
func (c Curve) CellCenter(coords []uint32) ([]float64, error) {
	if len(coords) != c.dims {
		return nil, fmt.Errorf("hilbert: got %d coords, want %d", len(coords), c.dims)
	}
	cells := float64(c.CellsPerAxis())
	out := make([]float64, c.dims)
	for i, v := range coords {
		if v >= c.CellsPerAxis() {
			return nil, fmt.Errorf("hilbert: coord[%d] = %d exceeds grid", i, v)
		}
		out[i] = (float64(v) + 0.5) / cells
	}
	return out, nil
}

// IndexToUnitPoint maps a curve index to the center of its cell expressed
// in the unit cube [0,1)^dims. It is used to place a landmark number at a
// concrete point inside an overlay region.
func (c Curve) IndexToUnitPoint(index uint64) ([]float64, error) {
	coords, err := c.Decode(index)
	if err != nil {
		return nil, err
	}
	return c.CellCenter(coords)
}
