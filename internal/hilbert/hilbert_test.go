package hilbert

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name       string
		dims, bits int
		ok         bool
	}{
		{"1x1", 1, 1, true},
		{"2x8", 2, 8, true},
		{"8x8", 8, 8, true},
		{"16x4", 16, 4, true},
		{"zero-dims", 0, 4, false},
		{"zero-bits", 2, 0, false},
		{"too-wide", 16, 5, false},
		{"max-width", 4, 16, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.dims, tc.bits)
			if (err == nil) != tc.ok {
				t.Fatalf("New(%d,%d) err = %v, want ok=%v", tc.dims, tc.bits, err, tc.ok)
			}
		})
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(0, 0)
}

func TestAccessors(t *testing.T) {
	c := MustNew(3, 5)
	if c.Dims() != 3 || c.Bits() != 5 {
		t.Fatal("accessors wrong")
	}
	if c.CellsPerAxis() != 32 {
		t.Fatalf("CellsPerAxis = %d", c.CellsPerAxis())
	}
	if c.MaxIndex() != 1<<15-1 {
		t.Fatalf("MaxIndex = %d", c.MaxIndex())
	}
	full := MustNew(4, 16)
	if full.MaxIndex() != ^uint64(0) {
		t.Fatalf("64-bit MaxIndex = %d", full.MaxIndex())
	}
}

func TestEncodeValidation(t *testing.T) {
	c := MustNew(2, 3)
	if _, err := c.Encode([]uint32{1}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := c.Encode([]uint32{8, 0}); err == nil {
		t.Fatal("out-of-grid coord accepted")
	}
}

func TestDecodeValidation(t *testing.T) {
	c := MustNew(2, 3)
	if _, err := c.Decode(64); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestEncodeDoesNotMutateInput(t *testing.T) {
	c := MustNew(2, 4)
	in := []uint32{5, 9}
	if _, err := c.Encode(in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 5 || in[1] != 9 {
		t.Fatalf("input mutated: %v", in)
	}
}

// TestBijection verifies that Encode is a bijection onto [0, MaxIndex] for
// several small curves, via full enumeration.
func TestBijection(t *testing.T) {
	shapes := []struct{ dims, bits int }{
		{1, 4}, {2, 3}, {3, 3}, {4, 2}, {5, 2},
	}
	for _, sh := range shapes {
		c := MustNew(sh.dims, sh.bits)
		total := c.MaxIndex() + 1
		seen := make(map[uint64]bool, total)
		coords := make([]uint32, sh.dims)
		var walk func(d int)
		walk = func(d int) {
			if d == sh.dims {
				idx, err := c.Encode(coords)
				if err != nil {
					t.Fatal(err)
				}
				if seen[idx] {
					t.Fatalf("%dx%d: duplicate index %d for %v", sh.dims, sh.bits, idx, coords)
				}
				seen[idx] = true
				return
			}
			for v := uint32(0); v < c.CellsPerAxis(); v++ {
				coords[d] = v
				walk(d + 1)
			}
		}
		walk(0)
		if uint64(len(seen)) != total {
			t.Fatalf("%dx%d: covered %d of %d indices", sh.dims, sh.bits, len(seen), total)
		}
	}
}

// TestAdjacency verifies the defining Hilbert property: consecutive curve
// indices map to grid cells at L1 distance exactly 1.
func TestAdjacency(t *testing.T) {
	shapes := []struct{ dims, bits int }{
		{2, 4}, {3, 3}, {4, 2},
	}
	for _, sh := range shapes {
		c := MustNew(sh.dims, sh.bits)
		prev, err := c.Decode(0)
		if err != nil {
			t.Fatal(err)
		}
		for idx := uint64(1); idx <= c.MaxIndex(); idx++ {
			cur, err := c.Decode(idx)
			if err != nil {
				t.Fatal(err)
			}
			dist := 0
			for i := range cur {
				d := int(cur[i]) - int(prev[i])
				if d < 0 {
					d = -d
				}
				dist += d
			}
			if dist != 1 {
				t.Fatalf("%dx%d: indices %d->%d jump L1 distance %d (%v -> %v)",
					sh.dims, sh.bits, idx-1, idx, dist, prev, cur)
			}
			prev = cur
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	c := MustNew(3, 7)
	f := func(a, b, ch uint32) bool {
		coords := []uint32{a % 128, b % 128, ch % 128}
		idx, err := c.Encode(coords)
		if err != nil {
			return false
		}
		back, err := c.Decode(idx)
		if err != nil {
			return false
		}
		for i := range coords {
			if back[i] != coords[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripFullWidth(t *testing.T) {
	// dims*bits == 64: exercise the unshiftable boundary.
	c := MustNew(4, 16)
	cases := [][]uint32{
		{0, 0, 0, 0},
		{65535, 65535, 65535, 65535},
		{1, 2, 3, 4},
		{65535, 0, 65535, 0},
	}
	for _, coords := range cases {
		idx, err := c.Encode(coords)
		if err != nil {
			t.Fatal(err)
		}
		back, err := c.Decode(idx)
		if err != nil {
			t.Fatal(err)
		}
		for i := range coords {
			if back[i] != coords[i] {
				t.Fatalf("roundtrip failed for %v: got %v", coords, back)
			}
		}
	}
}

func TestOneDimensionalIsIdentity(t *testing.T) {
	c := MustNew(1, 6)
	for v := uint32(0); v < 64; v++ {
		idx, err := c.Encode([]uint32{v})
		if err != nil {
			t.Fatal(err)
		}
		if idx != uint64(v) {
			t.Fatalf("1-d curve not identity: %d -> %d", v, idx)
		}
	}
}

// TestLocality checks the curve's raison d'être quantitatively: points
// close on the curve are close in space on average, much closer than
// random pairs.
func TestLocality(t *testing.T) {
	c := MustNew(2, 6) // 64x64 grid, 4096 cells
	n := c.MaxIndex() + 1
	euclid := func(a, b []uint32) float64 {
		s := 0.0
		for i := range a {
			d := float64(a[i]) - float64(b[i])
			s += d * d
		}
		return math.Sqrt(s)
	}
	// Mean distance between curve neighbors at lag 4.
	lagSum, lagCount := 0.0, 0
	for idx := uint64(0); idx+4 < n; idx += 7 {
		a, _ := c.Decode(idx)
		b, _ := c.Decode(idx + 4)
		lagSum += euclid(a, b)
		lagCount++
	}
	// Mean distance between random-ish pairs (large stride).
	farSum, farCount := 0.0, 0
	for idx := uint64(0); idx < n; idx += 13 {
		a, _ := c.Decode(idx)
		b, _ := c.Decode((idx * 2654435761) % n)
		farSum += euclid(a, b)
		farCount++
	}
	lagMean := lagSum / float64(lagCount)
	farMean := farSum / float64(farCount)
	if lagMean*5 > farMean {
		t.Fatalf("locality too weak: lag-4 mean %v vs random mean %v", lagMean, farMean)
	}
}

func TestQuantize(t *testing.T) {
	c := MustNew(3, 4) // 16 cells per axis
	got, err := c.Quantize([]float64{0, 50, 100}, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{0, 8, 15}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Quantize = %v, want %v", got, want)
		}
	}
}

func TestQuantizeClamps(t *testing.T) {
	c := MustNew(2, 4)
	got, err := c.Quantize([]float64{-5, 1e9}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 15 {
		t.Fatalf("clamping failed: %v", got)
	}
}

func TestQuantizeValidation(t *testing.T) {
	c := MustNew(2, 4)
	if _, err := c.Quantize([]float64{1}, 100); err == nil {
		t.Fatal("arity violation accepted")
	}
	if _, err := c.Quantize([]float64{1, 2}, 0); err == nil {
		t.Fatal("non-positive max accepted")
	}
}

func TestCellCenter(t *testing.T) {
	c := MustNew(2, 2) // 4 cells per axis
	pt, err := c.CellCenter([]uint32{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pt[0]-0.125) > 1e-12 || math.Abs(pt[1]-0.875) > 1e-12 {
		t.Fatalf("CellCenter = %v", pt)
	}
	if _, err := c.CellCenter([]uint32{4, 0}); err == nil {
		t.Fatal("out-of-grid accepted")
	}
	if _, err := c.CellCenter([]uint32{1}); err == nil {
		t.Fatal("arity violation accepted")
	}
}

func TestIndexToUnitPoint(t *testing.T) {
	c := MustNew(2, 3)
	for idx := uint64(0); idx <= c.MaxIndex(); idx += 5 {
		pt, err := c.IndexToUnitPoint(idx)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range pt {
			if v < 0 || v >= 1 {
				t.Fatalf("point %v outside unit cube", pt)
			}
		}
	}
	if _, err := c.IndexToUnitPoint(c.MaxIndex() + 1); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func BenchmarkEncode2D(b *testing.B) {
	c := MustNew(2, 16)
	coords := []uint32{12345, 54321}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(coords); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode4D(b *testing.B) {
	c := MustNew(4, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(uint64(i) & c.MaxIndex()); err != nil {
			b.Fatal(err)
		}
	}
}
