package landmark

import (
	"errors"
	"fmt"

	"gsso/internal/linalg"
)

// DenoiseVectors implements the third §5.4 optimization: with a large
// number of landmarks, "rely on classical data analysis techniques such
// as Singular Value Decomposition to extract useful information from the
// large number of RTTs and to suppress noises."
//
// The input vectors form an (hosts × landmarks) matrix; columns are
// mean-centered, the top-k principal directions are extracted by SVD,
// and each host's vector is replaced by its k coordinates in that basis.
// Distances in the reduced space emphasize the directions along which
// hosts genuinely differ and shed per-measurement noise. The returned
// vectors all have dimension k and are only comparable to one another.
func DenoiseVectors(vectors []Vector, k int) ([]Vector, error) {
	if len(vectors) == 0 {
		return nil, errors.New("landmark: no vectors to denoise")
	}
	n := len(vectors[0])
	if k < 1 || k > n {
		return nil, fmt.Errorf("landmark: k = %d, need in [1,%d]", k, n)
	}
	if len(vectors) < n {
		return nil, fmt.Errorf("landmark: need at least %d vectors for %d landmarks", n, n)
	}
	// Column means.
	means := make([]float64, n)
	for _, vec := range vectors {
		if len(vec) != n {
			return nil, errors.New("landmark: inconsistent vector dimensions")
		}
		for j, x := range vec {
			means[j] += x
		}
	}
	for j := range means {
		means[j] /= float64(len(vectors))
	}
	centered := make([][]float64, len(vectors))
	for i, vec := range vectors {
		row := make([]float64, n)
		for j, x := range vec {
			row[j] = x - means[j]
		}
		centered[i] = row
	}
	_, _, v, err := linalg.SVD(centered)
	if err != nil {
		return nil, err
	}
	proj, err := linalg.Project(centered, v, k)
	if err != nil {
		return nil, err
	}
	out := make([]Vector, len(proj))
	for i, row := range proj {
		out[i] = Vector(row)
	}
	return out, nil
}
