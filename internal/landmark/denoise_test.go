package landmark

import (
	"testing"

	"gsso/internal/simrand"
	"gsso/internal/topology"
)

func TestDenoiseVectorsValidation(t *testing.T) {
	if _, err := DenoiseVectors(nil, 2); err == nil {
		t.Fatal("empty input accepted")
	}
	vecs := []Vector{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	if _, err := DenoiseVectors(vecs, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := DenoiseVectors(vecs, 4); err == nil {
		t.Fatal("k > dims accepted")
	}
	if _, err := DenoiseVectors([]Vector{{1, 2, 3}, {4, 5}}, 2); err == nil {
		t.Fatal("ragged vectors accepted")
	}
	if _, err := DenoiseVectors([]Vector{{1, 2, 3}}, 2); err == nil {
		t.Fatal("fewer vectors than landmarks accepted")
	}
}

func TestDenoiseVectorsShape(t *testing.T) {
	rng := simrand.New(3)
	vecs := make([]Vector, 50)
	for i := range vecs {
		vecs[i] = Vector{rng.Range(0, 100), rng.Range(0, 100), rng.Range(0, 100), rng.Range(0, 100)}
	}
	out, err := DenoiseVectors(vecs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(vecs) {
		t.Fatalf("len = %d", len(out))
	}
	for _, v := range out {
		if len(v) != 2 {
			t.Fatalf("projected dims = %d", len(v))
		}
	}
}

func TestDenoiseVectorsPreservesNeighborhoods(t *testing.T) {
	// Vectors measured on a real topology with mild noise: the nearest
	// neighbor in the denoised space should usually be physically close.
	spec := topology.Spec{
		TransitDomains:        3,
		TransitNodesPerDomain: 3,
		StubsPerTransitNode:   2,
		NodesPerStub:          12,
		ExtraTransitEdgeProb:  0.3,
		ExtraStubEdgeProb:     0.2,
		ExtraInterDomainLinks: 2,
		Latency:               topology.GTITMLatency(),
	}
	net := topology.MustGenerate(spec, simrand.New(1))
	rng := simrand.New(2)
	set, err := Choose(net, 10, rng.Split("lm"))
	if err != nil {
		t.Fatal(err)
	}
	hosts := net.RandomStubHosts(rng.Split("hosts"), 80)
	noise := rng.Split("noise")
	vecs := make([]Vector, len(hosts))
	for i, h := range hosts {
		v := make(Vector, set.Len())
		for j, lm := range set.Nodes() {
			v[j] = net.RTT(h, lm) * noise.Range(0.85, 1.15)
		}
		vecs[i] = v
	}
	den, err := DenoiseVectors(vecs, 4)
	if err != nil {
		t.Fatal(err)
	}
	// For each host: nearest by denoised distance vs nearest physically.
	betterThanRandom := 0
	for i, h := range hosts {
		bestJ, bestD := -1, 0.0
		for j := range hosts {
			if j == i {
				continue
			}
			d := Distance(den[i], den[j])
			if bestJ < 0 || d < bestD {
				bestJ, bestD = j, d
			}
		}
		pick := net.Latency(h, hosts[bestJ])
		rnd := net.Latency(h, hosts[(i+17)%len(hosts)])
		if pick < rnd {
			betterThanRandom++
		}
	}
	if betterThanRandom < len(hosts)*3/5 {
		t.Fatalf("denoised nearest beat random only %d/%d times", betterThanRandom, len(hosts))
	}
}

func TestChoosePerDomainInPackage(t *testing.T) {
	spec := topology.Spec{
		TransitDomains:        4,
		TransitNodesPerDomain: 2,
		StubsPerTransitNode:   2,
		NodesPerStub:          6,
		Latency:               topology.ManualLatency(),
	}
	net := topology.MustGenerate(spec, simrand.New(5))
	set, err := ChoosePerDomain(net, 2, simrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 8 {
		t.Fatalf("set size %d, want 8", set.Len())
	}
	counts := map[int]int{}
	for _, lm := range set.Nodes() {
		counts[net.Node(lm).Domain]++
	}
	for d := 0; d < 4; d++ {
		if counts[d] != 2 {
			t.Fatalf("domain %d has %d landmarks", d, counts[d])
		}
	}
}
