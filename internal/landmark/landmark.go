// Package landmark implements landmark-based network positioning: landmark
// selection, landmark vectors (a node's RTTs to the landmark set),
// landmark orderings (the Topologically-Aware CAN baseline), and the
// reduction of landmark vectors to scalar landmark numbers via a Hilbert
// space-filling curve (the paper's appendix).
//
// A landmark number approximates a node's position in the physical network
// with a single integer: nodes with nearby numbers are likely physically
// close. The number doubles as a DHT key, which is what lets the overlay
// store proximity information about physically close nodes at logically
// close locations.
package landmark

import (
	"fmt"
	"math"
	"sort"

	"gsso/internal/hilbert"
	"gsso/internal/netsim"
	"gsso/internal/simrand"
	"gsso/internal/topology"
)

// Set is a fixed collection of landmark hosts. Landmarks can be overlay
// members or standalone infrastructure; the paper picks them uniformly at
// random from the topology.
type Set struct {
	nodes []topology.NodeID
}

// Choose picks k distinct landmark hosts uniformly at random from the
// network's stub hosts.
func Choose(net *topology.Network, k int, rng *simrand.Source) (Set, error) {
	stubTotal := net.Len() - net.TransitCount()
	if k < 1 || k > stubTotal {
		return Set{}, fmt.Errorf("landmark: k = %d, need in [1, %d]", k, stubTotal)
	}
	return Set{nodes: net.RandomStubHosts(rng, k)}, nil
}

// ChoosePerDomain picks perDomain landmarks from the stub hosts of every
// transit domain — "localized landmarks" in the sense of §5.4's
// hierarchical optimization: each domain contributes nearby vantage
// points that can differentiate hosts a global landmark set sees as one
// blob.
func ChoosePerDomain(net *topology.Network, perDomain int, rng *simrand.Source) (Set, error) {
	if perDomain < 1 {
		return Set{}, fmt.Errorf("landmark: perDomain = %d, need >= 1", perDomain)
	}
	byDomain := make(map[int][]topology.NodeID)
	for _, h := range net.StubHosts() {
		d := net.Node(h).Domain
		byDomain[d] = append(byDomain[d], h)
	}
	domains := make([]int, 0, len(byDomain))
	for d := range byDomain {
		domains = append(domains, d)
	}
	sort.Ints(domains)
	var out []topology.NodeID
	for _, d := range domains {
		hosts := byDomain[d]
		if perDomain > len(hosts) {
			return Set{}, fmt.Errorf("landmark: domain %d has %d stub hosts, need %d", d, len(hosts), perDomain)
		}
		for _, i := range rng.Sample(len(hosts), perDomain) {
			out = append(out, hosts[i])
		}
	}
	return Set{nodes: out}, nil
}

// NewSet builds a Set from explicit hosts (for tests and the wire daemon).
func NewSet(hosts []topology.NodeID) Set {
	return Set{nodes: append([]topology.NodeID(nil), hosts...)}
}

// Len returns the number of landmarks.
func (s Set) Len() int { return len(s.nodes) }

// Nodes returns a copy of the landmark host IDs.
func (s Set) Nodes() []topology.NodeID {
	return append([]topology.NodeID(nil), s.nodes...)
}

// Vector is a node's landmark vector: RTTs (ms) to each landmark, in Set
// order. It positions the node in the n-dimensional landmark space.
type Vector []float64

// Measure produces host's landmark vector by probing every landmark
// through env (each probe is metered). This is the cost every node pays
// once at join time.
func Measure(env *netsim.Env, host topology.NodeID, set Set) Vector {
	v := make(Vector, len(set.nodes))
	for i, lm := range set.nodes {
		v[i] = env.ProbeRTT(host, lm)
	}
	return v
}

// Distance returns the Euclidean distance between two landmark vectors.
// It panics on dimension mismatch: vectors from different landmark sets
// are incomparable and mixing them is a programming error.
func Distance(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("landmark: comparing vectors of dims %d and %d", len(a), len(b)))
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Ordering returns the landmark indices sorted by increasing RTT — the
// "landmark ordering" clustering key of Topologically-Aware CAN
// (Ratnasamy et al.). Ties break by landmark index for determinism.
func (v Vector) Ordering() []int {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if v[idx[a]] != v[idx[b]] {
			return v[idx[a]] < v[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}

// SameOrdering reports whether two vectors induce identical landmark
// orderings (the baseline's notion of "same cluster").
func SameOrdering(a, b Vector) bool {
	if len(a) != len(b) {
		return false
	}
	oa, ob := a.Ordering(), b.Ordering()
	for i := range oa {
		if oa[i] != ob[i] {
			return false
		}
	}
	return true
}

// Space reduces landmark vectors to scalar landmark numbers. Following the
// appendix, only IndexDims components of the vector (the "landmark vector
// index") feed the space-filling curve; the full vector is still used for
// fine-grained sorting at lookup time.
type Space struct {
	set       Set
	curve     hilbert.Curve
	indexDims int
	maxRTT    float64
}

// NewSpace builds a Space over set.
//
// indexDims is the number of leading vector components used for the curve
// (clamped to the set size), bitsPerDim the per-axis grid resolution
// (indexDims*bitsPerDim <= 64), and maxRTT the RTT that maps to the far
// edge of the grid (larger RTTs clamp).
func NewSpace(set Set, indexDims, bitsPerDim int, maxRTT float64) (*Space, error) {
	if set.Len() == 0 {
		return nil, fmt.Errorf("landmark: empty landmark set")
	}
	if indexDims < 1 {
		return nil, fmt.Errorf("landmark: indexDims = %d, need >= 1", indexDims)
	}
	if indexDims > set.Len() {
		indexDims = set.Len()
	}
	if maxRTT <= 0 {
		return nil, fmt.Errorf("landmark: maxRTT = %v, need > 0", maxRTT)
	}
	curve, err := hilbert.New(indexDims, bitsPerDim)
	if err != nil {
		return nil, err
	}
	return &Space{set: set, curve: curve, indexDims: indexDims, maxRTT: maxRTT}, nil
}

// Set returns the landmark set the space is defined over.
func (sp *Space) Set() Set { return sp.set }

// Curve returns the underlying Hilbert curve.
func (sp *Space) Curve() hilbert.Curve { return sp.curve }

// IndexDims returns the number of vector components used by the curve.
func (sp *Space) IndexDims() int { return sp.indexDims }

// MaxRTT returns the quantization scale.
func (sp *Space) MaxRTT() float64 { return sp.maxRTT }

// MaxNumber returns the largest landmark number the space can produce.
func (sp *Space) MaxNumber() uint64 { return sp.curve.MaxIndex() }

// Number reduces a landmark vector to its scalar landmark number.
// Closeness of numbers approximates physical closeness (with the usual
// space-filling-curve caveats, which is exactly why lookups re-sort by
// full vector afterwards).
func (sp *Space) Number(v Vector) (uint64, error) {
	if len(v) != sp.set.Len() {
		return 0, fmt.Errorf("landmark: vector dims %d, want %d", len(v), sp.set.Len())
	}
	coords, err := sp.curve.Quantize(v[:sp.indexDims], sp.maxRTT)
	if err != nil {
		return 0, err
	}
	return sp.curve.Encode(coords)
}

// NumberToUnitPoint maps a landmark number to the center of its curve cell
// in the unit cube of the index dimensions. Soft-state placement composes
// this with a projection into the hosting region.
func (sp *Space) NumberToUnitPoint(num uint64) ([]float64, error) {
	return sp.curve.IndexToUnitPoint(num)
}

// EstimateMaxRTT returns a quantization scale for a Space by sampling RTTs
// from sample hosts to the landmark set through the unmetered oracle: the
// maximum observed RTT padded by 25%. Using the oracle is legitimate here
// because the scale is an engineering constant of the deployment, not
// per-node state.
func EstimateMaxRTT(net *topology.Network, set Set, sample []topology.NodeID) float64 {
	maxRTT := 0.0
	for _, h := range sample {
		for _, lm := range set.nodes {
			if rtt := net.RTT(h, lm); rtt > maxRTT {
				maxRTT = rtt
			}
		}
	}
	if maxRTT == 0 {
		maxRTT = 1
	}
	return maxRTT * 1.25
}
