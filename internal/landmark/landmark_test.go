package landmark

import (
	"math"
	"sort"
	"testing"

	"gsso/internal/netsim"
	"gsso/internal/simrand"
	"gsso/internal/topology"
)

func testNet(t *testing.T) *topology.Network {
	t.Helper()
	spec := topology.Spec{
		TransitDomains:        3,
		TransitNodesPerDomain: 3,
		StubsPerTransitNode:   2,
		NodesPerStub:          10,
		ExtraTransitEdgeProb:  0.3,
		ExtraStubEdgeProb:     0.2,
		ExtraInterDomainLinks: 2,
		Latency:               topology.GTITMLatency(),
	}
	return topology.MustGenerate(spec, simrand.New(1))
}

func TestChoose(t *testing.T) {
	net := testNet(t)
	set, err := Choose(net, 8, simrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 8 {
		t.Fatalf("Len = %d", set.Len())
	}
	seen := map[topology.NodeID]bool{}
	for _, n := range set.Nodes() {
		if net.Node(n).Class != topology.ClassStub {
			t.Fatalf("landmark %d is not a stub host", n)
		}
		if seen[n] {
			t.Fatalf("duplicate landmark %d", n)
		}
		seen[n] = true
	}
}

func TestChooseValidation(t *testing.T) {
	net := testNet(t)
	if _, err := Choose(net, 0, simrand.New(1)); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Choose(net, net.Len()+1, simrand.New(1)); err == nil {
		t.Fatal("oversized k accepted")
	}
}

func TestNodesReturnsCopy(t *testing.T) {
	set := NewSet([]topology.NodeID{10, 11, 12})
	nodes := set.Nodes()
	nodes[0] = 99
	if set.Nodes()[0] != 10 {
		t.Fatal("Nodes leaked internal slice")
	}
}

func TestMeasure(t *testing.T) {
	net := testNet(t)
	env := netsim.New(net)
	set, _ := Choose(net, 5, simrand.New(2))
	host := net.StubHosts()[0]
	v := Measure(env, host, set)
	if len(v) != 5 {
		t.Fatalf("vector len = %d", len(v))
	}
	if env.Probes() != 5 {
		t.Fatalf("Measure used %d probes, want 5", env.Probes())
	}
	for i, lm := range set.Nodes() {
		if want := net.RTT(host, lm); v[i] != want {
			t.Fatalf("v[%d] = %v, want %v", i, v[i], want)
		}
	}
}

func TestDistance(t *testing.T) {
	if d := Distance(Vector{0, 0}, Vector{3, 4}); d != 5 {
		t.Fatalf("Distance = %v", d)
	}
	if d := Distance(Vector{1, 2, 3}, Vector{1, 2, 3}); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
}

func TestDistancePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Distance(Vector{1}, Vector{1, 2})
}

func TestOrdering(t *testing.T) {
	v := Vector{30, 10, 20}
	got := v.Ordering()
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ordering = %v, want %v", got, want)
		}
	}
}

func TestOrderingTiesDeterministic(t *testing.T) {
	v := Vector{5, 5, 5}
	got := v.Ordering()
	if got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("tie ordering = %v", got)
	}
}

func TestSameOrdering(t *testing.T) {
	a := Vector{1, 5, 3}
	b := Vector{2, 9, 4} // same relative order
	c := Vector{9, 1, 3}
	if !SameOrdering(a, b) {
		t.Fatal("equal orderings not detected")
	}
	if SameOrdering(a, c) {
		t.Fatal("different orderings reported equal")
	}
	if SameOrdering(a, Vector{1, 2}) {
		t.Fatal("dimension mismatch reported equal")
	}
}

func TestNewSpaceValidation(t *testing.T) {
	set := NewSet([]topology.NodeID{1, 2, 3})
	if _, err := NewSpace(Set{}, 2, 4, 100); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := NewSpace(set, 0, 4, 100); err == nil {
		t.Fatal("indexDims=0 accepted")
	}
	if _, err := NewSpace(set, 2, 4, 0); err == nil {
		t.Fatal("maxRTT=0 accepted")
	}
	if _, err := NewSpace(set, 2, 40, 100); err == nil {
		t.Fatal("oversized curve accepted")
	}
	sp, err := NewSpace(set, 10, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sp.IndexDims() != 3 {
		t.Fatalf("indexDims not clamped to set size: %d", sp.IndexDims())
	}
}

func TestSpaceAccessors(t *testing.T) {
	set := NewSet([]topology.NodeID{1, 2, 3, 4})
	sp, err := NewSpace(set, 2, 5, 200)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Set().Len() != 4 || sp.MaxRTT() != 200 || sp.Curve().Bits() != 5 {
		t.Fatal("accessors wrong")
	}
	if sp.MaxNumber() != 1<<10-1 {
		t.Fatalf("MaxNumber = %d", sp.MaxNumber())
	}
}

func TestNumberValidation(t *testing.T) {
	set := NewSet([]topology.NodeID{1, 2, 3})
	sp, _ := NewSpace(set, 2, 4, 100)
	if _, err := sp.Number(Vector{1, 2}); err == nil {
		t.Fatal("short vector accepted")
	}
}

func TestNumberLocalityAsPreselection(t *testing.T) {
	// The use-case the paper cares about: picking the nodes whose landmark
	// numbers are nearest to mine should yield physically closer candidates
	// than picking nodes at random.
	net := testNet(t)
	env := netsim.New(net)
	set, _ := Choose(net, 6, simrand.New(3))
	hosts := net.StubHosts()
	sp, err := NewSpace(set, 3, 6, EstimateMaxRTT(net, set, hosts[:40]))
	if err != nil {
		t.Fatal(err)
	}
	numbers := make(map[topology.NodeID]uint64, len(hosts))
	for _, h := range hosts {
		n, err := sp.Number(Measure(env, h, set))
		if err != nil {
			t.Fatal(err)
		}
		numbers[h] = n
	}
	absDiff := func(a, b uint64) uint64 {
		if a > b {
			return a - b
		}
		return b - a
	}
	rng := simrand.New(77)
	var bySFC, byRandom float64
	probes := rng.Sample(len(hosts), 20)
	for _, pi := range probes {
		me := hosts[pi]
		// 10 nearest by landmark number.
		others := make([]topology.NodeID, 0, len(hosts)-1)
		for _, h := range hosts {
			if h != me {
				others = append(others, h)
			}
		}
		sort.Slice(others, func(i, j int) bool {
			return absDiff(numbers[others[i]], numbers[me]) < absDiff(numbers[others[j]], numbers[me])
		})
		for _, h := range others[:10] {
			bySFC += net.Latency(me, h)
		}
		for _, ri := range rng.Sample(len(others), 10) {
			byRandom += net.Latency(me, others[ri])
		}
	}
	if bySFC >= byRandom {
		t.Fatalf("landmark-number preselection no better than random: %v vs %v", bySFC, byRandom)
	}
	t.Logf("mean latency: sfc-preselected %.2f ms, random %.2f ms", bySFC/200, byRandom/200)
}

func TestNumberToUnitPoint(t *testing.T) {
	set := NewSet([]topology.NodeID{1, 2})
	sp, _ := NewSpace(set, 2, 4, 100)
	pt, err := sp.NumberToUnitPoint(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt) != 2 {
		t.Fatalf("point dims = %d", len(pt))
	}
	for _, v := range pt {
		if v < 0 || v >= 1 {
			t.Fatalf("point %v outside unit cube", pt)
		}
	}
}

func TestEstimateMaxRTT(t *testing.T) {
	net := testNet(t)
	set, _ := Choose(net, 4, simrand.New(5))
	sample := net.StubHosts()[:20]
	est := EstimateMaxRTT(net, set, sample)
	if est <= 0 || math.IsInf(est, 0) {
		t.Fatalf("estimate = %v", est)
	}
	// Every sampled RTT must be within the estimate.
	for _, h := range sample {
		for _, lm := range set.Nodes() {
			if net.RTT(h, lm) > est {
				t.Fatalf("RTT %v exceeds estimate %v", net.RTT(h, lm), est)
			}
		}
	}
	if EstimateMaxRTT(net, set, nil) != 1.25 {
		t.Fatal("empty sample should return padded floor")
	}
}
