// Package linalg provides the small dense linear-algebra kernel the §5.4
// optimization needs: a thin singular value decomposition via one-sided
// Jacobi rotations. The paper's third proposal for pushing proximity
// accuracy is to "use a large number of randomly selected landmarks and
// then rely on classical data analysis techniques such as Singular Value
// Decomposition to extract useful information from the large number of
// RTTs and to suppress noises" — package landmark builds its projection
// on this kernel.
//
// One-sided Jacobi is exact, simple, and fast for the shapes involved
// (thousands of rows, tens of columns): it repeatedly rotates column
// pairs to orthogonality; the resulting column norms are the singular
// values, the normalized columns form U, and the accumulated rotations
// form V.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// SVD computes the thin singular value decomposition A = U * diag(S) * Vᵀ
// of an m×n matrix with m >= n: U is m×n with orthonormal columns, S the
// n singular values in decreasing order, V n×n orthogonal. A is not
// modified.
func SVD(a [][]float64) (u [][]float64, s []float64, v [][]float64, err error) {
	m := len(a)
	if m == 0 {
		return nil, nil, nil, errors.New("linalg: empty matrix")
	}
	n := len(a[0])
	if n == 0 {
		return nil, nil, nil, errors.New("linalg: zero-width matrix")
	}
	if m < n {
		return nil, nil, nil, fmt.Errorf("linalg: need m >= n, got %dx%d", m, n)
	}
	// Working copy of A (column-rotated in place) and V = I.
	w := make([][]float64, m)
	for i := range w {
		if len(a[i]) != n {
			return nil, nil, nil, fmt.Errorf("linalg: ragged row %d", i)
		}
		w[i] = append([]float64(nil), a[i]...)
	}
	v = make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}

	const (
		maxSweeps = 60
		eps       = 1e-12
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Column inner products.
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					app += w[i][p] * w[i][p]
					aqq += w[i][q] * w[i][q]
					apq += w[i][p] * w[i][q]
				}
				if math.Abs(apq) <= eps*math.Sqrt(app*aqq)+eps {
					continue
				}
				off += math.Abs(apq)
				// Jacobi rotation that zeroes the (p,q) inner product.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				sn := c * t
				for i := 0; i < m; i++ {
					wp := w[i][p]
					wq := w[i][q]
					w[i][p] = c*wp - sn*wq
					w[i][q] = sn*wp + c*wq
				}
				for i := 0; i < n; i++ {
					vp := v[i][p]
					vq := v[i][q]
					v[i][p] = c*vp - sn*vq
					v[i][q] = sn*vp + c*vq
				}
			}
		}
		if off < eps {
			break
		}
	}

	// Singular values = column norms; U = normalized columns.
	s = make([]float64, n)
	u = make([][]float64, m)
	for i := range u {
		u[i] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		norm := 0.0
		for i := 0; i < m; i++ {
			norm += w[i][j] * w[i][j]
		}
		s[j] = math.Sqrt(norm)
		if s[j] > 0 {
			for i := 0; i < m; i++ {
				u[i][j] = w[i][j] / s[j]
			}
		}
	}

	// Sort by decreasing singular value (selection sort over columns).
	for j := 0; j < n-1; j++ {
		best := j
		for k := j + 1; k < n; k++ {
			if s[k] > s[best] {
				best = k
			}
		}
		if best != j {
			s[j], s[best] = s[best], s[j]
			for i := 0; i < m; i++ {
				u[i][j], u[i][best] = u[i][best], u[i][j]
			}
			for i := 0; i < n; i++ {
				v[i][j], v[i][best] = v[i][best], v[i][j]
			}
		}
	}
	return u, s, v, nil
}

// Project returns the coordinates of each row of A in the basis of the
// first k right singular vectors: the m×k matrix A*V[:, :k]. This is the
// rank-k denoising the §5.4 optimization calls for — directions with
// small singular values (noise) are discarded.
func Project(a [][]float64, v [][]float64, k int) ([][]float64, error) {
	if len(a) == 0 || len(v) == 0 {
		return nil, errors.New("linalg: empty input")
	}
	n := len(v)
	if k < 1 || k > n {
		return nil, fmt.Errorf("linalg: k = %d, need in [1,%d]", k, n)
	}
	out := make([][]float64, len(a))
	for i, row := range a {
		if len(row) != n {
			return nil, fmt.Errorf("linalg: row %d has %d columns, want %d", i, len(row), n)
		}
		proj := make([]float64, k)
		for j := 0; j < k; j++ {
			sum := 0.0
			for c := 0; c < n; c++ {
				sum += row[c] * v[c][j]
			}
			proj[j] = sum
		}
		out[i] = proj
	}
	return out, nil
}
