package linalg

import (
	"math"
	"testing"

	"gsso/internal/simrand"
)

func matMulDiagVT(u [][]float64, s []float64, v [][]float64) [][]float64 {
	m, n := len(u), len(s)
	out := make([][]float64, m)
	for i := 0; i < m; i++ {
		out[i] = make([]float64, len(v))
		for j := range v {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += u[i][k] * s[k] * v[j][k]
			}
			out[i][j] = sum
		}
	}
	return out
}

func maxAbsDiff(a, b [][]float64) float64 {
	worst := 0.0
	for i := range a {
		for j := range a[i] {
			if d := math.Abs(a[i][j] - b[i][j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func randomMatrix(m, n int, seed uint64) [][]float64 {
	rng := simrand.New(seed)
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			a[i][j] = rng.Range(-5, 5)
		}
	}
	return a
}

func TestSVDValidation(t *testing.T) {
	if _, _, _, err := SVD(nil); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, _, _, err := SVD([][]float64{{}}); err == nil {
		t.Fatal("zero-width matrix accepted")
	}
	if _, _, _, err := SVD([][]float64{{1, 2, 3}}); err == nil {
		t.Fatal("m < n accepted")
	}
	if _, _, _, err := SVD([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestSVDReconstruction(t *testing.T) {
	for _, shape := range []struct{ m, n int }{{4, 3}, {10, 5}, {50, 8}, {200, 15}} {
		a := randomMatrix(shape.m, shape.n, uint64(shape.m*31+shape.n))
		u, s, v, err := SVD(a)
		if err != nil {
			t.Fatal(err)
		}
		back := matMulDiagVT(u, s, v)
		if d := maxAbsDiff(a, back); d > 1e-8 {
			t.Fatalf("%dx%d: reconstruction error %v", shape.m, shape.n, d)
		}
	}
}

func TestSVDOrthogonality(t *testing.T) {
	a := randomMatrix(60, 7, 9)
	u, s, v, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	n := len(s)
	// Uᵀ U = I
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			dot := 0.0
			for i := range u {
				dot += u[i][p] * u[i][q]
			}
			want := 0.0
			if p == q {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Fatalf("UᵀU[%d][%d] = %v", p, q, dot)
			}
		}
	}
	// Vᵀ V = I
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			dot := 0.0
			for i := range v {
				dot += v[i][p] * v[i][q]
			}
			want := 0.0
			if p == q {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Fatalf("VᵀV[%d][%d] = %v", p, q, dot)
			}
		}
	}
}

func TestSVDValuesSortedNonNegative(t *testing.T) {
	a := randomMatrix(40, 6, 11)
	_, s, _, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	for i, val := range s {
		if val < 0 {
			t.Fatalf("negative singular value %v", val)
		}
		if i > 0 && s[i-1] < val {
			t.Fatalf("singular values not sorted: %v", s)
		}
	}
}

func TestSVDKnownMatrix(t *testing.T) {
	// diag(3, 2) embedded in a 3x2 matrix: singular values are 3 and 2.
	a := [][]float64{{3, 0}, {0, 2}, {0, 0}}
	_, s, _, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s[0]-3) > 1e-10 || math.Abs(s[1]-2) > 1e-10 {
		t.Fatalf("singular values = %v, want [3 2]", s)
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Two identical columns: second singular value is 0.
	a := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	_, s, _, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if s[1] > 1e-10 {
		t.Fatalf("rank-1 matrix has s[1] = %v", s[1])
	}
}

func TestProjectRecoversLowRankStructure(t *testing.T) {
	// Rank-2 data + noise: projecting onto the top 2 components must
	// reconstruct the clean part much better than the noise level.
	rng := simrand.New(13)
	m, n := 300, 10
	basis := randomMatrix(2, n, 17)
	clean := make([][]float64, m)
	noisy := make([][]float64, m)
	for i := 0; i < m; i++ {
		c1, c2 := rng.Range(-3, 3), rng.Range(-3, 3)
		clean[i] = make([]float64, n)
		noisy[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			clean[i][j] = c1*basis[0][j] + c2*basis[1][j]
			noisy[i][j] = clean[i][j] + rng.Range(-0.1, 0.1)
		}
	}
	_, s, v, err := SVD(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if s[1] < 10*s[2] {
		t.Fatalf("rank-2 structure not visible in spectrum: %v", s[:4])
	}
	proj, err := Project(noisy, v, 2)
	if err != nil {
		t.Fatal(err)
	}
	projClean, err := Project(clean, v, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Distances in the projected space track clean distances.
	for trial := 0; trial < 50; trial++ {
		i, j := rng.Intn(m), rng.Intn(m)
		var dn, dc float64
		for k := 0; k < 2; k++ {
			dn += (proj[i][k] - proj[j][k]) * (proj[i][k] - proj[j][k])
			dc += (projClean[i][k] - projClean[j][k]) * (projClean[i][k] - projClean[j][k])
		}
		if math.Abs(math.Sqrt(dn)-math.Sqrt(dc)) > 0.5 {
			t.Fatalf("projected distance drifted: %v vs %v", math.Sqrt(dn), math.Sqrt(dc))
		}
	}
}

func TestProjectValidation(t *testing.T) {
	a := randomMatrix(5, 3, 1)
	_, _, v, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Project(nil, v, 2); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Project(a, v, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Project(a, v, 4); err == nil {
		t.Fatal("k > n accepted")
	}
	if _, err := Project([][]float64{{1}}, v, 2); err == nil {
		t.Fatal("ragged row accepted")
	}
}

func BenchmarkSVD2000x15(b *testing.B) {
	a := randomMatrix(2000, 15, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := SVD(a); err != nil {
			b.Fatal(err)
		}
	}
}
