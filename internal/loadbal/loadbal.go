// Package loadbal implements the paper's §6 extension: turning node
// heterogeneity to an advantage by publishing forwarding capacity and
// current load alongside proximity information, and trading network
// distance against load when selecting routing neighbors.
//
// The scoring rule follows the companion tech report ([20], "Turning
// Heterogeneity into an Advantage in Overlay Routing"): a candidate's
// effective cost is its RTT inflated by a congestion penalty that grows
// without bound as utilization approaches 1, so heavily loaded nodes are
// bypassed even when they are physically closest.
package loadbal

import (
	"errors"
	"math"

	"gsso/internal/can"
	"gsso/internal/ecan"
	"gsso/internal/netsim"
	"gsso/internal/simrand"
	"gsso/internal/softstate"
)

// Penalty returns the congestion multiplier for a node at the given load
// and capacity: 1 + alpha * u/(1-u) where u = load/capacity. Utilization
// at or beyond 1, or non-positive capacity, yields +Inf (the node is
// saturated and must not be selected). alpha = 0 disables balancing.
func Penalty(load, capacity, alpha float64) float64 {
	if alpha == 0 {
		return 1
	}
	if capacity <= 0 {
		return math.Inf(1)
	}
	u := load / capacity
	if u < 0 {
		u = 0
	}
	if u >= 1 {
		return math.Inf(1)
	}
	return 1 + alpha*u/(1-u)
}

// Score combines a measured RTT with the candidate's published load state.
func Score(rtt, load, capacity, alpha float64) float64 {
	return rtt * Penalty(load, capacity, alpha)
}

// Selector is capacity-aware proximity-neighbor selection: the soft-state
// lookup supplies candidates with their published load statistics, up to
// budget of them are RTT-probed, and the minimum Score wins.
type Selector struct {
	store    *softstate.Store
	budget   int
	alpha    float64
	fallback ecan.Selector
}

// Compile-time interface check.
var _ ecan.Selector = (*Selector)(nil)

// NewSelector builds a capacity-aware selector. alpha >= 0 sets how hard
// load repels selection (0 = pure proximity, equivalent to
// softstate.Selector).
func NewSelector(store *softstate.Store, budget int, alpha float64, fallback ecan.Selector) (*Selector, error) {
	if store == nil {
		return nil, errors.New("loadbal: nil store")
	}
	if budget < 1 {
		return nil, errors.New("loadbal: probe budget must be >= 1")
	}
	if alpha < 0 || math.IsNaN(alpha) {
		return nil, errors.New("loadbal: alpha must be >= 0")
	}
	return &Selector{store: store, budget: budget, alpha: alpha, fallback: fallback}, nil
}

// Select implements ecan.Selector.
func (s *Selector) Select(self *can.Member, region can.Path, candidates []*can.Member) *can.Member {
	vec := s.store.Vector(self)
	if vec != nil {
		entries, _, err := s.store.Lookup(region, vec)
		if err == nil && len(entries) > 0 {
			if best := s.probeBest(self, entries); best != nil {
				return best
			}
		}
	}
	if s.fallback != nil {
		return s.fallback.Select(self, region, candidates)
	}
	if len(candidates) > 0 {
		return candidates[0]
	}
	return nil
}

// probeBest probes up to budget candidates and scores them; saturated
// nodes (infinite penalty) lose to any unsaturated one.
func (s *Selector) probeBest(self *can.Member, entries []*softstate.Entry) *can.Member {
	var best *can.Member
	bestScore := math.Inf(1)
	probes := 0
	env := s.store.Env()
	for _, e := range entries {
		if e.Member == self {
			continue
		}
		if probes >= s.budget {
			break
		}
		rtt := env.ProbeRTT(self.Host, e.Host)
		probes++
		if math.IsInf(rtt, 1) {
			// Probe timeout: the reactive deletion of §5.2.
			s.store.ReportUnreachable(e.Member)
			continue
		}
		score := Score(rtt, e.Load, e.Capacity, s.alpha)
		if score < bestScore || (best == nil && probes == 1) {
			// A first saturated candidate still seeds best so that a
			// lookup consisting only of saturated nodes returns something.
			if score < bestScore || best == nil {
				best, bestScore = e.Member, score
			}
		}
	}
	return best
}

// Report summarizes one traffic round.
type Report struct {
	// MeanStretch is the average route stretch over the measured pairs.
	MeanStretch float64
	// Routes is the number of measured routes.
	Routes int
	// TotalHops is the number of forwarding events charged to members.
	TotalHops int
	// MaxUtilization and MeanUtilization describe member load/capacity
	// after the round.
	MaxUtilization  float64
	MeanUtilization float64
}

// RunTraffic routes nPairs random member pairs over the overlay, charging
// one unit of load to every intermediate forwarder (endpoints are free),
// and returns stretch plus the resulting utilization profile. loads is
// updated in place so rounds can accumulate; pass a fresh map to start
// cold. capacities must cover every member.
func RunTraffic(ov *ecan.Overlay, env *netsim.Env, capacities map[*can.Member]float64,
	loads map[*can.Member]float64, nPairs int, rng *simrand.Source) (Report, error) {
	if ov == nil || env == nil {
		return Report{}, errors.New("loadbal: nil overlay or env")
	}
	if loads == nil {
		return Report{}, errors.New("loadbal: nil loads map")
	}
	members := ov.CAN().Members()
	if len(members) < 2 {
		return Report{}, errors.New("loadbal: need at least two members")
	}
	rep := Report{}
	stretchSum := 0.0
	for i := 0; i < nPairs; i++ {
		src := members[rng.Intn(len(members))]
		dst := members[rng.Intn(len(members))]
		if src == dst || src.Host == dst.Host {
			continue
		}
		res, err := ov.Route(src, dst.ZoneCenter())
		if err != nil {
			return Report{}, err
		}
		direct := env.Latency(src.Host, dst.Host)
		if direct <= 0 {
			continue
		}
		stretchSum += res.Latency(env) / direct
		rep.Routes++
		for _, hop := range res.Members[1 : len(res.Members)-1] {
			loads[hop]++
			rep.TotalHops++
		}
	}
	if rep.Routes > 0 {
		rep.MeanStretch = stretchSum / float64(rep.Routes)
	}
	var utilSum float64
	counted := 0
	for _, m := range members {
		cap := capacities[m]
		if cap <= 0 {
			continue
		}
		u := loads[m] / cap
		utilSum += u
		counted++
		if u > rep.MaxUtilization {
			rep.MaxUtilization = u
		}
	}
	if counted > 0 {
		rep.MeanUtilization = utilSum / float64(counted)
	}
	return rep, nil
}

// AssignHeterogeneousCapacities draws per-member capacities from a heavy-
// tailed two-class distribution: a fraction strong of members get
// strongCap, the rest weakCap — the paper's observation that nodes near
// gateways forward better than modem-class nodes.
func AssignHeterogeneousCapacities(members []*can.Member, strong float64,
	strongCap, weakCap float64, rng *simrand.Source) map[*can.Member]float64 {
	out := make(map[*can.Member]float64, len(members))
	for _, m := range members {
		if rng.Bool(strong) {
			out[m] = strongCap
		} else {
			out[m] = weakCap
		}
	}
	return out
}
