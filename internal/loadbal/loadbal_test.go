package loadbal

import (
	"math"
	"testing"

	"gsso/internal/can"
	"gsso/internal/ecan"
	"gsso/internal/landmark"
	"gsso/internal/netsim"
	"gsso/internal/simrand"
	"gsso/internal/softstate"
	"gsso/internal/topology"
)

type harness struct {
	net     *topology.Network
	env     *netsim.Env
	overlay *ecan.Overlay
	store   *softstate.Store
}

func newHarness(t testing.TB, members int) *harness {
	t.Helper()
	spec := topology.Spec{
		TransitDomains:        2,
		TransitNodesPerDomain: 4,
		StubsPerTransitNode:   3,
		NodesPerStub:          14,
		ExtraTransitEdgeProb:  0.3,
		ExtraStubEdgeProb:     0.2,
		ExtraInterDomainLinks: 1,
		Latency:               topology.GTITMLatency(),
	}
	net := topology.MustGenerate(spec, simrand.New(1))
	env := netsim.New(net)
	rng := simrand.New(2)
	ov, err := ecan.BuildUniform(net, members, 2, 0, ecan.RandomSelector{RNG: rng.Split("sel")}, rng)
	if err != nil {
		t.Fatal(err)
	}
	set, err := landmark.Choose(net, 6, rng.Split("lm"))
	if err != nil {
		t.Fatal(err)
	}
	space, err := landmark.NewSpace(set, 3, 5,
		landmark.EstimateMaxRTT(net, set, net.RandomStubHosts(rng.Split("est"), 20)))
	if err != nil {
		t.Fatal(err)
	}
	store, err := softstate.NewStore(ov, space, env, softstate.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return &harness{net: net, env: env, overlay: ov, store: store}
}

func TestPenalty(t *testing.T) {
	cases := []struct {
		name                  string
		load, capacity, alpha float64
		want                  float64
	}{
		{"alpha-zero", 5, 10, 0, 1},
		{"idle", 0, 10, 1, 1},
		{"half", 5, 10, 1, 2},
		{"half-alpha2", 5, 10, 2, 3},
		{"negative-load", -3, 10, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Penalty(tc.load, tc.capacity, tc.alpha); math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("Penalty = %v, want %v", got, tc.want)
			}
		})
	}
	if !math.IsInf(Penalty(10, 10, 1), 1) {
		t.Fatal("saturated node should have infinite penalty")
	}
	if !math.IsInf(Penalty(11, 10, 1), 1) {
		t.Fatal("oversaturated node should have infinite penalty")
	}
	if !math.IsInf(Penalty(5, 0, 1), 1) {
		t.Fatal("zero capacity should have infinite penalty")
	}
}

func TestScoreMonotoneInLoad(t *testing.T) {
	prev := 0.0
	for load := 0.0; load < 10; load++ {
		s := Score(7, load, 10, 1.5)
		if s <= prev && load > 0 {
			t.Fatalf("score not increasing at load %v: %v <= %v", load, s, prev)
		}
		prev = s
	}
}

func TestNewSelectorValidation(t *testing.T) {
	h := newHarness(t, 16)
	if _, err := NewSelector(nil, 3, 1, nil); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := NewSelector(h.store, 0, 1, nil); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := NewSelector(h.store, 3, -1, nil); err == nil {
		t.Fatal("negative alpha accepted")
	}
	if _, err := NewSelector(h.store, 3, math.NaN(), nil); err == nil {
		t.Fatal("NaN alpha accepted")
	}
}

func TestSelectorAvoidsSaturatedNodes(t *testing.T) {
	h := newHarness(t, 96)
	if err := h.store.PublishAll(func(m *can.Member) []softstate.PublishOption {
		return []softstate.PublishOption{softstate.WithCapacity(10)}
	}); err != nil {
		t.Fatal(err)
	}
	m := h.overlay.CAN().Members()[0]
	region := m.Path().Prefix(h.overlay.DigitLen())
	vec := h.store.Vector(m)

	// Find what pure proximity would select, then saturate it.
	pure, err := NewSelector(h.store, 10, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	cands := h.overlay.RegionMembers(region)
	first := pure.Select(m, region, cands)
	if first == nil || first == m {
		t.Skip("no distinct selection possible")
	}
	h.store.UpdateLoad(first, 10) // utilization 1.0

	balanced, err := NewSelector(h.store, 10, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := balanced.Select(m, region, cands)
	if got == first {
		entries, _, _ := h.store.Lookup(region, vec)
		if len(entries) > 1 {
			t.Fatal("selector picked a saturated node despite alternatives")
		}
	}
}

func TestSelectorFallback(t *testing.T) {
	h := newHarness(t, 32)
	used := false
	fb := ecan.FuncSelector(func(self *can.Member, region can.Path, cands []*can.Member) *can.Member {
		used = true
		return cands[0]
	})
	sel, err := NewSelector(h.store, 3, 1, fb)
	if err != nil {
		t.Fatal(err)
	}
	m := h.overlay.CAN().Members()[0] // unpublished
	if got := sel.Select(m, m.Path().Prefix(2), h.overlay.CAN().Members()); got == nil || !used {
		t.Fatal("fallback not used")
	}
	sel2, _ := NewSelector(h.store, 3, 1, nil)
	cands := h.overlay.CAN().Members()
	if got := sel2.Select(m, m.Path().Prefix(2), cands); got != cands[0] {
		t.Fatal("nil fallback should return first candidate")
	}
}

func TestRunTrafficValidation(t *testing.T) {
	h := newHarness(t, 16)
	rng := simrand.New(3)
	caps := map[*can.Member]float64{}
	if _, err := RunTraffic(nil, h.env, caps, map[*can.Member]float64{}, 10, rng); err == nil {
		t.Fatal("nil overlay accepted")
	}
	if _, err := RunTraffic(h.overlay, h.env, caps, nil, 10, rng); err == nil {
		t.Fatal("nil loads accepted")
	}
}

func TestRunTrafficAccumulatesLoad(t *testing.T) {
	h := newHarness(t, 64)
	rng := simrand.New(4)
	members := h.overlay.CAN().Members()
	caps := AssignHeterogeneousCapacities(members, 0.2, 100, 10, rng.Split("caps"))
	loads := map[*can.Member]float64{}
	rep, err := RunTraffic(h.overlay, h.env, caps, loads, 300, rng.Split("t"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Routes == 0 {
		t.Fatal("no routes measured")
	}
	if rep.MeanStretch < 1 {
		t.Fatalf("stretch below 1: %v", rep.MeanStretch)
	}
	sum := 0.0
	for _, l := range loads {
		sum += l
	}
	if int(sum) != rep.TotalHops {
		t.Fatalf("loads sum %v != TotalHops %d", sum, rep.TotalHops)
	}
	if rep.MaxUtilization < rep.MeanUtilization {
		t.Fatal("max < mean utilization")
	}
	// Second round accumulates.
	rep2, err := RunTraffic(h.overlay, h.env, caps, loads, 300, rng.Split("t2"))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.MaxUtilization < rep.MaxUtilization {
		t.Fatal("accumulated utilization decreased")
	}
}

func TestAssignHeterogeneousCapacities(t *testing.T) {
	h := newHarness(t, 64)
	members := h.overlay.CAN().Members()
	caps := AssignHeterogeneousCapacities(members, 0.25, 100, 10, simrand.New(5))
	if len(caps) != len(members) {
		t.Fatal("not all members assigned")
	}
	strong, weak := 0, 0
	for _, c := range caps {
		switch c {
		case 100:
			strong++
		case 10:
			weak++
		default:
			t.Fatalf("unexpected capacity %v", c)
		}
	}
	if strong == 0 || weak == 0 {
		t.Fatalf("degenerate split: %d strong, %d weak", strong, weak)
	}
}

// TestBalancingReducesPeakUtilization is the §6 headline: with load-aware
// selection, traffic concentrates less on the proximity-favorite nodes.
func TestBalancingReducesPeakUtilization(t *testing.T) {
	h := newHarness(t, 96)
	members := h.overlay.CAN().Members()
	capRNG := simrand.New(6)
	caps := AssignHeterogeneousCapacities(members, 0.2, 200, 20, capRNG)
	if err := h.store.PublishAll(func(m *can.Member) []softstate.PublishOption {
		return []softstate.PublishOption{softstate.WithCapacity(caps[m])}
	}); err != nil {
		t.Fatal(err)
	}

	run := func(alpha float64) float64 {
		sel, err := NewSelector(h.store, 8, alpha, ecan.RandomSelector{RNG: simrand.New(7)})
		if err != nil {
			t.Fatal(err)
		}
		h.overlay.SetSelector(sel)
		loads := map[*can.Member]float64{}
		maxU := 0.0
		// Feedback rounds: route, publish loads, re-select.
		for round := 0; round < 3; round++ {
			rep, err := RunTraffic(h.overlay, h.env, caps, loads, 400, simrand.New(uint64(100+round)))
			if err != nil {
				t.Fatal(err)
			}
			maxU = rep.MaxUtilization
			for m, l := range loads {
				h.store.UpdateLoad(m, l)
			}
			for _, m := range members {
				h.overlay.InvalidateEntries(m)
			}
		}
		return maxU
	}

	peakGreedy := run(0)
	peakBalanced := run(2)
	t.Logf("peak utilization: alpha=0 %.2f, alpha=2 %.2f", peakGreedy, peakBalanced)
	if peakBalanced > peakGreedy*1.1 {
		t.Fatalf("balancing made peak worse: %.2f vs %.2f", peakBalanced, peakGreedy)
	}
}
