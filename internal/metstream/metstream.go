// Package metstream streams per-sample experiment metrics to disk instead
// of accumulating full result matrices in RAM. At the paper's 10k nodes an
// in-memory [queries][methods]float64 matrix is noise; at 10^6 nodes a
// fleet of them is the difference between fitting in memory and not.
//
// The format is an append-only sequence of binary records behind a magic
// header. Each record carries a monotonically non-decreasing timestamp
// (virtual time or sample sequence — the writer rejects regressions), a
// short series key, and one float64 value. Readers decode incrementally
// and aggregates are computed by streaming re-read, so neither side ever
// holds the full series.
package metstream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// magic identifies a metric stream file (format version 1).
var magic = [8]byte{'G', 'S', 'S', 'M', 'E', 'T', '0', '1'}

// Record is one metric sample.
type Record struct {
	// T is the sample's timestamp. Units are the producer's business
	// (virtual ms, sample index); the stream only requires that T never
	// decreases.
	T uint64
	// Key names the series ("hybrid-stretch", "ers-probes", ...).
	Key string
	// V is the sample value.
	V float64
}

// Writer appends records to an underlying stream. Not safe for concurrent
// use.
type Writer struct {
	w      *bufio.Writer
	c      io.Closer // nil when wrapping a plain io.Writer
	lastT  uint64
	wrote  bool
	n      int64
	failed error
}

// NewWriter writes a stream header onto w.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	if c, ok := w.(io.Closer); ok {
		return &Writer{w: bw, c: c}, nil
	}
	return &Writer{w: bw}, nil
}

// Create creates (truncating) the file at path and writes the header.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w, err := NewWriter(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Append writes one record. Timestamps must be non-decreasing; a
// regression is an error and poisons the writer.
func (w *Writer) Append(t uint64, key string, v float64) error {
	if w.failed != nil {
		return w.failed
	}
	if w.wrote && t < w.lastT {
		w.failed = fmt.Errorf("metstream: timestamp regression %d after %d", t, w.lastT)
		return w.failed
	}
	if len(key) > math.MaxUint16 {
		return fmt.Errorf("metstream: key length %d exceeds %d", len(key), math.MaxUint16)
	}
	var buf [18]byte
	binary.LittleEndian.PutUint64(buf[0:], t)
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(v))
	binary.LittleEndian.PutUint16(buf[16:], uint16(len(key)))
	if _, err := w.w.Write(buf[:]); err != nil {
		w.failed = err
		return err
	}
	if _, err := w.w.WriteString(key); err != nil {
		w.failed = err
		return err
	}
	w.lastT, w.wrote = t, true
	w.n++
	return nil
}

// Count returns the number of records appended so far.
func (w *Writer) Count() int64 { return w.n }

// Close flushes and closes the underlying stream (when it is closable).
func (w *Writer) Close() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.c != nil {
		return w.c.Close()
	}
	return nil
}

// Reader decodes a stream incrementally.
type Reader struct {
	r     *bufio.Reader
	c     io.Closer
	lastT uint64
	read  bool
}

// NewReader validates the header of r.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("metstream: reading header: %w", err)
	}
	if hdr != magic {
		return nil, fmt.Errorf("metstream: bad magic %q", hdr[:])
	}
	rd := &Reader{r: br}
	if c, ok := r.(io.Closer); ok {
		rd.c = c
	}
	return rd, nil
}

// Open opens the stream file at path.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// Next returns the next record, io.EOF at a clean end of stream, and a
// decoding error otherwise (a truncated record is an error, not EOF). The
// reader re-verifies timestamp monotonicity on the way in.
func (r *Reader) Next() (Record, error) {
	var buf [18]byte
	if _, err := io.ReadFull(r.r, buf[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("metstream: truncated record: %w", err)
	}
	rec := Record{
		T: binary.LittleEndian.Uint64(buf[0:]),
		V: math.Float64frombits(binary.LittleEndian.Uint64(buf[8:])),
	}
	klen := int(binary.LittleEndian.Uint16(buf[16:]))
	key := make([]byte, klen)
	if _, err := io.ReadFull(r.r, key); err != nil {
		return Record{}, fmt.Errorf("metstream: truncated key: %w", err)
	}
	rec.Key = string(key)
	if r.read && rec.T < r.lastT {
		return Record{}, fmt.Errorf("metstream: timestamp regression %d after %d", rec.T, r.lastT)
	}
	r.lastT, r.read = rec.T, true
	return rec, nil
}

// Close closes the underlying stream (when it is closable).
func (r *Reader) Close() error {
	if r.c != nil {
		return r.c.Close()
	}
	return nil
}

// Agg is the streaming aggregate of one series.
type Agg struct {
	Count int64
	Sum   float64
	Min   float64
	Max   float64
}

// Mean returns Sum/Count (NaN for an empty aggregate).
func (a Agg) Mean() float64 {
	if a.Count == 0 {
		return math.NaN()
	}
	return a.Sum / float64(a.Count)
}

// add folds one value in.
func (a *Agg) add(v float64) {
	if a.Count == 0 || v < a.Min {
		a.Min = v
	}
	if a.Count == 0 || v > a.Max {
		a.Max = v
	}
	a.Count++
	a.Sum += v
}

// Aggregate streams the whole file through per-series aggregates. Memory
// is O(series), independent of record count.
func Aggregate(path string) (map[string]Agg, error) {
	r, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	out := make(map[string]Agg)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		a := out[rec.Key]
		a.add(rec.V)
		out[rec.Key] = a
	}
}
