package metstream

import (
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.bin")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{T: 0, Key: "a", V: 1.5},
		{T: 0, Key: "b", V: -2},
		{T: 3, Key: "a", V: math.Pi},
		{T: 7, Key: "", V: 0},
	}
	for _, rec := range recs {
		if err := w.Append(rec.T, rec.Key, rec.V); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != int64(len(recs)) {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i, want := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("tail read err = %v, want EOF", err)
	}
}

func TestWriterRejectsRegression(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.bin")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(5, "a", 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(5, "a", 2); err != nil {
		t.Fatalf("equal timestamp rejected: %v", err)
	}
	if err := w.Append(4, "a", 3); err == nil {
		t.Fatal("timestamp regression accepted")
	}
	// Writer is poisoned after a regression.
	if err := w.Append(9, "a", 4); err == nil {
		t.Fatal("poisoned writer accepted a record")
	}
	w.Close()
}

func TestReaderDetectsBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.bin")
	if err := os.WriteFile(path, []byte("NOTMAGIC and then some"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReaderDetectsTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.bin")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, "series", 2.5); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("truncated record read err = %v, want decode error", err)
	}
}

func TestAggregate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.bin")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string][]float64{
		"x": {3, -1, 4, 1, 5},
		"y": {2.5},
	}
	ts := uint64(0)
	for i := 0; i < 5; i++ {
		for key, vs := range map[string][]float64{"x": vals["x"], "y": vals["y"]} {
			if i < len(vs) {
				if err := w.Append(ts, key, vs[i]); err != nil {
					t.Fatal(err)
				}
				ts++
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	aggs, err := Aggregate(path)
	if err != nil {
		t.Fatal(err)
	}
	x := aggs["x"]
	if x.Count != 5 || x.Sum != 12 || x.Min != -1 || x.Max != 5 {
		t.Fatalf("x agg = %+v", x)
	}
	if x.Mean() != 12.0/5 {
		t.Fatalf("x mean = %v", x.Mean())
	}
	y := aggs["y"]
	if y.Count != 1 || y.Sum != 2.5 || y.Min != 2.5 || y.Max != 2.5 {
		t.Fatalf("y agg = %+v", y)
	}
	if !math.IsNaN((Agg{}).Mean()) {
		t.Fatal("empty mean should be NaN")
	}
}
