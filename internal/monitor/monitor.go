// Package monitor builds the cluster-wide health view over a set of
// overlayd metrics endpoints: it scrapes each node's /healthz, /readyz,
// /metrics.json and /traces and merges them into one ClusterView — per
// node health, readiness and record counts, suspicion and breaker
// states, ring coverage, cluster-merged RPC latency quantiles, and the
// slowest distributed traces stitched across nodes by trace ID.
//
// cmd/overlaymon renders the view for humans; internal/e2e asserts
// self-healing invariants against the same machine-readable snapshot,
// so the chaos gate and the operator console can never disagree about
// what "healthy" means.
package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"gsso/internal/obs"
	"gsso/internal/obs/span"
)

// ScrapeResult is one node's raw scrape: health and readiness probes,
// metrics snapshot, and (when the node traces) its span ring dump.
type ScrapeResult struct {
	Addr           string
	Healthy        bool
	Ready          bool
	NotReadyReason string
	Err            string
	Snap           obs.Snapshot
	Traces         *span.Dump
}

// ScrapeAll fetches every node concurrently. Order of the result matches
// the input, so renders are stable across ticks.
func ScrapeAll(addrs []string, timeout time.Duration) []ScrapeResult {
	client := &http.Client{Timeout: timeout}
	out := make([]ScrapeResult, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			out[i] = ScrapeNode(client, addr)
		}(i, addr)
	}
	wg.Wait()
	return out
}

// ScrapeNode probes one node's metrics endpoint. /healthz and
// /metrics.json are required for a healthy scrape; /traces is optional —
// a node running with tracing disabled simply contributes no spans — and
// so is /readyz: an endpoint that does not expose readiness (older
// daemons, bare obs.Handler muxes) is taken as ready-when-live rather
// than flagged not-ready forever.
func ScrapeNode(client *http.Client, addr string) ScrapeResult {
	res := ScrapeResult{Addr: addr}
	base := "http://" + addr
	if err := getOK(client, base+"/healthz", nil); err != nil {
		res.Err = err.Error()
		return res
	}
	if err := getOK(client, base+"/metrics.json", &res.Snap); err != nil {
		res.Err = err.Error()
		return res
	}
	res.Healthy = true
	res.Ready, res.NotReadyReason = scrapeReady(client, base)
	var dump span.Dump
	if err := getOK(client, base+"/traces", &dump); err == nil {
		res.Traces = &dump
	}
	return res
}

// scrapeReady probes /readyz: 200 is ready, 503 is explicitly
// not-ready (the body carries the reason), anything else — a 404 from
// an endpoint that predates the liveness/readiness split, or a
// transport error after /healthz just succeeded — degrades to
// ready-when-live.
func scrapeReady(client *http.Client, base string) (bool, string) {
	resp, err := client.Get(base + "/readyz")
	if err != nil {
		return true, ""
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	switch resp.StatusCode {
	case http.StatusOK:
		return true, ""
	case http.StatusServiceUnavailable:
		reason := string(body)
		if len(reason) > 0 && reason[len(reason)-1] == '\n' {
			reason = reason[:len(reason)-1]
		}
		return false, reason
	default:
		return true, ""
	}
}

// getOK fetches url, requires 200, and JSON-decodes into v when non-nil.
func getOK(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	if v == nil {
		_, err := io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// NodeView is one node's row in the cluster health table.
type NodeView struct {
	Addr            string  `json:"addr"`
	Healthy         bool    `json:"healthy"`
	Ready           bool    `json:"ready"`
	NotReadyReason  string  `json:"not_ready_reason,omitempty"`
	Err             string  `json:"err,omitempty"`
	Records         float64 `json:"records"`
	Requests        float64 `json:"requests"`
	RequestsPerSec  float64 `json:"requests_per_sec,omitempty"` // watch mode only
	RefreshFailures float64 `json:"refresh_failures"`
	ConnsOpen       float64 `json:"conns_open"`
	// ConnsBinary/ConnsJSON split the node's live wire connections
	// (client and server side) by negotiated codec version, from the
	// wire_codec{version} gauge. During a rollout the json count drains
	// toward zero as old peers restart onto the binary codec; nodes
	// predating the gauge report both as zero.
	ConnsBinary float64 `json:"conns_binary"`
	ConnsJSON   float64 `json:"conns_json"`
	// Epoch is the node's current ring epoch (wire_ring_epoch): 1 at
	// boot, +1 per live membership swap applied. Nodes disagreeing on
	// membership show different epochs only transiently — the peer set,
	// not the epoch, is the agreement criterion (epochs are per-node
	// counters and reset to 1 on restart). Reconfigs counts the swaps
	// this incarnation applied (cluster_reconfig_total).
	Epoch        float64  `json:"epoch"`
	Reconfigs    float64  `json:"reconfigs"`
	Suspected    float64  `json:"suspected"`
	OpenBreakers []string `json:"open_breakers,omitempty"`
}

// RPCView is the cluster-merged client latency of one message type:
// every node's wire_rpc_latency_ms histograms for that type summed
// bucket-wise (all nodes share obs.DefBuckets), with quantiles estimated
// off the merged distribution.
type RPCView struct {
	Type   string  `json:"type"`
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"` // non-"ok" outcomes, breaker fail-fasts included
	P50    float64 `json:"p50_ms"`
	P90    float64 `json:"p90_ms"`
	P99    float64 `json:"p99_ms"`
}

// SpanView is one span placed in its trace tree.
type SpanView struct {
	Depth  int  `json:"depth"`
	Orphan bool `json:"orphan,omitempty"` // parent span not found in any scraped buffer
	span.Span
}

// TraceView is one trace stitched across every scraped node: the spans
// of all ring dumps sharing a TraceID, arranged into a parent/child tree.
type TraceView struct {
	TraceID string     `json:"trace_id"`
	RootOp  string     `json:"root_op"`
	Node    string     `json:"node"` // node that started the trace
	Outcome string     `json:"outcome"`
	DurMs   float64    `json:"dur_ms"`
	Orphans int        `json:"orphans"`
	Spans   []SpanView `json:"spans"`
}

// ClusterView is the full health snapshot: one row per node, readiness
// and ring coverage, merged RPC latencies, and the slowest stitched
// traces.
type ClusterView struct {
	ScrapedAt     string      `json:"scraped_at"`
	Nodes         []NodeView  `json:"nodes"`
	Healthy       int         `json:"healthy"`
	Ready         int         `json:"ready"`
	Unreachable   int         `json:"unreachable"`
	TotalRecords  float64     `json:"total_records"`
	CoverageNodes int         `json:"coverage_nodes"` // healthy nodes holding at least one record
	RPC           []RPCView   `json:"rpc"`
	Traces        []TraceView `json:"slowest_traces"`
	TracedNodes   int         `json:"traced_nodes"`
}

// sumSeries totals every series of a counter/gauge family.
func sumSeries(s obs.Snapshot, name string) float64 {
	f, ok := s.Family(name)
	if !ok {
		return 0
	}
	total := 0.0
	for _, se := range f.Series {
		total += se.Value
	}
	return total
}

// BuildView aggregates raw scrapes into the cluster health snapshot.
// top bounds how many stitched traces are kept (slowest first).
func BuildView(scrapes []ScrapeResult, top int) ClusterView {
	v := ClusterView{ScrapedAt: time.Now().UTC().Format(time.RFC3339)}
	merged := map[string]*obs.HistSnapshot{} // rpc type -> merged histogram
	errCounts := map[string]uint64{}
	var allSpans []span.Span
	for _, sc := range scrapes {
		nv := NodeView{Addr: sc.Addr, Healthy: sc.Healthy, Ready: sc.Ready,
			NotReadyReason: sc.NotReadyReason, Err: sc.Err}
		if !sc.Healthy {
			v.Unreachable++
			v.Nodes = append(v.Nodes, nv)
			continue
		}
		v.Healthy++
		if sc.Ready {
			v.Ready++
		}
		nv.Records = sumSeries(sc.Snap, "wire_records")
		nv.Requests = sumSeries(sc.Snap, "wire_requests_total")
		nv.RefreshFailures = sumSeries(sc.Snap, "wire_refresh_failures_total")
		nv.ConnsOpen = sumSeries(sc.Snap, "wire_conns_open")
		if f, ok := sc.Snap.Family("wire_codec"); ok {
			for _, se := range f.Series {
				if len(se.LabelValues) != 1 {
					continue
				}
				switch se.LabelValues[0] {
				case "binary":
					nv.ConnsBinary += se.Value
				case "json":
					nv.ConnsJSON += se.Value
				}
			}
		}
		nv.Epoch = sumSeries(sc.Snap, "wire_ring_epoch")
		nv.Reconfigs = sumSeries(sc.Snap, "cluster_reconfig_total")
		nv.Suspected = sumSeries(sc.Snap, "core_suspected_members")
		if f, ok := sc.Snap.Family("wire_breaker_state"); ok {
			for _, se := range f.Series {
				if se.Value == 2 && len(se.LabelValues) == 1 {
					nv.OpenBreakers = append(nv.OpenBreakers, se.LabelValues[0])
				}
			}
			sort.Strings(nv.OpenBreakers)
		}
		v.TotalRecords += nv.Records
		if nv.Records > 0 {
			v.CoverageNodes++
		}
		if f, ok := sc.Snap.Family("wire_rpc_latency_ms"); ok {
			for _, se := range f.Series {
				// Labels are (type, outcome) in family order.
				if len(se.LabelValues) != 2 || se.Hist == nil || se.Hist.Count == 0 {
					continue
				}
				typ, outcome := se.LabelValues[0], se.LabelValues[1]
				m, err := obs.MergeHist(merged[typ], se.Hist)
				if err != nil {
					continue // foreign bucket layout; skip rather than mis-merge
				}
				merged[typ] = m
				if outcome != span.OutcomeOK {
					errCounts[typ] += se.Hist.Count
				}
			}
		}
		if sc.Traces != nil {
			v.TracedNodes++
			allSpans = append(allSpans, sc.Traces.Spans...)
		}
		v.Nodes = append(v.Nodes, nv)
	}
	types := make([]string, 0, len(merged))
	for t := range merged {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		h := merged[t]
		v.RPC = append(v.RPC, RPCView{
			Type:   t,
			Count:  h.Count,
			Errors: errCounts[t],
			P50:    h.Quantile(0.50),
			P90:    h.Quantile(0.90),
			P99:    h.Quantile(0.99),
		})
	}
	v.Traces = stitchTraces(allSpans, top)
	return v
}

// stitchTraces groups spans from every node by TraceID, arranges each
// group into a parent/child tree (roots are ParentID==0; spans whose
// parent is in no scraped buffer are flagged orphans), and returns the
// top slowest traces by root duration.
func stitchTraces(spans []span.Span, top int) []TraceView {
	byTrace := map[uint64][]span.Span{}
	for _, s := range spans {
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
	}
	views := make([]TraceView, 0, len(byTrace))
	for id, group := range byTrace {
		views = append(views, buildTree(id, group))
	}
	sort.Slice(views, func(i, j int) bool {
		if views[i].DurMs != views[j].DurMs {
			return views[i].DurMs > views[j].DurMs
		}
		return views[i].TraceID < views[j].TraceID
	})
	if top > 0 && len(views) > top {
		views = views[:top]
	}
	return views
}

// buildTree arranges one trace's spans into DFS order with depths.
func buildTree(id uint64, group []span.Span) TraceView {
	tv := TraceView{TraceID: fmt.Sprintf("%016x", id)}
	present := make(map[uint64]bool, len(group))
	children := map[uint64][]span.Span{}
	var roots []span.Span
	for _, s := range group {
		present[s.SpanID] = true
	}
	for _, s := range group {
		if s.Root() {
			roots = append(roots, s)
		} else if present[s.ParentID] {
			children[s.ParentID] = append(children[s.ParentID], s)
		} else {
			tv.Orphans++
		}
	}
	byStart := func(ss []span.Span) {
		sort.Slice(ss, func(i, j int) bool {
			if ss[i].StartUnixMicro != ss[j].StartUnixMicro {
				return ss[i].StartUnixMicro < ss[j].StartUnixMicro
			}
			return ss[i].SpanID < ss[j].SpanID
		})
	}
	byStart(roots)
	var walk func(s span.Span, depth int)
	walk = func(s span.Span, depth int) {
		tv.Spans = append(tv.Spans, SpanView{Depth: depth, Span: s})
		kids := children[s.SpanID]
		byStart(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	if len(roots) > 0 {
		tv.RootOp = roots[0].Op
		tv.Node = roots[0].Node
		tv.Outcome = roots[0].Outcome
		for _, r := range roots {
			if r.DurMs > tv.DurMs {
				tv.DurMs = r.DurMs
			}
		}
	}
	// Orphans still render, flagged, at the end — a partially evicted ring
	// buffer should not hide the spans that survived.
	for _, s := range group {
		if !s.Root() && !present[s.ParentID] {
			tv.Spans = append(tv.Spans, SpanView{Depth: 0, Orphan: true, Span: s})
		}
	}
	return tv
}
