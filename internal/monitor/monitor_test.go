package monitor

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gsso/internal/obs"
	"gsso/internal/obs/span"
	"gsso/internal/wire"
)

// monNode is one cluster member under test: a wire node with its own
// registry and span collector, exposed over the same HTTP surface
// overlayd serves (obs handler at /, span dump at /traces).
type monNode struct {
	node *wire.Node
	col  *span.Collector
	srv  *httptest.Server
}

func startMonNode(t *testing.T, listen string, cfg wire.SpaceConfig, peers []string) *monNode {
	t.Helper()
	reg := obs.NewRegistry()
	col := span.NewCollector(1024, 1)
	pol := wire.RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	n, err := wire.NewNodeWithRegistry(listen, cfg, peers, time.Minute, reg,
		wire.WithReplication(3),
		wire.WithRetryPolicy(pol),
		wire.WithTracing(col))
	if err != nil {
		t.Fatalf("node %s: %v", listen, err)
	}
	t.Cleanup(func() { n.Close() })
	mux := http.NewServeMux()
	mux.Handle("/", obs.Handler(reg))
	mux.Handle("/traces", span.Handler(col))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return &monNode{node: n, col: col, srv: srv}
}

func (m *monNode) scrapeAddr() string { return strings.TrimPrefix(m.srv.URL, "http://") }

// TestStitchedTraceAcrossFaultedCluster is the acceptance path: a
// replicated publish (k=3) where one replica store crosses a FaultProxy
// that drops its first connection must show up in the merged snapshot
// as ONE stitched trace containing the root, all three client store
// spans (the faulted one attempt-counted), and all three server spans —
// with every parent ID resolving.
func TestStitchedTraceAcrossFaultedCluster(t *testing.T) {
	// Reserve the publisher's address first: its peer list must contain
	// its own addr so the ring has three owners (same trick as the demo).
	stub := wire.SpaceConfig{Landmarks: []string{"boot"}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
	boot, err := wire.NewNode("127.0.0.1:0", stub, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	pubAddr := boot.Addr()
	if err := boot.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := wire.SpaceConfig{Landmarks: []string{pubAddr}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
	b := startMonNode(t, "127.0.0.1:0", cfg, nil)
	c := startMonNode(t, "127.0.0.1:0", cfg, nil)

	proxy, err := wire.NewFaultProxy(c.node.Addr(), 42)
	if err != nil {
		t.Fatal(err)
	}
	// Registered between c and a so cleanup order is a → proxy → c: the
	// publisher's pooled connection through the proxy must die before the
	// proxy waits out its pipes.
	t.Cleanup(func() { proxy.Close() })

	peers := []string{pubAddr, b.node.Addr(), proxy.Addr()}
	a := startMonNode(t, pubAddr, cfg, peers)

	// Drop the first connection through the proxy, then heal: the faulted
	// replica store fails exactly its early attempts and succeeds on a
	// retry, all under one span.
	proxy.SetLoss(1)
	healed := make(chan struct{})
	go func() {
		defer close(healed)
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if proxy.Dropped() >= 1 {
				proxy.SetLoss(0)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	if _, err := a.node.Publish(1, 2*time.Second); err != nil {
		t.Fatalf("publish: %v", err)
	}
	<-healed
	if proxy.Dropped() == 0 {
		t.Fatal("fault proxy never dropped a connection; test exercised nothing")
	}
	if proxy.Forwarded() == 0 {
		t.Fatal("fault proxy never forwarded; the replica store did not recover")
	}

	addrs := []string{a.scrapeAddr(), b.scrapeAddr(), c.scrapeAddr()}
	view := BuildView(ScrapeAll(addrs, 2*time.Second), 10)

	if view.Healthy != 3 || view.Unreachable != 0 {
		t.Fatalf("want 3 healthy scrapes, got healthy=%d unreachable=%d", view.Healthy, view.Unreachable)
	}
	if view.TracedNodes != 3 {
		t.Fatalf("want 3 traced nodes, got %d", view.TracedNodes)
	}
	// Bare obs.Handler muxes expose no /readyz: readiness degrades to
	// ready-when-live rather than flagging the whole cluster.
	if view.Ready != 3 {
		t.Fatalf("want 3 ready (degraded readiness), got %d", view.Ready)
	}

	var publishTraces []TraceView
	for _, tr := range view.Traces {
		if tr.RootOp == "publish" {
			publishTraces = append(publishTraces, tr)
		}
	}
	if len(publishTraces) != 1 {
		t.Fatalf("want exactly 1 stitched publish trace, got %d (%+v)", len(publishTraces), view.Traces)
	}
	tr := publishTraces[0]
	if tr.Orphans != 0 {
		t.Fatalf("stitched trace has %d orphan spans: %+v", tr.Orphans, tr.Spans)
	}
	if tr.Outcome != span.OutcomeOK {
		t.Fatalf("publish trace outcome = %q, want ok", tr.Outcome)
	}

	stores, serves, retried := 0, 0, 0
	for _, s := range tr.Spans {
		switch s.Op {
		case "store":
			stores++
			if s.Outcome != span.OutcomeOK {
				t.Errorf("store span to %s outcome %q, want ok", s.Peer, s.Outcome)
			}
			if s.Attempts >= 2 {
				retried++
			}
		case "serve.store":
			serves++
		}
		if !s.Root() && s.Depth == 0 {
			t.Errorf("non-root span %s rendered at depth 0: parent did not resolve", s.Op)
		}
	}
	if stores != 3 {
		t.Errorf("want 3 client store spans (k=3), got %d", stores)
	}
	if serves != 3 {
		t.Errorf("want 3 server store spans (one per replica owner), got %d", serves)
	}
	if retried != 1 {
		t.Errorf("want exactly 1 attempt-counted store span (through the proxy), got %d", retried)
	}

	// The merged RPC table must have absorbed the stores too.
	var storeRPC *RPCView
	for i := range view.RPC {
		if view.RPC[i].Type == "store" {
			storeRPC = &view.RPC[i]
		}
	}
	if storeRPC == nil || storeRPC.Count < 3 {
		t.Fatalf("merged rpc view missing store latencies: %+v", view.RPC)
	}

	// And the whole snapshot must survive a JSON round trip (the -json
	// output the smoke and chaos gates assert on).
	raw, err := json.Marshal(view)
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	var back ClusterView
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	if len(back.Nodes) != 3 || len(back.Traces) == 0 {
		t.Fatalf("round-tripped snapshot lost data: %+v", back)
	}
}

// TestBuildViewDownNode verifies a dead node renders as unreachable
// without poisoning the rest of the view.
func TestBuildViewDownNode(t *testing.T) {
	cfg := wire.SpaceConfig{Landmarks: []string{"boot"}, IndexDims: 1, BitsPerDim: 4, MaxRTTMs: 50}
	n := startMonNode(t, "127.0.0.1:0", cfg, nil)
	view := BuildView(ScrapeAll([]string{n.scrapeAddr(), "127.0.0.1:1"}, 500*time.Millisecond), 5)
	if view.Healthy != 1 || view.Unreachable != 1 {
		t.Fatalf("want 1 healthy + 1 unreachable, got %+v", view)
	}
	if len(view.Nodes) != 2 || view.Nodes[1].Err == "" {
		t.Fatalf("down node should carry its scrape error: %+v", view.Nodes)
	}
}

// TestScrapeReadiness pins the three /readyz outcomes: explicit ready,
// explicit not-ready with a reason, and the degraded ready-when-live
// path for endpoints that predate the liveness/readiness split.
func TestScrapeReadiness(t *testing.T) {
	reg := obs.NewRegistry()
	mkServer := func(readyz http.HandlerFunc) *httptest.Server {
		mux := http.NewServeMux()
		mux.Handle("/", obs.Handler(reg))
		if readyz != nil {
			mux.HandleFunc("/readyz", readyz)
		}
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		return srv
	}
	ready := mkServer(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ready\n"))
	})
	notReady := mkServer(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("starting: awaiting initial publish\n"))
	})
	legacy := mkServer(nil)

	addrs := []string{
		strings.TrimPrefix(ready.URL, "http://"),
		strings.TrimPrefix(notReady.URL, "http://"),
		strings.TrimPrefix(legacy.URL, "http://"),
	}
	view := BuildView(ScrapeAll(addrs, time.Second), 5)
	if view.Healthy != 3 {
		t.Fatalf("healthy = %d, want 3", view.Healthy)
	}
	if view.Ready != 2 {
		t.Fatalf("ready = %d, want 2 (ready + legacy)", view.Ready)
	}
	if !view.Nodes[0].Ready || view.Nodes[0].NotReadyReason != "" {
		t.Fatalf("ready node misreported: %+v", view.Nodes[0])
	}
	if view.Nodes[1].Ready {
		t.Fatalf("not-ready node reported ready: %+v", view.Nodes[1])
	}
	if want := "starting: awaiting initial publish"; view.Nodes[1].NotReadyReason != want {
		t.Fatalf("reason = %q, want %q", view.Nodes[1].NotReadyReason, want)
	}
	if !view.Nodes[2].Ready {
		t.Fatalf("legacy endpoint must degrade to ready-when-live: %+v", view.Nodes[2])
	}
}
