package monitor

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// RenderText writes the human view: node table (health, readiness,
// record and request counts, open breakers), merged RPC latencies, and
// the slowest stitched traces as indented trees.
func RenderText(w io.Writer, v ClusterView) {
	fmt.Fprintf(w, "cluster: %d/%d healthy, %d ready, %.0f records on %d/%d nodes, %d traced\n",
		v.Healthy, len(v.Nodes), v.Ready, v.TotalRecords, v.CoverageNodes, v.Healthy, v.TracedNodes)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tHEALTH\tREADY\tEPOCH\tRECORDS\tREQUESTS\tREQ/S\tREFRESH_FAIL\tCONNS\tCODECS\tSUSPECTED\tOPEN_BREAKERS")
	for _, n := range v.Nodes {
		health := "up"
		if !n.Healthy {
			health = "DOWN"
		}
		ready := "yes"
		switch {
		case !n.Healthy:
			ready = "-"
		case !n.Ready:
			ready = "NO"
			if n.NotReadyReason != "" {
				ready = "NO (" + n.NotReadyReason + ")"
			}
		}
		breakers := "-"
		if len(n.OpenBreakers) > 0 {
			breakers = strings.Join(n.OpenBreakers, ",")
		}
		rps := "-"
		if n.RequestsPerSec > 0 {
			rps = fmt.Sprintf("%.1f", n.RequestsPerSec)
		}
		// The codec mix makes rollouts visible at a glance: bin climbs and
		// json drains as peers restart onto the binary codec.
		codecs := "-"
		if n.ConnsBinary > 0 || n.ConnsJSON > 0 {
			codecs = fmt.Sprintf("bin:%.0f json:%.0f", n.ConnsBinary, n.ConnsJSON)
		}
		// Ring epoch, with the live-reconfig count when any were applied:
		// "3 (+2)" reads as epoch 3 after 2 swaps this incarnation. Nodes
		// predating the gauge show "-".
		epoch := "-"
		if n.Epoch > 0 {
			epoch = fmt.Sprintf("%.0f", n.Epoch)
			if n.Reconfigs > 0 {
				epoch = fmt.Sprintf("%.0f (+%.0f)", n.Epoch, n.Reconfigs)
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.0f\t%.0f\t%s\t%.0f\t%.0f\t%s\t%.0f\t%s\n",
			n.Addr, health, ready, epoch, n.Records, n.Requests, rps,
			n.RefreshFailures, n.ConnsOpen, codecs, n.Suspected, breakers)
	}
	tw.Flush()
	if len(v.RPC) > 0 {
		fmt.Fprintln(w)
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "RPC\tCOUNT\tERRORS\tP50(ms)\tP90(ms)\tP99(ms)")
		for _, r := range v.RPC {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%.2f\t%.2f\t%.2f\n",
				r.Type, r.Count, r.Errors, r.P50, r.P90, r.P99)
		}
		tw.Flush()
	}
	if len(v.Traces) > 0 {
		fmt.Fprintln(w)
		fmt.Fprintln(w, "SLOWEST TRACES")
		for _, t := range v.Traces {
			fmt.Fprintf(w, "trace %s %s %s %.2fms spans=%d orphans=%d\n",
				t.TraceID, t.RootOp, t.Outcome, t.DurMs, len(t.Spans), t.Orphans)
			for _, s := range t.Spans {
				marker := ""
				if s.Orphan {
					marker = " [orphan]"
				}
				attempts := ""
				if s.Attempts > 1 {
					attempts = fmt.Sprintf(" x%d", s.Attempts)
				}
				errs := ""
				if s.Err != "" {
					errs = " err=" + s.Err
				}
				fmt.Fprintf(w, "  %s%s %s->%s %s %.2fms%s%s%s\n",
					strings.Repeat("  ", s.Depth), s.Op, s.Node, s.Peer,
					s.Outcome, s.DurMs, attempts, marker, errs)
			}
		}
	}
}
