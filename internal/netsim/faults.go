package netsim

import (
	"fmt"
	"sort"

	"gsso/internal/simrand"
	"gsso/internal/topology"
)

// This file is the simulator's fault-injection side: a FaultPlan is a
// deterministic, seeded failure schedule over virtual time. Experiments
// install one on an Env and replay identical failure traces run after
// run — probabilistic packet loss per link, network partitions, slow-link
// degradation, and churn waves (crash/recover schedules). All decisions
// are pure functions of (seed, endpoints, virtual time or probe sequence
// number), so the same seed and the same probe sequence yield the same
// trace.

// SlowWindow degrades links during [From, Until) of virtual time: RTTs of
// affected links inflate by Factor. An empty Hosts set degrades every
// link; otherwise only links touching a listed host are slowed.
type SlowWindow struct {
	From, Until Time
	// Factor multiplies the link latency; values <= 1 are inert.
	Factor float64
	// Hosts limits the degradation to links with at least one endpoint in
	// the set. Empty means all links.
	Hosts map[topology.NodeID]struct{}
}

func (w SlowWindow) active(now Time) bool { return now >= w.From && now < w.Until }

// PartitionWindow bisects the network during [From, Until): probes between
// a SideA host and a non-SideA host are black-holed (time out), while
// probes within a side are unaffected.
type PartitionWindow struct {
	From, Until Time
	// SideA holds one side of the cut; everything else is side B.
	SideA map[topology.NodeID]struct{}
}

func (w PartitionWindow) active(now Time) bool { return now >= w.From && now < w.Until }

// BisectByStub builds the paper-natural partition: stub domains with index
// below StubCount/2 (plus the transit domains with index below
// TransitDomains/2) form side A. It models an inter-provider cut rather
// than random host-level loss.
func BisectByStub(net *topology.Network, from, until Time) PartitionWindow {
	side := make(map[topology.NodeID]struct{})
	halfStubs := net.StubCount() / 2
	halfTransit := net.Spec().TransitDomains / 2
	for id := topology.NodeID(0); int(id) < net.Len(); id++ {
		n := net.Node(id)
		if n.Stub >= 0 {
			if n.Stub < halfStubs {
				side[id] = struct{}{}
			}
		} else if n.Domain < halfTransit {
			side[id] = struct{}{}
		}
	}
	return PartitionWindow{From: from, Until: until, SideA: side}
}

// ChurnWave crashes a host set during [From, Until): probes to or from a
// crashed host time out, exactly as Env.SetDown models, but driven by the
// virtual clock so recovery is part of the schedule.
type ChurnWave struct {
	From, Until Time
	Down        map[topology.NodeID]struct{}
}

func (w ChurnWave) active(now Time) bool { return now >= w.From && now < w.Until }

// CrashWaves builds a churn schedule: waves evenly spaced every period
// starting at start, each crashing a fresh rng-sampled fraction of hosts
// for downFor of virtual time. The schedule depends only on the rng stream
// and the host list, so a split-labelled source reproduces it exactly.
func CrashWaves(rng *simrand.Source, hosts []topology.NodeID, waves int, start, period, downFor Time, fraction float64) []ChurnWave {
	if fraction < 0 {
		fraction = 0
	}
	k := int(fraction * float64(len(hosts)))
	out := make([]ChurnWave, 0, waves)
	for w := 0; w < waves; w++ {
		down := make(map[topology.NodeID]struct{}, k)
		for _, idx := range rng.Sample(len(hosts), k) {
			down[hosts[idx]] = struct{}{}
		}
		from := start + Time(w)*period
		out = append(out, ChurnWave{From: from, Until: from + downFor, Down: down})
	}
	return out
}

// FaultPlan is a complete, replayable failure schedule. The zero value
// injects nothing. Plans are immutable once installed on an Env; all
// methods are read-only and safe for concurrent use.
type FaultPlan struct {
	// Seed roots the per-probe loss stream.
	Seed uint64
	// LossRate drops each probe independently with this probability.
	LossRate float64
	// LossExempt links touching these hosts never lose probes (typically
	// the landmark infrastructure, mirroring NodeJitter.Exempt).
	LossExempt map[topology.NodeID]struct{}
	// Slow lists slow-link degradation windows.
	Slow []SlowWindow
	// Partitions lists network cuts.
	Partitions []PartitionWindow
	// Churn lists crash/recover waves.
	Churn []ChurnWave
}

// DownAt reports whether the churn schedule has host crashed at now.
func (p *FaultPlan) DownAt(host topology.NodeID, now Time) bool {
	for _, w := range p.Churn {
		if !w.active(now) {
			continue
		}
		if _, down := w.Down[host]; down {
			return true
		}
	}
	return false
}

// Severed reports whether a partition separates a and b at now.
func (p *FaultPlan) Severed(a, b topology.NodeID, now Time) bool {
	for _, w := range p.Partitions {
		if !w.active(now) {
			continue
		}
		_, inA := w.SideA[a]
		_, inB := w.SideA[b]
		if inA != inB {
			return true
		}
	}
	return false
}

// SlowFactor returns the combined latency inflation for the (a, b) link at
// now; 1 when no window applies. Overlapping windows compound.
func (p *FaultPlan) SlowFactor(a, b topology.NodeID, now Time) float64 {
	f := 1.0
	for _, w := range p.Slow {
		if !w.active(now) || w.Factor <= 1 {
			continue
		}
		if len(w.Hosts) > 0 {
			_, hitA := w.Hosts[a]
			_, hitB := w.Hosts[b]
			if !hitA && !hitB {
				continue
			}
		}
		f *= w.Factor
	}
	return f
}

// DropProbe reports whether the seq-th probe of the run, on link (a, b),
// is lost. The decision hashes (Seed, a, b, seq), so a fixed seed and a
// fixed probe ordering replay an identical drop trace.
func (p *FaultPlan) DropProbe(a, b topology.NodeID, seq uint64) bool {
	if p.LossRate <= 0 {
		return false
	}
	if _, ok := p.LossExempt[a]; ok {
		return false
	}
	if _, ok := p.LossExempt[b]; ok {
		return false
	}
	return unitFrom(pairHash(p.Seed^lossSeedSalt, a, b, int64(seq))) < p.LossRate
}

// lossSeedSalt decorrelates the loss stream from the jitter streams that
// share pairHash.
const lossSeedSalt = 0xfa17ab1e5eed

// Shifted returns a copy of the plan with every scheduled window moved
// forward by d. Plans are authored against t=0; shifting rebases one onto
// a clock that has already advanced (for example between experiment runs
// sharing an Env), so the same relative schedule replays. Host sets are
// shared with the original, and the probe-loss stream is unaffected: it
// keys on probe sequence, not time.
func (p *FaultPlan) Shifted(d Time) *FaultPlan {
	if p == nil || d == 0 {
		return p
	}
	q := *p
	q.Slow = make([]SlowWindow, len(p.Slow))
	for i, w := range p.Slow {
		w.From += d
		w.Until += d
		q.Slow[i] = w
	}
	q.Partitions = make([]PartitionWindow, len(p.Partitions))
	for i, w := range p.Partitions {
		w.From += d
		w.Until += d
		q.Partitions[i] = w
	}
	q.Churn = make([]ChurnWave, len(p.Churn))
	for i, w := range p.Churn {
		w.From += d
		w.Until += d
		q.Churn[i] = w
	}
	return &q
}

// Trace renders the plan's scheduled events in virtual-time order, for
// logging and for determinism assertions in tests. Probabilistic loss is
// summarized by its rate; scheduled windows are listed explicitly.
func (p *FaultPlan) Trace() []string {
	type ev struct {
		at   Time
		line string
	}
	var evs []ev
	for i, w := range p.Partitions {
		evs = append(evs, ev{w.From, line("partition", i, w.From, w.Until, len(w.SideA))})
	}
	for i, w := range p.Slow {
		evs = append(evs, ev{w.From, line("slow", i, w.From, w.Until, len(w.Hosts))})
	}
	for i, w := range p.Churn {
		evs = append(evs, ev{w.From, line("churn", i, w.From, w.Until, len(w.Down))})
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	out := make([]string, 0, len(evs))
	for _, e := range evs {
		out = append(out, e.line)
	}
	return out
}

func line(kind string, i int, from, until Time, n int) string {
	return fmt.Sprintf("%s[%d] from=%v until=%v hosts=%d", kind, i, from, until, n)
}
