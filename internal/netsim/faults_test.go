package netsim

import (
	"math"
	"testing"

	"gsso/internal/simrand"
	"gsso/internal/topology"
)

func testNet(t *testing.T) *topology.Network {
	t.Helper()
	return topology.MustGenerate(topology.Spec{
		TransitDomains:        2,
		TransitNodesPerDomain: 2,
		StubsPerTransitNode:   2,
		NodesPerStub:          4,
		Latency:               topology.GTITMLatency(),
	}, simrand.New(7))
}

// probeTrace replays a fixed probe schedule against an Env and returns
// which probes timed out.
func probeTrace(e *Env, hosts []topology.NodeID, rounds int) []bool {
	var out []bool
	for r := 0; r < rounds; r++ {
		for i := 0; i < len(hosts); i++ {
			for j := i + 1; j < len(hosts); j++ {
				out = append(out, math.IsInf(e.ProbeRTT(hosts[i], hosts[j]), 1))
			}
		}
		e.Clock().Advance(10)
	}
	return out
}

func TestFaultPlanLossDeterministic(t *testing.T) {
	net := testNet(t)
	hosts := net.StubHosts()
	plan := &FaultPlan{Seed: 42, LossRate: 0.3}

	mk := func() []bool {
		e := New(net)
		e.SetFaultPlan(plan)
		return probeTrace(e, hosts, 3)
	}
	a, b := mk(), mk()
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probe %d diverged between identical runs", i)
		}
		if a[i] {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Fatalf("loss rate 0.3 dropped %d of %d probes", drops, len(a))
	}

	// A different seed must give a different trace.
	e := New(net)
	e.SetFaultPlan(&FaultPlan{Seed: 43, LossRate: 0.3})
	c := probeTrace(e, hosts, 3)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical drop traces")
	}
}

func TestFaultPlanLossExempt(t *testing.T) {
	net := testNet(t)
	hosts := net.StubHosts()
	lm := hosts[0]
	plan := &FaultPlan{Seed: 1, LossRate: 1,
		LossExempt: map[topology.NodeID]struct{}{lm: {}}}
	e := New(net)
	e.SetFaultPlan(plan)
	if math.IsInf(e.ProbeRTT(lm, hosts[1]), 1) {
		t.Fatal("probe touching an exempt host was dropped")
	}
	if !math.IsInf(e.ProbeRTT(hosts[1], hosts[2]), 1) {
		t.Fatal("rate-1 loss did not drop a non-exempt probe")
	}
}

func TestBisectByStubPartitionWindow(t *testing.T) {
	net := testNet(t)
	plan := &FaultPlan{Partitions: []PartitionWindow{BisectByStub(net, 100, 200)}}
	e := New(net)
	e.SetFaultPlan(plan)

	// Find a cross-cut and a same-side pair of stub hosts.
	w := plan.Partitions[0]
	var inA, inB, inA2 topology.NodeID = -1, -1, -1
	for _, h := range net.StubHosts() {
		if _, ok := w.SideA[h]; ok {
			if inA < 0 {
				inA = h
			} else if inA2 < 0 {
				inA2 = h
			}
		} else if inB < 0 {
			inB = h
		}
	}
	if inA < 0 || inB < 0 || inA2 < 0 {
		t.Fatal("bisection did not split the stub hosts")
	}

	// Before the window: all reachable.
	if math.IsInf(e.ProbeRTT(inA, inB), 1) {
		t.Fatal("severed before the partition window")
	}
	e.Clock().Advance(150)
	if !math.IsInf(e.ProbeRTT(inA, inB), 1) {
		t.Fatal("cross-cut probe survived during the partition")
	}
	if math.IsInf(e.ProbeRTT(inA, inA2), 1) {
		t.Fatal("same-side probe severed during the partition")
	}
	e.Clock().Advance(100) // past Until: healed
	if math.IsInf(e.ProbeRTT(inA, inB), 1) {
		t.Fatal("partition did not heal after the window")
	}
}

func TestCrashWavesScheduleAndRecovery(t *testing.T) {
	net := testNet(t)
	hosts := net.StubHosts()
	rng := simrand.New(5).Split("churn")
	waves := CrashWaves(rng, hosts, 2, 100, 300, 150, 0.25)
	if len(waves) != 2 {
		t.Fatalf("built %d waves", len(waves))
	}
	want := int(0.25 * float64(len(hosts)))
	for i, w := range waves {
		if len(w.Down) != want {
			t.Fatalf("wave %d crashes %d hosts, want %d", i, len(w.Down), want)
		}
	}
	// Same rng path rebuilds the identical schedule.
	again := CrashWaves(simrand.New(5).Split("churn"), hosts, 2, 100, 300, 150, 0.25)
	for i := range waves {
		for h := range waves[i].Down {
			if _, ok := again[i].Down[h]; !ok {
				t.Fatalf("wave %d differs across identical seeds", i)
			}
		}
	}

	plan := &FaultPlan{Churn: waves}
	e := New(net)
	e.SetFaultPlan(plan)
	var victim topology.NodeID = -1
	for h := range waves[0].Down {
		victim = h
		break
	}
	if e.Crashed(victim) {
		t.Fatal("victim down before its wave")
	}
	e.Clock().Advance(120) // inside wave 0
	if !e.Crashed(victim) {
		t.Fatal("victim alive inside its wave")
	}
	if !math.IsInf(e.ProbeRTT(victim, hosts[0]), 1) && victim != hosts[0] {
		t.Fatal("probe to crashed host did not time out")
	}
	e.Clock().Advance(200) // past wave 0's Until (100+150), before wave 1 (400)
	if e.Crashed(victim) {
		t.Fatal("victim did not recover after its wave")
	}
}

func TestSlowWindowInflatesRTT(t *testing.T) {
	net := testNet(t)
	hosts := net.StubHosts()
	a, b := hosts[0], hosts[1]
	e := New(net)
	base := e.ProbeRTT(a, b)
	e.SetFaultPlan(&FaultPlan{Slow: []SlowWindow{{From: 0, Until: 100, Factor: 3}}})
	got := e.ProbeRTT(a, b)
	if math.Abs(got-3*base) > 1e-9 {
		t.Fatalf("slow window RTT = %v, want %v", got, 3*base)
	}
	e.Clock().Advance(150)
	if got := e.ProbeRTT(a, b); math.Abs(got-base) > 1e-9 {
		t.Fatalf("RTT after window = %v, want %v", got, base)
	}
}

// TestSetDownWithPerturbation pins the SetDown × Perturbation interplay:
// a probe on a downed host must return +Inf and still cost a probe even
// when a latency perturbation is installed.
func TestSetDownWithPerturbation(t *testing.T) {
	net := testNet(t)
	hosts := net.StubHosts()
	a, b := hosts[0], hosts[1]
	e := New(net)
	e.SetPerturbation(StaticJitter{Seed: 9, Amplitude: 0.5})
	e.SetDown(b, true)

	before := e.Probes()
	if rtt := e.ProbeRTT(a, b); !math.IsInf(rtt, 1) {
		t.Fatalf("probe to downed host under perturbation = %v, want +Inf", rtt)
	}
	if e.Probes() != before+1 {
		t.Fatalf("timed-out probe not metered: %d -> %d", before, e.Probes())
	}
	// Same with a fault plan installed on top.
	e.SetFaultPlan(&FaultPlan{Seed: 3})
	if rtt := e.ProbeRTT(a, b); !math.IsInf(rtt, 1) {
		t.Fatalf("probe with plan installed = %v, want +Inf", rtt)
	}
	if e.Probes() != before+2 {
		t.Fatal("plan path dropped the probe accounting")
	}
	// Recovery restores finite, perturbed RTTs.
	e.SetDown(b, false)
	if rtt := e.ProbeRTT(a, b); math.IsInf(rtt, 1) || rtt <= 0 {
		t.Fatalf("recovered probe = %v", rtt)
	}
}

func TestFaultPlanTraceOrdered(t *testing.T) {
	net := testNet(t)
	plan := &FaultPlan{
		Partitions: []PartitionWindow{BisectByStub(net, 500, 600)},
		Slow:       []SlowWindow{{From: 50, Until: 80, Factor: 2}},
		Churn:      CrashWaves(simrand.New(1), net.StubHosts(), 1, 200, 100, 100, 0.5),
	}
	tr := plan.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace has %d events: %v", len(tr), tr)
	}
	// Virtual-time order: slow (50), churn (200), partition (500).
	for i, prefix := range []string{"slow", "churn", "partition"} {
		if len(tr[i]) < len(prefix) || tr[i][:len(prefix)] != prefix {
			t.Fatalf("trace[%d] = %q, want %s event", i, tr[i], prefix)
		}
	}
}
