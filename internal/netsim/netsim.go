// Package netsim wraps a topology.Network with the dynamic aspects of the
// simulation: a virtual clock, RTT probing with measurement accounting,
// per-category message accounting, and latency perturbation models that
// let experiments churn network conditions over time.
//
// The paper's techniques are evaluated by how few RTT measurements and
// overlay messages they need; this package is where those costs are
// metered. All latency perturbations preserve symmetry.
package netsim

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"gsso/internal/obs"
	"gsso/internal/topology"
)

// The env's meters are mirrored onto the process-global telemetry
// registry so harnesses (cmd/topobench) can report per-run overhead even
// for environments created deep inside an experiment. Per-Env totals
// remain authoritative; the mirror aggregates across all Envs sharing a
// run label. The "run" dimension exists because experiments execute in
// parallel: without it, concurrent runs would interleave into one series
// and bracketing snapshots around a run would charge it for its
// neighbors' probes. Envs created with New land in run "main"; shared
// cache fills use run "shared" so their cost is attributed to no
// experiment in particular (and per-experiment telemetry stays identical
// no matter which experiment happened to trigger the fill).
var (
	globalMessages = obs.Default().Counter("sim_messages_total",
		"Overlay messages metered across all simulation environments, by category and run.", "category", "run")
	globalProbes = obs.Default().Counter("sim_probes_total",
		"RTT probes metered across all simulation environments, by run.", "run")
)

// Time is virtual simulation time in milliseconds.
type Time float64

// Clock is a virtual clock. The zero value starts at time 0.
type Clock struct {
	mu  sync.Mutex
	now Time
}

// Now returns the current virtual time.
func (c *Clock) Now() Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d. Negative advances are ignored:
// virtual time never runs backwards.
func (c *Clock) Advance(d Time) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// Perturbation rescales a base latency between two hosts as a function of
// virtual time. Implementations must be symmetric in (a, b) and return a
// strictly positive value for positive base latencies.
type Perturbation interface {
	Apply(a, b topology.NodeID, base float64, now Time) float64
}

// Env couples a static topology with the simulation's dynamic state. All
// methods are safe for concurrent use.
type Env struct {
	net         *topology.Network
	run         string
	probeMirror *obs.Counter
	clock       *Clock
	perturb     Perturbation
	plan        *FaultPlan

	probes int64 // atomic

	mu       sync.Mutex
	messages map[string]int64
	mirrors  map[string]*obs.Counter // global-registry series, cached per category
	// Down hosts are tracked in a flat bitset indexed by the dense NodeID
	// space rather than a map: at 10^6 hosts the bitset is 128 KB, cheap
	// enough to size once and index without hashing on every probe.
	down      []uint64
	downCount int
}

// New returns an Env over net with a fresh clock and no perturbation,
// mirroring its meters under the default run label "main".
func New(net *topology.Network) *Env {
	return NewRun(net, "main")
}

// NewRun is New with an explicit run label for the global telemetry
// mirrors. Experiment harnesses pass their experiment ID so parallel runs
// stay distinguishable; an empty run falls back to "main".
func NewRun(net *topology.Network, run string) *Env {
	if run == "" {
		run = "main"
	}
	return &Env{
		net:         net,
		run:         run,
		probeMirror: globalProbes.With(run),
		clock:       &Clock{},
		messages:    make(map[string]int64),
	}
}

// Net returns the underlying topology.
func (e *Env) Net() *topology.Network { return e.net }

// Run returns the env's telemetry run label.
func (e *Env) Run() string { return e.run }

// Clock returns the virtual clock.
func (e *Env) Clock() *Clock { return e.clock }

// SetPerturbation installs (or clears, with nil) the latency perturbation.
func (e *Env) SetPerturbation(p Perturbation) { e.perturb = p }

// SetFaultPlan installs (or clears, with nil) the failure schedule. Like
// SetPerturbation it must be called before concurrent probing starts; the
// plan itself is immutable and replayable.
func (e *Env) SetFaultPlan(p *FaultPlan) { e.plan = p }

// FaultPlan returns the installed failure schedule, or nil.
func (e *Env) FaultPlan() *FaultPlan { return e.plan }

// Latency returns the current (possibly perturbed) one-way latency between
// a and b. It does NOT count as a measurement; it is the simulator's
// ground truth used for routing costs and oracle comparisons.
func (e *Env) Latency(a, b topology.NodeID) float64 {
	base := e.net.Latency(a, b)
	if e.perturb == nil || a == b {
		return base
	}
	return e.perturb.Apply(a, b, base, e.clock.Now())
}

// ProbeRTT performs one round-trip measurement from a to b, incrementing
// the probe counter. This is what the paper's algorithms spend; every call
// is one unit on the "# RTT measurements" axes. Probing a crashed host
// returns +Inf (the probe times out) — and still costs a probe.
// The probe sequence number feeds the fault plan's loss stream: a fixed
// seed plus a fixed probe ordering replays an identical drop trace (note
// ResetProbes therefore also rewinds the loss stream).
func (e *Env) ProbeRTT(a, b topology.NodeID) float64 {
	seq := uint64(atomic.AddInt64(&e.probes, 1))
	e.probeMirror.Inc()
	if e.Crashed(a) || e.Crashed(b) {
		return math.Inf(1)
	}
	if p := e.plan; p != nil {
		now := e.clock.Now()
		if p.Severed(a, b, now) || p.DropProbe(a, b, seq) {
			return math.Inf(1)
		}
		return 2 * e.Latency(a, b) * p.SlowFactor(a, b, now)
	}
	return 2 * e.Latency(a, b)
}

// Crashed reports whether a host is down, either manually (SetDown) or by
// the fault plan's churn schedule at the current virtual time.
func (e *Env) Crashed(host topology.NodeID) bool {
	if e.IsDown(host) {
		return true
	}
	return e.plan != nil && e.plan.DownAt(host, e.clock.Now())
}

// SetDown marks a host as crashed (true) or recovered (false). Crashed
// hosts time out probes; the simulator's Latency oracle is unaffected, so
// experiments can still compute ground truth.
func (e *Env) SetDown(host topology.NodeID, down bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.down == nil {
		e.down = make([]uint64, (e.net.Len()+63)/64)
	}
	w, bit := int(host)/64, uint64(1)<<(uint(host)%64)
	was := e.down[w]&bit != 0
	if down && !was {
		e.down[w] |= bit
		e.downCount++
	} else if !down && was {
		e.down[w] &^= bit
		e.downCount--
	}
}

// IsDown reports whether a host is crashed.
func (e *Env) IsDown(host topology.NodeID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.down == nil {
		return false
	}
	return e.down[int(host)/64]&(uint64(1)<<(uint(host)%64)) != 0
}

// DownHosts returns the hosts currently marked down via SetDown, in
// ascending ID order. Plan-scheduled churn is time-dependent and not
// included; use Crashed per host for the union at the current instant.
func (e *Env) DownHosts() []topology.NodeID {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]topology.NodeID, 0, e.downCount)
	for w, word := range e.down {
		for word != 0 {
			out = append(out, topology.NodeID(w*64+bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return out
}

// Probes returns the number of RTT measurements performed so far.
func (e *Env) Probes() int64 { return atomic.LoadInt64(&e.probes) }

// ResetProbes zeroes the probe counter and returns the previous value.
func (e *Env) ResetProbes() int64 { return atomic.SwapInt64(&e.probes, 0) }

// CountMessages adds n overlay messages to the named category (for
// example "publish", "lookup", "notify", "poll").
func (e *Env) CountMessages(category string, n int) {
	e.mu.Lock()
	e.messages[category] += int64(n)
	mirror := e.mirrors[category]
	if mirror == nil {
		mirror = globalMessages.With(category, e.run)
		if e.mirrors == nil {
			e.mirrors = make(map[string]*obs.Counter)
		}
		e.mirrors[category] = mirror
	}
	e.mu.Unlock()
	mirror.Add(float64(n))
}

// Messages returns the count in one category.
func (e *Env) Messages(category string) int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.messages[category]
}

// MessageTotals returns a copy of all message counters.
func (e *Env) MessageTotals() map[string]int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]int64, len(e.messages))
	for k, v := range e.messages {
		out[k] = v
	}
	return out
}

// ResetMessages clears all message counters.
func (e *Env) ResetMessages() {
	e.mu.Lock()
	e.messages = make(map[string]int64)
	e.mu.Unlock()
}

// MessageSummary renders the counters as "k=v" pairs in key order.
func (e *Env) MessageSummary() string {
	totals := e.MessageTotals()
	keys := make([]string, 0, len(totals))
	for k := range totals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", k, totals[k])
	}
	return out
}

// pairHash produces a symmetric, deterministic 64-bit hash of an unordered
// host pair plus an epoch, seeded by seed (SplitMix64-style mixing; the
// stdlib maphash is process-seeded and would break reproducibility).
func pairHash(seed uint64, a, b topology.NodeID, epoch int64) uint64 {
	if a > b {
		a, b = b, a
	}
	x := seed
	mix := func(v uint64) {
		x ^= v + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
	}
	mix(uint64(a))
	mix(uint64(b))
	mix(uint64(epoch))
	return x
}

// unitFrom maps a hash to a float64 in [0, 1).
func unitFrom(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// StaticJitter perturbs every pair's latency by a fixed multiplicative
// factor in [1-Amplitude, 1+Amplitude], chosen deterministically per pair.
// It models persistent measurement noise / path inflation.
type StaticJitter struct {
	Seed      uint64
	Amplitude float64 // in [0, 1)
}

// Apply implements Perturbation.
func (j StaticJitter) Apply(a, b topology.NodeID, base float64, _ Time) float64 {
	u := unitFrom(pairHash(j.Seed, a, b, 0))
	return base * (1 + j.Amplitude*(2*u-1))
}

// EpochJitter re-draws each pair's multiplicative factor every Period of
// virtual time. It models drifting network conditions: within one epoch
// latencies are stable, across epochs they change, which is what forces
// overlays to re-select neighbors.
type EpochJitter struct {
	Seed      uint64
	Amplitude float64 // in [0, 1)
	Period    Time    // > 0
}

// Apply implements Perturbation.
func (j EpochJitter) Apply(a, b topology.NodeID, base float64, now Time) float64 {
	epoch := int64(0)
	if j.Period > 0 {
		epoch = int64(now / j.Period)
	}
	u := unitFrom(pairHash(j.Seed, a, b, epoch))
	return base * (1 + j.Amplitude*(2*u-1))
}

// NodeJitter models per-node access-link congestion: every Period, each
// node independently becomes congested with probability Fraction, and a
// congested node's latencies inflate by a factor drawn from
// [1, 1+Amplitude]. Unlike the pairwise jitters, this churn has structure
// an overlay can exploit — re-selecting away from a degraded neighbor
// helps every route through that entry — so it is the model the
// maintenance experiments use. Latency scales by the product of both
// endpoints' factors (symmetric by construction).
type NodeJitter struct {
	Seed      uint64
	Amplitude float64 // > 0; peak inflation is (1+Amplitude)
	Period    Time    // > 0
	Fraction  float64 // probability a node is congested per epoch; <=0 means 1
	// Exempt lists hosts that never congest — typically the landmark
	// infrastructure, whose congestion would uniformly distort every
	// node's coordinates rather than model edge churn.
	Exempt map[topology.NodeID]struct{}
}

// Apply implements Perturbation.
func (j NodeJitter) Apply(a, b topology.NodeID, base float64, now Time) float64 {
	epoch := int64(0)
	if j.Period > 0 {
		epoch = int64(now / j.Period)
	}
	// (fa * fb) first: multiplication is commutative, so the result is
	// exactly symmetric in a and b.
	return base * (j.factor(a, epoch) * j.factor(b, epoch))
}

// factor returns a node's congestion multiplier for an epoch.
func (j NodeJitter) factor(x topology.NodeID, epoch int64) float64 {
	if _, ok := j.Exempt[x]; ok {
		return 1
	}
	frac := j.Fraction
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	pick := unitFrom(pairHash(j.Seed^0x5bd1e995, x, x, epoch))
	if pick >= frac {
		return 1
	}
	return 1 + j.Amplitude*unitFrom(pairHash(j.Seed, x, x, epoch))
}
