package netsim

import (
	"math"
	"sync"
	"testing"

	"gsso/internal/simrand"
	"gsso/internal/topology"
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	spec := topology.Spec{
		TransitDomains:        2,
		TransitNodesPerDomain: 3,
		StubsPerTransitNode:   2,
		NodesPerStub:          6,
		ExtraTransitEdgeProb:  0.3,
		ExtraStubEdgeProb:     0.2,
		ExtraInterDomainLinks: 1,
		Latency:               topology.GTITMLatency(),
	}
	return New(topology.MustGenerate(spec, simrand.New(1)))
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("fresh clock not at 0")
	}
	c.Advance(10)
	c.Advance(2.5)
	if c.Now() != 12.5 {
		t.Fatalf("Now = %v", c.Now())
	}
	c.Advance(-5)
	if c.Now() != 12.5 {
		t.Fatal("negative advance moved the clock")
	}
}

func TestProbeAccounting(t *testing.T) {
	e := testEnv(t)
	hosts := e.Net().StubHosts()
	if e.Probes() != 0 {
		t.Fatal("fresh env has probes")
	}
	rtt := e.ProbeRTT(hosts[0], hosts[1])
	if rtt != 2*e.Latency(hosts[0], hosts[1]) {
		t.Fatalf("RTT %v != 2x latency", rtt)
	}
	e.ProbeRTT(hosts[1], hosts[2])
	if e.Probes() != 2 {
		t.Fatalf("Probes = %d", e.Probes())
	}
	if prev := e.ResetProbes(); prev != 2 {
		t.Fatalf("ResetProbes returned %d", prev)
	}
	if e.Probes() != 0 {
		t.Fatal("probes not reset")
	}
}

func TestLatencyIsNotMetered(t *testing.T) {
	e := testEnv(t)
	hosts := e.Net().StubHosts()
	e.Latency(hosts[0], hosts[1])
	if e.Probes() != 0 {
		t.Fatal("Latency() counted as a probe")
	}
}

func TestMessageAccounting(t *testing.T) {
	e := testEnv(t)
	e.CountMessages("publish", 3)
	e.CountMessages("notify", 1)
	e.CountMessages("publish", 2)
	if e.Messages("publish") != 5 || e.Messages("notify") != 1 {
		t.Fatalf("counters wrong: %v", e.MessageTotals())
	}
	if e.Messages("absent") != 0 {
		t.Fatal("absent category nonzero")
	}
	if got := e.MessageSummary(); got != "notify=1 publish=5" {
		t.Fatalf("MessageSummary = %q", got)
	}
	totals := e.MessageTotals()
	totals["publish"] = 999 // must be a copy
	if e.Messages("publish") != 5 {
		t.Fatal("MessageTotals leaked internal map")
	}
	e.ResetMessages()
	if len(e.MessageTotals()) != 0 {
		t.Fatal("ResetMessages did not clear")
	}
}

func TestConcurrentAccounting(t *testing.T) {
	e := testEnv(t)
	hosts := e.Net().StubHosts()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				e.ProbeRTT(hosts[0], hosts[1])
				e.CountMessages("m", 1)
			}
		}()
	}
	wg.Wait()
	if e.Probes() != 800 || e.Messages("m") != 800 {
		t.Fatalf("probes=%d messages=%d", e.Probes(), e.Messages("m"))
	}
}

func TestStaticJitterSymmetricAndBounded(t *testing.T) {
	e := testEnv(t)
	e.SetPerturbation(StaticJitter{Seed: 42, Amplitude: 0.3})
	hosts := e.Net().StubHosts()
	for i := 0; i < 100; i++ {
		a, b := hosts[i%len(hosts)], hosts[(i*7+1)%len(hosts)]
		if a == b {
			continue
		}
		la, lb := e.Latency(a, b), e.Latency(b, a)
		if la != lb {
			t.Fatalf("jitter asymmetric: %v vs %v", la, lb)
		}
		base := e.Net().Latency(a, b)
		if la < base*0.7-1e-9 || la > base*1.3+1e-9 {
			t.Fatalf("jitter out of bounds: base %v perturbed %v", base, la)
		}
	}
}

func TestStaticJitterActuallyPerturbs(t *testing.T) {
	e := testEnv(t)
	hosts := e.Net().StubHosts()
	e.SetPerturbation(StaticJitter{Seed: 42, Amplitude: 0.3})
	changed := 0
	for i := 1; i < 50; i++ {
		if e.Latency(hosts[0], hosts[i]) != e.Net().Latency(hosts[0], hosts[i]) {
			changed++
		}
	}
	if changed < 40 {
		t.Fatalf("only %d/49 latencies perturbed", changed)
	}
}

func TestStaticJitterStableOverTime(t *testing.T) {
	e := testEnv(t)
	hosts := e.Net().StubHosts()
	e.SetPerturbation(StaticJitter{Seed: 42, Amplitude: 0.3})
	before := e.Latency(hosts[0], hosts[1])
	e.Clock().Advance(1e6)
	if e.Latency(hosts[0], hosts[1]) != before {
		t.Fatal("static jitter drifted with time")
	}
}

func TestEpochJitterChangesAcrossEpochs(t *testing.T) {
	e := testEnv(t)
	hosts := e.Net().StubHosts()
	e.SetPerturbation(EpochJitter{Seed: 7, Amplitude: 0.4, Period: 100})
	a, b := hosts[0], hosts[1]
	l0 := e.Latency(a, b)
	e.Clock().Advance(50) // same epoch
	if e.Latency(a, b) != l0 {
		t.Fatal("latency changed within an epoch")
	}
	// Across many epochs at least one draw must differ.
	changed := false
	for i := 0; i < 10 && !changed; i++ {
		e.Clock().Advance(100)
		if e.Latency(a, b) != l0 {
			changed = true
		}
	}
	if !changed {
		t.Fatal("epoch jitter never changed the latency")
	}
}

func TestEpochJitterZeroPeriodIsStatic(t *testing.T) {
	e := testEnv(t)
	hosts := e.Net().StubHosts()
	e.SetPerturbation(EpochJitter{Seed: 7, Amplitude: 0.4, Period: 0})
	l0 := e.Latency(hosts[0], hosts[1])
	e.Clock().Advance(12345)
	if e.Latency(hosts[0], hosts[1]) != l0 {
		t.Fatal("zero-period epoch jitter drifted")
	}
}

func TestNodeJitterSymmetricAndStructured(t *testing.T) {
	e := testEnv(t)
	hosts := e.Net().StubHosts()
	e.SetPerturbation(NodeJitter{Seed: 3, Amplitude: 0.8, Period: 100})
	a, b := hosts[0], hosts[1]
	if e.Latency(a, b) != e.Latency(b, a) {
		t.Fatal("node jitter asymmetric")
	}
	// Congestion only inflates: perturbed in [base, base*(1+A)^2].
	for i := 0; i < 50; i++ {
		u, v := hosts[i%len(hosts)], hosts[(i*13+7)%len(hosts)]
		if u == v {
			continue
		}
		base := e.Net().Latency(u, v)
		p := e.Latency(u, v)
		if p < base-1e-9 || p > base*1.8*1.8+1e-9 {
			t.Fatalf("node jitter out of bounds: base %v perturbed %v", base, p)
		}
	}
	// Across epochs the factor changes eventually.
	l0 := e.Latency(a, b)
	changed := false
	for i := 0; i < 10 && !changed; i++ {
		e.Clock().Advance(100)
		if e.Latency(a, b) != l0 {
			changed = true
		}
	}
	if !changed {
		t.Fatal("node jitter never changed across epochs")
	}
}

func TestNodeJitterFraction(t *testing.T) {
	e := testEnv(t)
	hosts := e.Net().StubHosts()
	e.SetPerturbation(NodeJitter{Seed: 4, Amplitude: 3, Period: 0, Fraction: 0.2})
	unchanged := 0
	total := 0
	for i := 0; i+1 < len(hosts) && total < 60; i += 2 {
		a, b := hosts[i], hosts[i+1]
		total++
		if e.Latency(a, b) == e.Net().Latency(a, b) {
			unchanged++
		}
	}
	// P(both endpoints uncongested) = 0.64; expect a solid majority of
	// pairs unchanged but not all.
	if unchanged < total/3 {
		t.Fatalf("only %d/%d pairs unchanged at fraction 0.2", unchanged, total)
	}
	if unchanged == total {
		t.Fatal("no pair perturbed at fraction 0.2")
	}
}

func TestNodeJitterFactorization(t *testing.T) {
	// lat'(a,b)/base(a,b) == f(a)*f(b): check via three pairs.
	e := testEnv(t)
	hosts := e.Net().StubHosts()
	e.SetPerturbation(NodeJitter{Seed: 9, Amplitude: 0.5, Period: 0})
	a, b, c := hosts[0], hosts[1], hosts[2]
	r := func(x, y topology.NodeID) float64 { return e.Latency(x, y) / e.Net().Latency(x, y) }
	// (f_a f_b)(f_a f_c)/(f_b f_c) = f_a^2
	fa2 := r(a, b) * r(a, c) / r(b, c)
	if fa2 <= 0 || math.IsNaN(fa2) {
		t.Fatalf("fa^2 = %v", fa2)
	}
	// Consistency with a fourth node.
	d := hosts[3]
	fa2alt := r(a, d) * r(a, c) / r(d, c)
	if math.Abs(fa2-fa2alt) > 1e-9 {
		t.Fatalf("node factors inconsistent: %v vs %v", fa2, fa2alt)
	}
}

func TestPerturbationPreservesSelfZero(t *testing.T) {
	e := testEnv(t)
	hosts := e.Net().StubHosts()
	e.SetPerturbation(StaticJitter{Seed: 1, Amplitude: 0.5})
	if e.Latency(hosts[3], hosts[3]) != 0 {
		t.Fatal("self-latency not zero under perturbation")
	}
}

func TestUnitFromRange(t *testing.T) {
	for i := uint64(0); i < 1000; i++ {
		u := unitFrom(pairHash(i, 1, 2, 0))
		if u < 0 || u >= 1 || math.IsNaN(u) {
			t.Fatalf("unitFrom out of range: %v", u)
		}
	}
}

func TestPairHashSymmetric(t *testing.T) {
	for i := 0; i < 100; i++ {
		a, b := topology.NodeID(i), topology.NodeID(i*3+1)
		if pairHash(9, a, b, 4) != pairHash(9, b, a, 4) {
			t.Fatal("pairHash not symmetric")
		}
	}
}
