package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus encodes a snapshot in the Prometheus text exposition
// format (version 0.0.4). Output is deterministic: families sorted by
// name, series by label values.
func WritePrometheus(w io.Writer, snap Snapshot) error {
	for _, f := range snap.Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, s := range f.Series {
			if s.Hist != nil {
				if err := writeHistSeries(w, f, s); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				f.Name, labelString(f.Labels, s.LabelValues, "", ""), formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistSeries emits the _bucket/_sum/_count triplet of one histogram
// series.
func writeHistSeries(w io.Writer, f FamilySnapshot, s SeriesSnapshot) error {
	cum := uint64(0)
	for i, bound := range s.Hist.Bounds {
		cum += s.Hist.Counts[i]
		le := formatValue(bound)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.Name, labelString(f.Labels, s.LabelValues, "le", le), cum); err != nil {
			return err
		}
	}
	cum += s.Hist.Counts[len(s.Hist.Bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		f.Name, labelString(f.Labels, s.LabelValues, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		f.Name, labelString(f.Labels, s.LabelValues, "", ""), formatValue(s.Hist.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n",
		f.Name, labelString(f.Labels, s.LabelValues, "", ""), s.Hist.Count)
	return err
}

// labelString renders {k="v",...}, optionally appending one extra pair
// (the histogram "le" label), or "" when there are no labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes backslashes, quotes, and newlines as the format wants.
		fmt.Fprintf(&b, "%s=%q", name, values[i])
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value the way Prometheus expects:
// integers without exponents, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteJSON encodes a snapshot as indented JSON.
func WriteJSON(w io.Writer, snap Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Handler returns an http.Handler exposing the registry live:
//
//	/metrics       Prometheus text format
//	/metrics.json  JSON snapshot
//	/healthz       "ok"
//
// Mount it as the root handler of a metrics listener.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r.Snapshot())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, r.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, "ok\n")
	})
	return mux
}
