package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// goldenRegistry builds a registry with one family of each kind and
// deterministic contents.
func goldenRegistry() *Registry {
	r := NewRegistry()
	req := r.Counter("wire_requests_total", "Requests served by message type.", "type")
	req.With("ping").Add(7)
	req.With("query").Add(2)
	r.Gauge("softstate_entries_live", "Live soft-state records.").With().Set(42)
	h := r.Histogram("wire_serve_latency_ms", "Request service time.", []float64{0.5, 1, 5}).With()
	// Exactly representable values keep sums and the golden file stable.
	for _, v := range []float64{0.25, 0.5, 0.75, 3, 12} {
		h.Observe(v)
	}
	return r
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "metrics.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if got := buf.String(); got != string(want) {
		t.Fatalf("prometheus encoding drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPrometheusFormatDetails(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE wire_requests_total counter",
		`wire_requests_total{type="ping"} 7`,
		"# TYPE softstate_entries_live gauge",
		"softstate_entries_live 42",
		// Buckets are cumulative: 2 + 1 + 1 + 1 observations.
		`wire_serve_latency_ms_bucket{le="0.5"} 2`,
		`wire_serve_latency_ms_bucket{le="1"} 3`,
		`wire_serve_latency_ms_bucket{le="5"} 4`,
		`wire_serve_latency_ms_bucket{le="+Inf"} 5`,
		"wire_serve_latency_ms_sum 16.5",
		"wire_serve_latency_ms_count 5",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Value("wire_requests_total", "query"); !ok || v != 2 {
		t.Fatalf("round-tripped value = %v/%v", v, ok)
	}
	f, ok := snap.Family("wire_serve_latency_ms")
	if !ok || f.Series[0].Hist == nil || f.Series[0].Hist.Count != 5 {
		t.Fatalf("round-tripped histogram wrong: %+v", f)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(Handler(goldenRegistry()))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(body, `wire_requests_total{type="ping"} 7`) {
		t.Fatalf("/metrics body wrong:\n%s", body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content type = %q", ctype)
	}
	body, ctype = get("/metrics.json")
	if !strings.Contains(body, `"wire_requests_total"`) || ctype != "application/json" {
		t.Fatalf("/metrics.json wrong (%q):\n%s", ctype, body)
	}
	if body, _ := get("/healthz"); body != "ok\n" {
		t.Fatalf("/healthz = %q", body)
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:    "0",
		3:    "3",
		-2:   "-2",
		0.25: "0.25",
		16.5: "16.5",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Fatalf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
}
