package obs

import (
	"fmt"
	"math"
)

// Quantile estimates the q-quantile (q in [0, 1]) of the histogram by
// linear interpolation inside the bucket containing the target rank —
// the same estimator Prometheus's histogram_quantile uses, so merged
// cluster views read like single-node ones. Observations in the +Inf
// bucket cannot be interpolated; a quantile landing there returns the
// highest finite bound. An empty histogram returns NaN.
func (h *HistSnapshot) Quantile(q float64) float64 {
	if h == nil || h.Count == 0 || len(h.Bounds) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := 0.0
	lower := 0.0
	for i, bound := range h.Bounds {
		c := float64(h.Counts[i])
		if c > 0 && cum+c >= rank {
			frac := (rank - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lower + (bound-lower)*frac
		}
		cum += c
		lower = bound
	}
	// Rank lies in the +Inf bucket: the best defensible estimate is the
	// largest finite bound.
	return h.Bounds[len(h.Bounds)-1]
}

// MergeHist adds b's observations into a copy of a. The two snapshots
// must share identical bucket bounds (all wire latency families use
// DefBuckets, so cross-node merges always qualify). Either side may be
// nil, in which case the other is copied through.
func MergeHist(a, b *HistSnapshot) (*HistSnapshot, error) {
	if a == nil {
		return copyHist(b), nil
	}
	if b == nil {
		return copyHist(a), nil
	}
	if len(a.Bounds) != len(b.Bounds) {
		return nil, fmt.Errorf("obs: merging histograms with %d vs %d buckets", len(a.Bounds), len(b.Bounds))
	}
	for i := range a.Bounds {
		if a.Bounds[i] != b.Bounds[i] {
			return nil, fmt.Errorf("obs: merging histograms with mismatched bound %d: %v vs %v",
				i, a.Bounds[i], b.Bounds[i])
		}
	}
	out := copyHist(a)
	for i := range b.Counts {
		out.Counts[i] += b.Counts[i]
	}
	out.Sum += b.Sum
	out.Count += b.Count
	return out, nil
}

func copyHist(h *HistSnapshot) *HistSnapshot {
	if h == nil {
		return nil
	}
	return &HistSnapshot{
		Bounds: append([]float64(nil), h.Bounds...),
		Counts: append([]uint64(nil), h.Counts...),
		Sum:    h.Sum,
		Count:  h.Count,
	}
}
