package obs

import (
	"math"
	"testing"
)

// histOf builds a snapshot by observing values into a fresh registry
// histogram, so the tests exercise the same bucketing the wire uses.
func histOf(bounds []float64, values ...float64) *HistSnapshot {
	r := NewRegistry()
	h := r.Histogram("h", "", bounds).With()
	for _, v := range values {
		h.Observe(v)
	}
	f, _ := r.Snapshot().Family("h")
	return f.Series[0].Hist
}

func TestQuantileEmpty(t *testing.T) {
	var nilHist *HistSnapshot
	if !math.IsNaN(nilHist.Quantile(0.5)) {
		t.Fatal("nil histogram must quantile to NaN")
	}
	if !math.IsNaN(histOf([]float64{1, 10}).Quantile(0.5)) {
		t.Fatal("empty histogram must quantile to NaN")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	// 100 observations uniform in (0, 10]: all land in the (0,10] bucket
	// of bounds {10, 100}, so interpolation should recover the uniform
	// quantiles of that bucket: q -> 10q.
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i%10) + 0.5
	}
	h := histOf([]float64{10, 100}, vals...)
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 5}, {0.9, 9}, {1, 10},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 0.01 {
			t.Errorf("Quantile(%.2f) = %.3f, want %.3f", tc.q, got, tc.want)
		}
	}
}

func TestQuantileAcrossBuckets(t *testing.T) {
	// 50 obs <= 1, 50 obs in (1, 10]: the median sits exactly at the
	// first bucket's upper bound, p75 halfway into the second.
	vals := make([]float64, 0, 100)
	for i := 0; i < 50; i++ {
		vals = append(vals, 0.5, 5.5)
	}
	h := histOf([]float64{1, 10}, vals...)
	if got := h.Quantile(0.5); math.Abs(got-1) > 0.01 {
		t.Errorf("p50 = %.3f, want 1.0", got)
	}
	if got := h.Quantile(0.75); math.Abs(got-5.5) > 0.01 {
		t.Errorf("p75 = %.3f, want 5.5 (halfway through second bucket)", got)
	}
}

func TestQuantileInfBucket(t *testing.T) {
	// Every observation beyond the last finite bound: the estimator
	// cannot interpolate into +Inf and must answer the highest finite
	// bound rather than invent a number.
	h := histOf([]float64{1, 10}, 50, 60, 70)
	if got := h.Quantile(0.99); got != 10 {
		t.Fatalf("quantile in +Inf bucket = %v, want highest finite bound 10", got)
	}
}

func TestQuantileClampsQ(t *testing.T) {
	h := histOf([]float64{1, 10}, 0.5)
	if got := h.Quantile(-1); math.IsNaN(got) {
		t.Fatal("q<0 must clamp, not NaN")
	}
	if got := h.Quantile(2); math.IsNaN(got) {
		t.Fatal("q>1 must clamp, not NaN")
	}
}

func TestMergeHist(t *testing.T) {
	a := histOf([]float64{1, 10}, 0.5, 0.6)
	b := histOf([]float64{1, 10}, 5, 6, 7)
	m, err := MergeHist(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 5 {
		t.Fatalf("merged count = %d, want 5", m.Count)
	}
	if want := 0.5 + 0.6 + 5 + 6 + 7; math.Abs(m.Sum-want) > 1e-9 {
		t.Fatalf("merged sum = %v, want %v", m.Sum, want)
	}
	if m.Counts[0] != 2 || m.Counts[1] != 3 {
		t.Fatalf("merged buckets = %v", m.Counts)
	}
	// Inputs untouched.
	if a.Count != 2 || b.Count != 3 {
		t.Fatal("MergeHist mutated its inputs")
	}
}

func TestMergeHistNilSides(t *testing.T) {
	a := histOf([]float64{1, 10}, 0.5)
	m, err := MergeHist(nil, a)
	if err != nil || m == nil || m.Count != 1 {
		t.Fatalf("nil+a: %v %+v", err, m)
	}
	m.Counts[0] = 99
	if a.Counts[0] == 99 {
		t.Fatal("merge of nil side must copy, not alias")
	}
	if m, err := MergeHist(a, nil); err != nil || m.Count != 1 {
		t.Fatalf("a+nil: %v %+v", err, m)
	}
	if m, err := MergeHist(nil, nil); err != nil || m != nil {
		t.Fatalf("nil+nil: %v %+v", err, m)
	}
}

func TestMergeHistBoundMismatch(t *testing.T) {
	a := histOf([]float64{1, 10}, 1)
	b := histOf([]float64{1, 10, 100}, 1)
	if _, err := MergeHist(a, b); err == nil {
		t.Fatal("merging different bucket counts must error")
	}
	c := histOf([]float64{2, 10}, 1)
	if _, err := MergeHist(a, c); err == nil {
		t.Fatal("merging different bounds must error")
	}
}

func TestMergedQuantileMatchesSingleNode(t *testing.T) {
	// Two nodes observing halves of the same distribution must merge
	// into the distribution's own quantiles.
	var all, left, right []float64
	for i := 1; i <= 100; i++ {
		v := float64(i) / 10
		all = append(all, v)
		if i%2 == 0 {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	whole := histOf(DefBuckets, all...)
	m, err := MergeHist(histOf(DefBuckets, left...), histOf(DefBuckets, right...))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got, want := m.Quantile(q), whole.Quantile(q); math.Abs(got-want) > 1e-9 {
			t.Errorf("merged Quantile(%v) = %v, single-node %v", q, got, want)
		}
	}
}
