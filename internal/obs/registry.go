// Package obs is the repo's telemetry layer: a dependency-free metrics
// registry (atomic counters, gauges, and fixed-bucket histograms with
// labeled families), a nil-safe route tracer, and exposition encoders
// (Prometheus text format and JSON) over point-in-time snapshots.
//
// The paper's claims are quantitative — lookup stretch, probe budgets,
// soft-state message overhead — so every layer of the stack reports here:
// the wire protocol counts requests and observes latencies, the
// soft-state store gauges live entries, the pub/sub bus counts
// notifications fired versus suppressed, and cmd/overlayd serves it all
// over HTTP. Everything is safe for concurrent use; the hot-path cost of
// an update is one or two atomic operations.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric family.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Registry holds metric families keyed by name. The zero value is not
// usable; create with NewRegistry. All methods are safe for concurrent
// use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family is one named metric: a kind, label names, and the series created
// so far (one per distinct label-value combination).
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histogram families only

	mu     sync.RWMutex
	series map[string]*series // keyed by joined label values
}

// series is one (family, label values) time series.
type series struct {
	labelValues []string
	bits        atomic.Uint64 // counter/gauge value as Float64bits
	hist        *histogram    // histogram families only
}

// histogram is a fixed-bucket histogram: counts[i] observes values
// <= bounds[i]; counts[len(bounds)] is the +Inf bucket.
type histogram struct {
	bounds []float64
	counts []atomic.Uint64
	sum    atomic.Uint64 // Float64bits
	count  atomic.Uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-global registry used by components that
// have no natural owner to hang a registry on (the simulator's message
// meter, for one). Prefer explicit registries everywhere else.
var defaultRegistry = NewRegistry()

// Default returns the process-global registry.
func Default() *Registry { return defaultRegistry }

// getOrCreate returns the named family, creating it on first use. A
// second registration must agree on kind and label names; disagreement is
// a programming error and panics.
func (r *Registry) getOrCreate(name, help string, kind Kind, bounds []float64, labels []string) *family {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		if f, ok = r.families[name]; !ok {
			f = &family{
				name:   name,
				help:   help,
				kind:   kind,
				labels: append([]string(nil), labels...),
				bounds: bounds,
				series: make(map[string]*series),
			}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: conflicting registration of %q (%v/%d labels vs %v/%d labels)",
			name, f.kind, len(f.labels), kind, len(labels)))
	}
	return f
}

// Counter registers (or fetches) a counter family. labels name the
// dimensions; call With on the result to resolve one series.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.getOrCreate(name, help, KindCounter, nil, labels)}
}

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.getOrCreate(name, help, KindGauge, nil, labels)}
}

// Histogram registers (or fetches) a histogram family with the given
// bucket upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	sorted := append([]float64(nil), bounds...)
	sort.Float64s(sorted)
	return &HistogramVec{fam: r.getOrCreate(name, help, KindHistogram, sorted, labels)}
}

// DefBuckets are the default histogram bounds, tuned for millisecond
// latencies in a LAN-to-WAN range.
var DefBuckets = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000}

// ExpBuckets returns n exponentially spaced bounds starting at start and
// growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, 0, n)
	for v := start; len(out) < n; v *= factor {
		out = append(out, v)
	}
	return out
}

// seriesKey joins label values into a map key. The separator cannot
// appear in practice; label values here are message types and categories.
func seriesKey(values []string) string { return strings.Join(values, "\x1f") }

// with resolves one series of the family, creating it on first use.
func (f *family) with(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.series[key]; ok {
		return s
	}
	s = &series{labelValues: append([]string(nil), values...)}
	if f.kind == KindHistogram {
		s.hist = &histogram{
			bounds: f.bounds,
			counts: make([]atomic.Uint64, len(f.bounds)+1),
		}
	}
	f.series[key] = s
	return s
}

// CounterVec is a labeled counter family.
type CounterVec struct{ fam *family }

// With resolves the series for the given label values.
func (v *CounterVec) With(values ...string) *Counter { return &Counter{s: v.fam.with(values)} }

// Counter is a monotonically increasing value.
type Counter struct{ s *series }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (negative deltas are ignored: counters are monotone).
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	addFloat(&c.s.bits, delta)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.s.bits.Load()) }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ fam *family }

// With resolves the series for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return &Gauge{s: v.fam.with(values)} }

// Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.s.bits.Store(math.Float64bits(v)) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta float64) { addFloat(&g.s.bits, delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.bits.Load()) }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ fam *family }

// With resolves the series for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{h: v.fam.with(values).hist}
}

// Histogram observes values into fixed buckets.
type Histogram struct{ h *histogram }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	hh := h.h
	// First bucket whose upper bound covers v; the trailing +Inf bucket
	// catches everything else (including NaN, which lands there too).
	i := sort.SearchFloat64s(hh.bounds, v)
	hh.counts[i].Add(1)
	hh.count.Add(1)
	addFloat(&hh.sum, v)
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.h.count.Load() }

// Sum returns the sum of observations so far.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.h.sum.Load()) }

// addFloat adds delta to a Float64bits-encoded atomic via CAS.
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Snapshot is a point-in-time copy of a registry, safe to encode or
// inspect while writers continue.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one family's snapshot.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Kind   string           `json:"kind"`
	Labels []string         `json:"labels,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// SeriesSnapshot is one series' snapshot. Value holds counter/gauge
// values; Hist is set for histogram families.
type SeriesSnapshot struct {
	LabelValues []string      `json:"label_values,omitempty"`
	Value       float64       `json:"value"`
	Hist        *HistSnapshot `json:"hist,omitempty"`
}

// HistSnapshot is a histogram's snapshot. Counts[i] is the number of
// observations <= Bounds[i]; Counts[len(Bounds)] is the +Inf bucket.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Snapshot copies the registry's current state, with families sorted by
// name and series by label values, so encodings are deterministic.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	snap := Snapshot{Families: make([]FamilySnapshot, 0, len(fams))}
	for _, f := range fams {
		fs := FamilySnapshot{
			Name:   f.name,
			Help:   f.help,
			Kind:   f.kind.String(),
			Labels: append([]string(nil), f.labels...),
		}
		f.mu.RLock()
		all := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			all = append(all, s)
		}
		f.mu.RUnlock()
		sort.Slice(all, func(i, j int) bool {
			return seriesKey(all[i].labelValues) < seriesKey(all[j].labelValues)
		})
		for _, s := range all {
			ss := SeriesSnapshot{LabelValues: append([]string(nil), s.labelValues...)}
			if f.kind == KindHistogram {
				h := &HistSnapshot{
					Bounds: append([]float64(nil), s.hist.bounds...),
					Counts: make([]uint64, len(s.hist.counts)),
					Sum:    math.Float64frombits(s.hist.sum.Load()),
					Count:  s.hist.count.Load(),
				}
				for i := range s.hist.counts {
					h.Counts[i] = s.hist.counts[i].Load()
				}
				ss.Hist = h
			} else {
				ss.Value = math.Float64frombits(s.bits.Load())
			}
			fs.Series = append(fs.Series, ss)
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// Family returns the named family's snapshot.
func (s Snapshot) Family(name string) (FamilySnapshot, bool) {
	for _, f := range s.Families {
		if f.Name == name {
			return f, true
		}
	}
	return FamilySnapshot{}, false
}

// Value returns the value of one counter/gauge series (identified by its
// label values, in family label order), and whether it exists.
func (s Snapshot) Value(name string, labelValues ...string) (float64, bool) {
	f, ok := s.Family(name)
	if !ok {
		return 0, false
	}
	want := seriesKey(labelValues)
	for _, se := range f.Series {
		if seriesKey(se.LabelValues) == want {
			return se.Value, true
		}
	}
	return 0, false
}
