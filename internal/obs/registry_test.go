package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests.", "type").With("ping")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	// Re-registration returns the same underlying series.
	again := r.Counter("requests_total", "Requests.", "type").With("ping")
	again.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter after re-registration = %v, want 4", got)
	}
	if v, ok := r.Snapshot().Value("requests_total", "ping"); !ok || v != 4 {
		t.Fatalf("snapshot value = %v/%v, want 4/true", v, ok)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("live", "Live entries.").With()
	g.Set(10)
	g.Add(-3.5)
	if got := g.Value(); got != 6.5 {
		t.Fatalf("gauge = %v, want 6.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rtt_ms", "RTTs.", []float64{1, 10, 100}).With()
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	f, ok := snap.Family("rtt_ms")
	if !ok || f.Series[0].Hist == nil {
		t.Fatal("histogram family missing")
	}
	hist := f.Series[0].Hist
	// 0.5 and 1 land in le=1; 5 in le=10; 50 in le=100; 500 in +Inf.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if hist.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, hist.Counts[i], w, hist.Counts)
		}
	}
	if hist.Count != 5 || hist.Sum != 556.5 {
		t.Fatalf("count/sum = %d/%v, want 5/556.5", hist.Count, hist.Sum)
	}
	if h.Count() != 5 || h.Sum() != 556.5 {
		t.Fatalf("live count/sum = %d/%v", h.Count(), h.Sum())
	}
}

func TestHistogramNaNLandsInInf(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", "", []float64{1}).With()
	h.Observe(math.NaN())
	f, _ := r.Snapshot().Family("x")
	if f.Series[0].Hist.Counts[1] != 1 {
		t.Fatalf("NaN not in +Inf bucket: %v", f.Series[0].Hist.Counts)
	}
}

func TestConflictingRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering as a gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

// TestConcurrentWriters hammers one family of each kind from many
// goroutines while snapshots are taken; totals must balance. Run under
// -race this is also the registry's race test.
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	cv := r.Counter("ops_total", "Ops.", "kind")
	gv := r.Gauge("level", "Level.", "kind")
	hv := r.Histogram("lat_ms", "Latency.", []float64{1, 5, 25}, "kind")

	const workers = 8
	const perWorker = 2000
	kinds := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kind := kinds[w%len(kinds)]
			c := cv.With(kind)
			g := gv.With(kind)
			h := hv.With(kind)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 30))
			}
		}(w)
	}
	// Concurrent readers: snapshots while writes are in flight.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	snap := r.Snapshot()
	var totalOps, totalLevel float64
	var totalObs uint64
	for _, kind := range kinds {
		if v, ok := snap.Value("ops_total", kind); ok {
			totalOps += v
		}
		if v, ok := snap.Value("level", kind); ok {
			totalLevel += v
		}
	}
	f, _ := snap.Family("lat_ms")
	for _, s := range f.Series {
		totalObs += s.Hist.Count
		var inBuckets uint64
		for _, c := range s.Hist.Counts {
			inBuckets += c
		}
		if inBuckets != s.Hist.Count {
			t.Fatalf("bucket counts %v do not sum to count %d", s.Hist.Counts, s.Hist.Count)
		}
	}
	if want := float64(workers * perWorker); totalOps != want || totalLevel != want {
		t.Fatalf("totals = %v/%v, want %v", totalOps, totalLevel, want)
	}
	if totalObs != workers*perWorker {
		t.Fatalf("observations = %d, want %d", totalObs, workers*perWorker)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("ExpBuckets = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestDefaultRegistryIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default() changed identity")
	}
}
