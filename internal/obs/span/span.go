// Package span is the distributed-tracing half of the telemetry layer:
// a trace context that rides wire frames across process boundaries, a
// fixed-size mutex-light span ring buffer with head-based sampling, and
// an HTTP handler exposing the buffer as JSON (/traces on overlayd).
//
// The model is deliberately small. A *trace* is one logical operation —
// a replicated publish, a nearest-peer query — identified by a TraceID
// minted where the operation starts (the head). Every unit of work done
// on its behalf is a *span*: the root operation, each client RPC (with
// its full retry loop folded into one span carrying an attempt count),
// and each server-side handler that served one of those RPCs on a remote
// node. Spans are linked by ParentID, so the union of every node's ring
// buffer yields a causally-ordered tree for each trace, stitched by
// TraceID (cmd/overlaymon does exactly that).
//
// Sampling is head-based: the decision is made once, where the trace
// starts, and carried in the context. Downstream nodes record spans for
// any sampled context they receive and never flip the bit, so a trace is
// either observed everywhere it touched or nowhere. A nil *Collector is
// permanently disabled and absorbs every call for the cost of a nil
// check, which is what the wire benchmarks run with.
package span

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Context is the trace context carried on wire frames: which trace the
// request belongs to, which span is the caller (the parent of whatever
// span the receiver records), and the head sampling decision. The zero
// Context means "unsampled" and is never put on the wire.
type Context struct {
	TraceID uint64 `json:"trace_id"`
	SpanID  uint64 `json:"span_id"`
	Sampled bool   `json:"sampled,omitempty"`
}

// Valid reports whether the context identifies a sampled trace.
func (c Context) Valid() bool { return c.Sampled && c.TraceID != 0 && c.SpanID != 0 }

// Ptr returns a pointer to a copy of c for a valid context and nil
// otherwise — the form a wire frame carries, so unsampled operations add
// zero bytes to their frames.
func (c Context) Ptr() *Context {
	if !c.Valid() {
		return nil
	}
	cc := c
	return &cc
}

// Span outcomes.
const (
	OutcomeOK          = "ok"
	OutcomeError       = "error"
	OutcomeBreakerOpen = "breaker-open"
)

// Outcome maps an error to the span outcome for the common two-state
// case (breaker trips are labeled explicitly by their caller).
func Outcome(err error) string {
	if err != nil {
		return OutcomeError
	}
	return OutcomeOK
}

// Span is one finished unit of work within a trace.
type Span struct {
	TraceID  uint64 `json:"trace_id"`
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_id,omitempty"` // 0 = root
	// Op names the work: "publish", "store", "serve.store", ...
	Op string `json:"op"`
	// Node is the address of the node that recorded the span.
	Node string `json:"node,omitempty"`
	// Peer is the remote address: the callee for client spans, the
	// caller for server spans.
	Peer           string  `json:"peer,omitempty"`
	StartUnixMicro int64   `json:"start_unix_micro"`
	DurMs          float64 `json:"dur_ms"`
	// Outcome is "ok", "error", or "breaker-open".
	Outcome string `json:"outcome"`
	// Attempts counts transport attempts of a client RPC, retries
	// included (0 on spans with no retry loop).
	Attempts int    `json:"attempts,omitempty"`
	Err      string `json:"err,omitempty"`
}

// Root reports whether the span is a trace root.
func (s Span) Root() bool { return s.ParentID == 0 }

// slot is one ring position with its own lock, so concurrent writers
// contend only when they land on the same position, not on a global
// mutex.
type slot struct {
	mu  sync.Mutex
	set bool
	s   Span
}

// ring is the fixed-size span buffer: an atomic cursor claims positions,
// per-slot locks order the copy in/out. Writers never block each other
// except on cursor wrap collisions; readers take each slot lock for the
// duration of one struct copy.
type ring struct {
	head  atomic.Uint64
	slots []slot
}

func (r *ring) push(s Span) {
	i := (r.head.Add(1) - 1) % uint64(len(r.slots))
	sl := &r.slots[i]
	sl.mu.Lock()
	sl.s = s
	sl.set = true
	sl.mu.Unlock()
}

func (r *ring) snapshot() []Span {
	out := make([]Span, 0, len(r.slots))
	for i := range r.slots {
		sl := &r.slots[i]
		sl.mu.Lock()
		if sl.set {
			out = append(out, sl.s)
		}
		sl.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartUnixMicro != out[j].StartUnixMicro {
			return out[i].StartUnixMicro < out[j].StartUnixMicro
		}
		return out[i].SpanID < out[j].SpanID
	})
	return out
}

// slowHook bundles the slow-request log configuration so it swaps
// atomically.
type slowHook struct {
	thresholdMs float64
	fn          func(root Span, chain []Span)
}

// Collector owns one node's span ring buffer and mints its trace and
// span IDs. All methods are safe for concurrent use and safe on a nil
// receiver (permanently disabled).
type Collector struct {
	sampleN uint64 // head sampling: record 1 in N roots; 0 = disabled
	seed    uint64
	ctr     atomic.Uint64 // sampling counter
	idctr   atomic.Uint64 // id-generator counter
	node    atomic.Pointer[string]
	slow    atomic.Pointer[slowHook]
	ring    *ring
}

// NewCollector builds a collector holding up to capacity finished spans
// (minimum 16; 0 picks 4096) and head-sampling one in sampleN root
// operations (1 = everything; 0 or negative disables — prefer a nil
// *Collector for permanently-off paths).
func NewCollector(capacity, sampleN int) *Collector {
	if capacity <= 0 {
		capacity = 4096
	}
	if capacity < 16 {
		capacity = 16
	}
	if sampleN < 0 {
		sampleN = 0
	}
	return &Collector{
		sampleN: uint64(sampleN),
		seed:    uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32,
		ring:    &ring{slots: make([]slot, capacity)},
	}
}

// SetNode labels every span recorded from now on with the node's
// address. The owning node calls it once at construction; a collector
// belongs to exactly one node.
func (c *Collector) SetNode(addr string) {
	if c == nil {
		return
	}
	c.node.Store(&addr)
}

// Node returns the collector's node label.
func (c *Collector) Node() string {
	if c == nil {
		return ""
	}
	if p := c.node.Load(); p != nil {
		return *p
	}
	return ""
}

// SampleOneIn returns the head-sampling rate (0 = disabled).
func (c *Collector) SampleOneIn() int {
	if c == nil {
		return 0
	}
	return int(c.sampleN)
}

// SetSlowLog installs the slow-request hook: every root span finishing
// at or above thresholdMs is handed to fn together with the chain of
// local spans sharing its trace (children finish before their parent on
// the synchronous paths, so the chain is complete at that moment). fn
// runs on the goroutine finishing the span — keep it cheap. thresholdMs
// <= 0 or a nil fn disables the hook.
func (c *Collector) SetSlowLog(thresholdMs float64, fn func(root Span, chain []Span)) {
	if c == nil {
		return
	}
	if thresholdMs <= 0 || fn == nil {
		c.slow.Store(nil)
		return
	}
	c.slow.Store(&slowHook{thresholdMs: thresholdMs, fn: fn})
}

// nextID mints a non-zero process-unique ID (splitmix64 over an atomic
// counter, offset by a per-collector time/pid seed so IDs from distinct
// processes do not collide in practice).
func (c *Collector) nextID() uint64 {
	x := c.seed + c.idctr.Add(1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// StartRoot makes the head sampling decision and begins a new trace.
// It returns nil — which every downstream call absorbs — when the
// operation is not sampled.
func (c *Collector) StartRoot(op string) *Active {
	if c == nil || c.sampleN == 0 {
		return nil
	}
	if c.sampleN > 1 && c.ctr.Add(1)%c.sampleN != 1 {
		return nil
	}
	return c.start(op, c.nextID(), 0)
}

// StartChild begins a span under parent: a client RPC under a local
// root, or a server handler continuing a remote caller's trace. Invalid
// (unsampled) parents return nil, so the sampling decision made at the
// head holds everywhere.
func (c *Collector) StartChild(op string, parent Context) *Active {
	if c == nil || !parent.Valid() {
		return nil
	}
	return c.start(op, parent.TraceID, parent.SpanID)
}

func (c *Collector) start(op string, traceID, parentID uint64) *Active {
	return &Active{c: c, start: time.Now(), s: Span{
		TraceID:  traceID,
		SpanID:   c.nextID(),
		ParentID: parentID,
		Op:       op,
		Node:     c.Node(),
	}}
}

// Snapshot copies the buffered spans, oldest first.
func (c *Collector) Snapshot() []Span {
	if c == nil {
		return nil
	}
	return c.ring.snapshot()
}

// ByTrace returns the buffered spans of one trace, oldest first.
func (c *Collector) ByTrace(traceID uint64) []Span {
	if c == nil {
		return nil
	}
	all := c.ring.snapshot()
	out := all[:0]
	for _, s := range all {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	return out
}

// Active is a span being recorded. All methods are nil-safe, so an
// unsampled operation costs its callers nothing but nil checks.
type Active struct {
	c     *Collector
	start time.Time
	s     Span
}

// Context returns the context to propagate downstream: same trace, this
// span as the parent. The zero Context is returned for a nil span.
func (a *Active) Context() Context {
	if a == nil {
		return Context{}
	}
	return Context{TraceID: a.s.TraceID, SpanID: a.s.SpanID, Sampled: true}
}

// SetPeer labels the span with the remote address.
func (a *Active) SetPeer(peer string) {
	if a != nil {
		a.s.Peer = peer
	}
}

// Finish stamps outcome, attempts, and duration, and commits the span to
// the ring buffer. A slow root span additionally fires the collector's
// slow-request hook with its local chain.
func (a *Active) Finish(outcome string, attempts int, err error) {
	if a == nil {
		return
	}
	a.s.StartUnixMicro = a.start.UnixMicro()
	a.s.DurMs = float64(time.Since(a.start).Microseconds()) / 1000
	a.s.Outcome = outcome
	a.s.Attempts = attempts
	if err != nil {
		a.s.Err = err.Error()
	}
	a.c.ring.push(a.s)
	if a.s.Root() {
		if h := a.c.slow.Load(); h != nil && a.s.DurMs >= h.thresholdMs {
			h.fn(a.s, a.c.ByTrace(a.s.TraceID))
		}
	}
}

// Dump is the /traces JSON payload: the recording node plus its buffered
// spans, oldest first.
type Dump struct {
	Node        string `json:"node"`
	SampleOneIn int    `json:"sample_one_in"`
	Spans       []Span `json:"spans"`
}

// Dump snapshots the collector into its exposition form.
func (c *Collector) Dump() Dump {
	return Dump{Node: c.Node(), SampleOneIn: c.SampleOneIn(), Spans: c.Snapshot()}
}

// ChainString renders a local span chain compactly for log lines:
// one "op(peer outcome dur_ms attempts)" token per span, in order. The
// slow-request log uses it so a single logfmt line carries the whole
// local tree.
func ChainString(chain []Span) string {
	var b strings.Builder
	for i, s := range chain {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s.Op)
		b.WriteByte('(')
		if s.Peer != "" {
			b.WriteString(s.Peer)
			b.WriteByte(' ')
		}
		b.WriteString(s.Outcome)
		fmt.Fprintf(&b, " %.1fms", s.DurMs)
		if s.Attempts > 1 {
			fmt.Fprintf(&b, " x%d", s.Attempts)
		}
		b.WriteByte(')')
	}
	return b.String()
}

// Handler serves the collector as JSON (mounted at /traces by
// cmd/overlayd, scraped by cmd/overlaymon).
func Handler(c *Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(c.Dump())
	})
}
