package span

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestContextValidity(t *testing.T) {
	var zero Context
	if zero.Valid() {
		t.Fatal("zero context must be invalid")
	}
	if zero.Ptr() != nil {
		t.Fatal("invalid context must marshal to nil (absent on the wire)")
	}
	c := Context{TraceID: 1, SpanID: 2, Sampled: true}
	if !c.Valid() {
		t.Fatal("sampled non-zero context must be valid")
	}
	if p := c.Ptr(); p == nil || *p != c {
		t.Fatalf("Ptr() = %v, want copy of %v", p, c)
	}
	c.Sampled = false
	if c.Valid() || c.Ptr() != nil {
		t.Fatal("unsampled context must be invalid: sampling decisions are head-only")
	}
}

func TestNilCollectorAbsorbsEverything(t *testing.T) {
	var c *Collector
	c.SetNode("x")
	c.SetSlowLog(1, func(Span, []Span) { t.Fatal("nil collector fired slow hook") })
	root := c.StartRoot("op")
	if root != nil {
		t.Fatal("nil collector must not sample")
	}
	root.SetPeer("p") // all nil-safe
	if got := root.Context(); got.Valid() {
		t.Fatal("nil active span must yield invalid context")
	}
	root.Finish(OutcomeOK, 1, nil)
	if c.Snapshot() != nil || c.ByTrace(1) != nil {
		t.Fatal("nil collector must snapshot empty")
	}
}

func TestRootChildLinkage(t *testing.T) {
	c := NewCollector(64, 1)
	c.SetNode("n1")
	root := c.StartRoot("publish")
	if root == nil {
		t.Fatal("sampleN=1 must sample every root")
	}
	child := c.StartChild("store", root.Context())
	child.SetPeer("peer:1")
	child.Finish(OutcomeOK, 2, nil)
	root.Finish(OutcomeError, 0, errors.New("boom"))

	spans := c.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("want 2 spans, got %d", len(spans))
	}
	var r, ch Span
	for _, s := range spans {
		if s.Root() {
			r = s
		} else {
			ch = s
		}
	}
	if r.Op != "publish" || r.Outcome != OutcomeError || r.Err != "boom" {
		t.Fatalf("root span wrong: %+v", r)
	}
	if ch.TraceID != r.TraceID {
		t.Fatalf("child trace %x != root trace %x", ch.TraceID, r.TraceID)
	}
	if ch.ParentID != r.SpanID {
		t.Fatalf("child parent %x != root span %x", ch.ParentID, r.SpanID)
	}
	if ch.Node != "n1" || ch.Peer != "peer:1" || ch.Attempts != 2 {
		t.Fatalf("child span wrong: %+v", ch)
	}
	if got := c.ByTrace(r.TraceID); len(got) != 2 {
		t.Fatalf("ByTrace want 2, got %d", len(got))
	}
}

func TestChildOfInvalidParentIsDropped(t *testing.T) {
	c := NewCollector(64, 1)
	if sp := c.StartChild("store", Context{}); sp != nil {
		t.Fatal("child of an unsampled parent must not record")
	}
}

func TestHeadSampling(t *testing.T) {
	c := NewCollector(1024, 4)
	sampled := 0
	for i := 0; i < 400; i++ {
		if sp := c.StartRoot("op"); sp != nil {
			sampled++
			sp.Finish(OutcomeOK, 0, nil)
		}
	}
	if sampled != 100 {
		t.Fatalf("1-in-4 sampling over 400 roots: want 100, got %d", sampled)
	}
	off := NewCollector(64, 0)
	if sp := off.StartRoot("op"); sp != nil {
		t.Fatal("sampleN=0 must disable sampling")
	}
}

func TestRingWraparound(t *testing.T) {
	c := NewCollector(16, 1)
	for i := 0; i < 50; i++ {
		sp := c.StartRoot(fmt.Sprintf("op%d", i))
		sp.Finish(OutcomeOK, 0, nil)
	}
	spans := c.Snapshot()
	if len(spans) != 16 {
		t.Fatalf("ring of 16 after 50 pushes: want 16 spans, got %d", len(spans))
	}
	// Only the newest 16 survive.
	for _, s := range spans {
		var i int
		fmt.Sscanf(s.Op, "op%d", &i)
		if i < 34 {
			t.Fatalf("span %s survived wraparound; oldest should be evicted", s.Op)
		}
	}
}

func TestSlowLogHook(t *testing.T) {
	c := NewCollector(64, 1)
	c.SetNode("n1")
	var mu sync.Mutex
	var gotRoot Span
	var gotChain []Span
	fired := 0
	c.SetSlowLog(0.000001, func(root Span, chain []Span) {
		mu.Lock()
		defer mu.Unlock()
		fired++
		gotRoot, gotChain = root, chain
	})

	root := c.StartRoot("publish")
	child := c.StartChild("store", root.Context())
	child.Finish(OutcomeOK, 1, nil)  // child finishing must NOT fire the hook
	time.Sleep(2 * time.Millisecond) // give the root a nonzero duration
	root.Finish(OutcomeOK, 0, nil)

	mu.Lock()
	defer mu.Unlock()
	if fired != 1 {
		t.Fatalf("slow hook fired %d times, want 1 (roots only)", fired)
	}
	if gotRoot.Op != "publish" || len(gotChain) != 2 {
		t.Fatalf("hook got root=%+v chain=%d spans, want publish with 2-span chain", gotRoot, len(gotChain))
	}
	s := ChainString(gotChain)
	if !strings.Contains(s, "publish(") || !strings.Contains(s, "store(") {
		t.Fatalf("ChainString %q missing ops", s)
	}

	// Threshold above the duration: silent.
	c.SetSlowLog(1e9, func(Span, []Span) { t.Fatal("fast span fired slow hook") })
	fast := c.StartRoot("quick")
	fast.Finish(OutcomeOK, 0, nil)
}

func TestConcurrentPushAndSnapshot(t *testing.T) {
	c := NewCollector(128, 1)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				root := c.StartRoot("op")
				ch := c.StartChild("child", root.Context())
				ch.Finish(OutcomeOK, 1, nil)
				root.Finish(OutcomeOK, 0, nil)
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if got := c.Snapshot(); len(got) > 128 {
						panic(fmt.Sprintf("snapshot larger than ring: %d", len(got)))
					}
				}
			}
		}()
	}
	// Writers finish first, then release the readers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for i := 0; i < 8*500; i++ {
		// Spin the main goroutine on snapshots too while writers run.
		c.Snapshot()
		select {
		case <-done:
			i = 8 * 500
		default:
		}
	}
	close(stop)
	<-done
	if got := c.Snapshot(); len(got) != 128 {
		t.Fatalf("full ring after 8000 pushes: want 128, got %d", len(got))
	}
}

func TestHandlerServesDump(t *testing.T) {
	c := NewCollector(64, 2)
	c.SetNode("n1:7001")
	for i := 0; i < 4; i++ {
		if sp := c.StartRoot("op"); sp != nil {
			sp.Finish(OutcomeOK, 0, nil)
		}
	}
	rec := httptest.NewRecorder()
	Handler(c).ServeHTTP(rec, httptest.NewRequest("GET", "/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("HTTP %d", rec.Code)
	}
	var d Dump
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if d.Node != "n1:7001" || d.SampleOneIn != 2 || len(d.Spans) != 2 {
		t.Fatalf("dump = %+v, want node n1:7001, sample 2, 2 spans", d)
	}
}

func TestIDUniqueness(t *testing.T) {
	c := NewCollector(16, 1)
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		id := c.nextID()
		if id == 0 || seen[id] {
			t.Fatalf("id %x zero or repeated at iteration %d", id, i)
		}
		seen[id] = true
	}
}
