package obs

import (
	"sync/atomic"
	"time"
)

// Hop is one step of a traced overlay operation.
type Hop struct {
	// Node identifies the hop's node (an address for wire nodes, a
	// host/zone label for simulated members).
	Node string `json:"node"`
	// Zone is the node's zone path (empty when not applicable).
	Zone string `json:"zone,omitempty"`
	// RTTMs is this hop's latency contribution in milliseconds.
	RTTMs float64 `json:"rtt_ms"`
}

// Trace is one recorded operation: a lookup's hop-by-hop path or a
// nearest-neighbor query's probe sequence.
type Trace struct {
	// Op names the operation ("route", "nearest", ...).
	Op string `json:"op"`
	// Hops are the steps in order.
	Hops []Hop `json:"hops"`
	// TotalMs is the accumulated latency of all hops.
	TotalMs float64 `json:"total_ms"`
	// Err records a failed operation.
	Err string `json:"err,omitempty"`
	// Start is the wall-clock start (zero for simulated operations).
	Start time.Time `json:"start"`
}

// Hop appends one hop. Nil-safe: recording into a nil trace (tracing
// disabled) is a no-op.
func (t *Trace) Hop(node, zone string, rttMs float64) {
	if t == nil {
		return
	}
	t.Hops = append(t.Hops, Hop{Node: node, Zone: zone, RTTMs: rttMs})
	t.TotalMs += rttMs
}

// Fail records an operation failure. Nil-safe.
func (t *Trace) Fail(err error) {
	if t == nil || err == nil {
		return
	}
	t.Err = err.Error()
}

// sinkHolder wraps the sink function so it can live in an
// atomic.Pointer (function values are not directly atomically storable).
type sinkHolder struct{ fn func(Trace) }

// Tracer hands out traces when a sink is attached and nils when not, so
// an instrumented hot path pays exactly one atomic load while tracing is
// off. All methods are safe on a nil *Tracer, which is permanently
// disabled.
type Tracer struct {
	sink atomic.Pointer[sinkHolder]
}

// NewTracer returns a tracer with no sink (disabled).
func NewTracer() *Tracer { return &Tracer{} }

// SetSink installs the trace consumer; nil detaches it and disables
// tracing. The sink is called synchronously from the traced operation
// and must not block.
func (t *Tracer) SetSink(fn func(Trace)) {
	if t == nil {
		return
	}
	if fn == nil {
		t.sink.Store(nil)
		return
	}
	t.sink.Store(&sinkHolder{fn: fn})
}

// Enabled reports whether a sink is attached.
func (t *Tracer) Enabled() bool { return t != nil && t.sink.Load() != nil }

// Begin returns a new trace for op, or nil when tracing is off — the
// nil trace absorbs Hop/Fail calls for free, so callers need no
// branches beyond the ones they want for skipping expensive labels.
func (t *Tracer) Begin(op string) *Trace {
	if t == nil || t.sink.Load() == nil {
		return nil
	}
	return &Trace{Op: op, Start: time.Now()}
}

// Emit delivers a finished trace to the sink. Nil-safe in both receiver
// and argument; a trace begun while enabled is dropped if the sink was
// detached in between.
func (t *Tracer) Emit(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	if h := t.sink.Load(); h != nil {
		h.fn(*tr)
	}
}
