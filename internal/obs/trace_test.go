package obs

import (
	"errors"
	"sync"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	tr.SetSink(func(Trace) {})
	trace := tr.Begin("route")
	if trace != nil {
		t.Fatal("nil tracer handed out a trace")
	}
	trace.Hop("a", "z", 1) // nil trace: no-op
	trace.Fail(errors.New("x"))
	tr.Emit(trace)
}

func TestTracerDisabledByDefault(t *testing.T) {
	tr := NewTracer()
	if tr.Enabled() {
		t.Fatal("fresh tracer enabled")
	}
	if tr.Begin("route") != nil {
		t.Fatal("disabled tracer handed out a trace")
	}
}

func TestTracerRecordsHops(t *testing.T) {
	tr := NewTracer()
	var got []Trace
	tr.SetSink(func(t Trace) { got = append(got, t) })
	if !tr.Enabled() {
		t.Fatal("tracer with sink not enabled")
	}

	trace := tr.Begin("route")
	trace.Hop("n1", "0", 2.5)
	trace.Hop("n2", "01", 1.5)
	tr.Emit(trace)

	fail := tr.Begin("nearest")
	fail.Fail(errors.New("no candidates"))
	tr.Emit(fail)

	if len(got) != 2 {
		t.Fatalf("emitted %d traces, want 2", len(got))
	}
	r := got[0]
	if r.Op != "route" || len(r.Hops) != 2 || r.TotalMs != 4 {
		t.Fatalf("trace = %+v", r)
	}
	if r.Hops[1].Node != "n2" || r.Hops[1].Zone != "01" || r.Hops[1].RTTMs != 1.5 {
		t.Fatalf("hop = %+v", r.Hops[1])
	}
	if got[1].Err != "no candidates" {
		t.Fatalf("failed trace = %+v", got[1])
	}
}

func TestTracerDetach(t *testing.T) {
	tr := NewTracer()
	fired := 0
	tr.SetSink(func(Trace) { fired++ })
	trace := tr.Begin("route")
	tr.SetSink(nil)
	tr.Emit(trace) // sink detached mid-flight: dropped
	if fired != 0 || tr.Enabled() {
		t.Fatalf("detached tracer delivered (fired=%d)", fired)
	}
}

// TestTracerConcurrent exercises enable/disable racing Begin/Emit; run
// under -race.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var mu sync.Mutex
	count := 0
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			tr.SetSink(func(Trace) { mu.Lock(); count++; mu.Unlock() })
			tr.SetSink(nil)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			trace := tr.Begin("op")
			trace.Hop("n", "", 1)
			tr.Emit(trace)
		}
	}()
	wg.Wait()
}
