// Package pastry implements a compact Pastry overlay (Rowstron &
// Druschel, Middleware 2001): prefix routing over a circular identifier
// space with per-row routing tables and a leaf set.
//
// The paper's mechanisms are "generic for overlay networks such as
// Pastry, Chord, and eCAN, where there exists flexibility in selecting
// routing neighbors" — in Pastry, any node whose ID has the required
// prefix can fill a routing-table slot, and that freedom is where
// proximity-neighbor selection lives. This package exposes the same
// Selector hook as package ecan, so the landmark+soft-state machinery
// drives Pastry tables unchanged (experiment ext-pastry).
//
// Like package chord, construction is simulator-style: the full
// membership is known and Build computes the steady state the join
// protocol converges to.
package pastry

import (
	"errors"
	"fmt"
	"sort"

	"gsso/internal/simrand"
	"gsso/internal/topology"
)

// ID is a position on the 64-bit identifier circle.
type ID uint64

// Node is one Pastry participant.
type Node struct {
	ID   ID
	Host topology.NodeID

	// table[row][digit] points to a node sharing `row` leading digits
	// with this node and having `digit` at position row (nil when no such
	// node exists or the digit is the node's own).
	table [][]*Node
	// leaf is the leaf set: the l/2 nearest smaller and l/2 nearest
	// larger IDs on the circle, in ascending circular order.
	leaf []*Node
}

// String implements fmt.Stringer.
func (n *Node) String() string { return fmt.Sprintf("pastry{id=%016x host=%d}", uint64(n.ID), n.Host) }

// Leaf returns the node's leaf set (shared slice; do not modify).
func (n *Node) Leaf() []*Node { return n.leaf }

// TableEntry returns the routing entry at (row, digit), possibly nil.
func (n *Node) TableEntry(row, digit int) *Node {
	if row < 0 || row >= len(n.table) || digit < 0 || digit >= len(n.table[row]) {
		return nil
	}
	return n.table[row][digit]
}

// Selector chooses the routing-table entry for (row, digit) among every
// member with the required prefix. Pastry's "proximity neighbor
// selection" plugs in here; returning nil from a non-empty candidate list
// is treated as "pick the first".
type Selector interface {
	Select(self *Node, row, digit int, candidates []*Node) *Node
}

// RandomSelector picks uniformly — the topology-oblivious baseline.
type RandomSelector struct {
	RNG *simrand.Source
}

// Select implements Selector.
func (s RandomSelector) Select(self *Node, _, _ int, candidates []*Node) *Node {
	if len(candidates) == 0 {
		return nil
	}
	return candidates[s.RNG.Intn(len(candidates))]
}

// FuncSelector adapts a function to Selector.
type FuncSelector func(self *Node, row, digit int, candidates []*Node) *Node

// Select implements Selector.
func (f FuncSelector) Select(self *Node, row, digit int, candidates []*Node) *Node {
	return f(self, row, digit, candidates)
}

// Overlay is a Pastry ring.
type Overlay struct {
	digitBits int // b: bits per digit
	rows      int // 64 / b
	fanout    int // 2^b
	leafSize  int // l: total leaf-set size
	nodes     []*Node
	built     bool
}

// New returns an empty Pastry overlay with base 2^digitBits and the
// given leaf-set size (rounded up to even, minimum 2).
func New(digitBits, leafSize int) (*Overlay, error) {
	if digitBits < 1 || digitBits > 8 || 64%digitBits != 0 {
		return nil, fmt.Errorf("pastry: digitBits = %d, need a divisor of 64 in [1,8]", digitBits)
	}
	if leafSize < 2 {
		leafSize = 2
	}
	if leafSize%2 == 1 {
		leafSize++
	}
	return &Overlay{
		digitBits: digitBits,
		rows:      64 / digitBits,
		fanout:    1 << uint(digitBits),
		leafSize:  leafSize,
	}, nil
}

// DigitBits returns b, the bits per routing digit.
func (o *Overlay) DigitBits() int { return o.digitBits }

// Len returns the number of nodes.
func (o *Overlay) Len() int { return len(o.nodes) }

// Nodes returns the nodes in ID order (fresh slice).
func (o *Overlay) Nodes() []*Node { return append([]*Node(nil), o.nodes...) }

// Join adds a node. Duplicate IDs are rejected. Build must run before
// routing.
func (o *Overlay) Join(host topology.NodeID, id ID) (*Node, error) {
	i := sort.Search(len(o.nodes), func(k int) bool { return o.nodes[k].ID >= id })
	if i < len(o.nodes) && o.nodes[i].ID == id {
		return nil, fmt.Errorf("pastry: id %016x already taken", uint64(id))
	}
	n := &Node{ID: id, Host: host}
	o.nodes = append(o.nodes, nil)
	copy(o.nodes[i+1:], o.nodes[i:])
	o.nodes[i] = n
	o.built = false
	return n, nil
}

// JoinRandom joins host at a random unoccupied ID.
func (o *Overlay) JoinRandom(host topology.NodeID, rng *simrand.Source) (*Node, error) {
	for attempt := 0; attempt < 64; attempt++ {
		if n, err := o.Join(host, ID(rng.Uint64())); err == nil {
			return n, nil
		}
	}
	return nil, errors.New("pastry: could not find a free id")
}

// digit extracts digit `row` of an ID (most significant digit is row 0).
func (o *Overlay) digit(id ID, row int) int {
	shift := uint(64 - (row+1)*o.digitBits)
	return int(id>>shift) & (o.fanout - 1)
}

// sharedDigits counts the leading digits a and b share.
func (o *Overlay) sharedDigits(a, b ID) int {
	for r := 0; r < o.rows; r++ {
		if o.digit(a, r) != o.digit(b, r) {
			return r
		}
	}
	return o.rows
}

// Build computes leaf sets and routing tables, filling each table slot
// through sel. Building is the expensive O(N * rows * fanout) step; the
// per-slot candidate enumeration is shared across nodes via a prefix
// index.
func (o *Overlay) Build(sel Selector) error {
	if len(o.nodes) == 0 {
		return errors.New("pastry: empty overlay")
	}
	if sel == nil {
		return errors.New("pastry: nil selector")
	}
	n := len(o.nodes)

	// Leaf sets: l/2 neighbors on each side in ID order (or everyone when
	// the ring is small).
	half := o.leafSize / 2
	for i, node := range o.nodes {
		if n-1 <= o.leafSize {
			node.leaf = make([]*Node, 0, n-1)
			for k := 1; k < n; k++ {
				node.leaf = append(node.leaf, o.nodes[(i+k)%n])
			}
			continue
		}
		node.leaf = make([]*Node, 0, o.leafSize)
		for k := half; k >= 1; k-- {
			node.leaf = append(node.leaf, o.nodes[(i-k+n)%n])
		}
		for k := 1; k <= half; k++ {
			node.leaf = append(node.leaf, o.nodes[(i+k)%n])
		}
	}

	// Prefix index: row r buckets nodes by their first r+1 digits. Rows
	// stop once every bucket holds a single node — deeper rows can have
	// no candidates.
	type bucketKey struct {
		row    int
		prefix ID // first row+1 digits, right-aligned
	}
	buckets := make(map[bucketKey][]*Node)
	maxRows := o.rows
	for r := 0; r < o.rows; r++ {
		shift := uint(64 - (r+1)*o.digitBits)
		anySharing := false
		for _, node := range o.nodes {
			key := bucketKey{row: r, prefix: node.ID >> shift}
			buckets[key] = append(buckets[key], node)
			if len(buckets[key]) > 1 {
				anySharing = true
			}
		}
		if !anySharing {
			maxRows = r + 1
			break
		}
	}

	for _, node := range o.nodes {
		node.table = make([][]*Node, maxRows)
		for r := 0; r < maxRows; r++ {
			node.table[r] = make([]*Node, o.fanout)
			own := o.digit(node.ID, r)
			shift := uint(64 - (r+1)*o.digitBits)
			prefixBase := (node.ID >> shift) &^ ID(o.fanout-1)
			for d := 0; d < o.fanout; d++ {
				if d == own {
					continue
				}
				cands := buckets[bucketKey{row: r, prefix: prefixBase | ID(d)}]
				if len(cands) == 0 {
					continue
				}
				pick := sel.Select(node, r, d, cands)
				if pick == nil {
					pick = cands[0]
				}
				node.table[r][d] = pick
			}
		}
	}
	o.built = true
	return nil
}

// circularDist returns the distance between two IDs on the circle.
func circularDist(a, b ID) ID {
	d := a - b
	if alt := b - a; alt < d {
		d = alt
	}
	return d
}

// Route routes from "from" to the node whose ID is numerically closest
// to key (the Pastry owner), returning the hop path including endpoints.
func (o *Overlay) Route(from *Node, key ID) ([]*Node, error) {
	if !o.built {
		return nil, errors.New("pastry: overlay not built")
	}
	if from == nil {
		return nil, errors.New("pastry: route from nil node")
	}
	owner := o.ownerOf(key)
	cur := from
	path := []*Node{from}
	for len(path) <= len(o.nodes)+1 {
		if cur == owner {
			return path, nil
		}
		// The owner within leaf-set reach is the final hop.
		for _, l := range cur.leaf {
			if l == owner {
				path = append(path, owner)
				return path, nil
			}
		}
		r := o.sharedDigits(cur.ID, key)
		var next *Node
		if r < len(cur.table) {
			next = cur.table[r][o.digit(key, r)]
		}
		if next == nil {
			// Rare case: empty table slot; fall back to the leaf-set node
			// that strictly reduces circular distance to the key.
			bestD := circularDist(cur.ID, key)
			for _, l := range cur.leaf {
				if d := circularDist(l.ID, key); d < bestD {
					next, bestD = l, d
				}
			}
			if next == nil {
				return nil, fmt.Errorf("pastry: routing stuck at %v toward %016x", cur, uint64(key))
			}
		}
		cur = next
		path = append(path, cur)
	}
	return nil, errors.New("pastry: routing loop detected")
}

// ownerOf returns the node numerically closest to key.
func (o *Overlay) ownerOf(key ID) *Node {
	i := sort.Search(len(o.nodes), func(k int) bool { return o.nodes[k].ID >= key })
	cands := []int{i - 1, i, 0, len(o.nodes) - 1}
	var best *Node
	var bestD ID
	for _, c := range cands {
		if c < 0 || c >= len(o.nodes) {
			continue
		}
		n := o.nodes[c]
		d := circularDist(n.ID, key)
		if best == nil || d < bestD {
			best, bestD = n, d
		}
	}
	return best
}

// Owner exposes ownerOf for tests and experiments.
func (o *Overlay) Owner(key ID) *Node { return o.ownerOf(key) }
