package pastry

import (
	"math"
	"testing"

	"gsso/internal/simrand"
	"gsso/internal/topology"
)

func buildOverlay(t testing.TB, n int, seed uint64) *Overlay {
	t.Helper()
	o, err := New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(seed)
	for i := 0; i < n; i++ {
		if _, err := o.JoinRandom(topology.NodeID(i), rng); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.Build(RandomSelector{RNG: rng.Split("sel")}); err != nil {
		t.Fatal(err)
	}
	return o
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 8); err == nil {
		t.Fatal("digitBits 0 accepted")
	}
	if _, err := New(3, 8); err == nil {
		t.Fatal("non-divisor digitBits accepted")
	}
	if _, err := New(9, 8); err == nil {
		t.Fatal("digitBits 9 accepted")
	}
	o, err := New(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if o.leafSize != 8 {
		t.Fatalf("leafSize not rounded to even: %d", o.leafSize)
	}
	if o.DigitBits() != 4 {
		t.Fatal("accessor wrong")
	}
	if _, err := New(4, 0); err != nil {
		t.Fatal(err) // clamps to 2, no error
	}
}

func TestJoinDuplicateID(t *testing.T) {
	o, _ := New(4, 8)
	if _, err := o.Join(1, 42); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Join(2, 42); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	if o.Len() != 1 {
		t.Fatalf("Len = %d", o.Len())
	}
}

func TestBuildValidation(t *testing.T) {
	o, _ := New(4, 8)
	if err := o.Build(RandomSelector{RNG: simrand.New(1)}); err == nil {
		t.Fatal("empty overlay built")
	}
	o.Join(1, 42)
	if err := o.Build(nil); err == nil {
		t.Fatal("nil selector accepted")
	}
}

func TestLeafSets(t *testing.T) {
	o := buildOverlay(t, 64, 1)
	nodes := o.Nodes()
	for i, n := range nodes {
		leaf := n.Leaf()
		if len(leaf) != 8 {
			t.Fatalf("leaf size = %d", len(leaf))
		}
		want := map[*Node]bool{}
		for k := 1; k <= 4; k++ {
			want[nodes[(i+k)%len(nodes)]] = true
			want[nodes[(i-k+len(nodes))%len(nodes)]] = true
		}
		for _, l := range leaf {
			if !want[l] {
				t.Fatalf("node %v has unexpected leaf %v", n, l)
			}
		}
	}
}

func TestSmallRingLeafIsEveryone(t *testing.T) {
	o := buildOverlay(t, 5, 2)
	for _, n := range o.Nodes() {
		if len(n.Leaf()) != 4 {
			t.Fatalf("leaf size = %d on 5-node ring", len(n.Leaf()))
		}
	}
}

func TestTableEntriesHaveRequiredPrefix(t *testing.T) {
	o := buildOverlay(t, 128, 3)
	for _, n := range o.Nodes() {
		for r := 0; r < len(n.table); r++ {
			for d := 0; d < o.fanout; d++ {
				e := n.TableEntry(r, d)
				if e == nil {
					continue
				}
				if o.sharedDigits(n.ID, e.ID) < r {
					t.Fatalf("entry at row %d shares fewer digits", r)
				}
				if o.digit(e.ID, r) != d {
					t.Fatalf("entry at (row %d, digit %d) has digit %d", r, d, o.digit(e.ID, r))
				}
			}
		}
	}
	// Out-of-range accessor.
	n := o.Nodes()[0]
	if n.TableEntry(-1, 0) != nil || n.TableEntry(999, 0) != nil || n.TableEntry(0, 999) != nil {
		t.Fatal("out-of-range TableEntry returned something")
	}
}

func TestRouteFindsOwner(t *testing.T) {
	o := buildOverlay(t, 200, 4)
	nodes := o.Nodes()
	rng := simrand.New(5)
	for trial := 0; trial < 300; trial++ {
		from := nodes[rng.Intn(len(nodes))]
		key := ID(rng.Uint64())
		path, err := o.Route(from, key)
		if err != nil {
			t.Fatal(err)
		}
		if path[0] != from {
			t.Fatal("path does not start at source")
		}
		if got, want := path[len(path)-1], o.Owner(key); got != want {
			t.Fatalf("route to %016x ended at %v, want %v", uint64(key), got, want)
		}
	}
}

func TestRouteSelf(t *testing.T) {
	o := buildOverlay(t, 32, 6)
	n := o.Nodes()[0]
	path, err := o.Route(n, n.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 {
		t.Fatalf("self route length %d", len(path))
	}
}

func TestRouteValidation(t *testing.T) {
	o, _ := New(4, 8)
	o.Join(1, 42)
	if _, err := o.Route(nil, 7); err == nil {
		t.Fatal("nil source accepted")
	}
	n := o.Nodes()[0]
	if _, err := o.Route(n, 7); err == nil {
		t.Fatal("unbuilt overlay routed")
	}
}

func TestLogarithmicHops(t *testing.T) {
	o := buildOverlay(t, 512, 7)
	nodes := o.Nodes()
	rng := simrand.New(8)
	total := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		from := nodes[rng.Intn(len(nodes))]
		path, err := o.Route(from, ID(rng.Uint64()))
		if err != nil {
			t.Fatal(err)
		}
		total += len(path) - 1
	}
	avg := float64(total) / trials
	bound := 2 * math.Log2(512) / 4 * 2 // ~2x log16(N) with slack
	t.Logf("avg hops at N=512, b=4: %.2f (log16 N = %.2f)", avg, math.Log2(512)/4)
	if avg > bound+2 {
		t.Fatalf("avg hops %.2f too high", avg)
	}
}

func TestOwner(t *testing.T) {
	o, _ := New(4, 8)
	o.Join(1, 100)
	o.Join(2, 200)
	o.Build(RandomSelector{RNG: simrand.New(1)})
	if o.Owner(120).ID != 100 {
		t.Fatalf("Owner(120) = %v", o.Owner(120))
	}
	if o.Owner(180).ID != 200 {
		t.Fatalf("Owner(180) = %v", o.Owner(180))
	}
	// Wraparound: a key near the top of the circle is closest to 100 only
	// through the wrap if distances say so.
	top := ID(math.MaxUint64 - 40)
	if got := o.Owner(top); got.ID != 100 {
		t.Fatalf("Owner(wrap) = %v", got)
	}
}

func TestSelectorDrivesTableChoice(t *testing.T) {
	// A selector that always picks the candidate with the smallest host
	// must be reflected in every table slot.
	o, err := New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(11)
	for i := 0; i < 64; i++ {
		if _, err := o.JoinRandom(topology.NodeID(i), rng); err != nil {
			t.Fatal(err)
		}
	}
	sel := FuncSelector(func(self *Node, row, digit int, cands []*Node) *Node {
		best := cands[0]
		for _, c := range cands[1:] {
			if c.Host < best.Host {
				best = c
			}
		}
		return best
	})
	if err := o.Build(sel); err != nil {
		t.Fatal(err)
	}
	for _, n := range o.Nodes() {
		for r := range n.table {
			for d, e := range n.table[r] {
				if e == nil {
					continue
				}
				// Recompute the candidate minimum.
				for _, other := range o.Nodes() {
					if o.sharedDigits(n.ID, other.ID) >= r && o.digit(other.ID, r) == d &&
						other.Host < e.Host {
						t.Fatalf("slot (%d,%d) of %v ignored the selector", r, d, n)
					}
				}
			}
		}
	}
}

func TestProximitySelectionBeatsRandomStretch(t *testing.T) {
	// The whole point: plugging a latency-aware selector into Pastry's
	// table construction cuts routing stretch, like it does for eCAN.
	spec := topology.Spec{
		TransitDomains:        3,
		TransitNodesPerDomain: 4,
		StubsPerTransitNode:   3,
		NodesPerStub:          12,
		ExtraTransitEdgeProb:  0.3,
		ExtraStubEdgeProb:     0.2,
		ExtraInterDomainLinks: 2,
		Latency:               topology.GTITMLatency(),
	}
	net := topology.MustGenerate(spec, simrand.New(1))
	hosts := net.RandomStubHosts(simrand.New(2), 128)

	build := func(sel Selector) *Overlay {
		o, err := New(4, 8)
		if err != nil {
			t.Fatal(err)
		}
		rng := simrand.New(3)
		for _, h := range hosts {
			if _, err := o.JoinRandom(h, rng); err != nil {
				t.Fatal(err)
			}
		}
		if err := o.Build(sel); err != nil {
			t.Fatal(err)
		}
		return o
	}
	stretchOf := func(o *Overlay) float64 {
		nodes := o.Nodes()
		rng := simrand.New(4)
		total, count := 0.0, 0
		for i := 0; i < 300; i++ {
			src := nodes[rng.Intn(len(nodes))]
			dst := nodes[rng.Intn(len(nodes))]
			if src == dst || src.Host == dst.Host {
				continue
			}
			path, err := o.Route(src, dst.ID)
			if err != nil {
				t.Fatal(err)
			}
			lat := 0.0
			for h := 1; h < len(path); h++ {
				lat += net.Latency(path[h-1].Host, path[h].Host)
			}
			direct := net.Latency(src.Host, dst.Host)
			if direct <= 0 {
				continue
			}
			total += lat / direct
			count++
		}
		return total / float64(count)
	}

	random := stretchOf(build(RandomSelector{RNG: simrand.New(5)}))
	closest := stretchOf(build(FuncSelector(func(self *Node, _, _ int, cands []*Node) *Node {
		best := cands[0]
		bestD := net.Latency(self.Host, best.Host)
		for _, c := range cands[1:] {
			if d := net.Latency(self.Host, c.Host); d < bestD {
				best, bestD = c, d
			}
		}
		return best
	})))
	t.Logf("pastry stretch: random %.3f, proximity %.3f", random, closest)
	if closest >= random {
		t.Fatalf("proximity selection (%.3f) not better than random (%.3f)", closest, random)
	}
}

func BenchmarkPastryRoute(b *testing.B) {
	o := buildOverlay(b, 512, 1)
	nodes := o.Nodes()
	rng := simrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Route(nodes[i%len(nodes)], ID(rng.Uint64())); err != nil {
			b.Fatal(err)
		}
	}
}
