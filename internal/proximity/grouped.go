package proximity

import (
	"errors"
	"fmt"
	"sort"

	"gsso/internal/landmark"
	"gsso/internal/netsim"
	"gsso/internal/topology"
)

// GroupedIndex implements the first optimization of §5.4: "divide a large
// number of landmarks into groups, and each node computes a set of
// landmark positions. All these positions are then joined together to
// reduce false clustering."
//
// Each group of landmarks defines its own space-filling-curve reduction;
// a node therefore has one landmark number per group. Pre-selection
// gathers a curve window in every group and unions them before the
// full-vector ranking, so a false collision in one group's curve is
// rescued by the other groups.
type GroupedIndex struct {
	set     landmark.Set
	spaces  []*landmark.Space // one per group
	offsets []int             // start of each group's dims in the full vector
	hosts   []topology.NodeID
	vectors []landmark.Vector
	numbers [][]uint64 // [group][hostIdx]
	byNum   [][]int    // [group] host indices sorted by that group's number
	pos     map[topology.NodeID]int
}

// BuildGroupedIndex measures every host's full landmark vector (metered,
// one probe per landmark as usual) and builds per-group curve orders.
// groups must divide into at least 2 landmarks each.
func BuildGroupedIndex(env *netsim.Env, set landmark.Set, groups, bitsPerDim int,
	maxRTT float64, hosts []topology.NodeID) (*GroupedIndex, error) {
	if env == nil {
		return nil, errors.New("proximity: nil env")
	}
	if len(hosts) == 0 {
		return nil, errors.New("proximity: no hosts")
	}
	if groups < 1 || set.Len()/groups < 2 {
		return nil, fmt.Errorf("proximity: %d groups over %d landmarks leaves <2 landmarks per group",
			groups, set.Len())
	}
	g := &GroupedIndex{
		set:     set,
		hosts:   append([]topology.NodeID(nil), hosts...),
		vectors: make([]landmark.Vector, len(hosts)),
		pos:     make(map[topology.NodeID]int, len(hosts)),
	}
	landmarkNodes := set.Nodes()
	per := set.Len() / groups
	for grp := 0; grp < groups; grp++ {
		start := grp * per
		end := start + per
		if grp == groups-1 {
			end = set.Len()
		}
		subSet := landmark.NewSet(landmarkNodes[start:end])
		dims := end - start
		if dims > 3 {
			dims = 3 // the appendix's landmark vector index size
		}
		space, err := landmark.NewSpace(subSet, dims, bitsPerDim, maxRTT)
		if err != nil {
			return nil, err
		}
		g.spaces = append(g.spaces, space)
		g.offsets = append(g.offsets, start)
	}

	g.numbers = make([][]uint64, len(g.spaces))
	g.byNum = make([][]int, len(g.spaces))
	for grp := range g.spaces {
		g.numbers[grp] = make([]uint64, len(hosts))
		g.byNum[grp] = make([]int, len(hosts))
	}
	for i, h := range g.hosts {
		vec := landmark.Measure(env, h, set)
		g.vectors[i] = vec
		g.pos[h] = i
		for grp, space := range g.spaces {
			sub := g.subVector(vec, grp)
			num, err := space.Number(sub)
			if err != nil {
				return nil, fmt.Errorf("proximity: host %d group %d: %w", h, grp, err)
			}
			g.numbers[grp][i] = num
		}
	}
	for grp := range g.spaces {
		grp := grp
		for i := range g.byNum[grp] {
			g.byNum[grp][i] = i
		}
		sort.Slice(g.byNum[grp], func(a, b int) bool {
			ia, ib := g.byNum[grp][a], g.byNum[grp][b]
			if g.numbers[grp][ia] != g.numbers[grp][ib] {
				return g.numbers[grp][ia] < g.numbers[grp][ib]
			}
			return g.hosts[ia] < g.hosts[ib]
		})
	}
	return g, nil
}

// subVector slices the full vector down to one group's landmarks.
func (g *GroupedIndex) subVector(vec landmark.Vector, grp int) landmark.Vector {
	start := g.offsets[grp]
	end := start + g.spaces[grp].Set().Len()
	return vec[start:end]
}

// Groups returns the number of landmark groups.
func (g *GroupedIndex) Groups() int { return len(g.spaces) }

// Len returns the number of indexed hosts.
func (g *GroupedIndex) Len() int { return len(g.hosts) }

// Candidates unions a per-group curve window around the query and ranks
// the union by full-vector distance, returning up to k hosts.
func (g *GroupedIndex) Candidates(query topology.NodeID, k int) []topology.NodeID {
	qi, ok := g.pos[query]
	if !ok || k < 1 {
		return nil
	}
	qvec := g.vectors[qi]
	perGroup := 3 * k / len(g.spaces)
	if perGroup < k {
		perGroup = k
	}
	seen := map[int]struct{}{}
	var union []int
	for grp := range g.spaces {
		qnum := g.numbers[grp][qi]
		order := g.byNum[grp]
		at := sort.Search(len(order), func(i int) bool { return g.numbers[grp][order[i]] >= qnum })
		lo, hi := at-1, at
		taken := 0
		for taken < perGroup && (lo >= 0 || hi < len(order)) {
			pickLo := false
			switch {
			case lo < 0:
			case hi >= len(order):
				pickLo = true
			default:
				pickLo = qnum-g.numbers[grp][order[lo]] <= g.numbers[grp][order[hi]]-qnum
			}
			var idx int
			if pickLo {
				idx = order[lo]
				lo--
			} else {
				idx = order[hi]
				hi++
			}
			if idx == qi {
				continue
			}
			taken++
			if _, dup := seen[idx]; dup {
				continue
			}
			seen[idx] = struct{}{}
			union = append(union, idx)
		}
	}
	sort.Slice(union, func(a, b int) bool {
		da := landmark.Distance(g.vectors[union[a]], qvec)
		db := landmark.Distance(g.vectors[union[b]], qvec)
		if da != db {
			return da < db
		}
		return g.hosts[union[a]] < g.hosts[union[b]]
	})
	if len(union) > k {
		union = union[:k]
	}
	out := make([]topology.NodeID, len(union))
	for i, idx := range union {
		out[i] = g.hosts[idx]
	}
	return out
}

// SearchHybrid runs the grouped hybrid: grouped pre-selection, then up to
// budget RTT probes.
func (g *GroupedIndex) SearchHybrid(env *netsim.Env, query topology.NodeID, budget int) Result {
	res := Result{Found: topology.None}
	for _, c := range g.Candidates(query, budget) {
		rtt := env.ProbeRTT(query, c)
		res.Probes++
		if res.Found == topology.None || rtt < res.FoundRTT {
			res.Found, res.FoundRTT = c, rtt
		}
	}
	return res
}
