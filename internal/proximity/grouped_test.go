package proximity

import (
	"math"
	"testing"

	"gsso/internal/landmark"
	"gsso/internal/simrand"
	"gsso/internal/topology"
)

func groupedSetup(t *testing.T, hostCount, landmarks int) (*harness, landmark.Set, float64) {
	t.Helper()
	h := newHarness(t, hostCount)
	set, err := landmark.Choose(h.net, landmarks, simrand.New(99))
	if err != nil {
		t.Fatal(err)
	}
	maxRTT := landmark.EstimateMaxRTT(h.net, set, h.net.RandomStubHosts(simrand.New(98), 20))
	return h, set, maxRTT
}

func TestBuildGroupedIndexValidation(t *testing.T) {
	h, set, maxRTT := groupedSetup(t, 20, 8)
	if _, err := BuildGroupedIndex(nil, set, 2, 5, maxRTT, h.hosts); err == nil {
		t.Fatal("nil env accepted")
	}
	if _, err := BuildGroupedIndex(h.env, set, 2, 5, maxRTT, nil); err == nil {
		t.Fatal("empty hosts accepted")
	}
	if _, err := BuildGroupedIndex(h.env, set, 0, 5, maxRTT, h.hosts); err == nil {
		t.Fatal("zero groups accepted")
	}
	if _, err := BuildGroupedIndex(h.env, set, 8, 5, maxRTT, h.hosts); err == nil {
		t.Fatal("degenerate groups (1 landmark each) accepted")
	}
}

func TestGroupedIndexBasics(t *testing.T) {
	h, set, maxRTT := groupedSetup(t, 60, 8)
	gi, err := BuildGroupedIndex(h.env, set, 2, 5, maxRTT, h.hosts)
	if err != nil {
		t.Fatal(err)
	}
	if gi.Groups() != 2 || gi.Len() != 60 {
		t.Fatalf("groups=%d len=%d", gi.Groups(), gi.Len())
	}
	q := h.hosts[0]
	cands := gi.Candidates(q, 8)
	if len(cands) == 0 || len(cands) > 8 {
		t.Fatalf("candidates = %d", len(cands))
	}
	seen := map[topology.NodeID]bool{}
	for _, c := range cands {
		if c == q {
			t.Fatal("query in candidates")
		}
		if seen[c] {
			t.Fatal("duplicate candidate")
		}
		seen[c] = true
	}
	if got := gi.Candidates(topology.NodeID(1), 8); got != nil {
		t.Fatal("candidates for unindexed host")
	}
	if got := gi.Candidates(q, 0); got != nil {
		t.Fatal("candidates for k=0")
	}
}

func TestGroupedSearchHybrid(t *testing.T) {
	h, set, maxRTT := groupedSetup(t, 150, 8)
	gi, err := BuildGroupedIndex(h.env, set, 2, 5, maxRTT, h.hosts)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(5)
	var stretchSum float64
	n := 0
	for i := 0; i < 30; i++ {
		q := h.hosts[rng.Intn(len(h.hosts))]
		res := gi.SearchHybrid(h.env, q, 8)
		if res.Found == topology.None {
			t.Fatal("found nothing")
		}
		if res.Probes > 8 {
			t.Fatalf("budget exceeded: %d", res.Probes)
		}
		s := Stretch(h.net, q, res.Found, h.hosts)
		if math.IsInf(s, 1) {
			continue
		}
		stretchSum += s
		n++
	}
	mean := stretchSum / float64(n)
	t.Logf("grouped hybrid mean stretch: %.3f", mean)
	if mean > 3 {
		t.Fatalf("grouped hybrid stretch %.3f too high", mean)
	}
}

func TestGroupedAtLeastAsGoodAsSingle(t *testing.T) {
	// Grouping exists to reduce false clustering; on average over many
	// queries it should not be substantially worse than a single curve
	// over the same landmarks.
	h, set, maxRTT := groupedSetup(t, 250, 12)
	single, err := BuildGroupedIndex(h.env, set, 1, 5, maxRTT, h.hosts)
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := BuildGroupedIndex(h.env, set, 3, 5, maxRTT, h.hosts)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(7)
	var sumSingle, sumGrouped float64
	n := 0
	for i := 0; i < 40; i++ {
		q := h.hosts[rng.Intn(len(h.hosts))]
		rs := single.SearchHybrid(h.env, q, 6)
		rg := grouped.SearchHybrid(h.env, q, 6)
		ss := Stretch(h.net, q, rs.Found, h.hosts)
		sg := Stretch(h.net, q, rg.Found, h.hosts)
		if math.IsInf(ss, 1) || math.IsInf(sg, 1) {
			continue
		}
		sumSingle += ss
		sumGrouped += sg
		n++
	}
	t.Logf("mean stretch: single %.3f, grouped %.3f", sumSingle/float64(n), sumGrouped/float64(n))
	if sumGrouped > sumSingle*1.25 {
		t.Fatalf("grouping made things much worse: %.1f vs %.1f", sumGrouped, sumSingle)
	}
}

func TestGroupedUnevenGroupSizes(t *testing.T) {
	// 7 landmarks in 2 groups: 3 + 4; the last group absorbs the tail.
	h, set, maxRTT := groupedSetup(t, 40, 7)
	gi, err := BuildGroupedIndex(h.env, set, 2, 5, maxRTT, h.hosts)
	if err != nil {
		t.Fatal(err)
	}
	if gi.Groups() != 2 {
		t.Fatalf("groups = %d", gi.Groups())
	}
	if got := gi.Candidates(h.hosts[0], 5); len(got) == 0 {
		t.Fatal("no candidates with uneven groups")
	}
}
