package proximity

import (
	"errors"
	"sort"

	"gsso/internal/landmark"
	"gsso/internal/netsim"
	"gsso/internal/topology"
)

// HierarchicalIndex implements the second optimization of §5.4: "use
// hierarchical landmark spaces. A small number of widely scattered
// landmarks are used to do a preselection, and localized landmarks are
// then used to refine the result."
//
// The global space (few landmarks, one curve) supplies the coarse
// candidate pool exactly as the flat hybrid does; the refinement then
// re-ranks the pool by distance in a second, denser space of localized
// landmarks, whose extra resolution separates hosts the global space
// lumps together (the tsk-small failure mode).
type HierarchicalIndex struct {
	global    *Index
	localSet  landmark.Set
	localVecs map[topology.NodeID]landmark.Vector
}

// BuildHierarchicalIndex measures every host against both landmark sets
// (metered: this is the scheme's higher join cost) and builds the index.
func BuildHierarchicalIndex(env *netsim.Env, globalSpace *landmark.Space,
	localSet landmark.Set, hosts []topology.NodeID) (*HierarchicalIndex, error) {
	if localSet.Len() == 0 {
		return nil, errors.New("proximity: empty local landmark set")
	}
	global, err := BuildIndex(env, globalSpace, hosts)
	if err != nil {
		return nil, err
	}
	hx := &HierarchicalIndex{
		global:    global,
		localSet:  localSet,
		localVecs: make(map[topology.NodeID]landmark.Vector, len(hosts)),
	}
	for _, h := range hosts {
		hx.localVecs[h] = landmark.Measure(env, h, localSet)
	}
	return hx, nil
}

// JoinProbesPerHost returns the number of RTT measurements each host paid
// at index-build time (global + local landmark sets).
func (hx *HierarchicalIndex) JoinProbesPerHost() int {
	return hx.global.space.Set().Len() + hx.localSet.Len()
}

// GlobalOnly exposes the coarse global index (for ablations comparing the
// hierarchy against its own first stage).
func (hx *HierarchicalIndex) GlobalOnly() *Index { return hx.global }

// Candidates pre-selects a pool through the global curve, then re-ranks
// it by local-landmark distance and returns the top k.
func (hx *HierarchicalIndex) Candidates(query topology.NodeID, k int) []topology.NodeID {
	qLocal, ok := hx.localVecs[query]
	if !ok || k < 1 {
		return nil
	}
	pool := hx.global.Candidates(query, 8*k)
	sort.Slice(pool, func(a, b int) bool {
		da := landmark.Distance(hx.localVecs[pool[a]], qLocal)
		db := landmark.Distance(hx.localVecs[pool[b]], qLocal)
		if da != db {
			return da < db
		}
		return pool[a] < pool[b]
	})
	if len(pool) > k {
		pool = pool[:k]
	}
	return pool
}

// SearchHybrid runs the hierarchical hybrid: coarse global pre-selection,
// local refinement, then up to budget RTT probes.
func (hx *HierarchicalIndex) SearchHybrid(env *netsim.Env, query topology.NodeID, budget int) Result {
	res := Result{Found: topology.None}
	for _, c := range hx.Candidates(query, budget) {
		rtt := env.ProbeRTT(query, c)
		res.Probes++
		if res.Found == topology.None || rtt < res.FoundRTT {
			res.Found, res.FoundRTT = c, rtt
		}
	}
	return res
}
