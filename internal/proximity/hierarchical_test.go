package proximity

import (
	"math"
	"testing"

	"gsso/internal/landmark"
	"gsso/internal/simrand"
	"gsso/internal/topology"
)

func hierSetup(t *testing.T, hostCount int) (*harness, *landmark.Space, landmark.Set) {
	t.Helper()
	h := newHarness(t, hostCount)
	rng := simrand.New(41)
	globalSet, err := landmark.Choose(h.net, 5, rng.Split("global"))
	if err != nil {
		t.Fatal(err)
	}
	maxRTT := landmark.EstimateMaxRTT(h.net, globalSet, h.net.RandomStubHosts(rng.Split("est"), 20))
	globalSpace, err := landmark.NewSpace(globalSet, 3, 6, maxRTT)
	if err != nil {
		t.Fatal(err)
	}
	localSet, err := landmark.ChoosePerDomain(h.net, 2, rng.Split("local"))
	if err != nil {
		t.Fatal(err)
	}
	return h, globalSpace, localSet
}

func TestChoosePerDomain(t *testing.T) {
	h := newHarness(t, 10)
	set, err := landmark.ChoosePerDomain(h.net, 2, simrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2*h.net.Spec().TransitDomains {
		t.Fatalf("set size %d, want %d", set.Len(), 2*h.net.Spec().TransitDomains)
	}
	perDomain := map[int]int{}
	seen := map[topology.NodeID]bool{}
	for _, lm := range set.Nodes() {
		if seen[lm] {
			t.Fatal("duplicate landmark")
		}
		seen[lm] = true
		perDomain[h.net.Node(lm).Domain]++
	}
	for d, c := range perDomain {
		if c != 2 {
			t.Fatalf("domain %d has %d landmarks", d, c)
		}
	}
	if _, err := landmark.ChoosePerDomain(h.net, 0, simrand.New(1)); err == nil {
		t.Fatal("perDomain=0 accepted")
	}
	if _, err := landmark.ChoosePerDomain(h.net, 10_000, simrand.New(1)); err == nil {
		t.Fatal("oversized perDomain accepted")
	}
}

func TestBuildHierarchicalIndexValidation(t *testing.T) {
	h, globalSpace, _ := hierSetup(t, 30)
	if _, err := BuildHierarchicalIndex(h.env, globalSpace, landmark.Set{}, h.hosts); err == nil {
		t.Fatal("empty local set accepted")
	}
}

func TestHierarchicalBasics(t *testing.T) {
	h, globalSpace, localSet := hierSetup(t, 80)
	hx, err := BuildHierarchicalIndex(h.env, globalSpace, localSet, h.hosts)
	if err != nil {
		t.Fatal(err)
	}
	if want := globalSpace.Set().Len() + localSet.Len(); hx.JoinProbesPerHost() != want {
		t.Fatalf("JoinProbesPerHost = %d, want %d", hx.JoinProbesPerHost(), want)
	}
	q := h.hosts[0]
	cands := hx.Candidates(q, 8)
	if len(cands) == 0 || len(cands) > 8 {
		t.Fatalf("candidates = %d", len(cands))
	}
	for _, c := range cands {
		if c == q {
			t.Fatal("query among candidates")
		}
	}
	if got := hx.Candidates(topology.NodeID(1), 8); got != nil {
		t.Fatal("candidates for unindexed host")
	}
	res := hx.SearchHybrid(h.env, q, 6)
	if res.Found == topology.None || res.Probes > 6 {
		t.Fatalf("bad search result: %+v", res)
	}
}

func TestHierarchicalRefinementHelps(t *testing.T) {
	// With a deliberately weak global space, the local refinement should
	// find closer neighbors on average than the global space alone.
	h, globalSpace, localSet := hierSetup(t, 250)
	hx, err := BuildHierarchicalIndex(h.env, globalSpace, localSet, h.hosts)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(17)
	const budget = 5
	var flatSum, hierSum float64
	n := 0
	for i := 0; i < 40; i++ {
		q := h.hosts[rng.Intn(len(h.hosts))]
		flat := hx.global.SearchHybrid(h.env, q, budget)
		hier := hx.SearchHybrid(h.env, q, budget)
		fs := Stretch(h.net, q, flat.Found, h.hosts)
		hs := Stretch(h.net, q, hier.Found, h.hosts)
		if math.IsInf(fs, 1) || math.IsInf(hs, 1) {
			continue
		}
		flatSum += fs
		hierSum += hs
		n++
	}
	t.Logf("mean stretch at budget %d: global-only %.3f, hierarchical %.3f",
		budget, flatSum/float64(n), hierSum/float64(n))
	if hierSum > flatSum*1.1 {
		t.Fatalf("hierarchical refinement hurt: %.1f vs %.1f", hierSum, flatSum)
	}
}
