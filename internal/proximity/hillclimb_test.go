package proximity

import (
	"testing"

	"gsso/internal/topology"
)

func TestHillClimbBasics(t *testing.T) {
	h := newHarness(t, 150)
	e := buildERS(t, h)
	q := h.hosts[5]
	h.env.ResetProbes()
	res := e.SearchHillClimb(h.env, q, 30)
	if res.Found == topology.None {
		t.Fatal("hill climb found nothing")
	}
	if res.Found == q {
		t.Fatal("hill climb returned the query")
	}
	if res.Probes > 30 {
		t.Fatalf("budget exceeded: %d", res.Probes)
	}
	if int64(res.Probes) != h.env.Probes() {
		t.Fatal("probe accounting mismatch")
	}
}

func TestHillClimbUnknownQueryOrZeroBudget(t *testing.T) {
	h := newHarness(t, 40)
	e := buildERS(t, h)
	if res := e.SearchHillClimb(h.env, topology.NodeID(0), 10); res.Found != topology.None {
		t.Fatal("unknown host search returned something")
	}
	if res := e.SearchHillClimb(h.env, h.hosts[0], 0); res.Probes != 0 {
		t.Fatal("zero budget spent probes")
	}
}

func TestHillClimbStopsAtLocalMinimum(t *testing.T) {
	// With a huge budget, hill climbing still terminates well before
	// probing everyone (the local-minimum pitfall the paper describes),
	// unlike exhaustive ERS.
	h := newHarness(t, 200)
	e := buildERS(t, h)
	stops := 0
	for _, q := range h.hosts[:20] {
		res := e.SearchHillClimb(h.env, q, 10_000)
		if res.Probes < len(h.hosts)/2 {
			stops++
		}
	}
	if stops < 15 {
		t.Fatalf("hill climbing rarely stopped early: %d/20", stops)
	}
}

func TestHillClimbCheaperButWorseThanExhaustive(t *testing.T) {
	h := newHarness(t, 200)
	e := buildERS(t, h)
	var hillStretch, hillProbes float64
	exactMisses := 0
	const trials = 25
	for i := 0; i < trials; i++ {
		q := h.hosts[i*7%len(h.hosts)]
		res := e.SearchHillClimb(h.env, q, 10_000)
		s := Stretch(h.net, q, res.Found, h.hosts)
		hillStretch += s
		hillProbes += float64(res.Probes)
		if s > 1 {
			exactMisses++
		}
	}
	t.Logf("hill climb: mean stretch %.2f, mean probes %.1f, misses %d/%d",
		hillStretch/trials, hillProbes/trials, exactMisses, trials)
	if exactMisses == 0 {
		t.Fatal("hill climbing never missed — local minimum pitfall not reproduced")
	}
}
