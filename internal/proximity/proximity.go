// Package proximity implements and compares the paper's three ways of
// generating proximity information (§4): expanding-ring search over an
// overlay, landmark clustering alone, and the paper's hybrid — landmark
// clustering as a pre-selection filter followed by a few direct RTT
// measurements.
//
// The evaluation currency is the stretch of the "nearest" neighbor each
// algorithm finds (found distance / true nearest distance) as a function
// of the RTT measurements it spent, reproducing Figures 3-6.
package proximity

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"gsso/internal/can"
	"gsso/internal/landmark"
	"gsso/internal/netsim"
	"gsso/internal/topology"
)

// Index is a landmark-position index over a set of hosts: each host's
// landmark vector and scalar landmark number, with the hosts ordered by
// number for curve-window preselection. It corresponds to the information
// the global soft-state makes available; package softstate stores the same
// records on the overlay itself.
type Index struct {
	space   *landmark.Space
	hosts   []topology.NodeID
	vectors []landmark.Vector
	numbers []uint64
	byNum   []int // host indices sorted by landmark number
	pos     map[topology.NodeID]int
}

// BuildIndex measures every host's landmark vector through env (metered:
// this is the k-probes-per-node join cost every scheme pays) and builds
// the index.
func BuildIndex(env *netsim.Env, space *landmark.Space, hosts []topology.NodeID) (*Index, error) {
	if env == nil || space == nil {
		return nil, errors.New("proximity: nil env or space")
	}
	if len(hosts) == 0 {
		return nil, errors.New("proximity: no hosts")
	}
	ix := &Index{
		space:   space,
		hosts:   append([]topology.NodeID(nil), hosts...),
		vectors: make([]landmark.Vector, len(hosts)),
		numbers: make([]uint64, len(hosts)),
		byNum:   make([]int, len(hosts)),
		pos:     make(map[topology.NodeID]int, len(hosts)),
	}
	for i, h := range ix.hosts {
		vec := landmark.Measure(env, h, space.Set())
		num, err := space.Number(vec)
		if err != nil {
			return nil, fmt.Errorf("proximity: host %d: %w", h, err)
		}
		ix.vectors[i] = vec
		ix.numbers[i] = num
		ix.byNum[i] = i
		ix.pos[h] = i
	}
	sort.Slice(ix.byNum, func(a, b int) bool {
		ia, ib := ix.byNum[a], ix.byNum[b]
		if ix.numbers[ia] != ix.numbers[ib] {
			return ix.numbers[ia] < ix.numbers[ib]
		}
		return ix.hosts[ia] < ix.hosts[ib]
	})
	return ix, nil
}

// Len returns the number of indexed hosts.
func (ix *Index) Len() int { return len(ix.hosts) }

// Hosts returns the indexed hosts (fresh slice).
func (ix *Index) Hosts() []topology.NodeID {
	return append([]topology.NodeID(nil), ix.hosts...)
}

// VectorOf returns the landmark vector of an indexed host (nil if absent).
func (ix *Index) VectorOf(h topology.NodeID) landmark.Vector {
	if i, ok := ix.pos[h]; ok {
		return ix.vectors[i]
	}
	return nil
}

// Candidates returns up to k indexed hosts (excluding query) ranked for
// physical closeness to query: a window around query's landmark number on
// the curve, re-sorted by full-vector distance. This is the paper's
// pre-selection step.
func (ix *Index) Candidates(query topology.NodeID, k int) []topology.NodeID {
	qi, ok := ix.pos[query]
	if !ok || k < 1 {
		return nil
	}
	qnum := ix.numbers[qi]
	qvec := ix.vectors[qi]
	// Window on the number order: 3k entries around the query's position.
	at := sort.Search(len(ix.byNum), func(i int) bool { return ix.numbers[ix.byNum[i]] >= qnum })
	want := 3 * k
	lo, hi := at-1, at
	window := make([]int, 0, want)
	for len(window) < want && (lo >= 0 || hi < len(ix.byNum)) {
		pickLo := false
		switch {
		case lo < 0:
		case hi >= len(ix.byNum):
			pickLo = true
		default:
			pickLo = qnum-ix.numbers[ix.byNum[lo]] <= ix.numbers[ix.byNum[hi]]-qnum
		}
		if pickLo {
			if idx := ix.byNum[lo]; idx != qi {
				window = append(window, idx)
			}
			lo--
		} else {
			if idx := ix.byNum[hi]; idx != qi {
				window = append(window, idx)
			}
			hi++
		}
	}
	sort.Slice(window, func(a, b int) bool {
		da := landmark.Distance(ix.vectors[window[a]], qvec)
		db := landmark.Distance(ix.vectors[window[b]], qvec)
		if da != db {
			return da < db
		}
		return ix.hosts[window[a]] < ix.hosts[window[b]]
	})
	if len(window) > k {
		window = window[:k]
	}
	out := make([]topology.NodeID, len(window))
	for i, idx := range window {
		out[i] = ix.hosts[idx]
	}
	return out
}

// Result reports one nearest-neighbor search.
type Result struct {
	// Found is the host the algorithm chose (None if it found nothing).
	Found topology.NodeID
	// FoundRTT is the measured RTT to Found.
	FoundRTT float64
	// Probes is the number of RTT measurements spent.
	Probes int
}

// SearchHybrid runs the paper's hybrid scheme for query: pre-select up to
// budget candidates by landmark position, RTT-probe each, return the
// closest measured. budget is the "# RTT measurements" axis of Figures
// 3 and 5; budget 1 degenerates to landmark clustering alone.
func (ix *Index) SearchHybrid(env *netsim.Env, query topology.NodeID, budget int) Result {
	res := Result{Found: topology.None}
	for _, c := range ix.Candidates(query, budget) {
		rtt := env.ProbeRTT(query, c)
		res.Probes++
		if res.Found == topology.None || rtt < res.FoundRTT {
			res.Found, res.FoundRTT = c, rtt
		}
	}
	return res
}

// ERS is expanding-ring search over a CAN built on the full host
// population (the paper's setup: "we construct a 2-dimensional CAN
// consisting of all nodes in the topology"). Rings expand over CAN
// neighbor hops from the query's own zone; every newly reached member
// costs one RTT probe.
type ERS struct {
	overlay *can.Overlay
	byHost  map[topology.NodeID]*can.Member
}

// NewERS indexes the overlay's members by host. Every indexed host must
// own exactly one zone.
func NewERS(overlay *can.Overlay) (*ERS, error) {
	if overlay == nil {
		return nil, errors.New("proximity: nil overlay")
	}
	e := &ERS{overlay: overlay, byHost: make(map[topology.NodeID]*can.Member, overlay.Size())}
	for _, m := range overlay.Members() {
		if _, dup := e.byHost[m.Host]; dup {
			return nil, fmt.Errorf("proximity: host %d owns multiple zones", m.Host)
		}
		e.byHost[m.Host] = m
	}
	return e, nil
}

// Search expands rings from query's own zone, probing every member it
// reaches, until budget probes are spent or the overlay is exhausted.
func (e *ERS) Search(env *netsim.Env, query topology.NodeID, budget int) Result {
	res := Result{Found: topology.None}
	start, ok := e.byHost[query]
	if !ok || budget < 1 {
		return res
	}
	visited := map[*can.Member]struct{}{start: {}}
	ring := []*can.Member{start}
	for len(ring) > 0 && res.Probes < budget {
		var next []*can.Member
		for _, m := range ring {
			for _, nb := range m.Neighbors() {
				if _, seen := visited[nb]; seen {
					continue
				}
				visited[nb] = struct{}{}
				next = append(next, nb)
			}
		}
		// Probe the new ring (deterministic order for reproducibility).
		sort.Slice(next, func(a, b int) bool { return next[a].Host < next[b].Host })
		for _, m := range next {
			if res.Probes >= budget {
				break
			}
			rtt := env.ProbeRTT(query, m.Host)
			res.Probes++
			if res.Found == topology.None || rtt < res.FoundRTT {
				res.Found, res.FoundRTT = m.Host, rtt
			}
		}
		ring = next
	}
	return res
}

// SearchHillClimb is the heuristic baseline the paper contrasts with
// (§1, §4): start at a member of the overlay, probe its CAN neighbors,
// greedily move to the closest, and stop at a local minimum. It contacts
// far fewer nodes than expanding-ring search but "may stumble at local
// minimum pitfalls" — the overlay's neighbor graph is laid out by zone
// geometry, not physical proximity, so the closest physical neighbor is
// usually not reachable by monotone descent.
func (e *ERS) SearchHillClimb(env *netsim.Env, query topology.NodeID, budget int) Result {
	res := Result{Found: topology.None}
	cur, ok := e.byHost[query]
	if !ok || budget < 1 {
		return res
	}
	curRTT := 0.0 // query to itself; any neighbor is an improvement to start
	first := true
	visited := map[*can.Member]struct{}{cur: {}}
	for res.Probes < budget {
		var best *can.Member
		bestRTT := 0.0
		for _, nb := range sortedNeighbors(cur) {
			if _, seen := visited[nb]; seen {
				continue
			}
			if res.Probes >= budget {
				break
			}
			visited[nb] = struct{}{}
			rtt := env.ProbeRTT(query, nb.Host)
			res.Probes++
			if res.Found == topology.None || rtt < res.FoundRTT {
				res.Found, res.FoundRTT = nb.Host, rtt
			}
			if best == nil || rtt < bestRTT {
				best, bestRTT = nb, rtt
			}
		}
		if best == nil {
			break // all neighbors visited
		}
		if !first && bestRTT >= curRTT {
			break // local minimum: no neighbor improves
		}
		cur, curRTT = best, bestRTT
		first = false
	}
	return res
}

// sortedNeighbors returns a member's neighbors in deterministic order.
func sortedNeighbors(m *can.Member) []*can.Member {
	nbs := m.Neighbors()
	sort.Slice(nbs, func(i, j int) bool { return nbs[i].Host < nbs[j].Host })
	return nbs
}

// Stretch evaluates a search result: the one-way distance to the found
// host divided by the distance to the true nearest member of members
// (query excluded). It returns 1 for an exact hit and +Inf when the search
// found nothing.
func Stretch(net *topology.Network, query topology.NodeID, found topology.NodeID, members []topology.NodeID) float64 {
	if found == topology.None {
		return math.Inf(1)
	}
	best, bestD := net.Nearest(query, members)
	if best == topology.None || bestD == 0 {
		return math.Inf(1)
	}
	return net.Latency(query, found) / bestD
}
