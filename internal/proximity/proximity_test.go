package proximity

import (
	"math"
	"testing"

	"gsso/internal/can"
	"gsso/internal/landmark"
	"gsso/internal/netsim"
	"gsso/internal/simrand"
	"gsso/internal/topology"
)

type harness struct {
	net   *topology.Network
	env   *netsim.Env
	space *landmark.Space
	hosts []topology.NodeID
}

func newHarness(t testing.TB, hostCount int) *harness {
	t.Helper()
	spec := topology.Spec{
		TransitDomains:        3,
		TransitNodesPerDomain: 4,
		StubsPerTransitNode:   3,
		NodesPerStub:          15,
		ExtraTransitEdgeProb:  0.3,
		ExtraStubEdgeProb:     0.2,
		ExtraInterDomainLinks: 2,
		Latency:               topology.GTITMLatency(),
	}
	net := topology.MustGenerate(spec, simrand.New(1))
	env := netsim.New(net)
	rng := simrand.New(2)
	set, err := landmark.Choose(net, 8, rng.Split("lm"))
	if err != nil {
		t.Fatal(err)
	}
	space, err := landmark.NewSpace(set, 3, 6,
		landmark.EstimateMaxRTT(net, set, net.RandomStubHosts(rng.Split("est"), 30)))
	if err != nil {
		t.Fatal(err)
	}
	hosts := net.RandomStubHosts(rng.Split("hosts"), hostCount)
	return &harness{net: net, env: env, space: space, hosts: hosts}
}

func TestBuildIndexValidation(t *testing.T) {
	h := newHarness(t, 10)
	if _, err := BuildIndex(nil, h.space, h.hosts); err == nil {
		t.Fatal("nil env accepted")
	}
	if _, err := BuildIndex(h.env, nil, h.hosts); err == nil {
		t.Fatal("nil space accepted")
	}
	if _, err := BuildIndex(h.env, h.space, nil); err == nil {
		t.Fatal("empty hosts accepted")
	}
}

func TestBuildIndexMetersJoinCost(t *testing.T) {
	h := newHarness(t, 20)
	h.env.ResetProbes()
	ix, err := BuildIndex(h.env, h.space, h.hosts)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(20 * h.space.Set().Len())
	if h.env.Probes() != want {
		t.Fatalf("index build used %d probes, want %d", h.env.Probes(), want)
	}
	if ix.Len() != 20 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if ix.VectorOf(h.hosts[0]) == nil {
		t.Fatal("vector missing")
	}
	if ix.VectorOf(topology.NodeID(1)) != nil {
		t.Fatal("vector for unindexed host")
	}
	got := ix.Hosts()
	got[0] = 0 // must be a copy
	if ix.Hosts()[0] == 0 && h.hosts[0] != 0 {
		t.Fatal("Hosts leaked internal slice")
	}
}

func TestCandidatesExcludeQueryAndBounded(t *testing.T) {
	h := newHarness(t, 50)
	ix, err := BuildIndex(h.env, h.space, h.hosts)
	if err != nil {
		t.Fatal(err)
	}
	q := h.hosts[0]
	cands := ix.Candidates(q, 10)
	if len(cands) > 10 {
		t.Fatalf("got %d candidates", len(cands))
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range cands {
		if c == q {
			t.Fatal("candidates include the query host")
		}
	}
	if got := ix.Candidates(topology.NodeID(1), 10); got != nil {
		t.Fatal("candidates for unindexed host")
	}
	if got := ix.Candidates(q, 0); got != nil {
		t.Fatal("candidates for zero k")
	}
}

func TestCandidatesBeatRandomOnAverage(t *testing.T) {
	h := newHarness(t, 200)
	ix, err := BuildIndex(h.env, h.space, h.hosts)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(7)
	var preSum, randSum float64
	n := 0
	for trial := 0; trial < 30; trial++ {
		q := h.hosts[rng.Intn(len(h.hosts))]
		cands := ix.Candidates(q, 5)
		if len(cands) == 0 {
			continue
		}
		for _, c := range cands {
			preSum += h.net.Latency(q, c)
			n++
		}
		for i := 0; i < len(cands); i++ {
			r := h.hosts[rng.Intn(len(h.hosts))]
			if r != q {
				randSum += h.net.Latency(q, r)
			}
		}
	}
	if preSum >= randSum {
		t.Fatalf("preselection (%.1f) no better than random (%.1f)", preSum, randSum)
	}
}

func TestSearchHybridFindsGoodNeighbor(t *testing.T) {
	h := newHarness(t, 200)
	ix, err := BuildIndex(h.env, h.space, h.hosts)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(9)
	var stretches []float64
	for trial := 0; trial < 40; trial++ {
		q := h.hosts[rng.Intn(len(h.hosts))]
		h.env.ResetProbes()
		res := ix.SearchHybrid(h.env, q, 10)
		if res.Found == topology.None {
			t.Fatal("hybrid found nothing")
		}
		if res.Probes > 10 {
			t.Fatalf("hybrid used %d probes, budget 10", res.Probes)
		}
		if int64(res.Probes) != h.env.Probes() {
			t.Fatalf("probe accounting mismatch: %d vs %d", res.Probes, h.env.Probes())
		}
		if res.FoundRTT != h.net.RTT(q, res.Found) {
			t.Fatal("FoundRTT wrong")
		}
		stretches = append(stretches, Stretch(h.net, q, res.Found, h.hosts))
	}
	mean := 0.0
	for _, s := range stretches {
		mean += s
	}
	mean /= float64(len(stretches))
	t.Logf("hybrid budget=10 mean stretch: %.3f", mean)
	if mean > 3 {
		t.Fatalf("hybrid mean stretch %.3f too high", mean)
	}
}

func TestHybridImprovesWithBudget(t *testing.T) {
	h := newHarness(t, 300)
	ix, err := BuildIndex(h.env, h.space, h.hosts)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(11)
	queries := make([]topology.NodeID, 40)
	for i := range queries {
		queries[i] = h.hosts[rng.Intn(len(h.hosts))]
	}
	meanStretch := func(budget int) float64 {
		total := 0.0
		for _, q := range queries {
			res := ix.SearchHybrid(h.env, q, budget)
			total += Stretch(h.net, q, res.Found, h.hosts)
		}
		return total / float64(len(queries))
	}
	s1 := meanStretch(1)
	s20 := meanStretch(20)
	t.Logf("stretch: budget1=%.3f budget20=%.3f", s1, s20)
	if s20 > s1 {
		t.Fatalf("more probes made the result worse: %.3f -> %.3f", s1, s20)
	}
}

func buildERS(t testing.TB, h *harness) *ERS {
	t.Helper()
	overlay, err := can.New(2)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(31)
	for _, host := range h.hosts {
		if _, err := overlay.JoinRandom(host, rng); err != nil {
			t.Fatal(err)
		}
	}
	e, err := NewERS(overlay)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewERSValidation(t *testing.T) {
	if _, err := NewERS(nil); err == nil {
		t.Fatal("nil overlay accepted")
	}
	o, _ := can.New(2)
	rng := simrand.New(1)
	o.JoinRandom(5, rng)
	o.JoinRandom(5, rng) // duplicate host
	if _, err := NewERS(o); err == nil {
		t.Fatal("duplicate host accepted")
	}
}

func TestERSSearch(t *testing.T) {
	h := newHarness(t, 150)
	e := buildERS(t, h)
	q := h.hosts[3]
	h.env.ResetProbes()
	res := e.Search(h.env, q, 30)
	if res.Found == topology.None {
		t.Fatal("ERS found nothing")
	}
	if res.Probes > 30 {
		t.Fatalf("budget exceeded: %d", res.Probes)
	}
	if int64(res.Probes) != h.env.Probes() {
		t.Fatal("probe accounting mismatch")
	}
	if res.Found == q {
		t.Fatal("ERS returned the query itself")
	}
}

func TestERSExhaustiveIsOptimal(t *testing.T) {
	h := newHarness(t, 60)
	e := buildERS(t, h)
	q := h.hosts[0]
	res := e.Search(h.env, q, 10_000) // enough to visit everyone
	if res.Probes != len(h.hosts)-1 {
		t.Fatalf("exhaustive ERS probed %d of %d hosts", res.Probes, len(h.hosts)-1)
	}
	if s := Stretch(h.net, q, res.Found, h.hosts); s != 1 {
		t.Fatalf("exhaustive ERS stretch = %v, want 1", s)
	}
}

func TestERSUnknownQueryOrZeroBudget(t *testing.T) {
	h := newHarness(t, 30)
	e := buildERS(t, h)
	if res := e.Search(h.env, topology.NodeID(0), 10); res.Found != topology.None {
		t.Fatal("unknown host search returned something")
	}
	if res := e.Search(h.env, h.hosts[0], 0); res.Found != topology.None || res.Probes != 0 {
		t.Fatal("zero budget search spent probes")
	}
}

func TestHybridBeatsERSAtSmallBudget(t *testing.T) {
	// The paper's core §4 claim: at small probe budgets the hybrid finds
	// far closer neighbors than expanding-ring search.
	h := newHarness(t, 300)
	ix, err := BuildIndex(h.env, h.space, h.hosts)
	if err != nil {
		t.Fatal(err)
	}
	e := buildERS(t, h)
	rng := simrand.New(13)
	const budget = 10
	var hybridSum, ersSum float64
	n := 0
	for trial := 0; trial < 40; trial++ {
		q := h.hosts[rng.Intn(len(h.hosts))]
		hr := ix.SearchHybrid(h.env, q, budget)
		er := e.Search(h.env, q, budget)
		hs := Stretch(h.net, q, hr.Found, h.hosts)
		es := Stretch(h.net, q, er.Found, h.hosts)
		if math.IsInf(hs, 1) || math.IsInf(es, 1) {
			continue
		}
		hybridSum += hs
		ersSum += es
		n++
	}
	t.Logf("budget %d: hybrid stretch %.3f, ERS stretch %.3f", budget, hybridSum/float64(n), ersSum/float64(n))
	if hybridSum >= ersSum {
		t.Fatalf("hybrid (%.1f) not better than ERS (%.1f) at budget %d", hybridSum, ersSum, budget)
	}
}

func TestStretch(t *testing.T) {
	h := newHarness(t, 30)
	q := h.hosts[0]
	nearest, _ := h.net.Nearest(q, h.hosts)
	if s := Stretch(h.net, q, nearest, h.hosts); s != 1 {
		t.Fatalf("stretch of true nearest = %v", s)
	}
	if s := Stretch(h.net, q, topology.None, h.hosts); !math.IsInf(s, 1) {
		t.Fatalf("stretch of not-found = %v", s)
	}
	if s := Stretch(h.net, q, h.hosts[1], []topology.NodeID{q}); !math.IsInf(s, 1) {
		t.Fatalf("stretch with no other members = %v", s)
	}
	for _, other := range h.hosts[1:] {
		if s := Stretch(h.net, q, other, h.hosts); s < 1 {
			t.Fatalf("stretch below 1: %v", s)
		}
	}
}
