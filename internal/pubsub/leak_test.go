package pubsub

import (
	"testing"

	"gsso/internal/can"
)

// TestRemoveSubscriberDropsAll is the regression test for the
// subscription leak: a member that leaves the overlay must not keep
// live subscriptions on the bus, or its callbacks fire into freed state
// and the per-region lists grow without bound under churn.
func TestRemoveSubscriberDropsAll(t *testing.T) {
	h := newHarness(t, 32)
	members := h.overlay.CAN().Members()
	leaver := members[0]
	region := regionOf(h, leaver)
	var stayer *can.Member
	for _, m := range members[1:] {
		if regionOf(h, m) != region {
			stayer = m
			break
		}
	}
	if stayer == nil {
		t.Skip("all members share one region")
	}
	otherRegion := regionOf(h, stayer)

	var fired int
	for _, r := range []can.Path{region, otherRegion} {
		if _, err := h.bus.Subscribe(leaver, r, Condition{Kind: NodeJoined}, func(Notification) {
			fired++
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.bus.Subscribe(stayer, otherRegion, Condition{Kind: NodeJoined}, func(Notification) {}); err != nil {
		t.Fatal(err)
	}
	beforeOther := h.bus.SubscriptionCount(otherRegion)

	dropped := h.bus.RemoveSubscriber(leaver)
	if dropped != 2 {
		t.Fatalf("RemoveSubscriber dropped %d, want 2", dropped)
	}
	if h.bus.SubscriptionCount(region) != 0 {
		t.Fatal("leaver's home-region subscription survived")
	}
	if h.bus.SubscriptionCount(otherRegion) != beforeOther-1 {
		t.Fatal("stayer's subscription was collateral damage")
	}
	// Publishes into the region no longer reach the departed member.
	for _, m := range members[2:] {
		if err := h.store.PublishMeasured(m); err != nil {
			t.Fatal(err)
		}
	}
	if fired != 0 {
		t.Fatalf("departed member received %d notifications", fired)
	}
	if h.bus.RemoveSubscriber(leaver) != 0 {
		t.Fatal("second removal found subscriptions")
	}
}

// TestDropWatching cancels subscriptions whose condition watches a dead
// member — they can never fire again once the member is purged.
func TestDropWatching(t *testing.T) {
	h := newHarness(t, 32)
	members := h.overlay.CAN().Members()
	watcher, dead := members[0], members[1]
	region := regionOf(h, dead)

	if _, err := h.bus.Subscribe(watcher, region,
		Condition{Kind: LoadAbove, Threshold: 0.5, Member: dead}, func(Notification) {}); err != nil {
		t.Fatal(err)
	}
	// An any-member LoadAbove on the same region must survive.
	if _, err := h.bus.Subscribe(watcher, region,
		Condition{Kind: LoadAbove, Threshold: 0.5}, func(Notification) {}); err != nil {
		t.Fatal(err)
	}
	if dropped := h.bus.DropWatching(dead); dropped != 1 {
		t.Fatalf("DropWatching dropped %d, want 1", dropped)
	}
	if h.bus.SubscriptionCount(region) != 1 {
		t.Fatalf("region has %d subscriptions, want the any-member one", h.bus.SubscriptionCount(region))
	}
	if h.bus.DropWatching(nil) != 0 {
		t.Fatal("DropWatching(nil) dropped subscriptions")
	}
}

// TestRearmRegion pins the demand-driven repair path: after a takeover
// the CloserCandidate best is reset, so the next publish into the region
// fires again even if it is no closer than the (possibly dead) previous
// best.
func TestRearmRegion(t *testing.T) {
	h := newHarness(t, 32)
	members := h.overlay.CAN().Members()
	sub := members[0]
	if err := h.store.PublishMeasured(sub); err != nil {
		t.Fatal(err)
	}
	region := regionOf(h, sub)
	var candidate *can.Member
	for _, m := range members[1:] {
		if m.Path().HasPrefix(region) {
			candidate = m
			break
		}
	}
	if candidate == nil {
		t.Skip("no second member in region")
	}
	var fired int
	s, err := h.bus.Subscribe(sub, region, Condition{Kind: CloserCandidate}, func(Notification) { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	if err := h.store.PublishMeasured(candidate); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("first candidate fired %d times, want 1", fired)
	}
	// Lock the best at the candidate's distance: a re-publish of the
	// same candidate is not an improvement and must stay silent.
	s.SetCurrentBest(0)
	if err := h.store.PublishMeasured(candidate); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("non-improving publish fired (total %d)", fired)
	}
	// Rearm (the chosen best may have died in a takeover): the very same
	// publish now fires again.
	if n := h.bus.RearmRegion(region); n != 1 {
		t.Fatalf("RearmRegion re-armed %d, want 1", n)
	}
	if err := h.store.PublishMeasured(candidate); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("re-armed subscription did not fire (total %d)", fired)
	}
}
