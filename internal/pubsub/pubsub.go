// Package pubsub adds the paper's publish/subscribe functionality to the
// global soft-state: a node subscribes to the maps its routing entries
// depend on and states the condition under which it wants to be notified —
// "more nodes have joined the zone", "a candidate closer than my current
// neighbor appeared", "my neighbor's load crossed 80% of its capacity".
// When a map mutation triggers a condition, the map owner disseminates
// notifications; the subscriber can then re-select neighbors on demand
// instead of polling.
package pubsub

import (
	"errors"
	"fmt"
	"math"

	"gsso/internal/can"
	"gsso/internal/landmark"
	"gsso/internal/netsim"
	"gsso/internal/obs"
	"gsso/internal/softstate"
)

// CondKind enumerates subscription conditions.
type CondKind uint8

// Subscription condition kinds.
const (
	// NodeJoined fires when a new entry is published into the region.
	NodeJoined CondKind = iota
	// NodeLeft fires when an entry is removed or expires.
	NodeLeft
	// LoadAbove fires when a watched member's load/capacity ratio reaches
	// Threshold. If Member is nil, any member of the region qualifies.
	LoadAbove
	// CloserCandidate fires when a published entry's landmark-vector
	// distance to the subscriber is at least Margin closer than the
	// subscriber's current best (set via SetCurrentBest).
	CloserCandidate
	// NeighborDegraded fires when the watched member (Cond.Member,
	// required) republishes a landmark position at least Margin farther
	// from the subscriber than the current best — the subscriber's chosen
	// neighbor has drifted away and re-selection is warranted.
	NeighborDegraded
)

// String implements fmt.Stringer.
func (k CondKind) String() string {
	switch k {
	case NodeJoined:
		return "node-joined"
	case NodeLeft:
		return "node-left"
	case LoadAbove:
		return "load-above"
	case CloserCandidate:
		return "closer-candidate"
	case NeighborDegraded:
		return "neighbor-degraded"
	default:
		return fmt.Sprintf("CondKind(%d)", uint8(k))
	}
}

// Condition is a subscription predicate.
type Condition struct {
	Kind CondKind
	// Threshold applies to LoadAbove: fire at load/capacity >= Threshold.
	Threshold float64
	// Member restricts LoadAbove to one watched member (nil = any).
	Member *can.Member
	// Margin applies to CloserCandidate: required improvement over the
	// current best vector distance (in vector-space units).
	Margin float64
}

// Notification is delivered to subscribers.
type Notification struct {
	Sub   *Subscription
	Event softstate.Event
}

// Subscription is a registered interest in one region's map.
type Subscription struct {
	ID         int
	Subscriber *can.Member
	Region     can.Path
	Cond       Condition
	Notify     func(Notification)

	vector      landmark.Vector // for CloserCandidate
	currentBest float64
	canceled    bool
}

// SetCurrentBest records the subscriber's current best vector distance so
// CloserCandidate can compare against it.
func (s *Subscription) SetCurrentBest(d float64) { s.currentBest = d }

// Bus matches soft-state events against subscriptions and delivers
// notifications with message accounting. Install exactly one Bus per
// Store; the Bus chains to any previously installed event sink.
type Bus struct {
	store *softstate.Store
	env   *netsim.Env

	byRegion  map[can.Path][]*Subscription
	nextID    int
	delivered int
	metrics   *busMetrics
}

// busMetrics reports notification outcomes: fired (condition matched,
// notification delivered) versus suppressed (a subscriber saw the event
// but its condition filtered it — the saving pub/sub claims over
// polling). Nil when the bus is uninstrumented.
type busMetrics struct {
	fired      *obs.Counter
	suppressed *obs.Counter
	subs       *obs.Gauge
}

// Instrument mirrors the bus's activity into reg: the counter family
// pubsub_notifications_total{result="fired"|"suppressed"} and the gauge
// pubsub_subscriptions.
func (b *Bus) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	notif := reg.Counter("pubsub_notifications_total",
		"Subscription evaluations, by result.", "result")
	b.metrics = &busMetrics{
		fired:      notif.With("fired"),
		suppressed: notif.With("suppressed"),
		subs: reg.Gauge("pubsub_subscriptions",
			"Live subscriptions across all regions.").With(),
	}
}

// NewBus attaches a bus to store.
func NewBus(store *softstate.Store, env *netsim.Env) (*Bus, error) {
	if store == nil || env == nil {
		return nil, errors.New("pubsub: nil store or env")
	}
	b := &Bus{
		store:    store,
		env:      env,
		byRegion: make(map[can.Path][]*Subscription),
	}
	store.SetEventSink(b.handle)
	return b, nil
}

// Subscribe registers interest of subscriber in region under cond. For
// CloserCandidate conditions the subscriber must have published (its
// landmark vector seeds the comparison); currentBest starts at +Inf.
func (b *Bus) Subscribe(subscriber *can.Member, region can.Path, cond Condition, notify func(Notification)) (*Subscription, error) {
	if subscriber == nil {
		return nil, errors.New("pubsub: nil subscriber")
	}
	if notify == nil {
		return nil, errors.New("pubsub: nil notify callback")
	}
	if cond.Kind == LoadAbove && (cond.Threshold <= 0 || math.IsNaN(cond.Threshold)) {
		return nil, fmt.Errorf("pubsub: LoadAbove threshold = %v, need > 0", cond.Threshold)
	}
	sub := &Subscription{
		ID:          b.nextID,
		Subscriber:  subscriber,
		Region:      region,
		Cond:        cond,
		Notify:      notify,
		currentBest: math.Inf(1),
	}
	if cond.Kind == CloserCandidate || cond.Kind == NeighborDegraded {
		vec := b.store.Vector(subscriber)
		if vec == nil {
			return nil, fmt.Errorf("pubsub: %v subscriber has not published a vector", cond.Kind)
		}
		sub.vector = vec
	}
	if cond.Kind == NeighborDegraded && cond.Member == nil {
		return nil, errors.New("pubsub: NeighborDegraded requires a watched member")
	}
	b.nextID++
	b.byRegion[region] = append(b.byRegion[region], sub)
	b.env.CountMessages("subscribe", 1)
	if b.metrics != nil {
		b.metrics.subs.Add(1)
	}
	return sub, nil
}

// Unsubscribe cancels a subscription. Canceling twice is a no-op.
func (b *Bus) Unsubscribe(sub *Subscription) {
	if sub == nil || sub.canceled {
		return
	}
	sub.canceled = true
	subs := b.byRegion[sub.Region]
	for i, s := range subs {
		if s == sub {
			subs[i] = subs[len(subs)-1]
			b.byRegion[sub.Region] = subs[:len(subs)-1]
			break
		}
	}
	b.env.CountMessages("subscribe", 1) // the cancel message
	if b.metrics != nil {
		b.metrics.subs.Add(-1)
	}
}

// RemoveSubscriber cancels every subscription held BY member m (the
// departure/crash cleanup: a gone member must stop receiving
// notifications). Returns the number of subscriptions dropped. Unlike
// Unsubscribe, no cancel message is metered for crashes' sake — the
// caller meters the cleanup under its own category if it wants to.
func (b *Bus) RemoveSubscriber(m *can.Member) int {
	dropped := 0
	for region, subs := range b.byRegion {
		kept := subs[:0]
		for _, sub := range subs {
			if sub.Subscriber == m {
				sub.canceled = true
				dropped++
				continue
			}
			kept = append(kept, sub)
		}
		if len(kept) == 0 {
			delete(b.byRegion, region)
		} else {
			b.byRegion[region] = kept
		}
	}
	if dropped > 0 && b.metrics != nil {
		b.metrics.subs.Add(float64(-dropped))
	}
	return dropped
}

// DropWatching cancels every subscription whose condition watches member
// m (LoadAbove/NeighborDegraded with Cond.Member == m): once m is gone
// the watched series can never fire again, so the subscriptions are dead
// weight. Returns the number dropped.
func (b *Bus) DropWatching(m *can.Member) int {
	dropped := 0
	for region, subs := range b.byRegion {
		kept := subs[:0]
		for _, sub := range subs {
			if sub.Cond.Member == m && m != nil {
				sub.canceled = true
				dropped++
				continue
			}
			kept = append(kept, sub)
		}
		if len(kept) == 0 {
			delete(b.byRegion, region)
		} else {
			b.byRegion[region] = kept
		}
	}
	if dropped > 0 && b.metrics != nil {
		b.metrics.subs.Add(float64(-dropped))
	}
	return dropped
}

// RearmRegion resets the currentBest of every CloserCandidate
// subscription on region to +Inf, so the next publish or refresh into
// the region fires the condition and the subscriber re-selects. This is
// the demand-driven repair path after a takeover: subscribers whose
// chosen neighbor may have died do not poll — the first live candidate
// to (re)publish notifies them. Returns the number of re-armed
// subscriptions.
func (b *Bus) RearmRegion(region can.Path) int {
	rearmed := 0
	for _, sub := range b.byRegion[region] {
		if sub.Cond.Kind == CloserCandidate && !sub.canceled {
			sub.currentBest = math.Inf(1)
			rearmed++
		}
	}
	return rearmed
}

// SubscriptionCount returns the number of live subscriptions on region.
func (b *Bus) SubscriptionCount(region can.Path) int { return len(b.byRegion[region]) }

// Delivered returns the total notifications delivered so far.
func (b *Bus) Delivered() int { return b.delivered }

// handle is the store event sink.
func (b *Bus) handle(ev softstate.Event) {
	subs := b.byRegion[ev.Region]
	if len(subs) == 0 {
		return
	}
	for _, sub := range subs {
		if sub.canceled {
			continue
		}
		if !b.matches(sub, ev) {
			if b.metrics != nil {
				b.metrics.suppressed.Inc()
			}
			continue
		}
		if b.metrics != nil {
			b.metrics.fired.Inc()
		}
		b.delivered++
		b.env.CountMessages("notify", 1)
		sub.Notify(Notification{Sub: sub, Event: ev})
	}
}

// matches evaluates a subscription condition against an event.
func (b *Bus) matches(sub *Subscription, ev softstate.Event) bool {
	// Self-caused events never notify their own subscriber.
	if ev.Entry != nil && ev.Entry.Member == sub.Subscriber {
		return false
	}
	switch sub.Cond.Kind {
	case NodeJoined:
		return ev.Kind == softstate.EventPublished
	case NodeLeft:
		return ev.Kind == softstate.EventRemoved || ev.Kind == softstate.EventExpired
	case LoadAbove:
		if ev.Kind != softstate.EventLoadChanged {
			return false
		}
		if sub.Cond.Member != nil && ev.Entry.Member != sub.Cond.Member {
			return false
		}
		if ev.Entry.Capacity <= 0 {
			return false
		}
		return ev.Entry.Load/ev.Entry.Capacity >= sub.Cond.Threshold
	case CloserCandidate:
		if ev.Kind != softstate.EventPublished && ev.Kind != softstate.EventRefreshed {
			return false
		}
		d := landmark.Distance(ev.Entry.Vector, sub.vector)
		return d+sub.Cond.Margin < sub.currentBest
	case NeighborDegraded:
		if ev.Kind != softstate.EventPublished && ev.Kind != softstate.EventRefreshed {
			return false
		}
		if ev.Entry.Member != sub.Cond.Member {
			return false
		}
		d := landmark.Distance(ev.Entry.Vector, sub.vector)
		return d > sub.currentBest+sub.Cond.Margin
	default:
		return false
	}
}

// TreeStats describes disseminating one notification batch to n
// subscribers through a distribution tree embedded in the overlay with the
// given fanout: total messages equal the subscriber count (each tree edge
// carries one), but the owner sends only fanout messages itself and the
// last subscriber hears after Depth overlay hops — the efficiency claim of
// §5.2 versus the owner unicasting n messages serially.
type TreeStats struct {
	Subscribers int
	Fanout      int
	Messages    int
	Depth       int
	RootFanout  int
}

// Tree computes TreeStats for n subscribers and the given fanout (>= 2).
func Tree(n, fanout int) TreeStats {
	if fanout < 2 {
		fanout = 2
	}
	st := TreeStats{Subscribers: n, Fanout: fanout, Messages: n}
	if n <= 0 {
		return st
	}
	st.RootFanout = fanout
	if n < fanout {
		st.RootFanout = n
	}
	// Depth of a complete fanout-ary tree with n nodes.
	level, width, covered := 0, 1, 0
	for covered < n {
		level++
		width *= fanout
		covered += width
	}
	st.Depth = level
	return st
}
