package pubsub

import (
	"math"
	"testing"

	"gsso/internal/can"
	"gsso/internal/ecan"
	"gsso/internal/landmark"
	"gsso/internal/netsim"
	"gsso/internal/simrand"
	"gsso/internal/softstate"
	"gsso/internal/topology"
)

type harness struct {
	net     *topology.Network
	env     *netsim.Env
	overlay *ecan.Overlay
	store   *softstate.Store
	bus     *Bus
}

func newHarness(t testing.TB, members int) *harness {
	t.Helper()
	spec := topology.Spec{
		TransitDomains:        2,
		TransitNodesPerDomain: 4,
		StubsPerTransitNode:   3,
		NodesPerStub:          12,
		ExtraTransitEdgeProb:  0.3,
		ExtraStubEdgeProb:     0.2,
		ExtraInterDomainLinks: 1,
		Latency:               topology.GTITMLatency(),
	}
	net := topology.MustGenerate(spec, simrand.New(1))
	env := netsim.New(net)
	rng := simrand.New(2)
	ov, err := ecan.BuildUniform(net, members, 2, 0, ecan.RandomSelector{RNG: rng.Split("sel")}, rng)
	if err != nil {
		t.Fatal(err)
	}
	set, err := landmark.Choose(net, 6, rng.Split("lm"))
	if err != nil {
		t.Fatal(err)
	}
	space, err := landmark.NewSpace(set, 3, 5,
		landmark.EstimateMaxRTT(net, set, net.RandomStubHosts(rng.Split("est"), 20)))
	if err != nil {
		t.Fatal(err)
	}
	store, err := softstate.NewStore(ov, space, env, softstate.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bus, err := NewBus(store, env)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{net: net, env: env, overlay: ov, store: store, bus: bus}
}

// regionOf returns a digit-aligned region enclosing m.
func regionOf(h *harness, m *can.Member) can.Path {
	return m.Path().Prefix(h.overlay.DigitLen())
}

func TestNewBusValidation(t *testing.T) {
	h := newHarness(t, 16)
	if _, err := NewBus(nil, h.env); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := NewBus(h.store, nil); err == nil {
		t.Fatal("nil env accepted")
	}
}

func TestSubscribeValidation(t *testing.T) {
	h := newHarness(t, 16)
	m := h.overlay.CAN().Members()[0]
	region := regionOf(h, m)
	cb := func(Notification) {}
	if _, err := h.bus.Subscribe(nil, region, Condition{Kind: NodeJoined}, cb); err == nil {
		t.Fatal("nil subscriber accepted")
	}
	if _, err := h.bus.Subscribe(m, region, Condition{Kind: NodeJoined}, nil); err == nil {
		t.Fatal("nil callback accepted")
	}
	if _, err := h.bus.Subscribe(m, region, Condition{Kind: LoadAbove}, cb); err == nil {
		t.Fatal("LoadAbove without threshold accepted")
	}
	if _, err := h.bus.Subscribe(m, region, Condition{Kind: CloserCandidate}, cb); err == nil {
		t.Fatal("CloserCandidate without published vector accepted")
	}
}

func TestNodeJoinedNotification(t *testing.T) {
	h := newHarness(t, 32)
	members := h.overlay.CAN().Members()
	sub := members[0]
	// Find another member in the same digit region.
	region := regionOf(h, sub)
	var joiner *can.Member
	for _, m := range members[1:] {
		if m.Path().HasPrefix(region) {
			joiner = m
			break
		}
	}
	if joiner == nil {
		t.Skip("no second member in region")
	}
	var got []Notification
	if _, err := h.bus.Subscribe(sub, region, Condition{Kind: NodeJoined}, func(n Notification) {
		got = append(got, n)
	}); err != nil {
		t.Fatal(err)
	}
	if err := h.store.PublishMeasured(joiner); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("notifications = %d, want 1", len(got))
	}
	if got[0].Event.Kind != softstate.EventPublished || got[0].Event.Entry.Member != joiner {
		t.Fatalf("wrong notification: %+v", got[0].Event)
	}
	if h.env.Messages("notify") != 1 {
		t.Fatalf("notify messages = %d", h.env.Messages("notify"))
	}
	if h.bus.Delivered() != 1 {
		t.Fatalf("Delivered = %d", h.bus.Delivered())
	}
}

func TestSelfEventsNotDelivered(t *testing.T) {
	h := newHarness(t, 32)
	sub := h.overlay.CAN().Members()[0]
	region := regionOf(h, sub)
	fired := 0
	if _, err := h.bus.Subscribe(sub, region, Condition{Kind: NodeJoined}, func(Notification) {
		fired++
	}); err != nil {
		t.Fatal(err)
	}
	if err := h.store.PublishMeasured(sub); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatal("subscriber notified about its own publish")
	}
}

func TestNodeLeftNotification(t *testing.T) {
	h := newHarness(t, 32)
	members := h.overlay.CAN().Members()
	sub := members[0]
	region := regionOf(h, sub)
	var leaver *can.Member
	for _, m := range members[1:] {
		if m.Path().HasPrefix(region) {
			leaver = m
			break
		}
	}
	if leaver == nil {
		t.Skip("no second member in region")
	}
	if err := h.store.PublishMeasured(leaver); err != nil {
		t.Fatal(err)
	}
	fired := 0
	if _, err := h.bus.Subscribe(sub, region, Condition{Kind: NodeLeft}, func(n Notification) {
		fired++
		if n.Event.Kind != softstate.EventRemoved {
			t.Fatalf("kind = %v", n.Event.Kind)
		}
	}); err != nil {
		t.Fatal(err)
	}
	h.store.Remove(leaver)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestNodeLeftOnExpiry(t *testing.T) {
	h := newHarness(t, 32)
	members := h.overlay.CAN().Members()
	sub := members[0]
	region := regionOf(h, sub)
	var other *can.Member
	for _, m := range members[1:] {
		if m.Path().HasPrefix(region) {
			other = m
			break
		}
	}
	if other == nil {
		t.Skip("no second member in region")
	}
	if err := h.store.PublishMeasured(other); err != nil {
		t.Fatal(err)
	}
	fired := 0
	if _, err := h.bus.Subscribe(sub, region, Condition{Kind: NodeLeft}, func(Notification) {
		fired++
	}); err != nil {
		t.Fatal(err)
	}
	h.env.Clock().Advance(netsim.Time(h.store.Config().TTL) + 1)
	h.store.SweepExpired()
	if fired == 0 {
		t.Fatal("expiry did not notify")
	}
}

func TestLoadAboveThreshold(t *testing.T) {
	h := newHarness(t, 32)
	members := h.overlay.CAN().Members()
	sub := members[0]
	region := regionOf(h, sub)
	var watched *can.Member
	for _, m := range members[1:] {
		if m.Path().HasPrefix(region) {
			watched = m
			break
		}
	}
	if watched == nil {
		t.Skip("no second member in region")
	}
	if err := h.store.PublishMeasured(watched, softstate.WithCapacity(10)); err != nil {
		t.Fatal(err)
	}
	fired := 0
	if _, err := h.bus.Subscribe(sub, region,
		Condition{Kind: LoadAbove, Threshold: 0.8, Member: watched},
		func(Notification) { fired++ }); err != nil {
		t.Fatal(err)
	}
	h.store.UpdateLoad(watched, 5) // 50% — below threshold
	if fired != 0 {
		t.Fatal("notified below threshold")
	}
	h.store.UpdateLoad(watched, 9) // 90%
	if fired == 0 {
		t.Fatal("not notified above threshold")
	}
}

func TestLoadAboveIgnoresOtherMembers(t *testing.T) {
	h := newHarness(t, 64)
	members := h.overlay.CAN().Members()
	sub := members[0]
	region := regionOf(h, sub)
	var inRegion []*can.Member
	for _, m := range members[1:] {
		if m.Path().HasPrefix(region) {
			inRegion = append(inRegion, m)
		}
	}
	if len(inRegion) < 2 {
		t.Skip("need two other members in region")
	}
	watched, other := inRegion[0], inRegion[1]
	for _, m := range []*can.Member{watched, other} {
		if err := h.store.PublishMeasured(m, softstate.WithCapacity(10)); err != nil {
			t.Fatal(err)
		}
	}
	fired := 0
	if _, err := h.bus.Subscribe(sub, region,
		Condition{Kind: LoadAbove, Threshold: 0.5, Member: watched},
		func(Notification) { fired++ }); err != nil {
		t.Fatal(err)
	}
	h.store.UpdateLoad(other, 9)
	if fired != 0 {
		t.Fatal("notified about unwatched member")
	}
}

func TestCloserCandidate(t *testing.T) {
	h := newHarness(t, 64)
	members := h.overlay.CAN().Members()
	sub := members[0]
	if err := h.store.PublishMeasured(sub); err != nil {
		t.Fatal(err)
	}
	region := regionOf(h, sub)
	var fired []Notification
	s, err := h.bus.Subscribe(sub, region, Condition{Kind: CloserCandidate, Margin: 0},
		func(n Notification) { fired = append(fired, n) })
	if err != nil {
		t.Fatal(err)
	}
	// With currentBest = +Inf, any publish in the region fires.
	var others []*can.Member
	for _, m := range members[1:] {
		if m.Path().HasPrefix(region) {
			others = append(others, m)
		}
	}
	if len(others) == 0 {
		t.Skip("no other members in region")
	}
	if err := h.store.PublishMeasured(others[0]); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 {
		t.Fatalf("fired = %d, want 1", len(fired))
	}
	// Tighten currentBest to 0: nothing can beat it.
	s.SetCurrentBest(0)
	fired = nil
	if err := h.store.PublishMeasured(others[0]); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 0 {
		t.Fatal("notified although nothing can be closer than 0")
	}
}

func TestUnsubscribe(t *testing.T) {
	h := newHarness(t, 32)
	members := h.overlay.CAN().Members()
	sub := members[0]
	region := regionOf(h, sub)
	fired := 0
	s, err := h.bus.Subscribe(sub, region, Condition{Kind: NodeJoined}, func(Notification) { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	if h.bus.SubscriptionCount(region) != 1 {
		t.Fatal("subscription not registered")
	}
	h.bus.Unsubscribe(s)
	h.bus.Unsubscribe(s) // double-cancel is a no-op
	if h.bus.SubscriptionCount(region) != 0 {
		t.Fatal("subscription not removed")
	}
	for _, m := range members[1:] {
		if m.Path().HasPrefix(region) {
			if err := h.store.PublishMeasured(m); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if fired != 0 {
		t.Fatal("notified after unsubscribe")
	}
}

func TestMessageAccounting(t *testing.T) {
	h := newHarness(t, 32)
	m := h.overlay.CAN().Members()[0]
	region := regionOf(h, m)
	s, err := h.bus.Subscribe(m, region, Condition{Kind: NodeJoined}, func(Notification) {})
	if err != nil {
		t.Fatal(err)
	}
	if h.env.Messages("subscribe") != 1 {
		t.Fatalf("subscribe messages = %d", h.env.Messages("subscribe"))
	}
	h.bus.Unsubscribe(s)
	if h.env.Messages("subscribe") != 2 {
		t.Fatalf("subscribe messages after cancel = %d", h.env.Messages("subscribe"))
	}
}

func TestTreeStats(t *testing.T) {
	cases := []struct {
		n, fanout, depth, rootFanout int
	}{
		{0, 2, 0, 0},
		{1, 2, 1, 1},
		{2, 2, 1, 2},
		{6, 2, 2, 2},
		{7, 2, 3, 2},
		{84, 4, 3, 4},
		{100, 4, 4, 4},
		{3, 1, 2, 2}, // fanout clamped to 2
	}
	for _, tc := range cases {
		st := Tree(tc.n, tc.fanout)
		if st.Messages != tc.n {
			t.Fatalf("Tree(%d,%d).Messages = %d", tc.n, tc.fanout, st.Messages)
		}
		if st.Depth != tc.depth {
			t.Fatalf("Tree(%d,%d).Depth = %d, want %d", tc.n, tc.fanout, st.Depth, tc.depth)
		}
		if st.RootFanout != tc.rootFanout {
			t.Fatalf("Tree(%d,%d).RootFanout = %d, want %d", tc.n, tc.fanout, st.RootFanout, tc.rootFanout)
		}
	}
}

func TestCondKindString(t *testing.T) {
	kinds := []CondKind{NodeJoined, NodeLeft, LoadAbove, CloserCandidate, CondKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatal("empty String")
		}
	}
	if !math.IsInf(math.Inf(1), 1) {
		t.Fatal("sanity")
	}
}
