package simrand

import (
	"math"
	"testing"
)

func TestInt63NonNegative(t *testing.T) {
	s := New(31)
	for i := 0; i < 10000; i++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63 returned %d", v)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(33)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(35)
	sum, sumSq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("NormFloat64 mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("NormFloat64 variance = %v", variance)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(37)
	vals := make([]int, 50)
	for i := range vals {
		vals[i] = i
	}
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make([]bool, len(vals))
	for _, v := range vals {
		if seen[v] {
			t.Fatalf("duplicate %d after shuffle", v)
		}
		seen[v] = true
	}
}

func TestSampleZeroAndFull(t *testing.T) {
	s := New(39)
	if got := s.Sample(10, 0); got != nil {
		t.Fatalf("Sample(_, 0) = %v", got)
	}
	full := s.Sample(10, 10)
	if len(full) != 10 {
		t.Fatalf("full sample len %d", len(full))
	}
}

func TestPickPanicsOnWeightMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Pick(3, []float64{1, 2})
}

func TestRangeDegenerate(t *testing.T) {
	s := New(41)
	if v := s.Range(5, 5); v != 5 {
		t.Fatalf("Range(5,5) = %v", v)
	}
}
