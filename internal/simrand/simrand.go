// Package simrand provides deterministic, splittable random number streams
// for simulation experiments.
//
// Every stochastic decision in the library draws from a Source. Sources are
// derived from a single experiment seed plus a string label, so adding a new
// consumer of randomness does not perturb the streams seen by existing
// consumers. This keeps every experiment bit-reproducible across runs and
// insensitive to refactoring.
package simrand

import (
	"hash/fnv"
	"math/rand/v2"
	"sort"
)

// Source is a deterministic random stream. It wraps a PCG generator from
// math/rand/v2 and adds simulation-oriented helpers. A Source is NOT safe
// for concurrent use; derive one Source per goroutine with Split.
type Source struct {
	rng  *rand.Rand
	seed uint64
	path string
}

// New returns a Source rooted at the given experiment seed.
func New(seed uint64) *Source {
	return &Source{
		rng:  rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		seed: seed,
		path: "",
	}
}

// Split derives an independent child stream identified by label. Splitting
// is stable: the child depends only on the root seed and the sequence of
// labels used to reach it, never on how much randomness the parent consumed.
func (s *Source) Split(label string) *Source {
	h := fnv.New64a()
	h.Write([]byte(s.path))
	h.Write([]byte{0})
	h.Write([]byte(label))
	sub := h.Sum64()
	return &Source{
		rng:  rand.New(rand.NewPCG(s.seed, sub)),
		seed: s.seed,
		path: s.path + "/" + label,
	}
}

// Path reports the split-label path of this stream, for debugging.
func (s *Source) Path() string { return s.path }

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Source) Uint64() uint64 { return s.rng.Uint64() }

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand semantics; callers validate n at their own boundary.
func (s *Source) Intn(n int) int { return s.rng.IntN(n) }

// Int63 returns a non-negative 63-bit integer.
func (s *Source) Int63() int64 { return int64(s.rng.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Range returns a uniform float64 in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.rng.Float64() < p }

// ExpFloat64 returns an exponentially distributed value with mean 1.
func (s *Source) ExpFloat64() float64 { return s.rng.ExpFloat64() }

// NormFloat64 returns a standard-normal value.
func (s *Source) NormFloat64() float64 { return s.rng.NormFloat64() }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// Sample returns k distinct values drawn uniformly from [0, n) in random
// order. It panics if k > n. For k close to n it shuffles; for small k it
// uses rejection sampling to avoid O(n) work.
func (s *Source) Sample(n, k int) []int {
	if k > n {
		panic("simrand: Sample k > n")
	}
	if k <= 0 {
		return nil
	}
	// Rejection sampling is cheap while the hit rate stays low.
	if k*3 < n {
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for len(out) < k {
			v := s.rng.IntN(n)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
		return out
	}
	perm := s.rng.Perm(n)
	return perm[:k]
}

// SortedSample is Sample with the result in increasing order.
func (s *Source) SortedSample(n, k int) []int {
	out := s.Sample(n, k)
	sort.Ints(out)
	return out
}

// Pick returns a uniformly random element index weightable by weights.
// If weights is nil, it returns Intn(n). Zero total weight falls back to
// uniform. It panics if n <= 0 or len(weights) != n when weights != nil.
func (s *Source) Pick(n int, weights []float64) int {
	if weights == nil {
		return s.Intn(n)
	}
	if len(weights) != n {
		panic("simrand: Pick weights length mismatch")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return s.Intn(n)
	}
	x := s.rng.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return n - 1
}
