package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestSplitStability(t *testing.T) {
	root := New(7)
	// Consuming randomness from the parent must not change the child.
	c1 := root.Split("alpha")
	for i := 0; i < 57; i++ {
		root.Uint64()
	}
	c2 := New(7).Split("alpha")
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("split stream not stable at step %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split("a")
	b := root.Split("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling splits produced %d/100 identical draws", same)
	}
}

func TestNestedSplitPath(t *testing.T) {
	s := New(1).Split("x").Split("y")
	if got, want := s.Path(), "/x/y"; got != want {
		t.Fatalf("Path() = %q, want %q", got, want)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Range(2.5, 7.25)
		if v < 2.5 || v >= 7.25 {
			t.Fatalf("Range(2.5, 7.25) = %v out of range", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestSampleDistinct(t *testing.T) {
	s := New(5)
	f := func(n8, k8 uint8) bool {
		n := int(n8)%50 + 1
		k := int(k8) % (n + 1)
		out := s.Sample(n, k)
		if len(out) != k {
			return false
		}
		seen := map[int]struct{}{}
		for _, v := range out {
			if v < 0 || v >= n {
				return false
			}
			if _, dup := seen[v]; dup {
				return false
			}
			seen[v] = struct{}{}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleLargeNSmallK(t *testing.T) {
	s := New(5)
	out := s.Sample(1_000_000, 10)
	if len(out) != 10 {
		t.Fatalf("len = %d", len(out))
	}
}

func TestSamplePanicsWhenKExceedsN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestSortedSample(t *testing.T) {
	s := New(9)
	out := s.SortedSample(100, 20)
	for i := 1; i < len(out); i++ {
		if out[i-1] >= out[i] {
			t.Fatalf("not sorted/distinct at %d: %v", i, out)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(13)
	p := s.Perm(64)
	seen := make([]bool, 64)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
}

func TestPickUniformWhenNilWeights(t *testing.T) {
	s := New(17)
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[s.Pick(4, nil)]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("bucket %d count %d not ~10000", i, c)
		}
	}
}

func TestPickRespectsWeights(t *testing.T) {
	s := New(19)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[s.Pick(3, []float64{1, 2, 0})]++
	}
	if counts[2] != 0 {
		t.Fatalf("zero-weight bucket picked %d times", counts[2])
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("weight ratio = %v, want ~2", ratio)
	}
}

func TestPickZeroTotalFallsBackToUniform(t *testing.T) {
	s := New(23)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[s.Pick(3, []float64{0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("bucket %d count %d not ~10000", i, c)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(29)
	hits := 0
	for i := 0; i < 100000; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / 100000
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate = %v", p)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}

func BenchmarkSample16Of10k(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Sample(10000, 16)
	}
}
