package softstate

import (
	"fmt"
	"sync"
	"testing"

	"gsso/internal/landmark"
)

// benchParallelPublish drives `workers` goroutines publishing disjoint
// member subsets into a store with the given shard count. With one
// shard every publish serializes on the single lock (the pre-sharding
// behavior); with more shards, members whose landmark numbers land in
// different ranges publish without contending. On a multi-core box the
// curve is near-linear in shards until workers are satisfied; on one
// core the win reduces to cheaper lock handoff (less goroutine parking),
// so the curve flattens — BENCH_wire.json records gomaxprocs alongside.
func benchParallelPublish(b *testing.B, shards, workers int) {
	cfg := DefaultConfig()
	cfg.Shards = shards
	h := newHarness(b, 64, cfg)
	s := h.store
	members := h.overlay.CAN().Members()
	vecs := make([]landmark.Vector, len(members))
	for i, m := range members {
		vecs[i] = landmark.Measure(h.env, m.Host, h.space.Set())
		if err := s.Publish(m, vecs[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	// Explicit goroutines, not b.RunParallel: each worker owns a member
	// subset so the workload is publish-heavy with disjoint keys.
	var wg sync.WaitGroup
	per := b.N/workers + 1
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				idx := (w + i*workers) % len(members)
				if err := s.Publish(members[idx], vecs[idx]); err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkStoreParallelPublish(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			benchParallelPublish(b, shards, 4)
		})
	}
}

// BenchmarkStoreLookup measures the read path against a populated
// sharded store: snapshot per shard, cursor walk, full-vector sort.
func BenchmarkStoreLookup(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Shards = shards
			h := newHarness(b, 64, cfg)
			if err := h.store.PublishAll(nil); err != nil {
				b.Fatal(err)
			}
			m := h.overlay.CAN().Members()[0]
			region := h.store.regionsOf(m)[0]
			vec := h.store.Vector(m)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := h.store.Lookup(region, vec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
