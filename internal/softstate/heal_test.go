package softstate

import (
	"testing"

	"gsso/internal/can"
	"gsso/internal/obs"
)

func TestEventSinkFanout(t *testing.T) {
	h := newHarness(t, 16, DefaultConfig())
	m := h.overlay.CAN().Members()[0]
	var a, b int
	h.store.SetEventSink(func(Event) { a++ })
	h.store.AddEventSink(func(Event) { b++ })
	if err := h.store.PublishMeasured(m); err != nil {
		t.Fatal(err)
	}
	if a == 0 || a != b {
		t.Fatalf("sink fanout uneven: a=%d b=%d", a, b)
	}
	// SetEventSink replaces the whole chain; nil clears it.
	h.store.SetEventSink(nil)
	a, b = 0, 0
	if err := h.store.PublishMeasured(m); err != nil {
		t.Fatal(err)
	}
	if a != 0 || b != 0 {
		t.Fatalf("cleared sinks still fired: a=%d b=%d", a, b)
	}
}

func TestPublishFilter(t *testing.T) {
	h := newHarness(t, 32, DefaultConfig())
	m := h.overlay.CAN().Members()[3]
	d := h.overlay.DigitLen()
	if m.Depth() < 2*d {
		t.Skip("member too shallow to distinguish regions")
	}

	// Reject everything: nothing lands, drops are metered.
	h.store.SetPublishFilter(func(can.Path, uint64) bool { return false })
	if err := h.store.PublishMeasured(m); err != nil {
		t.Fatal(err)
	}
	if n := h.store.TotalEntries(); n != 0 {
		t.Fatalf("filtered publish stored %d entries", n)
	}
	if h.env.Messages("publish-dropped") == 0 {
		t.Fatal("dropped publishes not metered")
	}

	// Allow only the top-level region.
	h.store.SetPublishFilter(func(region can.Path, _ uint64) bool { return region.Len == d })
	if err := h.store.PublishMeasured(m); err != nil {
		t.Fatal(err)
	}
	if len(h.store.RegionEntries(m.Path().Prefix(d))) != 1 {
		t.Fatal("allowed region empty")
	}
	if len(h.store.RegionEntries(m.Path().Prefix(2*d))) != 0 {
		t.Fatal("filtered region populated")
	}

	// Clear the filter: the full set of enclosing regions fills in.
	h.store.SetPublishFilter(nil)
	if err := h.store.PublishMeasured(m); err != nil {
		t.Fatal(err)
	}
	if h.store.TotalEntries() != m.Depth()/d {
		t.Fatalf("TotalEntries = %d, want %d", h.store.TotalEntries(), m.Depth()/d)
	}
}

func TestPurge(t *testing.T) {
	h := newHarness(t, 32, DefaultConfig())
	if err := h.store.PublishAll(nil); err != nil {
		t.Fatal(err)
	}
	m := h.overlay.CAN().Members()[5]
	want := m.Depth() / h.overlay.DigitLen()
	before := h.store.TotalEntries()
	purged := h.store.Purge(m)
	if purged != want {
		t.Fatalf("Purge = %d, want %d", purged, want)
	}
	if h.store.TotalEntries() != before-purged {
		t.Fatal("TotalEntries did not shrink by the purge")
	}
	if h.store.Vector(m) != nil {
		t.Fatal("vector survived purge")
	}
	if h.env.Messages("repair") != int64(purged) {
		t.Fatalf("repair messages = %d, want %d", h.env.Messages("repair"), purged)
	}
	if h.store.Purge(m) != 0 {
		t.Fatal("second purge found entries")
	}
}

func TestOwnersOf(t *testing.T) {
	h := newHarness(t, 48, DefaultConfig())
	if err := h.store.PublishAll(nil); err != nil {
		t.Fatal(err)
	}
	m := h.overlay.CAN().Members()[0]
	num, ok := h.store.Number(m)
	if !ok {
		t.Fatal("no number")
	}
	region := m.Path().Prefix(h.overlay.DigitLen())
	under := h.overlay.CAN().MembersUnder(region)

	owners := h.store.OwnersOf(region, num, 1)
	if len(owners) != 1 || owners[0] != h.store.OwnerOf(region, num) {
		t.Fatalf("k=1 owners = %v", owners)
	}
	k := 3
	if k > len(under) {
		k = len(under)
	}
	owners = h.store.OwnersOf(region, num, k)
	if len(owners) != k || owners[0] != h.store.OwnerOf(region, num) {
		t.Fatalf("k=%d returned %d owners", k, len(owners))
	}
	seen := map[*can.Member]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatal("duplicate owner in chain")
		}
		seen[o] = true
		found := false
		for _, u := range under {
			if u == o {
				found = true
				break
			}
		}
		if !found {
			t.Fatal("owner outside the region")
		}
	}
	// k larger than the region population is capped, not wrapped into
	// duplicates.
	owners = h.store.OwnersOf(region, num, len(under)+5)
	if len(owners) != len(under) {
		t.Fatalf("oversized k returned %d owners, want %d", len(owners), len(under))
	}
	if h.store.OwnersOf(region, num, 0) != nil {
		t.Fatal("k=0 returned owners")
	}
}

func TestLoseShards(t *testing.T) {
	h := newHarness(t, 32, DefaultConfig())
	if err := h.store.PublishAll(nil); err != nil {
		t.Fatal(err)
	}
	var events int
	h.store.SetEventSink(func(Event) { events++ })

	// Nobody down: nothing lost.
	if lost := h.store.LoseShards(func(*can.Member) bool { return false }, 1); lost != 0 {
		t.Fatalf("lost %d with nobody down", lost)
	}
	// Everybody down at k=1: the whole store dies, silently (no events —
	// the holders died with the data).
	before := h.store.TotalEntries()
	lost := h.store.LoseShards(func(*can.Member) bool { return true }, 1)
	if lost != before || h.store.TotalEntries() != 0 {
		t.Fatalf("lost %d of %d, %d remain", lost, before, h.store.TotalEntries())
	}
	if events != 0 {
		t.Fatalf("shard loss emitted %d events", events)
	}
}

func TestLoseShardsReplicationSurvives(t *testing.T) {
	h := newHarness(t, 32, DefaultConfig())
	if err := h.store.PublishAll(nil); err != nil {
		t.Fatal(err)
	}
	// Crash one member. At k=1 every spot it owned is lost; at k=2 only
	// the spots where it was the sole member under the region (its own
	// deepest zone) can die, so the loss must be strictly smaller.
	h2 := newHarness(t, 32, DefaultConfig())
	if err := h2.store.PublishAll(nil); err != nil {
		t.Fatal(err)
	}
	down := h.overlay.CAN().Members()[7]
	isDown := func(m *can.Member) bool { return m == down }
	lost1 := h.store.LoseShards(isDown, 1)
	if lost1 == 0 {
		t.Fatal("k=1 lost nothing; expected the crashed owner's spots to die")
	}
	down2 := h2.overlay.CAN().Members()[7]
	lost2 := h2.store.LoseShards(func(m *can.Member) bool { return m == down2 }, 2)
	if lost2 >= lost1 {
		t.Fatalf("k=2 lost %d entries, k=1 lost %d; replication gave no protection", lost2, lost1)
	}
}

func TestSweepExpiredCounter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TTL = 100
	h := newHarness(t, 16, cfg)
	reg := obs.NewRegistry()
	h.store.Instrument(reg)
	if err := h.store.PublishAll(nil); err != nil {
		t.Fatal(err)
	}
	if v, ok := reg.Snapshot().Value("softstate_sweep_expired_total"); !ok || v != 0 {
		t.Fatalf("sweep counter = %v before expiry", v)
	}
	h.env.Clock().Advance(101)
	dropped := h.store.SweepExpired()
	if dropped == 0 {
		t.Fatal("nothing expired")
	}
	v, ok := reg.Snapshot().Value("softstate_sweep_expired_total")
	if !ok || int(v) != dropped {
		t.Fatalf("softstate_sweep_expired_total = %v, want %d", v, dropped)
	}
}
