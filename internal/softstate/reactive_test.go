package softstate

import (
	"testing"

	"gsso/internal/ecan"
	"gsso/internal/simrand"
)

// TestReactiveDeletion exercises §5.2's "most reactive case": a crashed
// member's soft-state entries are purged the first time a selection probe
// to it times out, and selection still returns a live member.
func TestReactiveDeletion(t *testing.T) {
	h := newHarness(t, 96, DefaultConfig())
	if err := h.store.PublishAll(nil); err != nil {
		t.Fatal(err)
	}
	m := h.overlay.CAN().Members()[0]
	region := m.Path().Prefix(h.overlay.DigitLen())
	vec := h.store.Vector(m)

	entries, _, err := h.store.Lookup(region, vec)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Skip("region too small to crash a member")
	}
	victim := entries[0]
	if victim.Member == m {
		victim = entries[1]
	}
	h.env.SetDown(victim.Host, true)
	entriesBefore := h.store.TotalEntries()

	sel, err := NewSelector(h.store, 10, ecan.RandomSelector{RNG: simrand.New(7)})
	if err != nil {
		t.Fatal(err)
	}
	got := sel.Select(m, region, h.overlay.RegionMembers(region))
	if got == nil {
		t.Fatal("selection returned nothing")
	}
	if got == victim.Member {
		t.Fatal("selection picked the crashed member")
	}
	if h.env.IsDown(got.Host) {
		t.Fatal("selection picked a down host")
	}
	// The victim's entries were reactively purged from every map.
	if h.store.Vector(victim.Member) != nil {
		t.Fatal("victim's vector survived reactive deletion")
	}
	if h.store.TotalEntries() >= entriesBefore {
		t.Fatal("no entries were purged")
	}
	if h.env.Messages("reactive-delete") == 0 {
		t.Fatal("reactive deletions not metered")
	}
	// Subsequent lookups no longer return the victim.
	after, _, err := h.store.Lookup(region, vec)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range after {
		if e.Member == victim.Member {
			t.Fatal("crashed member still in map")
		}
	}
}

// TestProbeDownHost verifies the netsim failure-injection contract the
// selector relies on.
func TestProbeDownHost(t *testing.T) {
	h := newHarness(t, 16, DefaultConfig())
	hosts := h.net.StubHosts()
	h.env.SetDown(hosts[1], true)
	if rtt := h.env.ProbeRTT(hosts[0], hosts[1]); !isInf(rtt) {
		t.Fatalf("probe to down host = %v, want +Inf", rtt)
	}
	h.env.SetDown(hosts[1], false)
	if rtt := h.env.ProbeRTT(hosts[0], hosts[1]); isInf(rtt) {
		t.Fatal("probe to recovered host still times out")
	}
}

// TestMassFailureSelectionDegradesGracefully crashes most of a region and
// verifies selection still terminates and returns something sane.
func TestMassFailureSelectionDegradesGracefully(t *testing.T) {
	h := newHarness(t, 96, DefaultConfig())
	if err := h.store.PublishAll(nil); err != nil {
		t.Fatal(err)
	}
	m := h.overlay.CAN().Members()[0]
	region := m.Path().Prefix(h.overlay.DigitLen())
	cands := h.overlay.RegionMembers(region)
	for _, c := range cands {
		if c != m {
			h.env.SetDown(c.Host, true)
		}
	}
	sel, err := NewSelector(h.store, 10, ecan.RandomSelector{RNG: simrand.New(7)})
	if err != nil {
		t.Fatal(err)
	}
	// Everyone is dead: probeBest finds nothing, so the fallback fires.
	// The fallback may still pick a dead member (it is proximity-blind by
	// design) but the call must not hang or panic.
	_ = sel.Select(m, region, cands)
}

func isInf(v float64) bool { return v > 1e300 }
