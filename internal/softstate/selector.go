package softstate

import (
	"errors"
	"math"

	"gsso/internal/can"
	"gsso/internal/ecan"
)

// Selector is the paper's proximity-neighbor selection procedure as an
// ecan.Selector: consult the region's map with the selecting node's own
// landmark number (Table 1), RTT-probe the top candidates, pick the
// closest measured. Every probe is metered through the store's env, so
// experiments can plot quality against "# RTT measurements".
type Selector struct {
	store    *Store
	budget   int
	fallback ecan.Selector
}

// Compile-time interface check.
var _ ecan.Selector = (*Selector)(nil)

// NewSelector returns a Selector that spends at most budget RTT probes per
// selection. fallback handles regions with no usable map content (it may
// be nil, in which case the first candidate is used).
func NewSelector(store *Store, budget int, fallback ecan.Selector) (*Selector, error) {
	if store == nil {
		return nil, errors.New("softstate: nil store")
	}
	if budget < 1 {
		return nil, errors.New("softstate: probe budget must be >= 1")
	}
	return &Selector{store: store, budget: budget, fallback: fallback}, nil
}

// Budget returns the per-selection probe budget.
func (s *Selector) Budget() int { return s.budget }

// Select implements ecan.Selector.
func (s *Selector) Select(self *can.Member, region can.Path, candidates []*can.Member) *can.Member {
	vec := s.store.Vector(self)
	if vec != nil {
		entries, _, err := s.store.Lookup(region, vec)
		if err == nil && len(entries) > 0 {
			if best := s.probeBest(self, entries); best != nil {
				return best
			}
		}
	}
	if s.fallback != nil {
		return s.fallback.Select(self, region, candidates)
	}
	if len(candidates) > 0 {
		return candidates[0]
	}
	return nil
}

// probeBest RTT-measures up to budget entries and returns the closest
// member, or nil when nothing (other than self) was reachable. A probe
// that times out triggers the reactive deletion of §5.2: the dead
// member's soft-state is purged on the spot.
func (s *Selector) probeBest(self *can.Member, entries []*Entry) *can.Member {
	var best *can.Member
	bestRTT := 0.0
	probes := 0
	for _, e := range entries {
		if e.Member == self {
			continue
		}
		if probes >= s.budget {
			break
		}
		rtt := s.store.env.ProbeRTT(self.Host, e.Host)
		probes++
		if math.IsInf(rtt, 1) {
			s.store.ReportUnreachable(e.Member)
			continue
		}
		if best == nil || rtt < bestRTT {
			best, bestRTT = e.Member, rtt
		}
	}
	return best
}
