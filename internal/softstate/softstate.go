// Package softstate implements the paper's central mechanism: global
// system state stored on the overlay itself as soft-state, with controlled
// placement so that information about physically close nodes lands on
// logically close overlay nodes.
//
// One proximity map exists per high-order region (eCAN high-order zone /
// Pastry prefix). A node's entry — its landmark vector, scalar landmark
// number, capacity and load — is published into the map of every enclosing
// region, placed *within* the region at a position derived from the
// landmark number through the space-filling curve (appendix hash
// p' = h(p, dp, dz, Z)). Entries carry a TTL and vanish unless refreshed.
//
// A node looking for a physically close member of region Z indexes Z's map
// with its own landmark number (Table 1's procedure): route to the owner,
// widen along the curve if the local shard is thin, sort what was found by
// full-vector distance, return the top X. The caller then RTT-probes those
// X candidates — the hybrid landmark+RTT scheme.
//
// # Concurrency
//
// The store is sharded by landmark-number range: entries whose numbers
// fall in different shards never share a lock, so concurrent publishes,
// refreshes, sweeps, and repairs touching different parts of the curve
// proceed in parallel. All of one member's entries live in the shard of
// its current number (republishing to a new number relocates them), so
// member-keyed operations (Remove, Purge, UpdateLoad, RefreshAll) lock
// exactly one shard. Entries are copy-on-write — immutable once
// inserted; refresh and load updates replace the pointer — so snapshots
// handed out by Lookup and events stay race-free without locks. Event
// sinks run after shard locks are released and may safely re-enter the
// store. Configuration (SetEventSink, AddEventSink, SetPublishFilter,
// Instrument, SetSpans) must happen before concurrent use.
package softstate

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"gsso/internal/can"
	"gsso/internal/ecan"
	"gsso/internal/landmark"
	"gsso/internal/netsim"
	"gsso/internal/obs"
	"gsso/internal/obs/span"
	"gsso/internal/topology"
)

// Entry is one node's record in a region map. Entries are immutable
// after insertion: refreshes and load changes replace the map's pointer
// with a fresh copy, so a held *Entry is a stable snapshot.
type Entry struct {
	// Member is the overlay member the entry describes.
	Member *can.Member
	// Host is the member's physical host.
	Host topology.NodeID
	// Vector is the member's full landmark vector.
	Vector landmark.Vector
	// Number is the member's scalar landmark number.
	Number uint64
	// Capacity is the member's forwarding capacity (arbitrary units);
	// Load its current load. Used by the §6 heterogeneity extension.
	Capacity float64
	Load     float64
	// Expires is the soft-state deadline; entries past it are dead.
	Expires netsim.Time
}

// EventKind classifies map-change events for the pub/sub layer.
type EventKind uint8

// Map-change events.
const (
	EventPublished EventKind = iota
	EventRefreshed
	EventRemoved
	EventExpired
	EventLoadChanged
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventPublished:
		return "published"
	case EventRefreshed:
		return "refreshed"
	case EventRemoved:
		return "removed"
	case EventExpired:
		return "expired"
	case EventLoadChanged:
		return "load-changed"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is emitted on every map mutation.
type Event struct {
	Kind   EventKind
	Region can.Path
	Entry  *Entry
}

// defaultShards is the shard count used when Config.Shards is zero.
const defaultShards = 8

// maxShardCount bounds Config.Shards.
const maxShardCount = 1 << 10

// Config tunes the store.
type Config struct {
	// TTL is the soft-state lifetime of a published entry.
	TTL netsim.Time
	// CondenseDepth condenses each region's map into an aligned sub-block
	// of 2^-CondenseDepth of the region's volume (0 = the map spreads over
	// the whole region). This is the paper's condense/reduction rate:
	// rate = 2^CondenseDepth.
	CondenseDepth int
	// MaxReturn is X, the maximum number of candidates a lookup returns.
	MaxReturn int
	// ExpandBudget bounds how many additional owner shards a lookup may
	// visit along the curve when the first shard is thin (the paper's
	// "define a TTL to search outside y's map content range").
	ExpandBudget int
	// Shards is the number of landmark-number ranges the store is split
	// into for concurrency — a power of two up to 1024, clamped to the
	// curve's resolution. Zero selects the default (8). One shard
	// degenerates to a single-lock store (the old behavior, kept as the
	// benchmark baseline).
	Shards int
}

// DefaultConfig returns the defaults used across experiments.
func DefaultConfig() Config {
	return Config{TTL: 60_000, CondenseDepth: 0, MaxReturn: 10, ExpandBudget: 8, Shards: defaultShards}
}

func (c Config) validate() error {
	switch {
	case c.TTL <= 0:
		return fmt.Errorf("softstate: TTL = %v, need > 0", c.TTL)
	case c.CondenseDepth < 0 || c.CondenseDepth > 32:
		return fmt.Errorf("softstate: CondenseDepth = %d, need in [0,32]", c.CondenseDepth)
	case c.MaxReturn < 1:
		return fmt.Errorf("softstate: MaxReturn = %d, need >= 1", c.MaxReturn)
	case c.ExpandBudget < 0:
		return fmt.Errorf("softstate: ExpandBudget = %d, need >= 0", c.ExpandBudget)
	case c.Shards < 0 || c.Shards > maxShardCount:
		return fmt.Errorf("softstate: Shards = %d, need in [0,%d]", c.Shards, maxShardCount)
	case c.Shards&(c.Shards-1) != 0:
		return fmt.Errorf("softstate: Shards = %d, need a power of two", c.Shards)
	}
	return nil
}

// regionMap is one shard's slice of one region's proximity map: entries
// keyed by member, plus a number-sorted view rebuilt lazily for
// curve-order expansion. The rebuild allocates a fresh slice so a view
// handed out under the shard lock stays valid after the lock drops.
type regionMap struct {
	entries map[*can.Member]*Entry
	sorted  []*Entry // by Number, rebuilt (fresh) when dirty
	dirty   bool
}

func (rm *regionMap) sortedEntries() []*Entry {
	if rm.dirty {
		sorted := make([]*Entry, 0, len(rm.entries))
		for _, e := range rm.entries {
			sorted = append(sorted, e)
		}
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].Number != sorted[j].Number {
				return sorted[i].Number < sorted[j].Number
			}
			return sorted[i].Host < sorted[j].Host // deterministic tie-break
		})
		rm.sorted = sorted
		rm.dirty = false
	}
	return rm.sorted
}

// storeShard is one landmark-number range of the store: its own region
// maps, its own lock, and a lock-free live-entry counter.
type storeShard struct {
	mu   sync.Mutex
	maps map[can.Path]*regionMap
	live atomic.Int64
}

// memberState is a member's published position, immutable once stored
// (publishes replace the pointer), so readers need no lock.
type memberState struct {
	vector landmark.Vector
	number uint64
}

// Store holds every region map of one overlay plus the metadata needed
// to place and retrieve entries, sharded by landmark-number range (see
// the package comment for the locking discipline).
type Store struct {
	overlay *ecan.Overlay
	space   *landmark.Space
	env     *netsim.Env
	cfg     Config

	// numShift maps a landmark number to its shard: index = number >>
	// numShift. Shard ranges are contiguous, so the per-shard sorted
	// slices of one region concatenate into global number order.
	numShift uint
	shards   []*storeShard

	members sync.Map // *can.Member -> *memberState; lock-free reads

	sinks   []func(Event)
	filter  func(region can.Path, number uint64) bool
	metrics *storeMetrics
	spans   *span.Collector
}

// SetSpans attaches a span collector: Publish and Lookup record one root
// span each (op "softstate.publish" / "softstate.lookup", the member's
// host or the queried region as the peer label, region count or expand
// hops as the attempt count). This is the simulator analogue of the wire
// layer's distributed tracing — the same ring buffer and sampler observe
// the in-process soft-state path, so experiment harnesses can expose
// /traces like a live node. Nil detaches (the default; zero overhead
// beyond a nil check).
func (s *Store) SetSpans(c *span.Collector) { s.spans = c }

// storeMetrics mirrors map churn into a telemetry registry: a live-entry
// gauge plus one counter per event kind (published, refreshed, removed,
// expired, load-changed) and a dedicated sweep counter. Nil when the
// store is uninstrumented.
type storeMetrics struct {
	live   *obs.Gauge
	events map[EventKind]*obs.Counter
	swept  *obs.Counter
}

// Instrument mirrors the store's churn into reg: the gauge
// softstate_entries_live and the counter family
// softstate_events_total{kind}. Call once, before publishing.
func (s *Store) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	events := reg.Counter("softstate_events_total",
		"Soft-state map mutations, by event kind.", "kind")
	m := &storeMetrics{
		live: reg.Gauge("softstate_entries_live",
			"Entries currently held across all region maps.").With(),
		events: make(map[EventKind]*obs.Counter),
		swept: reg.Counter("softstate_sweep_expired_total",
			"Entries dropped by SweepExpired (periodic-polling maintenance).").With(),
	}
	for _, k := range []EventKind{EventPublished, EventRefreshed, EventRemoved, EventExpired, EventLoadChanged} {
		m.events[k] = events.With(k.String())
	}
	m.live.Set(float64(s.TotalEntries()))
	s.metrics = m
}

// NewStore builds an empty store over ov.
func NewStore(ov *ecan.Overlay, space *landmark.Space, env *netsim.Env, cfg Config) (*Store, error) {
	if ov == nil || space == nil || env == nil {
		return nil, errors.New("softstate: nil overlay, space, or env")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Shards == 0 {
		cfg.Shards = defaultShards
	}
	curveWidth := space.Curve().Dims() * space.Curve().Bits()
	shardBits := bits.TrailingZeros(uint(cfg.Shards))
	if shardBits > curveWidth {
		// More shards than the curve has distinct numbers buys nothing.
		shardBits = curveWidth
		cfg.Shards = 1 << shardBits
	}
	s := &Store{
		overlay:  ov,
		space:    space,
		env:      env,
		cfg:      cfg,
		numShift: uint(curveWidth - shardBits),
		shards:   make([]*storeShard, cfg.Shards),
	}
	for i := range s.shards {
		s.shards[i] = &storeShard{maps: make(map[can.Path]*regionMap)}
	}
	return s, nil
}

// shardOf maps a landmark number to its shard index.
func (s *Store) shardOf(number uint64) int {
	i := int(number >> s.numShift)
	if i >= len(s.shards) {
		i = len(s.shards) - 1
	}
	return i
}

// Shards reports the store's effective shard count.
func (s *Store) Shards() int { return len(s.shards) }

// Config returns the store's configuration (Shards normalized to the
// effective count).
func (s *Store) Config() Config { return s.cfg }

// Space returns the landmark space in use.
func (s *Store) Space() *landmark.Space { return s.space }

// Env returns the simulation environment the store meters against.
func (s *Store) Env() *netsim.Env { return s.env }

// Overlay returns the eCAN the store serves.
func (s *Store) Overlay() *ecan.Overlay { return s.overlay }

// SetEventSink installs the map-change event hook (used by package
// pubsub), replacing any sinks installed before. A nil sink disables
// events.
func (s *Store) SetEventSink(fn func(Event)) {
	if fn == nil {
		s.sinks = nil
		return
	}
	s.sinks = []func(Event){fn}
}

// AddEventSink appends an additional map-change observer alongside any
// already installed — the failure detector in package core listens this
// way without displacing the pub/sub bus.
func (s *Store) AddEventSink(fn func(Event)) {
	if fn != nil {
		s.sinks = append(s.sinks, fn)
	}
}

// SetPublishFilter installs a gate consulted before every per-region map
// insertion: Publish skips (and meters as "publish-dropped") regions for
// which fn returns false. Experiments use it to model unreachable map
// owners — a write to a spot whose owner crashed cannot land until the
// zone is taken over. A nil fn removes the gate. The filter runs outside
// the shard locks.
func (s *Store) SetPublishFilter(fn func(region can.Path, number uint64) bool) {
	s.filter = fn
}

// emitAll delivers events collected during a locked mutation. It runs
// with no shard lock held, so sinks may re-enter the store freely.
func (s *Store) emitAll(evs []Event) {
	for i := range evs {
		ev := evs[i]
		if m := s.metrics; m != nil {
			m.events[ev.Kind].Inc()
			switch ev.Kind {
			case EventPublished:
				m.live.Add(1)
			case EventRemoved, EventExpired:
				m.live.Add(-1)
			}
		}
		for _, sink := range s.sinks {
			sink(ev)
		}
	}
}

// loadMember returns m's published state, if any.
func (s *Store) loadMember(m *can.Member) (*memberState, bool) {
	v, ok := s.members.Load(m)
	if !ok {
		return nil, false
	}
	return v.(*memberState), true
}

// Vector returns m's published landmark vector (nil if unpublished).
func (s *Store) Vector(m *can.Member) landmark.Vector {
	if st, ok := s.loadMember(m); ok {
		return st.vector
	}
	return nil
}

// Number returns m's landmark number and whether m has published.
func (s *Store) Number(m *can.Member) (uint64, bool) {
	if st, ok := s.loadMember(m); ok {
		return st.number, true
	}
	return 0, false
}

// PublishOption customizes a publication.
type PublishOption func(*Entry)

// WithCapacity sets the entry's forwarding capacity.
func WithCapacity(capacity float64) PublishOption {
	return func(e *Entry) { e.Capacity = capacity }
}

// WithLoad sets the entry's current load.
func WithLoad(load float64) PublishOption {
	return func(e *Entry) { e.Load = load }
}

// regionsOf returns the high-order regions enclosing m whose maps must
// carry m's entry: prefixes of m's path at every digit boundary (one map
// per high-order zone, at most log N of them).
func (s *Store) regionsOf(m *can.Member) []can.Path {
	d := s.overlay.DigitLen()
	p := m.Path()
	var out []can.Path
	for l := d; l <= p.Len; l += d {
		out = append(out, p.Prefix(l))
	}
	return out
}

// Publish inserts or refreshes m's entry in the map of every enclosing
// high-order region, stamping soft-state expiry now+TTL. The member's
// landmark vector is measured through env if not supplied before (use
// PublishMeasured for that path); vec is copied.
func (s *Store) Publish(m *can.Member, vec landmark.Vector, opts ...PublishOption) error {
	if m == nil {
		return errors.New("softstate: publish nil member")
	}
	sp := s.spans.StartRoot("softstate.publish")
	sp.SetPeer(fmt.Sprintf("host-%d", m.Host))
	stored, err := s.publish(m, vec, opts...)
	sp.Finish(span.Outcome(err), stored, err)
	return err
}

func (s *Store) publish(m *can.Member, vec landmark.Vector, opts ...PublishOption) (int, error) {
	num, err := s.space.Number(vec)
	if err != nil {
		return 0, err
	}
	vcopy := append(landmark.Vector(nil), vec...)
	oldState, hadOld := s.loadMember(m)
	s.members.Store(m, &memberState{vector: vcopy, number: num})
	newShard := s.shardOf(num)

	// Relocation: a republish whose number crossed a shard boundary must
	// drag the member's entries to the new shard, or member-keyed
	// operations (which look only in the number's shard) would miss
	// them. The old entries move silently — the refresh events emitted
	// on re-insertion below are the externally visible state change.
	var prevByRegion map[can.Path]*Entry
	if hadOld && s.shardOf(oldState.number) != newShard {
		old := s.shards[s.shardOf(oldState.number)]
		old.mu.Lock()
		for region, rm := range old.maps {
			if e, ok := rm.entries[m]; ok {
				if prevByRegion == nil {
					prevByRegion = make(map[can.Path]*Entry)
				}
				prevByRegion[region] = e
				delete(rm.entries, m)
				rm.dirty = true
			}
		}
		old.live.Add(int64(-len(prevByRegion)))
		old.mu.Unlock()
	}

	// The publish filter runs before the shard lock: it is caller code
	// and must not observe the store mid-mutation.
	regions := s.regionsOf(m)
	kept := regions[:0]
	dropped := 0
	for _, region := range regions {
		if s.filter != nil && !s.filter(region, num) {
			dropped++
			continue
		}
		kept = append(kept, region)
	}

	now := s.env.Clock().Now()
	events := make([]Event, 0, len(kept))
	added := 0
	sh := s.shards[newShard]
	sh.mu.Lock()
	for _, region := range kept {
		rm := sh.maps[region]
		if rm == nil {
			rm = &regionMap{entries: make(map[*can.Member]*Entry)}
			sh.maps[region] = rm
		}
		prev, inShard := rm.entries[m]
		if !inShard {
			added++
			if prev = prevByRegion[region]; prev == nil {
				prev = nil
			}
		}
		existed := prev != nil
		e := &Entry{
			Member:  m,
			Host:    m.Host,
			Vector:  vcopy,
			Number:  num,
			Expires: now + s.cfg.TTL,
		}
		if existed {
			e.Capacity, e.Load = prev.Capacity, prev.Load
		}
		for _, opt := range opts {
			opt(e)
		}
		rm.entries[m] = e
		rm.dirty = true
		kind := EventPublished
		if existed {
			kind = EventRefreshed
		}
		events = append(events, Event{Kind: kind, Region: region, Entry: e})
	}
	sh.live.Add(int64(added))
	sh.mu.Unlock()

	s.emitAll(events)
	if dropped > 0 {
		s.env.CountMessages("publish-dropped", dropped)
	}
	s.env.CountMessages("publish", len(kept))
	return len(kept), nil
}

// PublishMeasured measures m's landmark vector (metered probes, one per
// landmark) and publishes it.
func (s *Store) PublishMeasured(m *can.Member, opts ...PublishOption) error {
	vec := landmark.Measure(s.env, m.Host, s.space.Set())
	return s.Publish(m, vec, opts...)
}

// UpdateLoad changes m's load in every map it appears in without
// refreshing expiry, emitting EventLoadChanged (the §6 statistics
// publication path). Entries are replaced copy-on-write: snapshots held
// from earlier lookups keep the load they were taken with.
func (s *Store) UpdateLoad(m *can.Member, load float64) {
	st, ok := s.loadMember(m)
	if !ok {
		return
	}
	sh := s.shards[s.shardOf(st.number)]
	var events []Event
	sh.mu.Lock()
	for region, rm := range sh.maps {
		if e, ok := rm.entries[m]; ok {
			ne := *e
			ne.Load = load
			rm.entries[m] = &ne
			rm.dirty = true
			events = append(events, Event{Kind: EventLoadChanged, Region: region, Entry: &ne})
		}
	}
	sh.mu.Unlock()
	s.emitAll(events)
	if len(events) > 0 {
		s.env.CountMessages("publish", len(events))
	}
}

// deleteAll removes every entry describing m from every map, emitting
// EventRemoved per region and metering the deletions under category.
// All of m's entries live in the shard of its current number, so one
// shard lock covers the whole deletion.
func (s *Store) deleteAll(m *can.Member, category string) int {
	st, ok := s.loadMember(m)
	s.members.Delete(m)
	if !ok {
		return 0
	}
	sh := s.shards[s.shardOf(st.number)]
	var events []Event
	sh.mu.Lock()
	for region, rm := range sh.maps {
		if e, ok := rm.entries[m]; ok {
			delete(rm.entries, m)
			rm.dirty = true
			events = append(events, Event{Kind: EventRemoved, Region: region, Entry: e})
		}
	}
	sh.live.Add(int64(-len(events)))
	sh.mu.Unlock()
	s.emitAll(events)
	if len(events) > 0 {
		s.env.CountMessages(category, len(events))
	}
	return len(events)
}

// Remove deletes m's entries from all maps (the proactive departure
// case).
func (s *Store) Remove(m *can.Member) {
	s.deleteAll(m, "publish")
}

// ReportUnreachable implements §5.2's "most reactive case": "departed
// nodes are deleted from the global state only when they are selected as
// routing neighbor replacements and later found un-reachable." The
// selector calls this when a probe to a map candidate times out; all of
// the dead member's entries are purged.
func (s *Store) ReportUnreachable(m *can.Member) {
	s.deleteAll(m, "reactive-delete")
}

// Purge drops a crashed member's entries from every map during repair
// (the ungraceful counterpart of Remove) and returns how many orphaned
// entries were purged. Condensed-map *responsibility* needs no explicit
// reassignment: OwnerOf resolves placement paths through the live split
// tree, so once the crashed member's zone is taken over, its map spots
// are answered by the successor automatically.
func (s *Store) Purge(m *can.Member) int {
	return s.deleteAll(m, "repair")
}

// SweepExpired deletes all entries past their TTL (the periodic-polling
// maintenance mode) and returns how many were dropped. Instrumented
// stores also count the drops in softstate_sweep_expired_total. Shards
// are swept one at a time, so concurrent publishes to other shards never
// wait on the sweep.
func (s *Store) SweepExpired() int {
	now := s.env.Clock().Now()
	dropped := 0
	for _, sh := range s.shards {
		var events []Event
		sh.mu.Lock()
		for region, rm := range sh.maps {
			for m, e := range rm.entries {
				if e.Expires < now {
					delete(rm.entries, m)
					rm.dirty = true
					events = append(events, Event{Kind: EventExpired, Region: region, Entry: e})
				}
			}
		}
		sh.live.Add(int64(-len(events)))
		sh.mu.Unlock()
		s.emitAll(events)
		dropped += len(events)
	}
	if dropped > 0 && s.metrics != nil {
		s.metrics.swept.Add(float64(dropped))
	}
	return dropped
}

// placementPath maps (region, landmark number) to the path of the spot
// inside the region where the entry lives: the region, condensed by
// CondenseDepth zero-bits, extended by the number's bits most significant
// first (the space-filling-curve hash into the region).
func (s *Store) placementPath(region can.Path, number uint64) can.Path {
	p := region
	for i := 0; i < s.cfg.CondenseDepth && p.Len < can.MaxDepth; i++ {
		p = can.Path{Bits: p.Bits, Len: p.Len + 1} // zero bit
	}
	width := s.space.Curve().Dims() * s.space.Curve().Bits()
	for b := width - 1; b >= 0 && p.Len < can.MaxDepth; b-- {
		bit := (number >> uint(b)) & 1
		p = can.Path{Bits: p.Bits | bit<<(63-p.Len), Len: p.Len + 1}
	}
	return p
}

// OwnerOf returns the member whose zone hosts the map spot for (region,
// number).
func (s *Store) OwnerOf(region can.Path, number uint64) *can.Member {
	return s.overlay.CAN().LeafAlong(s.placementPath(region, number))
}

// OwnersOf returns up to k distinct members responsible for the map spot
// of (region, number): the primary owner followed by its successors in
// zone-path order within the region — the in-overlay analogue of the
// wire layer's k ring owners, used for replicated map placement.
func (s *Store) OwnersOf(region can.Path, number uint64, k int) []*can.Member {
	primary := s.OwnerOf(region, number)
	if primary == nil || k < 1 {
		return nil
	}
	ms := s.overlay.CAN().MembersUnder(region)
	idx := -1
	for i, m := range ms {
		if m == primary {
			idx = i
			break
		}
	}
	if idx < 0 {
		return []*can.Member{primary}
	}
	if k > len(ms) {
		k = len(ms)
	}
	out := make([]*can.Member, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, ms[(idx+i)%len(ms)])
	}
	return out
}

// LoseShards models crash-induced shard loss: every entry whose entire
// k-owner chain satisfies down is dropped from its map — the data died
// with its holders, so no removal events fire (nobody is left to
// announce them), but the live-entry gauge is adjusted. Returns the
// number of entries lost. Entries with at least one live owner survive:
// that is what the replicated placement buys.
func (s *Store) LoseShards(down func(*can.Member) bool, k int) int {
	lost := 0
	for _, sh := range s.shards {
		shardLost := 0
		sh.mu.Lock()
		for region, rm := range sh.maps {
			for m, e := range rm.entries {
				allDown := true
				for _, o := range s.OwnersOf(region, e.Number, k) {
					if !down(o) {
						allDown = false
						break
					}
				}
				if allDown {
					delete(rm.entries, m)
					rm.dirty = true
					shardLost++
				}
			}
		}
		sh.live.Add(int64(-shardLost))
		sh.mu.Unlock()
		lost += shardLost
	}
	if lost > 0 && s.metrics != nil {
		s.metrics.live.Add(float64(-lost))
	}
	return lost
}

// LookupCost reports what a lookup spent.
type LookupCost struct {
	// RouteMessages is the overlay messages to reach the map owner (and
	// return): modeled as one request plus one reply.
	RouteMessages int
	// ExpandHops is the number of additional owner shards visited along
	// the curve because the first shard is thin.
	ExpandHops int
}

// catPos addresses one entry in the concatenation of per-shard sorted
// slices: shard ranges are contiguous number ranges, so the
// concatenation is globally number-sorted.
type catPos struct{ sh, i int }

// fwdPos normalizes p to the first populated position at or after it
// (sh == len(slices) marks the back edge).
func fwdPos(slices [][]*Entry, p catPos) catPos {
	for p.sh < len(slices) && p.i >= len(slices[p.sh]) {
		p.sh++
		p.i = 0
	}
	return p
}

// nextPos advances one entry in concatenated order.
func nextPos(slices [][]*Entry, p catPos) catPos {
	p.i++
	return fwdPos(slices, p)
}

// prevPos steps one entry back (sh < 0 marks the front edge).
func prevPos(slices [][]*Entry, p catPos) catPos {
	p.i--
	for p.i < 0 {
		p.sh--
		if p.sh < 0 {
			return catPos{sh: -1}
		}
		p.i = len(slices[p.sh]) - 1
	}
	return p
}

// Lookup implements Table 1: find up to MaxReturn entries of region's map
// closest to vec, by indexing the map with vec's landmark number, widening
// along the curve within ExpandBudget, then sorting by full-vector
// distance. Expired entries are skipped (and left for SweepExpired).
// The queried region must be one of the high-order regions (digit-aligned
// prefixes); for deeper paths the covering region's map is consulted.
func (s *Store) Lookup(region can.Path, vec landmark.Vector) ([]*Entry, LookupCost, error) {
	sp := s.spans.StartRoot("softstate.lookup")
	sp.SetPeer(region.String())
	entries, cost, err := s.lookup(region, vec)
	sp.Finish(span.Outcome(err), cost.ExpandHops, err)
	return entries, cost, err
}

func (s *Store) lookup(region can.Path, vec landmark.Vector) ([]*Entry, LookupCost, error) {
	num, err := s.space.Number(vec)
	if err != nil {
		return nil, LookupCost{}, err
	}
	cost := LookupCost{RouteMessages: 2} // request + reply
	s.env.CountMessages("lookup", 2)

	// Snapshot each shard's sorted view of the region under its own
	// lock; entries are copy-on-write, so the walk below needs no lock.
	slices := make([][]*Entry, len(s.shards))
	total := 0
	for i, sh := range s.shards {
		sh.mu.Lock()
		if rm := sh.maps[region]; rm != nil {
			slices[i] = rm.sortedEntries()
		}
		sh.mu.Unlock()
		total += len(slices[i])
	}
	if total == 0 {
		return nil, cost, nil
	}
	now := s.env.Clock().Now()

	// Position of our number in the concatenated sorted order: hi is the
	// first entry with Number >= num, lo the entry just before it.
	start := s.shardOf(num)
	sl := slices[start]
	raw := catPos{sh: start, i: sort.Search(len(sl), func(k int) bool { return sl[k].Number >= num })}
	hi := fwdPos(slices, raw)
	lo := prevPos(slices, raw)

	// The shard we landed on plus curve-order expansion: walk outward
	// gathering live entries; each time the owner of the next entry
	// differs from the owners already visited, it costs one expand hop.
	owners := map[*can.Member]struct{}{}
	startOwner := s.OwnerOf(region, num)
	if startOwner != nil {
		owners[startOwner] = struct{}{}
	}
	var gathered []*Entry
	visit := func(e *Entry) bool {
		owner := s.OwnerOf(region, e.Number)
		if _, seen := owners[owner]; !seen {
			if cost.ExpandHops >= s.cfg.ExpandBudget {
				return false
			}
			owners[owner] = struct{}{}
			cost.ExpandHops++
			s.env.CountMessages("lookup-expand", 1)
		}
		if e.Expires >= now {
			gathered = append(gathered, e)
		}
		return true
	}
	// Gather up to 3*MaxReturn entries around the index position so the
	// full-vector sort has slack to reorder curve neighbors.
	want := 3 * s.cfg.MaxReturn
	loOK := lo.sh >= 0
	hiOK := hi.sh < len(slices)
	for len(gathered) < want && (loOK || hiOK) {
		// Prefer the side whose number is closer to ours.
		pickLo := false
		switch {
		case !loOK:
		case !hiOK:
			pickLo = true
		default:
			pickLo = num-slices[lo.sh][lo.i].Number <= slices[hi.sh][hi.i].Number-num
		}
		if pickLo {
			if !visit(slices[lo.sh][lo.i]) {
				loOK = false
				continue
			}
			lo = prevPos(slices, lo)
			loOK = lo.sh >= 0
		} else {
			if !visit(slices[hi.sh][hi.i]) {
				hiOK = false
				continue
			}
			hi = nextPos(slices, hi)
			hiOK = hi.sh < len(slices)
		}
	}

	sort.Slice(gathered, func(a, b int) bool {
		da := landmark.Distance(gathered[a].Vector, vec)
		db := landmark.Distance(gathered[b].Vector, vec)
		if da != db {
			return da < db
		}
		return gathered[a].Host < gathered[b].Host
	})
	if len(gathered) > s.cfg.MaxReturn {
		gathered = gathered[:s.cfg.MaxReturn]
	}
	return gathered, cost, nil
}

// EntriesPerOwner distributes every live map entry to its hosting owner
// and returns the per-owner counts (Figure 16's "map entries / node").
func (s *Store) EntriesPerOwner() map[*can.Member]int {
	counts := make(map[*can.Member]int)
	for _, sh := range s.shards {
		sh.mu.Lock()
		for region, rm := range sh.maps {
			for _, e := range rm.entries {
				if owner := s.OwnerOf(region, e.Number); owner != nil {
					counts[owner]++
				}
			}
		}
		sh.mu.Unlock()
	}
	return counts
}

// TotalEntries returns the number of entries across all maps (including
// any not yet swept). Lock-free: it sums the per-shard atomic counters.
func (s *Store) TotalEntries() int {
	var total int64
	for _, sh := range s.shards {
		total += sh.live.Load()
	}
	return int(total)
}

// RegionEntries returns the live entries of one region's map (fresh
// slice, unsorted).
func (s *Store) RegionEntries(region can.Path) []*Entry {
	now := s.env.Clock().Now()
	var out []*Entry
	for _, sh := range s.shards {
		sh.mu.Lock()
		if rm := sh.maps[region]; rm != nil {
			for _, e := range rm.entries {
				if e.Expires >= now {
					out = append(out, e)
				}
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// RefreshAll re-stamps expiry now+TTL on every map entry each published
// member still holds — the simulator analogue of the wire layer's
// batched refresh: a member's refreshes to all of its region maps are
// coalesced into one metered "refresh-batch" message instead of one
// "publish" per map (what per-entry Publish would cost). EventRefreshed
// still fires per entry so subscribers and telemetry see every touch.
// Members behind a publish filter keep their filtered-out regions
// unrefreshed, exactly as Publish would. Each member's refresh takes
// only its number's shard lock. Returns how many entries were refreshed.
func (s *Store) RefreshAll() int {
	now := s.env.Clock().Now()
	refreshed := 0
	batches := 0
	var events []Event
	for _, m := range s.overlay.CAN().Members() {
		st, ok := s.loadMember(m)
		if !ok {
			continue
		}
		num := st.number
		regions := s.regionsOf(m)
		kept := regions[:0]
		dropped := 0
		for _, region := range regions {
			if s.filter != nil && !s.filter(region, num) {
				dropped++
				continue
			}
			kept = append(kept, region)
		}
		events = events[:0]
		sh := s.shards[s.shardOf(num)]
		sh.mu.Lock()
		for _, region := range kept {
			rm := sh.maps[region]
			if rm == nil {
				continue
			}
			e, ok := rm.entries[m]
			if !ok {
				continue
			}
			ne := *e
			ne.Expires = now + s.cfg.TTL
			rm.entries[m] = &ne
			rm.dirty = true
			events = append(events, Event{Kind: EventRefreshed, Region: region, Entry: &ne})
		}
		sh.mu.Unlock()
		s.emitAll(events)
		if dropped > 0 {
			s.env.CountMessages("publish-dropped", dropped)
		}
		if len(events) > 0 {
			batches++
			refreshed += len(events)
		}
	}
	if batches > 0 {
		s.env.CountMessages("refresh-batch", batches)
	}
	return refreshed
}

// PublishAll measures and publishes every overlay member (bulk bootstrap
// used by experiments), optionally assigning capacities via assign.
func (s *Store) PublishAll(assign func(m *can.Member) []PublishOption) error {
	for _, m := range s.overlay.CAN().Members() {
		var opts []PublishOption
		if assign != nil {
			opts = assign(m)
		}
		if err := s.PublishMeasured(m, opts...); err != nil {
			return err
		}
	}
	return nil
}
