package softstate

import (
	"sync"
	"sync/atomic"
	"testing"

	"gsso/internal/can"
	"gsso/internal/ecan"
	"gsso/internal/landmark"
	"gsso/internal/netsim"
	"gsso/internal/simrand"
	"gsso/internal/topology"
)

// harness bundles the full stack for store tests.
type harness struct {
	net     *topology.Network
	env     *netsim.Env
	overlay *ecan.Overlay
	space   *landmark.Space
	store   *Store
}

func newHarness(t testing.TB, members int, cfg Config) *harness {
	t.Helper()
	spec := topology.Spec{
		TransitDomains:        3,
		TransitNodesPerDomain: 4,
		StubsPerTransitNode:   3,
		NodesPerStub:          12,
		ExtraTransitEdgeProb:  0.3,
		ExtraStubEdgeProb:     0.2,
		ExtraInterDomainLinks: 2,
		Latency:               topology.GTITMLatency(),
	}
	net := topology.MustGenerate(spec, simrand.New(1))
	env := netsim.New(net)
	rng := simrand.New(2)
	ov, err := ecan.BuildUniform(net, members, 2, 0, ecan.RandomSelector{RNG: rng.Split("sel")}, rng)
	if err != nil {
		t.Fatal(err)
	}
	set, err := landmark.Choose(net, 8, rng.Split("landmarks"))
	if err != nil {
		t.Fatal(err)
	}
	maxRTT := landmark.EstimateMaxRTT(net, set, net.RandomStubHosts(rng.Split("est"), 30))
	space, err := landmark.NewSpace(set, 3, 5, maxRTT)
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewStore(ov, space, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{net: net, env: env, overlay: ov, space: space, store: store}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"default", func(c *Config) {}, true},
		{"zero-ttl", func(c *Config) { c.TTL = 0 }, false},
		{"negative-condense", func(c *Config) { c.CondenseDepth = -1 }, false},
		{"huge-condense", func(c *Config) { c.CondenseDepth = 33 }, false},
		{"zero-return", func(c *Config) { c.MaxReturn = 0 }, false},
		{"negative-expand", func(c *Config) { c.ExpandBudget = -1 }, false},
		{"zero-shards-defaulted", func(c *Config) { c.Shards = 0 }, true},
		{"one-shard", func(c *Config) { c.Shards = 1 }, true},
		{"pow2-shards", func(c *Config) { c.Shards = 64 }, true},
		{"non-pow2-shards", func(c *Config) { c.Shards = 6 }, false},
		{"negative-shards", func(c *Config) { c.Shards = -2 }, false},
		{"huge-shards", func(c *Config) { c.Shards = maxShardCount * 2 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			err := cfg.validate()
			if (err == nil) != tc.ok {
				t.Fatalf("validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestNewStoreValidation(t *testing.T) {
	h := newHarness(t, 16, DefaultConfig())
	if _, err := NewStore(nil, h.space, h.env, DefaultConfig()); err == nil {
		t.Fatal("nil overlay accepted")
	}
	if _, err := NewStore(h.overlay, nil, h.env, DefaultConfig()); err == nil {
		t.Fatal("nil space accepted")
	}
	if _, err := NewStore(h.overlay, h.space, nil, DefaultConfig()); err == nil {
		t.Fatal("nil env accepted")
	}
	bad := DefaultConfig()
	bad.TTL = -1
	if _, err := NewStore(h.overlay, h.space, h.env, bad); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestPublishPopulatesDigitAlignedRegions(t *testing.T) {
	h := newHarness(t, 32, DefaultConfig())
	m := h.overlay.CAN().Members()[0]
	if err := h.store.PublishMeasured(m); err != nil {
		t.Fatal(err)
	}
	d := h.overlay.DigitLen()
	wantRegions := m.Depth() / d
	found := 0
	for l := d; l <= m.Depth(); l += d {
		region := m.Path().Prefix(l)
		entries := h.store.RegionEntries(region)
		if len(entries) != 1 || entries[0].Member != m {
			t.Fatalf("region %s entries = %v", region, entries)
		}
		found++
	}
	if found != wantRegions {
		t.Fatalf("found %d regions, want %d", found, wantRegions)
	}
	if h.store.TotalEntries() != wantRegions {
		t.Fatalf("TotalEntries = %d, want %d", h.store.TotalEntries(), wantRegions)
	}
	if h.env.Messages("publish") != int64(wantRegions) {
		t.Fatalf("publish messages = %d, want %d", h.env.Messages("publish"), wantRegions)
	}
	if _, ok := h.store.Number(m); !ok {
		t.Fatal("number not recorded")
	}
	if h.store.Vector(m) == nil {
		t.Fatal("vector not recorded")
	}
}

// TestLogNMapsBound asserts §5.1's cost claim: "each node will appear in
// a maximum of log(N) such maps".
func TestLogNMapsBound(t *testing.T) {
	h := newHarness(t, 128, DefaultConfig())
	if err := h.store.PublishAll(nil); err != nil {
		t.Fatal(err)
	}
	d := h.overlay.DigitLen()
	perMember := map[*can.Member]int{}
	for _, m := range h.overlay.CAN().Members() {
		for l := d; l <= m.Depth(); l += d {
			entries := h.store.RegionEntries(m.Path().Prefix(l))
			for _, e := range entries {
				if e.Member == m {
					perMember[m]++
				}
			}
		}
	}
	for m, count := range perMember {
		bound := (m.Depth() + d - 1) / d // ceil(depth / digit) ~ log_{2^d}(N)
		if count > bound {
			t.Fatalf("member %v appears in %d maps, bound %d", m, count, bound)
		}
	}
	if h.store.TotalEntries() > 128*8 {
		t.Fatalf("total entries %d exceed N log N ballpark", h.store.TotalEntries())
	}
}

func TestPublishEventsAndRefresh(t *testing.T) {
	h := newHarness(t, 32, DefaultConfig())
	m := h.overlay.CAN().Members()[0]
	var events []Event
	h.store.SetEventSink(func(ev Event) { events = append(events, ev) })
	if err := h.store.PublishMeasured(m, WithCapacity(4)); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.Kind != EventPublished {
			t.Fatalf("first publish emitted %v", ev.Kind)
		}
		if ev.Entry.Capacity != 4 {
			t.Fatalf("capacity option lost: %v", ev.Entry.Capacity)
		}
	}
	firstCount := len(events)
	if firstCount == 0 {
		t.Fatal("no events emitted")
	}
	events = nil
	h.env.Clock().Advance(10)
	if err := h.store.PublishMeasured(m); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.Kind != EventRefreshed {
			t.Fatalf("re-publish emitted %v", ev.Kind)
		}
		if ev.Entry.Capacity != 4 {
			t.Fatal("capacity not preserved across refresh")
		}
	}
}

func TestRefreshAllBatchesAndRestamps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TTL = 100
	h := newHarness(t, 32, cfg)
	if err := h.store.PublishAll(nil); err != nil {
		t.Fatal(err)
	}
	total := h.store.TotalEntries()
	published := h.env.Messages("publish")

	// Advance close to expiry, then refresh: every entry must survive the
	// sweep afterwards, having been re-stamped from the stored state.
	h.env.Clock().Advance(90)
	var refreshEvents int
	h.store.SetEventSink(func(ev Event) {
		if ev.Kind == EventRefreshed {
			refreshEvents++
		}
	})
	n := h.store.RefreshAll()
	if n != total {
		t.Fatalf("refreshed %d entries, store holds %d", n, total)
	}
	if refreshEvents != total {
		t.Fatalf("%d refresh events for %d entries", refreshEvents, total)
	}
	// The refresh is batched: one refresh-batch message per member, not
	// one publish per region map.
	members := int64(len(h.overlay.CAN().Members()))
	if got := h.env.Messages("refresh-batch"); got != members {
		t.Fatalf("refresh-batch messages = %d, want one per member (%d)", got, members)
	}
	if got := h.env.Messages("publish"); got != published {
		t.Fatalf("refresh spent %d publish messages; must coalesce instead", got-published)
	}

	h.env.Clock().Advance(90) // past the original expiry, before the new one
	if dropped := h.store.SweepExpired(); dropped != 0 {
		t.Fatalf("sweep dropped %d refreshed entries", dropped)
	}
	// Without another refresh the new deadline passes and everything dies.
	h.env.Clock().Advance(20)
	if dropped := h.store.SweepExpired(); dropped != total {
		t.Fatalf("sweep after TTL dropped %d of %d", dropped, total)
	}
	// An empty store refreshes to zero without metering a batch.
	before := h.env.Messages("refresh-batch")
	if n := h.store.RefreshAll(); n != 0 {
		t.Fatalf("refresh of swept store touched %d entries", n)
	}
	if got := h.env.Messages("refresh-batch"); got != before {
		t.Fatal("empty refresh metered a batch message")
	}
}

func TestUpdateLoad(t *testing.T) {
	h := newHarness(t, 32, DefaultConfig())
	m := h.overlay.CAN().Members()[0]
	if err := h.store.PublishMeasured(m); err != nil {
		t.Fatal(err)
	}
	var loadEvents int
	h.store.SetEventSink(func(ev Event) {
		if ev.Kind == EventLoadChanged {
			loadEvents++
			if ev.Entry.Load != 0.75 {
				t.Fatalf("load = %v", ev.Entry.Load)
			}
		}
	})
	h.store.UpdateLoad(m, 0.75)
	if loadEvents == 0 {
		t.Fatal("no load events")
	}
	// Unpublished member: no events, no crash.
	other := h.overlay.CAN().Members()[1]
	loadEvents = 0
	h.store.UpdateLoad(other, 0.5)
	if loadEvents != 0 {
		t.Fatal("unpublished member emitted load events")
	}
}

func TestRemove(t *testing.T) {
	h := newHarness(t, 32, DefaultConfig())
	m := h.overlay.CAN().Members()[0]
	if err := h.store.PublishMeasured(m); err != nil {
		t.Fatal(err)
	}
	removed := 0
	h.store.SetEventSink(func(ev Event) {
		if ev.Kind == EventRemoved {
			removed++
		}
	})
	h.store.Remove(m)
	if h.store.TotalEntries() != 0 {
		t.Fatalf("entries remain: %d", h.store.TotalEntries())
	}
	if removed == 0 {
		t.Fatal("no removal events")
	}
	if h.store.Vector(m) != nil {
		t.Fatal("vector not cleared")
	}
}

func TestSweepExpired(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TTL = 100
	h := newHarness(t, 32, cfg)
	m := h.overlay.CAN().Members()[0]
	if err := h.store.PublishMeasured(m); err != nil {
		t.Fatal(err)
	}
	if dropped := h.store.SweepExpired(); dropped != 0 {
		t.Fatalf("fresh entries swept: %d", dropped)
	}
	h.env.Clock().Advance(101)
	expired := 0
	h.store.SetEventSink(func(ev Event) {
		if ev.Kind == EventExpired {
			expired++
		}
	})
	dropped := h.store.SweepExpired()
	if dropped == 0 || expired != dropped {
		t.Fatalf("dropped %d, events %d", dropped, expired)
	}
	if h.store.TotalEntries() != 0 {
		t.Fatal("expired entries remain")
	}
}

func TestLookupSkipsExpired(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TTL = 100
	h := newHarness(t, 64, cfg)
	if err := h.store.PublishAll(nil); err != nil {
		t.Fatal(err)
	}
	m := h.overlay.CAN().Members()[0]
	region := can.Path{}.Prefix(0)
	region = m.Path().Prefix(h.overlay.DigitLen())
	vec := h.store.Vector(m)
	before, _, err := h.store.Lookup(region, vec)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) == 0 {
		t.Fatal("no entries before expiry")
	}
	h.env.Clock().Advance(101)
	after, _, err := h.store.Lookup(region, vec)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 0 {
		t.Fatalf("expired entries returned: %d", len(after))
	}
}

func TestLookupReturnsClosestByVector(t *testing.T) {
	h := newHarness(t, 128, DefaultConfig())
	if err := h.store.PublishAll(nil); err != nil {
		t.Fatal(err)
	}
	m := h.overlay.CAN().Members()[0]
	vec := h.store.Vector(m)
	d := h.overlay.DigitLen()
	region := m.Path().Prefix(d)
	entries, cost, err := h.store.Lookup(region, vec)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no entries")
	}
	if len(entries) > h.store.Config().MaxReturn {
		t.Fatalf("returned %d > MaxReturn", len(entries))
	}
	if cost.RouteMessages != 2 {
		t.Fatalf("RouteMessages = %d", cost.RouteMessages)
	}
	if cost.ExpandHops > h.store.Config().ExpandBudget {
		t.Fatalf("ExpandHops %d exceeds budget", cost.ExpandHops)
	}
	// Returned entries sorted by full-vector distance.
	for i := 1; i < len(entries); i++ {
		if landmark.Distance(entries[i-1].Vector, vec) > landmark.Distance(entries[i].Vector, vec) {
			t.Fatal("entries not sorted by vector distance")
		}
	}
	// All entries belong to the queried region.
	for _, e := range entries {
		if !e.Member.Path().HasPrefix(region) {
			t.Fatalf("entry %v outside region %s", e.Member, region)
		}
	}
}

func TestLookupEmptyRegion(t *testing.T) {
	h := newHarness(t, 32, DefaultConfig())
	m := h.overlay.CAN().Members()[0]
	if err := h.store.PublishMeasured(m); err != nil {
		t.Fatal(err)
	}
	// A region that exists but no-one published into: use a non-aligned path.
	odd := m.Path().Prefix(1)
	entries, _, err := h.store.Lookup(odd, h.store.Vector(m))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatal("entries from unpublished region")
	}
}

func TestLookupQuality(t *testing.T) {
	// The top lookup result should be physically closer than the average
	// region member — the whole point of the mechanism.
	h := newHarness(t, 128, DefaultConfig())
	if err := h.store.PublishAll(nil); err != nil {
		t.Fatal(err)
	}
	members := h.overlay.CAN().Members()
	d := h.overlay.DigitLen()
	better, worse := 0, 0
	for _, m := range members[:40] {
		// Query the sibling digit region (what neighbor selection does).
		myDigit := 0
		for b := 0; b < d; b++ {
			myDigit = myDigit<<1 | m.Path().Bit(b)
		}
		region := m.Path().Prefix(0)
		for b := d - 1; b >= 0; b-- {
			bit := ((myDigit ^ 1) >> b) & 1
			region = can.Path{Bits: region.Bits | uint64(bit)<<(63-region.Len), Len: region.Len + 1}
		}
		cands := h.overlay.RegionMembers(region)
		if len(cands) < 4 {
			continue
		}
		entries, _, err := h.store.Lookup(region, h.store.Vector(m))
		if err != nil || len(entries) == 0 {
			continue
		}
		top := h.env.Latency(m.Host, entries[0].Host)
		avg := 0.0
		for _, c := range cands {
			avg += h.env.Latency(m.Host, c.Host)
		}
		avg /= float64(len(cands))
		if top < avg {
			better++
		} else {
			worse++
		}
	}
	if better <= worse*2 {
		t.Fatalf("lookup top candidate rarely beats region average: %d vs %d", better, worse)
	}
	t.Logf("top lookup candidate beat region average %d/%d times", better, better+worse)
}

func TestPlacementDeterministicAndCondensed(t *testing.T) {
	h := newHarness(t, 32, DefaultConfig())
	region := h.overlay.CAN().Members()[0].Path().Prefix(2)
	p1 := h.store.placementPath(region, 12345)
	p2 := h.store.placementPath(region, 12345)
	if p1 != p2 {
		t.Fatal("placement not deterministic")
	}
	if !p1.HasPrefix(region) {
		t.Fatal("placement escapes the region")
	}
	// Condensed store: placement confined to the zero sub-block.
	cfg := DefaultConfig()
	cfg.CondenseDepth = 3
	condensed, err := NewStore(h.overlay, h.space, h.env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pc := condensed.placementPath(region, ^uint64(0))
	for i := 0; i < 3; i++ {
		if pc.Bit(region.Len+i) != 0 {
			t.Fatal("condense bits not zero")
		}
	}
}

func TestOwnerOfStable(t *testing.T) {
	h := newHarness(t, 64, DefaultConfig())
	region := h.overlay.CAN().Members()[0].Path().Prefix(2)
	o1 := h.store.OwnerOf(region, 999)
	o2 := h.store.OwnerOf(region, 999)
	if o1 == nil || o1 != o2 {
		t.Fatalf("owner unstable: %v vs %v", o1, o2)
	}
	if !o1.Path().HasPrefix(region) && !region.HasPrefix(o1.Path()) {
		t.Fatal("owner unrelated to region")
	}
}

func TestCondenseConcentratesEntries(t *testing.T) {
	build := func(condense int) (maxPerOwner int, owners int) {
		cfg := DefaultConfig()
		cfg.CondenseDepth = condense
		h := newHarness(t, 128, cfg)
		if err := h.store.PublishAll(nil); err != nil {
			t.Fatal(err)
		}
		counts := h.store.EntriesPerOwner()
		total := 0
		for _, c := range counts {
			total += c
			if c > maxPerOwner {
				maxPerOwner = c
			}
		}
		if total != h.store.TotalEntries() {
			t.Fatalf("per-owner counts sum %d != total %d", total, h.store.TotalEntries())
		}
		return maxPerOwner, len(counts)
	}
	maxSpread, ownersSpread := build(0)
	maxCond, ownersCond := build(6)
	t.Logf("condense=0: max/owner %d over %d owners; condense=6: max/owner %d over %d owners",
		maxSpread, ownersSpread, maxCond, ownersCond)
	if ownersCond > ownersSpread {
		t.Fatal("condensing increased the owner population")
	}
	if maxCond < maxSpread {
		t.Fatal("condensing did not concentrate entries")
	}
}

func TestSelectorValidation(t *testing.T) {
	h := newHarness(t, 16, DefaultConfig())
	if _, err := NewSelector(nil, 5, nil); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := NewSelector(h.store, 0, nil); err == nil {
		t.Fatal("zero budget accepted")
	}
	s, err := NewSelector(h.store, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Budget() != 5 {
		t.Fatal("budget accessor wrong")
	}
}

func TestSelectorRespectsBudget(t *testing.T) {
	h := newHarness(t, 128, DefaultConfig())
	if err := h.store.PublishAll(nil); err != nil {
		t.Fatal(err)
	}
	sel, err := NewSelector(h.store, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := h.overlay.CAN().Members()[0]
	d := h.overlay.DigitLen()
	region := m.Path().Prefix(d) // sibling-ish region; content guaranteed
	cands := h.overlay.RegionMembers(region)
	h.env.ResetProbes()
	got := sel.Select(m, region, cands)
	if got == nil {
		t.Fatal("selector returned nil")
	}
	if h.env.Probes() > 3 {
		t.Fatalf("selector used %d probes, budget 3", h.env.Probes())
	}
}

func TestSelectorFallsBackWithoutVector(t *testing.T) {
	h := newHarness(t, 32, DefaultConfig())
	fallbackUsed := false
	fb := ecan.FuncSelector(func(self *can.Member, region can.Path, cands []*can.Member) *can.Member {
		fallbackUsed = true
		return cands[0]
	})
	sel, err := NewSelector(h.store, 3, fb)
	if err != nil {
		t.Fatal(err)
	}
	m := h.overlay.CAN().Members()[0] // never published
	got := sel.Select(m, m.Path().Prefix(2), h.overlay.CAN().Members())
	if !fallbackUsed || got == nil {
		t.Fatal("fallback not used for unpublished node")
	}
}

func TestSelectorNilFallbackUsesFirstCandidate(t *testing.T) {
	h := newHarness(t, 32, DefaultConfig())
	sel, _ := NewSelector(h.store, 3, nil)
	m := h.overlay.CAN().Members()[0]
	cands := h.overlay.CAN().Members()
	if got := sel.Select(m, m.Path().Prefix(2), cands); got != cands[0] {
		t.Fatal("nil fallback did not use first candidate")
	}
	if got := sel.Select(m, m.Path().Prefix(2), nil); got != nil {
		t.Fatal("empty candidates should return nil")
	}
}

func TestEndToEndStretchOrdering(t *testing.T) {
	// random >= softstate >= optimal, the paper's headline ordering.
	h := newHarness(t, 128, DefaultConfig())
	if err := h.store.PublishAll(nil); err != nil {
		t.Fatal(err)
	}
	measure := func(sel ecan.Selector) float64 {
		h.overlay.SetSelector(sel)
		members := h.overlay.CAN().Members()
		rng := simrand.New(123)
		total, count := 0.0, 0
		for i := 0; i < 300; i++ {
			src := members[rng.Intn(len(members))]
			dst := members[rng.Intn(len(members))]
			if src == dst || src.Host == dst.Host {
				continue
			}
			res, err := h.overlay.Route(src, dst.ZoneCenter())
			if err != nil {
				t.Fatal(err)
			}
			direct := h.env.Latency(src.Host, dst.Host)
			if direct <= 0 {
				continue
			}
			total += res.Latency(h.env) / direct
			count++
		}
		return total / float64(count)
	}
	randomStretch := measure(ecan.RandomSelector{RNG: simrand.New(5)})
	ssSel, err := NewSelector(h.store, 10, ecan.RandomSelector{RNG: simrand.New(6)})
	if err != nil {
		t.Fatal(err)
	}
	ssStretch := measure(ssSel)
	optStretch := measure(ecan.ClosestSelector{Env: h.env})
	t.Logf("stretch: random %.3f, softstate %.3f, optimal %.3f", randomStretch, ssStretch, optStretch)
	// Soft-state must decisively beat random and land near the oracle.
	// (Per-hop-greedy "optimal" is not globally optimal over multi-hop
	// routes, so tiny inversions between it and softstate are legitimate.)
	if ssStretch >= randomStretch*0.8 {
		t.Fatalf("softstate %.3f not clearly better than random %.3f", ssStretch, randomStretch)
	}
	if optStretch >= randomStretch*0.8 {
		t.Fatalf("optimal %.3f not clearly better than random %.3f", optStretch, randomStretch)
	}
	gapToOracle := ssStretch - optStretch
	if gapToOracle > (randomStretch-optStretch)*0.3 {
		t.Fatalf("softstate %.3f too far from oracle %.3f (random %.3f)",
			ssStretch, optStretch, randomStretch)
	}
}

// TestShardEquivalence runs the same workload on a single-lock store and
// a sharded one: lookups must return the same members in the same order
// (shard ranges are contiguous, so concatenated order equals global
// order).
func TestShardEquivalence(t *testing.T) {
	cfg1 := DefaultConfig()
	cfg1.Shards = 1
	cfg8 := DefaultConfig()
	cfg8.Shards = 8
	h1 := newHarness(t, 48, cfg1)
	h8 := newHarness(t, 48, cfg8)
	if err := h1.store.PublishAll(nil); err != nil {
		t.Fatal(err)
	}
	if err := h8.store.PublishAll(nil); err != nil {
		t.Fatal(err)
	}
	if a, b := h1.store.TotalEntries(), h8.store.TotalEntries(); a != b {
		t.Fatalf("TotalEntries: single-lock %d, sharded %d", a, b)
	}
	members := h1.overlay.CAN().Members()
	for i := 0; i < len(members); i += 5 {
		m := members[i]
		vec := h1.store.Vector(m)
		for _, region := range h1.store.regionsOf(m) {
			e1, _, err := h1.store.Lookup(region, vec)
			if err != nil {
				t.Fatal(err)
			}
			e8, _, err := h8.store.Lookup(region, vec)
			if err != nil {
				t.Fatal(err)
			}
			if len(e1) != len(e8) {
				t.Fatalf("region %v: single-lock returned %d, sharded %d", region, len(e1), len(e8))
			}
			for j := range e1 {
				if e1[j].Host != e8[j].Host {
					t.Fatalf("region %v result %d: single-lock host %d, sharded host %d",
						region, j, e1[j].Host, e8[j].Host)
				}
			}
		}
	}
}

// TestShardRelocationOnRepublish republishes a member with a vector
// landing in a different shard and checks the old shard keeps no stale
// entries: Remove afterwards must find everything.
func TestShardRelocationOnRepublish(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 8
	h := newHarness(t, 16, cfg)
	m := h.overlay.CAN().Members()[0]
	dims := len(landmark.Measure(h.env, m.Host, h.space.Set()))
	low := make(landmark.Vector, dims)
	high := make(landmark.Vector, dims)
	for i := range high {
		high[i] = h.space.MaxRTT() * 0.9
	}
	if err := h.store.Publish(m, low, WithCapacity(4)); err != nil {
		t.Fatal(err)
	}
	numLow, _ := h.store.Number(m)
	if err := h.store.Publish(m, high); err != nil {
		t.Fatal(err)
	}
	numHigh, _ := h.store.Number(m)
	if h.store.shardOf(numLow) == h.store.shardOf(numHigh) {
		t.Fatalf("test vectors landed in the same shard (%d): numbers %d vs %d",
			h.store.shardOf(numLow), numLow, numHigh)
	}
	want := len(h.store.regionsOf(m))
	if got := h.store.TotalEntries(); got != want {
		t.Fatalf("TotalEntries after relocation = %d, want %d", got, want)
	}
	// Capacity must survive the move (carried from the old shard's entry).
	for _, e := range h.store.RegionEntries(h.store.regionsOf(m)[0]) {
		if e.Member == m && e.Capacity != 4 {
			t.Fatalf("capacity lost in relocation: %v", e.Capacity)
		}
	}
	h.store.Remove(m)
	if got := h.store.TotalEntries(); got != 0 {
		t.Fatalf("%d entries survive removal after relocation", got)
	}
}

// TestStoreConcurrentHammer drives publishes, refreshes, load updates,
// lookups, sweeps, and removals from many goroutines at once. Run under
// -race this is the store's concurrency contract test; the final state
// must also be internally consistent.
func TestStoreConcurrentHammer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 8
	h := newHarness(t, 64, cfg)
	s := h.store
	var eventCount atomic.Int64
	s.SetEventSink(func(Event) { eventCount.Add(1) })
	members := h.overlay.CAN().Members()
	if err := s.PublishAll(nil); err != nil {
		t.Fatal(err)
	}

	const rounds = 40
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				m := members[(w*rounds+i)%len(members)]
				if err := s.PublishMeasured(m); err != nil {
					t.Errorf("publish: %v", err)
					return
				}
				s.UpdateLoad(m, float64(i))
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				m := members[(w*rounds+3*i)%len(members)]
				region := s.regionsOf(m)[0]
				vec := landmark.Measure(h.env, m.Host, h.space.Set())
				if _, _, err := s.Lookup(region, vec); err != nil {
					t.Errorf("lookup: %v", err)
					return
				}
				_ = s.TotalEntries()
				_ = s.RegionEntries(region)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/4; i++ {
			s.RefreshAll()
			s.SweepExpired()
			_ = s.EntriesPerOwner()
		}
	}()
	wg.Wait()

	if eventCount.Load() == 0 {
		t.Fatal("no events reached the sink")
	}
	// Consistency: atomic counters must agree with a full recount.
	recount := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, rm := range sh.maps {
			recount += len(rm.entries)
		}
		sh.mu.Unlock()
	}
	if got := s.TotalEntries(); got != recount {
		t.Fatalf("TotalEntries = %d, recount = %d", got, recount)
	}
	// Every member published; nothing expired (TTL 60s, no clock advance)
	// and nothing was removed, so exactly one entry per enclosing region
	// per member must remain.
	want := 0
	for _, m := range members {
		want += len(s.regionsOf(m))
	}
	if recount != want {
		t.Fatalf("recount = %d, want %d entries", recount, want)
	}
}
