// Package stats provides small numeric helpers used by the experiment
// harness: summary statistics, percentiles, CDFs, and accumulators.
//
// All functions treat their input slices as read-only and never retain
// references to them, per the library's boundary rules.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between order statistics. It returns 0 for an empty slice
// and clamps p into [0,100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary holds the standard descriptive statistics for a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P95    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary over xs. A zero-length input yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    sorted[0],
		P25:    percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		P75:    percentileSorted(sorted, 75),
		P95:    percentileSorted(sorted, 95),
		P99:    percentileSorted(sorted, 99),
		Max:    sorted[len(sorted)-1],
	}
}

// String renders the summary on one line for experiment logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g min=%.4g p50=%.4g p95=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.P95, s.Max)
}

// CDFPoint is one (x, F(x)) point of an empirical CDF.
type CDFPoint struct {
	X float64
	F float64
}

// CDF returns the empirical CDF of xs evaluated at every distinct sample
// value, in increasing x order. F is the fraction of samples <= X.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, 0, len(sorted))
	n := float64(len(sorted))
	for i := 0; i < len(sorted); i++ {
		// Collapse runs of equal values into a single point at the run end.
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		out = append(out, CDFPoint{X: sorted[i], F: float64(i+1) / n})
	}
	return out
}

// Accumulator ingests values one at a time with O(1) memory for the
// mean/min/max/count and optional retention of raw samples for percentiles.
type Accumulator struct {
	keep    bool
	samples []float64
	n       int
	sum     float64
	sumSq   float64
	min     float64
	max     float64
}

// NewAccumulator returns an Accumulator. If keepSamples is true the raw
// values are retained so Percentile and Summary are available.
func NewAccumulator(keepSamples bool) *Accumulator {
	return &Accumulator{keep: keepSamples, min: math.Inf(1), max: math.Inf(-1)}
}

// Add ingests one value.
func (a *Accumulator) Add(x float64) {
	a.n++
	a.sum += x
	a.sumSq += x * x
	if x < a.min {
		a.min = x
	}
	if x > a.max {
		a.max = x
	}
	if a.keep {
		a.samples = append(a.samples, x)
	}
}

// N returns the number of ingested values.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean, or 0 when empty.
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// StdDev returns the running population standard deviation.
func (a *Accumulator) StdDev() float64 {
	if a.n < 2 {
		return 0
	}
	m := a.Mean()
	v := a.sumSq/float64(a.n) - m*m
	if v < 0 {
		v = 0 // guard against floating point cancellation
	}
	return math.Sqrt(v)
}

// Min returns the smallest ingested value, or +Inf when empty.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest ingested value, or -Inf when empty.
func (a *Accumulator) Max() float64 { return a.max }

// Percentile returns the p-th percentile of retained samples. It panics if
// the accumulator was created without sample retention.
func (a *Accumulator) Percentile(p float64) float64 {
	if !a.keep {
		panic("stats: Percentile on non-retaining Accumulator")
	}
	return Percentile(a.samples, p)
}

// Summary returns the descriptive statistics of retained samples. It panics
// if the accumulator was created without sample retention.
func (a *Accumulator) Summary() Summary {
	if !a.keep {
		panic("stats: Summary on non-retaining Accumulator")
	}
	return Summarize(a.samples)
}
