package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, 1, -3, 3}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Mean(tc.in); !almostEqual(got, tc.want, 1e-12) {
				t.Fatalf("Mean(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{1}); got != 0 {
		t.Fatalf("Variance single = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -2, 9, 0}
	if got := Min(xs); got != -2 {
		t.Fatalf("Min = %v", got)
	}
	if got := Max(xs); got != 9 {
		t.Fatalf("Max = %v", got)
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max should be infinities")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		p, want float64
	}{
		{0, 10}, {25, 20}, {50, 30}, {75, 40}, {100, 50}, {10, 14},
		{-5, 10}, {120, 50}, // clamped
	}
	for _, tc := range cases {
		if got := Percentile(xs, tc.p); !almostEqual(got, tc.want, 1e-9) {
			t.Fatalf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	if got := Percentile([]float64{7}, 93); got != 7 {
		t.Fatalf("single percentile = %v", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{1, 3, 2}); got != 2 {
		t.Fatalf("Median = %v", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("Median even = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Summarize(xs)
	if s.N != 10 || !almostEqual(s.Mean, 5.5, 1e-12) || s.Min != 1 || s.Max != 10 {
		t.Fatalf("bad summary: %+v", s)
	}
	if !almostEqual(s.Median, 5.5, 1e-9) {
		t.Fatalf("median = %v", s.Median)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary should be zero")
	}
	if s.String() == "" {
		t.Fatal("String should be non-empty")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{1, 1, 2, 3})
	want := []CDFPoint{{1, 0.5}, {2, 0.75}, {3, 1}}
	if len(pts) != len(want) {
		t.Fatalf("CDF = %v", pts)
	}
	for i := range want {
		if pts[i].X != want[i].X || !almostEqual(pts[i].F, want[i].F, 1e-12) {
			t.Fatalf("point %d = %v, want %v", i, pts[i], want[i])
		}
	}
	if CDF(nil) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
		}
		pts := CDF(raw)
		for i := 1; i < len(pts); i++ {
			if pts[i].X <= pts[i-1].X || pts[i].F < pts[i-1].F {
				return false
			}
		}
		return len(raw) == 0 || pts[len(pts)-1].F == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	xs := []float64{4, 8, 15, 16, 23, 42}
	a := NewAccumulator(true)
	for _, x := range xs {
		a.Add(x)
	}
	if a.N() != len(xs) {
		t.Fatalf("N = %d", a.N())
	}
	if !almostEqual(a.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("mean %v vs %v", a.Mean(), Mean(xs))
	}
	if !almostEqual(a.StdDev(), StdDev(xs), 1e-9) {
		t.Fatalf("sd %v vs %v", a.StdDev(), StdDev(xs))
	}
	if a.Min() != 4 || a.Max() != 42 {
		t.Fatalf("min/max %v/%v", a.Min(), a.Max())
	}
	if !almostEqual(a.Percentile(50), Median(xs), 1e-9) {
		t.Fatalf("p50 %v", a.Percentile(50))
	}
	if got := a.Summary(); got.N != len(xs) {
		t.Fatalf("summary N = %d", got.N)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	a := NewAccumulator(false)
	if a.Mean() != 0 || a.StdDev() != 0 || a.N() != 0 {
		t.Fatal("empty accumulator should be zeroed")
	}
}

func TestAccumulatorPanicsWithoutRetention(t *testing.T) {
	a := NewAccumulator(false)
	a.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Percentile(50)
}

func TestAccumulatorStdDevNonNegative(t *testing.T) {
	// Identical large values can make the naive variance formula go
	// slightly negative; the accumulator must clamp it.
	a := NewAccumulator(false)
	for i := 0; i < 100; i++ {
		a.Add(1e9 + 0.1)
	}
	if sd := a.StdDev(); sd < 0 || math.IsNaN(sd) {
		t.Fatalf("StdDev = %v", sd)
	}
}

func TestPercentileAgainstQuickProperty(t *testing.T) {
	// Percentile(0) == min, Percentile(100) == max, monotone in p.
	f := func(raw []float64, p8 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = float64(i)
			}
		}
		p := float64(p8) / 255 * 100
		v := Percentile(raw, p)
		return v >= Min(raw)-1e-9 && v <= Max(raw)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
