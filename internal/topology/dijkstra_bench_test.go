package topology

import (
	"math"
	"testing"

	"gsso/internal/simrand"
)

// benchGraph builds a connected random graph shaped like one of the
// generator's workloads: n nodes, ~3n edges.
func benchGraph(n int) *Graph {
	rng := simrand.New(7)
	g := NewGraph(n)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(NodeID(i), NodeID(rng.Intn(i)), rng.Range(0.5, 20)); err != nil {
			panic(err)
		}
	}
	for e := 0; e < 2*n; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			_ = g.AddEdge(NodeID(u), NodeID(v), rng.Range(0.5, 20))
		}
	}
	return g
}

// TestDijkstraIntoMatchesDijkstra pins the scratch-reuse path to the
// allocating one, including across reuses of the same scratch and dist.
func TestDijkstraIntoMatchesDijkstra(t *testing.T) {
	g := benchGraph(200)
	var scratch DijkstraScratch
	dist := make([]float64, g.Len())
	for src := NodeID(0); src < 20; src++ {
		want := g.Dijkstra(src)
		g.DijkstraInto(src, dist, &scratch)
		for i := range want {
			if math.Abs(dist[i]-want[i]) > 1e-12 {
				t.Fatalf("src %d: DijkstraInto[%d] = %v, Dijkstra = %v", src, i, dist[i], want[i])
			}
		}
	}
	// nil scratch must also work.
	g.DijkstraInto(0, dist, nil)
	if dist[0] != 0 {
		t.Fatalf("nil-scratch dist[src] = %v, want 0", dist[0])
	}
}

func TestDijkstraIntoRejectsWrongLength(t *testing.T) {
	g := benchGraph(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong dist length")
		}
	}()
	g.DijkstraInto(0, make([]float64, 5), nil)
}

// BenchmarkDijkstra is the old interface: a fresh dist slice and a fresh
// heap every call.
func BenchmarkDijkstra(b *testing.B) {
	g := benchGraph(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Dijkstra(NodeID(i % g.Len()))
	}
}

// BenchmarkDijkstraInto reuses one dist slice and one scratch across
// sources, the way Generate's all-pairs loops do.
func BenchmarkDijkstraInto(b *testing.B) {
	g := benchGraph(1000)
	dist := make([]float64, g.Len())
	var scratch DijkstraScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.DijkstraInto(NodeID(i%g.Len()), dist, &scratch)
	}
}
