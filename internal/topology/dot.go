package topology

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT renders the topology in Graphviz DOT form: transit nodes as
// boxes grouped per domain, stub hosts as points clustered per stub
// domain, edges labeled with their latency. Intended for inspecting
// small (scaled-down) topologies; a full ~10k-host graph renders but is
// unreadable.
func (n *Network) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph topology {")
	fmt.Fprintln(bw, "  graph [overlap=false];")
	fmt.Fprintln(bw, "  node [shape=point, width=0.08];")

	// Transit domains as clusters of boxes.
	perDomain := make(map[int][]NodeID)
	for id := NodeID(0); int(id) < n.transitCount; id++ {
		d := n.nodes[id].Domain
		perDomain[d] = append(perDomain[d], id)
	}
	for d := 0; d < n.spec.TransitDomains; d++ {
		fmt.Fprintf(bw, "  subgraph cluster_transit_%d {\n", d)
		fmt.Fprintf(bw, "    label=\"transit %d\";\n", d)
		for _, id := range perDomain[d] {
			fmt.Fprintf(bw, "    n%d [shape=box, width=0.2, label=\"t%d\"];\n", id, id)
		}
		fmt.Fprintln(bw, "  }")
	}

	// Stub domains as clusters of points.
	for si, sd := range n.stubs {
		fmt.Fprintf(bw, "  subgraph cluster_stub_%d {\n", si)
		fmt.Fprintf(bw, "    label=\"stub %d\";\n", si)
		for k := 0; k < sd.size; k++ {
			fmt.Fprintf(bw, "    n%d;\n", int(sd.first)+k)
		}
		fmt.Fprintln(bw, "  }")
	}

	// Edges, deduplicated by emitting only u < v.
	for u := NodeID(0); int(u) < len(n.nodes); u++ {
		for _, arc := range n.graph.Neighbors(u) {
			if arc.To <= u {
				continue
			}
			fmt.Fprintf(bw, "  n%d -- n%d [label=\"%.1f\"];\n", u, arc.To, arc.W)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
