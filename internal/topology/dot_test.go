package topology

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"gsso/internal/simrand"
)

func TestWriteDOT(t *testing.T) {
	net := MustGenerate(tinySpec(GTITMLatency()), simrand.New(1))
	var buf bytes.Buffer
	if err := net.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph topology {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatal("not a DOT graph")
	}
	// Every transit domain and stub appears as a cluster.
	for d := 0; d < net.Spec().TransitDomains; d++ {
		if !strings.Contains(out, fmt.Sprintf("cluster_transit_%d", d)) {
			t.Fatalf("transit cluster %d missing", d)
		}
	}
	for s := 0; s < net.StubCount(); s++ {
		if !strings.Contains(out, fmt.Sprintf("cluster_stub_%d", s)) {
			t.Fatalf("stub cluster %d missing", s)
		}
	}
	// Edge count matches the graph (each undirected edge emitted once).
	if got, want := strings.Count(out, " -- "), net.Graph().EdgeCount(); got != want {
		t.Fatalf("DOT has %d edges, graph has %d", got, want)
	}
	// Every node is mentioned.
	for id := 0; id < net.Len(); id++ {
		if !strings.Contains(out, fmt.Sprintf("n%d", id)) {
			t.Fatalf("node %d missing", id)
		}
	}
}
