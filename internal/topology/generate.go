package topology

import (
	"fmt"

	"gsso/internal/simrand"
)

// Generate builds a transit-stub network from spec, deterministically from
// rng. The construction follows GT-ITM's model:
//
//  1. Each transit domain is a connected random graph of transit nodes.
//  2. Transit domains are interconnected by a random spanning tree plus
//     extra random cross-domain links.
//  3. Each transit node sponsors StubsPerTransitNode stub domains; each
//     stub is a connected random graph of hosts, single-homed to its
//     transit node through the stub's gateway host (the stub's first host).
//
// Node IDs are assigned densely: transit nodes first (domain by domain),
// then stub hosts (stub by stub, contiguous within a stub).
func Generate(spec Spec, rng *simrand.Source) (*Network, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	transitCount := spec.TransitDomains * spec.TransitNodesPerDomain
	total := spec.TotalNodes()

	net := &Network{
		spec:         spec,
		graph:        NewGraph(total),
		nodes:        make([]Node, total),
		transitCount: transitCount,
	}
	latRNG := rng.Split("latency")
	wireRNG := rng.Split("wiring")

	// Transit nodes and intra-domain backbones.
	backbone := NewGraph(transitCount)
	domains := make([][]NodeID, spec.TransitDomains)
	next := NodeID(0)
	for d := 0; d < spec.TransitDomains; d++ {
		ids := make([]NodeID, spec.TransitNodesPerDomain)
		for i := range ids {
			ids[i] = next
			net.nodes[next] = Node{ID: next, Class: ClassTransit, Domain: d, Stub: -1}
			next++
		}
		domains[d] = ids
		if err := net.randomConnected(backbone, ids, spec.ExtraTransitEdgeProb,
			spec.Latency.IntraTransit, LinkIntraTransit, wireRNG, latRNG); err != nil {
			return nil, err
		}
	}

	// Inter-domain links: spanning tree over domains plus extras.
	if err := net.wireDomains(backbone, domains, wireRNG, latRNG); err != nil {
		return nil, err
	}

	// Backbone all-pairs distances. Independent Dijkstra runs can disagree
	// in the last ulp between d(a,b) and d(b,a); mirror the upper triangle
	// so the matrix is exactly symmetric.
	net.transitDist = make([]float64, transitCount*transitCount)
	var scratch DijkstraScratch
	for t := 0; t < transitCount; t++ {
		backbone.DijkstraInto(NodeID(t), net.transitDist[t*transitCount:(t+1)*transitCount], &scratch)
	}
	for t := 0; t < transitCount; t++ {
		for u := t + 1; u < transitCount; u++ {
			net.transitDist[u*transitCount+t] = net.transitDist[t*transitCount+u]
		}
	}

	// Stub domains. Oversized stubs (see Spec.HubStubThreshold) take the
	// factored hub-and-spoke path; preset-sized stubs keep the exact dense
	// path, bit-identical to the pre-threshold implementation.
	stubTotal := spec.TotalStubs()
	hub := spec.NodesPerStub > spec.hubThreshold()
	net.stubs = make([]stubDomain, 0, stubTotal)
	ids := make([]NodeID, spec.NodesPerStub)
	for t := 0; t < transitCount; t++ {
		for k := 0; k < spec.StubsPerTransitNode; k++ {
			stubIdx := len(net.stubs)
			first := next
			for i := range ids {
				ids[i] = next
				net.nodes[next] = Node{
					ID:     next,
					Class:  ClassStub,
					Domain: net.nodes[t].Domain,
					Stub:   stubIdx,
				}
				next++
			}
			sd := stubDomain{
				first:   first,
				size:    spec.NodesPerStub,
				gateway: NodeID(t),
			}
			if hub {
				// Hub-and-spoke: every host wired straight to the stub's
				// local hub (host 0), one intra-stub latency draw per
				// spoke. The factored egress array IS the distance
				// structure; no local Dijkstra, no dense matrix.
				sd.egress = make([]float64, spec.NodesPerStub)
				for i := 1; i < spec.NodesPerStub; i++ {
					w := spec.Latency.IntraStub.Draw(latRNG)
					if err := net.graph.AddEdge(ids[0], ids[i], w); err != nil {
						return nil, err
					}
					net.edgeCounts[LinkIntraStub]++
					sd.egress[i] = w
				}
			} else {
				local := NewGraph(spec.NodesPerStub)
				if err := net.randomConnectedLocal(local, ids, first, spec.ExtraStubEdgeProb,
					spec.Latency.IntraStub, wireRNG, latRNG); err != nil {
					return nil, err
				}
				sd.dist = make([]float64, spec.NodesPerStub*spec.NodesPerStub)
				for i := 0; i < spec.NodesPerStub; i++ {
					local.DijkstraInto(NodeID(i), sd.dist[i*spec.NodesPerStub:(i+1)*spec.NodesPerStub], &scratch)
				}
			}
			// Gateway uplink: stub host 0 <-> sponsoring transit node.
			gwLat := spec.Latency.TransitStub.Draw(latRNG)
			if err := net.graph.AddEdge(ids[0], NodeID(t), gwLat); err != nil {
				return nil, err
			}
			net.edgeCounts[LinkTransitStub]++
			sd.gwLatency = gwLat
			net.stubs = append(net.stubs, sd)
		}
	}
	if int(next) != total {
		return nil, fmt.Errorf("topology: generated %d nodes, want %d", next, total)
	}
	return net, nil
}

// MustGenerate is Generate that panics on error; intended for tests and
// experiment setup where the spec is a vetted constant.
func MustGenerate(spec Spec, rng *simrand.Source) *Network {
	net, err := Generate(spec, rng)
	if err != nil {
		panic(err)
	}
	return net
}

// randomConnected wires ids (global IDs) into a connected random graph:
// a random attachment tree guarantees connectivity, then every remaining
// pair receives an edge with probability extraProb. Edges are mirrored
// into both the full graph and the backbone graph (same IDs).
//
// Duplicate suppression needs no per-pair map: the extra-edge double loop
// visits each unordered pair at most once, so the only possible duplicate
// is an extra edge re-proposing a tree edge — detected in O(1) against the
// flat parent index. A suppressed pair draws no latency, exactly like the
// map-based seed implementation.
func (n *Network) randomConnected(backbone *Graph, ids []NodeID, extraProb float64,
	dist Dist, class LinkClass, wireRNG, latRNG *simrand.Source) error {
	add := func(u, v NodeID) error {
		w := dist.Draw(latRNG)
		if err := n.graph.AddEdge(u, v, w); err != nil {
			return err
		}
		n.edgeCounts[class]++
		return backbone.AddEdge(u, v, w)
	}
	parent := make([]int32, len(ids)) // parent[i]: tree parent of ids[i], by index
	parent[0] = -1
	for i := 1; i < len(ids); i++ {
		p := wireRNG.Intn(i)
		parent[i] = int32(p)
		if err := add(ids[i], ids[p]); err != nil {
			return err
		}
	}
	if extraProb > 0 {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				if wireRNG.Bool(extraProb) && int(parent[j]) != i {
					if err := add(ids[i], ids[j]); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// randomConnectedLocal is randomConnected for a stub domain: edges are
// mirrored into a stub-local graph indexed from 0 (id - first).
func (n *Network) randomConnectedLocal(local *Graph, ids []NodeID, first NodeID,
	extraProb float64, dist Dist, wireRNG, latRNG *simrand.Source) error {
	add := func(u, v NodeID) error {
		w := dist.Draw(latRNG)
		if err := n.graph.AddEdge(u, v, w); err != nil {
			return err
		}
		n.edgeCounts[LinkIntraStub]++
		return local.AddEdge(u-first, v-first, w)
	}
	parent := make([]int32, len(ids))
	parent[0] = -1
	for i := 1; i < len(ids); i++ {
		p := wireRNG.Intn(i)
		parent[i] = int32(p)
		if err := add(ids[i], ids[p]); err != nil {
			return err
		}
	}
	if extraProb > 0 {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				if wireRNG.Bool(extraProb) && int(parent[j]) != i {
					if err := add(ids[i], ids[j]); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// wireDomains connects transit domains with a random spanning tree plus
// spec.ExtraInterDomainLinks extra random cross-domain links.
func (n *Network) wireDomains(backbone *Graph, domains [][]NodeID,
	wireRNG, latRNG *simrand.Source) error {
	if len(domains) <= 1 {
		return nil
	}
	present := make(map[[2]NodeID]bool)
	add := func(u, v NodeID) (bool, error) {
		if u > v {
			u, v = v, u
		}
		if present[[2]NodeID{u, v}] {
			return false, nil
		}
		present[[2]NodeID{u, v}] = true
		w := n.spec.Latency.CrossTransit.Draw(latRNG)
		if err := n.graph.AddEdge(u, v, w); err != nil {
			return false, err
		}
		n.edgeCounts[LinkCrossTransit]++
		return true, backbone.AddEdge(u, v, w)
	}
	pickNode := func(d int) NodeID {
		ids := domains[d]
		return ids[wireRNG.Intn(len(ids))]
	}
	for d := 1; d < len(domains); d++ {
		if _, err := add(pickNode(d), pickNode(wireRNG.Intn(d))); err != nil {
			return err
		}
	}
	// Extra cross-domain links; bounded retries tolerate duplicate picks.
	added := 0
	for attempt := 0; added < n.spec.ExtraInterDomainLinks && attempt < 20*n.spec.ExtraInterDomainLinks+20; attempt++ {
		d1 := wireRNG.Intn(len(domains))
		d2 := wireRNG.Intn(len(domains))
		if d1 == d2 {
			continue
		}
		fresh, err := add(pickNode(d1), pickNode(d2))
		if err != nil {
			return err
		}
		if fresh {
			added++
		}
	}
	return nil
}
