package topology

import (
	"math"
	"testing"

	"gsso/internal/simrand"
)

// tinySpec is a small but structurally complete spec for fast tests.
func tinySpec(latency LatencyModel) Spec {
	return Spec{
		TransitDomains:        3,
		TransitNodesPerDomain: 3,
		StubsPerTransitNode:   2,
		NodesPerStub:          5,
		ExtraTransitEdgeProb:  0.4,
		ExtraStubEdgeProb:     0.3,
		ExtraInterDomainLinks: 2,
		Latency:               GTITMLatency(),
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		ok     bool
	}{
		{"valid", func(s *Spec) {}, true},
		{"no-domains", func(s *Spec) { s.TransitDomains = 0 }, false},
		{"no-transit-nodes", func(s *Spec) { s.TransitNodesPerDomain = 0 }, false},
		{"negative-stubs", func(s *Spec) { s.StubsPerTransitNode = -1 }, false},
		{"zero-stub-size", func(s *Spec) { s.NodesPerStub = 0 }, false},
		{"stubless-ok", func(s *Spec) { s.StubsPerTransitNode = 0; s.NodesPerStub = 0 }, true},
		{"bad-transit-prob", func(s *Spec) { s.ExtraTransitEdgeProb = 1.5 }, false},
		{"bad-stub-prob", func(s *Spec) { s.ExtraStubEdgeProb = -0.1 }, false},
		{"bad-extra-links", func(s *Spec) { s.ExtraInterDomainLinks = -1 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tinySpec(GTITMLatency())
			tc.mutate(&s)
			err := s.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate() err = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestSpecTotals(t *testing.T) {
	s := tinySpec(GTITMLatency())
	if got, want := s.TotalNodes(), 9+9*2*5; got != want {
		t.Fatalf("TotalNodes = %d, want %d", got, want)
	}
	if got, want := s.TotalStubs(), 18; got != want {
		t.Fatalf("TotalStubs = %d, want %d", got, want)
	}
}

func TestPresetShapes(t *testing.T) {
	large := TSKLarge(GTITMLatency())
	small := TSKSmall(GTITMLatency())
	if large.TotalNodes() < 10000 || large.TotalNodes() > 11000 {
		t.Fatalf("tsk-large hosts = %d, want ~10k", large.TotalNodes())
	}
	if small.TotalNodes() < 10000 || small.TotalNodes() > 11000 {
		t.Fatalf("tsk-small hosts = %d, want ~10k", small.TotalNodes())
	}
	lt := large.TransitDomains * large.TransitNodesPerDomain
	st := small.TransitDomains * small.TransitNodesPerDomain
	if lt <= st {
		t.Fatalf("tsk-large backbone (%d) should exceed tsk-small (%d)", lt, st)
	}
	if small.NodesPerStub <= large.NodesPerStub {
		t.Fatal("tsk-small stubs should be denser")
	}
}

func TestScaled(t *testing.T) {
	s := TSKLarge(GTITMLatency()).Scaled(0.25)
	if s.NodesPerStub != 10 {
		t.Fatalf("scaled NodesPerStub = %d, want 10", s.NodesPerStub)
	}
	if TSKLarge(GTITMLatency()).Scaled(0.001).NodesPerStub != 1 {
		t.Fatal("scaling floor of 1 violated")
	}
}

func TestGenerateStructure(t *testing.T) {
	spec := tinySpec(GTITMLatency())
	net := MustGenerate(spec, simrand.New(1))
	if net.Len() != spec.TotalNodes() {
		t.Fatalf("Len = %d, want %d", net.Len(), spec.TotalNodes())
	}
	if net.TransitCount() != 9 {
		t.Fatalf("TransitCount = %d", net.TransitCount())
	}
	if net.StubCount() != 18 {
		t.Fatalf("StubCount = %d", net.StubCount())
	}
	if !net.Graph().Connected() {
		t.Fatal("generated topology is disconnected")
	}
	// First transitCount IDs are transit, the rest stub.
	for id := NodeID(0); int(id) < net.Len(); id++ {
		node := net.Node(id)
		wantClass := ClassStub
		if int(id) < net.TransitCount() {
			wantClass = ClassTransit
		}
		if node.Class != wantClass {
			t.Fatalf("node %d class = %v, want %v", id, node.Class, wantClass)
		}
		if node.ID != id {
			t.Fatalf("node %d carries ID %d", id, node.ID)
		}
		if wantClass == ClassTransit && node.Stub != -1 {
			t.Fatalf("transit node %d has stub %d", id, node.Stub)
		}
	}
	// Per-class edge counts: spanning trees put lower bounds in place.
	if net.EdgeCount(LinkTransitStub) != 18 {
		t.Fatalf("transit-stub links = %d, want 18 (one per stub)", net.EdgeCount(LinkTransitStub))
	}
	if net.EdgeCount(LinkCrossTransit) < 2 {
		t.Fatalf("cross-transit links = %d, want >= 2", net.EdgeCount(LinkCrossTransit))
	}
	if net.EdgeCount(LinkIntraStub) < 18*4 {
		t.Fatalf("intra-stub links = %d, want >= 72", net.EdgeCount(LinkIntraStub))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := tinySpec(GTITMLatency())
	a := MustGenerate(spec, simrand.New(7))
	b := MustGenerate(spec, simrand.New(7))
	for i := 0; i < 200; i++ {
		u := NodeID(i % a.Len())
		v := NodeID((i * 13) % a.Len())
		if a.Latency(u, v) != b.Latency(u, v) {
			t.Fatalf("nondeterministic latency for (%d,%d)", u, v)
		}
	}
	c := MustGenerate(spec, simrand.New(8))
	diff := 0
	for i := 0; i < 100; i++ {
		u := NodeID(i % a.Len())
		v := NodeID((i * 31) % a.Len())
		if u != v && a.Latency(u, v) != c.Latency(u, v) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical topologies")
	}
}

func TestGenerateRejectsInvalidSpec(t *testing.T) {
	s := tinySpec(GTITMLatency())
	s.TransitDomains = 0
	if _, err := Generate(s, simrand.New(1)); err == nil {
		t.Fatal("expected error for invalid spec")
	}
}

// TestLatencyMatchesDijkstra is the load-bearing validation: the O(1)
// structured latency must equal true shortest paths on the full graph.
func TestLatencyMatchesDijkstra(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	for _, seed := range seeds {
		rng := simrand.New(seed)
		spec := Spec{
			TransitDomains:        1 + rng.Intn(4),
			TransitNodesPerDomain: 1 + rng.Intn(4),
			StubsPerTransitNode:   rng.Intn(3),
			NodesPerStub:          1 + rng.Intn(6),
			ExtraTransitEdgeProb:  rng.Float64() * 0.5,
			ExtraStubEdgeProb:     rng.Float64() * 0.5,
			ExtraInterDomainLinks: rng.Intn(3),
			Latency:               GTITMLatency(),
		}
		net := MustGenerate(spec, rng.Split("gen"))
		for src := NodeID(0); int(src) < net.Len(); src++ {
			truth := net.Graph().Dijkstra(src)
			for dst := NodeID(0); int(dst) < net.Len(); dst++ {
				got := net.Latency(src, dst)
				if math.Abs(got-truth[dst]) > 1e-9 {
					t.Fatalf("seed %d: Latency(%d,%d) = %v, Dijkstra = %v (spec %+v)",
						seed, src, dst, got, truth[dst], spec)
				}
			}
		}
	}
}

func TestLatencyBasicProperties(t *testing.T) {
	net := MustGenerate(tinySpec(GTITMLatency()), simrand.New(5))
	for i := 0; i < 200; i++ {
		a := NodeID(i % net.Len())
		b := NodeID((i * 17) % net.Len())
		la, lb := net.Latency(a, b), net.Latency(b, a)
		if la != lb {
			t.Fatalf("asymmetric latency (%d,%d): %v vs %v", a, b, la, lb)
		}
		if a != b && la <= 0 {
			t.Fatalf("non-positive latency %v between distinct %d,%d", la, a, b)
		}
		if net.RTT(a, b) != 2*la {
			t.Fatal("RTT != 2*latency")
		}
	}
	if net.Latency(3, 3) != 0 {
		t.Fatal("self latency nonzero")
	}
}

func TestManualLatencyValues(t *testing.T) {
	net := MustGenerate(tinySpec(ManualLatency()), simrand.New(3))
	_ = net
	m := ManualLatency()
	rng := simrand.New(1)
	if m.CrossTransit.Draw(rng) != 20 || m.IntraTransit.Draw(rng) != 5 ||
		m.TransitStub.Draw(rng) != 0.5 || m.IntraStub.Draw(rng) != 1 {
		t.Fatal("manual latency constants drifted from DESIGN.md")
	}
}

func TestStubHostsAndAllHosts(t *testing.T) {
	net := MustGenerate(tinySpec(GTITMLatency()), simrand.New(2))
	stub := net.StubHosts()
	all := net.AllHosts()
	if len(all) != net.Len() {
		t.Fatalf("AllHosts len = %d", len(all))
	}
	if len(stub) != net.Len()-net.TransitCount() {
		t.Fatalf("StubHosts len = %d", len(stub))
	}
	for _, id := range stub {
		if net.Node(id).Class != ClassStub {
			t.Fatalf("StubHosts contains transit node %d", id)
		}
	}
}

func TestRandomStubHostsDistinct(t *testing.T) {
	net := MustGenerate(tinySpec(GTITMLatency()), simrand.New(2))
	hosts := net.RandomStubHosts(simrand.New(9), 20)
	seen := map[NodeID]struct{}{}
	for _, h := range hosts {
		if net.Node(h).Class != ClassStub {
			t.Fatalf("non-stub host %d", h)
		}
		if _, dup := seen[h]; dup {
			t.Fatalf("duplicate host %d", h)
		}
		seen[h] = struct{}{}
	}
}

func TestNearest(t *testing.T) {
	net := MustGenerate(tinySpec(GTITMLatency()), simrand.New(4))
	hosts := net.StubHosts()
	a := hosts[0]
	cands := hosts[:30]
	best, bestD := net.Nearest(a, cands)
	if best == None {
		t.Fatal("no nearest found")
	}
	if best == a {
		t.Fatal("nearest returned self")
	}
	for _, c := range cands {
		if c != a && net.Latency(a, c) < bestD {
			t.Fatalf("found closer candidate %d", c)
		}
	}
	if b, d := net.Nearest(a, []NodeID{a}); b != None || !math.IsInf(d, 1) {
		t.Fatal("self-only candidate list should yield None")
	}
}

func TestSameStub(t *testing.T) {
	net := MustGenerate(tinySpec(GTITMLatency()), simrand.New(4))
	first := NodeID(net.TransitCount())
	if !net.SameStub(first, first+1) {
		t.Fatal("adjacent stub hosts should share a stub")
	}
	if net.SameStub(first, first+NodeID(net.Spec().NodesPerStub)) {
		t.Fatal("hosts of different stubs reported as same")
	}
	if net.SameStub(0, first) {
		t.Fatal("transit node cannot share a stub")
	}
}

func TestIntraStubLatencySmallerThanCrossDomain(t *testing.T) {
	// With manual latencies, same-stub pairs must be strictly cheaper than
	// pairs crossing transit domains.
	net := MustGenerate(tinySpec(ManualLatency()), simrand.New(6))
	first := NodeID(net.TransitCount())
	sameStub := net.Latency(first, first+1)
	var crossDomain float64
	for id := first; int(id) < net.Len(); id++ {
		if net.Node(id).Domain != net.Node(first).Domain {
			crossDomain = net.Latency(first, id)
			break
		}
	}
	if crossDomain == 0 {
		t.Skip("no cross-domain stub host found")
	}
	if sameStub >= crossDomain {
		t.Fatalf("same-stub latency %v >= cross-domain %v", sameStub, crossDomain)
	}
}

func TestNetworkString(t *testing.T) {
	net := MustGenerate(tinySpec(GTITMLatency()), simrand.New(4))
	if net.String() == "" {
		t.Fatal("String empty")
	}
}

func TestStublessSpec(t *testing.T) {
	s := Spec{
		TransitDomains:        2,
		TransitNodesPerDomain: 3,
		Latency:               ManualLatency(),
	}
	net := MustGenerate(s, simrand.New(1))
	if net.Len() != 6 || net.StubCount() != 0 {
		t.Fatalf("stubless network wrong shape: %v", net)
	}
	if !net.Graph().Connected() {
		t.Fatal("stubless backbone disconnected")
	}
}

func BenchmarkLatencyQuery(b *testing.B) {
	net := MustGenerate(TSKLarge(GTITMLatency()), simrand.New(1))
	hosts := net.RandomStubHosts(simrand.New(2), 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Latency(hosts[i%1000], hosts[(i*7+3)%1000])
	}
}

func BenchmarkGenerateTSKLarge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MustGenerate(TSKLarge(GTITMLatency()), simrand.New(uint64(i)))
	}
}
