package topology

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"gsso/internal/simrand"
)

// The differential equivalence suite: the flat, arena-backed topology must
// be observably byte-identical to the pointer-based seed implementation.
// Golden fixtures under testdata/ were generated from the pre-refactor
// implementation (run with GSSO_GOLDEN_WRITE=1 to regenerate — only do that
// from a revision known to be equivalent). Each fixture pins, for one
// (preset, latency model, seed, scale) cell:
//
//   - a hash over every node's (class, domain, stub) assignment,
//   - a hash over every stub's (gateway, gwLatency-bits) assignment,
//   - a hash over the exact float64 bit patterns of the latencies of a
//     deterministic pair sample (byte-identical, not approximately equal),
//   - the first spotChecks sampled latencies verbatim, so a mismatch
//     points at concrete numbers instead of a hash.
type goldenFixture struct {
	Preset    string   `json:"preset"`
	Latency   string   `json:"latency"`
	Seed      uint64   `json:"seed"`
	Scale     float64  `json:"scale"`
	Nodes     int      `json:"nodes"`
	Transit   int      `json:"transit"`
	Stubs     int      `json:"stubs"`
	NodesSHA  string   `json:"nodes_sha"`
	StubsSHA  string   `json:"stubs_sha"`
	LatSHA    string   `json:"lat_sha"`
	SpotPairs [][2]int `json:"spot_pairs"`
	SpotBits  []string `json:"spot_bits"`
}

const (
	goldenPairSamples = 4096
	goldenSpotChecks  = 8
)

type goldenCell struct {
	preset string
	lat    string
	seed   uint64
	scale  float64
}

func goldenCells(short bool) []goldenCell {
	var cells []goldenCell
	for _, preset := range []string{"tsk-large", "tsk-small"} {
		for _, lat := range []string{"gtitm", "manual"} {
			for _, seed := range []uint64{1, 2, 3} {
				cells = append(cells, goldenCell{preset, lat, seed, 0.2})
			}
		}
	}
	if !short {
		// One paper-scale cell per preset keeps the full-size generation
		// path honest without dominating test wall-clock.
		cells = append(cells,
			goldenCell{"tsk-large", "gtitm", 1, 1.0},
			goldenCell{"tsk-small", "gtitm", 1, 1.0},
		)
	}
	return cells
}

func goldenSpec(c goldenCell) Spec {
	model := GTITMLatency()
	if c.lat == "manual" {
		model = ManualLatency()
	}
	spec := TSKLarge(model)
	if c.preset == "tsk-small" {
		spec = TSKSmall(model)
	}
	return spec.Scaled(c.scale)
}

func goldenName(c goldenCell) string {
	return fmt.Sprintf("golden_%s_%s_s%d_x%v.json", c.preset, c.lat, c.seed, c.scale)
}

// buildFixture generates the cell's network with the current implementation
// and summarizes it into a fixture.
func buildFixture(c goldenCell) (goldenFixture, error) {
	spec := goldenSpec(c)
	net, err := Generate(spec, simrand.New(c.seed))
	if err != nil {
		return goldenFixture{}, err
	}
	fx := goldenFixture{
		Preset:  c.preset,
		Latency: c.lat,
		Seed:    c.seed,
		Scale:   c.scale,
		Nodes:   net.Len(),
		Transit: net.TransitCount(),
		Stubs:   net.StubCount(),
	}

	nh := sha256.New()
	var buf [8]byte
	for id := NodeID(0); int(id) < net.Len(); id++ {
		n := net.Node(id)
		nh.Write([]byte{byte(n.Class)})
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(n.Domain)))
		nh.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(n.Stub)))
		nh.Write(buf[:])
	}
	fx.NodesSHA = hex.EncodeToString(nh.Sum(nil))

	sh := sha256.New()
	for si := 0; si < net.StubCount(); si++ {
		gw, gwLat := net.StubGateway(si)
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(gw)))
		sh.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(gwLat))
		sh.Write(buf[:])
	}
	fx.StubsSHA = hex.EncodeToString(sh.Sum(nil))

	lh := sha256.New()
	pairRNG := simrand.New(c.seed).Split("golden/pairs")
	for i := 0; i < goldenPairSamples; i++ {
		a := NodeID(pairRNG.Intn(net.Len()))
		b := NodeID(pairRNG.Intn(net.Len()))
		bits := math.Float64bits(net.Latency(a, b))
		binary.LittleEndian.PutUint64(buf[:], bits)
		lh.Write(buf[:])
		if i < goldenSpotChecks {
			fx.SpotPairs = append(fx.SpotPairs, [2]int{int(a), int(b)})
			fx.SpotBits = append(fx.SpotBits, fmt.Sprintf("%016x", bits))
		}
	}
	fx.LatSHA = hex.EncodeToString(lh.Sum(nil))
	return fx, nil
}

// TestGoldenEquivalence is the differential gate: every fixture cell must
// match the current implementation byte for byte.
func TestGoldenEquivalence(t *testing.T) {
	write := os.Getenv("GSSO_GOLDEN_WRITE") == "1"
	for _, c := range goldenCells(testing.Short()) {
		c := c
		t.Run(fmt.Sprintf("%s/%s/seed%d/x%v", c.preset, c.lat, c.seed, c.scale), func(t *testing.T) {
			got, err := buildFixture(c)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", goldenName(c))
			if write {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (generate with GSSO_GOLDEN_WRITE=1 from a trusted revision): %v", err)
			}
			var want goldenFixture
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatal(err)
			}
			if got.Nodes != want.Nodes || got.Transit != want.Transit || got.Stubs != want.Stubs {
				t.Fatalf("shape drift: got %d/%d/%d nodes/transit/stubs, want %d/%d/%d",
					got.Nodes, got.Transit, got.Stubs, want.Nodes, want.Transit, want.Stubs)
			}
			if got.NodesSHA != want.NodesSHA {
				t.Errorf("node class/domain/stub assignments diverged from the seed implementation")
			}
			if got.StubsSHA != want.StubsSHA {
				t.Errorf("stub gateway assignments or uplink latencies diverged from the seed implementation")
			}
			if got.LatSHA != want.LatSHA {
				t.Errorf("sampled latencies are not byte-identical to the seed implementation")
				for i, p := range want.SpotPairs {
					if i < len(got.SpotBits) && got.SpotBits[i] != want.SpotBits[i] {
						t.Errorf("  pair (%d,%d): got bits %s want %s", p[0], p[1], got.SpotBits[i], want.SpotBits[i])
					}
				}
			}
		})
	}
}
